// Package prof wires Go's runtime profilers into the experiment CLIs.
// Every command accepts -cpuprofile, -memprofile and -trace flags; the
// resulting files feed `go tool pprof` / `go tool trace` so scheduler and
// network-simulation hot spots can be located without instrumenting the
// experiment code itself.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config names the output files; empty fields disable the corresponding
// profiler.
type Config struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Enabled reports whether any profiler is requested.
func (c Config) Enabled() bool {
	return c.CPUProfile != "" || c.MemProfile != "" || c.Trace != ""
}

// Start begins the requested profilers and returns a stop function that
// must run before process exit (it finalizes the files). Profilers that
// fail to start abort with an error before any experiment work happens.
func Start(cfg Config) (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if cfg.CPUProfile != "" {
		cpuF, err = os.Create(cfg.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	if cfg.Trace != "" {
		traceF, err = os.Create(cfg.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: start trace: %w", err)
		}
	}
	return func() error {
		cleanup()
		if cfg.MemProfile == "" {
			return nil
		}
		f, err := os.Create(cfg.MemProfile)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date allocation stats
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("prof: write heap profile: %w", err)
		}
		return nil
	}, nil
}
