// Package tas implements an IEEE 802.1Qbv time-aware shaper: per-port gate
// control lists that open and close priority queues on a repeating cycle.
// The paper's integrated TSN switches rely on exactly this mechanism to
// keep gPTP event traffic isolated from best-effort interference; the
// shaper is the queue-level model behind the bridge residence times, made
// explicit so protected-window configurations can be studied.
//
// The shaper is pure state-machine logic over simulated time: Enqueue
// computes each frame's departure instant from the queue backlog, the link
// serialization time, and the gate schedule (with guard-band semantics — a
// frame only starts transmitting if it finishes before its gate closes).
package tas

import (
	"errors"
	"fmt"
	"time"

	"gptpfta/internal/sim"
)

// NumPriorities is the 802.1Q priority range.
const NumPriorities = 8

// GateMask selects which priorities' gates are open during an entry.
type GateMask uint8

// Open reports whether the gate for a priority is open in the mask.
func (m GateMask) Open(priority int) bool {
	return priority >= 0 && priority < NumPriorities && m&(1<<uint(priority)) != 0
}

// MaskFor builds a mask opening the given priorities.
func MaskFor(priorities ...int) GateMask {
	var m GateMask
	for _, p := range priorities {
		if p >= 0 && p < NumPriorities {
			m |= 1 << uint(p)
		}
	}
	return m
}

// AllOpen opens every gate (the default, shaper-less behaviour).
const AllOpen GateMask = 0xFF

// GateEntry is one interval of the gate control list.
type GateEntry struct {
	Gates    GateMask
	Duration time.Duration
}

// GateControlList is a repeating gate schedule.
type GateControlList struct {
	entries []GateEntry
	cycle   time.Duration
}

// NewGateControlList validates and builds a schedule. The cycle time is
// the sum of the entry durations.
func NewGateControlList(entries []GateEntry) (*GateControlList, error) {
	if len(entries) == 0 {
		return nil, errors.New("tas: empty gate control list")
	}
	var cycle time.Duration
	for i, e := range entries {
		if e.Duration <= 0 {
			return nil, fmt.Errorf("tas: entry %d has non-positive duration", i)
		}
		cycle += e.Duration
	}
	return &GateControlList{entries: append([]GateEntry(nil), entries...), cycle: cycle}, nil
}

// Cycle reports the schedule's cycle time.
func (g *GateControlList) Cycle() time.Duration { return g.cycle }

// gateAt returns the entry active at instant t and the time remaining in it.
func (g *GateControlList) gateAt(t sim.Time) (GateEntry, time.Duration) {
	phase := time.Duration(int64(t) % int64(g.cycle))
	for _, e := range g.entries {
		if phase < e.Duration {
			return e, e.Duration - phase
		}
		phase -= e.Duration
	}
	// Unreachable: phase < cycle by construction.
	return g.entries[len(g.entries)-1], 0
}

// NextTransmitSlot computes the earliest instant ≥ from at which a frame of
// the given transmission duration can START so that it completes while the
// priority's gate is open (guard-band semantics). It returns an error if
// the schedule never opens a window long enough.
func (g *GateControlList) NextTransmitSlot(priority int, from sim.Time, txTime time.Duration) (sim.Time, error) {
	t := from
	// Two full cycles bound the search: if no window fits in one cycle, it
	// never will.
	deadline := from.Add(2 * g.cycle)
	for t < deadline {
		entry, remaining := g.gateAt(t)
		if entry.Gates.Open(priority) && remaining >= txTime {
			return t, nil
		}
		// Jump to the start of the next entry.
		t = t.Add(remaining)
	}
	return 0, fmt.Errorf("tas: no window of %v for priority %d in a %v cycle", txTime, priority, g.cycle)
}

// Shaper is one egress port's time-aware shaper: strict priority between
// queues with 802.1Qbu frame-preemption semantics (express traffic
// overtakes queued lower-priority frames; a lower-priority frame waits for
// all higher-priority backlog), FIFO within a queue, gates from the
// control list.
type Shaper struct {
	gcl *GateControlList
	// rate is the link speed in bits per nanosecond (1 Gbit/s = 1).
	rate float64
	// queueTail tracks the departure time of the last frame accepted per
	// priority, preserving FIFO order within a queue and letting lower
	// priorities yield to higher-priority backlog.
	queueTail [NumPriorities]sim.Time
	// fifo disables priority queueing entirely: one queue for all
	// traffic — the egress model of a non-TSN switch, for comparison
	// studies.
	fifo bool

	transmitted uint64
}

// NewShaper creates a shaper for a port with the given schedule and link
// rate in megabits per second.
func NewShaper(gcl *GateControlList, linkMbps float64) (*Shaper, error) {
	if gcl == nil {
		return nil, errors.New("tas: nil gate control list")
	}
	if linkMbps <= 0 {
		return nil, errors.New("tas: non-positive link rate")
	}
	return &Shaper{gcl: gcl, rate: linkMbps / 1000}, nil
}

// NewFIFOShaper models a non-TSN switch egress: a single FIFO queue with
// no gates (all open) and no priority separation — PTP frames wait behind
// any best-effort backlog. Used as the baseline in the TAS ablation.
func NewFIFOShaper(linkMbps float64) (*Shaper, error) {
	gcl, err := NewGateControlList([]GateEntry{{Gates: AllOpen, Duration: time.Millisecond}})
	if err != nil {
		return nil, err
	}
	s, err := NewShaper(gcl, linkMbps)
	if err != nil {
		return nil, err
	}
	s.fifo = true
	return s, nil
}

// TxTime reports the serialization time of a frame.
func (s *Shaper) TxTime(bytes int) time.Duration {
	if bytes <= 0 {
		bytes = 128
	}
	return time.Duration(float64(bytes*8) / s.rate)
}

// Transmitted reports how many frames the shaper has scheduled.
func (s *Shaper) Transmitted() uint64 { return s.transmitted }

// Enqueue accepts a frame arriving at now with the given priority and size
// and returns the instant its transmission COMPLETES (when the peer starts
// receiving the last bit; propagation is the link's business). Departure
// respects: FIFO within the priority, the port being busy with earlier
// transmissions, and the gate schedule with guard bands.
func (s *Shaper) Enqueue(now sim.Time, priority int, bytes int) (sim.Time, error) {
	if priority < 0 || priority >= NumPriorities {
		return 0, fmt.Errorf("tas: priority %d out of range", priority)
	}
	txTime := s.TxTime(bytes)
	earliest := now
	if s.fifo {
		// Single queue: wait for everything already accepted.
		for p := 0; p < NumPriorities; p++ {
			if s.queueTail[p] > earliest {
				earliest = s.queueTail[p]
			}
		}
	} else {
		// FIFO within the queue, and yield to backlog of this and every
		// higher priority (strict priority + preemption: higher
		// priorities never wait for lower ones).
		for p := priority; p < NumPriorities; p++ {
			if s.queueTail[p] > earliest {
				earliest = s.queueTail[p]
			}
		}
	}
	start, err := s.gcl.NextTransmitSlot(priority, earliest, txTime)
	if err != nil {
		return 0, err
	}
	done := start.Add(txTime)
	s.queueTail[priority] = done
	s.transmitted++
	return done, nil
}
