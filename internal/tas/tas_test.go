package tas

import (
	"testing"
	"testing/quick"
	"time"

	"gptpfta/internal/sim"
)

// schedule50us builds the canonical protected schedule: 10 µs for PTP
// (priority 7) + measurement (6), then 40 µs for everything else.
func schedule50us(t *testing.T) *GateControlList {
	t.Helper()
	gcl, err := NewGateControlList([]GateEntry{
		{Gates: MaskFor(7, 6), Duration: 10 * time.Microsecond},
		{Gates: MaskFor(0, 1, 2, 3, 4, 5), Duration: 40 * time.Microsecond},
	})
	if err != nil {
		t.Fatalf("gcl: %v", err)
	}
	return gcl
}

func TestGateMask(t *testing.T) {
	m := MaskFor(7, 6)
	if !m.Open(7) || !m.Open(6) || m.Open(0) || m.Open(5) {
		t.Fatalf("mask %08b wrong", m)
	}
	if m.Open(-1) || m.Open(8) {
		t.Fatal("out-of-range priorities reported open")
	}
	for p := 0; p < NumPriorities; p++ {
		if !AllOpen.Open(p) {
			t.Fatalf("AllOpen closed for %d", p)
		}
	}
}

func TestGCLValidation(t *testing.T) {
	if _, err := NewGateControlList(nil); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := NewGateControlList([]GateEntry{{Gates: AllOpen, Duration: 0}}); err == nil {
		t.Fatal("zero duration accepted")
	}
	gcl := schedule50us(t)
	if gcl.Cycle() != 50*time.Microsecond {
		t.Fatalf("cycle = %v", gcl.Cycle())
	}
}

func TestNextTransmitSlotInsideOpenWindow(t *testing.T) {
	gcl := schedule50us(t)
	// Priority 7 at t=2µs: window open until 10µs; a 1µs frame fits now.
	at, err := gcl.NextTransmitSlot(7, sim.Time(2*time.Microsecond), time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if at != sim.Time(2*time.Microsecond) {
		t.Fatalf("slot at %v, want immediate", at)
	}
}

func TestNextTransmitSlotWaitsForWindow(t *testing.T) {
	gcl := schedule50us(t)
	// Priority 0 at t=2µs must wait for the BE window at 10µs.
	at, err := gcl.NextTransmitSlot(0, sim.Time(2*time.Microsecond), time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if at != sim.Time(10*time.Microsecond) {
		t.Fatalf("slot at %v, want 10µs", at)
	}
	// Priority 7 at t=20µs waits for the next cycle's PTP window at 50µs.
	at, err = gcl.NextTransmitSlot(7, sim.Time(20*time.Microsecond), time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if at != sim.Time(50*time.Microsecond) {
		t.Fatalf("slot at %v, want 50µs", at)
	}
}

func TestGuardBand(t *testing.T) {
	gcl := schedule50us(t)
	// A 3 µs transmission requested at 8 µs does not fit before the PTP
	// gate closes at 10 µs: it must wait for the next cycle.
	at, err := gcl.NextTransmitSlot(7, sim.Time(8*time.Microsecond), 3*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if at != sim.Time(50*time.Microsecond) {
		t.Fatalf("slot at %v, want next cycle (guard band)", at)
	}
}

func TestNextTransmitSlotNeverFits(t *testing.T) {
	gcl := schedule50us(t)
	// A 20 µs transmission never fits the 10 µs PTP window.
	if _, err := gcl.NextTransmitSlot(7, 0, 20*time.Microsecond); err == nil {
		t.Fatal("impossible window accepted")
	}
}

func TestShaperSerializesSamePriority(t *testing.T) {
	shaper, err := NewShaper(schedule50us(t), 1000) // 1 Gbit/s
	if err != nil {
		t.Fatal(err)
	}
	// Two 125-byte PTP frames at t=0: 1 µs each, back to back.
	d1, err := shaper.Enqueue(0, 7, 125)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := shaper.Enqueue(0, 7, 125)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != sim.Time(time.Microsecond) || d2 != sim.Time(2*time.Microsecond) {
		t.Fatalf("departures %v, %v; want 1µs, 2µs", d1, d2)
	}
	if shaper.Transmitted() != 2 {
		t.Fatalf("transmitted = %d", shaper.Transmitted())
	}
}

func TestShaperProtectedWindow(t *testing.T) {
	shaper, err := NewShaper(schedule50us(t), 1000)
	if err != nil {
		t.Fatal(err)
	}
	// A burst of best-effort backlog arrives first...
	for i := 0; i < 5; i++ {
		if _, err := shaper.Enqueue(0, 0, 1500); err != nil { // 12 µs each
			t.Fatal(err)
		}
	}
	// ...then a PTP frame: it must NOT be delayed behind the backlog —
	// it sails through the protected window.
	d, err := shaper.Enqueue(sim.Time(time.Microsecond), 7, 125)
	if err != nil {
		t.Fatal(err)
	}
	if d > sim.Time(3*time.Microsecond) {
		t.Fatalf("PTP frame delayed to %v behind best-effort backlog", d)
	}
}

func TestShaperLowerPriorityYields(t *testing.T) {
	shaper, err := NewShaper(schedule50us(t), 1000)
	if err != nil {
		t.Fatal(err)
	}
	// PTP backlog deep into its window...
	var last sim.Time
	for i := 0; i < 8; i++ {
		d, err := shaper.Enqueue(0, 7, 125)
		if err != nil {
			t.Fatal(err)
		}
		last = d
	}
	// ...a BE frame afterwards must depart in its own window at ≥10 µs and
	// after the PTP backlog.
	d, err := shaper.Enqueue(0, 0, 125)
	if err != nil {
		t.Fatal(err)
	}
	if d < sim.Time(10*time.Microsecond) || d < last {
		t.Fatalf("BE departure %v violates window/priority (ptp tail %v)", d, last)
	}
}

func TestShaperValidation(t *testing.T) {
	if _, err := NewShaper(nil, 1000); err == nil {
		t.Fatal("nil gcl accepted")
	}
	gcl := schedule50us(t)
	if _, err := NewShaper(gcl, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	shaper, err := NewShaper(gcl, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shaper.Enqueue(0, 9, 100); err == nil {
		t.Fatal("out-of-range priority accepted")
	}
	if tx := shaper.TxTime(0); tx != time.Duration(128*8) {
		t.Fatalf("default frame size txtime = %v", tx)
	}
}

// TestShaperProperties: departures are causal (after arrival), FIFO within
// a priority, and always inside an open window.
func TestShaperProperties(t *testing.T) {
	gcl := schedule50us(t)
	prop := func(arrivals []uint16, prioRaw []uint8) bool {
		shaper, err := NewShaper(gcl, 1000)
		if err != nil {
			return false
		}
		n := len(arrivals)
		if len(prioRaw) < n {
			n = len(prioRaw)
		}
		lastPerPrio := map[int]sim.Time{}
		var now sim.Time
		for i := 0; i < n; i++ {
			now = now.Add(time.Duration(arrivals[i]) * time.Nanosecond)
			prio := int(prioRaw[i]) % NumPriorities
			done, err := shaper.Enqueue(now, prio, 125)
			if err != nil {
				return false
			}
			txStart := done - sim.Time(shaper.TxTime(125))
			if txStart < now {
				return false // transmission before arrival
			}
			entry, remaining := gcl.gateAt(txStart)
			if !entry.Gates.Open(prio) || remaining < shaper.TxTime(125) {
				return false // transmitted outside an open window
			}
			if done <= lastPerPrio[prio] {
				return false // FIFO violated within the queue
			}
			lastPerPrio[prio] = done
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
