package faultinject

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"gptpfta/internal/sim"
)

func twoNodes() []NodeControl {
	return []NodeControl{newFakeNode("dev1"), newFakeNode("dev2")}
}

func TestConfigValidationRejects(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"nan min rate", Config{RedundantMinPerHour: math.NaN()}, "not a finite rate"},
		{"inf max rate", Config{RedundantMaxPerHour: math.Inf(1)}, "not a finite rate"},
		{"negative min rate", Config{RedundantMinPerHour: -1}, "negative"},
		{"negative max rate", Config{RedundantMaxPerHour: -0.5}, "negative"},
		{"inverted window", Config{RedundantMinPerHour: 6, RedundantMaxPerHour: 2}, "inverted"},
		{"negative gm period", Config{GMPeriod: -time.Hour}, "GMPeriod"},
		{"negative downtime", Config{Downtime: -time.Second}, "Downtime"},
		{"negative jitter", Config{DowntimeJitter: -time.Second}, "DowntimeJitter"},
		{"negative start", Config{Start: -time.Minute}, "Start"},
		{"negative gm index", Config{GMIndex: -1}, "GMIndex"},
		{"gm index out of range", Config{GMIndex: 2}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(sim.NewScheduler(), nil, twoNodes(), tc.cfg)
			if err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestConfigValidationAcceptsZeroValues(t *testing.T) {
	// The zero config still means "use the defaults" — validation must not
	// reject what withDefaults fills in.
	if _, err := New(sim.NewScheduler(), nil, twoNodes(), Config{}); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

func TestNetworkFaultAccounting(t *testing.T) {
	inj, err := New(sim.NewScheduler(), nil, twoNodes(), Config{})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for i := 0; i < 3; i++ {
		inj.NoteNetworkFault()
	}
	if got := inj.Stats().NetworkFaults; got != 3 {
		t.Fatalf("NetworkFaults = %d, want 3", got)
	}
	if !strings.Contains(inj.Stats().String(), "3 network chaos actions") {
		t.Fatalf("stats string omits network faults: %q", inj.Stats().String())
	}
	if strings.Contains(Stats{}.String(), "network") {
		t.Fatal("zero stats must render exactly as before chaos composition")
	}
}

// TestFaultHypothesisAcrossDerivedSeeds fuzzes the guard with randomized
// high-rate schedules: across 100 seeds derived from one campaign seed, no
// replayed history may ever have both clock-sync VMs of a node down at the
// same time.
func TestFaultHypothesisAcrossDerivedSeeds(t *testing.T) {
	campaign := sim.NewStreams(77)
	for s := 0; s < 100; s++ {
		rng := campaign.Stream(fmt.Sprintf("derived/%d", s))
		sched := sim.NewScheduler()
		nodes := []*fakeNode{newFakeNode("dev1"), newFakeNode("dev2"), newFakeNode("dev3"), newFakeNode("dev4")}
		ctl := make([]NodeControl, len(nodes))
		for i, n := range nodes {
			ctl[i] = n
		}
		inj, err := New(sched, rng, ctl, Config{
			GMPeriod:            7 * time.Minute,
			RedundantMinPerHour: 8,
			RedundantMaxPerHour: 12,
			Downtime:            2 * time.Minute,
			DowntimeJitter:      90 * time.Second,
			Start:               time.Minute,
		})
		if err != nil {
			t.Fatalf("seed %d: new: %v", s, err)
		}
		if err := inj.Start(); err != nil {
			t.Fatalf("seed %d: start: %v", s, err)
		}
		if err := sched.RunUntil(sim.Time(4 * time.Hour)); err != nil {
			t.Fatalf("seed %d: run: %v", s, err)
		}
		inj.Stop()
		for _, n := range nodes {
			down := map[int]bool{}
			for _, h := range n.history {
				var vm int
				if _, err := fmt.Sscanf(h, "fail:%d", &vm); err == nil {
					if down[1-vm] {
						t.Fatalf("seed %d: %s: both VMs down (history %v)", s, n.name, n.history)
					}
					down[vm] = true
					continue
				}
				if _, err := fmt.Sscanf(h, "reboot:%d", &vm); err == nil {
					down[vm] = false
				}
			}
		}
		if inj.Stats().TotalFailures == 0 {
			t.Fatalf("seed %d: schedule injected nothing", s)
		}
	}
}
