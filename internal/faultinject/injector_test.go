package faultinject

import (
	"fmt"
	"testing"
	"time"

	"gptpfta/internal/sim"
)

// fakeNode records injections and enforces nothing itself — the injector
// must uphold the fault hypothesis.
type fakeNode struct {
	name    string
	vms     []bool // true = failed
	history []string
}

func newFakeNode(name string) *fakeNode { return &fakeNode{name: name, vms: make([]bool, 2)} }

func (n *fakeNode) ControlName() string { return n.name }
func (n *fakeNode) NumVMs() int         { return len(n.vms) }
func (n *fakeNode) VMFailed(i int) bool { return n.vms[i] }

func (n *fakeNode) InjectFail(i int) error {
	if n.vms[i] {
		return fmt.Errorf("already failed")
	}
	n.vms[i] = true
	n.history = append(n.history, fmt.Sprintf("fail:%d", i))
	return nil
}

func (n *fakeNode) InjectReboot(i int) error {
	if !n.vms[i] {
		return fmt.Errorf("not failed")
	}
	n.vms[i] = false
	n.history = append(n.history, fmt.Sprintf("reboot:%d", i))
	return nil
}

func run24h(t *testing.T, cfg Config, seed int64) ([]*fakeNode, Stats) {
	t.Helper()
	sched := sim.NewScheduler()
	streams := sim.NewStreams(seed)
	nodes := []*fakeNode{newFakeNode("dev1"), newFakeNode("dev2"), newFakeNode("dev3"), newFakeNode("dev4")}
	ctl := make([]NodeControl, len(nodes))
	for i, n := range nodes {
		ctl[i] = n
	}
	inj, err := New(sched, streams.Stream("inject"), ctl, cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := inj.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := sched.RunUntil(sim.Time(24 * time.Hour)); err != nil {
		t.Fatalf("run: %v", err)
	}
	inj.Stop()
	return nodes, inj.Stats()
}

func TestGMRotationCount(t *testing.T) {
	_, stats := run24h(t, Config{GMPeriod: time.Hour, RedundantMinPerHour: 0.25, RedundantMaxPerHour: 1}, 1)
	// One GM shutdown per hour, rotating: ~24 over 24 h, minus guard
	// suppressions and the warm-up delay.
	if stats.GMFailures < 20 || stats.GMFailures > 24 {
		t.Fatalf("GM failures = %d, want ≈ 24 slots - suppressions", stats.GMFailures)
	}
	if stats.TotalFailures != stats.GMFailures+stats.RedundantFailures {
		t.Fatalf("stats inconsistent: %+v", stats)
	}
}

func TestFaultHypothesisNeverViolated(t *testing.T) {
	nodes, stats := run24h(t, Config{
		GMPeriod:            30 * time.Minute,
		RedundantMinPerHour: 6,
		RedundantMaxPerHour: 12,
		Downtime:            90 * time.Second,
	}, 2)
	// Replay every node's history and assert both VMs were never down
	// simultaneously.
	for _, n := range nodes {
		down := map[int]bool{}
		for _, h := range n.history {
			var vm int
			var op string
			if _, err := fmt.Sscanf(h, "fail:%d", &vm); err == nil {
				op = "fail"
			} else if _, err := fmt.Sscanf(h, "reboot:%d", &vm); err == nil {
				op = "reboot"
			}
			if op == "fail" {
				if down[1-vm] {
					t.Fatalf("%s: fault hypothesis violated: both VMs down (history %v)", n.name, n.history)
				}
				down[vm] = true
			} else {
				down[vm] = false
			}
		}
	}
	if stats.SkippedByGuard == 0 {
		t.Fatal("high-rate run should have exercised the guard at least once")
	}
}

func TestRebootsFollowFailures(t *testing.T) {
	_, stats := run24h(t, Config{GMPeriod: time.Hour, RedundantMinPerHour: 1, RedundantMaxPerHour: 2}, 3)
	// Every failure eventually reboots (the run is much longer than the
	// downtime); the last few may still be down at cutoff.
	if stats.Reboots < stats.TotalFailures-4 {
		t.Fatalf("reboots = %d for %d failures", stats.Reboots, stats.TotalFailures)
	}
}

func TestPaperScaleInjection(t *testing.T) {
	// The §III-C campaign: ~48 GM failures and a few dozen redundant
	// failures over 24 h.
	_, stats := run24h(t, Config{
		GMPeriod:            30 * time.Minute,
		RedundantMinPerHour: 0.25,
		RedundantMaxPerHour: 1,
	}, 4)
	if stats.GMFailures < 40 || stats.GMFailures > 48 {
		t.Fatalf("GM failures = %d, want ≈ 48", stats.GMFailures)
	}
	if stats.RedundantFailures < 20 || stats.RedundantFailures > 120 {
		t.Fatalf("redundant failures = %d, want a few dozen", stats.RedundantFailures)
	}
	if stats.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestNewRequiresNodes(t *testing.T) {
	if _, err := New(sim.NewScheduler(), nil, nil, Config{}); err == nil {
		t.Fatal("empty node list accepted")
	}
}
