// Package faultinject reproduces the paper's 24 h fault-injection tool
// (§III-C): a per-node driver that (a) periodically shuts down the node's
// grandmaster VM in a fixed rotation across nodes and (b) randomly shuts
// down the redundant clock-synchronization VM with a bounded rate, while
// guaranteeing the fault hypothesis — never both clock-synchronization VMs
// of one node at the same time. Failed VMs reboot after a configurable
// downtime, restoring redundancy.
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"time"

	"gptpfta/internal/sim"
)

// NodeControl is the injector's interface to one node: fail and reboot a
// clock-synchronization VM by index.
type NodeControl interface {
	ControlName() string
	NumVMs() int
	VMFailed(i int) bool
	InjectFail(i int) error
	InjectReboot(i int) error
}

// Config parameterises the injector.
type Config struct {
	// GMPeriod is the interval between consecutive grandmaster shutdowns;
	// the rotation walks the nodes sequentially (dev1, dev2, …), so each
	// node's grandmaster fails once per GMPeriod·len(nodes).
	GMPeriod time.Duration
	// GMIndex is the VM index acting as grandmaster on every node (VM 0).
	GMIndex int
	// RedundantMinPerHour / RedundantMaxPerHour bound the random failure
	// rate of the redundant (non-GM) VM, per node. The paper uses 1..12.
	RedundantMinPerHour float64
	RedundantMaxPerHour float64
	// Downtime is how long a failed VM stays down before rebooting.
	// Default 45 s (guest reboot on the Atom-class ECD).
	Downtime time.Duration
	// DowntimeJitter randomises the downtime by ±this amount.
	DowntimeJitter time.Duration
	// Start delays the first injection, letting the system synchronize.
	Start time.Duration
}

// validate rejects configurations that previously clamped silently. Zero
// values still mean "use the default" (withDefaults fills them in); what is
// rejected here is an explicitly invalid request — a negative or NaN rate,
// an inverted rate window, a negative duration, or a grandmaster index no
// node has.
func (c Config) validate(nodes []NodeControl) error {
	for _, r := range []struct {
		name string
		val  float64
	}{
		{"RedundantMinPerHour", c.RedundantMinPerHour},
		{"RedundantMaxPerHour", c.RedundantMaxPerHour},
	} {
		if math.IsNaN(r.val) || math.IsInf(r.val, 0) {
			return fmt.Errorf("faultinject: %s = %v is not a finite rate", r.name, r.val)
		}
		if r.val < 0 {
			return fmt.Errorf("faultinject: %s = %v is negative", r.name, r.val)
		}
	}
	if c.RedundantMinPerHour > 0 && c.RedundantMaxPerHour > 0 &&
		c.RedundantMaxPerHour < c.RedundantMinPerHour {
		return fmt.Errorf("faultinject: redundant rate window inverted (%v..%v per hour)",
			c.RedundantMinPerHour, c.RedundantMaxPerHour)
	}
	for _, d := range []struct {
		name string
		val  time.Duration
	}{
		{"GMPeriod", c.GMPeriod}, {"Downtime", c.Downtime},
		{"DowntimeJitter", c.DowntimeJitter}, {"Start", c.Start},
	} {
		if d.val < 0 {
			return fmt.Errorf("faultinject: %s = %v is negative", d.name, d.val)
		}
	}
	if c.GMIndex < 0 {
		return fmt.Errorf("faultinject: GMIndex = %d is negative", c.GMIndex)
	}
	for _, n := range nodes {
		if c.GMIndex >= n.NumVMs() {
			return fmt.Errorf("faultinject: GMIndex = %d out of range for node %s (%d VMs)",
				c.GMIndex, n.ControlName(), n.NumVMs())
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.GMPeriod <= 0 {
		c.GMPeriod = time.Hour
	}
	if c.RedundantMinPerHour <= 0 {
		c.RedundantMinPerHour = 1
	}
	if c.RedundantMaxPerHour < c.RedundantMinPerHour {
		c.RedundantMaxPerHour = 12
	}
	if c.Downtime <= 0 {
		c.Downtime = 45 * time.Second
	}
	if c.DowntimeJitter <= 0 {
		c.DowntimeJitter = 10 * time.Second
	}
	if c.Start <= 0 {
		c.Start = 2 * time.Minute
	}
	return c
}

// Stats summarises what the injector did — the numbers §III-C reports.
type Stats struct {
	TotalFailures     int
	GMFailures        int
	RedundantFailures int
	SkippedByGuard    int // injections suppressed by the fault hypothesis
	Reboots           int
	// NetworkFaults counts chaos-engine actions observed alongside this
	// campaign (see NoteNetworkFault) — zero unless a chaos plan runs.
	NetworkFaults int
}

// String formats the stats like the paper's summary sentence.
func (s Stats) String() string {
	base := fmt.Sprintf("%d fail-silent clock synchronization VMs, %d of which were grandmaster clock failures (%d redundant, %d suppressed by the fault hypothesis, %d reboots)",
		s.TotalFailures, s.GMFailures, s.RedundantFailures, s.SkippedByGuard, s.Reboots)
	if s.NetworkFaults > 0 {
		base += fmt.Sprintf("; %d network chaos actions", s.NetworkFaults)
	}
	return base
}

// Injector drives fault injection over a set of nodes.
type Injector struct {
	cfg   Config
	sched *sim.Scheduler
	rng   sim.RNG
	nodes []NodeControl

	gmTicker *sim.Ticker
	redTicks []*sim.Ticker
	gmNext   int
	stats    Stats
	stopped  bool
}

// New creates an injector over the given nodes. It rejects invalid
// configurations (negative or NaN rates, an inverted rate window, a
// GMIndex no node has) instead of clamping them.
func New(sched *sim.Scheduler, rng sim.RNG, nodes []NodeControl, cfg Config) (*Injector, error) {
	if len(nodes) == 0 {
		return nil, errors.New("faultinject: no nodes")
	}
	if err := cfg.validate(nodes); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg.withDefaults(), sched: sched, rng: rng, nodes: nodes}, nil
}

// Stats reports the injection summary so far.
func (in *Injector) Stats() Stats { return in.stats }

// NoteNetworkFault records one network chaos action in the campaign stats.
// Wire it as the chaos engine's action observer to compose the two
// injectors' accounting.
func (in *Injector) NoteNetworkFault() { in.stats.NetworkFaults++ }

// Start schedules the injection campaigns.
func (in *Injector) Start() error {
	// Grandmaster rotation: one GM shutdown per GMPeriod, cycling
	// dev1, dev2, … sequentially. The first fire is anchored to the absolute
	// Start instant, so a warm-started injector attached after t=0 fires at
	// the same instants a cold t=0 injector would.
	t, err := in.sched.Every(sim.Time(in.cfg.Start), in.cfg.GMPeriod, in.failNextGM)
	if err != nil {
		return err
	}
	in.gmTicker = t

	// Redundant-VM random shutdowns: draw the next delay from the bounded
	// rate window independently per node.
	for i := range in.nodes {
		i := i
		in.scheduleRedundant(i)
	}
	return nil
}

// Stop halts future injections (running reboots still complete).
func (in *Injector) Stop() {
	in.stopped = true
	if in.gmTicker != nil {
		in.gmTicker.Stop()
	}
	for _, t := range in.redTicks {
		if t != nil {
			t.Stop()
		}
	}
}

func (in *Injector) failNextGM() {
	if in.stopped {
		return
	}
	node := in.nodes[in.gmNext%len(in.nodes)]
	in.gmNext++
	in.fail(node, in.cfg.GMIndex, true)
}

func (in *Injector) scheduleRedundant(nodeIdx int) {
	if in.stopped {
		return
	}
	// Rate in [min, max] failures per hour → delay = 1h / rate.
	rate := in.cfg.RedundantMinPerHour
	if in.rng != nil {
		rate += in.rng.Float64() * (in.cfg.RedundantMaxPerHour - in.cfg.RedundantMinPerHour)
	}
	delay := time.Duration(float64(time.Hour) / rate)
	// Absolute anchor, same rationale as the GM rotation above.
	in.sched.At(sim.Time(in.cfg.Start+delay), func() {
		if in.stopped {
			return
		}
		node := in.nodes[nodeIdx]
		red := in.redundantIndex(node)
		in.fail(node, red, false)
		in.scheduleRedundantNext(nodeIdx)
	})
}

func (in *Injector) scheduleRedundantNext(nodeIdx int) {
	if in.stopped {
		return
	}
	rate := in.cfg.RedundantMinPerHour
	if in.rng != nil {
		rate += in.rng.Float64() * (in.cfg.RedundantMaxPerHour - in.cfg.RedundantMinPerHour)
	}
	delay := time.Duration(float64(time.Hour) / rate)
	in.sched.After(delay, func() {
		if in.stopped {
			return
		}
		node := in.nodes[nodeIdx]
		red := in.redundantIndex(node)
		in.fail(node, red, false)
		in.scheduleRedundantNext(nodeIdx)
	})
}

// redundantIndex picks a non-GM VM on the node (VM 1 in the paper's
// two-VM configuration).
func (in *Injector) redundantIndex(node NodeControl) int {
	for i := 0; i < node.NumVMs(); i++ {
		if i != in.cfg.GMIndex {
			return i
		}
	}
	return -1
}

// fail injects one fail-silent shutdown, enforcing the fault hypothesis:
// if the node's other clock-synchronization VM is already down, the
// injection is suppressed (the paper's tool does the same).
func (in *Injector) fail(node NodeControl, vm int, isGM bool) {
	if vm < 0 || vm >= node.NumVMs() {
		return
	}
	if node.VMFailed(vm) {
		in.stats.SkippedByGuard++
		return
	}
	for i := 0; i < node.NumVMs(); i++ {
		if i != vm && node.VMFailed(i) {
			in.stats.SkippedByGuard++
			return // both VMs of a node must never be down simultaneously
		}
	}
	if err := node.InjectFail(vm); err != nil {
		return
	}
	in.stats.TotalFailures++
	if isGM {
		in.stats.GMFailures++
	} else {
		in.stats.RedundantFailures++
	}
	down := in.cfg.Downtime
	if in.rng != nil && in.cfg.DowntimeJitter > 0 {
		down += time.Duration(in.rng.Int63n(2*int64(in.cfg.DowntimeJitter))) - in.cfg.DowntimeJitter
	}
	in.sched.After(down, func() {
		if err := node.InjectReboot(vm); err == nil {
			in.stats.Reboots++
		}
	})
}
