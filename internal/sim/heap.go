package sim

// Hand-rolled indexed 4-ary min-heap over slab slots, keyed on (at, seq).
// Compared with container/heap this removes the interface boxing, the
// virtual Less/Swap calls and one pointer indirection per element; the
// higher arity halves tree depth, trading slightly more comparisons per
// level for far fewer cache-missing swaps. The heap stores int32 slot
// indices and mirrors each slot's position in eventSlot.heapIdx, which is
// what makes O(1) cancellation-by-generation possible.

// eventLess orders slots by scheduled instant, then by the causal key
// (schedule instant, causing event's schedule instant), then insertion
// sequence. Within one scheduler the causal components are monotone in seq,
// so the order is identical to the historical (at, seq); they exist so that
// cross-shard deliveries injected with sender-side keys (ScheduleKeyedArg)
// sort against local events the way a single-scheduler run would order
// them. The key is total and unique, so firing order is independent of
// heap shape — the determinism guarantee does not rest on heap stability.
func (s *Scheduler) eventLess(a, b int32) bool {
	sa, sb := &s.slab[a], &s.slab[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	if sa.schedAt != sb.schedAt {
		return sa.schedAt < sb.schedAt
	}
	if sa.cause != sb.cause {
		return sa.cause < sb.cause
	}
	return sa.seq < sb.seq
}

// heapPush appends slot i and restores the heap invariant.
func (s *Scheduler) heapPush(i int32) {
	s.heap = append(s.heap, i)
	j := len(s.heap) - 1
	s.slab[i].heapIdx = int32(j)
	s.siftUp(j)
}

// heapPopTop removes the minimum element (the caller has already read it
// from s.heap[0]) and restores the heap invariant.
func (s *Scheduler) heapPopTop() {
	h := s.heap
	n := len(h) - 1
	top := h[0]
	s.slab[top].heapIdx = -1
	if n > 0 {
		h[0] = h[n]
		s.slab[h[0]].heapIdx = 0
	}
	s.heap = h[:n]
	if n > 1 {
		s.siftDown(0)
	}
}

func (s *Scheduler) siftUp(j int) {
	h := s.heap
	for j > 0 {
		p := (j - 1) >> 2
		if !s.eventLess(h[j], h[p]) {
			break
		}
		h[j], h[p] = h[p], h[j]
		s.slab[h[j]].heapIdx = int32(j)
		s.slab[h[p]].heapIdx = int32(p)
		j = p
	}
}

func (s *Scheduler) siftDown(j int) {
	h := s.heap
	n := len(h)
	for {
		c := j<<2 + 1
		if c >= n {
			break
		}
		// Find the smallest of the up-to-four children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if s.eventLess(h[k], h[m]) {
				m = k
			}
		}
		if !s.eventLess(h[m], h[j]) {
			break
		}
		h[j], h[m] = h[m], h[j]
		s.slab[h[j]].heapIdx = int32(j)
		s.slab[h[m]].heapIdx = int32(m)
		j = m
	}
}
