package sim

import (
	"reflect"
	"testing"
	"time"
)

// pipe is a minimal one-directional cross-shard Boundary: sends queue in an
// outbox and commit as deliveries into the destination shard after delay.
type pipe struct {
	delay time.Duration
	dst   *Scheduler
	out   []Deferred
	recv  *[]Time // delivery instants, in callback order
}

func (p *pipe) MinDelay() time.Duration { return p.delay }

func (p *pipe) AppendDeferred(buf []Deferred) []Deferred {
	buf = append(buf, p.out...)
	p.out = p.out[:0]
	return buf
}

func (p *pipe) CommitDeferred(dir int, payload any, key1, key2 Time) {
	p.dst.ScheduleKeyedArg(key1.Add(p.delay), key1, key2, func(any) {
		*p.recv = append(*p.recv, p.dst.Now())
	}, payload)
}

// send captures the sender's causal key at the current instant, like a
// boundary netsim link does.
func (p *pipe) send(src *Scheduler, payload any) {
	_, cause, prev := src.SchedKeys()
	p.out = append(p.out, Deferred{
		Key1: src.Now(), Key2: cause, Key3: prev, Ord: src.NextDeferOrd(),
		Payload: payload, By: p,
	})
}

// fabricFixture wires two shards exchanging pings in both directions plus a
// control scheduler, and returns the delivery traces.
func runPingFabric(t *testing.T, pings int, delay time.Duration) (recv01, recv10, ctl []Time, stats FabricStats) {
	t.Helper()
	s0, s1, control := NewScheduler(), NewScheduler(), NewScheduler()
	p01 := &pipe{delay: delay, dst: s1, recv: &recv01}
	p10 := &pipe{delay: delay, dst: s0, recv: &recv10}

	// Each shard sends one ping per 100µs, with local busywork between, so
	// windows regularly have both shards busy (parallel runWindow path).
	for i := 0; i < pings; i++ {
		at := Time(i * 100_000)
		s0.At(at, func() { p01.send(s0, i) })
		s1.At(at.Add(50*time.Microsecond), func() { p10.send(s1, i) })
		s0.At(at.Add(10*time.Microsecond), func() {})
		s1.At(at.Add(10*time.Microsecond), func() {})
	}
	// A control event in the middle of the run: it must observe both shard
	// clocks at its own instant (events < ctlAt executed, events at ctlAt
	// still pending), exactly like a single-scheduler run.
	ctlAt := Time(pings * 50_000)
	control.At(ctlAt, func() {
		ctl = append(ctl, control.Now())
		if s0.Now() != ctlAt || s1.Now() != ctlAt {
			t.Errorf("control at %v saw shards at %v/%v, want both at %v",
				ctlAt, s0.Now(), s1.Now(), ctlAt)
		}
	})

	f := NewFabric([]*Scheduler{s0, s1}, control, []Boundary{p01, p10})
	if err := f.RunFor(time.Duration(pings) * 150 * time.Microsecond); err != nil {
		t.Fatal(err)
	}
	return recv01, recv10, ctl, f.Stats()
}

func TestFabricDeliversAcrossShards(t *testing.T) {
	const pings = 40
	const delay = 30 * time.Microsecond
	recv01, recv10, ctl, stats := runPingFabric(t, pings, delay)

	if len(recv01) != pings || len(recv10) != pings {
		t.Fatalf("deliveries: got %d/%d, want %d each", len(recv01), len(recv10), pings)
	}
	if len(ctl) != 1 {
		t.Fatalf("control events fired: %d, want 1", len(ctl))
	}
	for i, at := range recv01 {
		want := Time(i * 100_000).Add(delay)
		if at != want {
			t.Fatalf("delivery %d at %v, want send+delay = %v", i, at, want)
		}
	}
	if stats.Windows == 0 || stats.ControlRounds == 0 {
		t.Fatalf("stats not advancing: %+v", stats)
	}
	if stats.Committed != 2*pings {
		t.Fatalf("committed %d cross-shard sends, want %d", stats.Committed, 2*pings)
	}
	if stats.LookaheadNS != int64(delay) {
		t.Fatalf("lookahead %dns, want min boundary delay %dns", stats.LookaheadNS, int64(delay))
	}
}

// TestFabricDeterministicReplay pins run-to-run determinism of the fabric
// machinery itself: two identical fabrics produce identical delivery traces.
func TestFabricDeterministicReplay(t *testing.T) {
	a01, a10, _, _ := runPingFabric(t, 25, 40*time.Microsecond)
	b01, b10, _, _ := runPingFabric(t, 25, 40*time.Microsecond)
	if !reflect.DeepEqual(a01, b01) || !reflect.DeepEqual(a10, b10) {
		t.Fatal("identical fabrics produced different delivery traces")
	}
}

// TestFabricCommitOrder pins the barrier flush order: deferred sends from
// multiple boundaries commit sorted by (Key1, Key2, Key3, Ord, Rank, Dir),
// not by drain order. Key3 (the sending event's own cause) orders key-tied
// senders the way their shared heap would have; Ord — the source shard's
// issuance ordinal — then dominates Rank, so two same-instant sends issued
// by one callback through different boundary links commit in issuance
// order, not link registration order.
func TestFabricCommitOrder(t *testing.T) {
	d := []Deferred{
		{Key1: 200, Key2: 10, Key3: 5, Ord: 1, Rank: 0, Payload: 0},
		{Key1: 100, Key2: 30, Key3: 5, Ord: 2, Rank: 1, Payload: 1},
		{Key1: 100, Key2: 20, Key3: 9, Ord: 1, Rank: 0, Payload: 2},
		{Key1: 100, Key2: 20, Key3: 5, Ord: 5, Rank: 0, Payload: 3},
		{Key1: 100, Key2: 20, Key3: 5, Ord: 3, Rank: 2, Dir: 1, Payload: 4},
		{Key1: 100, Key2: 20, Key3: 5, Ord: 3, Rank: 2, Dir: 0, Payload: 5},
		{Key1: 100, Key2: 20, Key3: 5, Ord: 3, Rank: 1, Payload: 6},
	}
	sortDeferred(d)
	var got []int
	for i := range d {
		got = append(got, d[i].Payload.(int))
	}
	want := []int{6, 5, 4, 3, 2, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("commit order %v, want %v", got, want)
	}
}
