package sim

// Snapshotter is the contract every stateful simulation component
// implements for the copy-on-fork warm-start engine: Snapshot captures the
// component's mutable state as an opaque value, Restore rewinds the SAME
// component instance to that state in place. Restoring in place (rather
// than rebuilding a copy) is what keeps closures already queued in the
// scheduler valid across a fork: they capture component pointers, and those
// pointers keep pointing at correctly-rewound state. A snapshot may be
// restored any number of times; each Restore must leave the component
// bit-identical to the moment the snapshot was taken. See DESIGN.md,
// "Warm-state snapshots".
type Snapshotter interface {
	Snapshot() any
	Restore(snap any)
}

// Cloner is implemented by scheduled-event args that are mutated or
// recycled after they fire (pooled frames, egress jobs). The scheduler
// deep-copies such args once when a snapshot is taken — preserving a
// pristine copy the continuing run can no longer corrupt — and again on
// every Restore, so each fork consumes its own private copy.
type Cloner interface {
	CloneForSnapshot() any
}

// SchedulerSnapshot is the scheduler's full queue state: the event slab
// (including re-arm descriptors for tickers: at/seq/period per slot, not
// closures re-captured per fork), the heap order, the free list and the
// counters. Slots referencing Cloner args hold pristine deep copies.
type SchedulerSnapshot struct {
	now                            Time
	seq                            uint64
	deferOrd                       uint64
	slab                           []eventSlot
	heap                           []int32
	freeHead                       int32
	live                           int
	processed, pastClamps, cancels uint64
}

// Snapshot implements Snapshotter. Event callbacks are captured by
// reference: a queued callback is snapshot-safe iff it captures only
// components restored in place or values never mutated after scheduling —
// anything else must go through an AtArg descriptor implementing Cloner
// (see netsim's frame and egress-job descriptors).
func (s *Scheduler) Snapshot() any {
	sn := &SchedulerSnapshot{
		now:        s.now,
		seq:        s.seq,
		deferOrd:   s.deferOrd,
		slab:       append([]eventSlot(nil), s.slab...),
		heap:       append([]int32(nil), s.heap...),
		freeHead:   s.freeHead,
		live:       s.live,
		processed:  s.processed,
		pastClamps: s.pastClamps,
		cancels:    s.cancels,
	}
	for i := range sn.slab {
		if c, ok := sn.slab[i].arg.(Cloner); ok {
			sn.slab[i].arg = c.CloneForSnapshot()
		}
	}
	return sn
}

// Restore implements Snapshotter: it rewinds the queue to the snapshot.
// Slot indices and generations are restored verbatim, so EventIDs and
// *Ticker handles issued before the snapshot become valid again even if
// the event fired or was cancelled in the meantime; handles issued after
// the snapshot go stale (their generations are rolled back or reassigned).
func (s *Scheduler) Restore(snap any) {
	sn := snap.(*SchedulerSnapshot)
	s.now = sn.now
	s.seq = sn.seq
	s.deferOrd = sn.deferOrd
	s.slab = append(s.slab[:0], sn.slab...)
	for i := range s.slab {
		if c, ok := s.slab[i].arg.(Cloner); ok {
			s.slab[i].arg = c.CloneForSnapshot()
		}
	}
	s.heap = append(s.heap[:0], sn.heap...)
	s.freeHead = sn.freeHead
	s.live = sn.live
	s.processed = sn.processed
	s.pastClamps = sn.pastClamps
	s.cancels = sn.cancels
	s.stopped = false
}
