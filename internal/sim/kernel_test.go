package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// --- edge cases the zero-allocation kernel must preserve ---

func TestCancelInsideCallback(t *testing.T) {
	// The first event at t=100 cancels both a same-instant event queued
	// behind it and a later event; neither may fire.
	s := NewScheduler()
	var idSame, idLater EventID
	var same, later bool
	s.At(100, func() {
		s.Cancel(idSame)
		s.Cancel(idLater)
	})
	idSame = s.At(100, func() { same = true })
	idLater = s.At(200, func() { later = true })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if same || later {
		t.Fatalf("events cancelled from inside a callback fired: same=%v later=%v", same, later)
	}
	if !s.Drained() {
		t.Fatal("cancelled events left the scheduler undrained")
	}
}

func TestCancelAlreadyFired(t *testing.T) {
	s := NewScheduler()
	fired := 0
	id := s.At(10, func() { fired++ })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	s.Cancel(id) // no-op: already fired
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	// The fired slot has been recycled; a new event may occupy it. The
	// stale handle must not be able to kill the new tenant.
	fresh := false
	s.At(20, func() { fresh = true })
	s.Cancel(id)
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !fresh {
		t.Fatal("stale EventID cancelled a recycled slot's new event")
	}
}

func TestCancelZeroEventID(t *testing.T) {
	s := NewScheduler()
	s.Cancel(EventID{}) // must be a safe no-op
	if (EventID{}).Valid() {
		t.Fatal("zero EventID reports valid")
	}
	id := s.At(1, func() {})
	if !id.Valid() {
		t.Fatal("issued EventID reports invalid")
	}
}

func TestTickerStopInsideOwnTickThenSlotReuse(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick *Ticker
	tick, err := s.Every(0, 10*time.Nanosecond, func() {
		count++
		if count == 2 {
			tick.Stop()
			tick.Stop() // double stop from inside the tick is safe
		}
	})
	if err != nil {
		t.Fatalf("every: %v", err)
	}
	// Events that outlive the ticker must be unaffected by its slot being
	// recycled underneath them.
	survived := false
	s.At(1000, func() { survived = true })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if count != 2 {
		t.Fatalf("ticker fired %d times after in-tick stop, want 2", count)
	}
	if !survived {
		t.Fatal("unrelated event lost")
	}
	if !s.Drained() {
		t.Fatal("scheduler not drained after run")
	}
}

func TestTickerSlotReuseKeepsFIFOWithCallbackEvents(t *testing.T) {
	// A ticker's next tick is rescheduled after its callback runs, so an
	// event the callback schedules for exactly one period ahead must fire
	// before the next tick (it received the smaller sequence number). This
	// pins the old callback-driven ticker's ordering.
	s := NewScheduler()
	var order []string
	ticks := 0
	tick, err := s.Every(10, 10*time.Nanosecond, func() {
		ticks++
		order = append(order, "tick")
		if ticks == 1 {
			s.After(10*time.Nanosecond, func() { order = append(order, "cb") })
		}
		if ticks == 3 {
			order = append(order, "stop")
		}
	})
	if err != nil {
		t.Fatalf("every: %v", err)
	}
	if err := s.RunUntil(20); err != nil {
		t.Fatalf("run: %v", err)
	}
	tick.Stop()
	want := []string{"tick", "cb", "tick"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestInterleavedSameInstantFIFOWithCancels(t *testing.T) {
	s := NewScheduler()
	var got []int
	ids := make([]EventID, 12)
	for i := 0; i < 12; i++ {
		i := i
		ids[i] = s.At(77, func() { got = append(got, i) })
	}
	// Cancel a prefix-interleaved subset, including the first and last.
	for _, i := range []int{0, 3, 4, 7, 11} {
		s.Cancel(ids[i])
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []int{1, 2, 5, 6, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPastClampDiagnostics(t *testing.T) {
	s := NewScheduler()
	s.At(100, func() {
		s.At(10, func() {}) // in the past: clamped and counted
		s.At(100, func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := s.PastClamps(); got != 1 {
		t.Fatalf("PastClamps() = %d, want 1", got)
	}
	d := s.Diag()
	if d.PastClamps != 1 || d.Pending != 0 || d.Processed != 3 {
		t.Fatalf("Diag() = %+v", d)
	}
	if !s.Drained() {
		t.Fatal("Drained() = false after full run")
	}
}

func TestAtArgDeliversArgument(t *testing.T) {
	s := NewScheduler()
	type payload struct{ v int }
	p := &payload{v: 41}
	var got *payload
	s.AtArg(10, func(a any) { got = a.(*payload) }, p)
	cancelled := s.AfterArg(20*time.Nanosecond, func(a any) { t.Fatal("cancelled AfterArg fired") }, p)
	s.Cancel(cancelled)
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != p {
		t.Fatalf("AtArg delivered %v, want %v", got, p)
	}
}

func TestWhenReportsPendingInstant(t *testing.T) {
	s := NewScheduler()
	id := s.At(123, func() {})
	if at, ok := s.When(id); !ok || at != 123 {
		t.Fatalf("When = %v,%v want 123,true", at, ok)
	}
	s.Cancel(id)
	if _, ok := s.When(id); ok {
		t.Fatal("When reported a cancelled event as pending")
	}
	if _, ok := s.When(EventID{}); ok {
		t.Fatal("When accepted the zero EventID")
	}
}

// --- allocation discipline ---

func TestSteadyStateScheduleIsAllocFree(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	// Warm the slab.
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i), fn)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		s.After(10*time.Nanosecond, fn)
		s.Step()
	}); allocs != 0 {
		t.Fatalf("steady-state schedule+fire allocates %.1f per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		id := s.After(10*time.Nanosecond, fn)
		s.Cancel(id)
		s.RunFor(20 * time.Nanosecond)
	}); allocs != 0 {
		t.Fatalf("steady-state schedule+cancel allocates %.1f per op, want 0", allocs)
	}
}

func TestTickerTickIsAllocFree(t *testing.T) {
	s := NewScheduler()
	n := 0
	_, err := s.Every(0, 10*time.Nanosecond, func() { n++ })
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(100 * time.Nanosecond) // warm up
	if allocs := testing.AllocsPerRun(100, func() {
		s.RunFor(1000 * time.Nanosecond) // 100 ticks
	}); allocs != 0 {
		t.Fatalf("ticker steady state allocates %.1f per 100 ticks, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("ticker never fired")
	}
}

// --- randomized differential test against a container/heap reference ---

// refEvent / refQueue reimplement the original container/heap-based
// scheduler semantics as the oracle.
type refEvent struct {
	at    Time
	seq   uint64
	index int
	fn    func()
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *refQueue) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type refScheduler struct {
	now   Time
	seq   uint64
	queue refQueue
}

func (r *refScheduler) at(t Time, fn func()) *refEvent {
	if t < r.now {
		t = r.now
	}
	e := &refEvent{at: t, seq: r.seq, fn: fn}
	r.seq++
	heap.Push(&r.queue, e)
	return e
}

func (r *refScheduler) cancel(e *refEvent) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&r.queue, e.index)
	e.index = -1
}

func (r *refScheduler) run() {
	for len(r.queue) > 0 {
		e := heap.Pop(&r.queue).(*refEvent)
		e.index = -1
		r.now = e.at
		e.fn()
	}
}

// runDifferential drives both schedulers through the same randomized
// schedule/cancel script and compares complete firing traces.
func runDifferential(t *testing.T, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	type rec struct {
		id int
		at Time
	}
	var gotNew, gotRef []rec

	s := NewScheduler()
	r := &refScheduler{}
	newIDs := make([]EventID, 0, ops)
	refEvs := make([]*refEvent, 0, ops)

	next := 0
	for i := 0; i < ops; i++ {
		switch {
		case len(newIDs) > 0 && rng.Intn(3) == 0: // cancel a random event
			k := rng.Intn(len(newIDs))
			s.Cancel(newIDs[k])
			r.cancel(refEvs[k])
		default:
			at := Time(rng.Intn(1000))
			id := next
			next++
			newIDs = append(newIDs, s.At(at, func() { gotNew = append(gotNew, rec{id: id, at: s.Now()}) }))
			refEvs = append(refEvs, r.at(at, func() { gotRef = append(gotRef, rec{id: id, at: r.now}) }))
		}
		// Occasionally drain part of the timeline mid-script.
		if rng.Intn(16) == 0 {
			target := s.Now() + Time(rng.Intn(500))
			if err := s.RunUntil(target); err != nil {
				t.Fatal(err)
			}
			for len(r.queue) > 0 && r.queue[0].at <= target {
				e := heap.Pop(&r.queue).(*refEvent)
				e.index = -1
				r.now = e.at
				e.fn()
			}
			if r.now < s.Now() {
				r.now = s.Now()
			}
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	r.run()

	if len(gotNew) != len(gotRef) {
		t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(gotNew), len(gotRef))
	}
	for i := range gotNew {
		if gotNew[i] != gotRef[i] {
			t.Fatalf("seed %d: divergence at event %d: kernel %+v, reference %+v",
				seed, i, gotNew[i], gotRef[i])
		}
	}
}

func TestSchedulerMatchesReferenceModel(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		runDifferential(t, seed, 400)
	}
}

func FuzzSchedulerVsReferenceModel(f *testing.F) {
	f.Add(int64(1), uint16(100))
	f.Add(int64(42), uint16(1000))
	f.Add(int64(-7), uint16(317))
	f.Fuzz(func(t *testing.T, seed int64, ops uint16) {
		runDifferential(t, seed, int(ops%2048))
	})
}
