// Package sim provides the deterministic discrete-event simulation kernel
// that every other substrate (clocks, network, hypervisor) runs on.
//
// All simulated components share a single Scheduler. Time is a monotonically
// increasing nanosecond counter representing ideal "true" time; simulated
// clocks in package clock map true time onto drifting local timescales.
// Events that are scheduled for the same instant fire in FIFO order, which —
// together with the seeded RNG streams in rng.go — makes every run
// bit-for-bit reproducible.
//
// The kernel is allocation-free in steady state: events live inline in a
// growable slab indexed by a hand-rolled 4-ary min-heap (see heap.go), At
// and After hand out compact EventID handles instead of per-event pointers,
// Cancel is an O(1) generation bump with lazy deletion at pop, and fired
// slots recycle through a free list. See DESIGN.md, "Event kernel".
package sim

import (
	"errors"
	"fmt"
	"time"
)

// Time is an absolute instant on the simulation's ideal timescale,
// in nanoseconds since the simulation epoch.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t−u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the instant to a duration since the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant as a duration since the simulation epoch.
func (t Time) String() string { return time.Duration(t).String() }

// EventID is a compact handle to a scheduled callback: a slab slot plus a
// generation that invalidates the handle once the event fires or is
// cancelled. The zero EventID is never valid, so it can be stored freely as
// a "no event" sentinel.
type EventID struct {
	slot uint32
	gen  uint32
}

// Valid reports whether the handle was ever issued by a scheduler. It does
// not check whether the event is still pending; Cancel on a fired event is
// simply a no-op.
func (id EventID) Valid() bool { return id.gen != 0 }

// eventSlot is one inline event record. Slots are recycled through the
// scheduler's free list; gen disambiguates incarnations so stale EventIDs
// cannot touch a reused slot.
type eventSlot struct {
	at  Time
	seq uint64
	// schedAt is the simulation instant the schedule call happened at, and
	// cause is the schedAt of the event whose callback made that call (for
	// calls from outside any callback, cause == schedAt). Together they form
	// the causal portion of the firing key (at, schedAt, cause, seq): within
	// one scheduler the extended key orders identically to (at, seq), but it
	// also lets the sharded fabric inject cross-shard deliveries with their
	// sender-side keys (ScheduleKeyedArg) so they interleave with local
	// events exactly where a single-scheduler run would have placed them.
	schedAt Time
	cause   Time
	// Exactly one of fn / afn is set. afn receives arg, letting hot
	// callers (link delivery, bridge egress) schedule with a prebound
	// callback and avoid a per-event closure allocation.
	fn  func()
	afn func(any)
	arg any
	// period > 0 marks a ticker slot: after firing it is pushed back with
	// at += period, reusing the slot, the callback and the EventID.
	period    time.Duration
	gen       uint32
	heapIdx   int32 // position in Scheduler.heap; -1 when not queued
	nextFree  int32
	cancelled bool
}

// ErrStopped is returned by Run when the scheduler was stopped explicitly.
var ErrStopped = errors.New("sim: scheduler stopped")

// Scheduler is a deterministic discrete-event executor. The zero value is
// not usable; create one with NewScheduler.
type Scheduler struct {
	now      Time
	seq      uint64
	slab     []eventSlot
	heap     []int32 // slot indices; 4-ary min-heap on (at, seq)
	freeHead int32   // head of the free-slot list; -1 when empty
	live     int     // queued events that are not cancelled
	stopped  bool

	// firing/firingSchedAt track the schedule-time key of the event whose
	// callback is currently executing, so schedule() can stamp the causal
	// key of everything that callback schedules. firingCause is that
	// event's own cause key, exposed through SchedKeys as the third
	// mailbox sort key (it is never stamped onto scheduled events).
	firing        bool
	firingSchedAt Time
	firingCause   Time

	// deferOrd numbers this shard's deferred cross-shard sends in issuance
	// order (see NextDeferOrd); single-scheduler runs never touch it.
	deferOrd uint64

	// processed counts events that have fired, for diagnostics.
	processed uint64
	// pastClamps counts At calls that asked for an instant already in the
	// past and were clamped to now — usually a causality bug upstream.
	pastClamps uint64
	// cancels counts effective Cancel calls (stale handles excluded).
	cancels uint64
}

// NewScheduler returns a scheduler positioned at the simulation epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{freeHead: -1}
}

// Now reports the current simulation instant.
func (s *Scheduler) Now() Time { return s.now }

// Processed reports how many events have fired so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Pending reports how many events are currently queued (cancelled events
// awaiting lazy removal are not counted).
func (s *Scheduler) Pending() int { return s.live }

// Drained reports whether no live events remain queued.
func (s *Scheduler) Drained() bool { return s.live == 0 }

// PastClamps reports how many times At was asked to schedule in the past
// and clamped the event to "now". A nonzero count usually indicates a
// causality bug in a component; core.System surfaces it at teardown.
func (s *Scheduler) PastClamps() uint64 { return s.pastClamps }

// Cancelled reports how many events were cancelled before firing.
func (s *Scheduler) Cancelled() uint64 { return s.cancels }

// Diagnostics is a point-in-time snapshot of kernel internals, exposed for
// the profiling harness and teardown logging.
type Diagnostics struct {
	Processed  uint64 // events fired
	Cancelled  uint64 // events cancelled before firing
	PastClamps uint64 // At calls clamped to now
	Pending    int    // live queued events
	QueueLen   int    // heap entries including lazily-deleted ones
	SlabSlots  int    // slots ever allocated (high-water mark)
}

// Diag returns kernel diagnostics.
func (s *Scheduler) Diag() Diagnostics {
	return Diagnostics{
		Processed:  s.processed,
		Cancelled:  s.cancels,
		PastClamps: s.pastClamps,
		Pending:    s.live,
		QueueLen:   len(s.heap),
		SlabSlots:  len(s.slab),
	}
}

// alloc pops a slot off the free list, growing the slab only when the list
// is empty; steady-state scheduling therefore never allocates.
func (s *Scheduler) alloc() int32 {
	if s.freeHead >= 0 {
		i := s.freeHead
		s.freeHead = s.slab[i].nextFree
		return i
	}
	s.slab = append(s.slab, eventSlot{gen: 1, heapIdx: -1, nextFree: -1})
	return int32(len(s.slab) - 1)
}

// free recycles a slot whose generation has already been bumped.
func (s *Scheduler) free(i int32) {
	sl := &s.slab[i]
	sl.fn, sl.afn, sl.arg = nil, nil, nil
	sl.period = 0
	sl.cancelled = false
	sl.heapIdx = -1
	sl.nextFree = s.freeHead
	s.freeHead = i
}

// bumpGen invalidates outstanding EventIDs for the slot. Generation 0 is
// reserved for the invalid zero EventID.
func (sl *eventSlot) bumpGen() {
	sl.gen++
	if sl.gen == 0 {
		sl.gen = 1
	}
}

// schedule is the shared entry point behind At/After/AtArg/Every.
func (s *Scheduler) schedule(t Time, fn func(), afn func(any), arg any, period time.Duration) EventID {
	cause := s.now
	if s.firing {
		cause = s.firingSchedAt
	}
	return s.scheduleKeyed(t, s.now, cause, fn, afn, arg, period)
}

// scheduleKeyed is schedule with explicit causal keys (cross-shard commits).
func (s *Scheduler) scheduleKeyed(t, schedAt, cause Time, fn func(), afn func(any), arg any, period time.Duration) EventID {
	if t < s.now {
		t = s.now
		s.pastClamps++
	}
	i := s.alloc()
	sl := &s.slab[i]
	sl.at = t
	sl.seq = s.seq
	s.seq++
	sl.schedAt = schedAt
	sl.cause = cause
	sl.fn, sl.afn, sl.arg = fn, afn, arg
	sl.period = period
	s.heapPush(i)
	s.live++
	return EventID{slot: uint32(i), gen: sl.gen}
}

// SchedKeys reports the causal keys a schedule call made right now would
// carry: the current instant, the schedule-time key of the callback being
// fired, and that callback's own cause key (outside any callback, all
// three are the current instant). The sharded fabric captures these at a
// deferred cross-shard send: schedAt and cause are replayed through
// ScheduleKeyedArg on the destination shard, so the delivery sorts against
// that shard's local events exactly as it would have in a single-scheduler
// run, while prevCause only orders the barrier mailbox — it reproduces the
// heap order (at, schedAt, cause, …) of the *sending* events themselves,
// which is the order a single scheduler executed them (and hence inserted
// their deliveries) in.
func (s *Scheduler) SchedKeys() (schedAt, cause, prevCause Time) {
	if s.firing {
		return s.now, s.firingSchedAt, s.firingCause
	}
	return s.now, s.now, s.now
}

// NextDeferOrd issues the next deferred-send ordinal for this shard.
// Boundary links stamp it onto every send they defer, so the fabric's
// barrier commit can reproduce the exact issuance order of same-instant
// sends that left one shard through different boundary links — the order a
// single-scheduler run would have given them by insertion sequence.
func (s *Scheduler) NextDeferOrd() uint64 {
	s.deferOrd++
	return s.deferOrd
}

// ScheduleKeyedArg schedules fn(arg) at instant t carrying an explicit
// causal key captured elsewhere (see SchedKeys). It is the inter-shard
// mailbox primitive: everything else should use At/AtArg, which stamp the
// keys automatically.
func (s *Scheduler) ScheduleKeyedArg(t, schedAt, cause Time, fn func(any), arg any) EventID {
	return s.scheduleKeyed(t, schedAt, cause, nil, fn, arg, 0)
}

// NextEventAt reports the instant of the earliest live queued event. The
// second result is false when the queue is empty.
func (s *Scheduler) NextEventAt() (Time, bool) {
	i, ok := s.peekLive()
	if !ok {
		return 0, false
	}
	return s.slab[i].at, true
}

// SkipTo advances the clock to t without firing anything. It is a
// fabric-internal fast-forward for shards whose next event lies beyond the
// current synchronization window; calling it with a pending event at or
// before t would violate causality, so it panics.
func (s *Scheduler) SkipTo(t Time) {
	if at, ok := s.NextEventAt(); ok && at <= t {
		panic(fmt.Sprintf("sim: SkipTo(%v) past pending event at %v", t, at))
	}
	if t > s.now {
		s.now = t
	}
}

// AdvanceTo advances the clock to t without firing anything, leaving events
// pending at exactly t in the queue — they fire at their scheduled instant
// once execution resumes. The fabric uses it to present shard clocks at the
// control instant tc while the shards' own tc events wait their turn; an
// unfired event strictly before t would violate causality, so it panics.
func (s *Scheduler) AdvanceTo(t Time) {
	if at, ok := s.NextEventAt(); ok && at < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) past pending event at %v", t, at))
	}
	if t > s.now {
		s.now = t
	}
}

// At schedules fn to run at instant t. Scheduling in the past is a
// programming error and is clamped to "now" so that causality is preserved;
// the event still fires and the clamp is counted (see PastClamps).
func (s *Scheduler) At(t Time, fn func()) EventID {
	return s.schedule(t, fn, nil, nil, 0)
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d time.Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now.Add(d), fn, nil, nil, 0)
}

// AtArg schedules fn(arg) at instant t. Hot paths that would otherwise
// capture state in a fresh closure per event (frame delivery, bridge
// egress) pass a prebound fn and thread their state through arg — boxing a
// pointer into an interface does not allocate, so the call is alloc-free.
func (s *Scheduler) AtArg(t Time, fn func(any), arg any) EventID {
	return s.schedule(t, nil, fn, arg, 0)
}

// AfterArg schedules fn(arg) to run d after the current instant.
func (s *Scheduler) AfterArg(d time.Duration, fn func(any), arg any) EventID {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now.Add(d), nil, fn, arg, 0)
}

// Cancel removes a pending event in O(1): the slot's generation is bumped
// (so the handle dies) and the heap entry is discarded lazily when it
// reaches the top. Cancelling an event that already fired, was already
// cancelled, or is the zero EventID is a no-op.
func (s *Scheduler) Cancel(id EventID) {
	i := int32(id.slot)
	if id.gen == 0 || int(i) >= len(s.slab) {
		return
	}
	sl := &s.slab[i]
	if sl.gen != id.gen || sl.cancelled {
		return
	}
	sl.cancelled = true
	s.cancels++
	sl.bumpGen()
	sl.fn, sl.afn, sl.arg = nil, nil, nil
	if sl.heapIdx >= 0 {
		// Still queued: drop from the live count; the heap entry is
		// reaped at pop. A ticker cancelled from inside its own callback
		// is not queued at this point and was already uncounted.
		s.live--
	}
}

// When reports the instant a pending event is scheduled for.
func (s *Scheduler) When(id EventID) (Time, bool) {
	i := int32(id.slot)
	if id.gen == 0 || int(i) >= len(s.slab) {
		return 0, false
	}
	sl := &s.slab[i]
	if sl.gen != id.gen || sl.heapIdx < 0 {
		return 0, false
	}
	return sl.at, true
}

// peekLive reaps cancelled entries off the heap top and reports the slot of
// the earliest live event, if any.
func (s *Scheduler) peekLive() (int32, bool) {
	for len(s.heap) > 0 {
		i := s.heap[0]
		if !s.slab[i].cancelled {
			return i, true
		}
		s.heapPopTop()
		s.free(i)
	}
	return -1, false
}

// fire pops slot i (already verified live) and runs its callback.
func (s *Scheduler) fire(i int32) {
	s.heapPopTop()
	sl := &s.slab[i]
	s.now = sl.at
	s.processed++
	s.live--
	if sl.period > 0 {
		// Ticker fast path: fire, then push the same slot back with
		// at += period. The callback, slot and EventID are all reused, so
		// a steady ticker schedules with zero allocations. The reschedule
		// happens after fn returns — matching the callback-driven ticker
		// it replaces — so events fn schedules for the same future
		// instant keep their FIFO position ahead of the next tick.
		gen := sl.gen
		fn := sl.fn
		prevFiring, prevSchedAt, prevCause := s.firing, s.firingSchedAt, s.firingCause
		s.firing, s.firingSchedAt, s.firingCause = true, sl.schedAt, sl.cause
		fn()
		s.firing, s.firingSchedAt, s.firingCause = prevFiring, prevSchedAt, prevCause
		sl = &s.slab[i] // fn may have grown the slab
		if sl.cancelled || sl.gen != gen {
			s.free(i) // stopped from within its own callback
			return
		}
		sl.at = sl.at.Add(sl.period)
		sl.seq = s.seq
		s.seq++
		// The re-arm is causally a schedule call made by this tick's
		// callback: scheduled now, caused by the slot's previous key.
		sl.cause = sl.schedAt
		sl.schedAt = s.now
		s.heapPush(i)
		s.live++
		return
	}
	// One-shot: invalidate the handle and recycle the slot before the
	// callback runs, so the callback can immediately reuse it.
	fn, afn, arg := sl.fn, sl.afn, sl.arg
	schedAt, cause := sl.schedAt, sl.cause
	sl.bumpGen()
	s.free(i)
	prevFiring, prevSchedAt, prevCause := s.firing, s.firingSchedAt, s.firingCause
	s.firing, s.firingSchedAt, s.firingCause = true, schedAt, cause
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
	s.firing, s.firingSchedAt, s.firingCause = prevFiring, prevSchedAt, prevCause
}

// Step fires the next pending event and reports whether one was available.
func (s *Scheduler) Step() bool {
	i, ok := s.peekLive()
	if !ok {
		return false
	}
	s.fire(i)
	return true
}

// RunUntil executes events in order until the queue is exhausted or the next
// event lies strictly after t. The clock is left at min(t, last event time
// processed); if events remain, Now() is advanced to t so that subsequent
// RunUntil calls continue seamlessly.
func (s *Scheduler) RunUntil(t Time) error {
	for !s.stopped {
		i, ok := s.peekLive()
		if !ok || s.slab[i].at > t {
			break
		}
		s.fire(i)
	}
	if s.stopped {
		s.stopped = false
		return ErrStopped
	}
	if s.now < t {
		s.now = t
	}
	return nil
}

// RunFor advances the simulation by d from the current instant.
func (s *Scheduler) RunFor(d time.Duration) error {
	return s.RunUntil(s.now.Add(d))
}

// Run executes events until the queue is empty or the scheduler is stopped.
func (s *Scheduler) Run() error {
	for !s.stopped && s.Step() {
	}
	if s.stopped {
		s.stopped = false
		return ErrStopped
	}
	return nil
}

// Stop causes the currently executing Run/RunUntil to return ErrStopped
// after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Every schedules fn to run periodically with the given period, starting at
// start. It returns a Ticker that can be stopped. The period must be
// positive.
func (s *Scheduler) Every(start Time, period time.Duration, fn func()) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: non-positive period %v", period)
	}
	id := s.schedule(start, fn, nil, nil, period)
	return &Ticker{sched: s, id: id}, nil
}

// Ticker repeatedly fires a callback with a fixed period until stopped.
// Ticks reuse one event slot in the scheduler, so a running ticker does not
// allocate.
type Ticker struct {
	sched *Scheduler
	id    EventID
}

// Stop cancels future firings. It is safe to call from within the callback
// and safe to call more than once.
func (t *Ticker) Stop() { t.sched.Cancel(t.id) }
