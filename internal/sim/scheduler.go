// Package sim provides the deterministic discrete-event simulation kernel
// that every other substrate (clocks, network, hypervisor) runs on.
//
// All simulated components share a single Scheduler. Time is a monotonically
// increasing nanosecond counter representing ideal "true" time; simulated
// clocks in package clock map true time onto drifting local timescales.
// Events that are scheduled for the same instant fire in FIFO order, which —
// together with the seeded RNG streams in rng.go — makes every run
// bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Time is an absolute instant on the simulation's ideal timescale,
// in nanoseconds since the simulation epoch.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t−u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the instant to a duration since the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant as a duration since the simulation epoch.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a handle to a scheduled callback. It can be cancelled with
// Scheduler.Cancel as long as it has not fired.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index; -1 once removed
	fn    func()
}

// At reports the instant the event is scheduled for.
func (e *Event) At() Time { return e.at }

// ErrStopped is returned by Run when the scheduler was stopped explicitly.
var ErrStopped = errors.New("sim: scheduler stopped")

// Scheduler is a deterministic discrete-event executor. The zero value is
// not usable; create one with NewScheduler.
type Scheduler struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool

	// processed counts events that have fired, for diagnostics.
	processed uint64
}

// NewScheduler returns a scheduler positioned at the simulation epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current simulation instant.
func (s *Scheduler) Now() Time { return s.now }

// Processed reports how many events have fired so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Pending reports how many events are currently queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at instant t. Scheduling in the past is a
// programming error and is clamped to "now" so that causality is preserved;
// the event still fires.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an event that already fired or
// was already cancelled is a no-op.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.queue, e.index)
	e.index = -1
}

// Step fires the next pending event and reports whether one was available.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e, ok := heap.Pop(&s.queue).(*Event)
	if !ok {
		return false
	}
	e.index = -1
	s.now = e.at
	s.processed++
	e.fn()
	return true
}

// RunUntil executes events in order until the queue is exhausted or the next
// event lies strictly after t. The clock is left at min(t, last event time
// processed); if events remain, Now() is advanced to t so that subsequent
// RunUntil calls continue seamlessly.
func (s *Scheduler) RunUntil(t Time) error {
	for !s.stopped {
		if len(s.queue) == 0 {
			break
		}
		if s.queue[0].at > t {
			break
		}
		s.Step()
	}
	if s.stopped {
		s.stopped = false
		return ErrStopped
	}
	if s.now < t {
		s.now = t
	}
	return nil
}

// RunFor advances the simulation by d from the current instant.
func (s *Scheduler) RunFor(d time.Duration) error {
	return s.RunUntil(s.now.Add(d))
}

// Run executes events until the queue is empty or the scheduler is stopped.
func (s *Scheduler) Run() error {
	for !s.stopped && s.Step() {
	}
	if s.stopped {
		s.stopped = false
		return ErrStopped
	}
	return nil
}

// Stop causes the currently executing Run/RunUntil to return ErrStopped
// after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Every schedules fn to run periodically with the given period, starting at
// start. It returns a Ticker that can be stopped. The period must be
// positive.
func (s *Scheduler) Every(start Time, period time.Duration, fn func()) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: non-positive period %v", period)
	}
	t := &Ticker{sched: s, period: period, fn: fn}
	t.ev = s.At(start, t.tick)
	return t, nil
}

// Ticker repeatedly fires a callback with a fixed period until stopped.
type Ticker struct {
	sched   *Scheduler
	period  time.Duration
	fn      func()
	ev      *Event
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if t.stopped { // fn may stop the ticker
		return
	}
	t.ev = t.sched.After(t.period, t.tick)
}

// Stop cancels future firings. It is safe to call from within the callback.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.sched.Cancel(t.ev)
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e, ok := x.(*Event)
	if !ok {
		return
	}
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
