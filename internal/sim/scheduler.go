// Package sim provides the deterministic discrete-event simulation kernel
// that every other substrate (clocks, network, hypervisor) runs on.
//
// All simulated components share a single Scheduler. Time is a monotonically
// increasing nanosecond counter representing ideal "true" time; simulated
// clocks in package clock map true time onto drifting local timescales.
// Events that are scheduled for the same instant fire in FIFO order, which —
// together with the seeded RNG streams in rng.go — makes every run
// bit-for-bit reproducible.
//
// The kernel is allocation-free in steady state: events live inline in a
// growable slab indexed by a hand-rolled 4-ary min-heap (see heap.go), At
// and After hand out compact EventID handles instead of per-event pointers,
// Cancel is an O(1) generation bump with lazy deletion at pop, and fired
// slots recycle through a free list. See DESIGN.md, "Event kernel".
package sim

import (
	"errors"
	"fmt"
	"time"
)

// Time is an absolute instant on the simulation's ideal timescale,
// in nanoseconds since the simulation epoch.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t−u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the instant to a duration since the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant as a duration since the simulation epoch.
func (t Time) String() string { return time.Duration(t).String() }

// EventID is a compact handle to a scheduled callback: a slab slot plus a
// generation that invalidates the handle once the event fires or is
// cancelled. The zero EventID is never valid, so it can be stored freely as
// a "no event" sentinel.
type EventID struct {
	slot uint32
	gen  uint32
}

// Valid reports whether the handle was ever issued by a scheduler. It does
// not check whether the event is still pending; Cancel on a fired event is
// simply a no-op.
func (id EventID) Valid() bool { return id.gen != 0 }

// eventSlot is one inline event record. Slots are recycled through the
// scheduler's free list; gen disambiguates incarnations so stale EventIDs
// cannot touch a reused slot.
type eventSlot struct {
	at  Time
	seq uint64
	// Exactly one of fn / afn is set. afn receives arg, letting hot
	// callers (link delivery, bridge egress) schedule with a prebound
	// callback and avoid a per-event closure allocation.
	fn  func()
	afn func(any)
	arg any
	// period > 0 marks a ticker slot: after firing it is pushed back with
	// at += period, reusing the slot, the callback and the EventID.
	period    time.Duration
	gen       uint32
	heapIdx   int32 // position in Scheduler.heap; -1 when not queued
	nextFree  int32
	cancelled bool
}

// ErrStopped is returned by Run when the scheduler was stopped explicitly.
var ErrStopped = errors.New("sim: scheduler stopped")

// Scheduler is a deterministic discrete-event executor. The zero value is
// not usable; create one with NewScheduler.
type Scheduler struct {
	now      Time
	seq      uint64
	slab     []eventSlot
	heap     []int32 // slot indices; 4-ary min-heap on (at, seq)
	freeHead int32   // head of the free-slot list; -1 when empty
	live     int     // queued events that are not cancelled
	stopped  bool

	// processed counts events that have fired, for diagnostics.
	processed uint64
	// pastClamps counts At calls that asked for an instant already in the
	// past and were clamped to now — usually a causality bug upstream.
	pastClamps uint64
	// cancels counts effective Cancel calls (stale handles excluded).
	cancels uint64
}

// NewScheduler returns a scheduler positioned at the simulation epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{freeHead: -1}
}

// Now reports the current simulation instant.
func (s *Scheduler) Now() Time { return s.now }

// Processed reports how many events have fired so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Pending reports how many events are currently queued (cancelled events
// awaiting lazy removal are not counted).
func (s *Scheduler) Pending() int { return s.live }

// Drained reports whether no live events remain queued.
func (s *Scheduler) Drained() bool { return s.live == 0 }

// PastClamps reports how many times At was asked to schedule in the past
// and clamped the event to "now". A nonzero count usually indicates a
// causality bug in a component; core.System surfaces it at teardown.
func (s *Scheduler) PastClamps() uint64 { return s.pastClamps }

// Cancelled reports how many events were cancelled before firing.
func (s *Scheduler) Cancelled() uint64 { return s.cancels }

// Diagnostics is a point-in-time snapshot of kernel internals, exposed for
// the profiling harness and teardown logging.
type Diagnostics struct {
	Processed  uint64 // events fired
	Cancelled  uint64 // events cancelled before firing
	PastClamps uint64 // At calls clamped to now
	Pending    int    // live queued events
	QueueLen   int    // heap entries including lazily-deleted ones
	SlabSlots  int    // slots ever allocated (high-water mark)
}

// Diag returns kernel diagnostics.
func (s *Scheduler) Diag() Diagnostics {
	return Diagnostics{
		Processed:  s.processed,
		Cancelled:  s.cancels,
		PastClamps: s.pastClamps,
		Pending:    s.live,
		QueueLen:   len(s.heap),
		SlabSlots:  len(s.slab),
	}
}

// alloc pops a slot off the free list, growing the slab only when the list
// is empty; steady-state scheduling therefore never allocates.
func (s *Scheduler) alloc() int32 {
	if s.freeHead >= 0 {
		i := s.freeHead
		s.freeHead = s.slab[i].nextFree
		return i
	}
	s.slab = append(s.slab, eventSlot{gen: 1, heapIdx: -1, nextFree: -1})
	return int32(len(s.slab) - 1)
}

// free recycles a slot whose generation has already been bumped.
func (s *Scheduler) free(i int32) {
	sl := &s.slab[i]
	sl.fn, sl.afn, sl.arg = nil, nil, nil
	sl.period = 0
	sl.cancelled = false
	sl.heapIdx = -1
	sl.nextFree = s.freeHead
	s.freeHead = i
}

// bumpGen invalidates outstanding EventIDs for the slot. Generation 0 is
// reserved for the invalid zero EventID.
func (sl *eventSlot) bumpGen() {
	sl.gen++
	if sl.gen == 0 {
		sl.gen = 1
	}
}

// schedule is the shared entry point behind At/After/AtArg/Every.
func (s *Scheduler) schedule(t Time, fn func(), afn func(any), arg any, period time.Duration) EventID {
	if t < s.now {
		t = s.now
		s.pastClamps++
	}
	i := s.alloc()
	sl := &s.slab[i]
	sl.at = t
	sl.seq = s.seq
	s.seq++
	sl.fn, sl.afn, sl.arg = fn, afn, arg
	sl.period = period
	s.heapPush(i)
	s.live++
	return EventID{slot: uint32(i), gen: sl.gen}
}

// At schedules fn to run at instant t. Scheduling in the past is a
// programming error and is clamped to "now" so that causality is preserved;
// the event still fires and the clamp is counted (see PastClamps).
func (s *Scheduler) At(t Time, fn func()) EventID {
	return s.schedule(t, fn, nil, nil, 0)
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d time.Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now.Add(d), fn, nil, nil, 0)
}

// AtArg schedules fn(arg) at instant t. Hot paths that would otherwise
// capture state in a fresh closure per event (frame delivery, bridge
// egress) pass a prebound fn and thread their state through arg — boxing a
// pointer into an interface does not allocate, so the call is alloc-free.
func (s *Scheduler) AtArg(t Time, fn func(any), arg any) EventID {
	return s.schedule(t, nil, fn, arg, 0)
}

// AfterArg schedules fn(arg) to run d after the current instant.
func (s *Scheduler) AfterArg(d time.Duration, fn func(any), arg any) EventID {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now.Add(d), nil, fn, arg, 0)
}

// Cancel removes a pending event in O(1): the slot's generation is bumped
// (so the handle dies) and the heap entry is discarded lazily when it
// reaches the top. Cancelling an event that already fired, was already
// cancelled, or is the zero EventID is a no-op.
func (s *Scheduler) Cancel(id EventID) {
	i := int32(id.slot)
	if id.gen == 0 || int(i) >= len(s.slab) {
		return
	}
	sl := &s.slab[i]
	if sl.gen != id.gen || sl.cancelled {
		return
	}
	sl.cancelled = true
	s.cancels++
	sl.bumpGen()
	sl.fn, sl.afn, sl.arg = nil, nil, nil
	if sl.heapIdx >= 0 {
		// Still queued: drop from the live count; the heap entry is
		// reaped at pop. A ticker cancelled from inside its own callback
		// is not queued at this point and was already uncounted.
		s.live--
	}
}

// When reports the instant a pending event is scheduled for.
func (s *Scheduler) When(id EventID) (Time, bool) {
	i := int32(id.slot)
	if id.gen == 0 || int(i) >= len(s.slab) {
		return 0, false
	}
	sl := &s.slab[i]
	if sl.gen != id.gen || sl.heapIdx < 0 {
		return 0, false
	}
	return sl.at, true
}

// peekLive reaps cancelled entries off the heap top and reports the slot of
// the earliest live event, if any.
func (s *Scheduler) peekLive() (int32, bool) {
	for len(s.heap) > 0 {
		i := s.heap[0]
		if !s.slab[i].cancelled {
			return i, true
		}
		s.heapPopTop()
		s.free(i)
	}
	return -1, false
}

// fire pops slot i (already verified live) and runs its callback.
func (s *Scheduler) fire(i int32) {
	s.heapPopTop()
	sl := &s.slab[i]
	s.now = sl.at
	s.processed++
	s.live--
	if sl.period > 0 {
		// Ticker fast path: fire, then push the same slot back with
		// at += period. The callback, slot and EventID are all reused, so
		// a steady ticker schedules with zero allocations. The reschedule
		// happens after fn returns — matching the callback-driven ticker
		// it replaces — so events fn schedules for the same future
		// instant keep their FIFO position ahead of the next tick.
		gen := sl.gen
		fn := sl.fn
		fn()
		sl = &s.slab[i] // fn may have grown the slab
		if sl.cancelled || sl.gen != gen {
			s.free(i) // stopped from within its own callback
			return
		}
		sl.at = sl.at.Add(sl.period)
		sl.seq = s.seq
		s.seq++
		s.heapPush(i)
		s.live++
		return
	}
	// One-shot: invalidate the handle and recycle the slot before the
	// callback runs, so the callback can immediately reuse it.
	fn, afn, arg := sl.fn, sl.afn, sl.arg
	sl.bumpGen()
	s.free(i)
	if afn != nil {
		afn(arg)
		return
	}
	fn()
}

// Step fires the next pending event and reports whether one was available.
func (s *Scheduler) Step() bool {
	i, ok := s.peekLive()
	if !ok {
		return false
	}
	s.fire(i)
	return true
}

// RunUntil executes events in order until the queue is exhausted or the next
// event lies strictly after t. The clock is left at min(t, last event time
// processed); if events remain, Now() is advanced to t so that subsequent
// RunUntil calls continue seamlessly.
func (s *Scheduler) RunUntil(t Time) error {
	for !s.stopped {
		i, ok := s.peekLive()
		if !ok || s.slab[i].at > t {
			break
		}
		s.fire(i)
	}
	if s.stopped {
		s.stopped = false
		return ErrStopped
	}
	if s.now < t {
		s.now = t
	}
	return nil
}

// RunFor advances the simulation by d from the current instant.
func (s *Scheduler) RunFor(d time.Duration) error {
	return s.RunUntil(s.now.Add(d))
}

// Run executes events until the queue is empty or the scheduler is stopped.
func (s *Scheduler) Run() error {
	for !s.stopped && s.Step() {
	}
	if s.stopped {
		s.stopped = false
		return ErrStopped
	}
	return nil
}

// Stop causes the currently executing Run/RunUntil to return ErrStopped
// after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Every schedules fn to run periodically with the given period, starting at
// start. It returns a Ticker that can be stopped. The period must be
// positive.
func (s *Scheduler) Every(start Time, period time.Duration, fn func()) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: non-positive period %v", period)
	}
	id := s.schedule(start, fn, nil, nil, period)
	return &Ticker{sched: s, id: id}, nil
}

// Ticker repeatedly fires a callback with a fixed period until stopped.
// Ticks reuse one event slot in the scheduler, so a running ticker does not
// allocate.
type Ticker struct {
	sched *Scheduler
	id    EventID
}

// Stop cancels future firings. It is safe to call from within the callback
// and safe to call more than once.
func (t *Ticker) Stop() { t.sched.Cancel(t.id) }
