package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is the interface consumed by simulated components that need
// randomness. *rand.Rand satisfies it.
type RNG interface {
	Float64() float64
	NormFloat64() float64
	Int63n(n int64) int64
	Intn(n int) int
}

// Streams derives independent, named random streams from one master seed so
// that adding a consumer of randomness in one component does not perturb any
// other component's stream. Every experiment in this repository is
// reproducible from its master seed alone.
type Streams struct {
	seed int64
}

// NewStreams returns a stream factory for the given master seed.
func NewStreams(seed int64) *Streams {
	return &Streams{seed: seed}
}

// Seed reports the master seed.
func (s *Streams) Seed() int64 { return s.seed }

// Stream returns a deterministic RNG for the named component. Calling
// Stream twice with the same name returns two independent generators with
// identical sequences; components must create their stream once and keep it.
func (s *Streams) Stream(name string) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(s.seed, name))) //nolint:gosec // simulation, not crypto
}

// Derive returns a stream factory for the named sub-campaign. A campaign
// that fans out into independent runs (one per seed, sweep point or
// scenario variant) gives each run Derive'd Streams, so the runs are
// mutually decorrelated, independent of the campaign's own streams, and
// each reproducible from the campaign seed plus the run name alone —
// executing runs in parallel therefore yields bit-identical results to
// executing them sequentially.
func (s *Streams) Derive(name string) *Streams {
	return NewStreams(DeriveSeed(s.seed, name))
}

// DeriveSeed maps a master seed and a name to a stable derived seed; it is
// the derivation behind both Stream and Derive.
func DeriveSeed(master int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return splitmix64(int64(h.Sum64()) ^ master)
}

// splitmix64 scrambles the derived seed so that structurally similar names
// do not yield correlated rand.Source states.
func splitmix64(x int64) int64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
