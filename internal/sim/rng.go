package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is the interface consumed by simulated components that need
// randomness. *rand.Rand satisfies it.
type RNG interface {
	Float64() float64
	NormFloat64() float64
	Int63n(n int64) int64
	Intn(n int) int
}

// countingSource wraps the stock math/rand source and counts how many
// Int63-equivalent steps have been consumed. The stock rngSource implements
// Uint64 as exactly two Int63 calls, so forwarding both methods and
// accounting Uint64 as two steps makes the position an exact replay index:
// re-seeding and discarding n Int63 draws restores the source — and with it
// every *rand.Rand derived from it — to the counted position, bit for bit.
// The wrapper never alters the drawn sequence, so the committed golden
// digests are unaffected by the instrumentation.
type countingSource struct {
	src  rand.Source64
	seed int64
	n    uint64 // Int63-equivalent steps consumed since the last (re)seed
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n += 2
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.seed = seed
	c.n = 0
	c.src.Seed(seed)
}

// rewindTo re-seeds the source and replays it forward to position n.
func (c *countingSource) rewindTo(n uint64) {
	c.src.Seed(c.seed)
	for i := uint64(0); i < n; i++ {
		c.src.Int63()
	}
	c.n = n
}

// Streams derives independent, named random streams from one master seed so
// that adding a consumer of randomness in one component does not perturb any
// other component's stream. Every experiment in this repository is
// reproducible from its master seed alone.
//
// Streams also keeps a registry of every source it has handed out, recording
// each one's replay position, so a warm-state snapshot can capture and later
// restore the exact position of every stream (see Snapshot/Restore and
// DESIGN.md, "Warm-state snapshots").
type Streams struct {
	seed    int64
	sources []*countingSource
}

// NewStreams returns a stream factory for the given master seed.
func NewStreams(seed int64) *Streams {
	return &Streams{seed: seed}
}

// Seed reports the master seed.
func (s *Streams) Seed() int64 { return s.seed }

// Stream returns a deterministic RNG for the named component. Calling
// Stream twice with the same name returns two independent generators with
// identical sequences; components must create their stream once and keep it.
func (s *Streams) Stream(name string) *rand.Rand {
	cs := &countingSource{seed: DeriveSeed(s.seed, name)}
	cs.src = rand.NewSource(cs.seed).(rand.Source64) //nolint:gosec // simulation, not crypto
	s.sources = append(s.sources, cs)
	return rand.New(cs) //nolint:gosec // simulation, not crypto
}

// StreamsSnapshot captures the replay position of every stream handed out
// so far. It is immutable once taken.
type StreamsSnapshot struct {
	counts []uint64
}

// Snapshot records the current replay position of every stream created so
// far. Streams created after the snapshot belong to components attached
// after the fork boundary and are deliberately not captured.
func (s *Streams) Snapshot() any {
	sn := &StreamsSnapshot{counts: make([]uint64, len(s.sources))}
	for i, cs := range s.sources {
		sn.counts[i] = cs.n
	}
	return sn
}

// Restore rewinds every stream captured by the snapshot to its recorded
// position by re-seeding and replaying, leaving the *rand.Rand instances
// components hold valid and positioned exactly where they were. Streams
// created after the snapshot are dropped from the registry: their owners
// (post-boundary machinery of a previous fork) are discarded with them, and
// a re-attached component re-derives the same stream from its name alone.
func (s *Streams) Restore(snap any) {
	sn := snap.(*StreamsSnapshot)
	if len(sn.counts) > len(s.sources) {
		panic("sim: Streams.Restore: snapshot from a different Streams")
	}
	for i, n := range sn.counts {
		s.sources[i].rewindTo(n)
	}
	s.sources = s.sources[:len(sn.counts)]
}

// Derive returns a stream factory for the named sub-campaign. A campaign
// that fans out into independent runs (one per seed, sweep point or
// scenario variant) gives each run Derive'd Streams, so the runs are
// mutually decorrelated, independent of the campaign's own streams, and
// each reproducible from the campaign seed plus the run name alone —
// executing runs in parallel therefore yields bit-identical results to
// executing them sequentially.
func (s *Streams) Derive(name string) *Streams {
	return NewStreams(DeriveSeed(s.seed, name))
}

// DeriveSeed maps a master seed and a name to a stable derived seed; it is
// the derivation behind both Stream and Derive.
func DeriveSeed(master int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return splitmix64(int64(h.Sum64()) ^ master)
}

// splitmix64 scrambles the derived seed so that structurally similar names
// do not yield correlated rand.Source states.
func splitmix64(x int64) int64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
