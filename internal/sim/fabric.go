package sim

// Conservative parallel discrete-event fabric (PDES). A Fabric owns one
// Scheduler per shard plus a shard-less control scheduler, and advances all
// of them through barrier-separated time windows:
//
//	              lookahead L = min cross-shard link delay
//	          ┌────────────┐┌────────────┐┌──────────┐
//	 shard 0  │ events ≤ W ││ events ≤ W'││   ...    │
//	 shard 1  │ events ≤ W ││ events ≤ W'││   ...    │   (parallel)
//	          └────────────┴┴────────────┴┴──────────┘
//	           barrier: flush │ barrier: flush │ ...
//	                 mailboxes, fire control events
//
// Within a window shards run concurrently and touch only shard-local state;
// frames crossing a shard boundary are deferred into per-link outboxes
// (never scheduled directly into a foreign shard). The window end W is
// chosen so that no deferred send can require delivery inside the window:
// with e the earliest pending event anywhere, nothing can be transmitted
// before e, so every cross-shard delivery lands at ≥ e + L and the window
// may safely extend to e + L − 1.
//
// At each barrier the fabric drains all boundary outboxes, sorts the
// deferred sends by their causal keys (send instant, sender's schedule-time
// key, then the source shard's issuance ordinal, then boundary registration
// order), and commits them one by one in
// that fixed order. Commit replays the sender-side randomness (loss, jitter)
// in per-link chronological order and schedules the delivery into the
// destination shard via ScheduleKeyedArg, carrying the sender-side causal
// key — so the delivery interleaves with the destination's local events
// exactly where a single-scheduler run would have placed it. This is what
// keeps golden digests bit-identical at every shard count.
//
// Control events (chaos plans, fault injectors, driver At calls) live on the
// control scheduler and fire between windows: shards first execute every
// event strictly before tc, then have their clocks advanced to tc with
// their own tc events still pending, and only then does the control event
// fire. A control event at tc therefore precedes shard events at tc and
// observes (and schedules against) shard clocks reading exactly tc — which
// matches the single-scheduler order because control callbacks carry older
// insertion sequences than same-instant protocol re-arms.

import (
	"sync"
	"time"
)

// Deferred is one cross-shard send captured in a boundary outbox, waiting
// for the next barrier to be committed in globally sorted order.
type Deferred struct {
	// Key1 is the send instant; Key2 the sender event's schedule-time key;
	// Key3 the sender event's own cause key (see Scheduler.SchedKeys).
	// (Key1, Key2, Key3) is the heap key prefix of the *sending* event, so
	// sorting on it reproduces the order a single scheduler executed the
	// senders in — the order it would have inserted the deliveries in.
	// Only Key1 and Key2 are replayed onto the delivery event.
	Key1, Key2, Key3 Time
	// Ord is the source shard's deferred-send issuance ordinal
	// (Scheduler.NextDeferOrd): it orders key-tied sends that left one
	// shard by the order the sending callbacks issued them — the
	// single-scheduler insertion order. Ords from different source shards
	// are independent counters; Rank (the boundary's registration order in
	// the fabric) and Dir break those remaining cross-shard ties
	// deterministically.
	Ord       uint64
	Rank, Dir int
	// Payload is the in-flight unit (a netsim frame), opaque to the fabric.
	Payload any
	// By commits the send on the destination shard.
	By Committer
}

// Committer commits a deferred cross-shard send at a barrier.
type Committer interface {
	// CommitDeferred replays the send: sender-side bookkeeping and
	// randomness first (loss decision, jitter draw, FIFO clamp), then the
	// delivery scheduled into the destination shard with the carried keys.
	CommitDeferred(dir int, payload any, key1, key2 Time)
}

// Boundary is a cross-shard conduit registered with the fabric — in
// practice a netsim link whose endpoints live in different shards.
type Boundary interface {
	Committer
	// MinDelay is a lower bound on the sender-to-receiver delay of any
	// send committed from now on (jitter floor plus current overrides);
	// the fabric's lookahead is the minimum over all boundaries.
	MinDelay() time.Duration
	// AppendDeferred appends the boundary's pending sends to buf (leaving
	// Rank zero; the fabric stamps it) and clears the outboxes.
	AppendDeferred(buf []Deferred) []Deferred
}

// FabricStats are cumulative fabric-level counters, sampled by the obs
// layer. BarrierWait values are wall-clock and therefore excluded from any
// determinism surface.
type FabricStats struct {
	Windows       uint64 // barrier-separated execution windows run
	ControlRounds uint64 // control-scheduler turns fired between windows
	Committed     uint64 // cross-shard sends committed through mailboxes
	BarrierWaitNS uint64 // total wall ns the coordinator waited on shards
	LookaheadNS   int64  // last computed lookahead window size
}

// Fabric coordinates sharded execution. It is driven from a single
// goroutine (RunUntil); shard parallelism is internal.
type Fabric struct {
	shards  []*Scheduler
	control *Scheduler
	bounds  []Boundary

	now   Time
	buf   []Deferred
	busy  []*Scheduler
	errs  []error
	stats FabricStats

	// BarrierObserver, when set, receives the wall-clock nanoseconds the
	// coordinator spent waiting at each barrier (obs histogram hook).
	BarrierObserver func(ns float64)
}

// NewFabric assembles a fabric over per-shard schedulers, a control
// scheduler (which must not be one of the shards) and the registered
// cross-shard boundaries.
func NewFabric(shards []*Scheduler, control *Scheduler, bounds []Boundary) *Fabric {
	return &Fabric{shards: shards, control: control, bounds: bounds}
}

// Now reports the fabric's committed instant: every shard has processed all
// events up to and including it.
func (f *Fabric) Now() Time { return f.now }

// Stats returns the cumulative fabric counters.
func (f *Fabric) Stats() FabricStats { return f.stats }

// Resync realigns the fabric clock with its shards after an external
// restore (warm-start fork). Valid only at driver time, when every shard
// has been restored to the same instant and all outboxes are empty.
func (f *Fabric) Resync() { f.now = f.shards[0].Now() }

// lookahead computes the current safe window extension: the minimum
// cross-shard delay over all boundaries, at least 1 ns so windows always
// make progress. Recomputed every window, so chaos delay overrides narrow
// or widen the window from the next barrier on.
func (f *Fabric) lookahead() Time {
	if len(f.bounds) == 0 {
		return Time(1<<62 - 1)
	}
	min := f.bounds[0].MinDelay()
	for _, b := range f.bounds[1:] {
		if d := b.MinDelay(); d < min {
			min = d
		}
	}
	if min < 1 {
		min = 1
	}
	f.stats.LookaheadNS = int64(min)
	return Time(min)
}

// flush drains every boundary outbox and commits the deferred sends in the
// fixed global order (Key1, Key2, Key3, Ord, Rank, Dir). Runs single-threaded
// barriers, while all shards are paused.
func (f *Fabric) flush() {
	buf := f.buf[:0]
	for rank, b := range f.bounds {
		start := len(buf)
		buf = b.AppendDeferred(buf)
		for i := start; i < len(buf); i++ {
			buf[i].Rank = rank
		}
	}
	if len(buf) > 1 {
		sortDeferred(buf)
	}
	for i := range buf {
		d := &buf[i]
		d.By.CommitDeferred(d.Dir, d.Payload, d.Key1, d.Key2)
		d.Payload, d.By = nil, nil
	}
	f.stats.Committed += uint64(len(buf))
	f.buf = buf[:0]
}

// sortDeferred orders deferred sends by (Key1, Key2, Key3, Ord, Rank, Dir),
// a hand-rolled insertion/shell hybrid: barriers usually carry a handful of
// sends, and sort.Slice's closure allocates on a path run tens of thousands
// of times per simulated second.
func sortDeferred(d []Deferred) {
	for gap := len(d) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(d); i++ {
			v := d[i]
			j := i
			for ; j >= gap && deferredLess(&v, &d[j-gap]); j -= gap {
				d[j] = d[j-gap]
			}
			d[j] = v
		}
	}
}

func deferredLess(a, b *Deferred) bool {
	if a.Key1 != b.Key1 {
		return a.Key1 < b.Key1
	}
	if a.Key2 != b.Key2 {
		return a.Key2 < b.Key2
	}
	if a.Key3 != b.Key3 {
		return a.Key3 < b.Key3
	}
	if a.Ord != b.Ord {
		return a.Ord < b.Ord
	}
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	return a.Dir < b.Dir
}

// runWindow advances every shard to end: shards with pending work in the
// window run concurrently, idle shards fast-forward inline. Returns the
// first shard error (ErrStopped propagates).
func (f *Fabric) runWindow(end Time) error {
	busy := f.busy[:0]
	for _, sc := range f.shards {
		if at, ok := sc.NextEventAt(); ok && at <= end {
			busy = append(busy, sc)
		} else {
			sc.SkipTo(end)
		}
	}
	f.busy = busy // keep the backing array for the next window
	f.stats.Windows++
	switch len(busy) {
	case 0:
		return nil
	case 1:
		return busy[0].RunUntil(end)
	}
	if cap(f.errs) < len(busy) {
		f.errs = make([]error, len(busy))
	}
	errs := f.errs[:len(busy)]
	var wg sync.WaitGroup
	wg.Add(len(busy) - 1)
	for i := 1; i < len(busy); i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = busy[i].RunUntil(end)
		}(i)
	}
	errs[0] = busy[0].RunUntil(end)
	waitStart := time.Now()
	wg.Wait()
	waitNS := uint64(time.Since(waitStart))
	f.stats.BarrierWaitNS += waitNS
	if f.BarrierObserver != nil {
		f.BarrierObserver(float64(waitNS))
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// minShardNext reports the earliest pending event across all shards.
func (f *Fabric) minShardNext() (Time, bool) {
	var min Time
	ok := false
	for _, sc := range f.shards {
		if at, have := sc.NextEventAt(); have && (!ok || at < min) {
			min, ok = at, true
		}
	}
	return min, ok
}

// advanceAll fast-forwards every shard and the control scheduler to t
// (no events pending at or before t anywhere).
func (f *Fabric) advanceAll(t Time) error {
	for _, sc := range f.shards {
		sc.SkipTo(t)
	}
	if err := f.control.RunUntil(t); err != nil {
		return err
	}
	f.now = t
	return nil
}

// RunUntil advances the whole fabric to absolute instant target, windowing
// shard execution and firing control events at the barriers.
func (f *Fabric) RunUntil(target Time) error {
	for {
		e, haveShard := f.minShardNext()
		tc, haveCtl := f.control.NextEventAt()
		if !haveShard && !haveCtl {
			return f.advanceAll(target)
		}
		if !haveShard {
			e = tc
		}
		if !haveCtl {
			tc = target + 1
		}
		next := e
		if tc < next {
			next = tc
		}
		if next > target {
			return f.advanceAll(target)
		}
		if haveCtl && tc <= e {
			// Control turn: run shard events strictly before the control
			// instant, then present every shard clock at tc with the
			// shards' own tc events still pending (control precedes shard
			// events at the same instant). A control callback therefore
			// reads and schedules against shard time tc, exactly as in a
			// single-scheduler run — no off-by-one staleness.
			if tc-1 > f.now {
				if err := f.runWindow(tc - 1); err != nil {
					return err
				}
				f.flush()
				f.now = tc - 1
			}
			for _, sc := range f.shards {
				sc.AdvanceTo(tc)
			}
			if err := f.control.RunUntil(tc); err != nil {
				return err
			}
			// Control callbacks normally mutate component state directly;
			// flush again in case one pushed a boundary send.
			f.flush()
			f.stats.ControlRounds++
			continue
		}
		// Shard turn: events exist strictly before the next control event.
		end := e + f.lookahead() - 1
		if end > target {
			end = target
		}
		if haveCtl && end > tc-1 {
			end = tc - 1
		}
		if err := f.runWindow(end); err != nil {
			return err
		}
		f.flush()
		f.now = end
	}
}

// RunFor advances the fabric by d from its committed instant.
func (f *Fabric) RunFor(d time.Duration) error {
	return f.RunUntil(f.now.Add(d))
}
