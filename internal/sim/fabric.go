package sim

// Conservative parallel discrete-event fabric (PDES). A Fabric owns one
// Scheduler per shard plus a shard-less control scheduler, and advances all
// of them through barrier-separated time windows:
//
//	              lookahead L = min cross-shard link delay
//	          ┌────────────┐┌────────────┐┌──────────┐
//	 shard 0  │ events ≤ W ││ events ≤ W'││   ...    │
//	 shard 1  │ events ≤ W ││ events ≤ W'││   ...    │   (parallel)
//	          └────────────┴┴────────────┴┴──────────┘
//	           barrier: flush │ barrier: flush │ ...
//	                 mailboxes, fire control events
//
// Within a window shards run concurrently and touch only shard-local state;
// frames crossing a shard boundary are deferred into per-link outboxes
// (never scheduled directly into a foreign shard). The window end W is
// chosen so that no deferred send can require delivery inside the window:
// with e the earliest pending event anywhere, nothing can be transmitted
// before e, so every cross-shard delivery lands at ≥ e + L and the window
// may safely extend to e + L − 1.
//
// At each barrier the fabric drains all boundary outboxes, sorts the
// deferred sends by their causal keys (send instant, sender's schedule-time
// key, then the source shard's issuance ordinal, then boundary registration
// order), and commits them one by one in
// that fixed order. Commit replays the sender-side randomness (loss, jitter)
// in per-link chronological order and schedules the delivery into the
// destination shard via ScheduleKeyedArg, carrying the sender-side causal
// key — so the delivery interleaves with the destination's local events
// exactly where a single-scheduler run would have placed it. This is what
// keeps golden digests bit-identical at every shard count.
//
// Control events (chaos plans, fault injectors, driver At calls) live on the
// control scheduler and fire between windows: shards first execute every
// event strictly before tc, then have their clocks advanced to tc with
// their own tc events still pending, and only then does the control event
// fire. A control event at tc therefore precedes shard events at tc and
// observes (and schedules against) shard clocks reading exactly tc — which
// matches the single-scheduler order because control callbacks carry older
// insertion sequences than same-instant protocol re-arms.
//
// The per-window machinery itself is kept off the hot path three ways
// (fabric_worker.go holds the first):
//
//   - Shard execution is dispatched to long-lived per-shard worker
//     goroutines over a spin-then-park epoch barrier instead of spawning a
//     goroutine per window; a deterministic serial fast path runs busy
//     shards inline on the coordinator when parallelism cannot pay
//     (GOMAXPROCS 1, a single busy shard, nearly-empty queues, or a closed
//     fabric). Both paths execute the same events against the same state,
//     so the choice is invisible to every determinism surface.
//   - The lookahead is cached: the O(boundaries) MinDelay rescan happens
//     only after InvalidateLookahead, which bound boundaries call whenever
//     a delay mutation (chaos override, WAN drift step, attack install,
//     snapshot restore) could change their MinDelay.
//   - flush visits only boundaries that registered into the dirty list on
//     their first deferred append since the previous barrier; a barrier
//     with no captured sends skips the sort-and-commit path entirely.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// Deferred is one cross-shard send captured in a boundary outbox, waiting
// for the next barrier to be committed in globally sorted order.
type Deferred struct {
	// Key1 is the send instant; Key2 the sender event's schedule-time key;
	// Key3 the sender event's own cause key (see Scheduler.SchedKeys).
	// (Key1, Key2, Key3) is the heap key prefix of the *sending* event, so
	// sorting on it reproduces the order a single scheduler executed the
	// senders in — the order it would have inserted the deliveries in.
	// Only Key1 and Key2 are replayed onto the delivery event.
	Key1, Key2, Key3 Time
	// Ord is the source shard's deferred-send issuance ordinal
	// (Scheduler.NextDeferOrd): it orders key-tied sends that left one
	// shard by the order the sending callbacks issued them — the
	// single-scheduler insertion order. Ords from different source shards
	// are independent counters; Rank (the boundary's registration order in
	// the fabric) and Dir break those remaining cross-shard ties
	// deterministically.
	Ord       uint64
	Rank, Dir int
	// Payload is the in-flight unit (a netsim frame), opaque to the fabric.
	Payload any
	// By commits the send on the destination shard.
	By Committer
}

// Committer commits a deferred cross-shard send at a barrier.
type Committer interface {
	// CommitDeferred replays the send: sender-side bookkeeping and
	// randomness first (loss decision, jitter draw, FIFO clamp), then the
	// delivery scheduled into the destination shard with the carried keys.
	CommitDeferred(dir int, payload any, key1, key2 Time)
}

// Boundary is a cross-shard conduit registered with the fabric — in
// practice a netsim link whose endpoints live in different shards.
type Boundary interface {
	Committer
	// MinDelay is a lower bound on the sender-to-receiver delay of any
	// send committed from now on (jitter floor plus current overrides);
	// the fabric's lookahead is the minimum over all boundaries.
	MinDelay() time.Duration
	// AppendDeferred appends the boundary's pending sends to buf (leaving
	// Rank zero; the fabric stamps it) and clears the outboxes.
	AppendDeferred(buf []Deferred) []Deferred
}

// BoundaryBinder is optionally implemented by boundaries that integrate
// with the fabric's dirty-list flush and cached lookahead. NewFabric calls
// BindFabric once per registered boundary; a boundary that does not
// implement it is scanned at every barrier and its MinDelay mutations must
// be reported through Fabric.InvalidateLookahead by whoever mutates it.
type BoundaryBinder interface {
	// BindFabric installs the fabric-side hooks.
	//
	// markDirty must be called (at least) on the first send deferred after
	// a barrier — before or after appending it — so the fabric knows to
	// visit this boundary at the next flush. It is safe to call
	// concurrently from shard goroutines and is idempotent within a
	// window, so "call when the per-direction outbox transitions from
	// empty" is the intended (and cheapest) protocol.
	//
	// invalidateLookahead must be called after any mutation that can
	// change MinDelay's value (delay overrides, WAN drift steps, attack
	// hooks, snapshot restores). It may only be called while shards are
	// paused — from control-scheduler callbacks, barrier commits, or
	// driver code between RunUntil calls — never from a shard callback.
	BindFabric(markDirty, invalidateLookahead func())
}

// FabricStats are cumulative fabric-level counters, sampled by the obs
// layer. BarrierWait values are wall-clock — and SerialWindows depends on
// GOMAXPROCS — so both are excluded from any determinism surface.
type FabricStats struct {
	Windows       uint64 // barrier-separated execution windows run
	ControlRounds uint64 // control-scheduler turns fired between windows
	Committed     uint64 // cross-shard sends committed through mailboxes
	BarrierWaitNS uint64 // total wall ns the coordinator waited on shards
	LookaheadNS   int64  // last computed lookahead window size

	SerialWindows    uint64 // windows run inline on the coordinator (no worker dispatch)
	FlushesSkipped   uint64 // barriers with no captured sends: flush was a no-op
	LookaheadRescans uint64 // O(boundaries) MinDelay rescans actually performed
}

// Fabric coordinates sharded execution. It is driven from a single
// goroutine (RunUntil); shard parallelism is internal.
type Fabric struct {
	shards  []*Scheduler
	control *Scheduler
	bounds  []Boundary

	now   Time
	buf   []Deferred
	busy  []int // indices into shards, reused across windows
	stats FabricStats

	// Cached lookahead: lookCached is valid while lookStale is false.
	// InvalidateLookahead (driver/control context only) marks it stale.
	lookStale  bool
	lookCached Time

	// Dirty-boundary flush. dirtyFlags[rank] is CAS-claimed by the first
	// markDirty within a window; the claimer publishes rank into
	// dirtyList[dirtyN++]. Shard goroutines only ever touch the atomics;
	// the coordinator drains and resets both at the barrier, so the plain
	// slice writes are ordered by the barrier synchronization itself.
	dirtyFlags []atomic.Uint32
	dirtyList  []int32
	dirtyN     atomic.Int32
	// scanRanks lists boundaries that did not implement BoundaryBinder;
	// they are visited at every flush, preserving the legacy contract.
	scanRanks []int

	// Persistent shard workers (fabric_worker.go). The group is allocated
	// lazily on the first parallel window and released at Close; it holds
	// no back-reference to the fabric, so a fabric abandoned without Close
	// stays collectable and its finalizer reaps the workers.
	group    *workerGroup
	closed   bool
	maxprocs int

	// ForceParallel bypasses every serial fast-path heuristic and routes
	// each multi-shard-capable window through the worker barrier, even on
	// a single core. Both paths produce bit-identical simulations; this is
	// a hook for determinism tests and barrier stress tests, not a tuning
	// knob.
	ForceParallel bool

	// BarrierObserver, when set, receives the wall-clock nanoseconds the
	// coordinator spent waiting at each parallel barrier (obs histogram
	// hook).
	BarrierObserver func(ns float64)
}

// NewFabric assembles a fabric over per-shard schedulers, a control
// scheduler (which must not be one of the shards) and the registered
// cross-shard boundaries. Boundaries implementing BoundaryBinder are bound
// to the fabric's dirty list and lookahead cache.
func NewFabric(shards []*Scheduler, control *Scheduler, bounds []Boundary) *Fabric {
	f := &Fabric{
		shards:    shards,
		control:   control,
		bounds:    bounds,
		lookStale: true,
		maxprocs:  runtime.GOMAXPROCS(0),
	}
	f.dirtyFlags = make([]atomic.Uint32, len(bounds))
	f.dirtyList = make([]int32, len(bounds))
	for rank, b := range bounds {
		if binder, ok := b.(BoundaryBinder); ok {
			rank := rank
			binder.BindFabric(func() { f.markDirty(rank) }, f.InvalidateLookahead)
		} else {
			f.scanRanks = append(f.scanRanks, rank)
		}
	}
	return f
}

// Now reports the fabric's committed instant: every shard has processed all
// events up to and including it.
func (f *Fabric) Now() Time { return f.now }

// Stats returns the cumulative fabric counters.
func (f *Fabric) Stats() FabricStats { return f.stats }

// Resync realigns the fabric clock with its shards after an external
// restore (warm-start fork). Valid only at driver time, when every shard
// has been restored to the same instant and all outboxes are empty. The
// lookahead cache is invalidated: the restore may have rewritten delay
// state without going through the bound mutators.
func (f *Fabric) Resync() {
	f.now = f.shards[0].Now()
	f.InvalidateLookahead()
}

// InvalidateLookahead marks the cached lookahead stale, forcing an
// O(boundaries) MinDelay rescan before the next window. Bound boundaries
// call it through their BindFabric hook on any delay mutation; external
// callers mutating an unbound boundary's delay must call it themselves.
// Like the hook, it may only be called while shards are paused.
func (f *Fabric) InvalidateLookahead() { f.lookStale = true }

// markDirty is the BindFabric dirty hook for boundary rank: the first call
// within a window claims the flag and publishes the rank to the dirty
// list; subsequent calls (same or other direction, any shard) are no-ops
// until flush resets the flag.
func (f *Fabric) markDirty(rank int) {
	if f.dirtyFlags[rank].CompareAndSwap(0, 1) {
		f.dirtyList[f.dirtyN.Add(1)-1] = int32(rank)
	}
}

// lookahead returns the current safe window extension: the minimum
// cross-shard delay over all boundaries, at least 1 ns so windows always
// make progress. The value is cached; the rescan runs only after an
// invalidation (chaos delay overrides, WAN drift steps, attack installs
// and snapshot restores all invalidate through the BindFabric hook, so
// they still narrow or widen the window from the next barrier on).
func (f *Fabric) lookahead() Time {
	if !f.lookStale {
		return f.lookCached
	}
	f.lookStale = false
	f.stats.LookaheadRescans++
	if len(f.bounds) == 0 {
		f.lookCached = Time(1<<62 - 1)
		f.stats.LookaheadNS = int64(f.lookCached)
		return f.lookCached
	}
	min := f.bounds[0].MinDelay()
	for _, b := range f.bounds[1:] {
		if d := b.MinDelay(); d < min {
			min = d
		}
	}
	if min < 1 {
		min = 1
	}
	f.stats.LookaheadNS = int64(min)
	f.lookCached = Time(min)
	return f.lookCached
}

// flush drains the boundary outboxes that captured sends since the last
// barrier — the self-registered dirty list plus every unbound boundary —
// and commits the deferred sends in the fixed global order (Key1, Key2,
// Key3, Ord, Rank, Dir). A barrier where no boundary captured anything
// returns without visiting a single boundary. Runs single-threaded at
// barriers, while all shards are paused.
func (f *Fabric) flush() {
	n := int(f.dirtyN.Load())
	if n == 0 && len(f.scanRanks) == 0 {
		f.stats.FlushesSkipped++
		return
	}
	buf := f.buf[:0]
	for _, r := range f.dirtyList[:n] {
		f.dirtyFlags[r].Store(0)
		start := len(buf)
		buf = f.bounds[r].AppendDeferred(buf)
		for i := start; i < len(buf); i++ {
			buf[i].Rank = int(r)
		}
	}
	f.dirtyN.Store(0)
	for _, r := range f.scanRanks {
		start := len(buf)
		buf = f.bounds[r].AppendDeferred(buf)
		for i := start; i < len(buf); i++ {
			buf[i].Rank = r
		}
	}
	if len(buf) > 1 {
		sortDeferred(buf)
	}
	for i := range buf {
		d := &buf[i]
		d.By.CommitDeferred(d.Dir, d.Payload, d.Key1, d.Key2)
		d.Payload, d.By = nil, nil
	}
	f.stats.Committed += uint64(len(buf))
	f.buf = buf[:0]
}

// sortDeferred orders deferred sends by (Key1, Key2, Key3, Ord, Rank, Dir),
// a hand-rolled insertion/shell hybrid: barriers usually carry a handful of
// sends, and sort.Slice's closure allocates on a path run tens of thousands
// of times per simulated second. The key is total over distinct sends (Ord
// is unique per source shard; Rank and Dir separate the rest), so the
// unstable gap passes cannot reorder equals — the drain order of the dirty
// list never shows through.
func sortDeferred(d []Deferred) {
	for gap := len(d) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(d); i++ {
			v := d[i]
			j := i
			for ; j >= gap && deferredLess(&v, &d[j-gap]); j -= gap {
				d[j] = d[j-gap]
			}
			d[j] = v
		}
	}
}

func deferredLess(a, b *Deferred) bool {
	if a.Key1 != b.Key1 {
		return a.Key1 < b.Key1
	}
	if a.Key2 != b.Key2 {
		return a.Key2 < b.Key2
	}
	if a.Key3 != b.Key3 {
		return a.Key3 < b.Key3
	}
	if a.Ord != b.Ord {
		return a.Ord < b.Ord
	}
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	return a.Dir < b.Dir
}

// serialPendingMax is the busy-shard queue-depth sum below which a window
// is run serially even when several shards are busy: with almost nothing
// queued anywhere, a window can only hold a handful of events and the
// barrier wake-up costs more than it parallelizes away.
const serialPendingMax = 16

// runWindow advances every shard to end: shards with pending work in the
// window run concurrently on the persistent workers, idle shards
// fast-forward inline. A deterministic serial fast path executes the busy
// shards in shard order on the coordinator when parallelism cannot pay:
// a single core, a lone busy shard, nearly-empty queues, or a closed
// fabric. Both paths fire the same events against the same state, so the
// choice never reaches a determinism surface. Returns the first busy
// shard's error in shard order (ErrStopped propagates); every busy shard
// finishes its window either way.
func (f *Fabric) runWindow(end Time) error {
	busy := f.busy[:0]
	pending := 0
	for i, sc := range f.shards {
		if at, ok := sc.NextEventAt(); ok && at <= end {
			busy = append(busy, i)
			pending += sc.Pending()
		} else {
			sc.SkipTo(end)
		}
	}
	f.busy = busy // keep the backing array for the next window
	f.stats.Windows++
	if len(busy) == 0 {
		return nil
	}
	// closed wins over ForceParallel: Close's contract is that the fabric
	// simulates serially afterwards, never respawning workers.
	if f.closed || (!f.ForceParallel &&
		(f.maxprocs == 1 || len(busy) == 1 || pending <= serialPendingMax)) {
		f.stats.SerialWindows++
		var firstErr error
		for _, i := range busy {
			if err := f.shards[i].RunUntil(end); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return f.runWindowParallel(busy, end)
}

// minShardNext reports the earliest pending event across all shards.
func (f *Fabric) minShardNext() (Time, bool) {
	var min Time
	ok := false
	for _, sc := range f.shards {
		if at, have := sc.NextEventAt(); have && (!ok || at < min) {
			min, ok = at, true
		}
	}
	return min, ok
}

// advanceAll fast-forwards every shard and the control scheduler to t
// (no events pending at or before t anywhere).
func (f *Fabric) advanceAll(t Time) error {
	for _, sc := range f.shards {
		sc.SkipTo(t)
	}
	if err := f.control.RunUntil(t); err != nil {
		return err
	}
	f.now = t
	return nil
}

// RunUntil advances the whole fabric to absolute instant target, windowing
// shard execution and firing control events at the barriers. A target
// behind the committed instant is rejected: the fabric cannot rewind, and
// silently treating it as a no-op would hide driver arithmetic bugs.
func (f *Fabric) RunUntil(target Time) error {
	if target < f.now {
		return fmt.Errorf("sim: fabric RunUntil(%v) behind committed instant %v", target, f.now)
	}
	for {
		e, haveShard := f.minShardNext()
		tc, haveCtl := f.control.NextEventAt()
		if !haveShard && !haveCtl {
			return f.advanceAll(target)
		}
		if !haveShard {
			e = tc
		}
		if !haveCtl {
			tc = target + 1
		}
		next := e
		if tc < next {
			next = tc
		}
		if next > target {
			return f.advanceAll(target)
		}
		if haveCtl && tc <= e {
			// Control turn: run shard events strictly before the control
			// instant, then present every shard clock at tc with the
			// shards' own tc events still pending (control precedes shard
			// events at the same instant). A control callback therefore
			// reads and schedules against shard time tc, exactly as in a
			// single-scheduler run — no off-by-one staleness.
			if tc-1 > f.now {
				if err := f.runWindow(tc - 1); err != nil {
					return err
				}
				f.flush()
				f.now = tc - 1
			}
			for _, sc := range f.shards {
				sc.AdvanceTo(tc)
			}
			if err := f.control.RunUntil(tc); err != nil {
				return err
			}
			// Control callbacks normally mutate component state directly;
			// flush again in case one pushed a boundary send.
			f.flush()
			f.stats.ControlRounds++
			continue
		}
		// Shard turn: events exist strictly before the next control event.
		end := e + f.lookahead() - 1
		if end > target {
			end = target
		}
		if haveCtl && end > tc-1 {
			end = tc - 1
		}
		if err := f.runWindow(end); err != nil {
			return err
		}
		f.flush()
		f.now = end
	}
}

// RunFor advances the fabric by d from its committed instant.
func (f *Fabric) RunFor(d time.Duration) error {
	return f.RunUntil(f.now.Add(d))
}
