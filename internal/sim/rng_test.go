package sim

import "testing"

func TestStreamsDeterministic(t *testing.T) {
	a := NewStreams(42).Stream("clock/dev1")
	b := NewStreams(42).Stream("clock/dev1")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed and name must yield identical sequences")
		}
	}
}

func TestStreamsIndependentByName(t *testing.T) {
	s := NewStreams(42)
	a := s.Stream("clock/dev1")
	b := s.Stream("clock/dev2")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names look correlated: %d/100 equal draws", same)
	}
}

func TestStreamsIndependentBySeed(t *testing.T) {
	a := NewStreams(1).Stream("x")
	b := NewStreams(2).Stream("x")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds look correlated: %d/100 equal draws", same)
	}
}

func TestStreamsSeedAccessor(t *testing.T) {
	if got := NewStreams(7).Seed(); got != 7 {
		t.Fatalf("Seed() = %d, want 7", got)
	}
}

func TestDeriveSeedStable(t *testing.T) {
	if DeriveSeed(42, "seed/3") != DeriveSeed(42, "seed/3") {
		t.Fatal("DeriveSeed must be a pure function")
	}
	if DeriveSeed(42, "seed/3") == DeriveSeed(42, "seed/4") {
		t.Fatal("different names must derive different seeds")
	}
	if DeriveSeed(1, "seed/3") == DeriveSeed(2, "seed/3") {
		t.Fatal("different masters must derive different seeds")
	}
}

func TestDeriveMatchesFreshStreams(t *testing.T) {
	// A derived factory must behave exactly like NewStreams on the derived
	// seed — the property that makes parallel campaigns bit-identical to
	// sequential ones.
	derived := NewStreams(42).Derive("run/interval/125ms")
	fresh := NewStreams(DeriveSeed(42, "run/interval/125ms"))
	a, b := derived.Stream("osc/dev1"), fresh.Stream("osc/dev1")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Derive diverges from NewStreams(DeriveSeed(...))")
		}
	}
	campaign := NewStreams(42)
	run := campaign.Derive("run/0").Stream("osc/dev1")
	own := campaign.Stream("osc/dev1")
	same := 0
	for i := 0; i < 100; i++ {
		if run.Float64() == own.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived run streams correlate with the campaign's own: %d/100", same)
	}
}
