package sim

import "testing"

func TestStreamsDeterministic(t *testing.T) {
	a := NewStreams(42).Stream("clock/dev1")
	b := NewStreams(42).Stream("clock/dev1")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed and name must yield identical sequences")
		}
	}
}

func TestStreamsIndependentByName(t *testing.T) {
	s := NewStreams(42)
	a := s.Stream("clock/dev1")
	b := s.Stream("clock/dev2")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names look correlated: %d/100 equal draws", same)
	}
}

func TestStreamsIndependentBySeed(t *testing.T) {
	a := NewStreams(1).Stream("x")
	b := NewStreams(2).Stream("x")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds look correlated: %d/100 equal draws", same)
	}
}

func TestStreamsSeedAccessor(t *testing.T) {
	if got := NewStreams(7).Seed(); got != 7 {
		t.Fatalf("Seed() = %d, want 7", got)
	}
}
