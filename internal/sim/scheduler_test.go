package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []Time
	for _, at := range []Time{500, 100, 300, 200, 400} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []Time{100, 200, 300, 400, 500}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("event %d fired at %v, want %v (order %v)", i, got[i], w, got)
		}
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(42, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
}

func TestSchedulerNowAdvances(t *testing.T) {
	s := NewScheduler()
	s.At(100, func() {
		if s.Now() != 100 {
			t.Errorf("Now() = %v inside event, want 100", s.Now())
		}
		s.After(50, func() {
			if s.Now() != 150 {
				t.Errorf("Now() = %v inside nested event, want 150", s.Now())
			}
		})
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if s.Now() != 150 {
		t.Fatalf("final Now() = %v, want 150", s.Now())
	}
}

func TestSchedulerPastEventClampedToNow(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(100, func() {
		s.At(10, func() { fired = true }) // in the past
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !fired {
		t.Fatal("past-scheduled event did not fire")
	}
	if s.Now() != 100 {
		t.Fatalf("Now() = %v, want 100 (past event must not rewind time)", s.Now())
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(100, func() { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double cancel is a no-op
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulerCancelInterleaved(t *testing.T) {
	s := NewScheduler()
	var got []int
	events := make([]EventID, 10)
	for i := 0; i < 10; i++ {
		i := i
		events[i] = s.At(Time(i*10), func() { got = append(got, i) })
	}
	// Cancel every odd event.
	for i := 1; i < 10; i += 2 {
		s.Cancel(events[i])
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []int{0, 2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, at := range []Time{100, 200, 300} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	if err := s.RunUntil(200); err != nil {
		t.Fatalf("run until: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 100 and 200 only", fired)
	}
	if s.Now() != 200 {
		t.Fatalf("Now() = %v, want 200", s.Now())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(fired) != 3 {
		t.Fatalf("remaining event did not fire: %v", fired)
	}
}

func TestRunUntilAdvancesNowWithEmptyQueue(t *testing.T) {
	s := NewScheduler()
	if err := s.RunUntil(12345); err != nil {
		t.Fatalf("run until: %v", err)
	}
	if s.Now() != 12345 {
		t.Fatalf("Now() = %v, want 12345", s.Now())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("Run() = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Fatalf("processed %d events before stop, want 2", count)
	}
	// The scheduler is reusable after a stop.
	if err := s.Run(); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if count != 5 {
		t.Fatalf("processed %d events total, want 5", count)
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	var fires []Time
	tick, err := s.Every(100, 50*time.Nanosecond, func() {
		fires = append(fires, s.Now())
	})
	if err != nil {
		t.Fatalf("every: %v", err)
	}
	if err := s.RunUntil(300); err != nil {
		t.Fatalf("run: %v", err)
	}
	tick.Stop()
	if err := s.RunUntil(1000); err != nil {
		t.Fatalf("run after stop: %v", err)
	}
	want := []Time{100, 150, 200, 250, 300}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick *Ticker
	tick, err := s.Every(0, 10*time.Nanosecond, func() {
		count++
		if count == 3 {
			tick.Stop()
		}
	})
	if err != nil {
		t.Fatalf("every: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3", count)
	}
}

func TestEveryRejectsNonPositivePeriod(t *testing.T) {
	s := NewScheduler()
	if _, err := s.Every(0, 0, func() {}); err == nil {
		t.Fatal("Every accepted zero period")
	}
	if _, err := s.Every(0, -time.Second, func() {}); err == nil {
		t.Fatal("Every accepted negative period")
	}
}

// TestSchedulerOrderProperty verifies with random event sets that firing
// order is always sorted by (time, insertion order).
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s := NewScheduler()
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, raw := range times {
			at := Time(raw)
			i := i
			s.At(at, func() { got = append(got, rec{at: at, seq: i}) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	base := Time(1000)
	if got := base.Add(500 * time.Nanosecond); got != 1500 {
		t.Fatalf("Add = %v, want 1500", got)
	}
	if got := Time(1500).Sub(base); got != 500*time.Nanosecond {
		t.Fatalf("Sub = %v, want 500ns", got)
	}
	if Time(time.Second.Nanoseconds()).String() != "1s" {
		t.Fatalf("String = %q, want 1s", Time(time.Second.Nanoseconds()).String())
	}
}
