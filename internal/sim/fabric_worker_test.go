package sim

// Lifecycle and stress tests for the persistent-worker barrier. The stress
// test is in the -race set (Makefile verify): the epoch hand-off, the
// park/wake CAS protocol and the dirty-list publication are exactly the
// kind of lockless code the race detector exists for.

import (
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops back to want (the
// runtime reaps exited goroutines asynchronously, so a single sample after
// Close can race the reaper).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d still running, want ≤ %d (worker leak after Close)",
				runtime.NumGoroutine(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFabricCloseStopsWorkers pins the worker lifecycle: a parallel run
// spawns one goroutine per shard, Close reaps every one of them, and a
// second Close is a no-op.
func TestFabricCloseStopsWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	s0, s1, control := NewScheduler(), NewScheduler(), NewScheduler()
	var recv01, recv10 []Time
	p01 := &pipe{delay: 30 * time.Microsecond, dst: s1, recv: &recv01}
	p10 := &pipe{delay: 30 * time.Microsecond, dst: s0, recv: &recv10}
	for i := 0; i < 50; i++ {
		at := Time(i * 100_000)
		i := i
		s0.At(at, func() { p01.send(s0, i) })
		s1.At(at.Add(50*time.Microsecond), func() { p10.send(s1, i) })
	}
	f := NewFabric([]*Scheduler{s0, s1}, control, []Boundary{p01, p10})
	f.ForceParallel = true
	if err := f.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if f.group == nil {
		t.Fatal("ForceParallel run never started the persistent workers")
	}
	f.Close()
	if f.group != nil {
		t.Fatal("Close left worker state behind")
	}
	f.Close() // double-Close must be a no-op
	waitGoroutines(t, base)
	if len(recv01) != 50 || len(recv10) != 50 {
		t.Fatalf("deliveries %d/%d, want 50 each", len(recv01), len(recv10))
	}
}

// spawnAbandonedFabric runs a sharded workload on the parallel path and
// drops the fabric without Close, in its own frame so no test local keeps
// it reachable.
func spawnAbandonedFabric(t *testing.T) {
	t.Helper()
	s0, s1, control := NewScheduler(), NewScheduler(), NewScheduler()
	var recv01, recv10 []Time
	p01 := &pipe{delay: 30 * time.Microsecond, dst: s1, recv: &recv01}
	p10 := &pipe{delay: 30 * time.Microsecond, dst: s0, recv: &recv10}
	for i := 0; i < 20; i++ {
		at := Time(i * 100_000)
		i := i
		s0.At(at, func() { p01.send(s0, i) })
		s1.At(at.Add(50*time.Microsecond), func() { p10.send(s1, i) })
	}
	f := NewFabric([]*Scheduler{s0, s1}, control, []Boundary{p01, p10})
	f.ForceParallel = true
	if err := f.RunFor(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if f.group == nil {
		t.Fatal("ForceParallel run never started the persistent workers")
	}
}

// TestFabricAbandonedFabricIsReaped pins the finalizer safety net: a fabric
// dropped without Close must not pin its workers forever. Workers reference
// only the decoupled workerGroup, so the fabric becomes unreachable, its
// finalizer fires, and the workers exit. (Registry experiments drop whole
// Systems without Stop; without this, every sharded sweep point would leak
// its shard goroutines on a multi-core host.)
func TestFabricAbandonedFabricIsReaped(t *testing.T) {
	base := runtime.NumGoroutine()
	spawnAbandonedFabric(t)
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d still running, want ≤ %d (abandoned fabric pinned its workers)",
				runtime.NumGoroutine(), base)
		}
		// One GC to find the fabric unreachable and queue the finalizer,
		// further rounds to let the finalizer goroutine run and the workers
		// exit.
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFabricSerialAfterClose pins post-Close usability: a fabric closed
// before (or mid-) run keeps simulating on the serial path and produces
// the same trace as an open one.
func TestFabricSerialAfterClose(t *testing.T) {
	run := func(closeFirst bool) ([]Time, []Time, FabricStats) {
		s0, s1, control := NewScheduler(), NewScheduler(), NewScheduler()
		var recv01, recv10 []Time
		p01 := &pipe{delay: 20 * time.Microsecond, dst: s1, recv: &recv01}
		p10 := &pipe{delay: 20 * time.Microsecond, dst: s0, recv: &recv10}
		for i := 0; i < 30; i++ {
			at := Time(i * 70_000)
			i := i
			s0.At(at, func() { p01.send(s0, i) })
			s1.At(at.Add(10*time.Microsecond), func() { p10.send(s1, i) })
		}
		f := NewFabric([]*Scheduler{s0, s1}, control, []Boundary{p01, p10})
		if closeFirst {
			f.Close()
		}
		if err := f.RunFor(5 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return recv01, recv10, f.Stats()
	}
	a01, a10, astats := run(true)
	b01, b10, _ := run(false)
	if !reflect.DeepEqual(a01, b01) || !reflect.DeepEqual(a10, b10) {
		t.Fatal("closed (serial) fabric diverged from open fabric")
	}
	if astats.SerialWindows == 0 {
		t.Fatal("closed fabric reported zero serial windows")
	}
}

// TestFabricForceParallelAfterClose pins Close's precedence over
// ForceParallel: a closed fabric must never take the parallel path, so it
// cannot respawn workers (or re-register the finalizer) after Close.
func TestFabricForceParallelAfterClose(t *testing.T) {
	base := runtime.NumGoroutine()
	s0, s1, control := NewScheduler(), NewScheduler(), NewScheduler()
	var recv01, recv10 []Time
	p01 := &pipe{delay: 30 * time.Microsecond, dst: s1, recv: &recv01}
	p10 := &pipe{delay: 30 * time.Microsecond, dst: s0, recv: &recv10}
	for i := 0; i < 30; i++ {
		at := Time(i * 100_000)
		i := i
		s0.At(at, func() { p01.send(s0, i) })
		s1.At(at.Add(50*time.Microsecond), func() { p10.send(s1, i) })
	}
	f := NewFabric([]*Scheduler{s0, s1}, control, []Boundary{p01, p10})
	f.ForceParallel = true
	f.Close()
	if err := f.RunFor(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if f.group != nil {
		t.Fatal("closed fabric with ForceParallel respawned its workers")
	}
	if st := f.Stats(); st.SerialWindows == 0 {
		t.Fatal("closed fabric reported zero serial windows")
	}
	if len(recv01) != 30 || len(recv10) != 30 {
		t.Fatalf("deliveries %d/%d, want 30 each", len(recv01), len(recv10))
	}
	waitGoroutines(t, base)
}

// TestWorkerAwaitAbsorbsStaleWake hand-drives the dispatcher-preemption
// interleaving on a bare worker: the worker has already consumed epoch 1
// via the spin path and re-parked when the dispatcher's delayed parked CAS
// lands and sends a wake for that same epoch. await must absorb the stale
// wake and keep waiting — returning it would make run() re-execute the
// window and decrement the barrier a second time.
func TestWorkerAwaitAbsorbsStaleWake(t *testing.T) {
	w := &fabricWorker{g: &workerGroup{}, wake: make(chan struct{}, 1)}
	w.epoch.Store(1) // epoch 1 already consumed by the spin path
	res := make(chan uint64, 1)
	go func() { res <- w.await(1) }()
	deadline := time.Now().Add(2 * time.Second)
	for w.parked.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never parked")
		}
		runtime.Gosched()
	}
	// The dispatcher's delayed CAS for epoch 1 succeeds against the re-park
	// and commits to a wake — the stale token.
	if !w.parked.CompareAndSwap(1, 0) {
		t.Fatal("parked CAS lost despite observed park")
	}
	w.wake <- struct{}{}
	select {
	case e := <-res:
		t.Fatalf("await returned %d on a stale wake for an already-consumed epoch", e)
	case <-time.After(20 * time.Millisecond):
	}
	// A real dispatch for epoch 2 (dispatch's own publish-then-CAS order).
	w.epoch.Store(2)
	if w.parked.CompareAndSwap(1, 0) {
		w.wake <- struct{}{}
	}
	select {
	case e := <-res:
		if e != 2 {
			t.Fatalf("await = %d, want 2", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("await never observed epoch 2 after absorbing the stale wake")
	}
}

// TestFabricDispatchGapStaleWake forces the dispatcher preemption window
// between dispatch's epoch publish and its parked CAS. The gap hook waits
// until the dispatched worker has already consumed the epoch by spinning,
// run the entire window (barrier count back to zero), and parked again —
// only then does the dispatcher's CAS land and send a wake for an epoch
// the worker already consumed. await must absorb that stale wake and
// re-park; before the absorb loop this interleaving re-ran the window,
// decremented the barrier twice, and either deadlocked the coordinator or
// raced a still-executing shard. Run under -race via make verify.
func TestFabricDispatchGapStaleWake(t *testing.T) {
	const (
		rounds  = 800
		spacing = 10_000 // ns between rounds; lookahead is 5µs
	)
	runTrace := func(parallel bool) ([]Time, []Time) {
		s0, s1, control := NewScheduler(), NewScheduler(), NewScheduler()
		var recv01, recv10 []Time
		p01 := &pipe{delay: 5 * time.Microsecond, dst: s1, recv: &recv01}
		p10 := &pipe{delay: 5 * time.Microsecond, dst: s0, recv: &recv10}
		// Both shards busy every window, so busy[1:] is exactly one worker
		// and the gap hook's barrier==0 check is unambiguous.
		for r := 0; r < rounds; r++ {
			at := Time(r * spacing)
			r := r
			s0.At(at, func() { p01.send(s0, r) })
			s1.At(at, func() { p10.send(s1, r) })
		}
		f := NewFabric([]*Scheduler{s0, s1}, control, []Boundary{p01, p10})
		if parallel {
			f.ForceParallel = true
		} else {
			f.Close() // pin to the serial path
		}
		if err := f.RunFor(time.Duration(rounds*spacing) + time.Millisecond); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return recv01, recv10
	}

	serial01, serial10 := runTrace(false)
	gap := func(w *fabricWorker) {
		deadline := time.Now().Add(500 * time.Microsecond)
		for time.Now().Before(deadline) {
			// Worker done with the window (its decrement brought the count
			// to zero) and parked again: the CAS after this hook returns
			// will now send a wake for the consumed epoch.
			if w.g.barrier.Load()>>1 == 0 && w.parked.Load() == 1 {
				return
			}
			runtime.Gosched()
		}
	}
	testDispatchGap.Store(&gap)
	defer testDispatchGap.Store(nil)
	par01, par10 := runTrace(true)
	if !reflect.DeepEqual(serial01, par01) || !reflect.DeepEqual(serial10, par10) {
		t.Fatalf("stale-wake interleaving diverged from serial twin: %d/%d vs %d/%d deliveries",
			len(par01), len(par10), len(serial01), len(serial10))
	}
	if len(serial01) != rounds || len(serial10) != rounds {
		t.Fatalf("serial twin delivered %d/%d, want %d each", len(serial01), len(serial10), rounds)
	}
}

// TestFabricShardErrorTerminatesWorkers pins error semantics under the
// worker barrier: a shard stopping mid-window surfaces ErrStopped from
// RunUntil, every worker still completes its window (no wedged barrier),
// and Close afterwards reaps all workers promptly.
func TestFabricShardErrorTerminatesWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	s0, s1, control := NewScheduler(), NewScheduler(), NewScheduler()
	var recv01, recv10 []Time
	p01 := &pipe{delay: 30 * time.Microsecond, dst: s1, recv: &recv01}
	p10 := &pipe{delay: 30 * time.Microsecond, dst: s0, recv: &recv10}
	for i := 0; i < 20; i++ {
		at := Time(i * 100_000)
		i := i
		s0.At(at, func() { p01.send(s0, i) })
		s1.At(at.Add(50*time.Microsecond), func() { p10.send(s1, i) })
	}
	// Shard 1 stops itself mid-run, inside a window both shards are busy in.
	s1.At(Time(5*100_000+50_000), func() { s1.Stop() })
	f := NewFabric([]*Scheduler{s0, s1}, control, []Boundary{p01, p10})
	f.ForceParallel = true
	err := f.RunFor(10 * time.Millisecond)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("RunFor error = %v, want ErrStopped", err)
	}
	f.Close()
	waitGoroutines(t, base)
}

// TestFabricRunUntilBackwards pins the target validation: a target behind
// the committed instant is an error, not a silent no-op or a spin.
func TestFabricRunUntilBackwards(t *testing.T) {
	s0, control := NewScheduler(), NewScheduler()
	f := NewFabric([]*Scheduler{s0}, control, nil)
	if err := f.RunUntil(1000); err != nil {
		t.Fatal(err)
	}
	if err := f.RunUntil(999); err == nil {
		t.Fatal("RunUntil behind the committed instant succeeded, want error")
	}
	if err := f.RunUntil(1000); err != nil {
		t.Fatalf("RunUntil(now) must stay valid, got %v", err)
	}
}

// TestFabricZeroBoundaryLookahead pins the satellite fix: the zero-boundary
// fast path must publish its (effectively unbounded) lookahead into stats
// instead of leaving the previous value behind.
func TestFabricZeroBoundaryLookahead(t *testing.T) {
	s0, control := NewScheduler(), NewScheduler()
	s0.At(10, func() {})
	f := NewFabric([]*Scheduler{s0}, control, nil)
	if err := f.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.LookaheadNS != int64(Time(1<<62-1)) {
		t.Fatalf("zero-boundary LookaheadNS = %d, want %d", st.LookaheadNS, int64(Time(1<<62-1)))
	}
	if st.LookaheadRescans != 1 {
		t.Fatalf("LookaheadRescans = %d, want 1 (cached afterwards)", st.LookaheadRescans)
	}
}

// binderPipe is a pipe that implements BoundaryBinder, so it exercises the
// dirty-list path rather than the legacy always-scan path.
type binderPipe struct {
	pipe
	markDirty  func()
	invalidate func()
}

func (p *binderPipe) BindFabric(markDirty, invalidate func()) {
	p.markDirty = markDirty
	p.invalidate = invalidate
}

func (p *binderPipe) send(src *Scheduler, payload any) {
	if len(p.out) == 0 && p.markDirty != nil {
		p.markDirty()
	}
	p.pipe.send(src, payload)
}

// TestFabricLookaheadCacheAndDirtyFlush pins the caching machinery end to
// end: the MinDelay rescan runs once up front and once per invalidation
// (not per window), flush skips barriers with no captured sends when every
// boundary is bound, and a delay mutation reported through the hook
// changes the effective lookahead.
func TestFabricLookaheadCacheAndDirtyFlush(t *testing.T) {
	s0, s1, control := NewScheduler(), NewScheduler(), NewScheduler()
	var recv01, recv10 []Time
	p01 := &binderPipe{pipe: pipe{delay: 30 * time.Microsecond, dst: s1, recv: &recv01}}
	p10 := &binderPipe{pipe: pipe{delay: 30 * time.Microsecond, dst: s0, recv: &recv10}}
	for i := 0; i < 40; i++ {
		at := Time(i * 100_000)
		i := i
		s0.At(at, func() { p01.send(s0, i) })
		s1.At(at.Add(50*time.Microsecond), func() { p10.send(s1, i) })
		// Local busywork that defers nothing: barriers after these windows
		// must hit the flush fast path.
		s0.At(at.Add(10*time.Microsecond), func() {})
		s1.At(at.Add(10*time.Microsecond), func() {})
	}
	// Halve one pipe's delay mid-run via the control scheduler, reporting
	// it through the bound invalidation hook — the canonical chaos/WAN
	// mutation shape.
	control.At(Time(2_000_000), func() {
		p01.delay = 15 * time.Microsecond
		p01.invalidate()
	})
	f := NewFabric([]*Scheduler{s0, s1}, control, []Boundary{p01, p10})
	if err := f.RunFor(6 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st := f.Stats()
	if p01.markDirty == nil || p10.markDirty == nil {
		t.Fatal("NewFabric did not bind the BoundaryBinder pipes")
	}
	if st.LookaheadRescans != 2 {
		t.Fatalf("LookaheadRescans = %d, want 2 (initial + one invalidation) over %d windows",
			st.LookaheadRescans, st.Windows)
	}
	if st.LookaheadNS != int64(15*time.Microsecond) {
		t.Fatalf("post-mutation LookaheadNS = %d, want %d", st.LookaheadNS, int64(15*time.Microsecond))
	}
	if st.FlushesSkipped == 0 {
		t.Fatal("no barrier skipped flushing despite send-free windows")
	}
	if len(recv01) != 40 || len(recv10) != 40 {
		t.Fatalf("deliveries %d/%d, want 40 each", len(recv01), len(recv10))
	}
}

// TestFabricBarrierStress drives the worker barrier through thousands of
// windows with a randomized busy-shard set per window — every subset size
// from one lone shard to all eight — and checks the delivery traces are
// bit-identical to a serial twin of the same workload. Run under -race
// (make verify) this doubles as the memory-model check on the epoch
// hand-off, the park/wake CAS and the dirty-list publication.
func TestFabricBarrierStress(t *testing.T) {
	const (
		shards  = 8
		rounds  = 3000
		spacing = 10_000 // ns between rounds; lookahead is 5µs
	)
	build := func() (scheds []*Scheduler, control *Scheduler, bounds []Boundary, traces []*[]Time) {
		control = NewScheduler()
		for i := 0; i < shards; i++ {
			scheds = append(scheds, NewScheduler())
		}
		rng := rand.New(rand.NewSource(7))
		// Ring of binder pipes i -> (i+1)%shards.
		for i := 0; i < shards; i++ {
			tr := &[]Time{}
			traces = append(traces, tr)
			bounds = append(bounds, &binderPipe{pipe: pipe{
				delay: 5 * time.Microsecond, dst: scheds[(i+1)%shards], recv: tr,
			}})
		}
		for r := 0; r < rounds; r++ {
			at := Time(r * spacing)
			// A random subset of shards is busy this round; busy shards
			// randomly either send around the ring or just do local work.
			for i := 0; i < shards; i++ {
				if rng.Intn(3) == 0 {
					continue
				}
				i := i
				if rng.Intn(2) == 0 {
					sc, p := scheds[i], bounds[i].(*binderPipe)
					scheds[i].At(at, func() { p.send(sc, r) })
				} else {
					scheds[i].At(at, func() {})
				}
			}
		}
		return
	}

	runTrace := func(parallel bool) ([]Time, FabricStats) {
		scheds, control, bounds, traces := build()
		f := NewFabric(scheds, control, bounds)
		if parallel {
			f.ForceParallel = true
		} else {
			f.Close() // pin to the serial path
		}
		if err := f.RunFor(time.Duration(rounds*spacing) + time.Millisecond); err != nil {
			t.Fatal(err)
		}
		f.Close()
		var all []Time
		for _, tr := range traces {
			all = append(all, *tr...)
		}
		return all, f.Stats()
	}

	serial, sstats := runTrace(false)
	par, pstats := runTrace(true)
	if len(serial) == 0 {
		t.Fatal("stress workload produced no deliveries")
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel barrier diverged from serial twin: %d vs %d deliveries",
			len(par), len(serial))
	}
	if sstats.Committed != pstats.Committed {
		t.Fatalf("committed %d (serial) vs %d (parallel)", sstats.Committed, pstats.Committed)
	}
	if pstats.Windows < rounds/2 {
		t.Fatalf("only %d windows over %d rounds — stress did not exercise the barrier", pstats.Windows, rounds)
	}
}
