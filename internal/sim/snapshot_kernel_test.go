package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// runSnapshotRoundTrip drives the kernel and the container/heap reference
// model through the same randomized schedule/cancel script, snapshots the
// kernel mid-timeline, finishes both and cross-checks the complete firing
// traces — then restores the snapshot and replays the suffix, which must be
// bit-identical to the first completion (same events, same order, same
// instants), including cancels issued after the snapshot.
func runSnapshotRoundTrip(t *testing.T, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	type rec struct {
		id int
		at Time
	}
	var gotNew, gotRef []rec

	s := NewScheduler()
	r := &refScheduler{}
	ids := make([]EventID, 0, ops)
	refEvs := make([]*refEvent, 0, ops)

	next := 0
	for i := 0; i < ops; i++ {
		switch {
		case len(ids) > 0 && rng.Intn(4) == 0: // cancel a random event
			k := rng.Intn(len(ids))
			s.Cancel(ids[k])
			r.cancel(refEvs[k])
		default:
			at := Time(rng.Intn(1000))
			id := next
			next++
			ids = append(ids, s.At(at, func() { gotNew = append(gotNew, rec{id: id, at: s.Now()}) }))
			refEvs = append(refEvs, r.at(at, func() { gotRef = append(gotRef, rec{id: id, at: r.now}) }))
		}
	}

	// Drain part of the timeline, then snapshot mid-flight.
	mid := Time(rng.Intn(1000))
	if err := s.RunUntil(mid); err != nil {
		t.Fatal(err)
	}
	for len(r.queue) > 0 && r.queue[0].at <= mid {
		e := heap.Pop(&r.queue).(*refEvent)
		e.index = -1
		r.now = e.at
		e.fn()
	}
	if r.now < s.Now() {
		r.now = s.Now()
	}
	snap := s.Snapshot()
	mark := len(gotNew)

	// Cancels issued after the snapshot must replay identically after the
	// restore, so record the script.
	var lateCancels []int
	for i := 0; i < ops/8; i++ {
		if len(ids) == 0 {
			break
		}
		k := rng.Intn(len(ids))
		lateCancels = append(lateCancels, k)
		s.Cancel(ids[k])
		r.cancel(refEvs[k])
	}

	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	r.run()
	if len(gotNew) != len(gotRef) {
		t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(gotNew), len(gotRef))
	}
	for i := range gotNew {
		if gotNew[i] != gotRef[i] {
			t.Fatalf("seed %d: divergence at event %d: kernel %+v, reference %+v",
				seed, i, gotNew[i], gotRef[i])
		}
	}

	// Round trip: rewind to the snapshot and replay the identical suffix
	// script. Event handles must survive the restore verbatim.
	suffix := append([]rec(nil), gotNew[mark:]...)
	gotNew = nil
	s.Restore(snap)
	if got, want := s.Now(), mid; got > want {
		// RunUntil leaves Now at the boundary even with an empty queue;
		// Restore must bring it back exactly.
		t.Fatalf("seed %d: restored Now = %v, want <= %v", seed, got, want)
	}
	for _, k := range lateCancels {
		s.Cancel(ids[k])
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(gotNew) != len(suffix) {
		t.Fatalf("seed %d: replay fired %d events, original suffix fired %d",
			seed, len(gotNew), len(suffix))
	}
	for i := range suffix {
		if gotNew[i] != suffix[i] {
			t.Fatalf("seed %d: replay divergence at event %d: replay %+v, original %+v",
				seed, i, gotNew[i], suffix[i])
		}
	}
}

func TestSchedulerSnapshotRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		runSnapshotRoundTrip(t, seed, 400)
	}
}

func FuzzSchedulerSnapshotRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(100))
	f.Add(int64(42), uint16(1000))
	f.Add(int64(-7), uint16(317))
	f.Fuzz(func(t *testing.T, seed int64, ops uint16) {
		runSnapshotRoundTrip(t, seed, int(ops%2048))
	})
}
