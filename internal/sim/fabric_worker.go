package sim

// Persistent shard workers and the epoch barrier that drives them.
//
// One goroutine per shard is started lazily on the first parallel window
// and lives until Fabric.Close. A window dispatch is a single epoch-counter
// store per worker (plus a channel send only if that worker had parked);
// completion is a single atomic decrement per worker (plus a channel send
// only if the coordinator had parked). Workers spin briefly before parking
// so that back-to-back windows — the common case in a converged fabric —
// never touch the channels at all.
//
//	coordinator                         worker w (one per shard)
//	-----------                         ------------------------
//	barrier.Store(remaining<<1)         await(last):
//	epoch++                               spin: epoch.Load() != last? go
//	for each busy worker w:               park: parked.Store(1)
//	  w.end, w.quit = end, false                recheck epoch; CAS parked
//	  w.epoch.Store(epoch)                      1→0 or drain wake; <-wake
//	  if w.parked.CAS(1,0): w.wake <-           woke with epoch == last?
//	run busy[0] inline                          stale wake — absorb, re-park
//	awaitWorkers():                     run: err = sc.RunUntil(end)
//	  spin: barrier.Load() == 0? go     done: if barrier.Add(-2) == 1:
//	  park: CAS barrier s→s|1; <-done           g.done <- struct{}{}
//	                                    loop to await
//
// The barrier word packs the remaining-worker count in the high bits and a
// coordinator-parked bit in bit 0. A finishing worker decrements by 2 and
// reads the parked bit out of the same atomic op, so "last worker done"
// and "coordinator is parked" are decided together — a worker from window
// N can never leave a stale token in g.done for window N+1's coordinator
// to consume. Worker epochs are uint64 so a spinning worker can never
// observe a wrapped-around epoch equal to its last one.
//
// The barrier state lives in a workerGroup allocated separately from the
// Fabric, and worker goroutines reference only the group and their own
// scheduler — never the Fabric. Goroutine stacks are GC roots, so workers
// holding the Fabric would pin an abandoned fabric (and the whole System
// hanging off it) forever; with the group decoupled, a fabric dropped
// without Close becomes unreachable, its finalizer fires and reaps the
// workers. Explicit Close remains the deterministic path (System.Stop,
// benchmarks); the finalizer is the safety net for drivers that just let
// a sharded system go out of scope.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// workerSpin bounds the epoch-polling iterations (each yielding the
	// processor) a worker burns before parking on its wake channel.
	workerSpin = 128
	// coordSpin bounds the barrier-polling iterations before the
	// coordinator parks on done.
	coordSpin = 128
)

// workerGroup owns the persistent workers and the barrier state they
// share with the coordinator. It deliberately holds no Fabric reference;
// see the package comment above.
type workerGroup struct {
	workers []*fabricWorker
	epoch   atomic.Uint64
	barrier atomic.Int32 // remaining<<1 | coordinator-parked bit
	done    chan struct{}
	exited  sync.WaitGroup
	closed  atomic.Bool
}

// fabricWorker is the persistent goroutine owning one shard's window
// execution. end/quit/err are plain fields: end and quit are written by
// the dispatcher strictly before the epoch store that hands the window
// over, and err strictly before the barrier decrement that hands it back.
type fabricWorker struct {
	g      *workerGroup
	sc     *Scheduler
	epoch  atomic.Uint64
	parked atomic.Uint32
	wake   chan struct{}
	end    Time
	quit   bool
	err    error
}

// startWorkers spawns the per-shard workers. Called lazily from the first
// window that takes the parallel path, so serial-only fabrics (one core,
// one shard, or closed before converging) never carry idle goroutines.
// The finalizer covers fabrics abandoned without Close.
func (f *Fabric) startWorkers() {
	g := &workerGroup{done: make(chan struct{}, 1)}
	g.workers = make([]*fabricWorker, len(f.shards))
	for i, sc := range f.shards {
		w := &fabricWorker{g: g, sc: sc, wake: make(chan struct{}, 1)}
		g.workers[i] = w
		g.exited.Add(1)
		go w.run()
	}
	f.group = g
	runtime.SetFinalizer(f, (*Fabric).reapWorkers)
}

// reapWorkers is the GC finalizer installed by startWorkers: a fabric
// dropped without Close still terminates its workers (which would
// otherwise park forever, pinning every shard scheduler).
func (f *Fabric) reapWorkers() {
	if f.group != nil {
		f.group.close()
	}
}

func (w *fabricWorker) run() {
	defer w.g.exited.Done()
	last := uint64(0)
	for {
		last = w.await(last)
		if w.quit {
			return
		}
		w.err = w.sc.RunUntil(w.end)
		if w.g.barrier.Add(-2) == 1 {
			w.g.done <- struct{}{}
		}
	}
}

// await blocks until the dispatcher publishes an epoch newer than last and
// returns it. The parked flag hands the worker between the spin and
// channel regimes without losing a wake-up: after setting it the worker
// rechecks the epoch, and if a dispatch already happened it un-parks
// itself — or, if the dispatcher won the CAS race and committed to a
// channel send, drains that send so it cannot satisfy a later await.
//
// A wake can arrive for an epoch this worker already consumed: if the
// dispatcher is preempted between its epoch store and its parked CAS, the
// spinning worker can pick up the epoch, run the whole window, re-enter
// await and park — and only then does the delayed CAS succeed and send.
// Such a stale wake leaves epoch == last; await must absorb it and keep
// waiting, never return it, or run() would re-execute a completed window
// and decrement the barrier twice.
func (w *fabricWorker) await(last uint64) uint64 {
	for {
		for i := 0; i < workerSpin; i++ {
			if e := w.epoch.Load(); e != last {
				return e
			}
			runtime.Gosched()
		}
		w.parked.Store(1)
		if e := w.epoch.Load(); e != last {
			if !w.parked.CompareAndSwap(1, 0) {
				<-w.wake
			}
			return e
		}
		<-w.wake
		if e := w.epoch.Load(); e != last {
			return e
		}
		// Stale wake for an already-consumed epoch; go around and re-park.
	}
}

// testDispatchGap, when set, runs between dispatch's epoch publish and
// its parked CAS. Test-only: it widens the preemption window in which a
// spinning worker consumes the epoch, finishes the window and re-parks
// before the CAS lands, so the stale-wake path in await is actually hit.
// Atomic because dispatch is also reached from finalizer goroutines
// (reapWorkers → close), which can race a test installing the hook.
var testDispatchGap atomic.Pointer[func(*fabricWorker)]

// dispatch hands the (end, quit) command to w under the already-advanced
// group epoch, waking it only if it had parked.
func (g *workerGroup) dispatch(w *fabricWorker, end Time, quit bool) {
	w.end, w.quit = end, quit
	w.epoch.Store(g.epoch.Load())
	if gap := testDispatchGap.Load(); gap != nil {
		(*gap)(w)
	}
	if w.parked.CompareAndSwap(1, 0) {
		w.wake <- struct{}{}
	}
}

// close terminates every worker and waits for them to exit. Idempotent;
// callable from Fabric.Close and from the finalizer.
func (g *workerGroup) close() {
	if !g.closed.CompareAndSwap(false, true) {
		return
	}
	g.epoch.Add(1)
	for _, w := range g.workers {
		g.dispatch(w, 0, true)
	}
	g.exited.Wait()
}

// runWindowParallel executes one window over ≥2 busy shards on the
// persistent workers: busy[1:] are dispatched, busy[0] runs inline on the
// coordinator, and the coordinator then waits at the barrier. Errors are
// reported with the same semantics as the serial path: every busy shard
// finishes its window, and the first error in busy (shard-index) order is
// returned.
func (f *Fabric) runWindowParallel(busy []int, end Time) error {
	if f.group == nil {
		f.startWorkers()
	}
	g := f.group
	g.barrier.Store(int32(len(busy)-1) << 1)
	g.epoch.Add(1)
	for _, i := range busy[1:] {
		g.dispatch(g.workers[i], end, false)
	}
	err0 := f.shards[busy[0]].RunUntil(end)
	start := time.Now()
	g.awaitWorkers()
	wait := time.Since(start)
	f.stats.BarrierWaitNS += uint64(wait)
	if f.BarrierObserver != nil {
		f.BarrierObserver(float64(wait))
	}
	if err0 != nil {
		return err0
	}
	for _, i := range busy[1:] {
		if err := g.workers[i].err; err != nil {
			return err
		}
	}
	return nil
}

// awaitWorkers blocks until every dispatched worker has decremented the
// barrier word. Parking is a CAS setting the word's low bit, re-read in
// the same loop: either the count is already zero (no token was or will
// be sent for this window) or the CAS publishes the bit and exactly one
// worker — the last one, which observes it atomically in its decrement —
// sends the token.
func (g *workerGroup) awaitWorkers() {
	for i := 0; i < coordSpin; i++ {
		if g.barrier.Load() == 0 {
			return
		}
		runtime.Gosched()
	}
	for {
		s := g.barrier.Load()
		if s>>1 == 0 {
			return
		}
		if g.barrier.CompareAndSwap(s, s|1) {
			break
		}
	}
	<-g.done
}

// Close terminates the persistent workers and pins the fabric to its
// serial path. The fabric remains fully usable afterwards — RunUntil keeps
// working, with every window executed inline on the calling goroutine — so
// drivers may Close as soon as they stop caring about parallelism (end of
// a benchmark iteration, System.Stop) without ending the simulation.
// Close is idempotent and must be called from the driving goroutine, never
// concurrently with RunUntil.
func (f *Fabric) Close() {
	if f.closed {
		return
	}
	f.closed = true
	if f.group == nil {
		return
	}
	f.group.close()
	f.group = nil
	runtime.SetFinalizer(f, nil)
}
