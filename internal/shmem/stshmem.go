package shmem

import (
	"sync"
)

// ClockParams maps the node's platform counter (TSC) onto the fault-tolerant
// global time: CLOCK_SYNCTIME(tsc) = SyncRef + (tsc − TSCRef)·Ratio.
// A clock-synchronization VM's phc2sys derives these parameters from its
// disciplined NIC PHC and publishes them into its STSHMEM slot.
type ClockParams struct {
	TSCRef  float64
	SyncRef float64
	Ratio   float64
	// Seq increments with every update; the hypervisor monitor uses it to
	// detect a fail-silent writer.
	Seq uint64
	// UpdatedTSC is the TSC reading at the last update.
	UpdatedTSC float64
	// Valid reports whether the slot has ever been written since boot.
	Valid bool
}

// SyncTimeAt evaluates CLOCK_SYNCTIME at a TSC reading.
func (p ClockParams) SyncTimeAt(tsc float64) float64 {
	return p.SyncRef + (tsc-p.TSCRef)*p.Ratio
}

// STSHMEM is the synchronized-time shared memory the ACRN hypervisor
// exposes to co-located VMs as a virtual PCI device. Each of the node's
// clock-synchronization VMs owns one parameter slot; the hypervisor's
// monitor selects the active slot, and every VM on the node derives
// CLOCK_SYNCTIME from it.
type STSHMEM struct {
	mu     sync.Mutex
	slots  []ClockParams
	active int
}

// NewSTSHMEM creates a region with one slot per clock-synchronization VM.
// Slot 0 starts active.
func NewSTSHMEM(slots int) *STSHMEM {
	return &STSHMEM{slots: make([]ClockParams, slots)}
}

// NumSlots reports the number of VM slots.
func (s *STSHMEM) NumSlots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.slots)
}

// Publish writes a VM's clock parameters into its slot, bumping Seq.
func (s *STSHMEM) Publish(slot int, p ClockParams) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot < 0 || slot >= len(s.slots) {
		return
	}
	p.Seq = s.slots[slot].Seq + 1
	p.Valid = true
	s.slots[slot] = p
}

// Slot snapshots one VM's parameters.
func (s *STSHMEM) Slot(slot int) ClockParams {
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot < 0 || slot >= len(s.slots) {
		return ClockParams{}
	}
	return s.slots[slot]
}

// Slots snapshots all parameter slots.
func (s *STSHMEM) Slots() []ClockParams {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ClockParams(nil), s.slots...)
}

// Active reports which slot currently defines CLOCK_SYNCTIME.
func (s *STSHMEM) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// SetActive switches the slot that defines CLOCK_SYNCTIME (hypervisor
// monitor failover).
func (s *STSHMEM) SetActive(slot int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot >= 0 && slot < len(s.slots) {
		s.active = slot
	}
}

// Invalidate clears a slot (VM shutdown); the monitor will fail over.
func (s *STSHMEM) Invalidate(slot int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot >= 0 && slot < len(s.slots) {
		s.slots[slot] = ClockParams{}
	}
}

// SyncTimeAt evaluates CLOCK_SYNCTIME from the active slot at a TSC
// reading. ok is false while no valid parameters are published.
func (s *STSHMEM) SyncTimeAt(tsc float64) (v float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.slots[s.active]
	if !p.Valid {
		return 0, false
	}
	return p.SyncTimeAt(tsc), true
}
