package shmem

import (
	"sync"
	"testing"
	"testing/quick"

	"gptpfta/internal/gptp"
	"gptpfta/internal/servo"
)

func newFT() *FTSHMEM {
	return NewFTSHMEM([]int{1, 2, 3, 4}, 375e6, servo.NewPI(servo.Config{}))
}

func TestFTSHMEMStoreAndReadings(t *testing.T) {
	s := newFT()
	s.StoreOffset(gptp.OffsetSample{Domain: 2, OffsetNS: -42}, 1000)
	r := s.Readings(2000)
	if len(r) != 4 {
		t.Fatalf("readings len = %d, want 4", len(r))
	}
	if !r[1].Fresh || r[1].OffsetNS != -42 || r[1].Domain != 2 {
		t.Fatalf("slot 1 = %+v, want fresh domain-2 offset -42", r[1])
	}
	for _, i := range []int{0, 2, 3} {
		if r[i].Fresh {
			t.Fatalf("slot %d fresh without a store", i)
		}
	}
}

func TestFTSHMEMUnknownDomainIgnored(t *testing.T) {
	s := newFT()
	s.StoreOffset(gptp.OffsetSample{Domain: 99, OffsetNS: 1}, 0)
	for _, r := range s.Readings(1) {
		if r.Fresh {
			t.Fatal("unknown domain stored")
		}
	}
}

func TestFTSHMEMStaleness(t *testing.T) {
	s := NewFTSHMEM([]int{1, 2}, 375e6, servo.NewPI(servo.Config{})) // stale after 375 ms
	s.StoreOffset(gptp.OffsetSample{Domain: 1, OffsetNS: 5}, 0)
	if r := s.Readings(300e6); !r[0].Fresh {
		t.Fatal("reading stale too early")
	}
	if r := s.Readings(400e6); r[0].Fresh {
		t.Fatal("reading fresh after staleness window (fail-silent GM must age out)")
	}
}

func TestFTSHMEMStoreOwnDomain(t *testing.T) {
	s := newFT()
	s.StoreOwnDomain(3, 100)
	r := s.Readings(101)
	if !r[2].Fresh || r[2].OffsetNS != 0 {
		t.Fatalf("own-domain slot = %+v, want fresh zero offset", r[2])
	}
}

func TestFTSHMEMAggregationGate(t *testing.T) {
	s := newFT()
	const interval = 125e6
	if !s.TryAcquireAdjust(1000, interval) {
		t.Fatal("first acquisition must succeed")
	}
	// Every other instance in the same interval loses.
	for i := 0; i < 3; i++ {
		if s.TryAcquireAdjust(1000+float64(i), interval) {
			t.Fatal("second acquisition in the same interval succeeded")
		}
	}
	if s.TryAcquireAdjust(1000+interval-1, interval) {
		t.Fatal("acquisition just before the boundary succeeded")
	}
	if !s.TryAcquireAdjust(1000+interval, interval) {
		t.Fatal("acquisition at the boundary failed")
	}
	last, ok := s.AdjustLast()
	if !ok || last != 1000+interval {
		t.Fatalf("AdjustLast = %v/%v, want 1000+interval", last, ok)
	}
}

// TestFTSHMEMGateExactlyOneWinner is the paper's invariant: per interval,
// exactly one of the M instances feeds the shared PI controller.
func TestFTSHMEMGateExactlyOneWinner(t *testing.T) {
	prop := func(jitters [4]uint8) bool {
		s := newFT()
		const interval = 125e6
		_ = s.TryAcquireAdjust(0, interval) // prime the gate at t=0
		for interval1 := 1; interval1 <= 10; interval1++ {
			base := float64(interval1) * interval
			winners := 0
			for _, j := range jitters {
				if s.TryAcquireAdjust(base+float64(j), interval) {
					winners++
				}
			}
			if winners != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFTSHMEMGateConcurrent(t *testing.T) {
	// The region is shared between instances; under -race this verifies
	// the locking, and exactly one goroutine may win per interval.
	s := newFT()
	_ = s.TryAcquireAdjust(0, 125e6)
	var wg sync.WaitGroup
	wins := make([]bool, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			wins[i] = s.TryAcquireAdjust(125e6+float64(i), 125e6)
		}()
	}
	wg.Wait()
	count := 0
	for _, w := range wins {
		if w {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d winners, want exactly 1", count)
	}
}

func TestFTSHMEMFlags(t *testing.T) {
	s := newFT()
	s.SetFlags([]bool{true, false, true, true})
	got := s.Flags()
	want := []bool{true, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flags = %v, want %v", got, want)
		}
	}
}

func TestFTSHMEMReset(t *testing.T) {
	s := newFT()
	s.StoreOffset(gptp.OffsetSample{Domain: 1, OffsetNS: 5}, 0)
	_ = s.TryAcquireAdjust(0, 125e6)
	s.Servo().Sample(100, 0)
	s.Servo().Sample(200, 125e6)
	s.Reset()
	for _, r := range s.Readings(1) {
		if r.Fresh {
			t.Fatal("reset left fresh readings")
		}
	}
	if _, ok := s.AdjustLast(); ok {
		t.Fatal("reset left the aggregation gate primed")
	}
	if s.Servo().State() != servo.StateUnlocked {
		t.Fatal("reset left the servo locked")
	}
}

func TestClockParamsSyncTime(t *testing.T) {
	p := ClockParams{TSCRef: 1000, SyncRef: 5000, Ratio: 1.0 + 5e-6}
	got := p.SyncTimeAt(2000)
	want := 5000 + 1000*(1+5e-6)
	if got != want {
		t.Fatalf("SyncTimeAt = %v, want %v", got, want)
	}
}

func TestSTSHMEMPublishAndRead(t *testing.T) {
	s := NewSTSHMEM(2)
	if _, ok := s.SyncTimeAt(0); ok {
		t.Fatal("unpublished region returned a time")
	}
	s.Publish(0, ClockParams{TSCRef: 0, SyncRef: 100, Ratio: 1})
	v, ok := s.SyncTimeAt(50)
	if !ok || v != 150 {
		t.Fatalf("SyncTimeAt = %v/%v, want 150/true", v, ok)
	}
	if s.Slot(0).Seq != 1 {
		t.Fatalf("Seq = %d, want 1", s.Slot(0).Seq)
	}
	s.Publish(0, ClockParams{TSCRef: 0, SyncRef: 200, Ratio: 1})
	if s.Slot(0).Seq != 2 {
		t.Fatalf("Seq = %d after second publish, want 2", s.Slot(0).Seq)
	}
}

func TestSTSHMEMFailover(t *testing.T) {
	s := NewSTSHMEM(2)
	s.Publish(0, ClockParams{SyncRef: 100, Ratio: 1})
	s.Publish(1, ClockParams{SyncRef: 100.5, Ratio: 1})
	v0, _ := s.SyncTimeAt(10)
	s.SetActive(1)
	v1, ok := s.SyncTimeAt(10)
	if !ok {
		t.Fatal("failover slot not valid")
	}
	if v1-v0 != 0.5 {
		t.Fatalf("takeover discontinuity = %v, want 0.5 (slot parameter difference)", v1-v0)
	}
	if s.Active() != 1 {
		t.Fatalf("Active = %d, want 1", s.Active())
	}
}

func TestSTSHMEMInvalidate(t *testing.T) {
	s := NewSTSHMEM(2)
	s.Publish(0, ClockParams{SyncRef: 1, Ratio: 1})
	s.Invalidate(0)
	if _, ok := s.SyncTimeAt(0); ok {
		t.Fatal("invalidated active slot still served time")
	}
	if s.Slot(0).Valid {
		t.Fatal("slot valid after invalidate")
	}
}

func TestSTSHMEMBoundsChecked(t *testing.T) {
	s := NewSTSHMEM(1)
	s.Publish(5, ClockParams{}) // must not panic
	s.SetActive(5)              // ignored
	if s.Active() != 0 {
		t.Fatal("out-of-range SetActive took effect")
	}
	if got := s.Slot(-1); got.Valid {
		t.Fatal("out-of-range Slot returned valid params")
	}
	if s.NumSlots() != 1 {
		t.Fatal("NumSlots wrong")
	}
	if len(s.Slots()) != 1 {
		t.Fatal("Slots wrong length")
	}
}
