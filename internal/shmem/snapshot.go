package shmem

import "gptpfta/internal/fta"

// Warm-start snapshot support (sim.Snapshotter). The shared PI servo held
// by FTSHMEM is snapshotted separately by its owning node — the region only
// captures the memory words the paper's layout defines.

type ftshmemSnapshot struct {
	offsets    []fta.Reading
	flags      []bool
	adjustLast float64
	hasAdjust  bool
}

// Snapshot implements sim.Snapshotter.
func (s *FTSHMEM) Snapshot() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &ftshmemSnapshot{
		offsets:    append([]fta.Reading(nil), s.offsets...),
		flags:      append([]bool(nil), s.flags...),
		adjustLast: s.adjustLast,
		hasAdjust:  s.hasAdjust,
	}
}

// Restore implements sim.Snapshotter.
func (s *FTSHMEM) Restore(snap any) {
	sn := snap.(*ftshmemSnapshot)
	s.mu.Lock()
	defer s.mu.Unlock()
	copy(s.offsets, sn.offsets)
	copy(s.flags, sn.flags)
	s.adjustLast = sn.adjustLast
	s.hasAdjust = sn.hasAdjust
}

type stshmemSnapshot struct {
	slots  []ClockParams
	active int
}

// Snapshot implements sim.Snapshotter.
func (s *STSHMEM) Snapshot() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &stshmemSnapshot{
		slots:  append([]ClockParams(nil), s.slots...),
		active: s.active,
	}
}

// Restore implements sim.Snapshotter.
func (s *STSHMEM) Restore(snap any) {
	sn := snap.(*stshmemSnapshot)
	s.mu.Lock()
	defer s.mu.Unlock()
	copy(s.slots, sn.slots)
	s.active = sn.active
}
