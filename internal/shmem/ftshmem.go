// Package shmem models the two shared-memory regions of the paper's
// architecture:
//
//   - FTSHMEM: the user-space region a clock-synchronization VM establishes
//     between its M ptp4l instances. It holds the latest M grandmaster
//     offsets, M validity booleans, the adjust_last timestamp implementing
//     the aggregation gate, and the shared PI servo state.
//   - STSHMEM: the hypervisor-provided virtual-PCI region shared between
//     co-located VMs. Clock-synchronization VMs publish clock parameters
//     (a TSC→global-time mapping) into per-VM slots; the active slot
//     defines CLOCK_SYNCTIME for every VM on the node.
package shmem

import (
	"sync"

	"gptpfta/internal/fta"
	"gptpfta/internal/gptp"
	"gptpfta/internal/servo"
)

// FTSHMEM is the fault-tolerance shared memory between M ptp4l instances
// inside one clock-synchronization VM (paper §II-B). All times are on the
// VM's NIC PHC timescale, in nanoseconds.
type FTSHMEM struct {
	mu sync.Mutex

	domains []int
	index   map[int]int // domain → slot

	offsets    []fta.Reading
	flags      []bool
	adjustLast float64
	hasAdjust  bool
	staleNS    float64

	pi *servo.PI
}

// NewFTSHMEM creates the region for the given domains. staleNS is the age
// (in PHC ns) beyond which a stored offset no longer counts as fresh —
// a fail-silent grandmaster's slot goes stale after a few missed Syncs.
func NewFTSHMEM(domains []int, staleNS float64, pi *servo.PI) *FTSHMEM {
	idx := make(map[int]int, len(domains))
	offsets := make([]fta.Reading, len(domains))
	for i, d := range domains {
		idx[d] = i
		offsets[i] = fta.Reading{Domain: d}
	}
	return &FTSHMEM{
		domains: append([]int(nil), domains...),
		index:   idx,
		offsets: offsets,
		flags:   make([]bool, len(domains)),
		staleNS: staleNS,
		pi:      pi,
	}
}

// Domains returns the configured domain numbers in slot order.
func (s *FTSHMEM) Domains() []int {
	return append([]int(nil), s.domains...)
}

// StoreOffset records one grandmaster-offset sample. nowPHC timestamps the
// store for freshness accounting.
func (s *FTSHMEM) StoreOffset(sample gptp.OffsetSample, nowPHC float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.index[sample.Domain]
	if !ok {
		return
	}
	s.offsets[i] = fta.Reading{
		Domain:   sample.Domain,
		OffsetNS: sample.OffsetNS,
		At:       nowPHC,
		Fresh:    true,
	}
}

// StoreOwnDomain refreshes the slot of the domain this VM is grandmaster
// of: by definition its offset to itself is zero while it is emitting.
func (s *FTSHMEM) StoreOwnDomain(domain int, nowPHC float64) {
	s.StoreOffset(gptp.OffsetSample{Domain: domain, OffsetNS: 0}, nowPHC)
}

// Readings snapshots the M readings with freshness evaluated at nowPHC.
func (s *FTSHMEM) Readings(nowPHC float64) []fta.Reading {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]fta.Reading, len(s.offsets))
	copy(out, s.offsets)
	for i := range out {
		if out[i].Fresh && nowPHC-out[i].At > s.staleNS {
			out[i].Fresh = false
		}
	}
	return out
}

// TryAcquireAdjust implements the paper's aggregation gate: the first ptp4l
// instance in synchronization interval s+1 for which
// adjust_last + sync_interval <= now wins and updates adjust_last; every
// other instance's attempt in the same interval fails.
func (s *FTSHMEM) TryAcquireAdjust(nowPHC, syncIntervalNS float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hasAdjust && s.adjustLast+syncIntervalNS > nowPHC {
		return false
	}
	s.adjustLast = nowPHC
	s.hasAdjust = true
	return true
}

// AdjustLast reports the PHC time of the last aggregation, and whether any
// aggregation has happened.
func (s *FTSHMEM) AdjustLast() (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adjustLast, s.hasAdjust
}

// SetFlags stores the validity booleans computed during aggregation.
func (s *FTSHMEM) SetFlags(flags []bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	copy(s.flags, flags)
}

// Flags snapshots the validity booleans, indexed in slot order.
func (s *FTSHMEM) Flags() []bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]bool(nil), s.flags...)
}

// Servo returns the shared PI controller.
func (s *FTSHMEM) Servo() *servo.PI { return s.pi }

// Reset clears offsets, flags, the gate and the servo — a rebooting VM
// re-establishes its region from scratch.
func (s *FTSHMEM) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.offsets {
		s.offsets[i] = fta.Reading{Domain: s.offsets[i].Domain}
	}
	for i := range s.flags {
		s.flags[i] = false
	}
	s.hasAdjust = false
	s.adjustLast = 0
	s.pi.Reset()
}
