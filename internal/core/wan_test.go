package core

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func wanTestConfig(seed int64, sites, shards int) Config {
	cfg := ScaleConfig(seed, sites, 4, 2, shards)
	cfg.WanSync.Enabled = true
	cfg.WanSync.Drift.Enabled = true
	return cfg
}

// TestWanPathAsym pins the sign and magnitude of the two-way-exchange
// asymmetry error the coordinator's readings inherit from the chain.
func TestWanPathAsym(t *testing.T) {
	sys, err := NewSystem(wanTestConfig(1, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	link := sys.Link(sys.WanLinkName(0)) // site 0 <-> site 1, dir 0 = 0→1
	if link == nil {
		t.Fatalf("chain link %q not found", sys.WanLinkName(0))
	}
	link.SetWanDelay(0, 10*time.Microsecond) // 0→1 slower by 10µs

	// Observer 0, peer 1: the path from the peer back (1→0) is now the
	// fast one, so d(peer→obs) − d(obs→peer) = −10µs and the error −5µs.
	if got := sys.PathAsymNS(0, 1); got != -5_000 {
		t.Fatalf("PathAsymNS(0,1) = %v, want -5000", got)
	}
	if got := sys.PathAsymNS(1, 0); got != 5_000 {
		t.Fatalf("PathAsymNS(1,0) = %v, want 5000", got)
	}
	// Two-hop path 0↔2 includes the undisturbed second segment.
	if got := sys.PathAsymNS(0, 2); got != -5_000 {
		t.Fatalf("PathAsymNS(0,2) = %v, want -5000", got)
	}

	// Severing the first segment breaks 0↔1 and 0↔2 but not 1↔2.
	link.SetDown(true)
	if sys.PathUp(0, 1) || sys.PathUp(0, 2) {
		t.Fatal("PathUp true across a severed chain segment")
	}
	if !sys.PathUp(1, 2) {
		t.Fatal("PathUp(1,2) false with only segment 0-1 severed")
	}
}

// TestWanTierConverges boots a 3-site fabric with the WAN tier on and
// checks the site-level adjusted clocks pull onto a common timescale.
func TestWanTierConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-site convergence run")
	}
	sys, err := NewSystem(wanTestConfig(1, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	sys.Stop()

	samples := sys.Wan().Samples()
	if len(samples) < 50 {
		t.Fatalf("got %d WAN samples, want ≥ 50", len(samples))
	}
	last := samples[len(samples)-1]
	var lo, hi float64
	first := true
	for i, adj := range last.AdjNS {
		if !last.Alive[i] {
			t.Fatalf("site %d dead in a fault-free run", i)
		}
		if last.Holdover[i] || !last.Quorum[i] {
			t.Fatalf("site %d degraded (holdover=%v quorum=%v) in a fault-free run",
				i, last.Holdover[i], last.Quorum[i])
		}
		if math.IsNaN(adj) {
			t.Fatalf("site %d adjusted time is NaN", i)
		}
		if first {
			lo, hi, first = adj, adj, false
		}
		lo, hi = math.Min(lo, adj), math.Max(hi, adj)
	}
	// Site-level agreement: WAN noise is 2µs 1-sigma and the drift walk
	// adds up to ~5µs of asymmetry error, so tens of µs is the honest
	// scale; the raw (uncorrected) site clocks disagree by milliseconds.
	if hi-lo > 50_000 {
		t.Fatalf("WAN site spread after 30s = %.0fns, want ≤ 50µs", hi-lo)
	}
}

// TestShardEquivalenceWan extends the PDES contract to the WAN tier: the
// coordinator's full sample series (and the system fingerprint) must be
// bit-identical at every shard count, because its ticks run on the control
// scheduler at barrier instants.
func TestShardEquivalenceWan(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run equivalence suite")
	}
	const d = 12 * time.Second
	type wanFP struct {
		fp      runFingerprint
		samples any
	}
	run := func(shards int) wanFP {
		cfg := wanTestConfig(7, 3, shards)
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("NewSystem(shards=%d): %v", shards, err)
		}
		if err := sys.Start(); err != nil {
			t.Fatal(err)
		}
		if err := sys.RunFor(d); err != nil {
			t.Fatal(err)
		}
		out := wanFP{samples: sys.Wan().Samples(), fp: runFingerprint{samples: sys.Collector().Samples()}}
		out.fp.frames = framesTotal(sys)
		sys.Stop()
		return out
	}
	want := run(1)
	for _, shards := range []int{2, 3, 6} {
		got := run(shards)
		if !reflect.DeepEqual(want.samples, got.samples) {
			t.Errorf("shards=%d: WAN sample series diverges from single-scheduler run", shards)
		}
		if !reflect.DeepEqual(want.fp.samples, got.fp.samples) {
			t.Errorf("shards=%d: measurement samples diverge", shards)
		}
		if want.fp.frames != got.fp.frames {
			t.Errorf("shards=%d: frame counters diverge: %d vs %d", shards, want.fp.frames, got.fp.frames)
		}
	}
}
