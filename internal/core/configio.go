package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"gptpfta/internal/fta"
	"gptpfta/internal/netsim"
)

// configJSON is the serialised form of Config. Durations carry explicit
// nanosecond units in the field names; probabilities and ppb values are
// plain numbers.
type configJSON struct {
	Seed              int64   `json:"seed"`
	Nodes             int     `json:"nodes"`
	VMsPerNode        int     `json:"vmsPerNode"`
	F                 int     `json:"f"`
	SyncIntervalNS    int64   `json:"syncIntervalNs"`
	Phc2sysIntervalNS int64   `json:"phc2sysIntervalNs"`
	MonitorPeriodNS   int64   `json:"monitorPeriodNs"`
	VoteThresholdNS   float64 `json:"voteThresholdNs"`

	MaxStaticPPB        float64 `json:"maxStaticPpb"`
	WanderPPBPerSqrtSec float64 `json:"wanderPpbPerSqrtSec"`
	TimestampJitterNS   float64 `json:"timestampJitterNs"`
	TSCReadNoiseNS      float64 `json:"tscReadNoiseNs"`
	BootOffsetMaxNS     float64 `json:"bootOffsetMaxNs"`

	LinkPropagationNS int64         `json:"linkPropagationNs"`
	LinkJitterNS      float64       `json:"linkJitterNs"`
	LinkLossProb      float64       `json:"linkLossProb"`
	ResidencePTP      residenceJSON `json:"residencePtp"`
	ResidenceMeas     residenceJSON `json:"residenceMeasure"`
	ResidenceBE       residenceJSON `json:"residenceBestEffort"`

	StartupThresholdNS  float64 `json:"startupThresholdNs"`
	ValidityThresholdNS float64 `json:"validityThresholdNs"`
	FlagPolicy          string  `json:"flagPolicy"`

	TxTimestampTimeoutProb float64 `json:"txTimestampTimeoutProb"`
	DeadlineMissProb       float64 `json:"deadlineMissProb"`

	MeasurementNode int `json:"measurementNode"`
	MeasurementVM   int `json:"measurementVm"`

	Kernels map[string]string `json:"kernels,omitempty"`

	DomainCount         int  `json:"domainCount,omitempty"`
	BaselineClientsOnly bool `json:"baselineClientsOnly,omitempty"`

	Shards                 int   `json:"shards,omitempty"`
	Sites                  int   `json:"sites,omitempty"`
	InterSitePropagationNS int64 `json:"interSitePropagationNs,omitempty"`
}

type residenceJSON struct {
	BaseNS    int64   `json:"baseNs"`
	JitterNS  float64 `json:"jitterNs"`
	TailProb  float64 `json:"tailProb"`
	TailMinNS int64   `json:"tailMinNs"`
	TailMaxNS int64   `json:"tailMaxNs"`
}

func toResidenceJSON(m netsim.ResidenceModel) residenceJSON {
	return residenceJSON{
		BaseNS:    m.Base.Nanoseconds(),
		JitterNS:  m.JitterNS,
		TailProb:  m.TailProb,
		TailMinNS: m.TailMin.Nanoseconds(),
		TailMaxNS: m.TailMax.Nanoseconds(),
	}
}

func fromResidenceJSON(j residenceJSON) netsim.ResidenceModel {
	return netsim.ResidenceModel{
		Base:     time.Duration(j.BaseNS),
		JitterNS: j.JitterNS,
		TailProb: j.TailProb,
		TailMin:  time.Duration(j.TailMinNS),
		TailMax:  time.Duration(j.TailMaxNS),
	}
}

func flagPolicyName(p fta.FlagPolicy) string {
	switch p {
	case fta.FlagExclude:
		return "exclude"
	default:
		return "monitor"
	}
}

func flagPolicyFromName(name string) (fta.FlagPolicy, error) {
	switch name {
	case "", "monitor":
		return fta.FlagMonitor, nil
	case "exclude":
		return fta.FlagExclude, nil
	default:
		return 0, fmt.Errorf("core: unknown flag policy %q", name)
	}
}

// WriteJSON serialises the configuration.
func (c Config) WriteJSON(w io.Writer) error {
	j := configJSON{
		Seed:              c.Seed,
		Nodes:             c.Nodes,
		VMsPerNode:        c.VMsPerNode,
		F:                 c.F,
		SyncIntervalNS:    c.SyncInterval.Nanoseconds(),
		Phc2sysIntervalNS: c.Phc2sysInterval.Nanoseconds(),
		MonitorPeriodNS:   c.MonitorPeriod.Nanoseconds(),
		VoteThresholdNS:   c.VoteThresholdNS,

		MaxStaticPPB:        c.MaxStaticPPB,
		WanderPPBPerSqrtSec: c.WanderPPBPerSqrtSec,
		TimestampJitterNS:   c.TimestampJitterNS,
		TSCReadNoiseNS:      c.TSCReadNoiseNS,
		BootOffsetMaxNS:     c.BootOffsetMaxNS,

		LinkPropagationNS: c.LinkPropagation.Nanoseconds(),
		LinkJitterNS:      c.LinkJitterNS,
		LinkLossProb:      c.LinkLossProb,
		ResidencePTP:      toResidenceJSON(c.ResidencePTP),
		ResidenceMeas:     toResidenceJSON(c.ResidenceMeas),
		ResidenceBE:       toResidenceJSON(c.ResidenceBE),

		StartupThresholdNS:  c.StartupThresholdNS,
		ValidityThresholdNS: c.ValidityThresholdNS,
		FlagPolicy:          flagPolicyName(c.FlagPolicy),

		TxTimestampTimeoutProb: c.TxTimestampTimeoutProb,
		DeadlineMissProb:       c.DeadlineMissProb,

		MeasurementNode: c.MeasurementNode,
		MeasurementVM:   c.MeasurementVM,
		Kernels:         c.Kernels,

		DomainCount:         c.DomainCount,
		BaselineClientsOnly: c.BaselineClientsOnly,

		Shards:                 c.Shards,
		Sites:                  c.Sites,
		InterSitePropagationNS: c.InterSitePropagation.Nanoseconds(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// ReadConfigJSON deserialises a configuration written by WriteJSON.
func ReadConfigJSON(r io.Reader) (Config, error) {
	var j configJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return Config{}, fmt.Errorf("core: decode config: %w", err)
	}
	policy, err := flagPolicyFromName(j.FlagPolicy)
	if err != nil {
		return Config{}, err
	}
	kernels := j.Kernels
	if kernels == nil {
		kernels = map[string]string{}
	}
	return Config{
		Seed:            j.Seed,
		Nodes:           j.Nodes,
		VMsPerNode:      j.VMsPerNode,
		F:               j.F,
		SyncInterval:    time.Duration(j.SyncIntervalNS),
		Phc2sysInterval: time.Duration(j.Phc2sysIntervalNS),
		MonitorPeriod:   time.Duration(j.MonitorPeriodNS),
		VoteThresholdNS: j.VoteThresholdNS,

		MaxStaticPPB:        j.MaxStaticPPB,
		WanderPPBPerSqrtSec: j.WanderPPBPerSqrtSec,
		TimestampJitterNS:   j.TimestampJitterNS,
		TSCReadNoiseNS:      j.TSCReadNoiseNS,
		BootOffsetMaxNS:     j.BootOffsetMaxNS,

		LinkPropagation: time.Duration(j.LinkPropagationNS),
		LinkJitterNS:    j.LinkJitterNS,
		LinkLossProb:    j.LinkLossProb,
		ResidencePTP:    fromResidenceJSON(j.ResidencePTP),
		ResidenceMeas:   fromResidenceJSON(j.ResidenceMeas),
		ResidenceBE:     fromResidenceJSON(j.ResidenceBE),

		StartupThresholdNS:  j.StartupThresholdNS,
		ValidityThresholdNS: j.ValidityThresholdNS,
		FlagPolicy:          policy,

		TxTimestampTimeoutProb: j.TxTimestampTimeoutProb,
		DeadlineMissProb:       j.DeadlineMissProb,

		MeasurementNode: j.MeasurementNode,
		MeasurementVM:   j.MeasurementVM,
		Kernels:         kernels,

		DomainCount:         j.DomainCount,
		BaselineClientsOnly: j.BaselineClientsOnly,

		Shards:               j.Shards,
		Sites:                j.Sites,
		InterSitePropagation: time.Duration(j.InterSitePropagationNS),
	}, nil
}

// LoadConfigFile reads a configuration from a JSON file.
func LoadConfigFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return ReadConfigJSON(f)
}

// SaveConfigFile writes the configuration to a JSON file.
func (c Config) SaveConfigFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
