package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"
)

// runFingerprint runs a system for d and reduces everything downstream
// experiments consume to a comparable value: the exact measurement sample
// series, the event log as a sorted multiset, the Sync latency extrema and
// the kernel traffic counters. Shard-count equivalence means these are
// bit-identical, because every derived experiment row is a pure function of
// them.
type runFingerprint struct {
	samples  any
	events   []string
	minNS    int64
	maxNS    int64
	haveLat  bool
	precOK   bool
	precNS   float64
	ftaReady bool
	frames   uint64
}

func fingerprint(t *testing.T, cfg Config, d time.Duration) runFingerprint {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.RunFor(d); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	fp := runFingerprint{samples: sys.Collector().Samples()}
	for _, e := range sys.EventLog().Events() {
		fp.events = append(fp.events, e.String())
	}
	sort.Strings(fp.events)
	min, max, ok := sys.SyncLatencies().Extrema()
	fp.minNS, fp.maxNS, fp.haveLat = int64(min), int64(max), ok
	fp.precNS, fp.precOK = sys.TruePrecision()
	fp.ftaReady = sys.AllInFTOperation()
	fp.frames = framesTotal(sys)
	sys.Stop()
	return fp
}

func framesTotal(sys *System) uint64 {
	var n uint64
	for _, l := range sys.links {
		n += l.Sent() + l.Lost()
	}
	for _, b := range sys.bridges {
		n += b.Forwarded() + b.Dropped()
	}
	return n
}

func requireSameFingerprint(t *testing.T, label string, want, got runFingerprint) {
	t.Helper()
	if !reflect.DeepEqual(want.samples, got.samples) {
		t.Errorf("%s: measurement samples diverge", label)
	}
	if !reflect.DeepEqual(want.events, got.events) {
		t.Errorf("%s: event logs diverge (%d vs %d events)", label, len(want.events), len(got.events))
		for i := range want.events {
			if i < len(got.events) && want.events[i] != got.events[i] {
				t.Errorf("%s: first difference:\n  want %s\n  got  %s", label, want.events[i], got.events[i])
				break
			}
		}
	}
	if want.minNS != got.minNS || want.maxNS != got.maxNS || want.haveLat != got.haveLat {
		t.Errorf("%s: latency extrema diverge: want [%d %d %v], got [%d %d %v]",
			label, want.minNS, want.maxNS, want.haveLat, got.minNS, got.maxNS, got.haveLat)
	}
	if want.precOK != got.precOK || want.precNS != got.precNS {
		t.Errorf("%s: true precision diverges: want %v/%v, got %v/%v",
			label, want.precNS, want.precOK, got.precNS, got.precOK)
	}
	if want.ftaReady != got.ftaReady {
		t.Errorf("%s: FT-operation state diverges", label)
	}
	if want.frames != got.frames {
		t.Errorf("%s: frame counters diverge: want %d, got %d", label, want.frames, got.frames)
	}
}

// TestShardEquivalencePaper proves the determinism contract on the paper
// topology: every shard count reproduces the single-scheduler run
// bit-for-bit, even though in-site shard cuts shrink the lookahead to the
// 500 ns link propagation.
func TestShardEquivalencePaper(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard sweep")
	}
	const d = 2 * time.Second
	for _, seed := range []int64{31, 32, 33, 34, 35} {
		ref := fingerprint(t, NewConfig(seed), d)
		if !ref.haveLat {
			t.Fatal("reference run observed no Sync latencies")
		}
		for _, shards := range []int{2, 4, 8} {
			cfg := NewConfig(seed)
			cfg.Shards = shards
			requireSameFingerprint(t, fmt.Sprintf("seed=%d shards=%d", seed, shards),
				ref, fingerprint(t, cfg, d))
		}
	}
}

// TestShardEquivalencePaperLong is the regression anchor for same-key tie
// ordering at barriers. Cross-shard sends whose delivery keys collide must
// commit in the exact order a single scheduler would have inserted them,
// which takes both extra sort keys:
//
//   - Key3 (the sending event's own cause): two key-tied sends from
//     different shards are ordered the way their senders' heap keys would
//     have interleaved. Without it, seed 11 first diverges around t≈83 s.
//   - Ord (the source shard's issuance ordinal): key-tied sends leaving
//     one shard through different boundary links keep issuance order, not
//     boundary registration order. Without it, seed 1 first diverges
//     around t≈494 s.
//
// Both symptoms start as sub-ns probe-sample shifts that later grow into
// ns-shifted events, so the duration must stay well past 500 s.
func TestShardEquivalencePaperLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long multi-shard run")
	}
	const d = 600 * time.Second
	for _, seed := range []int64{1, 11} {
		ref := fingerprint(t, NewConfig(seed), d)
		cfg := NewConfig(seed)
		cfg.Shards = 4
		requireSameFingerprint(t, fmt.Sprintf("long seed=%d shards=4", seed),
			ref, fingerprint(t, cfg, d))
	}
}

// TestShardEquivalenceScale proves the contract on a generated multi-site
// fabric, where shard boundaries align with the metro-latency gateway links
// and cross-shard measurement traffic exercises the mailbox path.
func TestShardEquivalenceScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard sweep")
	}
	const d = 1200 * time.Millisecond
	ref := fingerprint(t, ScaleConfig(7, 3, 3, 2, 1), d)
	if len(ref.events) == 0 {
		t.Fatal("reference scale run produced no events")
	}
	for _, shards := range []int{2, 3, 6} {
		requireSameFingerprint(t, fmt.Sprintf("shards=%d", shards), ref,
			fingerprint(t, ScaleConfig(7, 3, 3, 2, shards), d))
	}
}

// TestScaleTopologyRuns sanity-checks the generated fabric itself: the
// fabric-wide measurement VLAN returns replies across the gateway chain and
// the PDES machinery actually exercises its mailbox path.
func TestScaleTopologyRuns(t *testing.T) {
	cfg := ScaleConfig(5, 2, 3, 2, 2)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.RunFor(5 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	samples := sys.Collector().Samples()
	if len(samples) == 0 {
		t.Fatal("collector gathered no samples")
	}
	// Agents on the remote site are reachable through the gateway chain.
	want := cfg.TotalNodes()*cfg.VMsPerNode - 2 // minus collector and excluded GM
	got := samples[len(samples)-1].Replies
	if got != want {
		t.Errorf("probe replies = %d, want %d (remote site unreachable?)", got, want)
	}
	if sys.Fabric() == nil {
		t.Fatal("sharded system has no fabric")
	}
	st := sys.Fabric().Stats()
	if st.Windows == 0 || st.Committed == 0 {
		t.Errorf("fabric idle: windows=%d committed=%d", st.Windows, st.Committed)
	}
	sys.Stop()
}

// fingerprintTweak is fingerprint with a hook between Start and RunFor,
// for tests that flip fabric knobs (ForceParallel) on an otherwise
// identical run.
func fingerprintTweak(t *testing.T, cfg Config, d time.Duration, tweak func(*System)) runFingerprint {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if tweak != nil {
		tweak(sys)
	}
	if err := sys.RunFor(d); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	fp := runFingerprint{samples: sys.Collector().Samples()}
	for _, e := range sys.EventLog().Events() {
		fp.events = append(fp.events, e.String())
	}
	sort.Strings(fp.events)
	min, max, ok := sys.SyncLatencies().Extrema()
	fp.minNS, fp.maxNS, fp.haveLat = int64(min), int64(max), ok
	fp.precNS, fp.precOK = sys.TruePrecision()
	fp.ftaReady = sys.AllInFTOperation()
	fp.frames = framesTotal(sys)
	sys.Stop()
	return fp
}

// TestShardEquivalenceForceParallel re-proves the determinism contract with
// the serial fast path disabled: every window with ≥1 busy shard goes
// through the persistent-worker barrier, on any core count. This is the
// test that keeps the worker path honest on single-core runners, where the
// GOMAXPROCS heuristic would otherwise hide it entirely.
func TestShardEquivalenceForceParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard sweep")
	}
	const d = 1200 * time.Millisecond
	ref := fingerprint(t, ScaleConfig(7, 3, 3, 2, 1), d)
	for _, shards := range []int{2, 6} {
		fp := fingerprintTweak(t, ScaleConfig(7, 3, 3, 2, shards), d, func(sys *System) {
			sys.Fabric().ForceParallel = true
		})
		requireSameFingerprint(t, fmt.Sprintf("forced-parallel shards=%d", shards), ref, fp)
	}
}

// TestFabricLookaheadInvalidation pins the cached-lookahead contract at
// the system level: the O(boundaries) rescan runs once per run plus once
// per delay mutation — not once per window — and a boundary-link override
// reported through the BindFabric hook lands in the effective lookahead.
func TestFabricLookaheadInvalidation(t *testing.T) {
	sys, err := NewSystem(ScaleConfig(7, 2, 3, 2, 2))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer sys.Stop()
	if err := sys.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	st := sys.Fabric().Stats()
	if st.Windows < 100 {
		t.Fatalf("only %d windows — topology too idle for this test", st.Windows)
	}
	if st.LookaheadRescans != 1 {
		t.Fatalf("LookaheadRescans = %d over %d windows, want 1 (cache never invalidated)",
			st.LookaheadRescans, st.Windows)
	}

	// Mutate one boundary link's delay override from driver context, as the
	// chaos engine would from a control callback.
	var mutated bool
	for _, l := range sys.Links() {
		if l.Boundary() {
			l.SetDelayOverride(0, -200*time.Nanosecond)
			mutated = true
			break
		}
	}
	if !mutated {
		t.Fatal("2-shard scale topology has no boundary link")
	}
	if err := sys.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	st = sys.Fabric().Stats()
	if st.LookaheadRescans != 2 {
		t.Fatalf("LookaheadRescans = %d after one mutation, want 2", st.LookaheadRescans)
	}
	want := int64(1 << 62)
	for _, l := range sys.Links() {
		if l.Boundary() {
			if d := int64(l.MinDelay()); d < want {
				want = d
			}
		}
	}
	if want < 1 {
		want = 1
	}
	if st.LookaheadNS != want {
		t.Fatalf("post-mutation LookaheadNS = %d, want current boundary minimum %d", st.LookaheadNS, want)
	}
}

// TestSystemCloseIdempotent pins the system-level lifecycle: Close is
// idempotent, Stop implies Close, the system keeps simulating (serially)
// after Close, and an unsharded system tolerates Close as a no-op.
func TestSystemCloseIdempotent(t *testing.T) {
	sys, err := NewSystem(ScaleConfig(7, 2, 3, 2, 2))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sys.Close()
	sys.Close()
	if err := sys.RunFor(500 * time.Millisecond); err != nil {
		t.Fatalf("RunFor after Close: %v", err)
	}
	st := sys.Fabric().Stats()
	if st.SerialWindows == 0 {
		t.Fatal("closed fabric reported zero serial windows")
	}
	sys.Stop() // Stop after Close must also be safe

	unsharded, err := NewSystem(NewConfig(7))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	unsharded.Close() // no fabric: must be a no-op
}

// TestPDESMetricsPresence pins the observability satellite: the window-
// machinery counters are registered and plumbed through the registry that
// -metrics JSONL and the served /metrics endpoint snapshot.
func TestPDESMetricsPresence(t *testing.T) {
	sys, err := NewSystem(ScaleConfig(7, 2, 3, 2, 2))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer sys.Stop()
	if err := sys.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	count := map[string]int{}
	for _, m := range sys.Metrics().Snapshot() {
		count[m.Name]++
		vals[m.Name] = m.Value
	}
	for _, name := range []string{
		"pdes_flush_skipped", "pdes_lookahead_rescans", "pdes_serial_windows",
		"pdes_windows", "pdes_lookahead_ns",
	} {
		if count[name] != 1 {
			t.Errorf("%s: %d series, want 1", name, count[name])
		}
	}
	if vals["pdes_lookahead_rescans"] != 1 {
		t.Errorf("pdes_lookahead_rescans = %v, want 1 (cache holds without mutations)",
			vals["pdes_lookahead_rescans"])
	}
	if vals["pdes_flush_skipped"] <= 0 {
		t.Errorf("pdes_flush_skipped = %v, want > 0 (send-free barriers must skip flushing)",
			vals["pdes_flush_skipped"])
	}
	if v, w := vals["pdes_serial_windows"], vals["pdes_windows"]; v < 0 || v > w {
		t.Errorf("pdes_serial_windows = %v outside [0, windows=%v]", v, w)
	}
}
