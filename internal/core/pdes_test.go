package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"
)

// runFingerprint runs a system for d and reduces everything downstream
// experiments consume to a comparable value: the exact measurement sample
// series, the event log as a sorted multiset, the Sync latency extrema and
// the kernel traffic counters. Shard-count equivalence means these are
// bit-identical, because every derived experiment row is a pure function of
// them.
type runFingerprint struct {
	samples  any
	events   []string
	minNS    int64
	maxNS    int64
	haveLat  bool
	precOK   bool
	precNS   float64
	ftaReady bool
	frames   uint64
}

func fingerprint(t *testing.T, cfg Config, d time.Duration) runFingerprint {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.RunFor(d); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	fp := runFingerprint{samples: sys.Collector().Samples()}
	for _, e := range sys.EventLog().Events() {
		fp.events = append(fp.events, e.String())
	}
	sort.Strings(fp.events)
	min, max, ok := sys.SyncLatencies().Extrema()
	fp.minNS, fp.maxNS, fp.haveLat = int64(min), int64(max), ok
	fp.precNS, fp.precOK = sys.TruePrecision()
	fp.ftaReady = sys.AllInFTOperation()
	fp.frames = framesTotal(sys)
	sys.Stop()
	return fp
}

func framesTotal(sys *System) uint64 {
	var n uint64
	for _, l := range sys.links {
		n += l.Sent() + l.Lost()
	}
	for _, b := range sys.bridges {
		n += b.Forwarded() + b.Dropped()
	}
	return n
}

func requireSameFingerprint(t *testing.T, label string, want, got runFingerprint) {
	t.Helper()
	if !reflect.DeepEqual(want.samples, got.samples) {
		t.Errorf("%s: measurement samples diverge", label)
	}
	if !reflect.DeepEqual(want.events, got.events) {
		t.Errorf("%s: event logs diverge (%d vs %d events)", label, len(want.events), len(got.events))
		for i := range want.events {
			if i < len(got.events) && want.events[i] != got.events[i] {
				t.Errorf("%s: first difference:\n  want %s\n  got  %s", label, want.events[i], got.events[i])
				break
			}
		}
	}
	if want.minNS != got.minNS || want.maxNS != got.maxNS || want.haveLat != got.haveLat {
		t.Errorf("%s: latency extrema diverge: want [%d %d %v], got [%d %d %v]",
			label, want.minNS, want.maxNS, want.haveLat, got.minNS, got.maxNS, got.haveLat)
	}
	if want.precOK != got.precOK || want.precNS != got.precNS {
		t.Errorf("%s: true precision diverges: want %v/%v, got %v/%v",
			label, want.precNS, want.precOK, got.precNS, got.precOK)
	}
	if want.ftaReady != got.ftaReady {
		t.Errorf("%s: FT-operation state diverges", label)
	}
	if want.frames != got.frames {
		t.Errorf("%s: frame counters diverge: want %d, got %d", label, want.frames, got.frames)
	}
}

// TestShardEquivalencePaper proves the determinism contract on the paper
// topology: every shard count reproduces the single-scheduler run
// bit-for-bit, even though in-site shard cuts shrink the lookahead to the
// 500 ns link propagation.
func TestShardEquivalencePaper(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard sweep")
	}
	const d = 2 * time.Second
	for _, seed := range []int64{31, 32, 33, 34, 35} {
		ref := fingerprint(t, NewConfig(seed), d)
		if !ref.haveLat {
			t.Fatal("reference run observed no Sync latencies")
		}
		for _, shards := range []int{2, 4, 8} {
			cfg := NewConfig(seed)
			cfg.Shards = shards
			requireSameFingerprint(t, fmt.Sprintf("seed=%d shards=%d", seed, shards),
				ref, fingerprint(t, cfg, d))
		}
	}
}

// TestShardEquivalencePaperLong is the regression anchor for same-key tie
// ordering at barriers. Cross-shard sends whose delivery keys collide must
// commit in the exact order a single scheduler would have inserted them,
// which takes both extra sort keys:
//
//   - Key3 (the sending event's own cause): two key-tied sends from
//     different shards are ordered the way their senders' heap keys would
//     have interleaved. Without it, seed 11 first diverges around t≈83 s.
//   - Ord (the source shard's issuance ordinal): key-tied sends leaving
//     one shard through different boundary links keep issuance order, not
//     boundary registration order. Without it, seed 1 first diverges
//     around t≈494 s.
//
// Both symptoms start as sub-ns probe-sample shifts that later grow into
// ns-shifted events, so the duration must stay well past 500 s.
func TestShardEquivalencePaperLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long multi-shard run")
	}
	const d = 600 * time.Second
	for _, seed := range []int64{1, 11} {
		ref := fingerprint(t, NewConfig(seed), d)
		cfg := NewConfig(seed)
		cfg.Shards = 4
		requireSameFingerprint(t, fmt.Sprintf("long seed=%d shards=4", seed),
			ref, fingerprint(t, cfg, d))
	}
}

// TestShardEquivalenceScale proves the contract on a generated multi-site
// fabric, where shard boundaries align with the metro-latency gateway links
// and cross-shard measurement traffic exercises the mailbox path.
func TestShardEquivalenceScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard sweep")
	}
	const d = 1200 * time.Millisecond
	ref := fingerprint(t, ScaleConfig(7, 3, 3, 2, 1), d)
	if len(ref.events) == 0 {
		t.Fatal("reference scale run produced no events")
	}
	for _, shards := range []int{2, 3, 6} {
		requireSameFingerprint(t, fmt.Sprintf("shards=%d", shards), ref,
			fingerprint(t, ScaleConfig(7, 3, 3, 2, shards), d))
	}
}

// TestScaleTopologyRuns sanity-checks the generated fabric itself: the
// fabric-wide measurement VLAN returns replies across the gateway chain and
// the PDES machinery actually exercises its mailbox path.
func TestScaleTopologyRuns(t *testing.T) {
	cfg := ScaleConfig(5, 2, 3, 2, 2)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sys.RunFor(5 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	samples := sys.Collector().Samples()
	if len(samples) == 0 {
		t.Fatal("collector gathered no samples")
	}
	// Agents on the remote site are reachable through the gateway chain.
	want := cfg.TotalNodes()*cfg.VMsPerNode - 2 // minus collector and excluded GM
	got := samples[len(samples)-1].Replies
	if got != want {
		t.Errorf("probe replies = %d, want %d (remote site unreachable?)", got, want)
	}
	if sys.Fabric() == nil {
		t.Fatal("sharded system has no fabric")
	}
	st := sys.Fabric().Stats()
	if st.Windows == 0 || st.Committed == 0 {
		t.Errorf("fabric idle: windows=%d committed=%d", st.Windows, st.Committed)
	}
	sys.Stop()
}
