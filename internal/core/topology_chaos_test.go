package core_test

import (
	"testing"

	"gptpfta/internal/chaos"
	"gptpfta/internal/core"
)

// The chaos engine manipulates the system through this interface.
var _ chaos.Topology = (*core.System)(nil)

func TestTopologyNamesResolve(t *testing.T) {
	sys, err := core.NewSystem(core.NewConfig(1))
	if err != nil {
		t.Fatalf("new system: %v", err)
	}

	// 4-node full mesh: C(4,2) = 6 switch links, plus 4×2 VM uplinks.
	if got, want := len(sys.Links()), 14; got != want {
		t.Fatalf("Links() has %d entries, want %d", got, want)
	}
	for _, name := range []string{"sw1-sw2", "sw1-sw4", "sw3-sw4", "c11", "c42"} {
		if sys.Link(name) == nil {
			t.Errorf("Link(%q) = nil, want resolved", name)
		}
	}
	for _, name := range []string{"sw1", "sw2", "sw3", "sw4"} {
		if sys.Bridge(name) == nil {
			t.Errorf("Bridge(%q) = nil, want resolved", name)
		}
	}
	if sys.Link("sw2-sw1") != nil {
		t.Error("mesh links are canonically named low-high; sw2-sw1 should not resolve")
	}
	if sys.Link("nope") != nil || sys.Bridge("nope") != nil {
		t.Error("unknown names must resolve to nil")
	}
}
