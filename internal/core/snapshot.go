package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"gptpfta/internal/obs"
)

// Warm-start snapshot engine. System.Snapshot captures every stateful
// component — scheduler (with queued events as re-arm descriptors), RNG
// stream positions, clocks, bridges, links, relays, nodes (stacks, phc2sys,
// shared memory), measurement collector and agents, the event log, the Sync
// latency tracker and the metrics registry — into one opaque value.
// ForkSystem rewinds the captured system back to that instant, so a sweep
// campaign pays for the convergence prefix once and forks per sweep point.
//
// Forks are in-place: all component pointers (and the closures queued in the
// scheduler) refer to the original objects, so a snapshot can only be
// resumed on the System it was taken from, one fork at a time. Anything a
// fork could mutate through a shared reference — pending frames, relay
// records, open measurement windows — is deep-copied at Snapshot time and
// re-cloned on every Restore.

// eventLogSnapshot holds a pristine copy of the log.
type eventLogSnapshot struct {
	events []Event
}

// Snapshot implements sim.Snapshotter.
func (l *EventLog) Snapshot() any {
	return &eventLogSnapshot{events: append([]Event(nil), l.events...)}
}

// Restore implements sim.Snapshotter. The log is rebuilt on a fresh backing
// array: Events() copies, but results collected from an earlier fork must
// never share storage with the live log.
func (l *EventLog) Restore(snap any) {
	sn := snap.(*eventLogSnapshot)
	l.events = append([]Event(nil), sn.events...)
}

// systemSnapshot captures a System; components are stored positionally in
// build order, which is fixed by the deterministic constructor.
type systemSnapshot struct {
	sys *System

	// scheds and logs mirror System.scheds/System.logs positionally; control
	// is captured separately only when sharded (unsharded it aliases
	// scheds[0]). Snapshots are taken at driver time, when every shard is
	// parked at the same instant and all boundary outboxes are empty.
	scheds  []any
	control any
	streams any
	metrics *obs.RegistryState

	bridges []any
	links   []any
	relays  []any
	nodes   []any

	collector any
	agents    map[string]any
	logs      []any
	syncLat   any
	// wanCoord/wanDrift are nil unless the wide-area tier is enabled.
	wanCoord any
	wanDrift any

	started bool
}

// Snapshot captures the complete system state at the current instant.
func (s *System) Snapshot() any {
	sn := &systemSnapshot{
		sys:       s,
		scheds:    make([]any, len(s.scheds)),
		streams:   s.streams.Snapshot(),
		metrics:   s.obs.StateSnapshot(),
		bridges:   make([]any, len(s.bridges)),
		links:     make([]any, len(s.links)),
		relays:    make([]any, len(s.relays)),
		nodes:     make([]any, len(s.nodes)),
		collector: s.collector.Snapshot(),
		agents:    make(map[string]any, len(s.agents)),
		logs:      make([]any, len(s.logs)),
		syncLat:   s.syncLat.Snapshot(),
		started:   s.started,
	}
	for i, sc := range s.scheds {
		sn.scheds[i] = sc.Snapshot()
	}
	if s.fabric != nil {
		sn.control = s.control.Snapshot()
	}
	for i, l := range s.logs {
		sn.logs[i] = l.Snapshot()
	}
	for i, b := range s.bridges {
		sn.bridges[i] = b.Snapshot()
	}
	for i, l := range s.links {
		sn.links[i] = l.Snapshot()
	}
	for i, r := range s.relays {
		sn.relays[i] = r.Snapshot()
	}
	for i, n := range s.nodes {
		sn.nodes[i] = n.Snapshot()
	}
	for name, a := range s.agents {
		sn.agents[name] = a.Snapshot()
	}
	if s.wanCoord != nil {
		sn.wanCoord = s.wanCoord.Snapshot()
	}
	if s.wanDrift != nil {
		sn.wanDrift = s.wanDrift.Snapshot()
	}
	return sn
}

// Restore rewinds the system to a Snapshot taken from it.
func (s *System) Restore(snap any) {
	sn := snap.(*systemSnapshot)
	if sn.sys != s {
		panic("core: snapshot restored into a different System")
	}
	for i, sc := range s.scheds {
		sc.Restore(sn.scheds[i])
	}
	if s.fabric != nil {
		s.control.Restore(sn.control)
		s.fabric.Resync()
	}
	s.streams.Restore(sn.streams)
	s.obs.RestoreState(sn.metrics)
	for i, b := range s.bridges {
		b.RestoreSnapshot(sn.bridges[i])
	}
	for i, l := range s.links {
		l.Restore(sn.links[i])
	}
	for i, r := range s.relays {
		r.Restore(sn.relays[i])
	}
	for i, n := range s.nodes {
		n.Restore(sn.nodes[i])
	}
	s.collector.Restore(sn.collector)
	for name, a := range s.agents {
		a.Restore(sn.agents[name])
	}
	for i, l := range s.logs {
		l.Restore(sn.logs[i])
	}
	s.syncLat.Restore(sn.syncLat)
	if s.wanCoord != nil {
		s.wanCoord.Restore(sn.wanCoord)
	}
	if s.wanDrift != nil {
		s.wanDrift.Restore(sn.wanDrift)
	}
	s.started = sn.started
}

// ForkSystem resumes a snapshot: the captured system is rewound in place to
// the snapshot instant and returned, ready to diverge. Because forks share
// the component graph, run each fork to completion (and collect its results)
// before forking again from the same snapshot.
func ForkSystem(snap any) (*System, error) {
	sn, ok := snap.(*systemSnapshot)
	if !ok {
		return nil, fmt.Errorf("core: ForkSystem: not a System snapshot (%T)", snap)
	}
	sn.sys.Restore(sn)
	return sn.sys, nil
}

// PrefixHash fingerprints everything that shapes a run's warm-up prefix: the
// full Config plus the prefix boundary. Two sweep points with equal hashes
// are guaranteed to execute identical prefixes, so one may fork from the
// other's snapshot; a differing hash (topology, thresholds, intervals — any
// Config field at all) forces a cold run. Map fields are serialised in
// sorted key order, so the hash is stable across processes.
func PrefixHash(cfg Config, boundary time.Duration) string {
	h := sha256.New()
	// fmt prints map keys in sorted order, but serialise Kernels explicitly
	// so the hash does not depend on that formatting detail.
	kernels := make([]string, 0, len(cfg.Kernels))
	for k, v := range cfg.Kernels {
		kernels = append(kernels, k+"="+v)
	}
	sort.Strings(kernels)
	cfgNoMap := cfg
	cfgNoMap.Kernels = nil
	fmt.Fprintf(h, "%#v|%v|%v", cfgNoMap, kernels, boundary)
	return hex.EncodeToString(h.Sum(nil))
}
