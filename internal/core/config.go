// Package core assembles the paper's complete experimental system (Fig. 2):
// four edge computing devices, each with an integrated TSN switch, an ACRN
// hypervisor hosting two clock-synchronization VMs (the first being the
// grandmaster of the device's gPTP domain), a full-mesh switch network with
// per-domain static spanning trees, a measurement VLAN, and the
// fault-tolerant dependent clock. It is the public entry point the
// examples, command-line tools and benchmark harness build on.
package core

import (
	"time"

	"gptpfta/internal/attack"
	"gptpfta/internal/fta"
	"gptpfta/internal/netsim"
	"gptpfta/internal/wan"
)

// Config describes a testbed instance. The zero value plus NewConfig
// defaults reproduces the paper's setup.
type Config struct {
	// Seed drives every random stream; identical seeds reproduce runs
	// bit-for-bit.
	Seed int64
	// Nodes is the number of edge computing devices (and gPTP domains).
	Nodes int
	// VMsPerNode is the number of clock-synchronization VMs per node
	// (f+1 = 2 in the paper's fail-silent configuration).
	VMsPerNode int
	// F is the tolerated number of Byzantine grandmaster faults.
	F int
	// SyncInterval is the gPTP synchronization interval S.
	SyncInterval time.Duration
	// Phc2sysInterval is the CLOCK_SYNCTIME parameter update period.
	Phc2sysInterval time.Duration
	// MonitorPeriod is the hypervisor monitor task period.
	MonitorPeriod time.Duration
	// VoteThresholdNS enables the monitor's 2f+1 consistency vote.
	VoteThresholdNS float64

	// Clock imperfections.
	MaxStaticPPB        float64 // static oscillator error drawn in ±this
	WanderPPBPerSqrtSec float64
	TimestampJitterNS   float64
	TSCReadNoiseNS      float64
	BootOffsetMaxNS     float64 // initial PHC disagreement across nodes

	// Network parameters.
	LinkPropagation time.Duration
	LinkJitterNS    float64
	// LinkLossProb is the per-frame silent-loss probability on every link
	// (CRC errors, queue overruns). The protocol stack tolerates loss by
	// skipping measurement intervals.
	LinkLossProb  float64
	ResidencePTP  netsim.ResidenceModel
	ResidenceMeas netsim.ResidenceModel
	ResidenceBE   netsim.ResidenceModel

	// Protocol parameters.
	StartupThresholdNS  float64
	ValidityThresholdNS float64
	FlagPolicy          fta.FlagPolicy

	// Holdover (graceful degradation under quorum starvation). Zero
	// HoldoverWindow keeps the legacy free-run behavior; see
	// ptp4l.Config.HoldoverWindow. The paper's default config leaves this
	// off — chaos experiments opt in.
	HoldoverWindow       time.Duration
	ReacquireThresholdNS float64
	ReacquireStableCount int
	HoldoverMaxSlewPPB   float64

	// Transient software fault probabilities (per Sync).
	TxTimestampTimeoutProb float64
	DeadlineMissProb       float64

	// Measurement configuration (the paper uses VM 2 of dev2 as the
	// measurement VM and excludes the co-located GM c_m1).
	MeasurementNode int
	MeasurementVM   int

	// Kernels assigns a kernel version per VM name; missing entries get
	// the paper's vulnerable v4.19.1 (the identical-kernel scenario).
	Kernels map[string]string

	// DomainCount overrides the number of gPTP domains (default: one per
	// node). The single-domain ablation uses DomainCount = 1.
	DomainCount int

	// Shards splits the event kernel into this many conservatively
	// synchronized parallel schedulers (sim.Fabric). Nodes are assigned to
	// shards contiguously; links whose endpoints land in different shards
	// become deferred-mailbox boundaries. 0 or 1 keeps the legacy
	// single-scheduler kernel. Results are bit-identical at every shard
	// count (see DESIGN.md, "Parallel kernel").
	Shards int
	// Sites scales the topology: each site is one full copy of the paper's
	// mesh (Nodes switches × VMsPerNode ECD VMs, its own gPTP domains and
	// grandmasters), and site gateways (node 0 of each site) are joined in
	// a chain by InterSitePropagation links. The measurement VLAN rooted at
	// site 0 spans the whole fabric, so probe/reply traffic crosses every
	// site boundary. 0 or 1 reproduces the paper topology exactly.
	Sites int
	// InterSitePropagation is the one-way latency of the gateway chain
	// links (a metro/long-haul span, so orders of magnitude above the
	// in-site LinkPropagation — it is also the cross-shard lookahead when
	// shard boundaries align with sites).
	InterSitePropagation time.Duration
	// BaselineClientsOnly reproduces the Kyriakakis-style baseline the
	// paper criticises: no start-up protocol, and grandmaster nodes do not
	// aggregate (their clocks free-run) — multi-domain aggregation is for
	// PTP clients only.
	BaselineClientsOnly bool

	// WanSync configures the wide-area site-level FTA tier (internal/wan):
	// with Enabled set on a multi-site fabric, a coordinator on the control
	// scheduler aggregates per-site clocks over the gateway chain and
	// disciplines one virtual correction per site, with cross-site holdover
	// under quorum loss. Off by default; single-site fabrics ignore it.
	// All fields are value types, keeping PrefixHash stable.
	WanSync wan.Config
}

// NumDomains resolves the effective domain count per site.
func (c Config) NumDomains() int {
	if c.DomainCount > 0 {
		return c.DomainCount
	}
	return c.Nodes
}

// NumSites resolves the effective site count (0 means 1, the paper setup).
func (c Config) NumSites() int {
	if c.Sites > 1 {
		return c.Sites
	}
	return 1
}

// TotalNodes is the number of switches across all sites.
func (c Config) TotalNodes() int { return c.NumSites() * c.Nodes }

// effectiveShards resolves the shard count: at least 1, at most one shard
// per switch (extra shards would only sit empty at every barrier).
func (c Config) effectiveShards() int {
	s := c.Shards
	if s < 1 {
		s = 1
	}
	if t := c.TotalNodes(); s > t {
		s = t
	}
	return s
}

// NewConfig returns the paper's testbed configuration for the given seed.
func NewConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		Nodes:           4,
		VMsPerNode:      2,
		F:               1,
		SyncInterval:    125 * time.Millisecond,
		Phc2sysInterval: 31250 * time.Microsecond,
		MonitorPeriod:   125 * time.Millisecond,

		MaxStaticPPB:        5000, // r_max = 5 ppm (802.1AS, paper §III-A3)
		WanderPPBPerSqrtSec: 1,
		TimestampJitterNS:   8,
		TSCReadNoiseNS:      30,
		BootOffsetMaxNS:     1e6, // up to 1 ms boot-time disagreement

		LinkPropagation: 500 * time.Nanosecond,
		LinkJitterNS:    20,
		// Best-effort traffic (and the Sync path data used for E) sees a
		// heavier residence tail than the prioritised classes — this is
		// what separates E ≈ 5 µs from γ ≈ 1 µs, as in the paper.
		ResidencePTP: netsim.ResidenceModel{
			Base: 1200 * time.Nanosecond, JitterNS: 120,
			TailProb: 5e-4, TailMin: 500 * time.Nanosecond, TailMax: 2 * time.Microsecond,
		},
		ResidenceMeas: netsim.ResidenceModel{
			Base: 1000 * time.Nanosecond, JitterNS: 100,
			TailProb: 2e-4, TailMin: 300 * time.Nanosecond, TailMax: time.Microsecond,
		},
		ResidenceBE: netsim.ResidenceModel{
			Base: 1500 * time.Nanosecond, JitterNS: 200,
			TailProb: 1.5e-3, TailMin: time.Microsecond, TailMax: 4 * time.Microsecond,
		},

		StartupThresholdNS:  1000,
		ValidityThresholdNS: 10000,
		FlagPolicy:          fta.FlagMonitor,

		// Calibrated to the paper's 24 h totals: 2992 tx-timestamp
		// timeouts and 347 deadline misses over 4 domains at 8 Hz.
		TxTimestampTimeoutProb: 1.1e-3,
		DeadlineMissProb:       1.25e-4,

		MeasurementNode: 1, // dev2
		MeasurementVM:   1, // c22

		Shards:               1,
		Sites:                1,
		InterSitePropagation: 50 * time.Microsecond,

		Kernels: map[string]string{},
	}
}

// ScaleConfig builds a multi-site fabric configuration for scale and PDES
// benchmarks: sites copies of the paper mesh with nodes switches and vms
// clock VMs each, gateways chained at metro latency, simulated on shards
// parallel schedulers. Network element count = sites × nodes × (1 + vms).
func ScaleConfig(seed int64, sites, nodes, vms, shards int) Config {
	cfg := NewConfig(seed)
	cfg.Nodes = nodes
	cfg.VMsPerNode = vms
	cfg.Sites = sites
	cfg.Shards = shards
	// The paper defaults pin the measurement VM to dev2/c22; clamp onto
	// smaller fabrics so any (nodes, vms) ≥ 1 builds.
	if cfg.MeasurementNode >= nodes {
		cfg.MeasurementNode = nodes - 1
	}
	if cfg.MeasurementVM >= vms {
		cfg.MeasurementVM = vms - 1
	}
	return cfg
}

// VMName names VM vm on node (both zero-based): c11 … c42.
func VMName(node, vm int) string {
	return "c" + itoa(node+1) + itoa(vm+1)
}

// NodeName names a node: dev1 … dev4.
func NodeName(node int) string { return "dev" + itoa(node+1) }

func itoa(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

// KernelFor resolves a VM's kernel version with the vulnerable default.
func (c Config) KernelFor(vm string) string {
	if k, ok := c.Kernels[vm]; ok {
		return k
	}
	return attack.VulnerableKernel
}

// DiversifyKernels assigns a distinct kernel version to every grandmaster
// except keepVulnerable (the Fig. 3b scenario: only c14's kernel remains
// exploitable).
func (c *Config) DiversifyKernels(keepVulnerable string) {
	diverse := []string{"v5.4.86", "v5.10.46", "v5.15.12", "v6.1.38"}
	for i := 0; i < c.Nodes; i++ {
		name := VMName(i, 0)
		if name == keepVulnerable {
			c.Kernels[name] = attack.VulnerableKernel
			continue
		}
		c.Kernels[name] = diverse[i%len(diverse)]
	}
}
