package core

import (
	"fmt"
	"strings"
)

// DescribeTopology renders the wired testbed — the textual form of the
// paper's Fig. 2: per-node switches with their port assignments, the
// switch mesh, the per-domain static spanning trees (external port
// configuration), and the measurement VLAN.
func (s *System) DescribeTopology() string {
	var b strings.Builder
	fmt.Fprintf(&b, "testbed: %d nodes, %d gPTP domains, %d clock-sync VMs per node (f = %d)\n",
		s.cfg.Nodes, s.cfg.NumDomains(), s.cfg.VMsPerNode, s.cfg.F)
	fmt.Fprintf(&b, "sync interval S = %v, drift bound r_max = %.0f ppb, Gamma = %v\n\n",
		s.cfg.SyncInterval, s.cfg.MaxStaticPPB, s.DriftOffset())

	for i := 0; i < s.cfg.Nodes; i++ {
		fmt.Fprintf(&b, "%s (switch sw%d):\n", NodeName(i), i+1)
		for j := 0; j < s.cfg.Nodes; j++ {
			if j == i {
				continue
			}
			fmt.Fprintf(&b, "  port %d -> sw%d (mesh)\n", s.meshPort(i, j), j+1)
		}
		for v := 0; v < s.cfg.VMsPerNode; v++ {
			role := "redundant clock-sync VM"
			if v == 0 && i < s.cfg.NumDomains() {
				role = fmt.Sprintf("grandmaster of dom%d", i+1)
			}
			vmName := VMName(i, v)
			fmt.Fprintf(&b, "  port %d -> %s (%s, kernel %s)\n",
				s.vmPort(v), vmName, role, s.cfg.KernelFor(vmName))
		}
	}

	fmt.Fprintf(&b, "\nper-domain spanning trees (IEEE 802.1AS external port configuration):\n")
	for d := 0; d < s.cfg.NumDomains(); d++ {
		fmt.Fprintf(&b, "  dom%d (GM %s):\n", d+1, VMName(d, 0))
		for brIdx, relay := range s.relays {
			ports, ok := relay.DomainPortsFor(d)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "    sw%d: slave port %d, master ports %v\n",
				brIdx+1, ports.SlavePort, ports.MasterPorts)
		}
	}

	fmt.Fprintf(&b, "\nmeasurement VLAN: rooted at sw%d; measurement VM %s (excluded from Pi*: %s)\n",
		s.cfg.MeasurementNode+1,
		VMName(s.cfg.MeasurementNode, s.cfg.MeasurementVM),
		VMName(s.cfg.MeasurementNode, 0))
	return b.String()
}
