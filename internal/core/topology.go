package core

import (
	"fmt"
	"strings"
)

// DescribeTopology renders the wired testbed — the textual form of the
// paper's Fig. 2: per-node switches with their port assignments, the
// switch mesh, the per-domain static spanning trees (external port
// configuration), and the measurement VLAN. Multi-site fabrics render each
// site as a cluster, followed by the WAN gateway chain with each chain
// link's current extra-delay/asymmetry setting and the site-level FTA
// parameters.
func (s *System) DescribeTopology() string {
	var b strings.Builder
	nSites := s.cfg.NumSites()
	if nSites > 1 {
		fmt.Fprintf(&b, "wide-area fabric: %d sites × (%d nodes, %d gPTP domains, %d clock-sync VMs per node, f = %d) — %d switches\n",
			nSites, s.cfg.Nodes, s.cfg.NumDomains(), s.cfg.VMsPerNode, s.cfg.F, s.cfg.TotalNodes())
	} else {
		fmt.Fprintf(&b, "testbed: %d nodes, %d gPTP domains, %d clock-sync VMs per node (f = %d)\n",
			s.cfg.Nodes, s.cfg.NumDomains(), s.cfg.VMsPerNode, s.cfg.F)
	}
	fmt.Fprintf(&b, "sync interval S = %v, drift bound r_max = %.0f ppb, Gamma = %v\n\n",
		s.cfg.SyncInterval, s.cfg.MaxStaticPPB, s.DriftOffset())

	indent := ""
	if nSites > 1 {
		indent = "  "
	}
	for site := 0; site < nSites; site++ {
		base := site * s.cfg.Nodes
		if nSites > 1 {
			fmt.Fprintf(&b, "site %d (gateway sw%d):\n", site, base+1)
		}
		for i := 0; i < s.cfg.Nodes; i++ {
			g := base + i
			fmt.Fprintf(&b, "%s%s (switch sw%d):\n", indent, NodeName(g), g+1)
			for j := 0; j < s.cfg.Nodes; j++ {
				if j == i {
					continue
				}
				fmt.Fprintf(&b, "%s  port %d -> sw%d (mesh)\n", indent, s.meshPort(i, j), base+j+1)
			}
			for v := 0; v < s.cfg.VMsPerNode; v++ {
				role := "redundant clock-sync VM"
				if v == 0 && i < s.cfg.NumDomains() {
					role = fmt.Sprintf("grandmaster of dom%d", i+1)
				}
				vmName := VMName(g, v)
				fmt.Fprintf(&b, "%s  port %d -> %s (%s, kernel %s)\n",
					indent, s.vmPort(v), vmName, role, s.cfg.KernelFor(vmName))
			}
			if nSites > 1 && i == 0 {
				if site > 0 {
					fmt.Fprintf(&b, "%s  port %d -> sw%d (WAN uplink to site %d)\n",
						indent, s.uplinkToPrev(site), (site-1)*s.cfg.Nodes+1, site-1)
				}
				if site < nSites-1 {
					fmt.Fprintf(&b, "%s  port %d -> sw%d (WAN uplink to site %d)\n",
						indent, s.uplinkToNext(site), (site+1)*s.cfg.Nodes+1, site+1)
				}
			}
		}
	}

	if nSites > 1 {
		fmt.Fprintf(&b, "\nWAN gateway chain (propagation %v per span):\n", s.cfg.InterSitePropagation)
		for i := 0; i < nSites-1; i++ {
			name := s.WanLinkName(i)
			extra, asym := s.linkByName[name].WanDelay()
			fmt.Fprintf(&b, "  %s (site %d <-> site %d): extra delay %v, asymmetry %v\n",
				name, i, i+1, extra, asym)
		}
		w := s.cfg.WanSync
		if w.Enabled {
			ww := w.WithDefaults()
			drift := "off"
			if ww.Drift.Enabled {
				dd := ww.Drift
				drift = fmt.Sprintf("on (step %v/%.0fns, asym bound ±%.0fns)",
					dd.Interval, dd.StepNS, dd.MaxAsymNS)
			}
			tol := s.wanCoord.Tolerable()
			fmt.Fprintf(&b, "site-level FTA: enabled, f = %d, tolerable site failures min(f, ⌊(N−1)/2⌋) = %d, interval %v, holdover after %v, delay drift %s\n",
				ww.F, tol, ww.Interval, ww.HoldoverWindow, drift)
		} else {
			fmt.Fprintf(&b, "site-level FTA: disabled (sites free-run against each other)\n")
		}
	}

	fmt.Fprintf(&b, "\nper-domain spanning trees (IEEE 802.1AS external port configuration):\n")
	for site := 0; site < nSites; site++ {
		base := site * s.cfg.Nodes
		for d := 0; d < s.cfg.NumDomains(); d++ {
			if nSites > 1 {
				fmt.Fprintf(&b, "  site %d dom%d (GM %s):\n", site, d+1, VMName(base+d, 0))
			} else {
				fmt.Fprintf(&b, "  dom%d (GM %s):\n", d+1, VMName(d, 0))
			}
			for local := 0; local < s.cfg.Nodes; local++ {
				brIdx := base + local
				ports, ok := s.relays[brIdx].DomainPortsFor(d)
				if !ok {
					continue
				}
				fmt.Fprintf(&b, "    sw%d: slave port %d, master ports %v\n",
					brIdx+1, ports.SlavePort, ports.MasterPorts)
			}
		}
	}

	fmt.Fprintf(&b, "\nmeasurement VLAN: rooted at sw%d; measurement VM %s (excluded from Pi*: %s)\n",
		s.cfg.MeasurementNode+1,
		VMName(s.cfg.MeasurementNode, s.cfg.MeasurementVM),
		VMName(s.cfg.MeasurementNode, 0))
	return b.String()
}
