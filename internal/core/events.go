package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"gptpfta/internal/sim"
)

// Event is one timestamped occurrence in an experiment run: VM failures,
// reboots, CLOCK_SYNCTIME takeovers, ptp4l transient software faults,
// mode changes, exploit attempts — everything Fig. 5 plots as markers.
type Event struct {
	At     sim.Time
	Node   string
	VM     string
	Kind   string
	Detail string
}

// String renders the event like the experiment logs.
func (e Event) String() string {
	s := fmt.Sprintf("[%12v] %-5s %-4s %-22s", e.At, e.Node, e.VM, e.Kind)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// EventLog accumulates events in time order. Each log has a single writer
// (one shard's scheduler, or the control scheduler), so appends are
// naturally ordered; a sharded system keeps one log per scheduler and
// presents MergeEventLogs of them.
type EventLog struct {
	events []Event
}

// NewEventLog creates an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// Append records an event.
func (l *EventLog) Append(e Event) { l.events = append(l.events, e) }

// MergeEventLogs combines per-scheduler logs into one time-ordered log.
// Entries at equal timestamps keep the argument order of their source logs
// (pass the control log first: its events fire before same-instant shard
// events), and within one source log the original append order. The merge
// is deterministic, so the combined view is independent of shard count for
// order-insensitive consumers (counts, windows) by construction.
func MergeEventLogs(logs ...*EventLog) *EventLog {
	n := 0
	for _, l := range logs {
		n += len(l.events)
	}
	out := &EventLog{events: make([]Event, 0, n)}
	// Index-based k-way merge; k is tiny (shard count + 1).
	pos := make([]int, len(logs))
	for len(out.events) < n {
		best := -1
		for i, l := range logs {
			if pos[i] >= len(l.events) {
				continue
			}
			if best < 0 || l.events[pos[i]].At < logs[best].events[pos[best]].At {
				best = i
			}
		}
		out.events = append(out.events, logs[best].events[pos[best]])
		pos[best]++
	}
	return out
}

// Events snapshots the full log.
func (l *EventLog) Events() []Event {
	return append([]Event(nil), l.events...)
}

// Len reports the number of events.
func (l *EventLog) Len() int { return len(l.events) }

// Filter returns events of one kind.
func (l *EventLog) Filter(kind string) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Window returns events within [from, to].
func (l *EventLog) Window(from, to sim.Time) []Event {
	var out []Event
	for _, e := range l.events {
		if e.At >= from && e.At <= to {
			out = append(out, e)
		}
	}
	return out
}

// CountsByKind tallies events per kind.
func (l *EventLog) CountsByKind() map[string]int {
	out := make(map[string]int)
	for _, e := range l.events {
		out[e.Kind]++
	}
	return out
}

// CountsByKindAndDetail tallies events per (kind, detail) pair — used to
// split ptp4l faults into tx-timestamp timeouts and deadline misses.
func (l *EventLog) CountsByKindAndDetail() map[string]int {
	out := make(map[string]int)
	for _, e := range l.events {
		key := e.Kind
		if e.Detail != "" {
			key += "/" + e.Detail
		}
		out[key]++
	}
	return out
}

// Kinds lists the distinct event kinds, sorted.
func (l *EventLog) Kinds() []string {
	seen := make(map[string]bool)
	for _, e := range l.events {
		seen[e.Kind] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteCSV exports the log as CSV ("at_ns,node,vm,kind,detail") for
// external plotting of Fig. 5-style event timelines.
func (l *EventLog) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_ns", "node", "vm", "kind", "detail"}); err != nil {
		return err
	}
	for _, e := range l.events {
		rec := []string{
			strconv.FormatInt(int64(e.At), 10),
			e.Node, e.VM, e.Kind, e.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
