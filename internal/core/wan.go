package core

import (
	"fmt"
	"time"

	"gptpfta/internal/netsim"
	"gptpfta/internal/wan"
)

// Wide-area tier bindings: System implements wan.Fabric (the coordinator's
// measurement view over the gateway chain) and chaos.SiteTopology (the
// fault injector's site-granular handle on the same fabric).

// NumSites implements wan.Fabric and chaos.SiteTopology.
func (s *System) NumSites() int { return s.cfg.NumSites() }

// siteGateway returns the global switch index of a site's gateway (its
// node 0, the chain endpoint).
func (s *System) siteGateway(site int) int { return site * s.cfg.Nodes }

// SiteTime implements wan.Fabric: site i's aggregate clock, read as the
// gateway node's CLOCK_SYNCTIME. The site counts as dead while its gateway
// switch is failed (a site-fail chaos action kills every switch of the
// site, so the gateway stands in for all of them) or while the gateway
// node cannot evaluate its sync time.
func (s *System) SiteTime(site int) (float64, bool) {
	g := s.siteGateway(site)
	if s.bridges[g].Failed() {
		return 0, false
	}
	return s.nodes[g].SyncTimeNow()
}

// wanChainLink returns the gateway-chain link joining site i and i+1; its
// direction 0 runs from the lower-indexed site to the higher.
func (s *System) wanChainLink(i int) *netsim.Link {
	return s.linkByName[s.WanLinkName(i)]
}

// PathUp implements wan.Fabric: the chain path between two sites is intact
// iff no chain segment on it is severed and no intermediate gateway has
// failed (endpoint liveness is SiteTime's concern).
func (s *System) PathUp(i, j int) bool {
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	for k := lo; k < hi; k++ {
		if s.wanChainLink(k).Down() {
			return false
		}
	}
	for k := lo + 1; k < hi; k++ {
		if s.bridges[s.siteGateway(k)].Failed() {
			return false
		}
	}
	return true
}

// PathAsymNS implements wan.Fabric: the signed error a two-way exchange
// between observer site i and peer site j inherits from WAN path
// asymmetry — half the difference between the peer→observer and
// observer→peer deterministic path delays (a slower return path makes the
// peer look further behind, inflating the measured local−peer offset).
func (s *System) PathAsymNS(i, j int) float64 {
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	var toHi, toLo time.Duration
	for k := lo; k < hi; k++ {
		l := s.wanChainLink(k)
		toHi += l.DirectionalDelay(0)
		toLo += l.DirectionalDelay(1)
	}
	// toHi is the i→j delay when i < j; flip for the other observer.
	dIJ, dJI := toHi, toLo
	if i > j {
		dIJ, dJI = toLo, toHi
	}
	return float64(dJI-dIJ) / 2
}

// SiteBridgeNames implements chaos.SiteTopology.
func (s *System) SiteBridgeNames(site int) []string {
	names := make([]string, 0, s.cfg.Nodes)
	base := site * s.cfg.Nodes
	for i := 0; i < s.cfg.Nodes; i++ {
		names = append(names, "sw"+itoa(base+i+1))
	}
	return names
}

// WanLinkName implements chaos.SiteTopology: the chain link joining site i
// and i+1, named after its gateway switches.
func (s *System) WanLinkName(i int) string {
	return fmt.Sprintf("sw%d-sw%d", i*s.cfg.Nodes+1, (i+1)*s.cfg.Nodes+1)
}

// Wan exposes the site-level coordinator (nil when the tier is disabled).
func (s *System) Wan() *wan.Coordinator { return s.wanCoord }

// buildWan wires the coordinator and, when configured, the drift process.
func (s *System) buildWan() {
	if !s.cfg.WanSync.Enabled || s.cfg.NumSites() < 2 {
		return
	}
	s.wanCoord = wan.NewCoordinator(s.cfg.WanSync, s, s.streams, s.obs)
	if s.cfg.WanSync.Drift.Enabled {
		var links []wan.NamedLink
		for i := 0; i < s.cfg.NumSites()-1; i++ {
			name := s.WanLinkName(i)
			links = append(links, wan.NamedLink{Name: name, Link: s.linkByName[name]})
		}
		s.wanDrift = wan.NewDrift(s.cfg.WanSync.Drift, links, s.streams)
	}
}
