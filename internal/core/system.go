package core

import (
	"fmt"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/fta"
	"gptpfta/internal/gptp"
	"gptpfta/internal/hypervisor"
	"gptpfta/internal/measure"
	"gptpfta/internal/netsim"
	"gptpfta/internal/obs"
	"gptpfta/internal/phc2sys"
	"gptpfta/internal/ptp4l"
	"gptpfta/internal/sim"
	"gptpfta/internal/wan"
)

// System is one fully wired testbed instance. With Config.Shards > 1 the
// event kernel is split into per-shard schedulers coordinated by a
// sim.Fabric (conservative PDES); switches are assigned to shards
// contiguously by global index and links that straddle a shard cut become
// deferred-mailbox boundaries. Shards == 1 keeps the single legacy
// scheduler, which then also serves as the control scheduler.
type System struct {
	cfg Config
	// scheds holds one scheduler per shard. control is the shard-less
	// scheduler driving chaos plans, fault injectors and driver At/Every
	// calls; unsharded it aliases scheds[0].
	scheds  []*sim.Scheduler
	control *sim.Scheduler
	fabric  *sim.Fabric // nil when unsharded
	streams *sim.Streams

	bridges []*netsim.Bridge
	links   []*netsim.Link
	// linkByName and bridgeByName expose the topology to the chaos engine:
	// mesh links are named "sw1-sw2" (lower index first), VM uplinks after
	// their VM ("c11"), gateway-chain links by their end switches
	// ("sw1-sw5"), bridges "sw1".."swN".
	linkByName   map[string]*netsim.Link
	bridgeByName map[string]*netsim.Bridge
	relays       []*gptp.Relay
	nodes        []*hypervisor.Node
	vms          map[string]*hypervisor.CSVM
	agents       map[string]*measure.Agent

	// wanCoord/wanDrift are the wide-area tier (nil unless
	// cfg.WanSync.Enabled on a multi-site fabric); both tick on the
	// control scheduler.
	wanCoord *wan.Coordinator
	wanDrift *wan.Drift

	collector *measure.Collector
	// logs holds one event log per shard plus, when sharded, a trailing
	// control log; EventLog() presents the deterministic merged view.
	logs    []*EventLog
	syncLat *measure.LatencyTracker
	obs     *obs.Registry

	started bool
}

// NewSystem builds the testbed described by cfg. Nothing runs until Start.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("core: need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.VMsPerNode < 1 {
		return nil, fmt.Errorf("core: need at least 1 VM per node, got %d", cfg.VMsPerNode)
	}
	if cfg.MeasurementNode < 0 || cfg.MeasurementNode >= cfg.Nodes ||
		cfg.MeasurementVM < 0 || cfg.MeasurementVM >= cfg.VMsPerNode {
		return nil, fmt.Errorf("core: measurement VM c%d%d out of range",
			cfg.MeasurementNode+1, cfg.MeasurementVM+1)
	}

	s := &System{
		cfg:          cfg,
		streams:      sim.NewStreams(cfg.Seed),
		vms:          make(map[string]*hypervisor.CSVM),
		agents:       make(map[string]*measure.Agent),
		linkByName:   make(map[string]*netsim.Link),
		bridgeByName: make(map[string]*netsim.Bridge),
		syncLat:      measure.NewLatencyTracker(),
		obs:          obs.NewRegistry(),
	}
	nShards := cfg.effectiveShards()
	s.scheds = make([]*sim.Scheduler, nShards)
	for i := range s.scheds {
		s.scheds[i] = sim.NewScheduler()
	}
	if nShards == 1 {
		// Legacy kernel: one scheduler plays every role, one log.
		s.control = s.scheds[0]
		s.logs = []*EventLog{NewEventLog()}
	} else {
		s.control = sim.NewScheduler()
		s.logs = make([]*EventLog, nShards+1)
		for i := range s.logs {
			s.logs[i] = NewEventLog()
		}
	}
	if err := s.buildBridges(); err != nil {
		return nil, err
	}
	if err := s.buildNodes(); err != nil {
		return nil, err
	}
	if err := s.buildRelays(); err != nil {
		return nil, err
	}
	s.buildForwarding()
	if nShards > 1 {
		var bounds []sim.Boundary
		for _, l := range s.links {
			if l.Boundary() {
				bounds = append(bounds, l)
			}
		}
		s.fabric = sim.NewFabric(s.scheds, s.control, bounds)
	}
	s.buildWan()
	s.instrumentKernel()
	return s, nil
}

// Topology helpers. Switches carry a global index g in [0, TotalNodes);
// site = g / Nodes, local in-site index = g % Nodes. Shard assignment is
// contiguous in g, so with Shards == Sites every shard is exactly one site
// and the only boundaries are the metro-latency gateway links.

func (s *System) siteOf(g int) int  { return g / s.cfg.Nodes }
func (s *System) localOf(g int) int { return g % s.cfg.Nodes }

func (s *System) shardOf(g int) int {
	return g * len(s.scheds) / s.cfg.TotalNodes()
}

// shardSched returns the scheduler owning global switch g and everything
// attached to it (its relay, node, VMs and their NICs).
func (s *System) shardSched(g int) *sim.Scheduler { return s.scheds[s.shardOf(g)] }

// eventNow timestamps an event emitted by a component owned by sc. Control
// callbacks (fault injection, chaos) run while shards are paused one
// nanosecond behind the control instant; taking the later of the two clocks
// reproduces the timestamp a single-scheduler run would have logged. Both
// reads are race-free: during shard windows the control scheduler is
// parked, and control callbacks run only while every shard is parked.
func (s *System) eventNow(sc *sim.Scheduler) sim.Time {
	t := sc.Now()
	if s.fabric != nil {
		if ct := s.control.Now(); ct > t {
			t = ct
		}
	}
	return t
}

// controlLog is where driver/control-context events land (the trailing log,
// which unsharded is the only log).
func (s *System) controlLog() *EventLog { return s.logs[len(s.logs)-1] }

// Metrics exposes the system's private metrics registry. Each System owns
// its own registry so the parallel experiment runner never mixes metrics of
// concurrently running simulations. Snapshots are pure reads: the
// instrumentation draws no randomness and schedules nothing, so golden
// digests are unaffected.
func (s *System) Metrics() *obs.Registry { return s.obs }

// ProcessedEvents totals the events executed across every shard scheduler
// (plus the control scheduler when sharded) — the benchmark-facing
// throughput counter.
func (s *System) ProcessedEvents() uint64 {
	var n uint64
	for _, sc := range s.scheds {
		n += sc.Diag().Processed
	}
	if s.fabric != nil {
		n += s.control.Diag().Processed
	}
	return n
}

// instrumentKernel registers gauge funcs over the kernel-level counters the
// components already maintain: scheduler diagnostics, bridge and link
// traffic, frame-pool hit rate and — when sharded — the PDES fabric
// counters. Sampling happens only at Snapshot, so the hot paths pay
// nothing. Wall-clock quantities (barrier waits) are observability only and
// never part of a determinism surface.
func (s *System) instrumentKernel() {
	reg := s.obs
	eachSched := func(fn func(d sim.Diagnostics) uint64) float64 {
		var n uint64
		for _, sc := range s.scheds {
			n += fn(sc.Diag())
		}
		if s.fabric != nil {
			n += fn(s.control.Diag())
		}
		return float64(n)
	}
	reg.GaugeFunc("sim_events_processed", func() float64 {
		return eachSched(func(d sim.Diagnostics) uint64 { return d.Processed })
	})
	reg.GaugeFunc("sim_events_cancelled", func() float64 {
		return eachSched(func(d sim.Diagnostics) uint64 { return d.Cancelled })
	})
	reg.GaugeFunc("sim_past_clamps", func() float64 {
		return eachSched(func(d sim.Diagnostics) uint64 { return d.PastClamps })
	})
	reg.GaugeFunc("sim_events_pending", func() float64 {
		return eachSched(func(d sim.Diagnostics) uint64 { return uint64(d.Pending) })
	})
	reg.GaugeFunc("netsim_frames_forwarded", func() float64 {
		var n uint64
		for _, b := range s.bridges {
			n += b.Forwarded()
		}
		return float64(n)
	})
	reg.GaugeFunc("netsim_frames_dropped", func() float64 {
		var n uint64
		for _, b := range s.bridges {
			n += b.Dropped()
		}
		return float64(n)
	})
	reg.GaugeFunc("netsim_frames_sent", func() float64 {
		var n uint64
		for _, l := range s.links {
			n += l.Sent()
		}
		return float64(n)
	})
	reg.GaugeFunc("netsim_frames_lost", func() float64 {
		var n uint64
		for _, l := range s.links {
			n += l.Lost()
		}
		return float64(n)
	})
	reg.GaugeFunc("netsim_frames_fault_dropped", func() float64 {
		var n uint64
		for _, l := range s.links {
			n += l.FaultDropped()
		}
		for _, b := range s.bridges {
			n += b.FaultDropped()
		}
		return float64(n)
	})
	// The frame pool is process-global (shared across concurrently running
	// simulations); its hit rate is an aggregate, not per-system.
	reg.GaugeFunc("netsim_pool_hit_rate", func() float64 {
		gets, news, _ := netsim.PoolStats()
		if gets == 0 {
			return 0
		}
		return float64(gets-news) / float64(gets)
	})
	if s.fabric == nil {
		return
	}
	for i := range s.scheds {
		sc := s.scheds[i]
		reg.GaugeFunc("pdes_shard_events", func() float64 {
			return float64(sc.Diag().Processed)
		}, obs.L("shard", itoa(i)))
	}
	reg.GaugeFunc("pdes_shards", func() float64 { return float64(len(s.scheds)) })
	reg.GaugeFunc("pdes_windows", func() float64 { return float64(s.fabric.Stats().Windows) })
	reg.GaugeFunc("pdes_control_rounds", func() float64 { return float64(s.fabric.Stats().ControlRounds) })
	reg.GaugeFunc("pdes_mailbox_frames", func() float64 { return float64(s.fabric.Stats().Committed) })
	reg.GaugeFunc("pdes_lookahead_ns", func() float64 { return float64(s.fabric.Stats().LookaheadNS) })
	reg.GaugeFunc("pdes_barrier_wait_ns_total", func() float64 { return float64(s.fabric.Stats().BarrierWaitNS) })
	reg.GaugeFunc("pdes_serial_windows", func() float64 { return float64(s.fabric.Stats().SerialWindows) })
	reg.GaugeFunc("pdes_flush_skipped", func() float64 { return float64(s.fabric.Stats().FlushesSkipped) })
	reg.GaugeFunc("pdes_lookahead_rescans", func() float64 { return float64(s.fabric.Stats().LookaheadRescans) })
	hist := reg.Histogram("pdes_barrier_wait_ns", []float64{1e3, 1e4, 1e5, 1e6, 1e7})
	s.fabric.BarrierObserver = hist.Observe
}

// meshPort returns the port index on a bridge (in-site index i) that faces
// in-site bridge j.
func (s *System) meshPort(i, j int) int {
	p := 0
	for k := 0; k < s.cfg.Nodes; k++ {
		if k == i {
			continue
		}
		if k == j {
			return p
		}
		p++
	}
	return -1
}

// vmPort returns the port index on a bridge for local VM vm.
func (s *System) vmPort(vm int) int { return s.cfg.Nodes - 1 + vm }

// Gateway uplink ports sit after the VM ports, and exist only on each
// site's node 0 when Sites > 1: the first uplink faces the previous site
// (or, on site 0, the next), middle gateways add a second one facing the
// next site.
func (s *System) uplinkBase() int { return s.cfg.Nodes - 1 + s.cfg.VMsPerNode }

func (s *System) uplinkToPrev(site int) int { return s.uplinkBase() } // site > 0

func (s *System) uplinkToNext(site int) int {
	if site == 0 {
		return s.uplinkBase()
	}
	return s.uplinkBase() + 1
}

// numPorts sizes global switch g's port array.
func (s *System) numPorts(g int) int {
	n := s.uplinkBase()
	if s.cfg.NumSites() > 1 && s.localOf(g) == 0 {
		site := s.siteOf(g)
		if site > 0 {
			n++ // uplink toward the previous site
		}
		if site < s.cfg.NumSites()-1 {
			n++ // uplink toward the next site
		}
	}
	return n
}

func (s *System) newPHC(sc *sim.Scheduler, name string, staticPPB, bootOffset float64) *clock.PHC {
	osc := clock.NewOscillator(clock.OscillatorConfig{
		StaticPPB:           staticPPB,
		WanderPPBPerSqrtSec: s.cfg.WanderPPBPerSqrtSec,
	}, s.streams.Stream("osc/"+name), sc.Now())
	return clock.NewPHC(sc, osc, s.streams.Stream("ts/"+name), clock.PHCConfig{
		TimestampJitterNS: s.cfg.TimestampJitterNS,
		InitialOffsetNS:   bootOffset,
	})
}

// interSitePropagation resolves the gateway-chain latency with the default
// for configs assembled without NewConfig.
func (s *System) interSitePropagation() time.Duration {
	if s.cfg.InterSitePropagation > 0 {
		return s.cfg.InterSitePropagation
	}
	return 50 * time.Microsecond
}

func (s *System) buildBridges() error {
	residence := map[int]netsim.ResidenceModel{
		netsim.PriorityBestEffort: s.cfg.ResidenceBE,
		netsim.PriorityPTP:        s.cfg.ResidencePTP,
		netsim.PriorityMeasure:    s.cfg.ResidenceMeas,
	}
	total := s.cfg.TotalNodes()
	for g := 0; g < total; g++ {
		name := "sw" + itoa(g+1)
		sc := s.shardSched(g)
		static := clock.UniformPPB(s.streams.Stream("static/"+name), s.cfg.MaxStaticPPB)
		br := netsim.NewBridge(name, sc, s.streams.Stream("br/"+name),
			s.newPHC(sc, name, static, 0), netsim.BridgeConfig{Ports: s.numPorts(g), Residence: residence})
		s.bridges = append(s.bridges, br)
		s.bridgeByName[name] = br
	}
	// Full mesh between each site's integrated switches. ConnectBoundary
	// degrades to a plain local link when both ends share a scheduler, so a
	// shard cut through the middle of a site is merely slower (the in-site
	// propagation shrinks the fabric lookahead), never incorrect.
	for site := 0; site < s.cfg.NumSites(); site++ {
		base := site * s.cfg.Nodes
		for i := 0; i < s.cfg.Nodes; i++ {
			for j := i + 1; j < s.cfg.Nodes; j++ {
				gi, gj := base+i, base+j
				linkName := fmt.Sprintf("sw%d-sw%d", gi+1, gj+1)
				link, err := netsim.ConnectBoundary(s.shardSched(gi), s.shardSched(gj),
					s.streams.Stream("link/"+linkName),
					s.linkConfig(linkName),
					s.bridges[gi].Port(s.meshPort(i, j)), s.bridges[gj].Port(s.meshPort(j, i)))
				if err != nil {
					return err
				}
				s.links = append(s.links, link)
				s.linkByName[linkName] = link
			}
		}
	}
	// Gateway chain: node 0 of consecutive sites, at metro latency.
	for site := 1; site < s.cfg.NumSites(); site++ {
		ga, gb := (site-1)*s.cfg.Nodes, site*s.cfg.Nodes
		linkName := fmt.Sprintf("sw%d-sw%d", ga+1, gb+1)
		cfg := s.linkConfig(linkName)
		cfg.Propagation = s.interSitePropagation()
		link, err := netsim.ConnectBoundary(s.shardSched(ga), s.shardSched(gb),
			s.streams.Stream("link/"+linkName), cfg,
			s.bridges[ga].Port(s.uplinkToNext(site-1)), s.bridges[gb].Port(s.uplinkToPrev(site)))
		if err != nil {
			return err
		}
		s.links = append(s.links, link)
		s.linkByName[linkName] = link
	}
	return nil
}

// linkConfig builds the shared link parameters plus a dedicated per-link
// loss stream. The loss stream is private to the drop decision (see the
// LinkConfig.LossRNG determinism contract), so installing zero-rate chaos
// loss models leaves the jitter stream — and the golden digests — intact.
func (s *System) linkConfig(name string) netsim.LinkConfig {
	return netsim.LinkConfig{
		Propagation: s.cfg.LinkPropagation,
		JitterNS:    s.cfg.LinkJitterNS,
		LossProb:    s.cfg.LinkLossProb,
		LossRNG:     s.streams.Stream("loss/" + name),
	}
}

func (s *System) buildNodes() error {
	total := s.cfg.TotalNodes()
	for g := 0; g < total; g++ {
		sc := s.shardSched(g)
		shardLog := s.logs[s.shardOf(g)]
		nodeName := NodeName(g)
		tscOsc := clock.NewOscillator(clock.OscillatorConfig{
			StaticPPB:           clock.UniformPPB(s.streams.Stream("tsc/"+nodeName), s.cfg.MaxStaticPPB),
			WanderPPBPerSqrtSec: s.cfg.WanderPPBPerSqrtSec,
		}, s.streams.Stream("tscosc/"+nodeName), sc.Now())
		tsc := clock.NewTSC(sc, tscOsc, s.streams.Stream("tscrd/"+nodeName), s.cfg.TSCReadNoiseNS)
		node := hypervisor.NewNode(nodeName, sc, tsc, s.cfg.VMsPerNode,
			hypervisor.MonitorConfig{
				Period:          s.cfg.MonitorPeriod,
				StaleAfter:      4 * s.cfg.Phc2sysInterval,
				VoteThresholdNS: s.cfg.VoteThresholdNS,
			},
			func(e hypervisor.Event) {
				shardLog.Append(Event{At: s.eventNow(sc), Node: e.Node, VM: e.VM, Kind: e.Kind, Detail: e.Detail})
			})
		node.Instrument(s.obs)
		s.nodes = append(s.nodes, node)

		// gPTP domains are site-local: every site is a full copy of the
		// paper's multi-domain aggregation fabric with its own grandmasters,
		// and PTP frames never cross the gateway chain.
		domains := make([]int, s.cfg.NumDomains())
		for d := range domains {
			domains[d] = d
		}
		for v := 0; v < s.cfg.VMsPerNode; v++ {
			vmName := VMName(g, v)
			static := clock.UniformPPB(s.streams.Stream("static/"+vmName), s.cfg.MaxStaticPPB)
			boot := s.streams.Stream("boot/"+vmName).Float64() * s.cfg.BootOffsetMaxNS
			nic := netsim.NewNIC(vmName, sc, s.newPHC(sc, vmName, static, boot))
			link, err := netsim.Connect(sc, s.streams.Stream("link/"+vmName),
				s.linkConfig(vmName),
				nic.Port(), s.bridges[g].Port(s.vmPort(v)))
			if err != nil {
				return err
			}
			s.links = append(s.links, link)
			s.linkByName[vmName] = link
			gmDomain := -1
			if v == 0 && s.localOf(g) < s.cfg.NumDomains() {
				gmDomain = s.localOf(g)
			}
			nodeNameCopy, vmNameCopy := nodeName, vmName
			stack, err := ptp4l.New(nic, sc, s.streams.Stream("stack/"+vmName), ptp4l.Config{
				Name:                   vmName,
				Domains:                domains,
				GMDomain:               gmDomain,
				InitialDomain:          0,
				F:                      s.cfg.F,
				SyncInterval:           s.cfg.SyncInterval,
				StartupThresholdNS:     s.cfg.StartupThresholdNS,
				ValidityThresholdNS:    s.cfg.ValidityThresholdNS,
				FlagPolicy:             s.cfg.FlagPolicy,
				HoldoverWindow:         s.cfg.HoldoverWindow,
				ReacquireThresholdNS:   s.cfg.ReacquireThresholdNS,
				ReacquireStableCount:   s.cfg.ReacquireStableCount,
				HoldoverMaxSlewPPB:     s.cfg.HoldoverMaxSlewPPB,
				TxTimestampTimeoutProb: s.cfg.TxTimestampTimeoutProb,
				DeadlineMissProb:       s.cfg.DeadlineMissProb,
				SkipStartup:            s.cfg.BaselineClientsOnly,
				DisableDiscipline:      s.cfg.BaselineClientsOnly && gmDomain >= 0,
			}, func(e ptp4l.Event) {
				shardLog.Append(Event{At: s.eventNow(sc), Node: nodeNameCopy, VM: vmNameCopy, Kind: e.Kind, Detail: e.Detail})
			})
			if err != nil {
				return err
			}
			stack.Instrument(s.obs)
			// Precompute the per-domain tracker keys: the observer runs once
			// per received Sync, and a Sprintf there dominated the system
			// allocation profile. Preregistering them also keeps the tracker's
			// sharded fast path race-free (one writer per key).
			syncKeys := make([]string, s.cfg.NumDomains())
			for d := range syncKeys {
				syncKeys[d] = fmt.Sprintf("dom%d->%s", d+1, vmNameCopy)
			}
			s.syncLat.Preregister(syncKeys...)
			stack.SetSyncObserver(func(domain int, latency time.Duration) {
				if domain >= 0 && domain < len(syncKeys) {
					s.syncLat.Observe(syncKeys[domain], latency)
					return
				}
				// Unknown domain (malformed or adversarial Sync): fall back.
				s.syncLat.Observe(fmt.Sprintf("dom%d->%s", domain+1, vmNameCopy), latency)
			})
			p2s := phc2sys.New(sc, nic.PHC(), tsc, node.STSHMEM(),
				s.streams.Stream("phc2sys/"+vmName),
				phc2sys.Config{
					Interval: s.cfg.Phc2sysInterval,
					Slot:     v,
					// vCPU preemption between the non-atomic TSC/PHC reads:
					// frequent short slices plus rare long deschedules. This
					// is the calibrated source of the µs-scale precision
					// spikes of Fig. 4a (the paper's "feedback control of
					// software clocks" instability).
					PreemptProb:     0.015,
					PreemptMin:      100 * time.Nanosecond,
					PreemptMax:      1500 * time.Nanosecond,
					LongPreemptProb: 1.2e-4,
					LongPreemptMin:  2500 * time.Nanosecond,
					LongPreemptMax:  9500 * time.Nanosecond,
				})
			vm := &hypervisor.CSVM{
				Name:    vmName,
				Slot:    v,
				Kernel:  s.cfg.KernelFor(vmName),
				Stack:   stack,
				Phc2sys: p2s,
			}
			if err := node.AddVM(vm); err != nil {
				return err
			}
			s.vms[vmName] = vm
			s.installMeasurement(node, vm, sc, g, v)
		}
	}
	return nil
}

// installMeasurement attaches the probe agent or the collector to the VM.
// The collector lives on site 0; every other VM in the fabric answers its
// probes, so with Sites > 1 the measurement VLAN is the cross-site (and
// cross-shard) traffic source.
func (s *System) installMeasurement(node *hypervisor.Node, vm *hypervisor.CSVM, sc *sim.Scheduler, nodeIdx, vmIdx int) {
	if nodeIdx == s.cfg.MeasurementNode && vmIdx == s.cfg.MeasurementVM {
		excluded := VMName(s.cfg.MeasurementNode, 0) // c_m1, asymmetric path
		s.collector = measure.NewCollector(vm.Name, sc, vm.Stack.NIC(), measure.CollectorConfig{
			Exclude: []string{excluded},
		})
		vm.Stack.SetAuxHandler(s.collector.Handle)
		return
	}
	agent := measure.NewAgent(vm.Name, sc, vm.Stack.NIC(), node.SyncTimeNow)
	vm.Stack.SetAuxHandler(agent.Handle)
	s.agents[vm.Name] = agent
}

func (s *System) buildRelays() error {
	total := s.cfg.TotalNodes()
	for g := 0; g < total; g++ {
		local := s.localOf(g)
		domainPorts := make(map[int]gptp.DomainPorts, s.cfg.NumDomains())
		for d := 0; d < s.cfg.NumDomains(); d++ {
			if local == d {
				// The domain's grandmaster is local: relay from the GM's
				// VM port to the in-site mesh and the redundant VM. Gateway
				// uplink ports are never domain ports — PTP stays in-site.
				masters := make([]int, 0, s.cfg.Nodes-1+s.cfg.VMsPerNode-1)
				for k := 0; k < s.cfg.Nodes-1; k++ {
					masters = append(masters, k)
				}
				for v := 1; v < s.cfg.VMsPerNode; v++ {
					masters = append(masters, s.vmPort(v))
				}
				domainPorts[d] = gptp.DomainPorts{SlavePort: s.vmPort(0), MasterPorts: masters}
				continue
			}
			masters := make([]int, 0, s.cfg.VMsPerNode)
			for v := 0; v < s.cfg.VMsPerNode; v++ {
				masters = append(masters, s.vmPort(v))
			}
			domainPorts[d] = gptp.DomainPorts{SlavePort: s.meshPort(local, d), MasterPorts: masters}
		}
		relay, err := gptp.NewRelay(s.bridges[g], s.shardSched(g), s.streams.Stream("relay/"+itoa(g+1)),
			gptp.RelayConfig{Domains: domainPorts, DefaultLinkDelayNS: float64(s.cfg.LinkPropagation)})
		if err != nil {
			return err
		}
		s.relays = append(s.relays, relay)
	}
	return nil
}

// buildForwarding installs static unicast routes for every VM NIC and the
// measurement VLAN's multicast tree rooted at the measurement node (site 0).
// Cross-site traffic funnels through each site's gateway and along the
// chain; the static tree stays loop-free because only gateways forward
// between sites and non-root in-site switches flood to VM ports only.
func (s *System) buildForwarding() {
	total := s.cfg.TotalNodes()
	lastSite := s.cfg.NumSites() - 1
	for g := 0; g < total; g++ {
		site, local := s.siteOf(g), s.localOf(g)
		br := s.bridges[g]
		for n := 0; n < total; n++ {
			nSite, nLocal := s.siteOf(n), s.localOf(n)
			for v := 0; v < s.cfg.VMsPerNode; v++ {
				addr := netsim.Address("nic/" + VMName(n, v))
				switch {
				case n == g:
					br.AddRoute(addr, s.vmPort(v))
				case nSite == site:
					br.AddRoute(addr, s.meshPort(local, nLocal))
				case local != 0:
					// Remote site, non-gateway switch: toward the gateway.
					br.AddRoute(addr, s.meshPort(local, 0))
				case nSite < site:
					br.AddRoute(addr, s.uplinkToPrev(site))
				default:
					br.AddRoute(addr, s.uplinkToNext(site))
				}
			}
		}
		isRoot := g == s.cfg.MeasurementNode
		switch {
		case isRoot:
			// Root switch: flood to every mesh port and both local VMs.
			for k := 0; k < s.cfg.Nodes-1; k++ {
				br.AddGroupMember(measure.MulticastAddr, k)
			}
			for v := 0; v < s.cfg.VMsPerNode; v++ {
				br.AddGroupMember(measure.MulticastAddr, s.vmPort(v))
			}
			if local == 0 && lastSite > 0 {
				br.AddGroupMember(measure.MulticastAddr, s.uplinkToNext(site))
			}
		case local == 0 && lastSite > 0:
			// Gateways extend the VLAN along the chain and into their site.
			if site > 0 {
				for k := 0; k < s.cfg.Nodes-1; k++ {
					br.AddGroupMember(measure.MulticastAddr, k)
				}
			}
			for v := 0; v < s.cfg.VMsPerNode; v++ {
				br.AddGroupMember(measure.MulticastAddr, s.vmPort(v))
			}
			if site < lastSite {
				br.AddGroupMember(measure.MulticastAddr, s.uplinkToNext(site))
			}
		default:
			// Leaf switches: local VM ports only (loop-free static VLAN).
			for v := 0; v < s.cfg.VMsPerNode; v++ {
				br.AddGroupMember(measure.MulticastAddr, s.vmPort(v))
			}
		}
	}
}

// Start boots relays, nodes and the measurement collector.
func (s *System) Start() error {
	if s.started {
		return fmt.Errorf("core: system already started")
	}
	for _, r := range s.relays {
		if err := r.Start(); err != nil {
			return err
		}
	}
	for _, n := range s.nodes {
		if err := n.Start(); err != nil {
			return err
		}
	}
	if err := s.collector.Start(); err != nil {
		return err
	}
	// WAN tier on the control scheduler; the drift process is armed first
	// so coincident-instant ticks apply the delay walk before the
	// coordinator measures across it.
	if s.wanDrift != nil {
		if err := s.wanDrift.Start(s.control); err != nil {
			return err
		}
	}
	if s.wanCoord != nil {
		if err := s.wanCoord.Start(s.control); err != nil {
			return err
		}
	}
	s.started = true
	return nil
}

// Stop shuts down every periodic activity: relays, monitors, VM stacks,
// phc2sys services and the measurement collector. The scheduler can still
// drain in-flight events afterwards; accumulated results stay readable.
func (s *System) Stop() {
	if !s.started {
		return
	}
	if s.wanCoord != nil {
		s.wanCoord.Stop()
	}
	if s.wanDrift != nil {
		s.wanDrift.Stop()
	}
	s.collector.Stop()
	for _, n := range s.nodes {
		n.Stop()
		for _, vm := range n.VMs() {
			if !vm.Failed() {
				vm.Stack.Fail()
				vm.Phc2sys.Stop()
			}
		}
	}
	for _, r := range s.relays {
		r.Stop()
	}
	// Surface scheduler diagnostics: past-time clamps mean some component
	// asked for an instant that had already elapsed (usually a drift-induced
	// deadline miss) and silently ran late instead.
	var clamps uint64
	for _, sc := range s.scheds {
		clamps += sc.PastClamps()
	}
	if s.fabric != nil {
		clamps += s.control.PastClamps()
	}
	if clamps > 0 {
		s.controlLog().Append(Event{At: s.Now(), Kind: "sched_past_clamps",
			Detail: fmt.Sprintf("%d events clamped to now", clamps)})
	}
	s.started = false
	s.Close()
}

// Close terminates the fabric's persistent shard workers. The system stays
// usable — RunFor/RunUntil keep working, with sharded windows executed
// serially on the calling goroutine — so callers that only want to release
// the goroutines (benchmark iterations, job teardown) need not Stop.
// Idempotent; a no-op on unsharded systems. Stop calls it automatically.
func (s *System) Close() {
	if s.fabric != nil {
		s.fabric.Close()
	}
}

// RunFor advances the simulation by d.
func (s *System) RunFor(d time.Duration) error {
	if s.fabric != nil {
		return s.fabric.RunFor(d)
	}
	return s.control.RunFor(d)
}

// RunUntil advances the simulation to absolute instant t.
func (s *System) RunUntil(t sim.Time) error {
	if s.fabric != nil {
		return s.fabric.RunUntil(t)
	}
	return s.control.RunUntil(t)
}

// Now reports the current simulation instant.
func (s *System) Now() sim.Time {
	if s.fabric != nil {
		return s.fabric.Now()
	}
	return s.control.Now()
}

// Scheduler exposes the control scheduler: the home for fault-injection
// drivers, chaos plans and test hooks. Unsharded it is the simulation's
// only scheduler; sharded, its events fire at barriers between windows,
// never concurrently with shard execution.
func (s *System) Scheduler() *sim.Scheduler { return s.control }

// Fabric exposes the PDES coordinator, nil when running unsharded.
func (s *System) Fabric() *sim.Fabric { return s.fabric }

// Streams exposes the seeded random stream factory.
func (s *System) Streams() *sim.Streams { return s.streams }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Link resolves a named link (chaos.Topology): "sw1-sw2" mesh links, VM
// uplinks by VM name ("c11"). Nil if unknown.
func (s *System) Link(name string) *netsim.Link { return s.linkByName[name] }

// Bridge resolves a named bridge (chaos.Topology): "sw1".."swN".
func (s *System) Bridge(name string) *netsim.Bridge { return s.bridgeByName[name] }

// Links returns every named link (chaos.Topology). The map is the
// system's own index; callers must not mutate it.
func (s *System) Links() map[string]*netsim.Link { return s.linkByName }

// Node returns node i.
func (s *System) Node(i int) *hypervisor.Node { return s.nodes[i] }

// Nodes returns all nodes.
func (s *System) Nodes() []*hypervisor.Node {
	return append([]*hypervisor.Node(nil), s.nodes...)
}

// VM looks up a clock-synchronization VM by name (e.g. "c41").
func (s *System) VM(name string) (*hypervisor.CSVM, bool) {
	vm, ok := s.vms[name]
	return vm, ok
}

// Collector returns the measurement collector.
func (s *System) Collector() *measure.Collector { return s.collector }

// EventLog returns the experiment event log. Sharded, it is a merged view
// rebuilt on every call: entries ordered by timestamp, control-context
// events first among equals (they fire before shard events at the same
// instant), then by shard. Unsharded, it is the live log itself.
func (s *System) EventLog() *EventLog {
	if len(s.logs) == 1 {
		return s.logs[0]
	}
	// Control log last in storage but first among timestamp ties.
	ordered := make([]*EventLog, 0, len(s.logs))
	ordered = append(ordered, s.controlLog())
	ordered = append(ordered, s.logs[:len(s.logs)-1]...)
	return MergeEventLogs(ordered...)
}

// SyncLatencies returns the tracker of observed Sync path latencies.
func (s *System) SyncLatencies() *measure.LatencyTracker { return s.syncLat }

// DriftOffset computes Γ = 2·r_max·S for the configured drift bound.
func (s *System) DriftOffset() time.Duration {
	return clock.DriftOffset(s.cfg.MaxStaticPPB*1e-9, s.cfg.SyncInterval)
}

// ReadingError reports E = d_max − d_min from the Sync latencies observed
// so far (the paper extracts the same quantity from ptp4l's data).
func (s *System) ReadingError() (time.Duration, bool) {
	return s.syncLat.ReadingError()
}

// PrecisionBound instantiates Π(N, f, E, Γ) = u(N, f)(E + Γ) from the
// measured reading error.
func (s *System) PrecisionBound() (time.Duration, bool) {
	e, ok := s.ReadingError()
	if !ok {
		return 0, false
	}
	return fta.Bound(s.cfg.Nodes, s.cfg.F, e, s.DriftOffset()), true
}

// AllInFTOperation reports whether every running stack reached
// fault-tolerant operation.
func (s *System) AllInFTOperation() bool {
	for _, vm := range s.vms {
		if vm.Stack.Running() && vm.Stack.Mode() != ptp4l.ModeFTOperation {
			return false
		}
	}
	return true
}

// TruePrecision is the simulator-omniscient max pairwise CLOCK_SYNCTIME
// disagreement across nodes right now — ground truth for tests,
// unavailable on the real testbed. Multi-site fabrics report the precision
// of site 0 (each site is its own synchronization island).
func (s *System) TruePrecision() (float64, bool) {
	var vals []float64
	for i := 0; i < s.cfg.Nodes && i < len(s.nodes); i++ {
		if v, ok := s.nodes[i].SyncTimeNow(); ok {
			vals = append(vals, v)
		}
	}
	if len(vals) < 2 {
		return 0, false
	}
	var worst float64
	for i := range vals {
		for j := i + 1; j < len(vals); j++ {
			d := vals[i] - vals[j]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst, true
}

// nodeControl adapts a node for the faultinject package.
type nodeControl struct {
	sys *System
	idx int
}

// NodeControls returns fault-injection adapters for every node.
func (s *System) NodeControls() []NodeControlAdapter {
	out := make([]NodeControlAdapter, len(s.nodes))
	for i := range s.nodes {
		out[i] = NodeControlAdapter{&nodeControl{sys: s, idx: i}}
	}
	return out
}

// NodeControlAdapter wraps the unexported adapter so callers outside the
// package can pass it to faultinject.New.
type NodeControlAdapter struct{ *nodeControl }

// ControlName implements faultinject.NodeControl.
func (c *nodeControl) ControlName() string { return c.sys.nodes[c.idx].Name() }

// NumVMs implements faultinject.NodeControl.
func (c *nodeControl) NumVMs() int { return len(c.sys.nodes[c.idx].VMs()) }

// VMFailed implements faultinject.NodeControl.
func (c *nodeControl) VMFailed(i int) bool { return c.sys.nodes[c.idx].VM(i).Failed() }

// InjectFail implements faultinject.NodeControl.
func (c *nodeControl) InjectFail(i int) error { return c.sys.nodes[c.idx].FailVM(i) }

// InjectReboot implements faultinject.NodeControl.
func (c *nodeControl) InjectReboot(i int) error { return c.sys.nodes[c.idx].RebootVM(i) }
