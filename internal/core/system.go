package core

import (
	"fmt"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/fta"
	"gptpfta/internal/gptp"
	"gptpfta/internal/hypervisor"
	"gptpfta/internal/measure"
	"gptpfta/internal/netsim"
	"gptpfta/internal/obs"
	"gptpfta/internal/phc2sys"
	"gptpfta/internal/ptp4l"
	"gptpfta/internal/sim"
)

// System is one fully wired testbed instance.
type System struct {
	cfg     Config
	sched   *sim.Scheduler
	streams *sim.Streams

	bridges []*netsim.Bridge
	links   []*netsim.Link
	// linkByName and bridgeByName expose the topology to the chaos engine:
	// mesh links are named "sw1-sw2" (lower index first), VM uplinks after
	// their VM ("c11"), bridges "sw1".."swN".
	linkByName   map[string]*netsim.Link
	bridgeByName map[string]*netsim.Bridge
	relays       []*gptp.Relay
	nodes        []*hypervisor.Node
	vms          map[string]*hypervisor.CSVM
	agents       map[string]*measure.Agent

	collector *measure.Collector
	log       *EventLog
	syncLat   *measure.LatencyTracker
	obs       *obs.Registry

	started bool
}

// NewSystem builds the testbed described by cfg. Nothing runs until Start.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("core: need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.VMsPerNode < 1 {
		return nil, fmt.Errorf("core: need at least 1 VM per node, got %d", cfg.VMsPerNode)
	}
	if cfg.MeasurementNode < 0 || cfg.MeasurementNode >= cfg.Nodes ||
		cfg.MeasurementVM < 0 || cfg.MeasurementVM >= cfg.VMsPerNode {
		return nil, fmt.Errorf("core: measurement VM c%d%d out of range",
			cfg.MeasurementNode+1, cfg.MeasurementVM+1)
	}

	s := &System{
		cfg:          cfg,
		sched:        sim.NewScheduler(),
		streams:      sim.NewStreams(cfg.Seed),
		vms:          make(map[string]*hypervisor.CSVM),
		agents:       make(map[string]*measure.Agent),
		linkByName:   make(map[string]*netsim.Link),
		bridgeByName: make(map[string]*netsim.Bridge),
		log:          NewEventLog(),
		syncLat:      measure.NewLatencyTracker(),
		obs:          obs.NewRegistry(),
	}
	if err := s.buildBridges(); err != nil {
		return nil, err
	}
	if err := s.buildNodes(); err != nil {
		return nil, err
	}
	if err := s.buildRelays(); err != nil {
		return nil, err
	}
	s.buildForwarding()
	s.instrumentKernel()
	return s, nil
}

// Metrics exposes the system's private metrics registry. Each System owns
// its own registry so the parallel experiment runner never mixes metrics of
// concurrently running simulations. Snapshots are pure reads: the
// instrumentation draws no randomness and schedules nothing, so golden
// digests are unaffected.
func (s *System) Metrics() *obs.Registry { return s.obs }

// instrumentKernel registers gauge funcs over the kernel-level counters the
// components already maintain: scheduler diagnostics, bridge and link
// traffic, and frame-pool hit rate. Sampling happens only at Snapshot, so
// the hot paths pay nothing.
func (s *System) instrumentKernel() {
	reg := s.obs
	reg.GaugeFunc("sim_events_processed", func() float64 { return float64(s.sched.Diag().Processed) })
	reg.GaugeFunc("sim_events_cancelled", func() float64 { return float64(s.sched.Diag().Cancelled) })
	reg.GaugeFunc("sim_past_clamps", func() float64 { return float64(s.sched.Diag().PastClamps) })
	reg.GaugeFunc("sim_events_pending", func() float64 { return float64(s.sched.Diag().Pending) })
	reg.GaugeFunc("netsim_frames_forwarded", func() float64 {
		var n uint64
		for _, b := range s.bridges {
			n += b.Forwarded()
		}
		return float64(n)
	})
	reg.GaugeFunc("netsim_frames_dropped", func() float64 {
		var n uint64
		for _, b := range s.bridges {
			n += b.Dropped()
		}
		return float64(n)
	})
	reg.GaugeFunc("netsim_frames_sent", func() float64 {
		var n uint64
		for _, l := range s.links {
			n += l.Sent()
		}
		return float64(n)
	})
	reg.GaugeFunc("netsim_frames_lost", func() float64 {
		var n uint64
		for _, l := range s.links {
			n += l.Lost()
		}
		return float64(n)
	})
	reg.GaugeFunc("netsim_frames_fault_dropped", func() float64 {
		var n uint64
		for _, l := range s.links {
			n += l.FaultDropped()
		}
		for _, b := range s.bridges {
			n += b.FaultDropped()
		}
		return float64(n)
	})
	// The frame pool is process-global (shared across concurrently running
	// simulations); its hit rate is an aggregate, not per-system.
	reg.GaugeFunc("netsim_pool_hit_rate", func() float64 {
		gets, news, _ := netsim.PoolStats()
		if gets == 0 {
			return 0
		}
		return float64(gets-news) / float64(gets)
	})
}

// meshPort returns the port index on bridge i that faces bridge j.
func (s *System) meshPort(i, j int) int {
	p := 0
	for k := 0; k < s.cfg.Nodes; k++ {
		if k == i {
			continue
		}
		if k == j {
			return p
		}
		p++
	}
	return -1
}

// vmPort returns the port index on a bridge for local VM vm.
func (s *System) vmPort(vm int) int { return s.cfg.Nodes - 1 + vm }

func (s *System) newPHC(name string, staticPPB, bootOffset float64) *clock.PHC {
	osc := clock.NewOscillator(clock.OscillatorConfig{
		StaticPPB:           staticPPB,
		WanderPPBPerSqrtSec: s.cfg.WanderPPBPerSqrtSec,
	}, s.streams.Stream("osc/"+name), s.sched.Now())
	return clock.NewPHC(s.sched, osc, s.streams.Stream("ts/"+name), clock.PHCConfig{
		TimestampJitterNS: s.cfg.TimestampJitterNS,
		InitialOffsetNS:   bootOffset,
	})
}

func (s *System) buildBridges() error {
	ports := s.cfg.Nodes - 1 + s.cfg.VMsPerNode
	residence := map[int]netsim.ResidenceModel{
		netsim.PriorityBestEffort: s.cfg.ResidenceBE,
		netsim.PriorityPTP:        s.cfg.ResidencePTP,
		netsim.PriorityMeasure:    s.cfg.ResidenceMeas,
	}
	for i := 0; i < s.cfg.Nodes; i++ {
		name := "sw" + itoa(i+1)
		static := clock.UniformPPB(s.streams.Stream("static/"+name), s.cfg.MaxStaticPPB)
		br := netsim.NewBridge(name, s.sched, s.streams.Stream("br/"+name),
			s.newPHC(name, static, 0), netsim.BridgeConfig{Ports: ports, Residence: residence})
		s.bridges = append(s.bridges, br)
		s.bridgeByName[name] = br
	}
	// Full mesh between the integrated switches.
	for i := 0; i < s.cfg.Nodes; i++ {
		for j := i + 1; j < s.cfg.Nodes; j++ {
			linkName := fmt.Sprintf("sw%d-sw%d", i+1, j+1)
			link, err := netsim.Connect(s.sched,
				s.streams.Stream("link/"+linkName),
				s.linkConfig(linkName),
				s.bridges[i].Port(s.meshPort(i, j)), s.bridges[j].Port(s.meshPort(j, i)))
			if err != nil {
				return err
			}
			s.links = append(s.links, link)
			s.linkByName[linkName] = link
		}
	}
	return nil
}

// linkConfig builds the shared link parameters plus a dedicated per-link
// loss stream. The loss stream is private to the drop decision (see the
// LinkConfig.LossRNG determinism contract), so installing zero-rate chaos
// loss models leaves the jitter stream — and the golden digests — intact.
func (s *System) linkConfig(name string) netsim.LinkConfig {
	return netsim.LinkConfig{
		Propagation: s.cfg.LinkPropagation,
		JitterNS:    s.cfg.LinkJitterNS,
		LossProb:    s.cfg.LinkLossProb,
		LossRNG:     s.streams.Stream("loss/" + name),
	}
}

func (s *System) buildNodes() error {
	for i := 0; i < s.cfg.Nodes; i++ {
		nodeName := NodeName(i)
		tscOsc := clock.NewOscillator(clock.OscillatorConfig{
			StaticPPB:           clock.UniformPPB(s.streams.Stream("tsc/"+nodeName), s.cfg.MaxStaticPPB),
			WanderPPBPerSqrtSec: s.cfg.WanderPPBPerSqrtSec,
		}, s.streams.Stream("tscosc/"+nodeName), s.sched.Now())
		tsc := clock.NewTSC(s.sched, tscOsc, s.streams.Stream("tscrd/"+nodeName), s.cfg.TSCReadNoiseNS)
		node := hypervisor.NewNode(nodeName, s.sched, tsc, s.cfg.VMsPerNode,
			hypervisor.MonitorConfig{
				Period:          s.cfg.MonitorPeriod,
				StaleAfter:      4 * s.cfg.Phc2sysInterval,
				VoteThresholdNS: s.cfg.VoteThresholdNS,
			},
			func(e hypervisor.Event) {
				s.log.Append(Event{At: s.sched.Now(), Node: e.Node, VM: e.VM, Kind: e.Kind, Detail: e.Detail})
			})
		node.Instrument(s.obs)
		s.nodes = append(s.nodes, node)

		domains := make([]int, s.cfg.NumDomains())
		for d := range domains {
			domains[d] = d
		}
		for v := 0; v < s.cfg.VMsPerNode; v++ {
			vmName := VMName(i, v)
			static := clock.UniformPPB(s.streams.Stream("static/"+vmName), s.cfg.MaxStaticPPB)
			boot := s.streams.Stream("boot/"+vmName).Float64() * s.cfg.BootOffsetMaxNS
			nic := netsim.NewNIC(vmName, s.sched, s.newPHC(vmName, static, boot))
			link, err := netsim.Connect(s.sched, s.streams.Stream("link/"+vmName),
				s.linkConfig(vmName),
				nic.Port(), s.bridges[i].Port(s.vmPort(v)))
			if err != nil {
				return err
			}
			s.links = append(s.links, link)
			s.linkByName[vmName] = link
			gmDomain := -1
			if v == 0 && i < s.cfg.NumDomains() {
				gmDomain = i
			}
			nodeNameCopy, vmNameCopy := nodeName, vmName
			stack, err := ptp4l.New(nic, s.sched, s.streams.Stream("stack/"+vmName), ptp4l.Config{
				Name:                   vmName,
				Domains:                domains,
				GMDomain:               gmDomain,
				InitialDomain:          0,
				F:                      s.cfg.F,
				SyncInterval:           s.cfg.SyncInterval,
				StartupThresholdNS:     s.cfg.StartupThresholdNS,
				ValidityThresholdNS:    s.cfg.ValidityThresholdNS,
				FlagPolicy:             s.cfg.FlagPolicy,
				HoldoverWindow:         s.cfg.HoldoverWindow,
				ReacquireThresholdNS:   s.cfg.ReacquireThresholdNS,
				ReacquireStableCount:   s.cfg.ReacquireStableCount,
				HoldoverMaxSlewPPB:     s.cfg.HoldoverMaxSlewPPB,
				TxTimestampTimeoutProb: s.cfg.TxTimestampTimeoutProb,
				DeadlineMissProb:       s.cfg.DeadlineMissProb,
				SkipStartup:            s.cfg.BaselineClientsOnly,
				DisableDiscipline:      s.cfg.BaselineClientsOnly && gmDomain >= 0,
			}, func(e ptp4l.Event) {
				s.log.Append(Event{At: s.sched.Now(), Node: nodeNameCopy, VM: vmNameCopy, Kind: e.Kind, Detail: e.Detail})
			})
			if err != nil {
				return err
			}
			stack.Instrument(s.obs)
			// Precompute the per-domain tracker keys: the observer runs once
			// per received Sync, and a Sprintf there dominated the system
			// allocation profile.
			syncKeys := make([]string, s.cfg.NumDomains())
			for d := range syncKeys {
				syncKeys[d] = fmt.Sprintf("dom%d->%s", d+1, vmNameCopy)
			}
			stack.SetSyncObserver(func(domain int, latency time.Duration) {
				if domain >= 0 && domain < len(syncKeys) {
					s.syncLat.Observe(syncKeys[domain], latency)
					return
				}
				// Unknown domain (malformed or adversarial Sync): fall back.
				s.syncLat.Observe(fmt.Sprintf("dom%d->%s", domain+1, vmNameCopy), latency)
			})
			p2s := phc2sys.New(s.sched, nic.PHC(), tsc, node.STSHMEM(),
				s.streams.Stream("phc2sys/"+vmName),
				phc2sys.Config{
					Interval: s.cfg.Phc2sysInterval,
					Slot:     v,
					// vCPU preemption between the non-atomic TSC/PHC reads:
					// frequent short slices plus rare long deschedules. This
					// is the calibrated source of the µs-scale precision
					// spikes of Fig. 4a (the paper's "feedback control of
					// software clocks" instability).
					PreemptProb:     0.015,
					PreemptMin:      100 * time.Nanosecond,
					PreemptMax:      1500 * time.Nanosecond,
					LongPreemptProb: 1.2e-4,
					LongPreemptMin:  2500 * time.Nanosecond,
					LongPreemptMax:  9500 * time.Nanosecond,
				})
			vm := &hypervisor.CSVM{
				Name:    vmName,
				Slot:    v,
				Kernel:  s.cfg.KernelFor(vmName),
				Stack:   stack,
				Phc2sys: p2s,
			}
			if err := node.AddVM(vm); err != nil {
				return err
			}
			s.vms[vmName] = vm
			s.installMeasurement(node, vm, i, v)
		}
	}
	return nil
}

// installMeasurement attaches the probe agent or the collector to the VM.
func (s *System) installMeasurement(node *hypervisor.Node, vm *hypervisor.CSVM, nodeIdx, vmIdx int) {
	if nodeIdx == s.cfg.MeasurementNode && vmIdx == s.cfg.MeasurementVM {
		excluded := VMName(s.cfg.MeasurementNode, 0) // c_m1, asymmetric path
		s.collector = measure.NewCollector(vm.Name, s.sched, vm.Stack.NIC(), measure.CollectorConfig{
			Exclude: []string{excluded},
		})
		vm.Stack.SetAuxHandler(s.collector.Handle)
		return
	}
	agent := measure.NewAgent(vm.Name, s.sched, vm.Stack.NIC(), node.SyncTimeNow)
	vm.Stack.SetAuxHandler(agent.Handle)
	s.agents[vm.Name] = agent
}

func (s *System) buildRelays() error {
	for b := 0; b < s.cfg.Nodes; b++ {
		domainPorts := make(map[int]gptp.DomainPorts, s.cfg.NumDomains())
		for d := 0; d < s.cfg.NumDomains(); d++ {
			if b == d {
				// The domain's grandmaster is local: relay from the GM's
				// VM port to the mesh and the redundant VM.
				masters := make([]int, 0, s.cfg.Nodes-1+s.cfg.VMsPerNode-1)
				for k := 0; k < s.cfg.Nodes-1; k++ {
					masters = append(masters, k)
				}
				for v := 1; v < s.cfg.VMsPerNode; v++ {
					masters = append(masters, s.vmPort(v))
				}
				domainPorts[d] = gptp.DomainPorts{SlavePort: s.vmPort(0), MasterPorts: masters}
				continue
			}
			masters := make([]int, 0, s.cfg.VMsPerNode)
			for v := 0; v < s.cfg.VMsPerNode; v++ {
				masters = append(masters, s.vmPort(v))
			}
			domainPorts[d] = gptp.DomainPorts{SlavePort: s.meshPort(b, d), MasterPorts: masters}
		}
		relay, err := gptp.NewRelay(s.bridges[b], s.sched, s.streams.Stream("relay/"+itoa(b+1)),
			gptp.RelayConfig{Domains: domainPorts, DefaultLinkDelayNS: float64(s.cfg.LinkPropagation)})
		if err != nil {
			return err
		}
		s.relays = append(s.relays, relay)
	}
	return nil
}

// buildForwarding installs static unicast routes for every VM NIC and the
// measurement VLAN's multicast tree rooted at the measurement node.
func (s *System) buildForwarding() {
	for b := 0; b < s.cfg.Nodes; b++ {
		for n := 0; n < s.cfg.Nodes; n++ {
			for v := 0; v < s.cfg.VMsPerNode; v++ {
				addr := netsim.Address("nic/" + VMName(n, v))
				if n == b {
					s.bridges[b].AddRoute(addr, s.vmPort(v))
				} else {
					s.bridges[b].AddRoute(addr, s.meshPort(b, n))
				}
			}
		}
		if b == s.cfg.MeasurementNode {
			// Root switch: flood to every mesh port and both local VMs.
			for k := 0; k < s.cfg.Nodes-1; k++ {
				s.bridges[b].AddGroupMember(measure.MulticastAddr, k)
			}
			for v := 0; v < s.cfg.VMsPerNode; v++ {
				s.bridges[b].AddGroupMember(measure.MulticastAddr, s.vmPort(v))
			}
		} else {
			// Leaf switches: local VM ports only (loop-free static VLAN).
			for v := 0; v < s.cfg.VMsPerNode; v++ {
				s.bridges[b].AddGroupMember(measure.MulticastAddr, s.vmPort(v))
			}
		}
	}
}

// Start boots relays, nodes and the measurement collector.
func (s *System) Start() error {
	if s.started {
		return fmt.Errorf("core: system already started")
	}
	for _, r := range s.relays {
		if err := r.Start(); err != nil {
			return err
		}
	}
	for _, n := range s.nodes {
		if err := n.Start(); err != nil {
			return err
		}
	}
	if err := s.collector.Start(); err != nil {
		return err
	}
	s.started = true
	return nil
}

// Stop shuts down every periodic activity: relays, monitors, VM stacks,
// phc2sys services and the measurement collector. The scheduler can still
// drain in-flight events afterwards; accumulated results stay readable.
func (s *System) Stop() {
	if !s.started {
		return
	}
	s.collector.Stop()
	for _, n := range s.nodes {
		n.Stop()
		for _, vm := range n.VMs() {
			if !vm.Failed() {
				vm.Stack.Fail()
				vm.Phc2sys.Stop()
			}
		}
	}
	for _, r := range s.relays {
		r.Stop()
	}
	// Surface scheduler diagnostics: past-time clamps mean some component
	// asked for an instant that had already elapsed (usually a drift-induced
	// deadline miss) and silently ran late instead.
	if n := s.sched.PastClamps(); n > 0 {
		s.log.Append(Event{At: s.sched.Now(), Kind: "sched_past_clamps",
			Detail: fmt.Sprintf("%d events clamped to now", n)})
	}
	s.started = false
}

// RunFor advances the simulation by d.
func (s *System) RunFor(d time.Duration) error { return s.sched.RunFor(d) }

// RunUntil advances the simulation to absolute instant t.
func (s *System) RunUntil(t sim.Time) error { return s.sched.RunUntil(t) }

// Now reports the current simulation instant.
func (s *System) Now() sim.Time { return s.sched.Now() }

// Scheduler exposes the event scheduler (fault-injection drivers, tests).
func (s *System) Scheduler() *sim.Scheduler { return s.sched }

// Streams exposes the seeded random stream factory.
func (s *System) Streams() *sim.Streams { return s.streams }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Link resolves a named link (chaos.Topology): "sw1-sw2" mesh links, VM
// uplinks by VM name ("c11"). Nil if unknown.
func (s *System) Link(name string) *netsim.Link { return s.linkByName[name] }

// Bridge resolves a named bridge (chaos.Topology): "sw1".."swN".
func (s *System) Bridge(name string) *netsim.Bridge { return s.bridgeByName[name] }

// Links returns every named link (chaos.Topology). The map is the
// system's own index; callers must not mutate it.
func (s *System) Links() map[string]*netsim.Link { return s.linkByName }

// Node returns node i.
func (s *System) Node(i int) *hypervisor.Node { return s.nodes[i] }

// Nodes returns all nodes.
func (s *System) Nodes() []*hypervisor.Node {
	return append([]*hypervisor.Node(nil), s.nodes...)
}

// VM looks up a clock-synchronization VM by name (e.g. "c41").
func (s *System) VM(name string) (*hypervisor.CSVM, bool) {
	vm, ok := s.vms[name]
	return vm, ok
}

// Collector returns the measurement collector.
func (s *System) Collector() *measure.Collector { return s.collector }

// EventLog returns the experiment event log.
func (s *System) EventLog() *EventLog { return s.log }

// SyncLatencies returns the tracker of observed Sync path latencies.
func (s *System) SyncLatencies() *measure.LatencyTracker { return s.syncLat }

// DriftOffset computes Γ = 2·r_max·S for the configured drift bound.
func (s *System) DriftOffset() time.Duration {
	return clock.DriftOffset(s.cfg.MaxStaticPPB*1e-9, s.cfg.SyncInterval)
}

// ReadingError reports E = d_max − d_min from the Sync latencies observed
// so far (the paper extracts the same quantity from ptp4l's data).
func (s *System) ReadingError() (time.Duration, bool) {
	return s.syncLat.ReadingError()
}

// PrecisionBound instantiates Π(N, f, E, Γ) = u(N, f)(E + Γ) from the
// measured reading error.
func (s *System) PrecisionBound() (time.Duration, bool) {
	e, ok := s.ReadingError()
	if !ok {
		return 0, false
	}
	return fta.Bound(s.cfg.Nodes, s.cfg.F, e, s.DriftOffset()), true
}

// AllInFTOperation reports whether every running stack reached
// fault-tolerant operation.
func (s *System) AllInFTOperation() bool {
	for _, vm := range s.vms {
		if vm.Stack.Running() && vm.Stack.Mode() != ptp4l.ModeFTOperation {
			return false
		}
	}
	return true
}

// TruePrecision is the simulator-omniscient max pairwise CLOCK_SYNCTIME
// disagreement across nodes right now — ground truth for tests,
// unavailable on the real testbed.
func (s *System) TruePrecision() (float64, bool) {
	var vals []float64
	for _, n := range s.nodes {
		if v, ok := n.SyncTimeNow(); ok {
			vals = append(vals, v)
		}
	}
	if len(vals) < 2 {
		return 0, false
	}
	var worst float64
	for i := range vals {
		for j := i + 1; j < len(vals); j++ {
			d := vals[i] - vals[j]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst, true
}

// nodeControl adapts a node for the faultinject package.
type nodeControl struct {
	sys *System
	idx int
}

// NodeControls returns fault-injection adapters for every node.
func (s *System) NodeControls() []NodeControlAdapter {
	out := make([]NodeControlAdapter, len(s.nodes))
	for i := range s.nodes {
		out[i] = NodeControlAdapter{&nodeControl{sys: s, idx: i}}
	}
	return out
}

// NodeControlAdapter wraps the unexported adapter so callers outside the
// package can pass it to faultinject.New.
type NodeControlAdapter struct{ *nodeControl }

// ControlName implements faultinject.NodeControl.
func (c *nodeControl) ControlName() string { return c.sys.nodes[c.idx].Name() }

// NumVMs implements faultinject.NodeControl.
func (c *nodeControl) NumVMs() int { return len(c.sys.nodes[c.idx].VMs()) }

// VMFailed implements faultinject.NodeControl.
func (c *nodeControl) VMFailed(i int) bool { return c.sys.nodes[c.idx].VM(i).Failed() }

// InjectFail implements faultinject.NodeControl.
func (c *nodeControl) InjectFail(i int) error { return c.sys.nodes[c.idx].FailVM(i) }

// InjectReboot implements faultinject.NodeControl.
func (c *nodeControl) InjectReboot(i int) error { return c.sys.nodes[c.idx].RebootVM(i) }
