package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"gptpfta/internal/faultinject"
	"gptpfta/internal/hypervisor"
	"gptpfta/internal/measure"
	"gptpfta/internal/ptp4l"
)

func buildAndStart(t *testing.T, seed int64, mod func(*Config)) *System {
	t.Helper()
	cfg := NewConfig(seed)
	if mod != nil {
		mod(&cfg)
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("new system: %v", err)
	}
	if err := sys.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return sys
}

func runFor(t *testing.T, sys *System, d time.Duration) {
	t.Helper()
	if err := sys.RunFor(d); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestSystemConvergesAndMeasures(t *testing.T) {
	sys := buildAndStart(t, 101, nil)
	runFor(t, sys, 2*time.Minute)
	if !sys.AllInFTOperation() {
		for name, vm := range sys.vms {
			t.Logf("%s mode=%v", name, vm.Stack.Mode())
		}
		t.Fatal("not all stacks in FT operation after 2 min")
	}
	runFor(t, sys, 3*time.Minute)

	samples := sys.Collector().Samples()
	if len(samples) < 200 {
		t.Fatalf("samples = %d, want ~300 over 5 min", len(samples))
	}
	// Steady-state measured precision: drop the first 2 min of start-up.
	var steady []measure.Sample
	for _, s := range samples {
		if s.AtSec > 150 {
			steady = append(steady, s)
		}
	}
	st := measure.ComputeStats(steady)
	if st.MeanNS > 1500 {
		t.Fatalf("steady-state mean Π* = %.0f ns, want sub-µs-ish: %s", st.MeanNS, st)
	}
	bound, ok := sys.PrecisionBound()
	if !ok {
		t.Fatal("no precision bound measured")
	}
	gamma := sys.Collector().Gamma()
	if v := measure.ViolationCount(steady, float64(bound+gamma)/1); v != 0 {
		t.Fatalf("%d precision samples violate Π+γ=%v in fault-free steady state (%s)", v, bound+gamma, st)
	}
	// True (omniscient) precision agrees with the measured order.
	tp, ok := sys.TruePrecision()
	if !ok {
		t.Fatal("no true precision")
	}
	if tp > float64(bound) {
		t.Fatalf("true precision %v ns exceeds bound %v", tp, bound)
	}
}

func TestSystemBoundsMethodology(t *testing.T) {
	sys := buildAndStart(t, 102, nil)
	runFor(t, sys, 3*time.Minute)
	e, ok := sys.ReadingError()
	if !ok {
		t.Fatal("no reading error observed")
	}
	// The calibration targets the paper's ballpark: E of a few µs.
	if e < 500*time.Nanosecond || e > 20*time.Microsecond {
		t.Fatalf("reading error E = %v, outside plausible calibration", e)
	}
	if g := sys.DriftOffset(); g != 1250*time.Nanosecond {
		t.Fatalf("Γ = %v, want 1.25 µs (2·5ppm·125ms)", g)
	}
	bound, _ := sys.PrecisionBound()
	if bound != 2*(e+1250*time.Nanosecond) {
		t.Fatalf("Π = %v, want 2(E+Γ) with E=%v", bound, e)
	}
	gamma := sys.Collector().Gamma()
	if gamma <= 0 || gamma > e {
		t.Fatalf("γ = %v vs E = %v: measurement VLAN should be tighter than the Sync spread", gamma, e)
	}
	if sys.SyncLatencies().Paths() < 12 {
		t.Fatalf("only %d sync paths observed", sys.SyncLatencies().Paths())
	}
}

func TestSystemVMFailover(t *testing.T) {
	sys := buildAndStart(t, 103, nil)
	runFor(t, sys, 2*time.Minute)
	// Fail the active clock-synchronization VM of dev3 (its GM).
	if err := sys.Node(2).FailVM(0); err != nil {
		t.Fatalf("fail: %v", err)
	}
	runFor(t, sys, 2*time.Second)
	if sys.Node(2).STSHMEM().Active() != 1 {
		t.Fatal("no takeover to the redundant VM")
	}
	// The node keeps serving a CLOCK_SYNCTIME close to the others.
	runFor(t, sys, 30*time.Second)
	tp, ok := sys.TruePrecision()
	if !ok {
		t.Fatal("no true precision")
	}
	bound, _ := sys.PrecisionBound()
	if tp > float64(bound) {
		t.Fatalf("precision %v ns beyond bound %v after takeover", tp, bound)
	}
	events := sys.EventLog().Filter(hypervisor.EventTakeover)
	if len(events) != 1 {
		t.Fatalf("takeover events = %d, want 1", len(events))
	}
	// Reboot restores redundancy.
	if err := sys.Node(2).RebootVM(0); err != nil {
		t.Fatalf("reboot: %v", err)
	}
	runFor(t, sys, 2*time.Minute)
	if sys.Node(2).HealthyVMs() != 2 {
		t.Fatal("redundancy not restored after reboot")
	}
	vm, _ := sys.VM("c31")
	if vm.Stack.Mode() != ptp4l.ModeFTOperation {
		t.Fatalf("rebooted GM stack in %v", vm.Stack.Mode())
	}
}

func TestSystemWithFaultInjector(t *testing.T) {
	sys := buildAndStart(t, 104, nil)
	controls := sys.NodeControls()
	nodes := make([]faultinject.NodeControl, len(controls))
	for i := range controls {
		nodes[i] = controls[i]
	}
	inj, err := faultinject.New(sys.Scheduler(), sys.Streams().Stream("inject"), nodes,
		faultinject.Config{
			GMPeriod:            4 * time.Minute,
			RedundantMinPerHour: 20,
			RedundantMaxPerHour: 30,
			Downtime:            30 * time.Second,
			Start:               2 * time.Minute,
		})
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	if err := inj.Start(); err != nil {
		t.Fatalf("injector start: %v", err)
	}
	runFor(t, sys, 20*time.Minute)
	inj.Stop()

	stats := inj.Stats()
	if stats.GMFailures < 3 {
		t.Fatalf("GM failures = %d, want several in 20 min", stats.GMFailures)
	}
	if stats.TotalFailures == 0 || stats.Reboots == 0 {
		t.Fatalf("injector stats: %+v", stats)
	}
	// The measured precision stays within Π+γ despite the faults.
	bound, ok := sys.PrecisionBound()
	if !ok {
		t.Fatal("no bound")
	}
	gamma := sys.Collector().Gamma()
	var steady []measure.Sample
	for _, s := range sys.Collector().Samples() {
		if s.AtSec > 150 {
			steady = append(steady, s)
		}
	}
	if len(steady) < 500 {
		t.Fatalf("steady samples = %d", len(steady))
	}
	viol := measure.ViolationCount(steady, float64(bound+gamma))
	if viol > len(steady)/100 {
		st := measure.ComputeStats(steady)
		t.Fatalf("%d/%d samples violate Π+γ=%v under fault injection (%s)",
			viol, len(steady), bound+gamma, st)
	}
	if sys.EventLog().Len() == 0 {
		t.Fatal("no events logged")
	}
}

func TestSystemConfigValidation(t *testing.T) {
	cfg := NewConfig(1)
	cfg.Nodes = 1
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("1-node system accepted")
	}
	cfg = NewConfig(1)
	cfg.MeasurementNode = 9
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("out-of-range measurement node accepted")
	}
	cfg = NewConfig(1)
	cfg.VMsPerNode = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("0 VMs per node accepted")
	}
}

func TestSystemDeterminism(t *testing.T) {
	run := func() (float64, int) {
		sys := buildAndStart(t, 777, nil)
		runFor(t, sys, 90*time.Second)
		st := measure.ComputeStats(sys.Collector().Samples())
		return st.MeanNS, sys.EventLog().Len()
	}
	m1, e1 := run()
	m2, e2 := run()
	if m1 != m2 || e1 != e2 {
		t.Fatalf("same seed diverged: mean %v vs %v, events %d vs %d", m1, m2, e1, e2)
	}
}

func TestVMNameAndNodeName(t *testing.T) {
	if VMName(0, 0) != "c11" || VMName(3, 1) != "c42" {
		t.Fatalf("VM names wrong: %s %s", VMName(0, 0), VMName(3, 1))
	}
	if NodeName(1) != "dev2" {
		t.Fatalf("node name wrong: %s", NodeName(1))
	}
}

func TestDiversifyKernels(t *testing.T) {
	cfg := NewConfig(1)
	cfg.DiversifyKernels("c41")
	if cfg.KernelFor("c41") != "v4.19.1" {
		t.Fatalf("c41 kernel = %s, want the vulnerable one", cfg.KernelFor("c41"))
	}
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		k := cfg.KernelFor(VMName(i, 0))
		if seen[k] {
			t.Fatalf("kernel %s reused across GMs", k)
		}
		seen[k] = true
	}
}

func TestEventLog(t *testing.T) {
	l := NewEventLog()
	l.Append(Event{At: 1, Kind: "a"})
	l.Append(Event{At: 2, Kind: "b", Detail: "x"})
	l.Append(Event{At: 3, Kind: "a"})
	if l.Len() != 3 {
		t.Fatal("len wrong")
	}
	if len(l.Filter("a")) != 2 {
		t.Fatal("filter wrong")
	}
	if len(l.Window(2, 3)) != 2 {
		t.Fatal("window wrong")
	}
	if l.CountsByKind()["a"] != 2 {
		t.Fatal("counts wrong")
	}
	if l.CountsByKindAndDetail()["b/x"] != 1 {
		t.Fatal("detail counts wrong")
	}
	if k := l.Kinds(); len(k) != 2 || k[0] != "a" {
		t.Fatalf("kinds wrong: %v", k)
	}
	if l.Events()[0].String() == "" {
		t.Fatal("string empty")
	}
}

func TestTruePrecisionFiniteAndPositive(t *testing.T) {
	sys := buildAndStart(t, 105, nil)
	runFor(t, sys, 2*time.Minute)
	tp, ok := sys.TruePrecision()
	if !ok || math.IsNaN(tp) || tp < 0 {
		t.Fatalf("true precision %v/%v", tp, ok)
	}
}

func TestSystemToleratesFrameLoss(t *testing.T) {
	sys := buildAndStart(t, 106, func(c *Config) {
		c.LinkLossProb = 0.01 // 1% loss on every link
	})
	runFor(t, sys, 4*time.Minute)
	if !sys.AllInFTOperation() {
		t.Fatal("system did not converge under 1% frame loss")
	}
	bound, ok := sys.PrecisionBound()
	if !ok {
		t.Fatal("no bound")
	}
	gamma := sys.Collector().Gamma()
	var steady []measure.Sample
	for _, s := range sys.Collector().Samples() {
		if s.AtSec > 120 {
			steady = append(steady, s)
		}
	}
	if len(steady) < 50 {
		t.Fatalf("steady samples = %d (probes lost entirely?)", len(steady))
	}
	if v := measure.ViolationCount(steady, float64(bound+gamma)); v > len(steady)/50 {
		st := measure.ComputeStats(steady)
		t.Fatalf("%d/%d violations under frame loss: %s", v, len(steady), st)
	}
}

func TestSystemStop(t *testing.T) {
	sys := buildAndStart(t, 107, nil)
	runFor(t, sys, 30*time.Second)
	samples := len(sys.Collector().Samples())
	sys.Stop()
	// The queue drains to empty: every ticker stopped.
	if err := sys.Scheduler().Run(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := len(sys.Collector().Samples()); got > samples+1 {
		t.Fatalf("collector kept sampling after Stop: %d -> %d", samples, got)
	}
	if sys.Scheduler().Pending() != 0 {
		t.Fatalf("pending events after Stop+drain: %d", sys.Scheduler().Pending())
	}
	sys.Stop() // idempotent
	// Double start after stop is rejected (one-shot lifecycle).
	if err := sys.Start(); err != nil {
		t.Logf("restart after stop: %v (acceptable either way)", err)
	}
}

// TestSimultaneousCrossNodeFailures exercises the paper's note that "up to
// four clock synchronization VMs can fail simultaneously on separate
// nodes" — one VM per node at once is within the fault hypothesis.
func TestSimultaneousCrossNodeFailures(t *testing.T) {
	sys := buildAndStart(t, 108, nil)
	runFor(t, sys, 2*time.Minute)
	// Fail the GM on dev1/dev3 and the redundant VM on dev2/dev4 — four
	// simultaneous fail-silent VMs, all on distinct nodes.
	for _, f := range []struct{ node, vm int }{{0, 0}, {1, 1}, {2, 0}, {3, 1}} {
		if err := sys.Node(f.node).FailVM(f.vm); err != nil {
			t.Fatalf("fail dev%d vm%d: %v", f.node+1, f.vm+1, err)
		}
	}
	runFor(t, sys, time.Minute)
	// Every node still serves CLOCK_SYNCTIME and the ensemble stays
	// within the bound.
	bound, _ := sys.PrecisionBound()
	tp, ok := sys.TruePrecision()
	if !ok {
		t.Fatal("a node lost CLOCK_SYNCTIME")
	}
	if tp > float64(bound) {
		t.Fatalf("precision %v ns beyond bound %v with 4 cross-node failures", tp, bound)
	}
	// Reboot everyone; redundancy recovers.
	for _, f := range []struct{ node, vm int }{{0, 0}, {1, 1}, {2, 0}, {3, 1}} {
		if err := sys.Node(f.node).RebootVM(f.vm); err != nil {
			t.Fatalf("reboot: %v", err)
		}
	}
	runFor(t, sys, 2*time.Minute)
	for i, n := range sys.Nodes() {
		if n.HealthyVMs() != 2 {
			t.Fatalf("dev%d healthy VMs = %d after reboots", i+1, n.HealthyVMs())
		}
	}
}

// TestMeasurementVMFailure: when the measurement VM itself fails, the
// series pauses and resumes after reboot — the instrumentation is not a
// single point of failure for the system itself.
func TestMeasurementVMFailure(t *testing.T) {
	sys := buildAndStart(t, 109, nil)
	runFor(t, sys, 90*time.Second)
	before := len(sys.Collector().Samples())
	if err := sys.Node(1).FailVM(1); err != nil { // c22, the measurement VM
		t.Fatal(err)
	}
	runFor(t, sys, 30*time.Second)
	during := len(sys.Collector().Samples())
	if during > before+2 {
		t.Fatalf("samples advanced (%d -> %d) while the measurement VM was down", before, during)
	}
	// The system itself is unaffected: true precision stays bounded.
	bound, _ := sys.PrecisionBound()
	if tp, ok := sys.TruePrecision(); !ok || tp > float64(bound) {
		t.Fatalf("system degraded by losing its probe VM: %v/%v", tp, ok)
	}
	if err := sys.Node(1).RebootVM(1); err != nil {
		t.Fatal(err)
	}
	runFor(t, sys, time.Minute)
	after := len(sys.Collector().Samples())
	if after <= during {
		t.Fatal("measurement did not resume after reboot")
	}
}

// TestGMAndRedundantStaggeredFailures: the GM fails, the redundant VM
// takes over, the GM reboots, then the redundant VM fails — the node must
// hand CLOCK_SYNCTIME back without losing the bound.
func TestGMAndRedundantStaggeredFailures(t *testing.T) {
	sys := buildAndStart(t, 110, nil)
	runFor(t, sys, 2*time.Minute)
	node := sys.Node(3) // dev4
	if err := node.FailVM(0); err != nil {
		t.Fatal(err)
	}
	runFor(t, sys, 45*time.Second)
	if err := node.RebootVM(0); err != nil {
		t.Fatal(err)
	}
	runFor(t, sys, 2*time.Minute) // c41 resynchronizes
	if err := node.FailVM(1); err != nil {
		t.Fatal(err)
	}
	runFor(t, sys, 30*time.Second)
	if node.STSHMEM().Active() != 0 {
		t.Fatal("CLOCK_SYNCTIME not handed back to the rebooted GM VM")
	}
	bound, _ := sys.PrecisionBound()
	if tp, ok := sys.TruePrecision(); !ok || tp > float64(bound) {
		t.Fatalf("bound lost across the staggered failover chain: %v", tp)
	}
}

func TestEventLogWriteCSV(t *testing.T) {
	l := NewEventLog()
	l.Append(Event{At: 125000000, Node: "dev1", VM: "c11", Kind: "vm_failed"})
	l.Append(Event{At: 250000000, Node: "dev1", VM: "c12", Kind: "takeover", Detail: "replacing c11"})
	var b strings.Builder
	if err := l.WriteCSV(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	for _, want := range []string{"at_ns,node,vm,kind,detail", "125000000,dev1,c11,vm_failed,", "replacing c11"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestSystemMetricsSnapshot(t *testing.T) {
	sys := buildAndStart(t, 103, nil)
	runFor(t, sys, 30*time.Second)

	byName := map[string]int{}
	var offsetObservations uint64
	for _, m := range sys.Metrics().Snapshot() {
		byName[m.Name]++
		if m.Name == "ptp4l_offset_ns" && m.Histogram != nil {
			offsetObservations += m.Histogram.Count
		}
	}
	// One offset histogram per (VM, domain), one FTA counter per VM, one
	// detection counter per node; kernel and netsim gauges are singletons.
	cfg := sys.Config()
	vms := cfg.Nodes * cfg.VMsPerNode
	for name, want := range map[string]int{
		"ptp4l_offset_ns":               vms * cfg.NumDomains(),
		"ptp4l_fta_aggregations":        vms,
		"hypervisor_monitor_detections": cfg.Nodes,
		"sim_events_processed":          1,
		"netsim_frames_forwarded":       1,
		"netsim_frames_sent":            1,
	} {
		if byName[name] != want {
			t.Errorf("%s: %d series, want %d", name, byName[name], want)
		}
	}
	if offsetObservations == 0 {
		t.Error("no offset samples observed after 30 s of sync traffic")
	}
	// GaugeFunc values must reflect the live kernel counters.
	for _, m := range sys.Metrics().Snapshot() {
		if m.Name == "sim_events_processed" && m.Value <= 0 {
			t.Errorf("sim_events_processed = %v, want > 0", m.Value)
		}
		if m.Name == "netsim_frames_sent" && m.Value <= 0 {
			t.Errorf("netsim_frames_sent = %v, want > 0", m.Value)
		}
	}
}
