package core

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := NewConfig(99)
	cfg.DiversifyKernels("c41")
	cfg.LinkLossProb = 0.001
	cfg.DomainCount = 3
	cfg.BaselineClientsOnly = true

	var b strings.Builder
	if err := cfg.WriteJSON(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadConfigJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(cfg, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", cfg, got)
	}
}

func TestConfigJSONFlagPolicyNames(t *testing.T) {
	cfg := NewConfig(1)
	cfg.FlagPolicy = 0 // zero value serialises as "monitor"
	var b strings.Builder
	if err := cfg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"flagPolicy": "monitor"`) {
		t.Fatalf("output: %s", b.String())
	}
	if _, err := ReadConfigJSON(strings.NewReader(strings.Replace(b.String(), "monitor", "bogus", 1))); err == nil {
		t.Fatal("bogus flag policy accepted")
	}
}

func TestConfigJSONRejectsUnknownFields(t *testing.T) {
	if _, err := ReadConfigJSON(strings.NewReader(`{"bogusField": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestConfigFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	cfg := NewConfig(7)
	if err := cfg.SaveConfigFile(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadConfigFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Seed != 7 || got.SyncInterval != cfg.SyncInterval {
		t.Fatalf("loaded config differs: %+v", got)
	}
	// A loaded config builds a working system.
	if _, err := NewSystem(got); err != nil {
		t.Fatalf("system from loaded config: %v", err)
	}
	if _, err := LoadConfigFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDescribeTopology(t *testing.T) {
	sys, err := NewSystem(NewConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	out := sys.DescribeTopology()
	for _, want := range []string{
		"4 nodes", "grandmaster of dom1", "sw4", "measurement VLAN",
		"slave port", "c42", "external port configuration",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("topology output missing %q:\n%s", want, out)
		}
	}
	for _, donotwant := range []string{"site", "WAN"} {
		if strings.Contains(out, donotwant) {
			t.Fatalf("single-site topology output mentions %q:\n%s", donotwant, out)
		}
	}
}

func TestDescribeTopologyMultiSite(t *testing.T) {
	cfg := ScaleConfig(1, 3, 2, 1, 1)
	cfg.WanSync.Enabled = true
	cfg.WanSync.F = 1
	cfg.WanSync.Drift.Enabled = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := sys.DescribeTopology()
	for _, want := range []string{
		"wide-area fabric: 3 sites",
		"site 0 (gateway sw1)",
		"site 2 (gateway sw5)",
		"WAN uplink to site 1",
		"WAN gateway chain",
		"sw1-sw3 (site 0 <-> site 1)",
		"sw3-sw5 (site 1 <-> site 2)",
		"asymmetry",
		"site-level FTA: enabled, f = 1, tolerable site failures min(f, ⌊(N−1)/2⌋) = 1",
		"delay drift on",
		"site 1 dom2 (GM c41)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("multi-site topology output missing %q:\n%s", want, out)
		}
	}
}
