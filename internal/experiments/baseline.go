package experiments

import (
	"fmt"
	"time"

	"gptpfta/internal/attack"
	"gptpfta/internal/core"
	"gptpfta/internal/fta"
	"gptpfta/internal/measure"
	"gptpfta/internal/obs"
	"gptpfta/internal/sim"
)

// BaselineConfig parameterises the ablation runs.
type BaselineConfig struct {
	Seed     int64         `json:"seed"`
	Duration time.Duration `json:"duration,omitempty"`
	// Shards runs every variant on a sharded PDES kernel (1 = the legacy
	// single scheduler). Results are bit-identical at every shard count.
	Shards int `json:"shards,omitempty"`
}

func (c BaselineConfig) withDefaults() BaselineConfig {
	if c.Duration <= 0 {
		c.Duration = 20 * time.Minute
	}
	c.Shards = defaultShards(c.Shards)
	return c
}

// Validate implements Validator.
func (c BaselineConfig) Validate() error {
	return firstErr(
		checkDurations(field{"duration", c.Duration}),
		checkShards(defaultShards(c.Shards)),
	)
}

// sysConfig builds the paper system config for one ablation variant.
func (c BaselineConfig) sysConfig() core.Config {
	sc := core.NewConfig(c.Seed)
	sc.Shards = c.Shards
	return sc
}

// ComparisonResult contrasts an ablated variant against the paper's
// architecture on the same seed and horizon.
type ComparisonResult struct {
	ObsSnapshot
	Name string
	// OursStats / VariantStats are the steady-state precision statistics.
	OursStats, VariantStats measure.Stats
	// OursViolations / VariantViolations count samples beyond Π+γ.
	OursViolations, VariantViolations int
	OursSamples, VariantSamples       int
	BoundNS                           float64
}

// Summary renders the verdict.
func (r ComparisonResult) Summary() string {
	return fmt.Sprintf("%s: ours avg %.0fns (%d/%d beyond bound) vs variant avg %.0fns (%d/%d beyond bound)",
		r.Name, r.OursStats.MeanNS, r.OursViolations, r.OursSamples,
		r.VariantStats.MeanNS, r.VariantViolations, r.VariantSamples)
}

// Rows renders the ours-vs-variant table.
func (r ComparisonResult) Rows() [][]string {
	row := func(name string, s measure.Stats, violations, samples int) []string {
		return []string{name, fmt.Sprintf("%.0f", s.MeanNS), fmt.Sprintf("%.0f", s.MaxNS),
			fmt.Sprintf("%d", violations), fmt.Sprintf("%d", samples), fmt.Sprintf("%.0f", r.BoundNS)}
	}
	return [][]string{
		{"variant", "mean_ns", "max_ns", "violations", "samples", "limit_ns"},
		row("ours", r.OursStats, r.OursViolations, r.OursSamples),
		row("variant", r.VariantStats, r.VariantViolations, r.VariantSamples),
	}
}

func steadyStats(samples []measure.Sample, settleSec, boundNS float64) (measure.Stats, int, int) {
	var steady []measure.Sample
	for _, s := range samples {
		if s.AtSec >= settleSec {
			steady = append(steady, s)
		}
	}
	return measure.ComputeStats(steady), measure.ViolationCount(steady, boundNS), len(steady)
}

// comparisonObs merges the metrics of the two systems a comparison ran,
// distinguishing the series with a "variant" label.
func comparisonObs(ours, variant *core.System) []obs.Metric {
	ms := obs.AddLabel(ours.Metrics().Snapshot(), "variant", "ours")
	return append(ms, obs.AddLabel(variant.Metrics().Snapshot(), "variant", "variant")...)
}

func runSystem(cfg core.Config, d time.Duration, drive func(*core.System)) (*core.System, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}
	if drive != nil {
		drive(sys)
	}
	if err := sys.RunFor(d); err != nil {
		return nil, err
	}
	return sys, nil
}

// BaselineNoStartupSync reproduces the paper's criticism of the
// Kyriakakis-style end system (§I): multi-domain aggregation restricted to
// PTP clients, with no protocol to synchronize the grandmaster clocks of
// different domains initially — grandmaster nodes free-run and the
// grandmasters never agree.
func BaselineNoStartupSync(cfg BaselineConfig) (*ComparisonResult, error) {
	cfg = cfg.withDefaults()

	ours, err := runSystem(cfg.sysConfig(), cfg.Duration, nil)
	if err != nil {
		return nil, err
	}
	baseCfg := cfg.sysConfig()
	baseCfg.BaselineClientsOnly = true
	base, err := runSystem(baseCfg, cfg.Duration, nil)
	if err != nil {
		return nil, err
	}

	bound, _ := ours.PrecisionBound()
	gamma := ours.Collector().Gamma()
	limit := float64(bound + gamma)
	settle := (60 * time.Second).Seconds()

	res := &ComparisonResult{Name: "no-startup-sync baseline (clients only)", BoundNS: limit}
	res.OursStats, res.OursViolations, res.OursSamples = steadyStats(ours.Collector().Samples(), settle, limit)
	res.VariantStats, res.VariantViolations, res.VariantSamples = steadyStats(base.Collector().Samples(), settle, limit)
	res.Obs = comparisonObs(ours, base)
	return res, nil
}

// AblationSingleDomainVsFTA contrasts plain single-domain gPTP against the
// paper's M = 4 multi-domain FTA when one grandmaster turns Byzantine:
// without the FTA the falsified timestamps propagate unmasked.
func AblationSingleDomainVsFTA(cfg BaselineConfig) (*ComparisonResult, error) {
	cfg = cfg.withDefaults()
	attackAt := cfg.Duration / 3

	compromise := func(target string) func(*core.System) {
		return func(sys *core.System) {
			sys.Scheduler().At(sim.Time(attackAt), func() {
				if vm, ok := sys.VM(target); ok {
					vm.Stack.Compromise(attack.MaliciousOriginOffsetNS)
				}
			})
		}
	}

	ours, err := runSystem(cfg.sysConfig(), cfg.Duration, compromise("c41"))
	if err != nil {
		return nil, err
	}
	singleCfg := cfg.sysConfig()
	singleCfg.DomainCount = 1
	singleCfg.F = 0
	single, err := runSystem(singleCfg, cfg.Duration, compromise("c11"))
	if err != nil {
		return nil, err
	}

	bound, _ := ours.PrecisionBound()
	gamma := ours.Collector().Gamma()
	limit := float64(bound + gamma)
	settle := (60 * time.Second).Seconds()

	res := &ComparisonResult{Name: "single-domain gPTP vs multi-domain FTA under one Byzantine GM", BoundNS: limit}
	res.OursStats, res.OursViolations, res.OursSamples = steadyStats(ours.Collector().Samples(), settle, limit)
	res.VariantStats, res.VariantViolations, res.VariantSamples = steadyStats(single.Collector().Samples(), settle, limit)
	res.Obs = comparisonObs(ours, single)
	return res, nil
}

// AblationFlagPolicy contrasts the FTSHMEM validity-flag policies under a
// single Byzantine grandmaster: FlagMonitor (the paper's configuration,
// masking via the FTA alone) against FlagExclude (outliers removed before
// averaging).
func AblationFlagPolicy(cfg BaselineConfig) (*ComparisonResult, error) {
	cfg = cfg.withDefaults()
	attackAt := cfg.Duration / 3

	drive := func(sys *core.System) {
		sys.Scheduler().At(sim.Time(attackAt), func() {
			if vm, ok := sys.VM("c41"); ok {
				vm.Stack.Compromise(attack.MaliciousOriginOffsetNS)
			}
		})
	}
	monitorCfg := cfg.sysConfig()
	monitorCfg.FlagPolicy = fta.FlagMonitor
	monitor, err := runSystem(monitorCfg, cfg.Duration, drive)
	if err != nil {
		return nil, err
	}
	excludeCfg := cfg.sysConfig()
	excludeCfg.FlagPolicy = fta.FlagExclude
	exclude, err := runSystem(excludeCfg, cfg.Duration, drive)
	if err != nil {
		return nil, err
	}

	bound, _ := monitor.PrecisionBound()
	gamma := monitor.Collector().Gamma()
	limit := float64(bound + gamma)
	settle := (60 * time.Second).Seconds()

	res := &ComparisonResult{Name: "flag policy: monitor (ours) vs exclude", BoundNS: limit}
	res.OursStats, res.OursViolations, res.OursSamples = steadyStats(monitor.Collector().Samples(), settle, limit)
	res.VariantStats, res.VariantViolations, res.VariantSamples = steadyStats(exclude.Collector().Samples(), settle, limit)
	res.Obs = comparisonObs(monitor, exclude)
	return res, nil
}
