package experiments

import "context"

// lift adapts a ctx-less typed entrypoint to the registry's run signature,
// converting a typed-nil result into a nil Result interface on error.
func lift[C any, R Result](run func(C) (R, error)) func(context.Context, C) (Result, error) {
	return func(_ context.Context, cfg C) (Result, error) {
		res, err := run(cfg)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}

// liftCtx does the same for ctx-aware entrypoints.
func liftCtx[C any, R Result](run func(context.Context, C) (R, error)) func(context.Context, C) (Result, error) {
	return func(ctx context.Context, cfg C) (Result, error) {
		res, err := run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}

// The package registry: every study in the repository, dispatchable by
// name. The command-line tools and the runner resolve experiments through
// Lookup/All instead of hand-wired switch blocks.
func init() {
	RegisterFunc("bounds",
		"§III-A3 bound methodology: E, Γ, u(N,f), Π, γ from measured latencies",
		func(seed int64) BoundsConfig { return BoundsConfig{Seed: seed, Shards: 1} },
		lift(Bounds))

	RegisterFunc("resilience",
		"Fig. 3 cyber-resilience: CVE exploits on two grandmasters, identical or diverse kernels",
		func(seed int64) CyberResilienceConfig { return CyberResilienceConfig{Seed: seed, Shards: 1} },
		lift(CyberResilience))

	RegisterFunc("faultinjection",
		"Fig. 4/5 fault-injection campaign: rotating GM shutdowns plus random redundant-VM failures",
		func(seed int64) FaultInjectionConfig { return FaultInjectionConfig{Seed: seed, Shards: 1} },
		lift(FaultInjection))

	RegisterFunc("baseline",
		"A1 ablation: clients-only aggregation without initial grandmaster synchronization",
		func(seed int64) BaselineConfig { return BaselineConfig{Seed: seed, Shards: 1} },
		lift(BaselineNoStartupSync))

	RegisterFunc("single-domain",
		"A2 ablation: plain single-domain gPTP vs the multi-domain FTA under one Byzantine GM",
		func(seed int64) BaselineConfig { return BaselineConfig{Seed: seed, Shards: 1} },
		lift(AblationSingleDomainVsFTA))

	RegisterFunc("flag-policy",
		"A3 ablation: FTSHMEM validity-flag policies (monitor vs exclude) under one Byzantine GM",
		func(seed int64) BaselineConfig { return BaselineConfig{Seed: seed, Shards: 1} },
		lift(AblationFlagPolicy))

	RegisterFunc("bmca",
		"A4 ablation: BMCA grandmaster re-election gap vs static external port configuration",
		func(seed int64) BMCAReconvergenceConfig { return BMCAReconvergenceConfig{Seed: seed} },
		lift(BMCAReconvergence))

	RegisterFunc("voting",
		"A5 ablation: 2f+1 fail-consistent monitor voting vs freshness-only detection",
		func(seed int64) VotingConfig { return VotingConfig{Seed: seed, Shards: 1} },
		lift(VotingFailover))

	RegisterFunc("recovery",
		"§IV future work: GNU/Linux vs unikernel reboot time → redundancy exposure",
		func(seed int64) RecoveryConfig { return RecoveryConfig{Seed: seed, Shards: 1} },
		liftCtx(RecoveryComparison))

	RegisterFunc("interval",
		"synchronization-interval sweep: the Γ = 2·r_max·S bound/precision trade-off",
		func(seed int64) IntervalSweepConfig { return IntervalSweepConfig{Seed: seed, Shards: 1} },
		liftCtx(IntervalSweep))

	RegisterFunc("domains",
		"domain-count sweep: Byzantine masking across M = 2, 3, 4 domains",
		func(seed int64) DomainSweepConfig { return DomainSweepConfig{Seed: seed, Shards: 1} },
		liftCtx(DomainSweep))

	RegisterFunc("dynamic",
		"fully dynamic 802.1AS over the redundant mesh: re-election outage end to end",
		func(seed int64) DynamicMeshConfig { return DynamicMeshConfig{Seed: seed} },
		lift(DynamicMeshStudy))

	RegisterFunc("onestep",
		"one-step vs two-step Sync through a relay: accuracy parity at half the event traffic",
		func(seed int64) OneStepStudyConfig { return OneStepStudyConfig{Seed: seed} },
		lift(OneStepStudy))

	RegisterFunc("tas",
		"TSN egress (802.1Qbv + preemption) vs commodity FIFO under best-effort bursts",
		func(seed int64) TASStudyConfig { return TASStudyConfig{Seed: seed} },
		lift(TASStudy))

	RegisterFunc("netchaos",
		"network chaos campaign: burst-loss and partition scenario plans vs the precision bounds, with servo holdover",
		func(seed int64) NetworkChaosConfig { return NetworkChaosConfig{Seed: seed, Shards: 1} },
		liftCtx(NetworkChaos))

	RegisterFunc("attacks",
		"adversarial campaign: Byzantine GM falsification and on-path Sync delay attacks vs the analytic 2f+1 resilience bound",
		func(seed int64) AttacksConfig { return AttacksConfig{Seed: seed, Shards: 1} },
		liftCtx(Attacks))

	RegisterFunc("wansites",
		"wide-area campaign: site failures and WAN asymmetry vs the site-level min(f, ⌊(N−1)/2⌋) quorum, with cross-site holdover",
		func(seed int64) WanSitesConfig { return WanSitesConfig{Seed: seed, Shards: 1} },
		liftCtx(WanSites))

	RegisterFunc("multiseed",
		"the headline fault-injection result re-run across independent seeds",
		func(seed int64) MultiSeedConfig { return MultiSeedConfig{CampaignSeed: seed, SeedCount: 5, Shards: 1} },
		liftCtx(MultiSeedValidation))
}
