// Package experiments contains the canned reproductions of every figure in
// the paper's evaluation (Fig. 3a, 3b, 4a, 4b, 5), the §III-A3 bounds
// methodology, and the ablation studies listed in DESIGN.md. Each
// experiment builds a core.System, drives the scenario, and returns a
// structured result that the command-line tools render and the benchmark
// harness regenerates.
package experiments

import (
	"fmt"
	"strconv"
	"time"

	"gptpfta/internal/attack"
	"gptpfta/internal/chaos"
	"gptpfta/internal/core"
	"gptpfta/internal/measure"
	"gptpfta/internal/sim"
)

// CyberResilienceConfig parameterises the Fig. 3 experiments. Durations are
// nanoseconds on the wire.
type CyberResilienceConfig struct {
	Seed int64 `json:"seed"`
	// Duration of the run; the paper uses 1 h. The attack instants scale
	// with the duration (the paper attacks at 00:21:42 and 00:31:52).
	Duration time.Duration `json:"duration,omitempty"`
	// DiverseKernels selects the Fig. 3b scenario: only c41 keeps the
	// exploitable kernel; Fig. 3a (false) uses identical kernels.
	DiverseKernels bool `json:"diverse_kernels,omitempty"`
	// ChaosPlan optionally runs a network chaos scenario alongside the
	// exploits.
	ChaosPlan *chaos.Plan `json:"chaos_plan,omitempty"`
	// HoldoverWindow arms the ptp4l holdover watchdog for chaos-composed
	// runs (zero keeps the paper's free-run default).
	HoldoverWindow time.Duration `json:"holdover_window,omitempty"`
	// Shards runs the simulation on a sharded PDES kernel (1 = the legacy
	// single scheduler). Results are bit-identical at every shard count.
	Shards int `json:"shards,omitempty"`
}

func (c CyberResilienceConfig) withDefaults() CyberResilienceConfig {
	if c.Duration <= 0 {
		c.Duration = time.Hour
	}
	c.Shards = defaultShards(c.Shards)
	return c
}

// Validate implements Validator.
func (c CyberResilienceConfig) Validate() error {
	return firstErr(
		checkDurations(
			field{"duration", c.Duration},
			field{"holdover_window", c.HoldoverWindow}),
		checkShards(defaultShards(c.Shards)),
	)
}

// CyberResilienceResult is the Fig. 3 output.
type CyberResilienceResult struct {
	ObsSnapshot
	Config CyberResilienceConfig

	// Samples is the per-second measured precision Π*_s.
	Samples []measure.Sample
	// Windows aggregates the series for plotting.
	Windows []measure.Window

	// Bound parameters (§III-B).
	ReadingError time.Duration
	DriftOffset  time.Duration
	Bound        time.Duration // Π = 2(E+Γ)
	Gamma        time.Duration

	// Attack timeline.
	FirstAttackAt, SecondAttackAt time.Duration
	ExploitResults                []attack.Result

	// Violation accounting, split at the second attack.
	ViolationsBeforeSecond int
	ViolationsAfterSecond  int
	SamplesBeforeSecond    int
	SamplesAfterSecond     int
	MaxAfterSecondNS       float64
}

// BoundViolatedAfterSecondAttack reports the experiment's headline verdict.
func (r CyberResilienceResult) BoundViolatedAfterSecondAttack() bool {
	return r.ViolationsAfterSecond > r.SamplesAfterSecond/4
}

// Summary renders the headline verdict like the paper's §III-B narrative.
func (r CyberResilienceResult) Summary() string {
	kernels := "identical Linux kernel versions"
	if r.Config.DiverseKernels {
		kernels = "diverse Linux kernel versions"
	}
	verdict := "the FTA masked every attack; the bound held"
	if r.BoundViolatedAfterSecondAttack() {
		verdict = "after the second compromised GM the measured precision violated the bound — synchronization lost"
	}
	return fmt.Sprintf("cyber-resilience (%s): Π = %v, γ = %v; first attack masked (%d/%d violations before second attack); %s",
		kernels, r.Bound, r.Gamma, r.ViolationsBeforeSecond, r.SamplesBeforeSecond, verdict)
}

// Rows renders the violation accounting around both attacks.
func (r CyberResilienceResult) Rows() [][]string {
	kernels := "identical"
	if r.Config.DiverseKernels {
		kernels = "diverse"
	}
	return [][]string{
		{"kernels", "phase", "samples", "violations", "max_ns", "bound_ns", "gamma_ns"},
		{kernels, "before-second-attack",
			strconv.Itoa(r.SamplesBeforeSecond), strconv.Itoa(r.ViolationsBeforeSecond),
			"", strconv.FormatInt(r.Bound.Nanoseconds(), 10), strconv.FormatInt(r.Gamma.Nanoseconds(), 10)},
		{kernels, "after-second-attack",
			strconv.Itoa(r.SamplesAfterSecond), strconv.Itoa(r.ViolationsAfterSecond),
			fmt.Sprintf("%.0f", r.MaxAfterSecondNS),
			strconv.FormatInt(r.Bound.Nanoseconds(), 10), strconv.FormatInt(r.Gamma.Nanoseconds(), 10)},
	}
}

// CyberResilience runs the Fig. 3a / Fig. 3b experiment: an attacker with
// user credentials on the grandmasters of dom1 (c11) and dom4 (c41)
// escalates via CVE-2018-18955 and replaces benign ptp4l instances with
// malicious ones shifting preciseOriginTimestamps by −24 µs.
func CyberResilience(cfg CyberResilienceConfig) (*CyberResilienceResult, error) {
	cfg = cfg.withDefaults()
	sysCfg := core.NewConfig(cfg.Seed)
	sysCfg.HoldoverWindow = cfg.HoldoverWindow
	sysCfg.Shards = cfg.Shards
	if cfg.DiverseKernels {
		sysCfg.DiversifyKernels("c41")
	}
	sys, err := core.NewSystem(sysCfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}
	var eng *chaos.Engine
	if cfg.ChaosPlan != nil {
		eng, err = chaos.New(sys.Scheduler(), sys, cfg.ChaosPlan)
		if err != nil {
			return nil, err
		}
		eng.Instrument(sys.Metrics())
		if err := eng.Start(); err != nil {
			return nil, err
		}
	}

	// Scale the paper's attack instants (21:42 and 31:52 into 1 h).
	first := time.Duration(float64(cfg.Duration) * (21*60 + 42) / 3600)
	second := time.Duration(float64(cfg.Duration) * (31*60 + 52) / 3600)

	atk := attack.NewAttacker(attack.DefaultVulnDB(), attack.CVE201818955, "c11", "c41")
	res := &CyberResilienceResult{Config: cfg, FirstAttackAt: first, SecondAttackAt: second}

	exploit := func(target string) func() {
		return func() {
			vm, ok := sys.VM(target)
			if !ok {
				return
			}
			r := atk.Exploit(vm, attack.MaliciousOriginOffsetNS)
			sys.EventLog().Append(core.Event{
				At: sys.Now(), Node: "", VM: target, Kind: "exploit", Detail: r.String(),
			})
		}
	}
	sys.Scheduler().At(sim.Time(first), exploit("c41"))
	sys.Scheduler().At(sim.Time(second), exploit("c11"))

	if err := sys.RunFor(cfg.Duration); err != nil {
		return nil, err
	}
	if eng != nil {
		eng.Stop()
	}

	res.Samples = sys.Collector().Samples()
	res.Windows = measure.Aggregate(res.Samples, 2*time.Minute)
	res.Gamma = sys.Collector().Gamma()
	res.DriftOffset = sys.DriftOffset()
	res.ReadingError, _ = sys.ReadingError()
	res.Bound, _ = sys.PrecisionBound()
	res.ExploitResults = atk.Results()

	limit := float64(res.Bound + res.Gamma)
	// Skip the start-up phase when counting pre-attack violations.
	settle := (30 * time.Second).Seconds()
	for _, s := range res.Samples {
		switch {
		case s.AtSec < settle:
		case s.AtSec < second.Seconds():
			res.SamplesBeforeSecond++
			if s.PiStarNS > limit {
				res.ViolationsBeforeSecond++
			}
		default:
			res.SamplesAfterSecond++
			if s.PiStarNS > limit {
				res.ViolationsAfterSecond++
			}
			if s.PiStarNS > res.MaxAfterSecondNS {
				res.MaxAfterSecondNS = s.PiStarNS
			}
		}
	}
	res.Obs = sys.Metrics().Snapshot()
	return res, nil
}
