package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"gptpfta/internal/obs"
)

// Result is the contract every experiment result satisfies, so generic
// tooling (cmd/sweep's printing, cmd/report's CSV emission, the runner's
// campaign aggregation) handles any study without per-type special cases.
type Result interface {
	// Summary renders the experiment's one-line verdict.
	Summary() string
	// Rows renders the result as a table: the first row is the header, every
	// further row one record. The shape is stable per experiment.
	Rows() [][]string
}

// ObsCarrier is the optional interface a Result implements when it carries
// an observability snapshot of the simulation that produced it. The
// command-line tools use it to serve their -metrics flag without per-type
// special cases.
type ObsCarrier interface {
	// ObsMetrics returns the metrics snapshot taken at experiment end.
	ObsMetrics() []obs.Metric
}

// ObsSnapshot is the embeddable ObsCarrier implementation: an experiment
// fills Obs with its system registry's snapshot just before returning.
// Golden digests hash only Rows() and sample series, so carrying the
// snapshot cannot perturb determinism checks.
type ObsSnapshot struct {
	Obs []obs.Metric
}

// ObsMetrics implements ObsCarrier.
func (s *ObsSnapshot) ObsMetrics() []obs.Metric { return s.Obs }

// Validator is the contract every study's config struct satisfies: a
// structural sanity check run on every decode and on every Run dispatch, so
// an invalid config is rejected with a message instead of silently clamped
// or run into a panic. Registration enforces the contract — RegisterFunc
// panics when a config type does not implement it.
type Validator interface {
	Validate() error
}

// Experiment is a named, registry-dispatchable study. Implementations wrap
// the typed entrypoints (CyberResilience, FaultInjection, ...) so that the
// command-line tools, the job server and the runner dispatch by name
// instead of hand-wired switch blocks.
//
// Configs are wire-safe: every config struct is a JSON-round-trippable
// value (json.Marshal(DefaultConfig(s)) decodes back to an equal config via
// DecodeConfig), so the same struct drives CLI flags, HTTP job payloads and
// golden-digest tests. Runtime-only handles (metrics registries, snapshot
// caches) are tagged `json:"-"` and re-attached after decoding.
type Experiment interface {
	// Name is the registry key ("resilience", "interval", ...).
	Name() string
	// Description is a one-line synopsis for tool listings.
	Description() string
	// DefaultConfig returns the experiment's config struct with the given
	// master seed and all other fields at their withDefaults() values'
	// zero triggers.
	DefaultConfig(seed int64) any
	// DecodeConfig strictly decodes a JSON config (unknown fields are
	// errors) over the experiment's zero-seed defaults and validates it.
	// An empty or "null" raw returns the defaults unchanged. Use
	// SeededConfig to overlay raw JSON onto seeded defaults instead.
	DecodeConfig(raw json.RawMessage) (any, error)
	// Run executes the experiment. cfg must be the experiment's config type
	// (as returned by DefaultConfig or DecodeConfig) and is re-validated
	// before dispatch; the context cancels multi-run campaigns between
	// runs.
	Run(ctx context.Context, cfg any) (Result, error)
}

// funcExperiment adapts a typed entrypoint to the Experiment interface.
type funcExperiment[C any] struct {
	name, desc string
	defaults   func(seed int64) C
	run        func(ctx context.Context, cfg C) (Result, error)
}

func (e *funcExperiment[C]) Name() string                 { return e.name }
func (e *funcExperiment[C]) Description() string          { return e.desc }
func (e *funcExperiment[C]) DefaultConfig(seed int64) any { return e.defaults(seed) }

func (e *funcExperiment[C]) DecodeConfig(raw json.RawMessage) (any, error) {
	cfg := e.defaults(0)
	if len(raw) > 0 && string(raw) != "null" {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			return nil, fmt.Errorf("experiments: %s: decode config: %w", e.name, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("experiments: %s: decode config: trailing data after JSON object", e.name)
		}
	}
	if err := validate(cfg); err != nil {
		return nil, fmt.Errorf("experiments: %s: invalid config: %w", e.name, err)
	}
	return cfg, nil
}

func (e *funcExperiment[C]) Run(ctx context.Context, cfg any) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c, ok := cfg.(C)
	if !ok {
		return nil, fmt.Errorf("experiments: %s: config is %T, want %T", e.name, cfg, *new(C))
	}
	if err := validate(c); err != nil {
		return nil, fmt.Errorf("experiments: %s: invalid config: %w", e.name, err)
	}
	return e.run(ctx, c)
}

// validate runs a config's Validator when it implements one.
func validate(cfg any) error {
	if v, ok := cfg.(Validator); ok {
		return v.Validate()
	}
	return nil
}

// SeededConfig decodes raw over the experiment's defaults for seed: the
// seeded default config is marshalled, raw is overlaid as a shallow JSON
// object merge (raw's keys win), and the merged object goes through the
// experiment's strict DecodeConfig. This is the one config path shared by
// the CLIs and the job server — a request that names only the fields it
// cares about inherits everything else from the seeded defaults.
func SeededConfig(e Experiment, seed int64, raw json.RawMessage) (any, error) {
	merged, err := overlayJSON(e, e.DefaultConfig(seed), raw)
	if err != nil {
		return nil, err
	}
	return e.DecodeConfig(merged)
}

// MergeConfig overlays raw onto an already-built typed config and re-decodes
// the merged object through the experiment's strict decode path. Runtime-only
// fields (`json:"-"`: metrics registries, snapshot caches) do not survive the
// re-encoding — attach them after merging (see EnableWarmStart).
func MergeConfig(e Experiment, base any, raw json.RawMessage) (any, error) {
	merged, err := overlayJSON(e, base, raw)
	if err != nil {
		return nil, err
	}
	return e.DecodeConfig(merged)
}

// overlayJSON shallow-merges raw over the JSON encoding of base.
func overlayJSON(e Experiment, base any, raw json.RawMessage) (json.RawMessage, error) {
	enc, err := json.Marshal(base)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: encode config: %w", e.Name(), err)
	}
	if len(raw) == 0 || string(raw) == "null" {
		return enc, nil
	}
	var dst map[string]json.RawMessage
	if err := json.Unmarshal(enc, &dst); err != nil {
		return nil, fmt.Errorf("experiments: %s: config is not a JSON object: %w", e.Name(), err)
	}
	var src map[string]json.RawMessage
	if err := json.Unmarshal(raw, &src); err != nil {
		return nil, fmt.Errorf("experiments: %s: config overlay is not a JSON object: %w", e.Name(), err)
	}
	for k, v := range src {
		dst[k] = v
	}
	merged, err := json.Marshal(dst)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: merge config: %w", e.Name(), err)
	}
	return merged, nil
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Experiment{}
)

// Register adds an experiment to the package registry. It panics on a
// duplicate name: names are API.
func Register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.Name()]; dup {
		panic(fmt.Sprintf("experiments: duplicate registration of %q", e.Name()))
	}
	registry[e.Name()] = e
}

// RegisterFunc registers a typed entrypoint under the given name. The config
// type must implement Validator — the registration panics otherwise, so the
// "every study config validates" contract is enforced at init time, not
// discovered on the first bad request.
func RegisterFunc[C any](name, desc string, defaults func(seed int64) C,
	run func(ctx context.Context, cfg C) (Result, error)) {
	var zero C
	if _, ok := any(zero).(Validator); !ok {
		panic(fmt.Sprintf("experiments: config type %T of %q does not implement Validate() error", zero, name))
	}
	Register(&funcExperiment[C]{name: name, desc: desc, defaults: defaults, run: run})
}

// Lookup returns the named experiment. An unknown name yields an error that
// lists every registered name and, when the name is a near miss for one of
// them, a "did you mean" suggestion — the same message the CLIs print and
// the job server returns in its 404 body.
func Lookup(name string) (Experiment, error) {
	registryMu.RLock()
	e, ok := registry[name]
	registryMu.RUnlock()
	if ok {
		return e, nil
	}
	names := Names()
	msg := fmt.Sprintf("experiments: unknown experiment %q", name)
	if suggestion, ok := closestName(name, names); ok {
		msg += fmt.Sprintf(" (did you mean %q?)", suggestion)
	}
	return nil, fmt.Errorf("%s; registered: %s", msg, strings.Join(names, ", "))
}

// closestName returns the registered name nearest to name when it is close
// enough to be a plausible typo: edit distance at most 2, or at most half
// the shorter length for very short names.
func closestName(name string, names []string) (string, bool) {
	best, bestDist := "", -1
	for _, cand := range names {
		d := editDistance(strings.ToLower(name), cand)
		if bestDist < 0 || d < bestDist {
			best, bestDist = cand, d
		}
	}
	if bestDist < 0 {
		return "", false
	}
	limit := 2
	if n := min(len(name), len(best)) / 2; n < limit {
		limit = n + 1
	}
	return best, bestDist <= limit
}

// editDistance is the Levenshtein distance between two short strings.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// All returns every registered experiment, sorted by name.
func All() []Experiment {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Names returns every registered experiment name, sorted.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name()
	}
	return names
}
