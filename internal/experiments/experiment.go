package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"gptpfta/internal/obs"
)

// Result is the contract every experiment result satisfies, so generic
// tooling (cmd/sweep's printing, cmd/report's CSV emission, the runner's
// campaign aggregation) handles any study without per-type special cases.
type Result interface {
	// Summary renders the experiment's one-line verdict.
	Summary() string
	// Rows renders the result as a table: the first row is the header, every
	// further row one record. The shape is stable per experiment.
	Rows() [][]string
}

// ObsCarrier is the optional interface a Result implements when it carries
// an observability snapshot of the simulation that produced it. The
// command-line tools use it to serve their -metrics flag without per-type
// special cases.
type ObsCarrier interface {
	// ObsMetrics returns the metrics snapshot taken at experiment end.
	ObsMetrics() []obs.Metric
}

// ObsSnapshot is the embeddable ObsCarrier implementation: an experiment
// fills Obs with its system registry's snapshot just before returning.
// Golden digests hash only Rows() and sample series, so carrying the
// snapshot cannot perturb determinism checks.
type ObsSnapshot struct {
	Obs []obs.Metric
}

// ObsMetrics implements ObsCarrier.
func (s *ObsSnapshot) ObsMetrics() []obs.Metric { return s.Obs }

// Experiment is a named, registry-dispatchable study. Implementations wrap
// the typed entrypoints (CyberResilience, FaultInjection, ...) so that the
// command-line tools and the runner dispatch by name instead of hand-wired
// switch blocks.
type Experiment interface {
	// Name is the registry key ("resilience", "interval", ...).
	Name() string
	// Description is a one-line synopsis for tool listings.
	Description() string
	// DefaultConfig returns the experiment's config struct with the given
	// master seed and all other fields at their withDefaults() values'
	// zero triggers.
	DefaultConfig(seed int64) any
	// Run executes the experiment. cfg must be the experiment's config type
	// (as returned by DefaultConfig); the context cancels multi-run
	// campaigns between runs.
	Run(ctx context.Context, cfg any) (Result, error)
}

// funcExperiment adapts a typed entrypoint to the Experiment interface.
type funcExperiment[C any] struct {
	name, desc string
	defaults   func(seed int64) C
	run        func(ctx context.Context, cfg C) (Result, error)
}

func (e *funcExperiment[C]) Name() string                 { return e.name }
func (e *funcExperiment[C]) Description() string          { return e.desc }
func (e *funcExperiment[C]) DefaultConfig(seed int64) any { return e.defaults(seed) }

func (e *funcExperiment[C]) Run(ctx context.Context, cfg any) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c, ok := cfg.(C)
	if !ok {
		return nil, fmt.Errorf("experiments: %s: config is %T, want %T", e.name, cfg, *new(C))
	}
	return e.run(ctx, c)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Experiment{}
)

// Register adds an experiment to the package registry. It panics on a
// duplicate name: names are API.
func Register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.Name()]; dup {
		panic(fmt.Sprintf("experiments: duplicate registration of %q", e.Name()))
	}
	registry[e.Name()] = e
}

// RegisterFunc registers a typed entrypoint under the given name.
func RegisterFunc[C any](name, desc string, defaults func(seed int64) C,
	run func(ctx context.Context, cfg C) (Result, error)) {
	Register(&funcExperiment[C]{name: name, desc: desc, defaults: defaults, run: run})
}

// Lookup returns the named experiment.
func Lookup(name string) (Experiment, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// All returns every registered experiment, sorted by name.
func All() []Experiment {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Names returns every registered experiment name, sorted.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name()
	}
	return names
}
