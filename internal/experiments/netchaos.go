package experiments

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"gptpfta/internal/chaos"
	"gptpfta/internal/core"
	"gptpfta/internal/measure"
	"gptpfta/internal/obs"
	"gptpfta/internal/runner"
)

// NetworkChaosConfig parameterises the network chaos campaign: a sweep of
// Gilbert–Elliott burst-loss intensities and network partition durations
// against the paper's precision bounds, with the shared servo's holdover
// mode armed.
type NetworkChaosConfig struct {
	Seed int64 `json:"seed"`
	// Duration of each sweep point's run.
	Duration time.Duration `json:"duration,omitempty"`
	// ChaosStart delays the first fault, letting the system converge.
	ChaosStart time.Duration `json:"chaos_start,omitempty"`
	// BurstBadLoss sweeps the bad-state loss rate of a periodic burst-loss
	// storm on every mesh link.
	BurstBadLoss []float64 `json:"burst_bad_loss,omitempty"`
	// PartitionDurations sweeps how long the mesh stays split into
	// {sw1, sw2} | {sw3, sw4}.
	PartitionDurations []time.Duration `json:"partition_durations,omitempty"`
	// HoldoverWindow arms the ptp4l holdover watchdog (§ DESIGN.md "Chaos
	// scenarios"); zero would leave the legacy free-run behavior.
	HoldoverWindow time.Duration `json:"holdover_window,omitempty"`
	// PlanPath optionally runs one custom plan file instead of the built-in
	// sweep.
	PlanPath string `json:"plan_path,omitempty"`
	// Parallel is the runner's worker count (0 = GOMAXPROCS, 1 =
	// sequential); the table is identical for every value.
	Parallel int `json:"parallel,omitempty"`
	// WarmStart runs the shared convergence prefix (everything before
	// ChaosStart) once and forks every sweep point from its snapshot. The
	// table is bit-identical to the cold attach-at-boundary runs the
	// fallback executes (see DESIGN.md "Warm-state snapshots").
	WarmStart bool `json:"warm_start,omitempty"`
	// Metrics optionally instruments the campaign's runner pool (fork and
	// fallback accounting). The registry must be campaign-level, never a
	// simulation's.
	Metrics *obs.Registry `json:"-"`
	// Snapshots optionally shares the prefix snapshot through a campaign
	// cache (the job server's LRU), so concurrent campaigns with the same
	// convergence prefix fork from one snapshot; nil keeps the
	// per-campaign prefix.
	Snapshots runner.SnapshotCache `json:"-"`
	// Shards runs every point on a sharded PDES kernel (1 = the legacy
	// single scheduler). Results are bit-identical at every shard count.
	Shards int `json:"shards,omitempty"`
}

// Validate implements Validator.
func (c NetworkChaosConfig) Validate() error {
	for i, p := range c.BurstBadLoss {
		if err := checkRate(fmt.Sprintf("burst_bad_loss[%d]", i), p); err != nil {
			return err
		}
	}
	for i, d := range c.PartitionDurations {
		if d <= 0 {
			return fmt.Errorf("partition_durations[%d] must be positive (got %v)", i, d)
		}
	}
	return firstErr(
		checkDurations(
			field{"duration", c.Duration},
			field{"chaos_start", c.ChaosStart},
			field{"holdover_window", c.HoldoverWindow}),
		checkShards(defaultShards(c.Shards)),
	)
}

func (c NetworkChaosConfig) withDefaults() NetworkChaosConfig {
	if c.Duration <= 0 {
		c.Duration = 8 * time.Minute
	}
	if c.ChaosStart <= 0 {
		c.ChaosStart = 3 * time.Minute
	}
	if len(c.BurstBadLoss) == 0 && c.PlanPath == "" {
		c.BurstBadLoss = []float64{0.25, 0.9}
	}
	if len(c.PartitionDurations) == 0 && c.PlanPath == "" {
		c.PartitionDurations = []time.Duration{time.Second, 30 * time.Second}
	}
	if c.HoldoverWindow <= 0 {
		c.HoldoverWindow = 2 * time.Second
	}
	c.Shards = defaultShards(c.Shards)
	return c
}

// ChaosPoint is one sweep point's outcome: precision statistics plus the
// chaos and holdover accounting read back from the obs registry.
type ChaosPoint struct {
	Label           string
	MeanPrecisionNS float64
	MaxPrecisionNS  float64
	BoundNS         float64
	Violations      int
	Samples         int

	ChaosActions int
	// FaultDropped counts frames killed by downed links and failed bridges;
	// FramesLost counts stochastic (burst) loss.
	FaultDropped    int
	FramesLost      int
	HoldoverEntered int
	HoldoverExited  int
}

// NetworkChaosResult is the sweep table plus the last point's metrics
// snapshot.
type NetworkChaosResult struct {
	ObsSnapshot
	Config NetworkChaosConfig
	Points []ChaosPoint
}

// Summary renders the campaign's one-line verdict.
func (r *NetworkChaosResult) Summary() string {
	var actions, entered, exited, violations int
	for _, p := range r.Points {
		actions += p.ChaosActions
		entered += p.HoldoverEntered
		exited += p.HoldoverExited
		violations += p.Violations
	}
	return fmt.Sprintf(
		"network chaos (%d points, %d actions): holdover entered %d / exited %d; %d samples beyond Π+γ in total",
		len(r.Points), actions, entered, exited, violations)
}

// Rows renders the sweep table.
func (r *NetworkChaosResult) Rows() [][]string {
	rows := [][]string{{
		"label", "mean_ns", "max_ns", "bound_ns", "violations", "samples",
		"chaos_actions", "fault_dropped", "frames_lost", "holdover_entered", "holdover_exited",
	}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%.0f", p.MeanPrecisionNS),
			fmt.Sprintf("%.0f", p.MaxPrecisionNS),
			fmt.Sprintf("%.0f", p.BoundNS),
			strconv.Itoa(p.Violations),
			strconv.Itoa(p.Samples),
			strconv.Itoa(p.ChaosActions),
			strconv.Itoa(p.FaultDropped),
			strconv.Itoa(p.FramesLost),
			strconv.Itoa(p.HoldoverEntered),
			strconv.Itoa(p.HoldoverExited),
		})
	}
	return rows
}

// meshLinkNames lists the full-mesh switch links of the paper's 4-node
// testbed in canonical low-high order.
func meshLinkNames() []string {
	return []string{"sw1-sw2", "sw1-sw3", "sw1-sw4", "sw2-sw3", "sw2-sw4", "sw3-sw4"}
}

// burstPlan storms every mesh link with Gilbert–Elliott burst loss: one
// minute of storm every two minutes, starting at chaosStart.
func burstPlan(badLoss float64, chaosStart time.Duration) *chaos.Plan {
	return &chaos.Plan{
		Name: fmt.Sprintf("burst bad=%.2f", badLoss),
		Actions: []chaos.Action{{
			Op:        chaos.OpBurstLoss,
			Links:     meshLinkNames(),
			Every:     chaos.Duration(2 * time.Minute),
			Start:     chaos.Duration(chaosStart),
			Duration:  chaos.Duration(time.Minute),
			BadLoss:   badLoss,
			GoodToBad: 0.05,
			BadToGood: 0.2,
		}},
	}
}

// partitionPlan splits the mesh into {sw1, sw2} | {sw3, sw4} for d. The
// measurement VM (c22, on the sw2 side) then sees only two fresh domains —
// below the 2f+1 = 3 quorum — so a partition longer than the holdover
// window drives its servo into holdover.
func partitionPlan(d, chaosStart time.Duration) *chaos.Plan {
	return &chaos.Plan{
		Name: fmt.Sprintf("partition %v", d),
		Actions: []chaos.Action{{
			Op:       chaos.OpPartition,
			Groups:   [][]string{{"sw1", "sw2"}, {"sw3", "sw4"}},
			At:       chaos.Duration(chaosStart),
			Duration: chaos.Duration(d),
		}},
	}
}

// sumMetric totals a metric's value across all label sets in a snapshot.
func sumMetric(ms []obs.Metric, name string) int {
	var s float64
	for _, m := range ms {
		if m.Name == name {
			s += m.Value
		}
	}
	return int(s)
}

// NetworkChaos runs the chaos campaign: every burst-loss intensity and
// every partition duration as an independent same-seed run, each executing
// its scenario plan against the full system with holdover armed. Two runs
// of the same config are byte-identical (the engine consumes no
// randomness; all stochastic loss draws come from the per-link seeded loss
// streams).
func NetworkChaos(ctx context.Context, cfg NetworkChaosConfig) (*NetworkChaosResult, error) {
	cfg = cfg.withDefaults()

	var plans []*chaos.Plan
	if cfg.PlanPath != "" {
		p, err := chaos.Load(cfg.PlanPath)
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	} else {
		for _, bad := range cfg.BurstBadLoss {
			plans = append(plans, burstPlan(bad, cfg.ChaosStart))
		}
		for _, d := range cfg.PartitionDurations {
			plans = append(plans, partitionPlan(d, cfg.ChaosStart))
		}
	}

	res := &NetworkChaosResult{Config: cfg}
	snapshots := make([][]obs.Metric, len(plans))
	pool := runner.New(cfg.Parallel).WithMetrics(cfg.Metrics).WithSnapshots(cfg.Snapshots)

	var outcomes []runner.Outcome
	if cfg.WarmStart {
		outcomes = networkChaosWarm(ctx, cfg, pool, plans, snapshots)
	} else {
		runs := make([]runner.Run, len(plans))
		for i := range plans {
			i := i
			runs[i] = runner.Run{Name: plans[i].Name, Do: func(context.Context) (any, error) {
				point, snap, err := chaosPoint(cfg, plans[i])
				snapshots[i] = snap
				return point, err
			}}
		}
		outcomes = pool.Execute(ctx, runs)
	}
	points, err := runner.Values[ChaosPoint](outcomes)
	if err != nil {
		return nil, err
	}
	res.Points = points
	if n := len(snapshots); n > 0 {
		res.Obs = snapshots[n-1]
	}
	return res, nil
}

// networkChaosWarm executes the sweep in warm-start mode: one prefix run to
// the boundary (ChaosStart − warmGuard), one snapshot, one fork per plan.
// Every point shares the campaign's core.Config — the plans differ, not the
// warm-up — so each point's own prefix hash equals the campaign's and the
// point forks; the cold fallback executes the identical attach-at-boundary
// structure, keeping the table bit-for-bit independent of the mode.
func networkChaosWarm(ctx context.Context, cfg NetworkChaosConfig, pool *runner.Pool,
	plans []*chaos.Plan, snapshots [][]obs.Metric) []runner.Outcome {
	boundary := cfg.ChaosStart - warmGuard
	if boundary <= 0 || boundary >= cfg.Duration {
		boundary = 0 // no usable prefix: every point runs cold
	}
	sysCfg := chaosSystemConfig(cfg)
	wc := runner.WarmConfig{}
	if boundary > 0 {
		wc.Hash = core.PrefixHash(sysCfg, boundary)
		wc.Prefix = systemPrefix(sysCfg, boundary)
	}
	wruns := make([]runner.WarmRun, len(plans))
	for i := range plans {
		i := i
		wruns[i] = runner.WarmRun{
			Name: plans[i].Name,
			Hash: core.PrefixHash(sysCfg, boundary),
			Fork: func(_ context.Context, snap any) (any, error) {
				sys, err := core.ForkSystem(snap)
				if err != nil {
					return nil, err
				}
				point, ms, err := chaosDiverge(cfg, sys, plans[i], cfg.Duration-boundary)
				snapshots[i] = ms
				return point, err
			},
			Cold: func(context.Context) (any, error) {
				point, ms, err := chaosPointFrom(cfg, plans[i], boundary)
				snapshots[i] = ms
				return point, err
			},
		}
	}
	return pool.ExecuteWarm(ctx, wc, wruns)
}

// chaosSystemConfig is the sweep's shared system configuration: every plan
// runs against the same seed and holdover window.
func chaosSystemConfig(cfg NetworkChaosConfig) core.Config {
	sysCfg := core.NewConfig(cfg.Seed)
	sysCfg.HoldoverWindow = cfg.HoldoverWindow
	sysCfg.Shards = cfg.Shards
	return sysCfg
}

// chaosPoint runs one plan against a fresh system and reads the campaign
// accounting back out of the metrics registry.
func chaosPoint(cfg NetworkChaosConfig, plan *chaos.Plan) (ChaosPoint, []obs.Metric, error) {
	sys, err := core.NewSystem(chaosSystemConfig(cfg))
	if err != nil {
		return ChaosPoint{}, nil, err
	}
	eng, err := chaos.New(sys.Scheduler(), sys, plan)
	if err != nil {
		return ChaosPoint{}, nil, err
	}
	eng.Instrument(sys.Metrics())
	if err := sys.Start(); err != nil {
		return ChaosPoint{}, nil, err
	}
	if err := eng.Start(); err != nil {
		return ChaosPoint{}, nil, err
	}
	if err := sys.RunFor(cfg.Duration); err != nil {
		return ChaosPoint{}, nil, err
	}
	eng.Stop()
	return chaosCollect(sys, plan)
}

// chaosPointFrom is the attach-at-boundary cold run: the reference execution
// a warm fork of the same plan is bit-identical to.
func chaosPointFrom(cfg NetworkChaosConfig, plan *chaos.Plan, boundary time.Duration) (ChaosPoint, []obs.Metric, error) {
	sys, err := core.NewSystem(chaosSystemConfig(cfg))
	if err != nil {
		return ChaosPoint{}, nil, err
	}
	if err := sys.Start(); err != nil {
		return ChaosPoint{}, nil, err
	}
	if boundary > 0 {
		if err := sys.RunFor(boundary); err != nil {
			return ChaosPoint{}, nil, err
		}
	}
	return chaosDiverge(cfg, sys, plan, cfg.Duration-boundary)
}

// chaosDiverge attaches the plan's engine to a system already run to the
// warm boundary and executes the divergent remainder. The plan's actions are
// anchored to absolute instants, so the engine fires exactly as a cold t=0
// engine would.
func chaosDiverge(cfg NetworkChaosConfig, sys *core.System, plan *chaos.Plan, remaining time.Duration) (ChaosPoint, []obs.Metric, error) {
	eng, err := chaos.New(sys.Scheduler(), sys, plan)
	if err != nil {
		return ChaosPoint{}, nil, err
	}
	eng.Instrument(sys.Metrics())
	if err := eng.Start(); err != nil {
		return ChaosPoint{}, nil, err
	}
	if err := sys.RunFor(remaining); err != nil {
		return ChaosPoint{}, nil, err
	}
	eng.Stop()
	return chaosCollect(sys, plan)
}

// chaosCollect reads one finished run's precision statistics and chaos
// accounting back out of the system.
func chaosCollect(sys *core.System, plan *chaos.Plan) (ChaosPoint, []obs.Metric, error) {
	settle := (90 * time.Second).Seconds()
	var steady []measure.Sample
	for _, s := range sys.Collector().Samples() {
		if s.AtSec >= settle {
			steady = append(steady, s)
		}
	}
	stats := measure.ComputeStats(steady)
	bound, _ := sys.PrecisionBound()
	limit := float64(bound + sys.Collector().Gamma())
	snap := sys.Metrics().Snapshot()
	return ChaosPoint{
		Label:           plan.Name,
		MeanPrecisionNS: stats.MeanNS,
		MaxPrecisionNS:  stats.MaxNS,
		BoundNS:         float64(bound),
		Violations:      measure.ViolationCount(steady, limit),
		Samples:         len(steady),
		ChaosActions:    sumMetric(snap, "chaos_actions"),
		FaultDropped:    sumMetric(snap, "netsim_frames_fault_dropped"),
		FramesLost:      sumMetric(snap, "netsim_frames_lost"),
		HoldoverEntered: sumMetric(snap, "ptp4l_holdover_entered"),
		HoldoverExited:  sumMetric(snap, "ptp4l_holdover_exited"),
	}, snap, nil
}
