package experiments

import (
	"context"
	"time"

	"gptpfta/internal/chaos"
	"gptpfta/internal/core"
)

// Warm-start support shared by the studies (see DESIGN.md "Warm-state
// snapshots"). A warm-eligible study runs its convergence prefix once per
// campaign, snapshots the System at a boundary strictly before the first
// divergent event (fault injection, chaos action, attack), and forks every
// sweep point from the snapshot. Each point's own config-prefix hash
// (core.PrefixHash) is compared against the campaign's; a mismatch — the
// point's parameters shape the warm-up itself — falls back to a cold run,
// counted by the runner's runner_cold_fallbacks.

// warmGuard is the safety margin between the snapshot boundary and the first
// divergent event: the boundary is placed this far before the event so the
// prefix can never execute state the sweep points disagree on.
const warmGuard = 5 * time.Second

// systemPrefix returns a campaign's shared-prefix executor: build the
// system, start it, run it fault-free to the boundary, snapshot it.
func systemPrefix(sysCfg core.Config, boundary time.Duration) func(context.Context) (any, error) {
	return func(context.Context) (any, error) {
		sys, err := core.NewSystem(sysCfg)
		if err != nil {
			return nil, err
		}
		if err := sys.Start(); err != nil {
			return nil, err
		}
		if err := sys.RunFor(boundary); err != nil {
			return nil, err
		}
		return sys.Snapshot(), nil
	}
}

// planEarliest reports the earliest absolute instant at which a chaos plan
// acts. ok is false when any action is anchored relative to the engine's
// start (a periodic action without a Start offset): such a plan fires at
// different instants depending on when the engine attaches, so a warm fork
// cannot reproduce the cold t=0 schedule and the study must run cold.
func planEarliest(p *chaos.Plan) (earliest time.Duration, ok bool) {
	first := true
	for i := range p.Actions {
		a := &p.Actions[i]
		var t time.Duration
		if a.Every > 0 {
			if a.Start <= 0 {
				return 0, false
			}
			t = a.Start.Std()
		} else {
			t = a.At.Std()
		}
		if first || t < earliest {
			earliest = t
			first = false
		}
	}
	return earliest, !first
}
