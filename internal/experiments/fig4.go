package experiments

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"gptpfta/internal/chaos"
	"gptpfta/internal/core"
	"gptpfta/internal/faultinject"
	"gptpfta/internal/gptp"
	"gptpfta/internal/measure"
	"gptpfta/internal/obs"
	"gptpfta/internal/ptp4l"
	"gptpfta/internal/runner"
	"gptpfta/internal/sim"
)

// FaultInjectionConfig parameterises the Fig. 4/5 experiment. Durations are
// nanoseconds on the wire.
type FaultInjectionConfig struct {
	Seed int64 `json:"seed"`
	// Duration of the campaign; the paper runs 24 h.
	Duration time.Duration `json:"duration,omitempty"`
	// GMPeriod between consecutive grandmaster shutdowns (rotating). The
	// default (30 min) lands at the paper's ≈48 GM failures over 24 h.
	GMPeriod time.Duration `json:"gm_period,omitempty"`
	// Redundant-VM random failure rate bounds, per hour per node.
	RedundantMinPerHour float64 `json:"redundant_min_per_hour,omitempty"`
	RedundantMaxPerHour float64 `json:"redundant_max_per_hour,omitempty"`
	// Downtime of a failed VM before reboot.
	Downtime time.Duration `json:"downtime,omitempty"`
	// ChaosPlan optionally composes a network chaos scenario with the VM
	// campaign; its actions are counted in Injection.NetworkFaults.
	ChaosPlan *chaos.Plan `json:"chaos_plan,omitempty"`
	// HoldoverWindow arms the ptp4l holdover watchdog for chaos-composed
	// campaigns (zero keeps the paper's free-run default).
	HoldoverWindow time.Duration `json:"holdover_window,omitempty"`
	// WarmStart snapshots the fault-free convergence prefix (up to the
	// injector's start minus a guard) and forks the campaign from it. The
	// result is bit-identical to the attach-at-boundary cold run the
	// fallback executes. A chaos plan acting before the boundary (or
	// anchored relative to engine start) demotes the run to cold.
	WarmStart bool `json:"warm_start,omitempty"`
	// Shards runs the simulation on a sharded PDES kernel (1 = the legacy
	// single scheduler). Results are bit-identical at every shard count.
	Shards int `json:"shards,omitempty"`
	// Metrics optionally instruments the run's pool (fork accounting).
	Metrics *obs.Registry `json:"-"`
	// Snapshots optionally shares the prefix snapshot through a campaign
	// cache (the job server's LRU); nil keeps the per-run prefix.
	Snapshots runner.SnapshotCache `json:"-"`
}

// Validate implements Validator. The injector's own Config.validate rejects
// the full fault-hypothesis space at run time; this check covers the fields
// before defaulting can mask them.
func (c FaultInjectionConfig) Validate() error {
	if err := checkDurations(
		field{"duration", c.Duration},
		field{"gm_period", c.GMPeriod},
		field{"downtime", c.Downtime},
		field{"holdover_window", c.HoldoverWindow}); err != nil {
		return err
	}
	if err := firstErr(
		checkNonNegative("redundant_min_per_hour", c.RedundantMinPerHour),
		checkNonNegative("redundant_max_per_hour", c.RedundantMaxPerHour)); err != nil {
		return err
	}
	if c.RedundantMinPerHour > 0 && c.RedundantMaxPerHour > 0 &&
		c.RedundantMinPerHour > c.RedundantMaxPerHour {
		return fmt.Errorf("redundant_min_per_hour (%v) exceeds redundant_max_per_hour (%v)",
			c.RedundantMinPerHour, c.RedundantMaxPerHour)
	}
	return checkShards(defaultShards(c.Shards))
}

func (c FaultInjectionConfig) withDefaults() FaultInjectionConfig {
	if c.Duration <= 0 {
		c.Duration = 24 * time.Hour
	}
	if c.GMPeriod <= 0 {
		c.GMPeriod = 30 * time.Minute
	}
	if c.RedundantMinPerHour <= 0 {
		c.RedundantMinPerHour = 0.25
	}
	if c.RedundantMaxPerHour <= 0 {
		c.RedundantMaxPerHour = 1
	}
	if c.Downtime <= 0 {
		c.Downtime = 45 * time.Second
	}
	c.Shards = defaultShards(c.Shards)
	return c
}

// FaultInjectionResult is the Fig. 4a/4b (and Fig. 5 input) output.
type FaultInjectionResult struct {
	ObsSnapshot
	Config FaultInjectionConfig

	Samples []measure.Sample
	Windows []measure.Window // 120 s min/avg/max, as plotted in Fig. 4a
	Stats   measure.Stats    // Fig. 4b caption numbers

	ReadingError time.Duration
	DriftOffset  time.Duration
	Bound        time.Duration // Π
	Gamma        time.Duration

	Injection faultinject.Stats
	// Transient software fault totals (the paper reports 2992 and 347).
	TxTimestampTimeouts int
	DeadlineMisses      int
	Takeovers           int

	Violations int // samples beyond Π+γ after start-up

	Events *core.EventLog
}

// Summary renders the §III-C narrative numbers.
func (r FaultInjectionResult) Summary() string {
	return fmt.Sprintf(
		"fault injection over %v: Π = %v, γ = %v; precision %s; %s; %d takeovers; %d tx-timestamp timeouts, %d deadline misses; %d samples beyond Π+γ",
		r.Config.Duration, r.Bound, r.Gamma, r.Stats, r.Injection.String(),
		r.Takeovers, r.TxTimestampTimeouts, r.DeadlineMisses, r.Violations)
}

// Rows renders the campaign's headline numbers.
func (r *FaultInjectionResult) Rows() [][]string {
	return [][]string{
		{"mean_ns", "std_ns", "min_ns", "max_ns", "samples", "violations",
			"bound_ns", "gamma_ns", "vm_failures", "takeovers", "tx_timeouts", "deadline_misses"},
		{
			fmt.Sprintf("%.0f", r.Stats.MeanNS),
			fmt.Sprintf("%.0f", r.Stats.StdNS),
			fmt.Sprintf("%.0f", r.Stats.MinNS),
			fmt.Sprintf("%.0f", r.Stats.MaxNS),
			strconv.Itoa(r.Stats.Count),
			strconv.Itoa(r.Violations),
			strconv.FormatInt(r.Bound.Nanoseconds(), 10),
			strconv.FormatInt(r.Gamma.Nanoseconds(), 10),
			strconv.Itoa(r.Injection.TotalFailures),
			strconv.Itoa(r.Takeovers),
			strconv.Itoa(r.TxTimestampTimeouts),
			strconv.Itoa(r.DeadlineMisses),
		},
	}
}

// faultInjectStart is the injector's grace period: the system synchronizes
// undisturbed for this long before the first injection (and warm-start mode
// snapshots warmGuard before it).
const faultInjectStart = 2 * time.Minute

// FaultInjection runs the paper's §III-C campaign: rotating grandmaster
// shutdowns plus random redundant-VM shutdowns, with the dependent clock
// failing over and VMs rebooting, for the configured duration.
func FaultInjection(cfg FaultInjectionConfig) (*FaultInjectionResult, error) {
	cfg = cfg.withDefaults()
	sysCfg := core.NewConfig(cfg.Seed)
	sysCfg.HoldoverWindow = cfg.HoldoverWindow
	sysCfg.Shards = cfg.Shards
	if cfg.WarmStart {
		return faultInjectionWarm(cfg, sysCfg)
	}
	sys, err := core.NewSystem(sysCfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}
	return faultInjectionDiverge(cfg, sys, cfg.Duration)
}

// faultInjectionWarm is the warm-start form of FaultInjection: prefix to the
// boundary, snapshot, fork, attach the injector (and optional chaos engine)
// there. Both campaigns anchor their first firings to absolute instants, so
// the fork injects at exactly the instants a cold run would.
func faultInjectionWarm(cfg FaultInjectionConfig, sysCfg core.Config) (*FaultInjectionResult, error) {
	boundary := faultInjectStart - warmGuard
	if boundary >= cfg.Duration {
		boundary = 0
	}
	if cfg.ChaosPlan != nil {
		if earliest, ok := planEarliest(cfg.ChaosPlan); !ok || earliest <= boundary {
			boundary = 0 // the plan acts inside the would-be prefix: run cold
		}
	}
	wc := runner.WarmConfig{}
	if boundary > 0 {
		wc.Hash = core.PrefixHash(sysCfg, boundary)
		wc.Prefix = systemPrefix(sysCfg, boundary)
	}
	run := runner.WarmRun{
		Name: "faultinjection",
		Hash: core.PrefixHash(sysCfg, boundary),
		Fork: func(_ context.Context, snap any) (any, error) {
			sys, err := core.ForkSystem(snap)
			if err != nil {
				return nil, err
			}
			return faultInjectionDiverge(cfg, sys, cfg.Duration-boundary)
		},
		Cold: func(context.Context) (any, error) {
			sys, err := core.NewSystem(sysCfg)
			if err != nil {
				return nil, err
			}
			if err := sys.Start(); err != nil {
				return nil, err
			}
			if boundary > 0 {
				if err := sys.RunFor(boundary); err != nil {
					return nil, err
				}
			}
			return faultInjectionDiverge(cfg, sys, cfg.Duration-boundary)
		},
	}
	pool := runner.New(1).WithMetrics(cfg.Metrics).WithSnapshots(cfg.Snapshots)
	vals, err := runner.Values[*FaultInjectionResult](pool.ExecuteWarm(context.Background(), wc, []runner.WarmRun{run}))
	if err != nil {
		return nil, err
	}
	return vals[0], nil
}

// faultInjectionDiverge attaches the injection campaign to a running system
// (fresh at t=0, or forked at the warm boundary), runs the remainder, and
// assembles the result.
func faultInjectionDiverge(cfg FaultInjectionConfig, sys *core.System, remaining time.Duration) (*FaultInjectionResult, error) {
	controls := sys.NodeControls()
	nodes := make([]faultinject.NodeControl, len(controls))
	for i := range controls {
		nodes[i] = controls[i]
	}
	inj, err := faultinject.New(sys.Scheduler(), sys.Streams().Stream("inject"), nodes,
		faultinject.Config{
			GMPeriod:            cfg.GMPeriod,
			RedundantMinPerHour: cfg.RedundantMinPerHour,
			RedundantMaxPerHour: cfg.RedundantMaxPerHour,
			Downtime:            cfg.Downtime,
			Start:               faultInjectStart,
		})
	if err != nil {
		return nil, err
	}
	if err := inj.Start(); err != nil {
		return nil, err
	}
	var eng *chaos.Engine
	if cfg.ChaosPlan != nil {
		eng, err = chaos.New(sys.Scheduler(), sys, cfg.ChaosPlan)
		if err != nil {
			return nil, err
		}
		eng.Instrument(sys.Metrics())
		eng.SetActionObserver(func(chaos.Action) { inj.NoteNetworkFault() })
		if err := eng.Start(); err != nil {
			return nil, err
		}
	}
	if err := sys.RunFor(remaining); err != nil {
		return nil, err
	}
	inj.Stop()
	if eng != nil {
		eng.Stop()
	}

	res := &FaultInjectionResult{Config: cfg, Events: sys.EventLog()}
	res.Samples = sys.Collector().Samples()
	res.Windows = measure.Aggregate(res.Samples, 2*time.Minute)
	res.Gamma = sys.Collector().Gamma()
	res.DriftOffset = sys.DriftOffset()
	res.ReadingError, _ = sys.ReadingError()
	res.Bound, _ = sys.PrecisionBound()
	res.Injection = inj.Stats()

	counts := sys.EventLog().CountsByKindAndDetail()
	res.TxTimestampTimeouts = counts[ptp4l.EventFault+"/"+gptp.FaultTxTimestampTimeout]
	res.DeadlineMisses = counts[ptp4l.EventFault+"/"+gptp.FaultDeadlineMiss]
	res.Takeovers = sys.EventLog().CountsByKind()["takeover"]

	settle := (30 * time.Second).Seconds()
	limit := float64(res.Bound + res.Gamma)
	var steady []measure.Sample
	for _, s := range res.Samples {
		if s.AtSec >= settle {
			steady = append(steady, s)
		}
	}
	res.Stats = measure.ComputeStats(steady)
	res.Violations = measure.ViolationCount(steady, limit)
	res.Obs = sys.Metrics().Snapshot()
	return res, nil
}

// EventWindow extracts the Fig. 5 view: all samples and events in the hour
// around the maximum measured precision spike.
type EventWindow struct {
	FromSec, ToSec float64
	Samples        []measure.Sample
	Events         []core.Event
	SpikeAtSec     float64
	SpikeNS        float64
}

// Fig5Window cuts the window of the given width centred on the spike.
func (r *FaultInjectionResult) Fig5Window(width time.Duration) EventWindow {
	w := EventWindow{SpikeAtSec: r.Stats.MaxAtSec, SpikeNS: r.Stats.MaxNS}
	half := width.Seconds() / 2
	w.FromSec = w.SpikeAtSec - half
	if w.FromSec < 0 {
		w.FromSec = 0
	}
	w.ToSec = w.FromSec + width.Seconds()
	for _, s := range r.Samples {
		if s.AtSec >= w.FromSec && s.AtSec <= w.ToSec {
			w.Samples = append(w.Samples, s)
		}
	}
	from := sim.Time(w.FromSec * 1e9)
	to := sim.Time(w.ToSec * 1e9)
	for _, e := range r.Events.Window(from, to) {
		switch e.Kind {
		case "vm_failed", "vm_rebooted", "takeover", ptp4l.EventFault:
			w.Events = append(w.Events, e)
		}
	}
	return w
}
