package experiments

import (
	"fmt"
	"strconv"
	"time"

	"gptpfta/internal/chaos"
	"gptpfta/internal/core"
	"gptpfta/internal/faultinject"
	"gptpfta/internal/gptp"
	"gptpfta/internal/measure"
	"gptpfta/internal/ptp4l"
	"gptpfta/internal/sim"
)

// FaultInjectionConfig parameterises the Fig. 4/5 experiment.
type FaultInjectionConfig struct {
	Seed int64
	// Duration of the campaign; the paper runs 24 h.
	Duration time.Duration
	// GMPeriod between consecutive grandmaster shutdowns (rotating). The
	// default (30 min) lands at the paper's ≈48 GM failures over 24 h.
	GMPeriod time.Duration
	// Redundant-VM random failure rate bounds, per hour per node.
	RedundantMinPerHour float64
	RedundantMaxPerHour float64
	// Downtime of a failed VM before reboot.
	Downtime time.Duration
	// ChaosPlan optionally composes a network chaos scenario with the VM
	// campaign; its actions are counted in Injection.NetworkFaults.
	ChaosPlan *chaos.Plan
	// HoldoverWindow arms the ptp4l holdover watchdog for chaos-composed
	// campaigns (zero keeps the paper's free-run default).
	HoldoverWindow time.Duration
}

func (c FaultInjectionConfig) withDefaults() FaultInjectionConfig {
	if c.Duration <= 0 {
		c.Duration = 24 * time.Hour
	}
	if c.GMPeriod <= 0 {
		c.GMPeriod = 30 * time.Minute
	}
	if c.RedundantMinPerHour <= 0 {
		c.RedundantMinPerHour = 0.25
	}
	if c.RedundantMaxPerHour <= 0 {
		c.RedundantMaxPerHour = 1
	}
	if c.Downtime <= 0 {
		c.Downtime = 45 * time.Second
	}
	return c
}

// FaultInjectionResult is the Fig. 4a/4b (and Fig. 5 input) output.
type FaultInjectionResult struct {
	ObsSnapshot
	Config FaultInjectionConfig

	Samples []measure.Sample
	Windows []measure.Window // 120 s min/avg/max, as plotted in Fig. 4a
	Stats   measure.Stats    // Fig. 4b caption numbers

	ReadingError time.Duration
	DriftOffset  time.Duration
	Bound        time.Duration // Π
	Gamma        time.Duration

	Injection faultinject.Stats
	// Transient software fault totals (the paper reports 2992 and 347).
	TxTimestampTimeouts int
	DeadlineMisses      int
	Takeovers           int

	Violations int // samples beyond Π+γ after start-up

	Events *core.EventLog
}

// Summary renders the §III-C narrative numbers.
func (r FaultInjectionResult) Summary() string {
	return fmt.Sprintf(
		"fault injection over %v: Π = %v, γ = %v; precision %s; %s; %d takeovers; %d tx-timestamp timeouts, %d deadline misses; %d samples beyond Π+γ",
		r.Config.Duration, r.Bound, r.Gamma, r.Stats, r.Injection.String(),
		r.Takeovers, r.TxTimestampTimeouts, r.DeadlineMisses, r.Violations)
}

// Rows renders the campaign's headline numbers.
func (r *FaultInjectionResult) Rows() [][]string {
	return [][]string{
		{"mean_ns", "std_ns", "min_ns", "max_ns", "samples", "violations",
			"bound_ns", "gamma_ns", "vm_failures", "takeovers", "tx_timeouts", "deadline_misses"},
		{
			fmt.Sprintf("%.0f", r.Stats.MeanNS),
			fmt.Sprintf("%.0f", r.Stats.StdNS),
			fmt.Sprintf("%.0f", r.Stats.MinNS),
			fmt.Sprintf("%.0f", r.Stats.MaxNS),
			strconv.Itoa(r.Stats.Count),
			strconv.Itoa(r.Violations),
			strconv.FormatInt(r.Bound.Nanoseconds(), 10),
			strconv.FormatInt(r.Gamma.Nanoseconds(), 10),
			strconv.Itoa(r.Injection.TotalFailures),
			strconv.Itoa(r.Takeovers),
			strconv.Itoa(r.TxTimestampTimeouts),
			strconv.Itoa(r.DeadlineMisses),
		},
	}
}

// FaultInjection runs the paper's §III-C campaign: rotating grandmaster
// shutdowns plus random redundant-VM shutdowns, with the dependent clock
// failing over and VMs rebooting, for the configured duration.
func FaultInjection(cfg FaultInjectionConfig) (*FaultInjectionResult, error) {
	cfg = cfg.withDefaults()
	sysCfg := core.NewConfig(cfg.Seed)
	sysCfg.HoldoverWindow = cfg.HoldoverWindow
	sys, err := core.NewSystem(sysCfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}

	controls := sys.NodeControls()
	nodes := make([]faultinject.NodeControl, len(controls))
	for i := range controls {
		nodes[i] = controls[i]
	}
	inj, err := faultinject.New(sys.Scheduler(), sys.Streams().Stream("inject"), nodes,
		faultinject.Config{
			GMPeriod:            cfg.GMPeriod,
			RedundantMinPerHour: cfg.RedundantMinPerHour,
			RedundantMaxPerHour: cfg.RedundantMaxPerHour,
			Downtime:            cfg.Downtime,
			Start:               2 * time.Minute,
		})
	if err != nil {
		return nil, err
	}
	if err := inj.Start(); err != nil {
		return nil, err
	}
	var eng *chaos.Engine
	if cfg.ChaosPlan != nil {
		eng, err = chaos.New(sys.Scheduler(), sys, cfg.ChaosPlan)
		if err != nil {
			return nil, err
		}
		eng.Instrument(sys.Metrics())
		eng.SetActionObserver(func(chaos.Action) { inj.NoteNetworkFault() })
		if err := eng.Start(); err != nil {
			return nil, err
		}
	}
	if err := sys.RunFor(cfg.Duration); err != nil {
		return nil, err
	}
	inj.Stop()
	if eng != nil {
		eng.Stop()
	}

	res := &FaultInjectionResult{Config: cfg, Events: sys.EventLog()}
	res.Samples = sys.Collector().Samples()
	res.Windows = measure.Aggregate(res.Samples, 2*time.Minute)
	res.Gamma = sys.Collector().Gamma()
	res.DriftOffset = sys.DriftOffset()
	res.ReadingError, _ = sys.ReadingError()
	res.Bound, _ = sys.PrecisionBound()
	res.Injection = inj.Stats()

	counts := sys.EventLog().CountsByKindAndDetail()
	res.TxTimestampTimeouts = counts[ptp4l.EventFault+"/"+gptp.FaultTxTimestampTimeout]
	res.DeadlineMisses = counts[ptp4l.EventFault+"/"+gptp.FaultDeadlineMiss]
	res.Takeovers = sys.EventLog().CountsByKind()["takeover"]

	settle := (30 * time.Second).Seconds()
	limit := float64(res.Bound + res.Gamma)
	var steady []measure.Sample
	for _, s := range res.Samples {
		if s.AtSec >= settle {
			steady = append(steady, s)
		}
	}
	res.Stats = measure.ComputeStats(steady)
	res.Violations = measure.ViolationCount(steady, limit)
	res.Obs = sys.Metrics().Snapshot()
	return res, nil
}

// EventWindow extracts the Fig. 5 view: all samples and events in the hour
// around the maximum measured precision spike.
type EventWindow struct {
	FromSec, ToSec float64
	Samples        []measure.Sample
	Events         []core.Event
	SpikeAtSec     float64
	SpikeNS        float64
}

// Fig5Window cuts the window of the given width centred on the spike.
func (r *FaultInjectionResult) Fig5Window(width time.Duration) EventWindow {
	w := EventWindow{SpikeAtSec: r.Stats.MaxAtSec, SpikeNS: r.Stats.MaxNS}
	half := width.Seconds() / 2
	w.FromSec = w.SpikeAtSec - half
	if w.FromSec < 0 {
		w.FromSec = 0
	}
	w.ToSec = w.FromSec + width.Seconds()
	for _, s := range r.Samples {
		if s.AtSec >= w.FromSec && s.AtSec <= w.ToSec {
			w.Samples = append(w.Samples, s)
		}
	}
	from := sim.Time(w.FromSec * 1e9)
	to := sim.Time(w.ToSec * 1e9)
	for _, e := range r.Events.Window(from, to) {
		switch e.Kind {
		case "vm_failed", "vm_rebooted", "takeover", ptp4l.EventFault:
			w.Events = append(w.Events, e)
		}
	}
	return w
}
