package experiments

import (
	"context"
	"crypto/sha256"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"gptpfta/internal/obs"
)

// goldenWanSitesDigest pins the wide-area campaign's full table — site
// census, quorum predictions, measured degradation ladders, re-stabilization
// times and verdicts — for a compact sweep over every axis on the 4-site
// fabric. Any change to the WAN delay model, the coordinator's FTA/holdover
// ladder, the chaos site actions or the verdict computation shows up here.
const goldenWanSitesDigest = "8794eae4654fd3daf14f84e9987abf1959073a800446cce0391c01655be5ec3e"

// goldenWanSitesConfig is the digest's sweep: one fabric size, the failure
// axis crossing the tolerable budget, both asymmetry settings.
func goldenWanSitesConfig() WanSitesConfig {
	return WanSitesConfig{
		Seed:       1,
		SiteCounts: []int{4},
	}
}

func TestGoldenDigestWanSites(t *testing.T) {
	res, err := WanSites(context.Background(), goldenWanSitesConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	hashRows(h, res.Rows())
	if got := digest(h); got != goldenWanSitesDigest {
		t.Fatalf("wansites digest changed: got %s want %s\nsummary: %s\n%s",
			got, goldenWanSitesDigest, res.Summary(), RenderAttackTable(res.Rows()))
	}
	if n := res.Anomalies(); n != 0 {
		t.Fatalf("wansites campaign produced %d anomaly verdicts:\n%s",
			n, RenderAttackTable(res.Rows()))
	}
}

// TestWanSitesBoundary checks the acceptance criterion directly: at the
// default parameters the measured site-failure boundary coincides with
// min(f, ⌊(N−1)/2⌋) at every sweep point — the floor arm binds at N = 4,
// the f arm at N = 5 — with zero anomalies, and every degraded point
// re-stabilizes within the resync window after the heal.
func TestWanSitesBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("full default campaign")
	}
	cfg := WanSitesConfig{Seed: 1}
	res, err := WanSites(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := cfg.withDefaults().ResyncWindow.Seconds()
	for _, p := range res.Points {
		if p.Verdict == WanVerdictAnomaly {
			t.Errorf("%s: anomaly verdict", p.Label)
		}
		wantSurvive := p.Failed <= p.Tolerable
		if p.PredictedSurvive != wantSurvive || p.MeasuredSurvive != wantSurvive {
			t.Errorf("%s: predicted %v measured %v, want %v (tolerable %d)",
				p.Label, p.PredictedSurvive, p.MeasuredSurvive, wantSurvive, p.Tolerable)
		}
		if !wantSurvive {
			if math.IsInf(p.ResyncSec, 1) || p.ResyncSec > window {
				t.Errorf("%s: re-stabilized %.1fs after heal, want ≤ %.0fs", p.Label, p.ResyncSec, window)
			}
			if p.HoldoverEntered == 0 || p.HoldoverExited != p.HoldoverEntered {
				t.Errorf("%s: holdover entered %d / exited %d, want a matched non-zero pair",
					p.Label, p.HoldoverEntered, p.HoldoverExited)
			}
		}
	}
}

// TestShardEquivalenceWanSites pins the campaign's PDES determinism per the
// acceptance criterion: the rendered Summary and Rows are bit-identical at
// shard counts 1, 2, 4 and 8 — the verdicts derive entirely from
// control-scheduler state (coordinator samples and wan_* counters).
func TestShardEquivalenceWanSites(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard equivalence sweep is slow")
	}
	base := WanSitesConfig{
		Seed:        5,
		SiteCounts:  []int{4},
		FailedSites: []int{2},
		Asyms:       []time.Duration{10 * time.Microsecond},
	}
	var ref shardDigest
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Shards = shards
		res, err := WanSites(context.Background(), cfg)
		got := digestOf(t, res, err)
		if shards == 1 {
			ref = got
			continue
		}
		if got.Summary != ref.Summary {
			t.Fatalf("wansites: summary diverged at %d shards:\n  1: %s\n  %d: %s",
				shards, ref.Summary, shards, got.Summary)
		}
		if !reflect.DeepEqual(got.Rows, ref.Rows) {
			t.Fatalf("wansites: rows diverged at %d shards", shards)
		}
	}
}

// TestForkEquivalenceWanSites: the warm mode groups points by fabric size,
// forks each group from its own prefix snapshot, and produces a table
// bit-identical to the cold run.
func TestForkEquivalenceWanSites(t *testing.T) {
	if testing.Short() {
		t.Skip("warm-vs-cold double campaign")
	}
	cfg := WanSitesConfig{
		Seed:        3,
		SiteCounts:  []int{4, 5},
		FailedSites: []int{2},
		Asyms:       []time.Duration{0},
		Parallel:    1,
	}
	reg := obs.NewRegistry()
	warmCfg := cfg
	warmCfg.WarmStart = true
	warmCfg.Metrics = reg
	warm, err := WanSites(context.Background(), warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if forks := metricValue(reg, "runner_forks_served"); forks != 2 {
		t.Fatalf("forks served = %v, want 2 (one per fabric-size group)", forks)
	}
	cold, err := WanSites(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hc, hw := sha256.New(), sha256.New()
	hashRows(hc, cold.Rows())
	hashRows(hw, warm.Rows())
	if digest(hc) != digest(hw) {
		t.Fatalf("warm wansites sweep diverged from cold\ncold: %s\nwarm: %s",
			cold.Summary(), warm.Summary())
	}
}

func TestWanSitesConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  WanSitesConfig
		want string
	}{
		{"single site", WanSitesConfig{SiteCounts: []int{1}}, "site_counts[0]"},
		{"negative failed", WanSitesConfig{FailedSites: []int{-1}}, "failed_sites[0]"},
		{"negative asym", WanSitesConfig{Asyms: []time.Duration{-time.Microsecond}}, "asyms[0]"},
		{"negative f", WanSitesConfig{F: -1}, "f must not be negative"},
		{"negative duration", WanSitesConfig{Duration: -time.Second}, "duration"},
		{"negative resync", WanSitesConfig{ResyncWindow: -time.Second}, "resync_window"},
		{"bad shards", WanSitesConfig{Shards: -2}, "shards"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
	if err := (WanSitesConfig{}).Validate(); err != nil {
		t.Fatalf("zero config must validate (defaults apply): %v", err)
	}
}
