package experiments

import (
	"reflect"
	"testing"
	"time"

	"gptpfta/internal/chaos"
	"gptpfta/internal/core"
)

// TestForkEquivalenceMidFaultChaos pins the mid-fault fork contract: a
// snapshot taken while a partition is live — engine cut-set populated, the
// heal closure already queued in the scheduler — forks into a continuation
// bit-identical to the uninterrupted run. The warm campaigns only ever fork
// before the first fault; this is the stronger case the engine's
// Snapshot/Restore bookkeeping exists for.
func TestForkEquivalenceMidFaultChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("triple full-system chaos run")
	}
	cfg := NetworkChaosConfig{
		Seed:               2,
		Duration:           4*time.Minute + 30*time.Second,
		ChaosStart:         2 * time.Minute,
		PartitionDurations: []time.Duration{30 * time.Second},
		Parallel:           1,
	}.withDefaults()
	plan := partitionPlan(30*time.Second, cfg.ChaosStart)
	midpoint := cfg.ChaosStart + 10*time.Second // inside the fault window

	// The uninterrupted reference run.
	ref, _, err := chaosPoint(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}

	// Run a second system into the middle of the partition and snapshot
	// everything: the system (scheduler, links, metrics, ...) plus the
	// engine's fault bookkeeping.
	sys, err := core.NewSystem(chaosSystemConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chaos.New(sys.Scheduler(), sys, plan)
	if err != nil {
		t.Fatal(err)
	}
	eng.Instrument(sys.Metrics())
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(midpoint); err != nil {
		t.Fatal(err)
	}
	if l := sys.Link("sw1-sw3"); l == nil || !l.Down() {
		t.Fatal("partition not live at the snapshot instant")
	}
	snap := sys.Snapshot()
	engSnap := eng.Snapshot()

	finish := func(s *core.System) ChaosPoint {
		t.Helper()
		if err := s.RunFor(cfg.Duration - midpoint); err != nil {
			t.Fatal(err)
		}
		point, _, err := chaosCollect(s, plan)
		if err != nil {
			t.Fatal(err)
		}
		return point
	}
	first := finish(sys)
	if sys.Link("sw1-sw3").Down() {
		t.Fatal("partition never healed in the first continuation")
	}

	forked, err := core.ForkSystem(snap)
	if err != nil {
		t.Fatal(err)
	}
	eng.Restore(engSnap)
	if l := forked.Link("sw1-sw3"); !l.Down() {
		t.Fatal("fork did not rewind into the live fault")
	}
	second := finish(forked)

	if !reflect.DeepEqual(first, second) {
		t.Fatalf("mid-fault fork diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if !reflect.DeepEqual(first, ref) {
		t.Fatalf("mid-fault continuation diverged from the uninterrupted run:\nref:  %+v\ngot:  %+v", ref, first)
	}
}
