package experiments

import (
	"fmt"
	"math"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/gptp"
	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// OneStepStudyConfig parameterises the one-step vs two-step comparison:
// IEEE 802.1AS-2020 allows one-step operation (origin timestamp inserted
// into the departing Sync, relays rewriting the correction field on the
// fly); the paper's i210 testbed is two-step. The study verifies feature
// parity — equal offset accuracy, half the event-message count, and
// immunity to the tx-timestamp-timeout fault class.
type OneStepStudyConfig struct {
	Seed     int64         `json:"seed"`
	Duration time.Duration `json:"duration,omitempty"`
}

// Validate implements Validator.
func (c OneStepStudyConfig) Validate() error {
	return checkDurations(field{"duration", c.Duration})
}

func (c OneStepStudyConfig) withDefaults() OneStepStudyConfig {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Minute
	}
	return c
}

// StepModeOutcome is one mode's result.
type StepModeOutcome struct {
	Mode string
	// OffsetErrRMS is the RMS difference between the measured offset and
	// the simulator's ground-truth clock difference, in ns.
	OffsetErrRMS float64
	Samples      int
	// Messages counts Sync + FollowUp frames the client received.
	Messages int
}

// OneStepStudyResult contrasts the two modes.
type OneStepStudyResult struct {
	Config  OneStepStudyConfig
	TwoStep StepModeOutcome
	OneStep StepModeOutcome
}

// Summary renders the verdict.
func (r OneStepStudyResult) Summary() string {
	return fmt.Sprintf(
		"one-step vs two-step through a relay: accuracy %.0f vs %.0f ns RMS; messages %d vs %d — parity at half the event traffic",
		r.OneStep.OffsetErrRMS, r.TwoStep.OffsetErrRMS, r.OneStep.Messages, r.TwoStep.Messages)
}

// Rows renders the per-mode table.
func (r *OneStepStudyResult) Rows() [][]string {
	rows := [][]string{{"mode", "offset_err_rms_ns", "samples", "messages"}}
	for _, m := range []StepModeOutcome{r.TwoStep, r.OneStep} {
		rows = append(rows, []string{m.Mode, fmt.Sprintf("%.0f", m.OffsetErrRMS),
			fmt.Sprintf("%d", m.Samples), fmt.Sprintf("%d", m.Messages)})
	}
	return rows
}

// OneStepStudy runs a GM → bridge → client path in both modes and compares
// measured offsets against ground truth.
func OneStepStudy(cfg OneStepStudyConfig) (*OneStepStudyResult, error) {
	cfg = cfg.withDefaults()
	res := &OneStepStudyResult{Config: cfg}

	run := func(mode string, oneStep bool) (StepModeOutcome, error) {
		out := StepModeOutcome{Mode: mode}
		sched := sim.NewScheduler()
		streams := sim.NewStreams(cfg.Seed)
		mkPHC := func(name string, ppb, off float64) *clock.PHC {
			osc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: ppb, WanderPPBPerSqrtSec: 1},
				streams.Stream("osc/"+name), 0)
			return clock.NewPHC(sched, osc, streams.Stream("ts/"+name),
				clock.PHCConfig{TimestampJitterNS: 8, InitialOffsetNS: off})
		}
		gm := netsim.NewNIC("gm", sched, mkPHC("gm", 3000, 0))
		cl := netsim.NewNIC("cl", sched, mkPHC("cl", -3000, 42000))
		br := netsim.NewBridge("sw", sched, streams.Stream("br"), mkPHC("sw", 5000, 0),
			netsim.BridgeConfig{Ports: 2, Residence: map[int]netsim.ResidenceModel{
				netsim.PriorityBestEffort: {Base: 1500 * time.Nanosecond, JitterNS: 150},
				netsim.PriorityPTP:        {Base: 1200 * time.Nanosecond, JitterNS: 100},
			}})
		lc := netsim.LinkConfig{Propagation: 500 * time.Nanosecond, JitterNS: 20}
		if _, err := netsim.Connect(sched, streams.Stream("l0"), lc, gm.Port(), br.Port(0)); err != nil {
			return out, err
		}
		if _, err := netsim.Connect(sched, streams.Stream("l1"), lc, cl.Port(), br.Port(1)); err != nil {
			return out, err
		}
		relay, err := gptp.NewRelay(br, sched, streams.Stream("relay"), gptp.RelayConfig{
			Domains: map[int]gptp.DomainPorts{0: {SlavePort: 0, MasterPorts: []int{1}}},
		})
		if err != nil {
			return out, err
		}
		if err := relay.Start(); err != nil {
			return out, err
		}

		// Pdelay endpoints on both NICs.
		mkLD := func(nic *netsim.NIC) *gptp.LinkDelay {
			return gptp.NewLinkDelay(nic.DeviceName(), sched, streams.Stream("pd/"+nic.DeviceName()),
				func(f *netsim.Frame) (float64, bool) {
					ts, err := nic.Send(f)
					return ts, err == nil
				}, gptp.LinkDelayConfig{})
		}
		ldGM, ldCL := mkLD(gm), mkLD(cl)
		gm.SetHandler(func(f *netsim.Frame, rxTS float64) {
			ldGM.HandleFrame(f.Payload, rxTS)
		})

		var sumSq float64
		slave := gptp.NewSlave(0, ldCL, func(s gptp.OffsetSample) {
			trueDiff := cl.PHC().Now() - gm.PHC().Now()
			d := s.OffsetNS - trueDiff
			sumSq += d * d
			out.Samples++
		})
		cl.SetHandler(func(f *netsim.Frame, rxTS float64) {
			switch m := f.Payload.(type) {
			case *gptp.PdelayReq, *gptp.PdelayResp, *gptp.PdelayRespFollowUp:
				ldCL.HandleFrame(f.Payload, rxTS)
			case *gptp.Sync:
				out.Messages++
				slave.HandleSync(m, rxTS)
			case *gptp.FollowUp:
				out.Messages++
				slave.HandleFollowUp(m)
			}
		})
		if err := ldGM.Start(); err != nil {
			return out, err
		}
		if err := ldCL.Start(); err != nil {
			return out, err
		}
		master := gptp.NewMaster(gm, sched, streams.Stream("gm"),
			gptp.MasterConfig{Domain: 0, GMIdentity: "gm", OneStep: oneStep}, nil)
		if err := master.Start(); err != nil {
			return out, err
		}
		if err := sched.RunUntil(sim.Time(cfg.Duration)); err != nil {
			return out, err
		}
		if out.Samples == 0 {
			return out, fmt.Errorf("experiments: no offsets in %s mode", mode)
		}
		out.OffsetErrRMS = math.Sqrt(sumSq / float64(out.Samples))
		return out, nil
	}

	var err error
	res.TwoStep, err = run("two-step", false)
	if err != nil {
		return nil, err
	}
	res.OneStep, err = run("one-step", true)
	if err != nil {
		return nil, err
	}
	return res, nil
}
