package experiments

import (
	"gptpfta/internal/obs"
	"gptpfta/internal/runner"
)

// ResultSchemaVersion is the wire schema of WireResult. It is bumped when
// the envelope's shape changes incompatibly; additive, optional fields do
// not bump it. Clients should reject envelopes with a schema they do not
// know.
const ResultSchemaVersion = 1

// WireResult is the stable wire form of any experiment Result: a versioned
// envelope around the generic surface every study exposes — the one-line
// Summary, the Rows table (first row is the header; golden digests hash
// exactly these rows, so the wire form and the determinism gate can never
// disagree) and, when the result carries one, the obs metrics snapshot.
// The same envelope drives the job server's result endpoint, CSV emission
// and cross-process result archival.
type WireResult struct {
	// Schema is the envelope version (ResultSchemaVersion).
	Schema int `json:"schema"`
	// Experiment is the registry name of the study that produced the
	// result.
	Experiment string `json:"experiment"`
	// Summary is the result's one-line verdict.
	Summary string `json:"summary"`
	// Rows is the result's generic table; Rows[0] is the header.
	Rows [][]string `json:"rows"`
	// Obs is the metrics snapshot taken at experiment end, when the result
	// carries one.
	Obs []obs.Metric `json:"obs,omitempty"`
}

// Wire wraps a Result in its versioned wire envelope.
func Wire(experiment string, r Result) WireResult {
	w := WireResult{
		Schema:     ResultSchemaVersion,
		Experiment: experiment,
		Summary:    r.Summary(),
		Rows:       r.Rows(),
	}
	if c, ok := r.(ObsCarrier); ok {
		w.Obs = c.ObsMetrics()
	}
	return w
}

// EnableWarmStart switches a warm-capable config into warm-start mode,
// attaching the campaign metrics registry and the shared snapshot cache the
// study's runner pool should fork through. Configs without a warm mode pass
// through unchanged; the boolean reports whether the config was
// warm-capable. Because `json:"-"` fields do not survive the wire, callers
// that decode a config from JSON re-attach the runtime handles here, after
// decoding.
func EnableWarmStart(cfg any, reg *obs.Registry, snaps runner.SnapshotCache) (any, bool) {
	switch c := cfg.(type) {
	case BoundsConfig:
		c.WarmStart, c.Metrics, c.Snapshots = true, reg, snaps
		return c, true
	case FaultInjectionConfig:
		c.WarmStart, c.Metrics, c.Snapshots = true, reg, snaps
		return c, true
	case IntervalSweepConfig:
		c.WarmStart, c.Metrics, c.Snapshots = true, reg, snaps
		return c, true
	case DomainSweepConfig:
		c.WarmStart, c.Metrics, c.Snapshots = true, reg, snaps
		return c, true
	case NetworkChaosConfig:
		c.WarmStart, c.Metrics, c.Snapshots = true, reg, snaps
		return c, true
	}
	return cfg, false
}
