package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"gptpfta/internal/core"
	"gptpfta/internal/measure"
)

// RenderSeries draws an ASCII time/precision chart on a logarithmic y-axis,
// mirroring the paper's figure style (Π* windows plus the Π and Π+γ
// reference lines). Each column is one aggregation window showing the
// min–max span and the average.
func RenderSeries(windows []measure.Window, bound, gamma time.Duration, height int) string {
	if len(windows) == 0 {
		return "(no data)\n"
	}
	if height <= 0 {
		height = 16
	}
	logOf := func(v float64) float64 {
		if v < 1 {
			v = 1
		}
		return math.Log10(v)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, w := range windows {
		if l := logOf(w.MinNS); l < lo {
			lo = l
		}
		if h := logOf(w.MaxNS); h > hi {
			hi = h
		}
	}
	boundLog := logOf(float64(bound))
	boundGammaLog := logOf(float64(bound + gamma))
	if boundGammaLog > hi {
		hi = boundGammaLog
	}
	if boundLog < lo {
		lo = boundLog
	}
	lo = math.Floor(lo)
	hi = math.Ceil(hi)
	if hi <= lo {
		hi = lo + 1
	}

	width := len(windows)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(logV float64) int {
		frac := (logV - lo) / (hi - lo)
		r := height - 1 - int(frac*float64(height-1)+0.5)
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	// Π and Π+γ reference lines.
	for c := 0; c < width; c++ {
		grid[row(boundLog)][c] = '-'
		grid[row(boundGammaLog)][c] = '='
	}
	for c, w := range windows {
		top := row(logOf(w.MaxNS))
		bot := row(logOf(w.MinNS))
		for r := top; r <= bot; r++ {
			grid[r][c] = ':'
		}
		grid[row(logOf(w.AvgNS))][c] = '*'
	}

	var b strings.Builder
	for r := 0; r < height; r++ {
		frac := float64(height-1-r) / float64(height-1)
		label := math.Pow(10, lo+frac*(hi-lo))
		fmt.Fprintf(&b, "%9s |%s|\n", shortNS(label), string(grid[r]))
	}
	fmt.Fprintf(&b, "%9s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%9s  t=0%s t=%s\n", "", strings.Repeat(" ", maxInt(0, width-12)),
		time.Duration(windows[len(windows)-1].StartSec*float64(time.Second)).Truncate(time.Minute))
	fmt.Fprintf(&b, "legend: '*' window avg, ':' window min-max, '-' Pi=%v, '=' Pi+gamma=%v\n",
		bound, bound+gamma)
	return b.String()
}

func shortNS(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.0fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.0fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fus", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RenderHistogram draws the Fig. 4b distribution as horizontal bars.
func RenderHistogram(h measure.Histogram, maxBar int) string {
	if len(h.Counts) == 0 {
		return "(no data)\n"
	}
	if maxBar <= 0 {
		maxBar = 50
	}
	peak := 1
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		lo := float64(i) * h.BucketWidthNS
		bar := strings.Repeat("#", c*maxBar/peak)
		fmt.Fprintf(&b, "%8s |%-*s %d\n", shortNS(lo), maxBar, bar, c)
	}
	if h.Overflow > 0 {
		fmt.Fprintf(&b, "%8s |%d beyond range\n", ">", h.Overflow)
	}
	return b.String()
}

// RenderEvents lists Fig. 5-style event markers with offsets relative to
// the window start.
func RenderEvents(events []core.Event, fromSec float64) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	var b strings.Builder
	for _, e := range events {
		offset := time.Duration(float64(e.At) - fromSec*1e9).Truncate(time.Millisecond)
		marker := "x"
		switch e.Kind {
		case "vm_failed":
			marker = "v" // triangles in the paper
		case "takeover":
			marker = "*" // stars in the paper
		case "vm_rebooted":
			marker = "^"
		}
		fmt.Fprintf(&b, "  [%s] +%-12v %-5s %-4s %s %s\n", marker, offset, e.Node, e.VM, e.Kind, e.Detail)
	}
	return b.String()
}
