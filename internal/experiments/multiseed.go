package experiments

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"time"

	"gptpfta/internal/runner"
	"gptpfta/internal/sim"
)

// MultiSeedConfig parameterises the reproduction-robustness check: the
// headline fault-injection result re-run across independent seeds, so the
// reproduced shapes are demonstrably not single-seed accidents.
type MultiSeedConfig struct {
	// Seeds lists the per-run master seeds explicitly. When empty,
	// SeedCount seeds are derived from CampaignSeed (or the classic
	// {1..5} set when SeedCount is also zero).
	Seeds []int64 `json:"seeds,omitempty"`
	// CampaignSeed + SeedCount derive the per-run seeds via
	// sim.DeriveSeed, so a whole campaign is reproducible from one number.
	CampaignSeed int64         `json:"campaign_seed,omitempty"`
	SeedCount    int           `json:"seed_count,omitempty"`
	Duration     time.Duration `json:"duration,omitempty"`
	// Parallel is the worker count used to fan the seeds across cores:
	// 0 selects GOMAXPROCS, 1 forces sequential execution. The aggregated
	// result is identical for every value — each seed runs in its own
	// simulation with its own sim.Streams.
	Parallel int `json:"parallel,omitempty"`
	// Shards runs every per-seed campaign on a sharded PDES kernel (1 = the
	// legacy single scheduler). Results are bit-identical at every shard
	// count.
	Shards int `json:"shards,omitempty"`
}

// Validate implements Validator.
func (c MultiSeedConfig) Validate() error {
	if c.SeedCount < 0 {
		return fmt.Errorf("seed_count must not be negative (got %d)", c.SeedCount)
	}
	return firstErr(
		checkDurations(field{"duration", c.Duration}),
		checkShards(defaultShards(c.Shards)),
	)
}

func (c MultiSeedConfig) withDefaults() MultiSeedConfig {
	if len(c.Seeds) == 0 {
		if c.SeedCount > 0 {
			c.Seeds = make([]int64, c.SeedCount)
			for i := range c.Seeds {
				c.Seeds[i] = sim.DeriveSeed(c.CampaignSeed, "multiseed/"+strconv.Itoa(i))
			}
		} else {
			c.Seeds = []int64{1, 2, 3, 4, 5}
		}
	}
	if c.Duration <= 0 {
		c.Duration = 15 * time.Minute
	}
	c.Shards = defaultShards(c.Shards)
	return c
}

// SeedOutcome is one seed's headline numbers.
type SeedOutcome struct {
	Seed       int64
	MeanNS     float64
	MaxNS      float64
	Violations int
	Samples    int
	Takeovers  int
}

// MultiSeedResult aggregates outcomes across seeds.
type MultiSeedResult struct {
	Config   MultiSeedConfig
	Outcomes []SeedOutcome

	MeanOfMeansNS float64
	StdOfMeansNS  float64
	WorstMaxNS    float64
	AnyViolations int
}

// Summary renders the robustness verdict.
func (r *MultiSeedResult) Summary() string {
	return fmt.Sprintf(
		"across %d seeds (%v each): mean precision %.0f ± %.0f ns, worst spike %.0f ns, %d bound violations in total",
		len(r.Outcomes), r.Config.Duration, r.MeanOfMeansNS, r.StdOfMeansNS,
		r.WorstMaxNS, r.AnyViolations)
}

// Rows renders the per-seed table.
func (r *MultiSeedResult) Rows() [][]string {
	rows := [][]string{{"seed", "mean_ns", "max_ns", "violations", "samples", "takeovers"}}
	for _, o := range r.Outcomes {
		rows = append(rows, []string{
			strconv.FormatInt(o.Seed, 10),
			fmt.Sprintf("%.0f", o.MeanNS),
			fmt.Sprintf("%.0f", o.MaxNS),
			strconv.Itoa(o.Violations),
			strconv.Itoa(o.Samples),
			strconv.Itoa(o.Takeovers),
		})
	}
	return rows
}

// meanStd returns the mean and the population standard deviation of the
// values using the numerically stable two-pass form: the single-pass
// sumSq/n − mean² suffers catastrophic cancellation for large, tightly
// clustered values, can go negative and then silently reports a zero
// standard deviation.
func meanStd(values []float64) (mean, std float64) {
	if len(values) == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean = sum / float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(values)))
}

// MultiSeedValidation runs the fault-injection campaign once per seed —
// fanned across the runner's worker pool — and aggregates the headline
// statistics in seed order, regardless of completion order.
func MultiSeedValidation(ctx context.Context, cfg MultiSeedConfig) (*MultiSeedResult, error) {
	cfg = cfg.withDefaults()
	res := &MultiSeedResult{Config: cfg}

	runs := make([]runner.Run, len(cfg.Seeds))
	for i, seed := range cfg.Seeds {
		seed := seed
		runs[i] = runner.Run{
			Name: fmt.Sprintf("seed/%d", seed),
			Do: func(context.Context) (any, error) {
				return FaultInjection(FaultInjectionConfig{
					Seed:                seed,
					Duration:            cfg.Duration,
					GMPeriod:            cfg.Duration / 4,
					RedundantMinPerHour: 4,
					RedundantMaxPerHour: 8,
					Downtime:            30 * time.Second,
					Shards:              cfg.Shards,
				})
			},
		}
	}
	outcomes := runner.New(cfg.Parallel).Execute(ctx, runs)
	injections, err := runner.Values[*FaultInjectionResult](outcomes)
	if err != nil {
		return nil, err
	}

	means := make([]float64, 0, len(injections))
	for i, fi := range injections {
		out := SeedOutcome{
			Seed:       cfg.Seeds[i],
			MeanNS:     fi.Stats.MeanNS,
			MaxNS:      fi.Stats.MaxNS,
			Violations: fi.Violations,
			Samples:    fi.Stats.Count,
			Takeovers:  fi.Takeovers,
		}
		res.Outcomes = append(res.Outcomes, out)
		means = append(means, out.MeanNS)
		if out.MaxNS > res.WorstMaxNS {
			res.WorstMaxNS = out.MaxNS
		}
		res.AnyViolations += out.Violations
	}
	res.MeanOfMeansNS, res.StdOfMeansNS = meanStd(means)
	return res, nil
}
