package experiments

import (
	"fmt"
	"math"
	"time"
)

// MultiSeedConfig parameterises the reproduction-robustness check: the
// headline fault-injection result re-run across independent seeds, so the
// reproduced shapes are demonstrably not single-seed accidents.
type MultiSeedConfig struct {
	Seeds    []int64
	Duration time.Duration
}

func (c MultiSeedConfig) withDefaults() MultiSeedConfig {
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3, 4, 5}
	}
	if c.Duration <= 0 {
		c.Duration = 15 * time.Minute
	}
	return c
}

// SeedOutcome is one seed's headline numbers.
type SeedOutcome struct {
	Seed       int64
	MeanNS     float64
	MaxNS      float64
	Violations int
	Samples    int
	Takeovers  int
}

// MultiSeedResult aggregates outcomes across seeds.
type MultiSeedResult struct {
	Config   MultiSeedConfig
	Outcomes []SeedOutcome

	MeanOfMeansNS float64
	StdOfMeansNS  float64
	WorstMaxNS    float64
	AnyViolations int
}

// Summary renders the robustness verdict.
func (r MultiSeedResult) Summary() string {
	return fmt.Sprintf(
		"across %d seeds (%v each): mean precision %.0f ± %.0f ns, worst spike %.0f ns, %d bound violations in total",
		len(r.Outcomes), r.Config.Duration, r.MeanOfMeansNS, r.StdOfMeansNS,
		r.WorstMaxNS, r.AnyViolations)
}

// MultiSeedValidation runs the fault-injection campaign once per seed and
// aggregates the headline statistics.
func MultiSeedValidation(cfg MultiSeedConfig) (*MultiSeedResult, error) {
	cfg = cfg.withDefaults()
	res := &MultiSeedResult{Config: cfg}
	var sum, sumSq float64
	for _, seed := range cfg.Seeds {
		fi, err := FaultInjection(FaultInjectionConfig{
			Seed:                seed,
			Duration:            cfg.Duration,
			GMPeriod:            cfg.Duration / 4,
			RedundantMinPerHour: 4,
			RedundantMaxPerHour: 8,
			Downtime:            30 * time.Second,
		})
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		out := SeedOutcome{
			Seed:       seed,
			MeanNS:     fi.Stats.MeanNS,
			MaxNS:      fi.Stats.MaxNS,
			Violations: fi.Violations,
			Samples:    fi.Stats.Count,
			Takeovers:  fi.Takeovers,
		}
		res.Outcomes = append(res.Outcomes, out)
		sum += out.MeanNS
		sumSq += out.MeanNS * out.MeanNS
		if out.MaxNS > res.WorstMaxNS {
			res.WorstMaxNS = out.MaxNS
		}
		res.AnyViolations += out.Violations
	}
	n := float64(len(res.Outcomes))
	res.MeanOfMeansNS = sum / n
	variance := sumSq/n - res.MeanOfMeansNS*res.MeanOfMeansNS
	if variance > 0 {
		res.StdOfMeansNS = math.Sqrt(variance)
	}
	return res, nil
}
