package experiments

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// TestNetworkChaosHoldoverDuringPartition is the campaign's acceptance
// check: a partition longer than the holdover window drives the starved
// servos into holdover (visible through the obs counters) and back out
// after the heal, while a partition shorter than the window degrades
// precision gracefully without ever freezing a servo.
func TestNetworkChaosHoldoverDuringPartition(t *testing.T) {
	res, err := NetworkChaos(context.Background(), NetworkChaosConfig{
		Seed:               31,
		Duration:           5 * time.Minute,
		ChaosStart:         2 * time.Minute,
		BurstBadLoss:       []float64{0.9},
		PartitionDurations: []time.Duration{time.Second, 20 * time.Second},
		HoldoverWindow:     2 * time.Second,
		Parallel:           1,
	})
	if err != nil {
		t.Fatalf("network chaos: %v", err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(res.Points))
	}
	byLabel := map[string]ChaosPoint{}
	for _, p := range res.Points {
		byLabel[p.Label] = p
	}

	burst := byLabel["burst bad=0.90"]
	if burst.ChaosActions == 0 || burst.FramesLost == 0 {
		t.Errorf("burst point saw no chaos: %+v", burst)
	}

	short := byLabel["partition 1s"]
	if short.HoldoverEntered != 0 {
		t.Errorf("1 s partition < 2 s holdover window must not freeze a servo: %+v", short)
	}
	if short.Samples == 0 || short.MaxPrecisionNS <= 0 || short.MaxPrecisionNS > 100_000 {
		t.Errorf("short partition did not degrade gracefully: %+v", short)
	}

	long := byLabel["partition 20s"]
	if long.ChaosActions == 0 {
		t.Fatalf("partition action never fired: %+v", long)
	}
	if long.HoldoverEntered == 0 {
		t.Errorf("20 s partition > 2 s window must enter holdover: %+v", long)
	}
	if long.HoldoverExited == 0 {
		t.Errorf("servos must re-acquire after the heal: %+v", long)
	}
	if long.HoldoverExited > long.HoldoverEntered {
		t.Errorf("more holdover exits (%d) than entries (%d)", long.HoldoverExited, long.HoldoverEntered)
	}

	if res.Summary() == "" || len(res.Rows()) != 4 {
		t.Fatal("result rendering contract broken")
	}
	if len(res.ObsMetrics()) == 0 {
		t.Fatal("no obs snapshot carried")
	}
}

// TestNetworkChaosReproducible pins the campaign's determinism guarantee:
// two runs of the same config are byte-identical, sequentially or fanned
// across workers.
func TestNetworkChaosReproducible(t *testing.T) {
	run := func(parallel int) *NetworkChaosResult {
		res, err := NetworkChaos(context.Background(), NetworkChaosConfig{
			Seed:               32,
			Duration:           4 * time.Minute,
			ChaosStart:         2 * time.Minute,
			BurstBadLoss:       []float64{0.5},
			PartitionDurations: []time.Duration{10 * time.Second},
			HoldoverWindow:     2 * time.Second,
			Parallel:           parallel,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res
	}
	a, b, par := run(1), run(1), run(4)
	if !reflect.DeepEqual(a.Rows(), b.Rows()) {
		t.Fatalf("same-seed runs diverge:\n%v\n%v", a.Rows(), b.Rows())
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("summaries diverge:\n%s\n%s", a.Summary(), b.Summary())
	}
	if !reflect.DeepEqual(a.Rows(), par.Rows()) {
		t.Fatal("parallel execution changed the table")
	}
}

// TestFaultInjectionComposesChaos checks the VM injector and the chaos
// engine run in one campaign, with network actions counted in the
// injection stats.
func TestFaultInjectionComposesChaos(t *testing.T) {
	res, err := FaultInjection(FaultInjectionConfig{
		Seed:           33,
		Duration:       6 * time.Minute,
		GMPeriod:       2 * time.Minute,
		HoldoverWindow: 2 * time.Second,
		ChaosPlan:      partitionPlan(15*time.Second, 3*time.Minute),
	})
	if err != nil {
		t.Fatalf("fault injection with chaos: %v", err)
	}
	if res.Injection.NetworkFaults == 0 {
		t.Errorf("chaos actions not composed into injection stats: %+v", res.Injection)
	}
	if got := sumMetric(res.ObsMetrics(), "ptp4l_holdover_entered"); got == 0 {
		t.Error("15 s partition with 2 s window should enter holdover")
	}
	if res.Injection.TotalFailures == 0 {
		t.Errorf("VM campaign suppressed: %+v", res.Injection)
	}
}
