package experiments

import (
	"fmt"
	"math"
	"time"

	"gptpfta/internal/core"
	"gptpfta/internal/sim"
)

// VotingConfig parameterises the 2f+1 fail-consistent experiment (§II-A):
// with three clock-synchronization VMs per node and consistency voting in
// the hypervisor monitor, a VM that publishes *wrong but fresh* clock
// parameters is voted out; the fail-silent (freshness-only) monitor cannot
// see it.
type VotingConfig struct {
	Seed int64 `json:"seed"`
	// CorruptionNS is the clock error injected into the active VM's PHC
	// (a fail-consistent fault). Default 1 ms.
	CorruptionNS float64 `json:"corruption_ns,omitempty"`
	// Settle before the injection. Default 2 min.
	Settle time.Duration `json:"settle,omitempty"`
	// Observe after the injection. Default 1 min.
	Observe time.Duration `json:"observe,omitempty"`
	// Shards runs the simulation on a sharded PDES kernel (1 = the legacy
	// single scheduler). Results are bit-identical at every shard count.
	Shards int `json:"shards,omitempty"`
}

// Validate implements Validator.
func (c VotingConfig) Validate() error {
	if err := checkFinite("corruption_ns", c.CorruptionNS); err != nil {
		return err
	}
	return firstErr(
		checkDurations(
			field{"settle", c.Settle},
			field{"observe", c.Observe}),
		checkShards(defaultShards(c.Shards)),
	)
}

func (c VotingConfig) withDefaults() VotingConfig {
	if c.CorruptionNS == 0 {
		c.CorruptionNS = 1e6
	}
	if c.Settle <= 0 {
		c.Settle = 2 * time.Minute
	}
	if c.Observe <= 0 {
		c.Observe = time.Minute
	}
	c.Shards = defaultShards(c.Shards)
	return c
}

// VotingResult contrasts the voting monitor against the freshness-only one.
type VotingResult struct {
	Config VotingConfig
	// WithVotingMaxErrNS / WithoutVotingMaxErrNS are the worst observed
	// CLOCK_SYNCTIME deviations of the faulty node from its peers after
	// the corruption.
	WithVotingMaxErrNS    float64
	WithoutVotingMaxErrNS float64
	// WithVotingErrIntegral / WithoutVotingErrIntegral integrate the
	// deviation over the observation window (ns·s) — the damage a
	// dependent application accumulates.
	WithVotingErrIntegral    float64
	WithoutVotingErrIntegral float64
	// VotingDetection is the time from injection to the monitor's
	// failover; zero means it never fired.
	VotingDetection time.Duration
	VotingTakeovers int
}

// Summary renders the verdict.
func (r VotingResult) Summary() string {
	return fmt.Sprintf(
		"fail-consistent fault (%.0f ns corruption): voting monitor failed over in %v (error integral %.0f ns·s); freshness-only monitor never detected it (error integral %.0f ns·s)",
		r.Config.CorruptionNS, r.VotingDetection, r.WithVotingErrIntegral, r.WithoutVotingErrIntegral)
}

// Rows renders the per-monitor table.
func (r *VotingResult) Rows() [][]string {
	return [][]string{
		{"monitor", "max_err_ns", "err_integral_ns_s", "detection_ms", "takeovers"},
		{"voting", fmt.Sprintf("%.0f", r.WithVotingMaxErrNS),
			fmt.Sprintf("%.0f", r.WithVotingErrIntegral),
			fmt.Sprintf("%d", r.VotingDetection.Milliseconds()),
			fmt.Sprintf("%d", r.VotingTakeovers)},
		{"freshness-only", fmt.Sprintf("%.0f", r.WithoutVotingMaxErrNS),
			fmt.Sprintf("%.0f", r.WithoutVotingErrIntegral), "0", "0"},
	}
}

// VotingFailover runs the experiment twice — with the monitor's
// consistency vote enabled (2f+1 = 3 VMs per node) and disabled — and
// reports the observed node-level clock error.
func VotingFailover(cfg VotingConfig) (*VotingResult, error) {
	cfg = cfg.withDefaults()
	res := &VotingResult{Config: cfg}

	run := func(voteThresholdNS float64) (maxErr, errIntegral float64, detection time.Duration, takeovers int, err error) {
		sysCfg := core.NewConfig(cfg.Seed)
		sysCfg.Shards = cfg.Shards
		sysCfg.VMsPerNode = 3 // 2f+1 for f = 1 fail-consistent
		sysCfg.VoteThresholdNS = voteThresholdNS
		sys, err := core.NewSystem(sysCfg)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if err := sys.Start(); err != nil {
			return 0, 0, 0, 0, err
		}
		if err := sys.RunFor(cfg.Settle); err != nil {
			return 0, 0, 0, 0, err
		}

		node := sys.Node(2) // dev3's active VM gets corrupted
		active := node.STSHMEM().Active()
		vm := node.VM(active)
		injectedAt := sys.Now()
		vm.Stack.NIC().PHC().Step(cfg.CorruptionNS)

		var detectedAt sim.Time
		const stepSec = 0.05
		end := sys.Now().Add(cfg.Observe)
		for sys.Now() < end {
			if err := sys.RunFor(50 * time.Millisecond); err != nil {
				return 0, 0, 0, 0, err
			}
			if detectedAt == 0 && node.STSHMEM().Active() != active {
				detectedAt = sys.Now()
			}
			v, ok := node.SyncTimeNow()
			if !ok {
				continue
			}
			var sum float64
			var n int
			for i, other := range sys.Nodes() {
				if i == 2 {
					continue
				}
				if ov, ok := other.SyncTimeNow(); ok {
					sum += ov
					n++
				}
			}
			if n == 0 {
				continue
			}
			e := math.Abs(v - sum/float64(n))
			if e > maxErr {
				maxErr = e
			}
			errIntegral += e * stepSec
		}
		if detectedAt != 0 {
			detection = detectedAt.Sub(injectedAt)
		}
		return maxErr, errIntegral, detection, int(node.Takeovers()), nil
	}

	var err error
	res.WithVotingMaxErrNS, res.WithVotingErrIntegral, res.VotingDetection, res.VotingTakeovers, err = run(5000)
	if err != nil {
		return nil, err
	}
	res.WithoutVotingMaxErrNS, res.WithoutVotingErrIntegral, _, _, err = run(0)
	if err != nil {
		return nil, err
	}
	return res, nil
}
