package experiments

import (
	"context"
	"testing"
	"time"
)

func TestVotingFailover(t *testing.T) {
	res, err := VotingFailover(VotingConfig{Seed: 9})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.VotingDetection <= 0 || res.VotingDetection > time.Second {
		t.Fatalf("voting detection = %v, want within a few monitor periods", res.VotingDetection)
	}
	if res.WithVotingErrIntegral*3 > res.WithoutVotingErrIntegral {
		t.Fatalf("voting should cut the error integral sharply: %.0f vs %.0f ns·s",
			res.WithVotingErrIntegral, res.WithoutVotingErrIntegral)
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestRecoveryComparison(t *testing.T) {
	res, err := RecoveryComparison(context.Background(), RecoveryConfig{Seed: 4, Duration: 40 * time.Minute})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Linux.Failures == 0 || res.Unikernel.Failures == 0 {
		t.Fatalf("no failures injected: %+v", res)
	}
	if res.Linux.DegradedSeconds <= res.Unikernel.DegradedSeconds {
		t.Fatalf("unikernel reboots should cut degraded time: linux %.0f s vs unikernel %.0f s",
			res.Linux.DegradedSeconds, res.Unikernel.DegradedSeconds)
	}
	if res.Linux.DegradedSeconds < 5*res.Unikernel.DegradedSeconds {
		t.Fatalf("expected a large exposure reduction, got linux %.0f s vs unikernel %.0f s",
			res.Linux.DegradedSeconds, res.Unikernel.DegradedSeconds)
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestSyncIntervalSweep(t *testing.T) {
	res, err := IntervalSweep(context.Background(), IntervalSweepConfig{
		Seed:      6,
		Intervals: []time.Duration{62500 * time.Microsecond, 250 * time.Millisecond},
		Duration:  5 * time.Minute,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	points := res.Points
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if res.Summary() == "" || len(res.Rows()) != 3 {
		t.Fatalf("sweep result rendering: %q / %d rows", res.Summary(), len(res.Rows()))
	}
	// Γ = 2·r_max·S: the bound must grow with S.
	if points[1].BoundNS <= points[0].BoundNS {
		t.Fatalf("bound did not grow with S: %v", points)
	}
	for _, p := range points {
		if p.Violations > p.Samples/20 {
			t.Fatalf("violations at %s: %s", p.Label, p)
		}
		if p.String() == "" {
			t.Fatal("empty row")
		}
	}
}

func TestDomainCountSweep(t *testing.T) {
	res, err := DomainSweep(context.Background(), DomainSweepConfig{
		Seed: 8, Counts: []int{2, 4}, Duration: 8 * time.Minute, Parallel: 1,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	points := res.Points
	// M = 2 cannot mask the Byzantine GM; M = 4 must.
	if points[0].Violations < points[0].Samples/4 {
		t.Fatalf("M=2 unexpectedly masked the Byzantine GM: %s", points[0])
	}
	if points[1].Violations > points[1].Samples/20 {
		t.Fatalf("M=4 failed to mask the Byzantine GM: %s", points[1])
	}
}

func TestTASStudy(t *testing.T) {
	res, err := TASStudy(TASStudyConfig{Seed: 14})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.FIFO.SyncsObserved < 100 || res.Protected.SyncsObserved < 100 {
		t.Fatalf("syncs: fifo %d, protected %d", res.FIFO.SyncsObserved, res.Protected.SyncsObserved)
	}
	if res.FIFO.BEFramesSent == 0 {
		t.Fatal("no background load")
	}
	// The protected window must cut the Sync latency spread sharply: under
	// FIFO, Syncs queue behind multi-frame 1500 B bursts (tens of µs).
	if res.FIFO.Spread < 3*res.Protected.Spread {
		t.Fatalf("TAS effect too small: fifo spread %v vs protected %v",
			res.FIFO.Spread, res.Protected.Spread)
	}
	if res.Protected.Spread > 25*time.Microsecond {
		t.Fatalf("protected spread %v implausibly wide", res.Protected.Spread)
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestMultiSeedValidation(t *testing.T) {
	res, err := MultiSeedValidation(context.Background(), MultiSeedConfig{
		Seeds:    []int64{11, 22, 33},
		Duration: 10 * time.Minute,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	// The reproduction must be seed-robust: sub-µs means on every seed,
	// no bound violations anywhere.
	for _, o := range res.Outcomes {
		if o.MeanNS > 1500 {
			t.Fatalf("seed %d mean %.0f ns", o.Seed, o.MeanNS)
		}
		if o.Samples < 400 {
			t.Fatalf("seed %d samples %d", o.Seed, o.Samples)
		}
	}
	if res.AnyViolations > 0 {
		t.Fatalf("%d violations across seeds", res.AnyViolations)
	}
	if res.StdOfMeansNS > res.MeanOfMeansNS {
		t.Fatalf("means scatter too wide: %.0f ± %.0f", res.MeanOfMeansNS, res.StdOfMeansNS)
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestDynamicMeshStudy(t *testing.T) {
	res, err := DynamicMeshStudy(DynamicMeshConfig{Seed: 15})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.ElectedGM != "s1" || res.SuccessorGM != "s2" {
		t.Fatalf("election: %s -> %s", res.ElectedGM, res.SuccessorGM)
	}
	if res.PassivePorts == 0 {
		t.Fatal("mesh loops not broken")
	}
	// The outage spans at least the announce receipt timeout.
	if res.SyncOutage < 3*time.Second {
		t.Fatalf("outage %v below the receipt timeout", res.SyncOutage)
	}
	if res.SyncOutage > 20*time.Second {
		t.Fatalf("outage %v implausibly long", res.SyncOutage)
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestOneStepStudy(t *testing.T) {
	res, err := OneStepStudy(OneStepStudyConfig{Seed: 16})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.TwoStep.Samples < 500 || res.OneStep.Samples < 500 {
		t.Fatalf("samples: %d / %d", res.TwoStep.Samples, res.OneStep.Samples)
	}
	// Parity: both modes accurate to ~100 ns RMS through the relay.
	if res.TwoStep.OffsetErrRMS > 150 || res.OneStep.OffsetErrRMS > 150 {
		t.Fatalf("accuracy: two-step %.0f, one-step %.0f ns RMS",
			res.TwoStep.OffsetErrRMS, res.OneStep.OffsetErrRMS)
	}
	// One-step halves the event traffic (no FollowUps).
	if res.OneStep.Messages > res.TwoStep.Messages*6/10 {
		t.Fatalf("messages: one-step %d vs two-step %d, want ~half",
			res.OneStep.Messages, res.TwoStep.Messages)
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}
