package experiments

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"gptpfta/internal/core"
	"gptpfta/internal/faultinject"
	"gptpfta/internal/runner"
)

// RecoveryConfig parameterises the paper's §IV future-work study: replacing
// the feature-rich GNU/Linux clock-synchronization VMs with unikernels
// shrinks the reboot time after a fail-silent fault, which shortens the
// windows during which a node runs without redundancy.
type RecoveryConfig struct {
	Seed     int64         `json:"seed"`
	Duration time.Duration `json:"duration,omitempty"`
	// LinuxDowntime is the guest reboot time of the GNU/Linux stack.
	// Default 45 s (Atom-class ECD).
	LinuxDowntime time.Duration `json:"linux_downtime,omitempty"`
	// UnikernelDowntime is the boot time of a Unikraft-style unikernel.
	// Default 2 s.
	UnikernelDowntime time.Duration `json:"unikernel_downtime,omitempty"`
	// Parallel is the runner's worker count for the two stack campaigns
	// (0 = GOMAXPROCS, 1 = sequential); the result is identical either way.
	Parallel int `json:"parallel,omitempty"`
	// Shards runs each campaign on a sharded PDES kernel (1 = the legacy
	// single scheduler). Results are bit-identical at every shard count.
	Shards int `json:"shards,omitempty"`
}

// Validate implements Validator.
func (c RecoveryConfig) Validate() error {
	return firstErr(
		checkDurations(
			field{"duration", c.Duration},
			field{"linux_downtime", c.LinuxDowntime},
			field{"unikernel_downtime", c.UnikernelDowntime}),
		checkShards(defaultShards(c.Shards)),
	)
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Hour
	}
	if c.LinuxDowntime <= 0 {
		c.LinuxDowntime = 45 * time.Second
	}
	if c.UnikernelDowntime <= 0 {
		c.UnikernelDowntime = 2 * time.Second
	}
	c.Shards = defaultShards(c.Shards)
	return c
}

// RecoveryOutcome describes one stack variant's campaign.
type RecoveryOutcome struct {
	Downtime time.Duration
	// DegradedSeconds is the cumulative time any node ran with fewer than
	// two healthy clock-synchronization VMs.
	DegradedSeconds float64
	// StaleDomainSeconds is the cumulative time any gPTP domain had no
	// emitting grandmaster.
	StaleDomainSeconds float64
	Failures           int
	MeanPrecisionNS    float64
}

// RecoveryResult contrasts the two stacks.
type RecoveryResult struct {
	Config    RecoveryConfig
	Linux     RecoveryOutcome
	Unikernel RecoveryOutcome
}

// Summary renders the verdict.
func (r *RecoveryResult) Summary() string {
	return fmt.Sprintf(
		"recovery (%v campaign): GNU/Linux reboot %v → %.0f s degraded redundancy; unikernel reboot %v → %.0f s degraded (%.1fx less exposure)",
		r.Config.Duration, r.Config.LinuxDowntime, r.Linux.DegradedSeconds,
		r.Config.UnikernelDowntime, r.Unikernel.DegradedSeconds,
		safeRatio(r.Linux.DegradedSeconds, r.Unikernel.DegradedSeconds))
}

// Rows renders the per-stack table.
func (r *RecoveryResult) Rows() [][]string {
	rows := [][]string{{"stack", "downtime", "degraded_s", "stale_domain_s", "failures", "mean_precision_ns"}}
	for _, v := range []struct {
		name string
		out  RecoveryOutcome
	}{{"linux", r.Linux}, {"unikernel", r.Unikernel}} {
		rows = append(rows, []string{
			v.name,
			v.out.Downtime.String(),
			fmt.Sprintf("%.0f", v.out.DegradedSeconds),
			fmt.Sprintf("%.0f", v.out.StaleDomainSeconds),
			strconv.Itoa(v.out.Failures),
			fmt.Sprintf("%.0f", v.out.MeanPrecisionNS),
		})
	}
	return rows
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// RecoveryComparison runs the same fault-injection campaign against both
// stack variants — in parallel through the runner — and measures redundancy
// exposure.
func RecoveryComparison(ctx context.Context, cfg RecoveryConfig) (*RecoveryResult, error) {
	cfg = cfg.withDefaults()
	res := &RecoveryResult{Config: cfg}

	run := func(downtime time.Duration) (RecoveryOutcome, error) {
		out := RecoveryOutcome{Downtime: downtime}
		sysCfg := core.NewConfig(cfg.Seed)
		sysCfg.Shards = cfg.Shards
		sys, err := core.NewSystem(sysCfg)
		if err != nil {
			return out, err
		}
		if err := sys.Start(); err != nil {
			return out, err
		}
		controls := sys.NodeControls()
		nodes := make([]faultinject.NodeControl, len(controls))
		for i := range controls {
			nodes[i] = controls[i]
		}
		inj, err := faultinject.New(sys.Scheduler(), sys.Streams().Stream("inject"), nodes,
			faultinject.Config{
				GMPeriod:            10 * time.Minute,
				RedundantMinPerHour: 3,
				RedundantMaxPerHour: 6,
				Downtime:            downtime,
				DowntimeJitter:      downtime / 8,
				Start:               2 * time.Minute,
			})
		if err != nil {
			return out, err
		}
		if err := inj.Start(); err != nil {
			return out, err
		}

		// Sample redundancy and grandmaster liveness once per second.
		tick, err := sys.Scheduler().Every(sys.Now(), time.Second, func() {
			for _, n := range sys.Nodes() {
				if n.HealthyVMs() < 2 {
					out.DegradedSeconds++
				}
			}
			for i := 0; i < sys.Config().Nodes; i++ {
				name := core.VMName(i, 0)
				vm, ok := sys.VM(name)
				if ok && (!vm.Stack.Running() || vm.Stack.Master() == nil || !vm.Stack.Master().Running()) {
					out.StaleDomainSeconds++
				}
			}
		})
		if err != nil {
			return out, err
		}
		defer tick.Stop()

		if err := sys.RunFor(cfg.Duration); err != nil {
			return out, err
		}
		inj.Stop()
		out.Failures = inj.Stats().TotalFailures
		var sum float64
		var n int
		for _, s := range sys.Collector().Samples() {
			if s.AtSec > 60 {
				sum += s.PiStarNS
				n++
			}
		}
		if n > 0 {
			out.MeanPrecisionNS = sum / float64(n)
		}
		return out, nil
	}

	campaign := func(downtime time.Duration) func(context.Context) (any, error) {
		return func(context.Context) (any, error) {
			out, err := run(downtime)
			if err != nil {
				return nil, err
			}
			return out, nil
		}
	}
	outcomes := runner.New(cfg.Parallel).Execute(ctx, []runner.Run{
		{Name: "stack/linux", Do: campaign(cfg.LinuxDowntime)},
		{Name: "stack/unikernel", Do: campaign(cfg.UnikernelDowntime)},
	})
	outs, err := runner.Values[RecoveryOutcome](outcomes)
	if err != nil {
		return nil, err
	}
	res.Linux, res.Unikernel = outs[0], outs[1]
	return res, nil
}
