package experiments

import (
	"fmt"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/gptp"
	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// BMCAReconvergenceConfig parameterises the BMCA ablation: how long a
// BMCA-managed single-domain network is without an agreed grandmaster
// after the elected one fails silently. The paper's architecture avoids
// this gap entirely — static external port configuration plus the FTA mask
// a fail-silent grandmaster continuously.
type BMCAReconvergenceConfig struct {
	Seed             int64         `json:"seed"`
	Systems          int           `json:"systems,omitempty"`           // chain length; default 4
	AnnounceInterval time.Duration `json:"announce_interval,omitempty"` // default 1 s (802.1AS)
	TimeoutCount     int           `json:"timeout_count,omitempty"`     // announce receipt timeout; default 3
}

// Validate implements Validator.
func (c BMCAReconvergenceConfig) Validate() error {
	if c.Systems < 0 {
		return fmt.Errorf("systems must not be negative (got %d)", c.Systems)
	}
	if c.TimeoutCount < 0 {
		return fmt.Errorf("timeout_count must not be negative (got %d)", c.TimeoutCount)
	}
	return checkDurations(field{"announce_interval", c.AnnounceInterval})
}

func (c BMCAReconvergenceConfig) withDefaults() BMCAReconvergenceConfig {
	if c.Systems <= 1 {
		c.Systems = 4
	}
	if c.AnnounceInterval <= 0 {
		c.AnnounceInterval = time.Second
	}
	if c.TimeoutCount <= 0 {
		c.TimeoutCount = 3
	}
	return c
}

// BMCAReconvergenceResult reports the election timings.
type BMCAReconvergenceResult struct {
	Config BMCAReconvergenceConfig
	// InitialElection is the time from cold start until every system
	// agrees on the grandmaster.
	InitialElection time.Duration
	// ReelectionGap is the time from the grandmaster's silent failure
	// until every surviving system agrees on the successor — the window
	// during which BMCA-based networks have no synchronized time source.
	ReelectionGap time.Duration
	Successor     string
}

// Summary renders the verdict.
func (r BMCAReconvergenceResult) Summary() string {
	return fmt.Sprintf(
		"BMCA (announce %v, timeout %d): initial election %v; re-election gap after GM failure %v (successor %s) — the paper's static configuration + FTA masks the same failure with zero gap",
		r.Config.AnnounceInterval, r.Config.TimeoutCount, r.InitialElection, r.ReelectionGap, r.Successor)
}

// Rows renders the election timings.
func (r BMCAReconvergenceResult) Rows() [][]string {
	return [][]string{
		{"announce_interval", "timeout_count", "initial_election_ms", "reelection_gap_ms", "successor"},
		{r.Config.AnnounceInterval.String(), fmt.Sprintf("%d", r.Config.TimeoutCount),
			fmt.Sprintf("%d", r.InitialElection.Milliseconds()),
			fmt.Sprintf("%d", r.ReelectionGap.Milliseconds()), r.Successor},
	}
}

type bmcaAblationHook struct{ engine *gptp.BMCA }

func (h *bmcaAblationHook) Handle(_ *netsim.Bridge, ingress int, f *netsim.Frame, _ float64) bool {
	if a, ok := f.Payload.(*gptp.Announce); ok {
		h.engine.HandleAnnounce(ingress, a)
	}
	return true
}

// BMCAReconvergence builds a single-domain chain of time-aware systems
// under BMCA control, measures the initial election, fails the elected
// grandmaster (the chain's best clock sits at one end so the survivors
// stay connected), and measures the re-election gap.
func BMCAReconvergence(cfg BMCAReconvergenceConfig) (*BMCAReconvergenceResult, error) {
	cfg = cfg.withDefaults()
	sched := sim.NewScheduler()
	streams := sim.NewStreams(cfg.Seed)

	n := cfg.Systems
	engines := make([]*gptp.BMCA, n)
	bridges := make([]*netsim.Bridge, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("sys%d", i)
		osc := clock.NewOscillator(clock.OscillatorConfig{}, streams.Stream("osc/"+name), 0)
		phc := clock.NewPHC(sched, osc, streams.Stream("ts/"+name), clock.PHCConfig{})
		br := netsim.NewBridge(name, sched, streams.Stream("br/"+name), phc,
			netsim.BridgeConfig{Ports: 2, Residence: map[int]netsim.ResidenceModel{
				netsim.PriorityBestEffort: {Base: time.Microsecond, JitterNS: 100},
			}})
		bridges[i] = br

		tx := make([]gptp.TxFunc, 2)
		for p := 0; p < 2; p++ {
			p := p
			brCopy := br
			tx[p] = func(f *netsim.Frame) (float64, bool) { return brCopy.Transmit(p, f), true }
		}
		priority := uint8(128)
		switch i {
		case n - 1:
			priority = 50 // the elected grandmaster, at the chain's end
		case 0:
			priority = 60 // the successor
		}
		engine, err := gptp.NewBMCA(sched, tx, gptp.BMCAConfig{
			Domain: 0,
			Self: gptp.SystemIdentity{
				Priority1: priority, ClockClass: 248, Priority2: 128, ClockID: name,
			},
			AnnounceInterval:    cfg.AnnounceInterval,
			ReceiptTimeoutCount: cfg.TimeoutCount,
		}, nil)
		if err != nil {
			return nil, err
		}
		br.SetHook(&bmcaAblationHook{engine: engine})
		engines[i] = engine
	}
	for i := 0; i+1 < n; i++ {
		if _, err := netsim.Connect(sched, streams.Stream(fmt.Sprintf("link/%d", i)),
			netsim.LinkConfig{Propagation: 500 * time.Nanosecond, JitterNS: 20},
			bridges[i].Port(1), bridges[i+1].Port(0)); err != nil {
			return nil, err
		}
	}
	for _, e := range engines {
		if err := e.Start(); err != nil {
			return nil, err
		}
	}

	gmName := fmt.Sprintf("sys%d", n-1)
	agreedOn := func(name string, exclude int) bool {
		for i, e := range engines {
			if i == exclude {
				continue
			}
			if e.GM().ClockID != name {
				return false
			}
		}
		return true
	}
	waitAgreement := func(name string, exclude int, limit time.Duration) (time.Duration, error) {
		start := sched.Now()
		deadline := start.Add(limit)
		for sched.Now() < deadline {
			if agreedOn(name, exclude) {
				return sched.Now().Sub(start), nil
			}
			if err := sched.RunFor(10 * time.Millisecond); err != nil {
				return 0, err
			}
		}
		return 0, fmt.Errorf("experiments: no agreement on %s within %v", name, limit)
	}

	res := &BMCAReconvergenceResult{Config: cfg}
	elect, err := waitAgreement(gmName, -1, time.Duration(n)*10*cfg.AnnounceInterval)
	if err != nil {
		return nil, err
	}
	res.InitialElection = elect

	engines[n-1].Stop() // fail-silent grandmaster
	successor := "sys0"
	gap, err := waitAgreement(successor, n-1, time.Duration(cfg.TimeoutCount+n)*10*cfg.AnnounceInterval)
	if err != nil {
		return nil, err
	}
	res.ReelectionGap = gap
	res.Successor = successor
	return res, nil
}
