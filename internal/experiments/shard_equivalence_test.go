package experiments

import (
	"reflect"
	"testing"
	"time"

	"gptpfta/internal/sim"
)

// shardDigest runs one experiment entrypoint and returns its rendered
// output — Summary plus every Rows cell — which must be bit-identical at
// every shard count.
type shardDigest struct {
	Summary string
	Rows    [][]string
}

func digestOf(t *testing.T, res Result, err error) shardDigest {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	return shardDigest{Summary: res.Summary(), Rows: res.Rows()}
}

// TestShardEquivalenceExperiments is the experiments-layer face of the PDES
// determinism contract: the rendered Summary and Rows of a study are
// bit-identical at shard counts 1, 2, 4 and 8, across five derived seeds.
// Bounds exercises the measurement path; the per-seed resilience run (one
// seed, all shard counts) also covers control-context event injection
// (exploits scheduled on the control scheduler).
func TestShardEquivalenceExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard equivalence sweep is slow")
	}
	shardCounts := []int{1, 2, 4, 8}

	for i := 0; i < 5; i++ {
		seed := sim.DeriveSeed(99, "shard-equivalence/"+string(rune('a'+i)))
		var ref shardDigest
		for _, shards := range shardCounts {
			res, err := Bounds(BoundsConfig{Seed: seed, Duration: 2 * time.Minute, Shards: shards})
			got := digestOf(t, res, err)
			if shards == shardCounts[0] {
				ref = got
				continue
			}
			if got.Summary != ref.Summary {
				t.Fatalf("bounds seed %d: summary diverged at %d shards:\n  1: %s\n  %d: %s",
					seed, shards, ref.Summary, shards, got.Summary)
			}
			if !reflect.DeepEqual(got.Rows, ref.Rows) {
				t.Fatalf("bounds seed %d: rows diverged at %d shards", seed, shards)
			}
		}
	}

	var ref shardDigest
	for _, shards := range shardCounts {
		res, err := CyberResilience(CyberResilienceConfig{Seed: 7, Duration: 4 * time.Minute, Shards: shards})
		got := digestOf(t, res, err)
		if shards == shardCounts[0] {
			ref = got
			continue
		}
		if got.Summary != ref.Summary {
			t.Fatalf("resilience: summary diverged at %d shards:\n  1: %s\n  %d: %s",
				shards, ref.Summary, shards, got.Summary)
		}
		if !reflect.DeepEqual(got.Rows, ref.Rows) {
			t.Fatalf("resilience: rows diverged at %d shards", shards)
		}
	}

	// Fault injection is the regression anchor for control-instant shard
	// clocks: the injector's FailVM/RebootVM callbacks run on the control
	// scheduler and re-arm the rebooted stack's timers from the node's
	// shard clock, which must read exactly tc (not tc−1) at every shard
	// count. GMPeriod/Downtime are compressed so several failure/reboot/
	// takeover cycles land inside the short campaign.
	ref = shardDigest{}
	for _, shards := range shardCounts {
		res, err := FaultInjection(FaultInjectionConfig{
			Seed:                11,
			Duration:            6 * time.Minute,
			GMPeriod:            90 * time.Second,
			RedundantMinPerHour: 6,
			RedundantMaxPerHour: 12,
			Downtime:            20 * time.Second,
			Shards:              shards,
		})
		got := digestOf(t, res, err)
		if shards == shardCounts[0] {
			ref = got
			continue
		}
		if got.Summary != ref.Summary {
			t.Fatalf("faultinjection: summary diverged at %d shards:\n  1: %s\n  %d: %s",
				shards, ref.Summary, shards, got.Summary)
		}
		if !reflect.DeepEqual(got.Rows, ref.Rows) {
			t.Fatalf("faultinjection: rows diverged at %d shards", shards)
		}
	}
}
