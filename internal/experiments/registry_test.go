package experiments

import (
	"context"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestRegistryCatalogue(t *testing.T) {
	want := []string{
		"attacks", "baseline", "bmca", "bounds", "domains", "dynamic",
		"faultinjection", "flag-policy", "interval", "multiseed", "netchaos",
		"onestep", "recovery", "resilience", "single-domain", "tas", "voting",
		"wansites",
	}
	got := Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registry names = %v, want %v", got, want)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Names() not sorted: %v", got)
	}
	for _, e := range All() {
		if e.Description() == "" {
			t.Fatalf("%s: empty description", e.Name())
		}
		if e.DefaultConfig(7) == nil {
			t.Fatalf("%s: nil default config", e.Name())
		}
	}
	if _, err := Lookup("no-such-study"); err == nil {
		t.Fatal("Lookup invented an experiment")
	}
}

func TestLookupUnknownError(t *testing.T) {
	_, err := Lookup("intervl")
	if err == nil {
		t.Fatal("want error for unknown experiment")
	}
	msg := err.Error()
	if !strings.Contains(msg, `did you mean "interval"?`) {
		t.Fatalf("missing fuzzy suggestion in %q", msg)
	}
	for _, name := range Names() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error does not list registered name %q: %q", name, msg)
		}
	}
	// A name nowhere near any registered study gets the listing but no
	// nonsense suggestion.
	_, err = Lookup("zzzzzzzzzzzzzzz")
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("suggestion for hopeless name: %v", err)
	}
}

func TestRegistryDispatch(t *testing.T) {
	exp, err := Lookup("bounds")
	if err != nil {
		t.Fatalf("bounds not registered: %v", err)
	}
	res, err := exp.Run(context.Background(), BoundsConfig{Seed: 2, Duration: 3 * time.Minute})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Summary() == "" {
		t.Fatal("empty summary through the registry")
	}
	rows := res.Rows()
	if len(rows) < 2 || len(rows[0]) == 0 {
		t.Fatalf("rows contract broken: %v", rows)
	}
}

func TestRegistryWrongConfigType(t *testing.T) {
	exp, _ := Lookup("bounds")
	_, err := exp.Run(context.Background(), 42)
	if err == nil || !strings.Contains(err.Error(), "config is int") {
		t.Fatalf("want config-type error, got %v", err)
	}
}

func TestRegistryPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exp, _ := Lookup("bounds")
	if _, err := exp.Run(ctx, BoundsConfig{Seed: 1}); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestMeanStdStable pins the two-pass variance fix: the single-pass
// sumSq/n − mean² form loses all significance on these inputs (float64
// squares of ~1e9 drop the ±1 structure entirely) and reported std = 0.
func TestMeanStdStable(t *testing.T) {
	mean, std := meanStd([]float64{1e9, 1e9 + 1, 1e9 + 2})
	if mean != 1e9+1 {
		t.Fatalf("mean = %v", mean)
	}
	want := math.Sqrt(2.0 / 3.0) // population std of {-1, 0, 1}
	if math.Abs(std-want) > 1e-9 {
		t.Fatalf("std = %v, want %v (catastrophic cancellation?)", std, want)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Fatalf("empty input: %v, %v", m, s)
	}
}

func TestMultiSeedDerivedSeeds(t *testing.T) {
	a := MultiSeedConfig{CampaignSeed: 99, SeedCount: 4}.withDefaults()
	b := MultiSeedConfig{CampaignSeed: 99, SeedCount: 4}.withDefaults()
	if !reflect.DeepEqual(a.Seeds, b.Seeds) {
		t.Fatalf("derived seeds not reproducible: %v vs %v", a.Seeds, b.Seeds)
	}
	seen := map[int64]bool{}
	for _, s := range a.Seeds {
		if seen[s] {
			t.Fatalf("derived seed collision in %v", a.Seeds)
		}
		seen[s] = true
	}
	c := MultiSeedConfig{CampaignSeed: 100, SeedCount: 4}.withDefaults()
	if reflect.DeepEqual(a.Seeds, c.Seeds) {
		t.Fatal("different campaign seeds derived identical run seeds")
	}
}

// TestMultiSeedParallelDeterminism is the API's headline guarantee: the
// aggregated campaign result is byte-identical whether the seeds run
// sequentially or fanned across eight workers.
func TestMultiSeedParallelDeterminism(t *testing.T) {
	run := func(parallel int) *MultiSeedResult {
		res, err := MultiSeedValidation(context.Background(), MultiSeedConfig{
			Seeds:    []int64{5, 6},
			Duration: 6 * time.Minute,
			Parallel: parallel,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq.Outcomes, par.Outcomes) {
		t.Fatalf("outcomes diverge:\nseq: %+v\npar: %+v", seq.Outcomes, par.Outcomes)
	}
	if seq.Summary() != par.Summary() {
		t.Fatalf("summaries diverge:\n%s\n%s", seq.Summary(), par.Summary())
	}
	if !reflect.DeepEqual(seq.Rows(), par.Rows()) {
		t.Fatal("rows diverge")
	}
}
