package experiments

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"time"

	"gptpfta/internal/chaos"
	"gptpfta/internal/core"
	"gptpfta/internal/obs"
	"gptpfta/internal/runner"
	"gptpfta/internal/wan"
)

// Wide-area campaign verdicts. Unlike the LAN-tier attack verdicts, the
// degraded outcome is a success class: a point that loses its site-level
// quorum is SUPPOSED to enter cross-site holdover, provided it re-stabilizes
// within the configured window after the fault heals.
const (
	WanVerdictSurvived = "survived"
	WanVerdictDegraded = "degraded-within-bound"
	WanVerdictAnomaly  = "anomaly"
)

// wanAsymRamp is the wan-asym-drift ramp time: the WAN path migrates to its
// asymmetric configuration over this window (a routing change, not a step).
const wanAsymRamp = 5 * time.Second

// wanSitesEnvelopeNS is the base steady-state site-spread envelope: WAN
// measurement noise (2 µs 1-sigma per reading) plus servo ripple, with
// headroom. A point's full envelope adds the asymmetry bias A/2 the
// equilibrium provably carries (the biased site settles half the injected
// asymmetry away from the pack).
const wanSitesEnvelopeNS = 50_000

// WanSitesConfig parameterises the wide-area campaign: a sweep over
// (site count, simultaneously failed sites, injected WAN asymmetry)
// measuring the graceful-degradation guarantees of the site-level FTA tier
// against its analytic quorum bound min(f, ⌊(N−1)/2⌋).
type WanSitesConfig struct {
	Seed int64 `json:"seed"`
	// Duration of each sweep point's run.
	Duration time.Duration `json:"duration,omitempty"`
	// FaultStart delays the fault, letting both tiers converge first.
	FaultStart time.Duration `json:"fault_start,omitempty"`
	// FaultDuration is how long the failed sites stay dark before the
	// auto-revert restores them. It must outlive the WAN tier's staleness
	// window plus its holdover window, or an over-budget failure never
	// reaches frozen holdover.
	FaultDuration time.Duration `json:"fault_duration,omitempty"`
	// SiteCounts sweeps the fabric size N (each site one full paper mesh).
	SiteCounts []int `json:"site_counts,omitempty"`
	// FailedSites sweeps how many sites fail simultaneously (the
	// highest-indexed sites, keeping the surviving chain prefix intact;
	// counts beyond N−1 fail all but site 0).
	FailedSites []int `json:"failed_sites,omitempty"`
	// Asyms sweeps the WAN delay asymmetry ramped onto the first chain link
	// at FaultStart; zero leaves the path symmetric. The induced reading
	// bias is half the asymmetry.
	Asyms []time.Duration `json:"asyms,omitempty"`
	// F is the site-level Byzantine budget handed to the WAN tier. The
	// default 2 exercises both arms of min(f, ⌊(N−1)/2⌋): the floor binds
	// at N = 4, f itself at N = 5.
	F int `json:"f,omitempty"`
	// HoldoverWindow is the WAN tier's quorum-loss grace before the site
	// servos freeze (wan.Config.HoldoverWindow).
	HoldoverWindow time.Duration `json:"holdover_window,omitempty"`
	// ResyncWindow bounds re-stabilization: a degraded point must return
	// every site to alive+quorum+thawed within this long after the heal.
	// This is the verdict window, distinct from HoldoverWindow (the
	// entry delay into holdover).
	ResyncWindow time.Duration `json:"resync_window,omitempty"`
	// Parallel is the runner's worker count (0 = GOMAXPROCS, 1 =
	// sequential); the table is identical for every value.
	Parallel int `json:"parallel,omitempty"`
	// WarmStart runs each site count's convergence prefix once and forks
	// every point of that fabric size from the snapshot; the table is
	// bit-identical to the cold attach-at-boundary runs.
	WarmStart bool `json:"warm_start,omitempty"`
	// Metrics optionally instruments the campaign's runner pool. The
	// registry must be campaign-level, never a simulation's.
	Metrics *obs.Registry `json:"-"`
	// Snapshots optionally shares prefix snapshots through a campaign cache
	// (the job server's LRU).
	Snapshots runner.SnapshotCache `json:"-"`
	// Shards runs every point on a sharded PDES kernel (1 = the legacy
	// single scheduler). Results are bit-identical at every shard count.
	Shards int `json:"shards,omitempty"`
}

// Validate implements Validator.
func (c WanSitesConfig) Validate() error {
	for i, n := range c.SiteCounts {
		if n < 2 {
			return fmt.Errorf("site_counts[%d] must be at least 2 (got %d)", i, n)
		}
	}
	for i, n := range c.FailedSites {
		if n < 0 {
			return fmt.Errorf("failed_sites[%d] must not be negative (got %d)", i, n)
		}
	}
	for i, d := range c.Asyms {
		if d < 0 {
			return fmt.Errorf("asyms[%d] must not be negative (got %v)", i, d)
		}
	}
	if c.F < 0 {
		return fmt.Errorf("f must not be negative (got %d)", c.F)
	}
	return firstErr(
		checkDurations(
			field{"duration", c.Duration},
			field{"fault_start", c.FaultStart},
			field{"fault_duration", c.FaultDuration},
			field{"holdover_window", c.HoldoverWindow},
			field{"resync_window", c.ResyncWindow}),
		checkShards(defaultShards(c.Shards)),
	)
}

func (c WanSitesConfig) withDefaults() WanSitesConfig {
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.FaultStart <= 0 {
		c.FaultStart = 20 * time.Second
	}
	if c.FaultDuration <= 0 {
		c.FaultDuration = 15 * time.Second
	}
	if len(c.SiteCounts) == 0 {
		c.SiteCounts = []int{4, 5}
	}
	if len(c.FailedSites) == 0 {
		c.FailedSites = []int{0, 1, 2, 3}
	}
	if len(c.Asyms) == 0 {
		c.Asyms = []time.Duration{0, 10 * time.Microsecond}
	}
	if c.F == 0 {
		c.F = 2
	}
	if c.HoldoverWindow <= 0 {
		c.HoldoverWindow = 2 * time.Second
	}
	if c.ResyncWindow <= 0 {
		c.ResyncWindow = 20 * time.Second
	}
	c.Shards = defaultShards(c.Shards)
	return c
}

// WanSitePoint is one sweep point's outcome: the site census, the analytic
// quorum prediction, the measured degradation ladder, and the verdict.
type WanSitePoint struct {
	Label  string
	Sites  int
	Failed int // effective failed-site count (requested, clamped to N−1)
	AsymNS int64
	// Tolerable is the site-failure budget min(f, ⌊(N−1)/2⌋).
	Tolerable int
	// PredictedSurvive: failures within the budget and no over-threshold
	// asymmetry adversary → no surviving site may enter holdover.
	PredictedSurvive bool
	// MeasuredSurvive: no surviving site's servo ever froze.
	MeasuredSurvive bool
	Verdict         string

	QuorumLostTicks int
	HoldoverEntered int
	HoldoverExited  int
	// ResyncSec is how long after the heal the whole fabric was back to
	// alive+quorum+thawed for good; +Inf when it never re-stabilized.
	ResyncSec float64
	// FinalSpreadNS is the adjusted-clock spread across alive sites at the
	// last coordinator tick; EnvelopeNS the allowance it is judged against.
	FinalSpreadNS float64
	EnvelopeNS    float64
	Samples       int
}

// WanSitesResult is the campaign table plus the last point's metrics
// snapshot.
type WanSitesResult struct {
	ObsSnapshot
	Config WanSitesConfig
	Points []WanSitePoint
}

// Anomalies counts points whose measured ladder contradicts the quorum
// bound or escaped the degradation envelope — the CI wan-smoke gate number.
func (r *WanSitesResult) Anomalies() int {
	n := 0
	for _, p := range r.Points {
		if p.Verdict == WanVerdictAnomaly {
			n++
		}
	}
	return n
}

// Summary renders the campaign's one-line verdict.
func (r *WanSitesResult) Summary() string {
	var survived, degraded, anomalies int
	for _, p := range r.Points {
		switch p.Verdict {
		case WanVerdictSurvived:
			survived++
		case WanVerdictDegraded:
			degraded++
		default:
			anomalies++
		}
	}
	return fmt.Sprintf(
		"wide-area campaign (%d points): %d survived, %d degraded-within-bound, %d anomalies",
		len(r.Points), survived, degraded, anomalies)
}

// Rows renders the sweep table.
func (r *WanSitesResult) Rows() [][]string {
	rows := [][]string{{
		"label", "sites", "failed", "asym_ns", "tolerable",
		"predicted", "measured", "verdict",
		"quorum_lost_ticks", "holdover_entered", "holdover_exited",
		"resync_s", "final_spread_ns", "envelope_ns", "samples",
	}}
	outcome := func(survive bool) string {
		if survive {
			return "survive"
		}
		return "degrade"
	}
	for _, p := range r.Points {
		resync := "never"
		if !math.IsInf(p.ResyncSec, 1) {
			resync = fmt.Sprintf("%.1f", p.ResyncSec)
		}
		rows = append(rows, []string{
			p.Label,
			strconv.Itoa(p.Sites),
			strconv.Itoa(p.Failed),
			strconv.FormatInt(p.AsymNS, 10),
			strconv.Itoa(p.Tolerable),
			outcome(p.PredictedSurvive),
			outcome(p.MeasuredSurvive),
			p.Verdict,
			strconv.Itoa(p.QuorumLostTicks),
			strconv.Itoa(p.HoldoverEntered),
			strconv.Itoa(p.HoldoverExited),
			resync,
			fmt.Sprintf("%.0f", p.FinalSpreadNS),
			fmt.Sprintf("%.0f", p.EnvelopeNS),
			strconv.Itoa(p.Samples),
		})
	}
	return rows
}

// wanScenario is one resolved sweep point.
type wanScenario struct {
	sites  int
	failed int
	asym   time.Duration
}

func (s wanScenario) label() string {
	return fmt.Sprintf("sites=%d failed=%d asym=%v", s.sites, s.failed, s.asym)
}

// failedCount clamps the requested failure count to N−1: site 0 (the
// measurement VLAN root and chain head) always survives.
func (s wanScenario) failedCount() int {
	if s.failed >= s.sites {
		return s.sites - 1
	}
	return s.failed
}

// wanSitesSystemConfig is a sweep point's system configuration: a
// sites-sized fabric of paper meshes with the WAN tier armed. The
// background drift process stays off — the chaos wan-asym-drift ramp is the
// campaign's single writer of the WAN delay axis (Link.SetWanDelay is
// last-writer-wins between the two).
func wanSitesSystemConfig(cfg WanSitesConfig, sites int) core.Config {
	sysCfg := core.ScaleConfig(cfg.Seed, sites, 4, 2, cfg.Shards)
	sysCfg.WanSync.Enabled = true
	sysCfg.WanSync.F = cfg.F
	sysCfg.WanSync.HoldoverWindow = cfg.HoldoverWindow
	return sysCfg
}

// wanSitesPlan builds a point's chaos timeline: the highest-indexed sites
// fail at FaultStart and auto-revert after FaultDuration; the asymmetry
// ramps onto the first chain link over wanAsymRamp and then holds. A
// fault-free point (failed = 0, asym = 0) returns nil.
func wanSitesPlan(cfg WanSitesConfig, sc wanScenario, sys *core.System) *chaos.Plan {
	var actions []chaos.Action
	if k := sc.failedCount(); k > 0 {
		sites := make([]int, 0, k)
		for i := sc.sites - k; i < sc.sites; i++ {
			sites = append(sites, i)
		}
		actions = append(actions, chaos.Action{
			Op:       chaos.OpSiteFail,
			Sites:    sites,
			At:       chaos.Duration(cfg.FaultStart),
			Duration: chaos.Duration(cfg.FaultDuration),
		})
	}
	if sc.asym > 0 {
		actions = append(actions, chaos.Action{
			Op:       chaos.OpWanAsymDrift,
			Links:    []string{sys.WanLinkName(0)},
			At:       chaos.Duration(cfg.FaultStart),
			Duration: chaos.Duration(wanAsymRamp),
			Asym:     chaos.Duration(sc.asym),
		})
	}
	if len(actions) == 0 {
		return nil
	}
	return &chaos.Plan{Name: sc.label(), Actions: actions}
}

// WanSites runs the wide-area campaign: the cross product of SiteCounts ×
// FailedSites × Asyms, each point an independent same-seed run of a
// multi-site fabric with the site-level FTA tier armed. Each point's
// measured degradation ladder (quorum retention, holdover entry,
// re-stabilization after heal) is judged against the analytic site budget
// min(f, ⌊(N−1)/2⌋); two runs of the same config are byte-identical, at
// every shard count and worker count.
func WanSites(ctx context.Context, cfg WanSitesConfig) (*WanSitesResult, error) {
	cfg = cfg.withDefaults()

	var scenarios []wanScenario
	for _, sites := range cfg.SiteCounts {
		for _, failed := range cfg.FailedSites {
			for _, asym := range cfg.Asyms {
				scenarios = append(scenarios, wanScenario{sites: sites, failed: failed, asym: asym})
			}
		}
	}

	res := &WanSitesResult{Config: cfg}
	snapshots := make([][]obs.Metric, len(scenarios))
	pool := runner.New(cfg.Parallel).WithMetrics(cfg.Metrics).WithSnapshots(cfg.Snapshots)

	var outcomes []runner.Outcome
	if cfg.WarmStart {
		outcomes = wanSitesWarm(ctx, cfg, pool, scenarios, snapshots)
	} else {
		runs := make([]runner.Run, len(scenarios))
		for i := range scenarios {
			i := i
			runs[i] = runner.Run{Name: scenarios[i].label(), Do: func(context.Context) (any, error) {
				point, snap, err := wanSitesPointFrom(cfg, scenarios[i], 0)
				snapshots[i] = snap
				return point, err
			}}
		}
		outcomes = pool.Execute(ctx, runs)
	}
	points, err := runner.Values[WanSitePoint](outcomes)
	if err != nil {
		return nil, err
	}
	res.Points = points
	if n := len(snapshots); n > 0 {
		res.Obs = snapshots[n-1]
	}
	return res, nil
}

// wanSitesWarm executes the sweep warm: the points are grouped by fabric
// size (the only axis that shapes the convergence prefix — failures and
// asymmetry start at FaultStart), each group runs its prefix once, and
// every point forks from its group's snapshot. Groups whose boundary is
// unusable run cold; the table is bit-identical either way.
func wanSitesWarm(ctx context.Context, cfg WanSitesConfig, pool *runner.Pool,
	scenarios []wanScenario, snapshots [][]obs.Metric) []runner.Outcome {
	boundary := cfg.FaultStart - warmGuard
	if boundary <= 0 || boundary >= cfg.Duration {
		boundary = 0 // no usable prefix: every point runs cold
	}

	groups := make(map[int][]int) // site count → scenario indices
	var order []int
	for i, sc := range scenarios {
		if _, seen := groups[sc.sites]; !seen {
			order = append(order, sc.sites)
		}
		groups[sc.sites] = append(groups[sc.sites], i)
	}

	outcomes := make([]runner.Outcome, len(scenarios))
	for _, sites := range order {
		idx := groups[sites]
		sysCfg := wanSitesSystemConfig(cfg, sites)
		wc := runner.WarmConfig{}
		if boundary > 0 {
			wc.Hash = core.PrefixHash(sysCfg, boundary)
			wc.Prefix = systemPrefix(sysCfg, boundary)
		}
		wruns := make([]runner.WarmRun, len(idx))
		for n, i := range idx {
			i := i
			wruns[n] = runner.WarmRun{
				Name: scenarios[i].label(),
				Hash: wc.Hash,
				Fork: func(_ context.Context, snap any) (any, error) {
					sys, err := core.ForkSystem(snap)
					if err != nil {
						return nil, err
					}
					point, ms, err := wanSitesDiverge(cfg, scenarios[i], sys, cfg.Duration-boundary)
					snapshots[i] = ms
					return point, err
				},
				Cold: func(context.Context) (any, error) {
					point, ms, err := wanSitesPointFrom(cfg, scenarios[i], boundary)
					snapshots[i] = ms
					return point, err
				},
			}
		}
		for n, o := range pool.ExecuteWarm(ctx, wc, wruns) {
			outcomes[idx[n]] = o
		}
	}
	return outcomes
}

// wanSitesPointFrom runs one point cold from t = 0, attaching the fault
// plan at the boundary (0 for a plain cold run — the plan's actions are
// absolute-anchored, so the attach instant is immaterial as long as it
// precedes FaultStart).
func wanSitesPointFrom(cfg WanSitesConfig, sc wanScenario, boundary time.Duration) (WanSitePoint, []obs.Metric, error) {
	sys, err := core.NewSystem(wanSitesSystemConfig(cfg, sc.sites))
	if err != nil {
		return WanSitePoint{}, nil, err
	}
	if err := sys.Start(); err != nil {
		return WanSitePoint{}, nil, err
	}
	if boundary > 0 {
		if err := sys.RunFor(boundary); err != nil {
			return WanSitePoint{}, nil, err
		}
	}
	return wanSitesDiverge(cfg, sc, sys, cfg.Duration-boundary)
}

// wanSitesDiverge attaches the point's plan to a system already run to the
// warm boundary and executes the divergent remainder.
func wanSitesDiverge(cfg WanSitesConfig, sc wanScenario, sys *core.System, remaining time.Duration) (WanSitePoint, []obs.Metric, error) {
	var eng *chaos.Engine
	if plan := wanSitesPlan(cfg, sc, sys); plan != nil {
		var err error
		eng, err = chaos.New(sys.Scheduler(), sys, plan)
		if err != nil {
			return WanSitePoint{}, nil, err
		}
		eng.Instrument(sys.Metrics())
		if err := eng.Start(); err != nil {
			return WanSitePoint{}, nil, err
		}
	}
	if err := sys.RunFor(remaining); err != nil {
		return WanSitePoint{}, nil, err
	}
	if eng != nil {
		eng.Stop()
	}
	return wanSitesCollect(cfg, sc, sys)
}

// wanSitesCollect classifies one finished run. The verdict is computed
// entirely from the coordinator's per-tick sample series and the wan_*
// counters — both control-scheduler state, bit-identical at every shard
// count.
func wanSitesCollect(cfg WanSitesConfig, sc wanScenario, sys *core.System) (WanSitePoint, []obs.Metric, error) {
	co := sys.Wan()
	if co == nil {
		return WanSitePoint{}, nil, fmt.Errorf("wansites: %s: WAN tier not armed", sc.label())
	}
	samples := co.Samples()
	if len(samples) == 0 {
		return WanSitePoint{}, nil, fmt.Errorf("wansites: %s: no coordinator ticks recorded", sc.label())
	}

	k := sc.failedCount()
	failed := make([]bool, sc.sites)
	for i := sc.sites - k; i < sc.sites; i++ {
		failed[i] = true
	}
	tolerable := co.Tolerable()

	// Analytic prediction. The failed sites are fail-silent and covered by
	// the quorum budget; an asymmetry whose bias A/2 exceeds the WAN
	// validity threshold makes the head site an adversarial (lying, not
	// silent) domain that the trimming must additionally mask.
	wanCfg := wanSitesSystemConfig(cfg, sc.sites).WanSync.WithDefaults()
	asymAdversaries := 0
	if float64(sc.asym.Nanoseconds())/2 > wanCfg.ValidityThresholdNS {
		asymAdversaries = 1
	}
	predicted := k <= tolerable && asymAdversaries <= tolerable

	// Measured ladder: did any surviving site's servo freeze?
	holdover := false
	for _, smp := range samples {
		for i := 0; i < sc.sites; i++ {
			if !failed[i] && smp.Holdover[i] {
				holdover = true
			}
		}
	}
	measured := !holdover

	// Re-stabilization: the earliest instant from which every site stays
	// alive, in quorum, and thawed through the end of the run.
	allGood := func(smp wan.SiteSample) bool {
		for i := 0; i < sc.sites; i++ {
			if !smp.Alive[i] || !smp.Quorum[i] || smp.Holdover[i] {
				return false
			}
		}
		return true
	}
	stableFrom := math.Inf(1)
	for i := len(samples) - 1; i >= 0; i-- {
		if !allGood(samples[i]) {
			break
		}
		stableFrom = samples[i].AtSec
	}
	healAt := (cfg.FaultStart + cfg.FaultDuration).Seconds()
	resync := 0.0
	switch {
	case math.IsInf(stableFrom, 1):
		resync = math.Inf(1)
	case stableFrom > healAt:
		resync = stableFrom - healAt
	}

	// Final agreement: adjusted-clock spread across alive sites at the last
	// tick, judged against the base envelope plus the asymmetry bias the
	// equilibrium carries.
	last := samples[len(samples)-1]
	spread := 0.0
	lo, hi, any := 0.0, 0.0, false
	for i := 0; i < sc.sites; i++ {
		if !last.Alive[i] || math.IsNaN(last.AdjNS[i]) {
			continue
		}
		if !any {
			lo, hi, any = last.AdjNS[i], last.AdjNS[i], true
			continue
		}
		lo = math.Min(lo, last.AdjNS[i])
		hi = math.Max(hi, last.AdjNS[i])
	}
	if any {
		spread = hi - lo
	}
	envelope := float64(wanSitesEnvelopeNS) + float64(sc.asym.Nanoseconds())/2
	finalOK := any && spread <= envelope
	resyncOK := !math.IsInf(resync, 1) && resync <= cfg.ResyncWindow.Seconds()

	verdict := WanVerdictAnomaly
	switch {
	case predicted && measured && resyncOK && finalOK:
		verdict = WanVerdictSurvived
	case !predicted && !measured && resyncOK && finalOK:
		verdict = WanVerdictDegraded
	}

	snap := sys.Metrics().Snapshot()
	return WanSitePoint{
		Label:            sc.label(),
		Sites:            sc.sites,
		Failed:           k,
		AsymNS:           sc.asym.Nanoseconds(),
		Tolerable:        tolerable,
		PredictedSurvive: predicted,
		MeasuredSurvive:  measured,
		Verdict:          verdict,
		QuorumLostTicks:  sumMetric(snap, "wan_quorum_lost_ticks"),
		HoldoverEntered:  sumMetric(snap, "wan_holdover_entered"),
		HoldoverExited:   sumMetric(snap, "wan_holdover_exited"),
		ResyncSec:        resync,
		FinalSpreadNS:    spread,
		EnvelopeNS:       envelope,
		Samples:          len(samples),
	}, snap, nil
}
