package experiments

import (
	"fmt"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/gptp"
	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// DynamicMeshConfig parameterises the fully dynamic 802.1AS study: the
// paper's four-switch redundant mesh, but with the BMCA electing the
// grandmaster and building the spanning tree instead of the static
// external port configuration. The redundant mesh paths are broken by
// passive ports; a grandmaster failure triggers re-election and the
// measured synchronization outage is the cost the paper's static + FTA
// design avoids.
type DynamicMeshConfig struct {
	Seed             int64         `json:"seed"`
	AnnounceInterval time.Duration `json:"announce_interval,omitempty"`
	Settle           time.Duration `json:"settle,omitempty"`  // before the GM failure
	Observe          time.Duration `json:"observe,omitempty"` // after the GM failure
}

// Validate implements Validator.
func (c DynamicMeshConfig) Validate() error {
	return checkDurations(
		field{"announce_interval", c.AnnounceInterval},
		field{"settle", c.Settle},
		field{"observe", c.Observe})
}

func (c DynamicMeshConfig) withDefaults() DynamicMeshConfig {
	if c.AnnounceInterval <= 0 {
		c.AnnounceInterval = time.Second
	}
	if c.Settle <= 0 {
		c.Settle = 30 * time.Second
	}
	if c.Observe <= 0 {
		c.Observe = 30 * time.Second
	}
	return c
}

// DynamicMeshResult reports the dynamic mode's behaviour.
type DynamicMeshResult struct {
	Config DynamicMeshConfig
	// ElectedGM / SuccessorGM are the grandmasters before/after failure.
	ElectedGM, SuccessorGM string
	// OffsetsBeforeFailure counts grandmaster offsets the slaves computed
	// while the first grandmaster served.
	OffsetsBeforeFailure int
	// SyncOutage is the longest interval without any slave receiving time
	// after the grandmaster failed (re-election + tree rebuild).
	SyncOutage time.Duration
	// OffsetsAfterRecovery counts offsets from the successor.
	OffsetsAfterRecovery int
	// PassivePorts counts loop-breaking passive ports across bridges.
	PassivePorts int
}

// Summary renders the verdict.
func (r DynamicMeshResult) Summary() string {
	return fmt.Sprintf(
		"dynamic 802.1AS mesh: %s elected (%d offsets); failure → %v outage → %s serves (%d offsets); %d passive ports broke the mesh loops — the static-configuration + FTA architecture masks the same failure continuously",
		r.ElectedGM, r.OffsetsBeforeFailure, r.SyncOutage, r.SuccessorGM, r.OffsetsAfterRecovery, r.PassivePorts)
}

// Rows renders the election-and-outage table.
func (r DynamicMeshResult) Rows() [][]string {
	return [][]string{
		{"elected_gm", "successor_gm", "offsets_before", "outage_ms", "offsets_after", "passive_ports"},
		{r.ElectedGM, r.SuccessorGM, fmt.Sprintf("%d", r.OffsetsBeforeFailure),
			fmt.Sprintf("%d", r.SyncOutage.Milliseconds()),
			fmt.Sprintf("%d", r.OffsetsAfterRecovery), fmt.Sprintf("%d", r.PassivePorts)},
	}
}

// DynamicMeshStudy wires the Fig. 2 switch mesh in fully dynamic 802.1AS
// operation and measures grandmaster re-election end to end (Announce,
// tree rebuild, Sync flow).
func DynamicMeshStudy(cfg DynamicMeshConfig) (*DynamicMeshResult, error) {
	cfg = cfg.withDefaults()
	sched := sim.NewScheduler()
	streams := sim.NewStreams(cfg.Seed)
	res := &DynamicMeshResult{Config: cfg}

	const nodes = 4
	mkPHC := func(name string, ppb float64) *clock.PHC {
		osc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: ppb, WanderPPBPerSqrtSec: 1},
			streams.Stream("osc/"+name), 0)
		return clock.NewPHC(sched, osc, streams.Stream("ts/"+name),
			clock.PHCConfig{TimestampJitterNS: 8})
	}

	// Bridges: full mesh on ports 0..2, station on port 3.
	bridges := make([]*netsim.Bridge, nodes)
	relays := make([]*gptp.Relay, nodes)
	dynBridges := make([]*gptp.DynamicBridge, nodes)
	residence := map[int]netsim.ResidenceModel{
		netsim.PriorityBestEffort: {Base: 1500 * time.Nanosecond, JitterNS: 150},
		netsim.PriorityPTP:        {Base: 1200 * time.Nanosecond, JitterNS: 100},
	}
	meshPort := func(i, j int) int {
		p := 0
		for k := 0; k < nodes; k++ {
			if k == i {
				continue
			}
			if k == j {
				return p
			}
			p++
		}
		return -1
	}
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("sw%d", i+1)
		bridges[i] = netsim.NewBridge(name, sched, streams.Stream("br/"+name),
			mkPHC(name, clock.UniformPPB(streams.Stream("sppb/"+name), 5000)),
			netsim.BridgeConfig{Ports: nodes, Residence: residence})
		relay, err := gptp.NewRelay(bridges[i], sched, streams.Stream("relay/"+name),
			gptp.RelayConfig{Domains: map[int]gptp.DomainPorts{}, DefaultLinkDelayNS: 500})
		if err != nil {
			return nil, err
		}
		relays[i] = relay
		// Bridges advertise the worst clock quality: they relay, they do
		// not source time.
		db, err := gptp.NewDynamicBridge(bridges[i], relay, sched,
			gptp.SystemIdentity{Priority1: 255, ClockClass: 255, ClockID: name},
			0, cfg.AnnounceInterval)
		if err != nil {
			return nil, err
		}
		dynBridges[i] = db
	}
	lc := netsim.LinkConfig{Propagation: 500 * time.Nanosecond, JitterNS: 20}
	for i := 0; i < nodes; i++ {
		for j := i + 1; j < nodes; j++ {
			if _, err := netsim.Connect(sched, streams.Stream(fmt.Sprintf("l/%d-%d", i, j)), lc,
				bridges[i].Port(meshPort(i, j)), bridges[j].Port(meshPort(j, i))); err != nil {
				return nil, err
			}
		}
	}

	// Stations: s1 is the best clock, s2 the successor.
	stations := make([]*gptp.DynamicStation, nodes)
	offsets := make([]int, nodes)
	var lastOffsetAt sim.Time
	var worstGap time.Duration
	var failedAt sim.Time
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("s%d", i+1)
		nic := netsim.NewNIC(name, sched, mkPHC(name, clock.UniformPPB(streams.Stream("nppb/"+name), 5000)))
		if _, err := netsim.Connect(sched, streams.Stream("lnk/"+name), lc,
			nic.Port(), bridges[i].Port(3)); err != nil {
			return nil, err
		}
		priority := uint8(128)
		switch i {
		case 0:
			priority = 50
		case 1:
			priority = 60
		}
		idx := i
		st, err := gptp.NewDynamicStation(name, nic, sched, streams.Stream("st/"+name),
			gptp.SystemIdentity{Priority1: priority, ClockClass: 248, ClockID: name},
			0, cfg.AnnounceInterval,
			func(gptp.OffsetSample) {
				offsets[idx]++
				if failedAt > 0 {
					if gap := sched.Now().Sub(lastOffsetAt); gap > worstGap {
						worstGap = gap
					}
				}
				lastOffsetAt = sched.Now()
			})
		if err != nil {
			return nil, err
		}
		stations[i] = st
	}
	for _, r := range relays {
		if err := r.Start(); err != nil {
			return nil, err
		}
	}
	for _, db := range dynBridges {
		if err := db.Start(); err != nil {
			return nil, err
		}
	}
	for _, st := range stations {
		if err := st.Start(); err != nil {
			return nil, err
		}
	}

	if err := sched.RunUntil(sim.Time(cfg.Settle)); err != nil {
		return nil, err
	}
	if !stations[0].Engine().IsGM() {
		return nil, fmt.Errorf("experiments: s1 not elected (follows %s)", stations[0].Engine().GM().ClockID)
	}
	res.ElectedGM = "s1"
	res.OffsetsBeforeFailure = offsets[1] + offsets[2] + offsets[3]
	if res.OffsetsBeforeFailure == 0 {
		return nil, fmt.Errorf("experiments: no Sync flow under the elected grandmaster")
	}
	for _, db := range dynBridges {
		for _, role := range db.Engine().Roles() {
			if role == gptp.RolePassive {
				res.PassivePorts++
			}
		}
	}
	if res.PassivePorts == 0 {
		return nil, fmt.Errorf("experiments: no passive ports in a redundant mesh")
	}

	// Fail the elected grandmaster.
	failedAt = sched.Now()
	lastOffsetAt = sched.Now()
	before := offsets[2] + offsets[3]
	stations[0].Fail()
	if err := sched.RunUntil(sched.Now().Add(cfg.Observe)); err != nil {
		return nil, err
	}
	if !stations[1].Engine().IsGM() {
		return nil, fmt.Errorf("experiments: s2 not re-elected (gm=%v follows %s)",
			stations[1].Engine().IsGM(), stations[1].Engine().GM().ClockID)
	}
	res.SuccessorGM = "s2"
	res.SyncOutage = worstGap
	res.OffsetsAfterRecovery = offsets[2] + offsets[3] - before
	if res.OffsetsAfterRecovery == 0 {
		return nil, fmt.Errorf("experiments: Sync flow never recovered after re-election")
	}
	return res, nil
}
