package experiments

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestConfigRoundTrip is the wire contract of every registered experiment:
// the default config marshals to JSON and decodes back, through the strict
// DecodeConfig path, to an equal value. This is what lets one JSON payload
// drive the CLIs and POST /v1/jobs interchangeably.
func TestConfigRoundTrip(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			cfg := e.DefaultConfig(7)
			raw, err := json.Marshal(cfg)
			if err != nil {
				t.Fatalf("marshal default config: %v", err)
			}
			back, err := e.DecodeConfig(raw)
			if err != nil {
				t.Fatalf("decode %s: %v", raw, err)
			}
			if !reflect.DeepEqual(cfg, back) {
				t.Fatalf("round trip drifted:\n  before: %#v\n  after:  %#v", cfg, back)
			}
		})
	}
}

// TestDecodeConfigNil checks that an absent config body yields the
// zero-seed defaults.
func TestDecodeConfigNil(t *testing.T) {
	for _, e := range All() {
		cfg, err := e.DecodeConfig(nil)
		if err != nil {
			t.Fatalf("%s: decode nil: %v", e.Name(), err)
		}
		if !reflect.DeepEqual(cfg, e.DefaultConfig(0)) {
			t.Fatalf("%s: nil config is not the zero-seed default", e.Name())
		}
	}
}

// TestDecodeConfigUnknownField checks the strict decode: a typo'd key is an
// error for every experiment, not a silently ignored no-op.
func TestDecodeConfigUnknownField(t *testing.T) {
	for _, e := range All() {
		if _, err := e.DecodeConfig(json.RawMessage(`{"no_such_knob": 1}`)); err == nil {
			t.Fatalf("%s: unknown field accepted", e.Name())
		}
	}
}

// TestDecodeConfigValidation checks that DecodeConfig runs the config's
// Validate: a structurally well-formed but semantically invalid payload is
// rejected at decode time.
func TestDecodeConfigValidation(t *testing.T) {
	cases := map[string]string{
		"bounds":   `{"duration": -1}`,
		"interval": `{"intervals": [0]}`,
		"domains":  `{"counts": [1]}`,
		"netchaos": `{"burst_bad_loss": [1.5]}`,
	}
	for name, raw := range cases {
		e, err := Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := e.DecodeConfig(json.RawMessage(raw)); err == nil {
			t.Fatalf("%s: invalid config %s accepted", name, raw)
		}
	}
}

// TestSeededConfigOverlay checks the server's submission path: the overlay
// wins over the seeded default field-by-field, and the untouched fields keep
// the seeded defaults.
func TestSeededConfigOverlay(t *testing.T) {
	e, err := Lookup("bounds")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := SeededConfig(e, 42, json.RawMessage(`{"duration": 180000000000}`))
	if err != nil {
		t.Fatal(err)
	}
	bc, ok := cfg.(BoundsConfig)
	if !ok {
		t.Fatalf("config type %T", cfg)
	}
	if bc.Seed != 42 {
		t.Fatalf("seed not applied: %+v", bc)
	}
	if bc.Duration != 3*time.Minute {
		t.Fatalf("overlay not applied: %+v", bc)
	}
	// An explicit seed inside the overlay wins over the top-level seed.
	cfg, err = SeededConfig(e, 42, json.RawMessage(`{"seed": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.(BoundsConfig).Seed != 7 {
		t.Fatalf("explicit config seed lost: %+v", cfg)
	}
}

// TestWireResultEnvelope pins the versioned result envelope: schema 1, the
// registry name, the summary and the generic rows — the stable surface the
// job server's result endpoint serves.
func TestWireResultEnvelope(t *testing.T) {
	e, err := Lookup("bounds")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), BoundsConfig{Seed: 2, Duration: 3 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	w := Wire("bounds", res)
	if w.Schema != ResultSchemaVersion || ResultSchemaVersion != 1 {
		t.Fatalf("schema = %d", w.Schema)
	}
	if w.Experiment != "bounds" || w.Summary == "" || len(w.Rows) < 2 {
		t.Fatalf("envelope incomplete: %+v", w)
	}
	if len(w.Obs) == 0 {
		t.Fatal("bounds result carries obs metrics, envelope lost them")
	}
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"schema":1`, `"experiment":"bounds"`, `"summary":`, `"rows":`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("wire JSON missing %s: %s", key, raw)
		}
	}
}

// TestShardsKnobWire pins the PDES knob's wire contract on every
// shard-aware experiment: {"shards": N} decodes (snake_case key), the
// registry default is 1 (legacy single scheduler), and negative values are
// rejected by Validate through the strict decode path.
func TestShardsKnobWire(t *testing.T) {
	shardAware := []string{
		"bounds", "resilience", "faultinjection", "baseline", "single-domain",
		"flag-policy", "voting", "recovery", "interval", "domains",
		"netchaos", "multiseed", "attacks",
	}
	for _, name := range shardAware {
		e, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		def := reflect.ValueOf(e.DefaultConfig(1)).FieldByName("Shards")
		if !def.IsValid() || def.Int() != 1 {
			t.Errorf("%s: default config Shards = %v, want 1", name, def)
			continue
		}
		cfg, err := e.DecodeConfig(json.RawMessage(`{"shards": 4}`))
		if err != nil {
			t.Errorf("%s: decode shards=4: %v", name, err)
			continue
		}
		if got := reflect.ValueOf(cfg).FieldByName("Shards").Int(); got != 4 {
			t.Errorf("%s: decoded Shards = %d, want 4", name, got)
		}
		if _, err := e.DecodeConfig(json.RawMessage(`{"shards": -1}`)); err == nil {
			t.Errorf("%s: negative shards accepted", name)
		}
	}
}
