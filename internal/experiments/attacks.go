package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"gptpfta/internal/attack"
	"gptpfta/internal/attack/bounds"
	"gptpfta/internal/core"
	"gptpfta/internal/measure"
	"gptpfta/internal/obs"
	"gptpfta/internal/runner"
	"gptpfta/internal/sim"
)

// Diversity axis values for the adversarial campaign.
const (
	DiversityIdentical = "identical" // every grandmaster runs the vulnerable kernel
	DiversityDiverse   = "diverse"   // Fig. 3b assignment: only c41 stays vulnerable
)

// AttacksConfig parameterises the adversarial campaign: a sweep over
// (Byzantine grandmaster count, on-path Sync delay magnitude, OS-diversity
// assignment) measuring the empirical failure boundary of the FTA quorum
// and comparing every point against the analytic 2f+1 resilience bound
// (arXiv 2006.15832) computed by internal/attack/bounds.
type AttacksConfig struct {
	Seed int64 `json:"seed"`
	// Duration of each sweep point's run.
	Duration time.Duration `json:"duration,omitempty"`
	// AttackStart delays the campaign, letting the system converge first.
	AttackStart time.Duration `json:"attack_start,omitempty"`
	// ByzantineCounts sweeps how many grandmasters the attacker holds
	// credentials on (attacked in attack.DefaultTargetOrder; counts beyond
	// the grandmaster population attack every grandmaster).
	ByzantineCounts []int `json:"byzantine_counts,omitempty"`
	// Delays sweeps the on-path Sync delay-attack magnitude against the
	// DelayTarget grandmaster's uplink; zero means no delay attack.
	Delays []time.Duration `json:"delays,omitempty"`
	// Diversity sweeps the kernel assignment: "identical" and/or "diverse".
	Diversity []string `json:"diversity,omitempty"`
	// Behavior selects the compromised grandmasters' falsification over
	// time: "constant" (default, the paper's fixed shift), "ramp" or
	// "wander".
	Behavior string `json:"behavior,omitempty"`
	// OffsetNS is the base origin falsification (default the paper's
	// −24 µs).
	OffsetNS float64 `json:"offset_ns,omitempty"`
	// SlewNSPerSec is the ramp rate for the "ramp" behavior.
	SlewNSPerSec float64 `json:"slew_ns_per_sec,omitempty"`
	// WanderNSPerStep is the per-second 1-sigma random-walk increment for
	// the "wander" behavior.
	WanderNSPerStep float64 `json:"wander_ns_per_step,omitempty"`
	// DelayTarget names the grandmaster whose uplink the delay attacker
	// sits on (default c31, disjoint from the default Byzantine targets).
	DelayTarget string `json:"delay_target,omitempty"`
	// HoldoverWindow arms the ptp4l holdover watchdog so the campaign also
	// measures holdover escape under attack (0 < explicit off is not
	// representable; the default arms 2 s like the chaos campaign).
	HoldoverWindow time.Duration `json:"holdover_window,omitempty"`
	// Parallel is the runner's worker count (0 = GOMAXPROCS, 1 =
	// sequential); the table is identical for every value.
	Parallel int `json:"parallel,omitempty"`
	// Metrics optionally instruments the campaign's runner pool. The
	// registry must be campaign-level, never a simulation's.
	Metrics *obs.Registry `json:"-"`
	// Shards runs every point on a sharded PDES kernel (1 = the legacy
	// single scheduler). Results are bit-identical at every shard count.
	Shards int `json:"shards,omitempty"`
}

// Validate implements Validator.
func (c AttacksConfig) Validate() error {
	for i, n := range c.ByzantineCounts {
		if n < 0 {
			return fmt.Errorf("byzantine_counts[%d] must not be negative (got %d)", i, n)
		}
	}
	for i, d := range c.Delays {
		if d < 0 {
			return fmt.Errorf("delays[%d] must not be negative (got %v)", i, d)
		}
	}
	for i, d := range c.Diversity {
		if d != DiversityIdentical && d != DiversityDiverse {
			return fmt.Errorf("diversity[%d] must be %q or %q (got %q)",
				i, DiversityIdentical, DiversityDiverse, d)
		}
	}
	if _, err := attack.ParseBehaviorKind(c.Behavior); err != nil {
		return err
	}
	return firstErr(
		checkFinite("offset_ns", c.OffsetNS),
		checkFinite("slew_ns_per_sec", c.SlewNSPerSec),
		checkNonNegative("wander_ns_per_step", c.WanderNSPerStep),
		checkDurations(
			field{"duration", c.Duration},
			field{"attack_start", c.AttackStart},
			field{"holdover_window", c.HoldoverWindow}),
		checkShards(defaultShards(c.Shards)),
	)
}

func (c AttacksConfig) withDefaults() AttacksConfig {
	if c.Duration <= 0 {
		c.Duration = 8 * time.Minute
	}
	if c.AttackStart <= 0 {
		c.AttackStart = 3 * time.Minute
	}
	if len(c.ByzantineCounts) == 0 {
		c.ByzantineCounts = []int{0, 1, 2}
	}
	if len(c.Delays) == 0 {
		c.Delays = []time.Duration{0, 24 * time.Microsecond}
	}
	if len(c.Diversity) == 0 {
		c.Diversity = []string{DiversityIdentical, DiversityDiverse}
	}
	if c.Behavior == "" {
		c.Behavior = string(attack.BehaviorConstant)
	}
	if c.OffsetNS == 0 {
		c.OffsetNS = attack.MaliciousOriginOffsetNS
	}
	if c.DelayTarget == "" {
		c.DelayTarget = "c31"
	}
	if c.HoldoverWindow <= 0 {
		c.HoldoverWindow = 2 * time.Second
	}
	c.Shards = defaultShards(c.Shards)
	return c
}

// AttackPoint is one sweep point's outcome: the adversary census, the
// analytic prediction, the measured survival, and the resulting verdict.
type AttackPoint struct {
	Label     string
	Diversity string
	// ByzAttempted is the campaign size; ByzCompromised counts the
	// exploits that actually succeeded (OS diversity blocks the rest).
	ByzAttempted   int
	ByzCompromised int
	DelayNS        int64
	// Adversaries is the effective adversarial domain count: compromised
	// grandmasters plus the delay-attacked domain when the delay exceeds
	// the validity threshold (deduplicated if the delay target is itself
	// compromised).
	Adversaries int
	// Tolerable is the analytic masking capacity min(f, ⌊(m−1)/2⌋).
	Tolerable        int
	PredictedSurvive bool
	MeasuredSurvive  bool
	Verdict          bounds.Verdict

	MeanPrecisionNS float64
	MaxPrecisionNS  float64
	BoundNS         float64
	Violations      int
	Samples         int

	MaliciousDiscarded int
	HoldoverEntered    int
	HoldoverExited     int
}

// AttacksResult is the campaign table plus the last point's metrics
// snapshot.
type AttacksResult struct {
	ObsSnapshot
	Config AttacksConfig
	Points []AttackPoint
}

// Anomalies counts points whose measured outcome contradicts the analytic
// bound — the number the CI attack-matrix gate fails on.
func (r *AttacksResult) Anomalies() int {
	n := 0
	for _, p := range r.Points {
		if p.Verdict == bounds.VerdictAnomaly {
			n++
		}
	}
	return n
}

// Summary renders the campaign's one-line verdict.
func (r *AttacksResult) Summary() string {
	var counts [4]int
	order := []bounds.Verdict{bounds.VerdictInsideSurvived, bounds.VerdictOutsideFailed,
		bounds.VerdictOutsideSurvived, bounds.VerdictAnomaly}
	for _, p := range r.Points {
		for i, v := range order {
			if p.Verdict == v {
				counts[i]++
			}
		}
	}
	return fmt.Sprintf(
		"adversarial campaign (%d points): %d inside-bound survived, %d outside-bound failed, %d outside-bound survived, %d anomalies",
		len(r.Points), counts[0], counts[1], counts[2], counts[3])
}

// Rows renders the sweep table.
func (r *AttacksResult) Rows() [][]string {
	rows := [][]string{{
		"label", "diversity", "byz_attempted", "byz_compromised", "delay_ns",
		"adversaries", "tolerable", "predicted", "measured", "verdict",
		"mean_ns", "max_ns", "bound_ns", "violations", "samples",
		"malicious_discarded", "holdover_entered", "holdover_exited",
	}}
	outcome := func(survive bool) string {
		if survive {
			return "survive"
		}
		return "fail"
	}
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Label,
			p.Diversity,
			strconv.Itoa(p.ByzAttempted),
			strconv.Itoa(p.ByzCompromised),
			strconv.FormatInt(p.DelayNS, 10),
			strconv.Itoa(p.Adversaries),
			strconv.Itoa(p.Tolerable),
			outcome(p.PredictedSurvive),
			outcome(p.MeasuredSurvive),
			string(p.Verdict),
			fmt.Sprintf("%.0f", p.MeanPrecisionNS),
			fmt.Sprintf("%.0f", p.MaxPrecisionNS),
			fmt.Sprintf("%.0f", p.BoundNS),
			strconv.Itoa(p.Violations),
			strconv.Itoa(p.Samples),
			strconv.Itoa(p.MaliciousDiscarded),
			strconv.Itoa(p.HoldoverEntered),
			strconv.Itoa(p.HoldoverExited),
		})
	}
	return rows
}

// attackScenario is one resolved sweep point.
type attackScenario struct {
	byz       int
	delay     time.Duration
	diversity string
}

func (s attackScenario) label() string {
	return fmt.Sprintf("byz=%d delay=%v kernels=%s", s.byz, s.delay, s.diversity)
}

// Attacks runs the adversarial campaign: the cross product of
// ByzantineCounts × Delays × Diversity, each point an independent same-seed
// run. At AttackStart the attacker exploits the first-n grandmasters of the
// canonical target order (successes depend on the kernel assignment) and
// the on-path adversary starts holding the delay target's Sync frames.
// Each point's measured survival is compared against the analytic 2f+1
// bound; two runs of the same config are byte-identical, at every shard
// count and worker count.
func Attacks(ctx context.Context, cfg AttacksConfig) (*AttacksResult, error) {
	cfg = cfg.withDefaults()

	var scenarios []attackScenario
	for _, div := range cfg.Diversity {
		for _, byz := range cfg.ByzantineCounts {
			for _, d := range cfg.Delays {
				scenarios = append(scenarios, attackScenario{byz: byz, delay: d, diversity: div})
			}
		}
	}

	res := &AttacksResult{Config: cfg}
	snapshots := make([][]obs.Metric, len(scenarios))
	pool := runner.New(cfg.Parallel).WithMetrics(cfg.Metrics)

	runs := make([]runner.Run, len(scenarios))
	for i := range scenarios {
		i := i
		runs[i] = runner.Run{Name: scenarios[i].label(), Do: func(context.Context) (any, error) {
			point, snap, err := attackPoint(cfg, scenarios[i])
			snapshots[i] = snap
			return point, err
		}}
	}
	outcomes := pool.Execute(ctx, runs)
	points, err := runner.Values[AttackPoint](outcomes)
	if err != nil {
		return nil, err
	}
	res.Points = points
	if n := len(snapshots); n > 0 {
		res.Obs = snapshots[n-1]
	}
	return res, nil
}

// attackPoint runs one scenario against a fresh system and classifies the
// outcome against the analytic bound.
func attackPoint(cfg AttacksConfig, sc attackScenario) (AttackPoint, []obs.Metric, error) {
	sysCfg := core.NewConfig(cfg.Seed)
	sysCfg.HoldoverWindow = cfg.HoldoverWindow
	sysCfg.Shards = cfg.Shards
	if sc.diversity == DiversityDiverse {
		sysCfg.DiversifyKernels("c41")
	}
	sys, err := core.NewSystem(sysCfg)
	if err != nil {
		return AttackPoint{}, nil, err
	}
	if err := sys.Start(); err != nil {
		return AttackPoint{}, nil, err
	}

	kind, err := attack.ParseBehaviorKind(cfg.Behavior)
	if err != nil {
		return AttackPoint{}, nil, err
	}
	behavior := attack.Behavior{
		Kind:            kind,
		OffsetNS:        cfg.OffsetNS,
		SlewNSPerSec:    cfg.SlewNSPerSec,
		WanderNSPerStep: cfg.WanderNSPerStep,
	}
	targets := attack.CampaignTargets(attack.DefaultTargetOrder(), sc.byz)
	atk := attack.NewAttacker(attack.DefaultVulnDB(), attack.CVE201818955, targets...)

	// Schedule the coordinated campaign on the control scheduler: all
	// exploits fire at AttackStart (control events run at exact instants at
	// every shard count). Evolving behaviors re-falsify once per second
	// from a per-adversary stream, so their draws are also shard-invariant.
	sys.Scheduler().At(sim.Time(cfg.AttackStart), func() {
		for _, target := range targets {
			vm, ok := sys.VM(target)
			if !ok {
				continue
			}
			adv := attack.NewAdversary(behavior, sys.Streams().Stream("attack/"+target))
			r := atk.Exploit(vm, adv.Offset(0))
			sys.EventLog().Append(core.Event{
				At: sys.Now(), VM: target, Kind: "exploit", Detail: r.String(),
			})
			if r.Success && !behavior.Static() {
				vm := vm
				start := sys.Now()
				_, terr := sys.Scheduler().Every(start.Add(time.Second), time.Second, func() {
					elapsed := time.Duration(sys.Now() - start).Seconds()
					vm.InstallMaliciousPTP4L(adv.Offset(elapsed))
				})
				if terr != nil {
					sys.EventLog().Append(core.Event{
						At: sys.Now(), VM: target, Kind: "exploit",
						Detail: "behavior ticker failed: " + terr.Error(),
					})
				}
			}
		}
	})

	delayInstalled := false
	if sc.delay > 0 {
		link := sys.Link(cfg.DelayTarget)
		if link == nil {
			return AttackPoint{}, nil, fmt.Errorf("attacks: unknown delay target %q", cfg.DelayTarget)
		}
		delayInstalled = true
		delayNS := float64(sc.delay.Nanoseconds())
		sys.Scheduler().At(sim.Time(cfg.AttackStart), func() {
			// Direction 0 of a VM uplink is VM→network: the attacker holds
			// the grandmaster's outbound Sync frames (all domains — the GM
			// only masters one).
			link.SetDelayAttack(attack.SyncDelayAttack{DelayNS: delayNS, Dir: 0, Domain: -1})
			sys.EventLog().Append(core.Event{
				At: sys.Now(), VM: cfg.DelayTarget, Kind: "delay_attack",
				Detail: fmt.Sprintf("on-path Sync delay %v installed on uplink", sc.delay),
			})
		})
	}

	if err := sys.RunFor(cfg.Duration); err != nil {
		return AttackPoint{}, nil, err
	}

	// Adversary census: successful compromises, plus the delay-attacked
	// domain when the induced reading error exceeds the validity threshold
	// (deduplicated if the delay target was itself compromised).
	compromised := atk.Compromised()
	adversaries := len(compromised)
	if delayInstalled && bounds.DelayFaulty(float64(sc.delay.Nanoseconds()), sysCfg.ValidityThresholdNS) {
		dup := false
		for _, name := range compromised {
			if name == cfg.DelayTarget {
				dup = true
			}
		}
		if !dup {
			adversaries++
		}
	}
	m := sysCfg.NumDomains()
	tolerable := bounds.Tolerable(m, sysCfg.F)
	predicted := bounds.Survives(m, sysCfg.F, adversaries)

	// Measured survival: the Fig. 3 criterion — at most a quarter of the
	// post-attack samples beyond Π+γ (the attack needs a settle margin
	// before the verdict window starts).
	bound, _ := sys.PrecisionBound()
	limit := float64(bound + sys.Collector().Gamma())
	verdictFrom := (cfg.AttackStart + 30*time.Second).Seconds()
	var steady []measure.Sample
	for _, s := range sys.Collector().Samples() {
		if s.AtSec >= verdictFrom {
			steady = append(steady, s)
		}
	}
	stats := measure.ComputeStats(steady)
	violations := measure.ViolationCount(steady, limit)
	measured := violations <= len(steady)/4

	snap := sys.Metrics().Snapshot()
	return AttackPoint{
		Label:              sc.label(),
		Diversity:          sc.diversity,
		ByzAttempted:       sc.byz,
		ByzCompromised:     len(compromised),
		DelayNS:            sc.delay.Nanoseconds(),
		Adversaries:        adversaries,
		Tolerable:          tolerable,
		PredictedSurvive:   predicted,
		MeasuredSurvive:    measured,
		Verdict:            bounds.Classify(predicted, measured),
		MeanPrecisionNS:    stats.MeanNS,
		MaxPrecisionNS:     stats.MaxNS,
		BoundNS:            float64(bound),
		Violations:         violations,
		Samples:            len(steady),
		MaliciousDiscarded: sumMetric(snap, "ptp4l_fta_discarded_malicious"),
		HoldoverEntered:    sumMetric(snap, "ptp4l_holdover_entered"),
		HoldoverExited:     sumMetric(snap, "ptp4l_holdover_exited"),
	}, snap, nil
}

// RenderAttackTable renders the campaign table with aligned columns for the
// command-line tools.
func RenderAttackTable(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
