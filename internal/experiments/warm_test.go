package experiments

import (
	"context"
	"crypto/sha256"
	"testing"
	"time"

	"gptpfta/internal/chaos"
	"gptpfta/internal/core"
	"gptpfta/internal/obs"
)

// warmSeeds derives the fork-equivalence seeds: the suite must hold for any
// seed, so each experiment is checked across several.
func warmSeeds() []int64 { return []int64{1, 1001, 2001, 3001, 4001} }

// metricValue reads one counter out of a registry snapshot.
func metricValue(reg *obs.Registry, name string) float64 {
	var v float64
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			v += m.Value
		}
	}
	return v
}

// TestForkEquivalenceBounds: a warm-started bounds run (prefix to half the
// window, snapshot, fork, run the rest) must be bit-identical to the cold
// unsplit run — the study is fault-free, so splitting the timeline at the
// boundary changes nothing.
func TestForkEquivalenceBounds(t *testing.T) {
	for _, seed := range warmSeeds() {
		cfg := BoundsConfig{Seed: seed, Duration: 3 * time.Minute}
		cold, err := Bounds(cfg)
		if err != nil {
			t.Fatalf("seed %d cold: %v", seed, err)
		}
		reg := obs.NewRegistry()
		warmCfg := cfg
		warmCfg.WarmStart = true
		warmCfg.Metrics = reg
		warm, err := Bounds(warmCfg)
		if err != nil {
			t.Fatalf("seed %d warm: %v", seed, err)
		}
		if forks := metricValue(reg, "runner_forks_served"); forks != 1 {
			t.Fatalf("seed %d: forks served = %v, want 1 (the run fell back cold)", seed, forks)
		}
		hc, hw := sha256.New(), sha256.New()
		hashRows(hc, cold.Rows())
		hashRows(hw, warm.Rows())
		if digest(hc) != digest(hw) {
			t.Fatalf("seed %d: warm bounds diverged from cold\ncold: %s\nwarm: %s",
				seed, cold.Summary(), warm.Summary())
		}
	}
}

// TestForkEquivalenceFaultInjection: a warm-started fig4 campaign (fork at
// the injector's start minus the guard) must be bit-identical to the cold
// attach-at-boundary run its fallback executes. Both injection campaigns
// anchor their first firings to absolute instants, so the fork injects at
// exactly the cold run's instants.
func TestForkEquivalenceFaultInjection(t *testing.T) {
	for _, seed := range warmSeeds() {
		cfg := FaultInjectionConfig{
			Seed:                seed,
			Duration:            8 * time.Minute,
			GMPeriod:            2 * time.Minute,
			RedundantMinPerHour: 6,
			RedundantMaxPerHour: 12,
			Downtime:            30 * time.Second,
		}
		cold, err := faultInjectionBoundaryCold(cfg)
		if err != nil {
			t.Fatalf("seed %d cold: %v", seed, err)
		}
		reg := obs.NewRegistry()
		warmCfg := cfg
		warmCfg.WarmStart = true
		warmCfg.Metrics = reg
		warm, err := FaultInjection(warmCfg)
		if err != nil {
			t.Fatalf("seed %d warm: %v", seed, err)
		}
		if forks := metricValue(reg, "runner_forks_served"); forks != 1 {
			t.Fatalf("seed %d: forks served = %v, want 1 (the run fell back cold)", seed, forks)
		}
		if dc, dw := fig4Digest(cold), fig4Digest(warm); dc != dw {
			t.Fatalf("seed %d: warm fault injection diverged from cold\ncold: %s\nwarm: %s",
				seed, cold.Summary(), warm.Summary())
		}
	}
}

// faultInjectionBoundaryCold replicates the warm mode's cold fallback: a
// fresh system run to the boundary, then the injection campaign attached.
func faultInjectionBoundaryCold(cfg FaultInjectionConfig) (*FaultInjectionResult, error) {
	cfg = cfg.withDefaults()
	sysCfg := core.NewConfig(cfg.Seed)
	sysCfg.HoldoverWindow = cfg.HoldoverWindow
	sys, err := core.NewSystem(sysCfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}
	if err := sys.RunFor(faultInjectStart - warmGuard); err != nil {
		return nil, err
	}
	return faultInjectionDiverge(cfg, sys, cfg.Duration-(faultInjectStart-warmGuard))
}

func fig4Digest(res *FaultInjectionResult) string {
	h := sha256.New()
	hashSamples(h, res.Samples)
	hashRows(h, res.Rows())
	return digest(h)
}

// chaosTestPlans rebuilds the sweep's plan list exactly as NetworkChaos does.
func chaosTestPlans(cfg NetworkChaosConfig) []*chaos.Plan {
	var plans []*chaos.Plan
	for _, bad := range cfg.BurstBadLoss {
		plans = append(plans, burstPlan(bad, cfg.ChaosStart))
	}
	for _, d := range cfg.PartitionDurations {
		plans = append(plans, partitionPlan(d, cfg.ChaosStart))
	}
	return plans
}

// TestForkEquivalenceNetworkChaos: every warm-forked chaos sweep point must
// be bit-identical to the cold attach-at-boundary run of the same plan.
func TestForkEquivalenceNetworkChaos(t *testing.T) {
	for _, seed := range warmSeeds() {
		cfg := NetworkChaosConfig{
			Seed:               seed,
			Duration:           4*time.Minute + 30*time.Second,
			BurstBadLoss:       []float64{0.5},
			PartitionDurations: []time.Duration{10 * time.Second},
			Parallel:           1,
		}
		reg := obs.NewRegistry()
		warmCfg := cfg
		warmCfg.WarmStart = true
		warmCfg.Metrics = reg
		warm, err := NetworkChaos(context.Background(), warmCfg)
		if err != nil {
			t.Fatalf("seed %d warm: %v", seed, err)
		}
		if forks := metricValue(reg, "runner_forks_served"); forks != 2 {
			t.Fatalf("seed %d: forks served = %v, want 2 (points fell back cold)", seed, forks)
		}
		// The cold reference: the exact structure the warm mode's fallback
		// executes, one fresh system per plan.
		full := cfg.withDefaults()
		boundary := full.ChaosStart - warmGuard
		var coldPoints []ChaosPoint
		for i, plan := range chaosTestPlans(full) {
			point, _, err := chaosPointFrom(full, plan, boundary)
			if err != nil {
				t.Fatalf("seed %d cold plan %d: %v", seed, i, err)
			}
			coldPoints = append(coldPoints, point)
		}
		coldRes := &NetworkChaosResult{Config: full, Points: coldPoints}
		hc, hw := sha256.New(), sha256.New()
		hashRows(hc, coldRes.Rows())
		hashRows(hw, warm.Rows())
		if digest(hc) != digest(hw) {
			t.Fatalf("seed %d: warm chaos sweep diverged from cold\ncold: %s\nwarm: %s",
				seed, coldRes.Summary(), warm.Summary())
		}
	}
}

// TestWarmFallbackOnPrefixMismatch: a sweep whose swept parameter shapes the
// warm-up must detect the prefix-hash mismatch and demote those points to
// cold runs, with the fallback counted.
func TestWarmFallbackOnPrefixMismatch(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := IntervalSweepConfig{
		Seed:      1,
		Intervals: []time.Duration{125 * time.Millisecond, 250 * time.Millisecond},
		Duration:  3 * time.Minute,
		Parallel:  1,
		WarmStart: true,
		Metrics:   reg,
	}
	warm, err := IntervalSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if forks := metricValue(reg, "runner_forks_served"); forks != 1 {
		t.Fatalf("forks served = %v, want 1 (only the prefix-matching point forks)", forks)
	}
	if cold := metricValue(reg, "runner_cold_fallbacks"); cold != 1 {
		t.Fatalf("cold fallbacks = %v, want 1 (the mismatching point)", cold)
	}
	coldCfg := cfg
	coldCfg.WarmStart = false
	coldCfg.Metrics = nil
	coldRes, err := IntervalSweep(context.Background(), coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	hc, hw := sha256.New(), sha256.New()
	hashRows(hc, coldRes.Rows())
	hashRows(hw, warm.Rows())
	if digest(hc) != digest(hw) {
		t.Fatalf("warm interval sweep diverged from cold\ncold: %s\nwarm: %s",
			coldRes.Summary(), warm.Summary())
	}
}
