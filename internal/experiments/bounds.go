package experiments

import (
	"context"
	"fmt"
	"time"

	"gptpfta/internal/core"
	"gptpfta/internal/fta"
	"gptpfta/internal/obs"
	"gptpfta/internal/runner"
)

// BoundsConfig parameterises the §III-A3 methodology run. Durations are
// nanoseconds on the wire.
type BoundsConfig struct {
	Seed     int64         `json:"seed"`
	Duration time.Duration `json:"duration,omitempty"` // fault-free observation window
	// WarmStart runs the first half of the window as a snapshot prefix and
	// forks the second half from it. The run is fault-free throughout, so
	// the split run is bit-identical to the unsplit one — this mode exists
	// to exercise (and regression-test) the fork path on a full system.
	WarmStart bool `json:"warm_start,omitempty"`
	// Shards runs the simulation on a sharded PDES kernel (1 = the legacy
	// single scheduler). Results are bit-identical at every shard count.
	Shards int `json:"shards,omitempty"`
	// Metrics optionally instruments the run's pool (fork accounting).
	Metrics *obs.Registry `json:"-"`
	// Snapshots optionally shares the prefix snapshot through a campaign
	// cache (the job server's LRU); nil keeps the per-run prefix.
	Snapshots runner.SnapshotCache `json:"-"`
}

func (c BoundsConfig) withDefaults() BoundsConfig {
	if c.Duration <= 0 {
		c.Duration = 10 * time.Minute
	}
	c.Shards = defaultShards(c.Shards)
	return c
}

// Validate implements Validator.
func (c BoundsConfig) Validate() error {
	return firstErr(
		checkDurations(field{"duration", c.Duration}),
		checkShards(defaultShards(c.Shards)),
	)
}

// BoundsResult reproduces the paper's bound-instantiation numbers:
// d_min, d_max, E, Γ, Π and γ (§III-B quotes d_min = 4120 ns,
// d_max = 9188 ns, E = 5068 ns, Π = 12.636 µs, γ = 1313 ns).
type BoundsResult struct {
	ObsSnapshot
	Config BoundsConfig

	DMin, DMax   time.Duration
	ReadingError time.Duration // E = d_max − d_min
	DriftOffset  time.Duration // Γ = 2·r_max·S
	U            float64       // u(N, f)
	Bound        time.Duration // Π = u·(E+Γ)
	Gamma        time.Duration // measurement error over the VLAN paths
	SyncPaths    int
}

// Summary renders the instantiated bound in one line.
func (r *BoundsResult) Summary() string {
	return fmt.Sprintf(
		"bound methodology (%v fault-free, %d sync paths): E = %v, Γ = %v, u = %.2f → Π = %v, γ = %v",
		r.Config.Duration, r.SyncPaths, r.ReadingError, r.DriftOffset, r.U, r.Bound, r.Gamma)
}

// Rows renders the methodology parameters as a name/value table.
func (r *BoundsResult) Rows() [][]string {
	ns := func(d time.Duration) string { return fmt.Sprintf("%d", d.Nanoseconds()) }
	return [][]string{
		{"parameter", "value"},
		{"d_min_ns", ns(r.DMin)},
		{"d_max_ns", ns(r.DMax)},
		{"reading_error_ns", ns(r.ReadingError)},
		{"drift_offset_ns", ns(r.DriftOffset)},
		{"u", fmt.Sprintf("%.2f", r.U)},
		{"bound_ns", ns(r.Bound)},
		{"gamma_ns", ns(r.Gamma)},
		{"sync_paths", fmt.Sprintf("%d", r.SyncPaths)},
	}
}

// Table renders the methodology numbers as the rows the paper reports.
func (r BoundsResult) Table() []string {
	return []string{
		fmt.Sprintf("d_min (min observed path latency)        %12v", r.DMin),
		fmt.Sprintf("d_max (max observed path latency)        %12v", r.DMax),
		fmt.Sprintf("E = d_max - d_min (reading error)        %12v", r.ReadingError),
		fmt.Sprintf("Gamma = 2*r_max*S (drift offset)         %12v", r.DriftOffset),
		fmt.Sprintf("u(N,f)                                   %12.2f", r.U),
		fmt.Sprintf("Pi = u(N,f)*(E+Gamma) (precision bound)  %12v", r.Bound),
		fmt.Sprintf("gamma (measurement error, eq. 3.2)       %12v", r.Gamma),
		fmt.Sprintf("observed sync paths                      %12d", r.SyncPaths),
	}
}

// Bounds runs the fault-free methodology experiment and instantiates the
// convergence-function bound from measured latencies.
func Bounds(cfg BoundsConfig) (*BoundsResult, error) {
	cfg = cfg.withDefaults()
	sysCfg := core.NewConfig(cfg.Seed)
	sysCfg.Shards = cfg.Shards
	if cfg.WarmStart {
		return boundsWarm(cfg, sysCfg)
	}
	sys, err := core.NewSystem(sysCfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}
	if err := sys.RunFor(cfg.Duration); err != nil {
		return nil, err
	}
	return boundsCollect(cfg, sysCfg, sys), nil
}

// boundsWarm is the warm-start form of Bounds: prefix to Duration/2,
// snapshot, fork, run the remainder. There is no divergent machinery in this
// study, so the forked run's result is bit-identical to the cold run's; a
// prefix failure degrades to the cold path via the runner's fallback.
func boundsWarm(cfg BoundsConfig, sysCfg core.Config) (*BoundsResult, error) {
	boundary := cfg.Duration / 2
	hash := core.PrefixHash(sysCfg, boundary)
	wc := runner.WarmConfig{Hash: hash, Prefix: systemPrefix(sysCfg, boundary)}
	run := runner.WarmRun{
		Name: "bounds",
		Hash: hash,
		Fork: func(_ context.Context, snap any) (any, error) {
			sys, err := core.ForkSystem(snap)
			if err != nil {
				return nil, err
			}
			if err := sys.RunFor(cfg.Duration - boundary); err != nil {
				return nil, err
			}
			return boundsCollect(cfg, sysCfg, sys), nil
		},
		Cold: func(context.Context) (any, error) {
			cold := cfg
			cold.WarmStart = false
			return Bounds(cold)
		},
	}
	pool := runner.New(1).WithMetrics(cfg.Metrics).WithSnapshots(cfg.Snapshots)
	vals, err := runner.Values[*BoundsResult](pool.ExecuteWarm(context.Background(), wc, []runner.WarmRun{run}))
	if err != nil {
		return nil, err
	}
	return vals[0], nil
}

// boundsCollect instantiates the bound from a finished run.
func boundsCollect(cfg BoundsConfig, sysCfg core.Config, sys *core.System) *BoundsResult {
	res := &BoundsResult{Config: cfg}
	res.DMin, res.DMax, _ = sys.SyncLatencies().Extrema()
	res.ReadingError = res.DMax - res.DMin
	res.DriftOffset = sys.DriftOffset()
	res.U = fta.U(sysCfg.Nodes, sysCfg.F)
	res.Bound = fta.Bound(sysCfg.Nodes, sysCfg.F, res.ReadingError, res.DriftOffset)
	res.Gamma = sys.Collector().Gamma()
	res.SyncPaths = sys.SyncLatencies().Paths()
	res.Obs = sys.Metrics().Snapshot()
	return res
}
