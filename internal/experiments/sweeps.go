package experiments

import (
	"fmt"
	"time"

	"gptpfta/internal/attack"
	"gptpfta/internal/core"
	"gptpfta/internal/measure"
	"gptpfta/internal/sim"
)

// SweepPoint is one row of a parameter-sweep table.
type SweepPoint struct {
	Label           string
	MeanPrecisionNS float64
	MaxPrecisionNS  float64
	BoundNS         float64
	Violations      int
	Samples         int
}

// String renders the row.
func (p SweepPoint) String() string {
	return fmt.Sprintf("%-22s avg %8.0f ns  max %9.0f ns  bound %9.0f ns  violations %d/%d",
		p.Label, p.MeanPrecisionNS, p.MaxPrecisionNS, p.BoundNS, p.Violations, p.Samples)
}

// SyncIntervalSweep measures steady-state precision and the analytic bound
// across synchronization intervals S. The drift-offset term Γ = 2·r_max·S
// grows linearly with S, so the bound widens while the achieved precision
// degrades more slowly — the engineering trade-off behind the paper's
// choice of S = 125 ms.
func SyncIntervalSweep(seed int64, intervals []time.Duration, duration time.Duration) ([]SweepPoint, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{
			62500 * time.Microsecond,
			125 * time.Millisecond,
			250 * time.Millisecond,
			500 * time.Millisecond,
		}
	}
	if duration <= 0 {
		duration = 6 * time.Minute
	}
	out := make([]SweepPoint, 0, len(intervals))
	for _, s := range intervals {
		cfg := core.NewConfig(seed)
		cfg.SyncInterval = s
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.Start(); err != nil {
			return nil, err
		}
		if err := sys.RunFor(duration); err != nil {
			return nil, err
		}
		settle := (90 * time.Second).Seconds()
		var steady []measure.Sample
		for _, smp := range sys.Collector().Samples() {
			if smp.AtSec >= settle {
				steady = append(steady, smp)
			}
		}
		stats := measure.ComputeStats(steady)
		bound, _ := sys.PrecisionBound()
		out = append(out, SweepPoint{
			Label:           fmt.Sprintf("S = %v", s),
			MeanPrecisionNS: stats.MeanNS,
			MaxPrecisionNS:  stats.MaxNS,
			BoundNS:         float64(bound),
			Violations:      measure.ViolationCount(steady, float64(bound)),
			Samples:         len(steady),
		})
	}
	return out, nil
}

// DomainCountSweep measures Byzantine masking across domain counts M with
// one compromised grandmaster: M = 2 cannot mask any fault (N < 2f+1 for
// f = 1), M = 3 masks via the median, M = 4 is the paper's configuration.
func DomainCountSweep(seed int64, counts []int, duration time.Duration) ([]SweepPoint, error) {
	if len(counts) == 0 {
		counts = []int{2, 3, 4}
	}
	if duration <= 0 {
		duration = 8 * time.Minute
	}
	out := make([]SweepPoint, 0, len(counts))
	for _, m := range counts {
		cfg := core.NewConfig(seed)
		cfg.DomainCount = m
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.Start(); err != nil {
			return nil, err
		}
		// Compromise the highest-numbered domain's grandmaster a third in.
		target := core.VMName(m-1, 0)
		sys.Scheduler().At(sim.Time(duration/3), func() {
			if vm, ok := sys.VM(target); ok {
				vm.Stack.Compromise(attack.MaliciousOriginOffsetNS)
			}
		})
		if err := sys.RunFor(duration); err != nil {
			return nil, err
		}
		attackSec := (duration / 3).Seconds()
		var after []measure.Sample
		for _, smp := range sys.Collector().Samples() {
			if smp.AtSec >= attackSec+30 {
				after = append(after, smp)
			}
		}
		stats := measure.ComputeStats(after)
		bound, _ := sys.PrecisionBound()
		out = append(out, SweepPoint{
			Label:           fmt.Sprintf("M = %d domains", m),
			MeanPrecisionNS: stats.MeanNS,
			MaxPrecisionNS:  stats.MaxNS,
			BoundNS:         float64(bound),
			Violations:      measure.ViolationCount(after, float64(bound)),
			Samples:         len(after),
		})
	}
	return out, nil
}
