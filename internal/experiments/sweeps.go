package experiments

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"gptpfta/internal/attack"
	"gptpfta/internal/core"
	"gptpfta/internal/measure"
	"gptpfta/internal/obs"
	"gptpfta/internal/runner"
	"gptpfta/internal/sim"
)

// SweepPoint is one row of a parameter-sweep table.
type SweepPoint struct {
	Label           string
	MeanPrecisionNS float64
	MaxPrecisionNS  float64
	BoundNS         float64
	Violations      int
	Samples         int
}

// String renders the row.
func (p SweepPoint) String() string {
	return fmt.Sprintf("%-22s avg %8.0f ns  max %9.0f ns  bound %9.0f ns  violations %d/%d",
		p.Label, p.MeanPrecisionNS, p.MaxPrecisionNS, p.BoundNS, p.Violations, p.Samples)
}

// SweepResult is a parameter sweep's table plus its identity.
type SweepResult struct {
	Name   string
	Points []SweepPoint
}

// Summary condenses the table into the sweep's one-line verdict.
func (r *SweepResult) Summary() string {
	if len(r.Points) == 0 {
		return r.Name + ": no points"
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	var violations int
	for _, p := range r.Points {
		violations += p.Violations
	}
	return fmt.Sprintf("%s (%d points, %s → %s): bound %.0f → %.0f ns, mean precision %.0f → %.0f ns, %d violations in total",
		r.Name, len(r.Points), first.Label, last.Label,
		first.BoundNS, last.BoundNS, first.MeanPrecisionNS, last.MeanPrecisionNS, violations)
}

// Rows renders the sweep table.
func (r *SweepResult) Rows() [][]string {
	rows := [][]string{{"label", "mean_ns", "max_ns", "bound_ns", "violations", "samples"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%.0f", p.MeanPrecisionNS),
			fmt.Sprintf("%.0f", p.MaxPrecisionNS),
			fmt.Sprintf("%.0f", p.BoundNS),
			strconv.Itoa(p.Violations),
			strconv.Itoa(p.Samples),
		})
	}
	return rows
}

// sweepPoints fans the per-point measurements across the runner's pool and
// returns them in submission order.
func sweepPoints(ctx context.Context, parallel int, labels []string,
	point func(i int) (SweepPoint, error)) ([]SweepPoint, error) {
	runs := make([]runner.Run, len(labels))
	for i := range labels {
		i := i
		runs[i] = runner.Run{Name: labels[i], Do: func(context.Context) (any, error) {
			return point(i)
		}}
	}
	return runner.Values[SweepPoint](runner.New(parallel).Execute(ctx, runs))
}

// IntervalSweepConfig parameterises IntervalSweep. Durations are
// nanoseconds on the wire.
type IntervalSweepConfig struct {
	Seed      int64           `json:"seed"`
	Intervals []time.Duration `json:"intervals,omitempty"`
	Duration  time.Duration   `json:"duration,omitempty"`
	// Parallel is the runner's worker count (0 = GOMAXPROCS, 1 =
	// sequential); the table is identical for every value.
	Parallel int `json:"parallel,omitempty"`
	// WarmStart enables snapshot forking. The swept parameter (SyncInterval)
	// shapes the warm-up itself, so every point except the first falls back
	// to a cold run via the prefix-hash mismatch — this sweep demonstrates
	// the fallback detection, not the speed-up.
	WarmStart bool `json:"warm_start,omitempty"`
	// Metrics optionally instruments the campaign's runner pool.
	Metrics *obs.Registry `json:"-"`
	// Snapshots optionally shares the prefix snapshot through a campaign
	// cache (the job server's LRU); nil keeps the per-campaign prefix.
	Snapshots runner.SnapshotCache `json:"-"`
	// Shards runs every point on a sharded PDES kernel (1 = the legacy
	// single scheduler). Results are bit-identical at every shard count.
	Shards int `json:"shards,omitempty"`
}

// Validate implements Validator.
func (c IntervalSweepConfig) Validate() error {
	for i, s := range c.Intervals {
		if s <= 0 {
			return fmt.Errorf("intervals[%d] must be positive (got %v)", i, s)
		}
	}
	return firstErr(
		checkDurations(field{"duration", c.Duration}),
		checkShards(defaultShards(c.Shards)),
	)
}

func (c IntervalSweepConfig) withDefaults() IntervalSweepConfig {
	if len(c.Intervals) == 0 {
		c.Intervals = []time.Duration{
			62500 * time.Microsecond,
			125 * time.Millisecond,
			250 * time.Millisecond,
			500 * time.Millisecond,
		}
	}
	if c.Duration <= 0 {
		c.Duration = 6 * time.Minute
	}
	c.Shards = defaultShards(c.Shards)
	return c
}

// IntervalSweep measures steady-state precision and the analytic bound
// across synchronization intervals S. The drift-offset term Γ = 2·r_max·S
// grows linearly with S, so the bound widens while the achieved precision
// degrades more slowly — the engineering trade-off behind the paper's
// choice of S = 125 ms.
func IntervalSweep(ctx context.Context, cfg IntervalSweepConfig) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	labels := make([]string, len(cfg.Intervals))
	for i, s := range cfg.Intervals {
		labels[i] = fmt.Sprintf("S = %v", s)
	}
	if cfg.WarmStart {
		points, err := intervalSweepWarm(ctx, cfg, labels)
		if err != nil {
			return nil, err
		}
		return &SweepResult{Name: "synchronization-interval sweep", Points: points}, nil
	}
	points, err := sweepPoints(ctx, cfg.Parallel, labels, func(i int) (SweepPoint, error) {
		return intervalPoint(cfg.Seed, cfg.Intervals[i], cfg.Duration, cfg.Shards)
	})
	if err != nil {
		return nil, err
	}
	return &SweepResult{Name: "synchronization-interval sweep", Points: points}, nil
}

// intervalSweepWarm runs the sweep through the warm-start engine. The prefix
// is built from the first point's config; every other point's SyncInterval
// changes its prefix hash, so those points run cold and the campaign counts
// them as fallbacks. The run is fault-free, so the one forked point is
// bit-identical to its cold (unsplit) run.
func intervalSweepWarm(ctx context.Context, cfg IntervalSweepConfig, labels []string) ([]SweepPoint, error) {
	boundary := cfg.Duration / 2
	prefixCfg := intervalSysCfg(cfg.Seed, cfg.Intervals[0], cfg.Shards)
	wc := runner.WarmConfig{
		Hash:   core.PrefixHash(prefixCfg, boundary),
		Prefix: systemPrefix(prefixCfg, boundary),
	}
	wruns := make([]runner.WarmRun, len(cfg.Intervals))
	for i := range cfg.Intervals {
		i := i
		s := cfg.Intervals[i]
		wruns[i] = runner.WarmRun{
			Name: labels[i],
			Hash: core.PrefixHash(intervalSysCfg(cfg.Seed, s, cfg.Shards), boundary),
			Fork: func(_ context.Context, snap any) (any, error) {
				sys, err := core.ForkSystem(snap)
				if err != nil {
					return SweepPoint{}, err
				}
				if err := sys.RunFor(cfg.Duration - boundary); err != nil {
					return SweepPoint{}, err
				}
				return intervalCollect(sys, s), nil
			},
			Cold: func(context.Context) (any, error) {
				return intervalPoint(cfg.Seed, s, cfg.Duration, cfg.Shards)
			},
		}
	}
	pool := runner.New(cfg.Parallel).WithMetrics(cfg.Metrics).WithSnapshots(cfg.Snapshots)
	return runner.Values[SweepPoint](pool.ExecuteWarm(ctx, wc, wruns))
}

// intervalSysCfg is one interval point's system configuration.
func intervalSysCfg(seed int64, s time.Duration, shards int) core.Config {
	cfg := core.NewConfig(seed)
	cfg.SyncInterval = s
	cfg.Shards = shards
	return cfg
}

func intervalPoint(seed int64, s, duration time.Duration, shards int) (SweepPoint, error) {
	sys, err := core.NewSystem(intervalSysCfg(seed, s, shards))
	if err != nil {
		return SweepPoint{}, err
	}
	if err := sys.Start(); err != nil {
		return SweepPoint{}, err
	}
	if err := sys.RunFor(duration); err != nil {
		return SweepPoint{}, err
	}
	return intervalCollect(sys, s), nil
}

// intervalCollect reads one finished interval point out of the system.
func intervalCollect(sys *core.System, s time.Duration) SweepPoint {
	settle := (90 * time.Second).Seconds()
	var steady []measure.Sample
	for _, smp := range sys.Collector().Samples() {
		if smp.AtSec >= settle {
			steady = append(steady, smp)
		}
	}
	stats := measure.ComputeStats(steady)
	bound, _ := sys.PrecisionBound()
	return SweepPoint{
		Label:           fmt.Sprintf("S = %v", s),
		MeanPrecisionNS: stats.MeanNS,
		MaxPrecisionNS:  stats.MaxNS,
		BoundNS:         float64(bound),
		Violations:      measure.ViolationCount(steady, float64(bound)),
		Samples:         len(steady),
	}
}

// DomainSweepConfig parameterises DomainSweep. Durations are nanoseconds on
// the wire.
type DomainSweepConfig struct {
	Seed     int64         `json:"seed"`
	Counts   []int         `json:"counts,omitempty"`
	Duration time.Duration `json:"duration,omitempty"`
	// Parallel is the runner's worker count (0 = GOMAXPROCS, 1 =
	// sequential); the table is identical for every value.
	Parallel int `json:"parallel,omitempty"`
	// WarmStart enables snapshot forking. The swept parameter (DomainCount)
	// shapes the warm-up itself, so every point except the first falls back
	// to a cold run via the prefix-hash mismatch.
	WarmStart bool `json:"warm_start,omitempty"`
	// Metrics optionally instruments the campaign's runner pool.
	Metrics *obs.Registry `json:"-"`
	// Snapshots optionally shares the prefix snapshot through a campaign
	// cache (the job server's LRU); nil keeps the per-campaign prefix.
	Snapshots runner.SnapshotCache `json:"-"`
	// Shards runs every point on a sharded PDES kernel (1 = the legacy
	// single scheduler). Results are bit-identical at every shard count.
	Shards int `json:"shards,omitempty"`
}

// Validate implements Validator.
func (c DomainSweepConfig) Validate() error {
	for i, m := range c.Counts {
		if m < 2 {
			return fmt.Errorf("counts[%d] must be at least 2 domains (got %d)", i, m)
		}
	}
	return firstErr(
		checkDurations(field{"duration", c.Duration}),
		checkShards(defaultShards(c.Shards)),
	)
}

func (c DomainSweepConfig) withDefaults() DomainSweepConfig {
	if len(c.Counts) == 0 {
		c.Counts = []int{2, 3, 4}
	}
	if c.Duration <= 0 {
		c.Duration = 8 * time.Minute
	}
	c.Shards = defaultShards(c.Shards)
	return c
}

// DomainSweep measures Byzantine masking across domain counts M with one
// compromised grandmaster: M = 2 cannot mask any fault (N < 2f+1 for
// f = 1), M = 3 masks via the median, M = 4 is the paper's configuration.
func DomainSweep(ctx context.Context, cfg DomainSweepConfig) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	labels := make([]string, len(cfg.Counts))
	for i, m := range cfg.Counts {
		labels[i] = fmt.Sprintf("M = %d domains", m)
	}
	if cfg.WarmStart {
		points, err := domainSweepWarm(ctx, cfg, labels)
		if err != nil {
			return nil, err
		}
		return &SweepResult{Name: "domain-count sweep", Points: points}, nil
	}
	points, err := sweepPoints(ctx, cfg.Parallel, labels, func(i int) (SweepPoint, error) {
		return domainPoint(cfg.Seed, cfg.Counts[i], cfg.Duration, cfg.Shards)
	})
	if err != nil {
		return nil, err
	}
	return &SweepResult{Name: "domain-count sweep", Points: points}, nil
}

// domainSweepWarm runs the sweep through the warm-start engine. The prefix
// replicates the first point's setup — including its pending compromise
// event — and snapshots warmGuard before the attack fires, so the forked
// first point is bit-identical to its cold run; the other counts change the
// prefix hash and fall back cold.
func domainSweepWarm(ctx context.Context, cfg DomainSweepConfig, labels []string) ([]SweepPoint, error) {
	boundary := cfg.Duration/3 - warmGuard
	if half := cfg.Duration / 2; boundary > half {
		boundary = half
	}
	wc := runner.WarmConfig{}
	if boundary > 0 {
		wc.Hash = core.PrefixHash(domainSysCfg(cfg.Seed, cfg.Counts[0], cfg.Shards), boundary)
		wc.Prefix = func(context.Context) (any, error) {
			sys, err := domainSetup(cfg.Seed, cfg.Counts[0], cfg.Duration, cfg.Shards)
			if err != nil {
				return nil, err
			}
			if err := sys.RunFor(boundary); err != nil {
				return nil, err
			}
			return sys.Snapshot(), nil
		}
	}
	wruns := make([]runner.WarmRun, len(cfg.Counts))
	for i := range cfg.Counts {
		i := i
		m := cfg.Counts[i]
		wruns[i] = runner.WarmRun{
			Name: labels[i],
			Hash: core.PrefixHash(domainSysCfg(cfg.Seed, m, cfg.Shards), boundary),
			Fork: func(_ context.Context, snap any) (any, error) {
				sys, err := core.ForkSystem(snap)
				if err != nil {
					return SweepPoint{}, err
				}
				if err := sys.RunFor(cfg.Duration - boundary); err != nil {
					return SweepPoint{}, err
				}
				return domainCollect(sys, m, cfg.Duration), nil
			},
			Cold: func(context.Context) (any, error) {
				return domainPoint(cfg.Seed, m, cfg.Duration, cfg.Shards)
			},
		}
	}
	pool := runner.New(cfg.Parallel).WithMetrics(cfg.Metrics).WithSnapshots(cfg.Snapshots)
	return runner.Values[SweepPoint](pool.ExecuteWarm(ctx, wc, wruns))
}

// domainSysCfg is one domain point's system configuration.
func domainSysCfg(seed int64, m, shards int) core.Config {
	cfg := core.NewConfig(seed)
	cfg.DomainCount = m
	cfg.Shards = shards
	return cfg
}

// domainSetup builds and starts one domain point's system with its
// compromise event pending.
func domainSetup(seed int64, m int, duration time.Duration, shards int) (*core.System, error) {
	sys, err := core.NewSystem(domainSysCfg(seed, m, shards))
	if err != nil {
		return nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}
	// Compromise the highest-numbered domain's grandmaster a third in.
	target := core.VMName(m-1, 0)
	sys.Scheduler().At(sim.Time(duration/3), func() {
		if vm, ok := sys.VM(target); ok {
			vm.Stack.Compromise(attack.MaliciousOriginOffsetNS)
		}
	})
	return sys, nil
}

func domainPoint(seed int64, m int, duration time.Duration, shards int) (SweepPoint, error) {
	sys, err := domainSetup(seed, m, duration, shards)
	if err != nil {
		return SweepPoint{}, err
	}
	if err := sys.RunFor(duration); err != nil {
		return SweepPoint{}, err
	}
	return domainCollect(sys, m, duration), nil
}

// domainCollect reads one finished domain point out of the system.
func domainCollect(sys *core.System, m int, duration time.Duration) SweepPoint {
	attackSec := (duration / 3).Seconds()
	var after []measure.Sample
	for _, smp := range sys.Collector().Samples() {
		if smp.AtSec >= attackSec+30 {
			after = append(after, smp)
		}
	}
	stats := measure.ComputeStats(after)
	bound, _ := sys.PrecisionBound()
	return SweepPoint{
		Label:           fmt.Sprintf("M = %d domains", m),
		MeanPrecisionNS: stats.MeanNS,
		MaxPrecisionNS:  stats.MaxNS,
		BoundNS:         float64(bound),
		Violations:      measure.ViolationCount(after, float64(bound)),
		Samples:         len(after),
	}
}
