package experiments

import (
	"fmt"
	"math"
	"time"
)

// Shared validation vocabulary for the config structs' Validate methods.
// The withDefaults() convention treats zero values as "use the default", so
// validation rejects what defaulting would otherwise silently absorb or
// misread: negative durations, NaN or out-of-range rates, nonsensical
// counts.

// field pairs a config field's wire name with its duration value.
type field struct {
	name string
	d    time.Duration
}

// checkDurations rejects negative durations (zero means "default").
func checkDurations(fields ...field) error {
	for _, f := range fields {
		if f.d < 0 {
			return fmt.Errorf("%s must not be negative (got %v)", f.name, f.d)
		}
	}
	return nil
}

// checkRate rejects NaN and values outside [0, 1].
func checkRate(name string, v float64) error {
	if math.IsNaN(v) || v < 0 || v > 1 {
		return fmt.Errorf("%s must be a probability in [0, 1] (got %v)", name, v)
	}
	return nil
}

// checkFinite rejects NaN and infinities.
func checkFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%s must be finite (got %v)", name, v)
	}
	return nil
}

// checkNonNegative rejects NaN, infinities and negative values.
func checkNonNegative(name string, v float64) error {
	if err := checkFinite(name, v); err != nil {
		return err
	}
	if v < 0 {
		return fmt.Errorf("%s must not be negative (got %v)", name, v)
	}
	return nil
}

// checkShards rejects shard counts below 1. Zero never reaches validation:
// withDefaults() maps it to 1 (the legacy single-scheduler kernel), and the
// registry's default configs set it explicitly.
func checkShards(shards int) error {
	if shards < 1 {
		return fmt.Errorf("shards must be >= 1 (got %d)", shards)
	}
	return nil
}

// defaultShards resolves a config's shard count (0 means "default": 1).
func defaultShards(shards int) int {
	if shards == 0 {
		return 1
	}
	return shards
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
