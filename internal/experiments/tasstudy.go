package experiments

import (
	"fmt"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/gptp"
	"gptpfta/internal/measure"
	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
	"gptpfta/internal/tas"
)

// TASStudyConfig parameterises the time-aware-shaper ablation: how much of
// the reading error E (and with it the precision bound Π = u(N,f)(E+Γ))
// comes from best-effort interference that the integrated TSN switches'
// 802.1Qbv schedules remove.
type TASStudyConfig struct {
	Seed     int64         `json:"seed"`
	Duration time.Duration `json:"duration,omitempty"`
	// BurstBytes / BurstFrames / BurstInterval describe the best-effort
	// load crossing the same egress port as the Sync path.
	BurstBytes    int           `json:"burst_bytes,omitempty"`
	BurstFrames   int           `json:"burst_frames,omitempty"`
	BurstInterval time.Duration `json:"burst_interval,omitempty"`
}

// Validate implements Validator.
func (c TASStudyConfig) Validate() error {
	if c.BurstBytes < 0 {
		return fmt.Errorf("burst_bytes must not be negative (got %d)", c.BurstBytes)
	}
	if c.BurstFrames < 0 {
		return fmt.Errorf("burst_frames must not be negative (got %d)", c.BurstFrames)
	}
	return checkDurations(
		field{"duration", c.Duration},
		field{"burst_interval", c.BurstInterval})
}

func (c TASStudyConfig) withDefaults() TASStudyConfig {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Minute
	}
	if c.BurstBytes <= 0 {
		c.BurstBytes = 1500
	}
	if c.BurstFrames <= 0 {
		c.BurstFrames = 6
	}
	if c.BurstInterval <= 0 {
		c.BurstInterval = 500 * time.Microsecond
	}
	return c
}

// TASOutcome is one egress model's result.
type TASOutcome struct {
	Model string
	// SyncLatencyMin/Max/Spread summarise the observed Sync path
	// latencies through the contended port.
	SyncLatencyMin, SyncLatencyMax time.Duration
	Spread                         time.Duration // the E contribution
	SyncsObserved                  int
	BEFramesSent                   uint64
}

// TASStudyResult contrasts a FIFO (non-TSN) egress against a protected
// 802.1Qbv schedule under identical best-effort load.
type TASStudyResult struct {
	Config    TASStudyConfig
	FIFO      TASOutcome
	Protected TASOutcome
}

// Summary renders the verdict.
func (r TASStudyResult) Summary() string {
	return fmt.Sprintf(
		"TAS ablation: FIFO egress Sync-latency spread %v; protected 802.1Qbv window %v (%0.1fx tighter) under identical best-effort bursts",
		r.FIFO.Spread, r.Protected.Spread,
		safeRatio(float64(r.FIFO.Spread), float64(r.Protected.Spread)))
}

// Rows renders the per-egress-model table.
func (r *TASStudyResult) Rows() [][]string {
	rows := [][]string{{"egress", "sync_latency_min", "sync_latency_max", "spread_ns", "syncs", "be_frames"}}
	for _, o := range []TASOutcome{r.FIFO, r.Protected} {
		rows = append(rows, []string{o.Model, o.SyncLatencyMin.String(), o.SyncLatencyMax.String(),
			fmt.Sprintf("%d", o.Spread.Nanoseconds()),
			fmt.Sprintf("%d", o.SyncsObserved), fmt.Sprintf("%d", o.BEFramesSent)})
	}
	return rows
}

// TASStudy wires a grandmaster and a client through one switch whose
// client-facing egress port also carries heavy best-effort bursts, and
// measures the Sync path latency spread with (a) a single FIFO queue (a
// non-TSN switch) and (b) a protected-window gate schedule.
func TASStudy(cfg TASStudyConfig) (*TASStudyResult, error) {
	cfg = cfg.withDefaults()
	res := &TASStudyResult{Config: cfg}

	run := func(model string, mkShaper func() (*tas.Shaper, error)) (TASOutcome, error) {
		out := TASOutcome{Model: model}
		sched := sim.NewScheduler()
		streams := sim.NewStreams(cfg.Seed)

		mkPHC := func(name string, ppb float64) *clock.PHC {
			osc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: ppb, WanderPPBPerSqrtSec: 1},
				streams.Stream("osc/"+name), 0)
			return clock.NewPHC(sched, osc, streams.Stream("ts/"+name),
				clock.PHCConfig{TimestampJitterNS: 8})
		}
		br := netsim.NewBridge("sw", sched, streams.Stream("br"), mkPHC("sw", 2000),
			netsim.BridgeConfig{
				Ports: 3,
				Residence: map[int]netsim.ResidenceModel{
					netsim.PriorityBestEffort: {Base: time.Microsecond},
				},
			})
		shaper, err := mkShaper()
		if err != nil {
			return out, err
		}
		br.SetEgressScheduler(1, shaper) // the client-facing port

		gm := netsim.NewNIC("gm", sched, mkPHC("gm", 1500))
		cl := netsim.NewNIC("cl", sched, mkPHC("cl", -1500))
		be := netsim.NewNIC("be", sched, mkPHC("be", 0))
		lc := netsim.LinkConfig{Propagation: 500 * time.Nanosecond, JitterNS: 20}
		for i, nic := range []*netsim.NIC{gm, cl, be} {
			if _, err := netsim.Connect(sched, streams.Stream(fmt.Sprintf("l%d", i)), lc,
				nic.Port(), br.Port(i)); err != nil {
				return out, err
			}
		}
		relay, err := gptp.NewRelay(br, sched, streams.Stream("relay"), gptp.RelayConfig{
			Domains: map[int]gptp.DomainPorts{0: {SlavePort: 0, MasterPorts: []int{1}}},
		})
		if err != nil {
			return out, err
		}
		if err := relay.Start(); err != nil {
			return out, err
		}

		// The client only tracks Sync path latencies.
		tracker := measure.NewLatencyTracker()
		var syncs int
		cl.SetHandler(func(f *netsim.Frame, _ float64) {
			if _, ok := f.Payload.(*gptp.Sync); ok {
				syncs++
				tracker.Observe("gm->cl", f.PathLatency(sched.Now()))
			}
		})
		master := gptp.NewMaster(gm, sched, streams.Stream("gm"), gptp.MasterConfig{Domain: 0}, nil)
		if err := master.Start(); err != nil {
			return out, err
		}

		// Best-effort bursts toward the client: they contend on port 1.
		src, err := netsim.NewTrafficSource(be, sched, streams.Stream("traffic"), netsim.TrafficConfig{
			Dst:      "nic/cl",
			Priority: netsim.PriorityBestEffort,
			Bytes:    cfg.BurstBytes,
			Burst:    cfg.BurstFrames,
			Interval: cfg.BurstInterval,
		})
		if err != nil {
			return out, err
		}
		br.AddRoute("nic/cl", 1)
		if err := src.Start(); err != nil {
			return out, err
		}

		if err := sched.RunUntil(sim.Time(cfg.Duration)); err != nil {
			return out, err
		}
		src.Stop()
		master.Stop()

		min, max, ok := tracker.Extrema()
		if !ok {
			return out, fmt.Errorf("experiments: no Sync observed under %s egress", model)
		}
		out.SyncLatencyMin, out.SyncLatencyMax = min, max
		out.Spread = max - min
		out.SyncsObserved = syncs
		out.BEFramesSent = src.Sent()
		return out, nil
	}

	var err error
	res.FIFO, err = run("fifo", func() (*tas.Shaper, error) {
		return tas.NewFIFOShaper(1000)
	})
	if err != nil {
		return nil, err
	}
	// The TSN egress keeps the PTP and measurement gates permanently open
	// (event traffic must not incur gate-phase delay relative to the
	// unaligned Sync schedule) and gates best-effort instead; strict
	// priority with preemption does the rest. This is how the testbed's
	// integrated switches are provisioned.
	res.Protected, err = run("802.1Qbv", func() (*tas.Shaper, error) {
		gcl, err := tas.NewGateControlList([]tas.GateEntry{
			{Gates: tas.AllOpen, Duration: 105 * time.Microsecond},
			{Gates: tas.MaskFor(netsim.PriorityPTP, netsim.PriorityMeasure), Duration: 20 * time.Microsecond},
		})
		if err != nil {
			return nil, err
		}
		return tas.NewShaper(gcl, 1000)
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
