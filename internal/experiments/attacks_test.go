package experiments

import (
	"context"
	"crypto/sha256"
	"reflect"
	"strings"
	"testing"
	"time"

	"gptpfta/internal/attack/bounds"
)

// goldenAttacksDigest pins the adversarial campaign's full table — adversary
// census, analytic predictions, measured survivals and verdicts — for a
// compact sweep over every axis (Byzantine count × Sync delay × kernel
// diversity). Any change to the attack scheduling, the delay-attack hook,
// the FTA accounting or the verdict computation shows up here.
const goldenAttacksDigest = "709f9772487899a5716d0f4ad9f0e2bc909a591a57f1176721d3ab23d5e5e951"

// goldenAttacksConfig is the digest's sweep: small but covering the whole
// axis cross product, paper behavior (constant −24 µs falsification).
func goldenAttacksConfig() AttacksConfig {
	return AttacksConfig{
		Seed:            1,
		Duration:        6 * time.Minute,
		AttackStart:     2 * time.Minute,
		ByzantineCounts: []int{0, 1, 2},
		Delays:          []time.Duration{0, 24 * time.Microsecond},
		Diversity:       []string{DiversityIdentical, DiversityDiverse},
	}
}

func TestGoldenDigestAttacks(t *testing.T) {
	res, err := Attacks(context.Background(), goldenAttacksConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	hashRows(h, res.Rows())
	if got := digest(h); got != goldenAttacksDigest {
		t.Fatalf("attacks digest changed: got %s want %s\nsummary: %s\n%s",
			got, goldenAttacksDigest, res.Summary(), RenderAttackTable(res.Rows()))
	}
	if n := res.Anomalies(); n != 0 {
		t.Fatalf("attacks campaign produced %d anomaly verdicts:\n%s",
			n, RenderAttackTable(res.Rows()))
	}
}

// TestAttacksBoundary checks the acceptance criterion directly: at the
// paper's default parameters the measured failure boundary coincides with
// the analytic 2f+1 prediction at every sweep point — no anomalies, and no
// outside-bound survivals either (both adversary vectors push readings in
// the same direction, so the bound is tight here).
func TestAttacksBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("full default campaign")
	}
	res, err := Attacks(context.Background(), AttacksConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Verdict == bounds.VerdictAnomaly {
			t.Errorf("%s (%s): measured failure inside the analytic bound", p.Label, p.Diversity)
		}
		if p.PredictedSurvive != p.MeasuredSurvive {
			t.Errorf("%s (%s): predicted %v measured %v — boundary off by more than one sweep step",
				p.Label, p.Diversity, p.PredictedSurvive, p.MeasuredSurvive)
		}
	}
}

// TestShardEquivalenceAttacks pins the campaign's PDES determinism: the
// rendered Summary and Rows are bit-identical at shard counts 1, 2 and 4,
// including under the wander behavior, whose per-adversary RNG stream is
// consumed from control-scheduler ticks (exact instants at every shard
// count).
func TestShardEquivalenceAttacks(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard equivalence sweep is slow")
	}
	base := AttacksConfig{
		Seed:            5,
		Duration:        3 * time.Minute,
		AttackStart:     time.Minute,
		ByzantineCounts: []int{2},
		Delays:          []time.Duration{24 * time.Microsecond},
		Diversity:       []string{DiversityIdentical},
		Behavior:        "wander",
		WanderNSPerStep: 2000,
	}
	var ref shardDigest
	for _, shards := range []int{1, 2, 4} {
		cfg := base
		cfg.Shards = shards
		res, err := Attacks(context.Background(), cfg)
		got := digestOf(t, res, err)
		if shards == 1 {
			ref = got
			continue
		}
		if got.Summary != ref.Summary {
			t.Fatalf("attacks: summary diverged at %d shards:\n  1: %s\n  %d: %s",
				shards, ref.Summary, shards, got.Summary)
		}
		if !reflect.DeepEqual(got.Rows, ref.Rows) {
			t.Fatalf("attacks: rows diverged at %d shards", shards)
		}
	}
}

// TestAttacksReproducibility checks the sweep is bit-identical across two
// runs and across runner worker counts (sequential vs parallel fan-out).
func TestAttacksReproducibility(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated campaign runs")
	}
	run := func(parallel int) shardDigest {
		res, err := Attacks(context.Background(), AttacksConfig{
			Seed:            3,
			Duration:        2 * time.Minute,
			AttackStart:     45 * time.Second,
			ByzantineCounts: []int{1, 2},
			Delays:          []time.Duration{0, 24 * time.Microsecond},
			Diversity:       []string{DiversityIdentical},
			Parallel:        parallel,
		})
		return digestOf(t, res, err)
	}
	seq := run(1)
	if again := run(1); !reflect.DeepEqual(seq, again) {
		t.Fatal("same-config attacks runs diverged")
	}
	if par := run(4); !reflect.DeepEqual(seq, par) {
		t.Fatal("attacks table depends on the worker count")
	}
}

func TestAttacksConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  AttacksConfig
		want string
	}{
		{"negative byz", AttacksConfig{ByzantineCounts: []int{-1}}, "byzantine_counts[0]"},
		{"negative delay", AttacksConfig{Delays: []time.Duration{-time.Second}}, "delays[0]"},
		{"bad diversity", AttacksConfig{Diversity: []string{"monoculture"}}, "diversity[0]"},
		{"bad behavior", AttacksConfig{Behavior: "teleport"}, "behavior"},
		{"negative duration", AttacksConfig{Duration: -time.Second}, "duration"},
		{"bad shards", AttacksConfig{Shards: -2}, "shards"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
	if err := (AttacksConfig{}).Validate(); err != nil {
		t.Fatalf("zero config must validate (defaults apply): %v", err)
	}
}
