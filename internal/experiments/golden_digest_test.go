package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"testing"
	"time"

	"gptpfta/internal/measure"
)

// The golden digests below were generated with the original
// container/heap-based scheduler (PR 1 tree) and pin the exact numeric
// output of the experiments. The zero-allocation event kernel must keep
// every run bit-identical: same seeds → same samples, same stats, same
// violation counts. If a scheduler or pooling change alters any digest,
// it changed simulation behaviour, not just performance.
const (
	goldenBoundsDigest = "2593c1ea4982bbb216b0d47227d8cb33811b5085d184d853a1885556bdff07b0"
	goldenFig3aDigest  = "e6b68963ecb8dab5c2cbcd9a9caafd0442b9d4d746b9313ee3d74c8425a6934d"
	goldenFig3bDigest  = "dab11f7e547e6f93b44c7f80a56b94efc48e253f2225095b020357e546764f68"
	goldenFig4Digest   = "f57d2efc2cfd7c615e1a65352f0027bcfe0cdccc58c62e922c2c0d5a5397ca4b"
)

// hashSamples folds the full-precision bit pattern of every sample into h;
// any change in the measured series, however small, changes the digest.
func hashSamples(h hash.Hash, samples []measure.Sample) {
	for _, s := range samples {
		fmt.Fprintf(h, "%d %016x %016x %d\n",
			s.Seq, math.Float64bits(s.AtSec), math.Float64bits(s.PiStarNS), s.Replies)
	}
}

func hashRows(h hash.Hash, rows [][]string) {
	for _, row := range rows {
		for _, cell := range row {
			fmt.Fprintf(h, "%s|", cell)
		}
		fmt.Fprintln(h)
	}
}

func digest(h hash.Hash) string { return hex.EncodeToString(h.Sum(nil)) }

func TestGoldenDigestBounds(t *testing.T) {
	res, err := Bounds(BoundsConfig{Seed: 1, Duration: 3 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	hashRows(h, res.Rows())
	if got := digest(h); got != goldenBoundsDigest {
		t.Fatalf("bounds digest changed: got %s want %s\nsummary: %s",
			got, goldenBoundsDigest, res.Summary())
	}
}

func TestGoldenDigestFig3(t *testing.T) {
	for _, tc := range []struct {
		name    string
		diverse bool
		want    string
	}{
		{"identical", false, goldenFig3aDigest},
		{"diverse", true, goldenFig3bDigest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := CyberResilience(CyberResilienceConfig{
				Seed: 1, Duration: 8 * time.Minute, DiverseKernels: tc.diverse,
			})
			if err != nil {
				t.Fatal(err)
			}
			h := sha256.New()
			hashSamples(h, res.Samples)
			hashRows(h, res.Rows())
			for _, e := range res.ExploitResults {
				fmt.Fprintf(h, "%s\n", e.String())
			}
			if got := digest(h); got != tc.want {
				t.Fatalf("fig3 %s digest changed: got %s want %s\nsummary: %s",
					tc.name, got, tc.want, res.Summary())
			}
		})
	}
}

func TestGoldenDigestFig4(t *testing.T) {
	res, err := FaultInjection(FaultInjectionConfig{
		Seed:                1,
		Duration:            20 * time.Minute,
		GMPeriod:            5 * time.Minute,
		RedundantMinPerHour: 6,
		RedundantMaxPerHour: 12,
		Downtime:            30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	hashSamples(h, res.Samples)
	fmt.Fprintf(h, "%016x %016x %016x %016x\n",
		math.Float64bits(res.Stats.MeanNS), math.Float64bits(res.Stats.StdNS),
		math.Float64bits(res.Stats.MinNS), math.Float64bits(res.Stats.MaxNS))
	fmt.Fprintf(h, "%d %d %d %d %d\n", res.Violations, res.TxTimestampTimeouts,
		res.DeadlineMisses, res.Takeovers, res.Injection.TotalFailures)
	if got := digest(h); got != goldenFig4Digest {
		t.Fatalf("fig4 digest changed: got %s want %s\nsummary: %s",
			got, goldenFig4Digest, res.Summary())
	}
}

// TestGoldenDigestRunToRun guards the weaker invariant directly: two
// fresh systems with the same seed must agree sample-for-sample within
// one binary, independent of the pinned constants above.
func TestGoldenDigestRunToRun(t *testing.T) {
	run := func() string {
		res, err := CyberResilience(CyberResilienceConfig{Seed: 7, Duration: 8 * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.New()
		hashSamples(h, res.Samples)
		return digest(h)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed runs diverged: %s vs %s", a, b)
	}
}
