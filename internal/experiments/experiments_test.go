package experiments

import (
	"strings"
	"testing"
	"time"

	"gptpfta/internal/measure"
)

// The experiment tests run scaled-down horizons; the full-length runs are
// exercised by the benchmark harness and command-line tools.

func TestCyberResilienceIdenticalKernels(t *testing.T) {
	res, err := CyberResilience(CyberResilienceConfig{Seed: 42, Duration: 12 * time.Minute})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.ExploitResults) != 2 {
		t.Fatalf("exploit attempts = %d, want 2", len(res.ExploitResults))
	}
	for _, r := range res.ExploitResults {
		if !r.Success {
			t.Fatalf("exploit on identical kernels must succeed: %s", r)
		}
	}
	// Before the second compromise the FTA masks the attack.
	if res.ViolationsBeforeSecond > res.SamplesBeforeSecond/20 {
		t.Fatalf("first attack not masked: %d/%d violations before second attack",
			res.ViolationsBeforeSecond, res.SamplesBeforeSecond)
	}
	// After the second compromise the bound collapses (Fig. 3a).
	if !res.BoundViolatedAfterSecondAttack() {
		t.Fatalf("two compromised GMs did not break the bound: %d/%d violations, max %.0fns, bound %v",
			res.ViolationsAfterSecond, res.SamplesAfterSecond, res.MaxAfterSecondNS, res.Bound)
	}
	if res.MaxAfterSecondNS < float64(res.Bound) {
		t.Fatalf("max after second attack %.0f below bound %v", res.MaxAfterSecondNS, res.Bound)
	}
	if !strings.Contains(res.Summary(), "violated") {
		t.Fatalf("summary: %s", res.Summary())
	}
}

func TestCyberResilienceDiverseKernels(t *testing.T) {
	res, err := CyberResilience(CyberResilienceConfig{Seed: 42, Duration: 12 * time.Minute, DiverseKernels: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var successes int
	for _, r := range res.ExploitResults {
		if r.Success {
			successes++
			if r.Target != "c41" {
				t.Fatalf("wrong target compromised: %s", r.Target)
			}
		}
	}
	if successes != 1 {
		t.Fatalf("successes = %d, want exactly 1 (only c41 vulnerable)", successes)
	}
	// Fig. 3b: the bound holds throughout.
	if res.BoundViolatedAfterSecondAttack() {
		t.Fatalf("diverse kernels still broke the bound: %d/%d violations after second attempt",
			res.ViolationsAfterSecond, res.SamplesAfterSecond)
	}
	if res.ViolationsBeforeSecond > res.SamplesBeforeSecond/20 {
		t.Fatalf("first attack not masked: %d/%d", res.ViolationsBeforeSecond, res.SamplesBeforeSecond)
	}
	if !strings.Contains(res.Summary(), "diverse") {
		t.Fatalf("summary: %s", res.Summary())
	}
}

func TestFaultInjectionShort(t *testing.T) {
	res, err := FaultInjection(FaultInjectionConfig{
		Seed:                7,
		Duration:            25 * time.Minute,
		GMPeriod:            5 * time.Minute,
		RedundantMinPerHour: 6,
		RedundantMaxPerHour: 12,
		Downtime:            30 * time.Second,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Injection.GMFailures < 3 {
		t.Fatalf("GM failures = %d", res.Injection.GMFailures)
	}
	if res.Takeovers == 0 {
		t.Fatal("no takeovers despite GM failures")
	}
	if res.TxTimestampTimeouts == 0 {
		t.Fatal("no tx-timestamp timeouts at the calibrated rate")
	}
	// Fig. 4a's shape: precision bounded despite the faults.
	if res.Violations > res.Stats.Count/50 {
		t.Fatalf("%d/%d samples beyond the bound: %s", res.Violations, res.Stats.Count, res.Stats)
	}
	if res.Stats.MeanNS > 2000 {
		t.Fatalf("mean precision %.0f ns, want sub-µs-ish", res.Stats.MeanNS)
	}
	if len(res.Windows) < 10 {
		t.Fatalf("windows = %d", len(res.Windows))
	}

	// Fig. 5: the event window around the spike contains fault markers.
	w := res.Fig5Window(10 * time.Minute)
	if len(w.Samples) == 0 {
		t.Fatal("empty Fig. 5 window")
	}
	if w.SpikeNS != res.Stats.MaxNS {
		t.Fatal("spike mismatch")
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestBounds(t *testing.T) {
	res, err := Bounds(BoundsConfig{Seed: 3, Duration: 4 * time.Minute})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.DMin <= 0 || res.DMax <= res.DMin {
		t.Fatalf("latency extrema: %v / %v", res.DMin, res.DMax)
	}
	if res.ReadingError != res.DMax-res.DMin {
		t.Fatal("E != d_max - d_min")
	}
	if res.U != 2 {
		t.Fatalf("u(4,1) = %v, want 2", res.U)
	}
	if res.Bound != 2*(res.ReadingError+res.DriftOffset) {
		t.Fatal("Π != 2(E+Γ)")
	}
	if res.Gamma <= 0 || res.Gamma >= res.ReadingError {
		t.Fatalf("γ = %v vs E = %v", res.Gamma, res.ReadingError)
	}
	if len(res.Table()) != 8 {
		t.Fatalf("table rows = %d", len(res.Table()))
	}
}

func TestBaselineNoStartupSync(t *testing.T) {
	res, err := BaselineNoStartupSync(BaselineConfig{Seed: 11, Duration: 10 * time.Minute})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Ours: bounded. Baseline: grandmaster nodes free-run, so the measured
	// precision is orders of magnitude worse.
	if res.OursViolations > res.OursSamples/20 {
		t.Fatalf("our architecture violated its own bound: %d/%d", res.OursViolations, res.OursSamples)
	}
	if res.VariantStats.MeanNS < 10*res.OursStats.MeanNS {
		t.Fatalf("baseline unexpectedly competitive: ours %.0f ns vs baseline %.0f ns",
			res.OursStats.MeanNS, res.VariantStats.MeanNS)
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestAblationSingleDomainVsFTA(t *testing.T) {
	res, err := AblationSingleDomainVsFTA(BaselineConfig{Seed: 12, Duration: 10 * time.Minute})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// The Byzantine GM pulls the single-domain system ~24 µs off; the FTA
	// masks it.
	if res.OursViolations > res.OursSamples/20 {
		t.Fatalf("FTA failed to mask one Byzantine GM: %d/%d", res.OursViolations, res.OursSamples)
	}
	if res.VariantViolations < res.VariantSamples/4 {
		t.Fatalf("single-domain run unexpectedly survived the Byzantine GM: %d/%d violations",
			res.VariantViolations, res.VariantSamples)
	}
}

func TestAblationFlagPolicy(t *testing.T) {
	res, err := AblationFlagPolicy(BaselineConfig{Seed: 13, Duration: 8 * time.Minute})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Both policies must mask a single Byzantine GM.
	if res.OursViolations > res.OursSamples/20 {
		t.Fatalf("monitor policy violated: %d/%d", res.OursViolations, res.OursSamples)
	}
	if res.VariantViolations > res.VariantSamples/20 {
		t.Fatalf("exclude policy violated: %d/%d", res.VariantViolations, res.VariantSamples)
	}
}

func TestRenderSeries(t *testing.T) {
	windows := []measure.Window{
		{StartSec: 0, MinNS: 100, AvgNS: 300, MaxNS: 900, Count: 120},
		{StartSec: 120, MinNS: 50, AvgNS: 400, MaxNS: 9000, Count: 120},
	}
	out := RenderSeries(windows, 11420*time.Nanosecond, 856*time.Nanosecond, 12)
	if !strings.Contains(out, "*") || !strings.Contains(out, "legend") {
		t.Fatalf("render output:\n%s", out)
	}
	if RenderSeries(nil, 0, 0, 10) != "(no data)\n" {
		t.Fatal("empty render wrong")
	}
}

func TestRenderHistogram(t *testing.T) {
	h := measure.ComputeHistogram([]measure.Sample{
		{PiStarNS: 50}, {PiStarNS: 150}, {PiStarNS: 151}, {PiStarNS: 5000},
	}, 100, 1000)
	out := RenderHistogram(h, 20)
	if !strings.Contains(out, "#") || !strings.Contains(out, "beyond range") {
		t.Fatalf("histogram output:\n%s", out)
	}
}

func TestBMCAReconvergence(t *testing.T) {
	res, err := BMCAReconvergence(BMCAReconvergenceConfig{Seed: 5})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.InitialElection <= 0 {
		t.Fatal("no initial election time")
	}
	// The gap must be at least the receipt timeout (3 announce intervals)
	// — the window the paper's static-configuration + FTA design avoids.
	if res.ReelectionGap < 3*time.Second {
		t.Fatalf("re-election gap %v below the receipt timeout", res.ReelectionGap)
	}
	if res.ReelectionGap > 30*time.Second {
		t.Fatalf("re-election gap %v implausibly long", res.ReelectionGap)
	}
	if res.Successor != "sys0" {
		t.Fatalf("successor %s, want sys0", res.Successor)
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestBMCAReconvergenceFasterAnnounce(t *testing.T) {
	slow, err := BMCAReconvergence(BMCAReconvergenceConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := BMCAReconvergence(BMCAReconvergenceConfig{Seed: 5, AnnounceInterval: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if fast.ReelectionGap >= slow.ReelectionGap {
		t.Fatalf("faster announces should shrink the gap: %v vs %v", fast.ReelectionGap, slow.ReelectionGap)
	}
}
