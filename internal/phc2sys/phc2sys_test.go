package phc2sys

import (
	"math"
	"testing"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/shmem"
	"gptpfta/internal/sim"
)

type fixture struct {
	sched   *sim.Scheduler
	streams *sim.Streams
	phc     *clock.PHC
	tsc     *clock.TSC
	st      *shmem.STSHMEM
	svc     *Service
}

func newFixture(t *testing.T, phcPPB, tscPPB float64) *fixture {
	t.Helper()
	fx := &fixture{sched: sim.NewScheduler(), streams: sim.NewStreams(21)}
	phcOsc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: phcPPB, WanderPPBPerSqrtSec: 1},
		fx.streams.Stream("phcosc"), fx.sched.Now())
	fx.phc = clock.NewPHC(fx.sched, phcOsc, fx.streams.Stream("phcts"),
		clock.PHCConfig{TimestampJitterNS: 8, InitialOffsetNS: 1e6})
	tscOsc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: tscPPB, WanderPPBPerSqrtSec: 1},
		fx.streams.Stream("tscosc"), fx.sched.Now())
	fx.tsc = clock.NewTSC(fx.sched, tscOsc, fx.streams.Stream("tscrd"), 30)
	fx.st = shmem.NewSTSHMEM(2)
	fx.svc = New(fx.sched, fx.phc, fx.tsc, fx.st, nil, Config{Slot: 0})
	return fx
}

func (fx *fixture) run(t *testing.T, d time.Duration) {
	t.Helper()
	if err := fx.sched.RunUntil(fx.sched.Now().Add(d)); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// syncTimeError reports CLOCK_SYNCTIME − PHC at the current instant.
func (fx *fixture) syncTimeError(t *testing.T) float64 {
	t.Helper()
	v, ok := fx.st.SyncTimeAt(fx.tsc.Now())
	if !ok {
		t.Fatal("no CLOCK_SYNCTIME published")
	}
	return v - fx.phc.Now()
}

func TestTracksPHCWithinNanoseconds(t *testing.T) {
	fx := newFixture(t, 4000, -6000) // 10 ppm TSC-vs-PHC rate difference
	if err := fx.svc.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	fx.run(t, 30*time.Second)
	var worst float64
	for i := 0; i < 100; i++ {
		fx.run(t, 100*time.Millisecond)
		if e := math.Abs(fx.syncTimeError(t)); e > worst {
			worst = e
		}
	}
	if worst > 600 {
		t.Fatalf("CLOCK_SYNCTIME worst error %.0f ns, want a few hundred ns", worst)
	}
	if fx.svc.Updates() < 100 {
		t.Fatalf("only %d updates", fx.svc.Updates())
	}
}

func TestFeedbackWobbleIsNonZero(t *testing.T) {
	// The paper attributes measured-precision instability to exactly this
	// feedback loop: the error must fluctuate, not be identically zero.
	fx := newFixture(t, 2000, -2000)
	if err := fx.svc.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	fx.run(t, 20*time.Second)
	var vals []float64
	for i := 0; i < 50; i++ {
		fx.run(t, 100*time.Millisecond)
		vals = append(vals, fx.syncTimeError(t))
	}
	allEqual := true
	for _, v := range vals[1:] {
		if v != vals[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		t.Fatal("CLOCK_SYNCTIME error is constant; the feedback model is inert")
	}
}

func TestTracksPHCStep(t *testing.T) {
	// When the FTA servo steps the PHC (start-up jump), phc2sys must
	// re-anchor quickly via its step path.
	fx := newFixture(t, 0, 0)
	if err := fx.svc.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	fx.run(t, 10*time.Second)
	fx.phc.Step(500000) // 500 µs jump
	fx.run(t, 2*time.Second)
	if e := math.Abs(fx.syncTimeError(t)); e > 1000 {
		t.Fatalf("error %.0f ns two seconds after a PHC step, want re-anchored", e)
	}
}

func TestStopGoesStale(t *testing.T) {
	fx := newFixture(t, 0, 0)
	if err := fx.svc.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	fx.run(t, 5*time.Second)
	fx.svc.Stop()
	if fx.svc.Running() {
		t.Fatal("Running after Stop")
	}
	before := fx.st.Slot(0).Seq
	fx.run(t, 5*time.Second)
	if fx.st.Slot(0).Seq != before {
		t.Fatal("parameters still updating after Stop")
	}
	// The stale parameters still evaluate (the monitor decides staleness).
	if _, ok := fx.st.SyncTimeAt(fx.tsc.Now()); !ok {
		t.Fatal("stale slot must remain readable")
	}
}

func TestOnTakeoverPublishesImmediately(t *testing.T) {
	fx := newFixture(t, 0, 0)
	if err := fx.svc.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	fx.run(t, 5*time.Second)
	before := fx.st.Slot(0).Seq
	fx.svc.OnTakeover()
	if fx.st.Slot(0).Seq != before+1 {
		t.Fatal("takeover interrupt did not trigger an immediate publish")
	}
}

func TestResetAndRestart(t *testing.T) {
	fx := newFixture(t, 3000, -3000)
	if err := fx.svc.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	fx.run(t, 10*time.Second)
	fx.svc.Stop()
	fx.run(t, 30*time.Second) // drift accumulates while down
	fx.svc.Reset()
	if err := fx.svc.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	fx.run(t, 5*time.Second)
	if e := math.Abs(fx.syncTimeError(t)); e > 1000 {
		t.Fatalf("error %.0f ns after reset+restart, want re-anchored", e)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	fx := newFixture(t, 0, 0)
	if err := fx.svc.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := fx.svc.Start(); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestPreemptionModelProducesSpikes(t *testing.T) {
	// With the vCPU preemption model enabled, occasional long preemptions
	// corrupt a sample pair beyond the step threshold and CLOCK_SYNCTIME
	// spikes by µs for one interval — the calibrated source of the paper's
	// Fig. 4a spikes.
	fx := &fixture{sched: sim.NewScheduler(), streams: sim.NewStreams(77)}
	phcOsc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: 1000, WanderPPBPerSqrtSec: 1},
		fx.streams.Stream("phcosc"), fx.sched.Now())
	fx.phc = clock.NewPHC(fx.sched, phcOsc, fx.streams.Stream("phcts"),
		clock.PHCConfig{TimestampJitterNS: 8})
	tscOsc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: -1000, WanderPPBPerSqrtSec: 1},
		fx.streams.Stream("tscosc"), fx.sched.Now())
	fx.tsc = clock.NewTSC(fx.sched, tscOsc, fx.streams.Stream("tscrd"), 30)
	fx.st = shmem.NewSTSHMEM(1)
	fx.svc = New(fx.sched, fx.phc, fx.tsc, fx.st, fx.streams.Stream("pre"), Config{
		Slot:            0,
		LongPreemptProb: 0.01, // amplified for the test
		LongPreemptMin:  3 * time.Microsecond,
		LongPreemptMax:  9 * time.Microsecond,
	})
	if err := fx.svc.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	fx.run(t, 10*time.Second)
	var worst float64
	for i := 0; i < 3000; i++ {
		fx.run(t, 10*time.Millisecond)
		if e := math.Abs(fx.syncTimeError(t)); e > worst {
			worst = e
		}
	}
	if worst < 2500 {
		t.Fatalf("worst error %.0f ns; long preemptions should spike CLOCK_SYNCTIME by µs", worst)
	}
	if worst > 10000 {
		t.Fatalf("worst error %.0f ns exceeds the preemption magnitude", worst)
	}
}
