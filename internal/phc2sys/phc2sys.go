// Package phc2sys models LinuxPTP's phc2sys as used by the paper: instead
// of disciplining the kernel system clock, the clock-synchronization VM's
// phc2sys derives clock parameters mapping the node's platform counter
// (TSC) onto the NIC PHC's fault-tolerant global time, and publishes them
// into the VM's STSHMEM slot. Co-located VMs evaluate those parameters to
// read CLOCK_SYNCTIME.
//
// The parameters are maintained with a PI feedback loop on noisy TSC/PHC
// sample pairs — the source of the measured-precision instability the
// paper's §III-C discusses (feedback control of software clocks).
package phc2sys

import (
	"errors"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/servo"
	"gptpfta/internal/shmem"
	"gptpfta/internal/sim"
)

// Config parameterises the service.
type Config struct {
	// Interval between TSC/PHC sample pairs. Default 31.25 ms.
	Interval time.Duration
	// Slot is the VM's STSHMEM parameter slot.
	Slot int
	// StepThreshold re-anchors the parameters when the prediction error
	// exceeds it (LinuxPTP's --step_threshold); needed so CLOCK_SYNCTIME
	// follows PHC steps from the FTA servo instead of slewing for minutes.
	// Default 10 µs.
	StepThreshold time.Duration

	// vCPU preemption between the TSC and PHC reads makes a sample pair
	// non-atomic, corrupting the measured offset by the preemption time —
	// the mechanism behind the measured-precision spikes the paper
	// discusses (feedback control of software clocks under
	// virtualization). Zero probabilities disable the model.
	PreemptProb     float64       // per-sample probability of a short preemption
	PreemptMin      time.Duration // short preemption range
	PreemptMax      time.Duration
	LongPreemptProb float64 // rare long preemption (descheduled vCPU)
	LongPreemptMin  time.Duration
	LongPreemptMax  time.Duration
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 31250 * time.Microsecond
	}
	if c.StepThreshold <= 0 {
		c.StepThreshold = 2 * time.Microsecond
	}
	return c
}

// Service is one VM's phc2sys instance.
type Service struct {
	cfg   Config
	sched *sim.Scheduler
	phc   *clock.PHC
	tsc   *clock.TSC
	st    *shmem.STSHMEM
	pi    *servo.PI
	rng   sim.RNG

	params      shmem.ClockParams
	initialized bool
	ticker      *sim.Ticker

	updates uint64
}

// New creates a phc2sys service for the VM owning phc and slot cfg.Slot.
// rng feeds the preemption model; nil disables it.
func New(sched *sim.Scheduler, phc *clock.PHC, tsc *clock.TSC, st *shmem.STSHMEM, rng sim.RNG, cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:   cfg,
		sched: sched,
		phc:   phc,
		tsc:   tsc,
		st:    st,
		rng:   rng,
		pi: servo.NewPI(servo.Config{
			SyncInterval:  cfg.Interval,
			StepThreshold: cfg.StepThreshold,
			// TSC and PHC rates differ by tens of ppm at most; a tight
			// clamp bounds the damage of any transient mis-estimate.
			MaxFreqPPB: 100000,
		}),
	}
}

// Start begins periodic parameter maintenance.
func (s *Service) Start() error {
	if s.ticker != nil {
		return errors.New("phc2sys: already started")
	}
	t, err := s.sched.Every(s.sched.Now(), s.cfg.Interval, s.step)
	if err != nil {
		return err
	}
	s.ticker = t
	return nil
}

// Stop halts maintenance (fail-silent VM). The last published parameters
// remain in STSHMEM and go stale — exactly what the hypervisor monitor
// watches for.
func (s *Service) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

// Running reports whether the service is live.
func (s *Service) Running() bool { return s.ticker != nil }

// Reset clears discipline state; used on VM reboot.
func (s *Service) Reset() {
	s.initialized = false
	s.pi.Reset()
}

// Updates reports the number of published parameter updates.
func (s *Service) Updates() uint64 { return s.updates }

// OnTakeover is the interrupt the STSHMEM virtual PCI device injects when
// the hypervisor monitor promotes this VM to maintain CLOCK_SYNCTIME: the
// service publishes immediately so the dependent clock has fresh
// parameters without waiting for the next period.
func (s *Service) OnTakeover() {
	s.step()
}

// step takes one noisy (TSC, PHC) sample pair and updates the parameters.
func (s *Service) step() {
	tscS := s.tsc.Sample()
	phcS := s.phc.Timestamp()
	// Preemption between the two reads skews the pair: the PHC read
	// happens later than the TSC read by the preemption time, so the
	// measured offset is off by exactly that amount.
	if s.rng != nil {
		if s.cfg.PreemptProb > 0 && s.rng.Float64() < s.cfg.PreemptProb {
			phcS += float64(s.cfg.PreemptMin) +
				s.rng.Float64()*float64(s.cfg.PreemptMax-s.cfg.PreemptMin)
		}
		if s.cfg.LongPreemptProb > 0 && s.rng.Float64() < s.cfg.LongPreemptProb {
			phcS += float64(s.cfg.LongPreemptMin) +
				s.rng.Float64()*float64(s.cfg.LongPreemptMax-s.cfg.LongPreemptMin)
		}
	}

	if !s.initialized {
		s.params = shmem.ClockParams{TSCRef: tscS, SyncRef: phcS, Ratio: 1}
		s.initialized = true
		s.publish(tscS)
		return
	}

	pred := s.params.SyncTimeAt(tscS)
	offset := pred - phcS
	adj, state := s.pi.Sample(offset, phcS)
	switch state {
	case servo.StateJump:
		// Large disagreement (reboot, PHC step by the FTA servo):
		// re-anchor the parameters directly.
		s.params = shmem.ClockParams{TSCRef: tscS, SyncRef: phcS, Ratio: s.params.Ratio}
	case servo.StateLocked:
		// Rebase at the predicted point (value-continuous) and steer the
		// ratio; the PI drives the prediction error to zero.
		s.params = shmem.ClockParams{
			TSCRef:  tscS,
			SyncRef: pred,
			Ratio:   1 + adj*1e-9,
		}
	default:
		// Unlocked: keep last parameters.
	}
	s.publish(tscS)
}

func (s *Service) publish(tscNow float64) {
	p := s.params
	p.UpdatedTSC = tscNow
	s.st.Publish(s.cfg.Slot, p)
	s.updates++
}

// serviceSnapshot captures the service's mutable state for warm-start
// forks, including its internal TSC-discipline servo. The STSHMEM region is
// snapshotted by its owning node.
type serviceSnapshot struct {
	params      shmem.ClockParams
	initialized bool
	ticker      *sim.Ticker
	updates     uint64
	pi          any
}

// Snapshot implements sim.Snapshotter.
func (s *Service) Snapshot() any {
	return &serviceSnapshot{
		params:      s.params,
		initialized: s.initialized,
		ticker:      s.ticker,
		updates:     s.updates,
		pi:          s.pi.Snapshot(),
	}
}

// Restore implements sim.Snapshotter.
func (s *Service) Restore(snap any) {
	sn := snap.(*serviceSnapshot)
	s.params = sn.params
	s.initialized = sn.initialized
	s.ticker = sn.ticker
	s.updates = sn.updates
	s.pi.Restore(sn.pi)
}
