// Package attack models the paper's cyber-resilience experiment (§III-B):
// an attacker holding restricted user credentials on a subset of virtual
// grandmasters attempts a local privilege-escalation exploit
// (CVE-2018-18955 against Linux v4.19.1 in the paper). The exploit succeeds
// exactly when the target VM's kernel version is vulnerable — which is the
// OS-diversity dimension the experiment varies — and, on success, the
// attacker replaces the benign ptp4l instances with malicious ones that
// distribute preciseOriginTimestamps shifted by −24 µs.
package attack

import (
	"fmt"
	"sort"
)

// Default identifiers used throughout the experiments.
const (
	// CVE201818955 is the paper's exploit: a map_write() bug in Linux
	// user-namespace handling enabling local privilege escalation.
	CVE201818955 = "CVE-2018-18955"
	// CVE20181895 is the old name of CVE201818955, kept for
	// compatibility; it dropped the final digit of the CVE number.
	//
	// Deprecated: use CVE201818955.
	CVE20181895 = CVE201818955
	// VulnerableKernel is the kernel version the paper installs on the
	// attackable grandmasters.
	VulnerableKernel = "v4.19.1"
	// MaliciousOriginOffsetNS is the falsification the paper's malicious
	// ptp4l applies (−24 µs).
	MaliciousOriginOffsetNS = -24000
)

// VulnDB maps CVE identifiers to the set of kernel versions they affect.
type VulnDB map[string]map[string]bool

// DefaultVulnDB returns a database covering the paper's scenario: the
// user-namespace escalation affects v4.19.1 (and the surrounding 4.15–4.19
// series before the fix), while the diversified kernels are patched.
func DefaultVulnDB() VulnDB {
	return VulnDB{
		CVE201818955: {
			"v4.15.0": true,
			"v4.18.0": true,
			"v4.19.0": true,
			"v4.19.1": true,
		},
	}
}

// Vulnerable reports whether a kernel version is affected by a CVE.
func (db VulnDB) Vulnerable(cve, kernel string) bool {
	return db[cve][kernel]
}

// AddVulnerability records an affected kernel version.
func (db VulnDB) AddVulnerability(cve, kernel string) {
	if db[cve] == nil {
		db[cve] = make(map[string]bool)
	}
	db[cve][kernel] = true
}

// SharedVulnerabilities counts the CVEs affecting both kernels — the metric
// from the OS-diversity study (Garcia et al.) that motivates diversifying
// grandmaster software stacks.
func (db VulnDB) SharedVulnerabilities(kernelA, kernelB string) int {
	n := 0
	for _, affected := range db {
		if affected[kernelA] && affected[kernelB] {
			n++
		}
	}
	return n
}

// Target is the attacker's view of one virtual grandmaster: something with
// a kernel version that can be compromised.
type Target interface {
	// TargetName identifies the VM (e.g. "c11").
	TargetName() string
	// KernelVersion reports the guest kernel.
	KernelVersion() string
	// InstallMaliciousPTP4L replaces the benign ptp4l instances; the
	// malicious ones shift every distributed preciseOriginTimestamp by
	// offsetNS.
	InstallMaliciousPTP4L(offsetNS float64)
}

// Result records one exploit attempt.
type Result struct {
	Target  string
	Kernel  string
	CVE     string
	Success bool
}

// String formats the result for the event log.
func (r Result) String() string {
	verdict := "failed (kernel not vulnerable)"
	if r.Success {
		verdict = "root obtained, malicious ptp4l installed"
	}
	return fmt.Sprintf("exploit %s on %s (%s): %s", r.CVE, r.Target, r.Kernel, verdict)
}

// Attacker holds restricted user credentials on a set of VMs and a single
// local-privilege-escalation exploit.
type Attacker struct {
	db          VulnDB
	cve         string
	credentials map[string]bool
	results     []Result
}

// NewAttacker creates an attacker with credentials on the named VMs.
func NewAttacker(db VulnDB, cve string, credentials ...string) *Attacker {
	creds := make(map[string]bool, len(credentials))
	for _, c := range credentials {
		creds[c] = true
	}
	return &Attacker{db: db, cve: cve, credentials: creds}
}

// HasCredentials reports whether the attacker can log into the VM at all.
func (a *Attacker) HasCredentials(vm string) bool { return a.credentials[vm] }

// Exploit attempts privilege escalation on the target and, on success,
// installs the malicious ptp4l with the given origin-timestamp shift.
func (a *Attacker) Exploit(t Target, offsetNS float64) Result {
	r := Result{Target: t.TargetName(), Kernel: t.KernelVersion(), CVE: a.cve}
	if a.credentials[t.TargetName()] && a.db.Vulnerable(a.cve, t.KernelVersion()) {
		r.Success = true
		t.InstallMaliciousPTP4L(offsetNS)
	}
	a.results = append(a.results, r)
	return r
}

// Results returns all attempts in order.
func (a *Attacker) Results() []Result {
	return append([]Result(nil), a.results...)
}

// Compromised lists the names of successfully compromised targets, sorted.
func (a *Attacker) Compromised() []string {
	var out []string
	for _, r := range a.results {
		if r.Success {
			out = append(out, r.Target)
		}
	}
	sort.Strings(out)
	return out
}
