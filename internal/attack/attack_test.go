package attack

import (
	"strings"
	"testing"
)

type fakeTarget struct {
	name      string
	kernel    string
	installed float64
	calls     int
}

func (t *fakeTarget) TargetName() string    { return t.name }
func (t *fakeTarget) KernelVersion() string { return t.kernel }
func (t *fakeTarget) InstallMaliciousPTP4L(offsetNS float64) {
	t.installed = offsetNS
	t.calls++
}

func TestDefaultVulnDB(t *testing.T) {
	db := DefaultVulnDB()
	if !db.Vulnerable(CVE201818955, VulnerableKernel) {
		t.Fatal("v4.19.1 must be vulnerable to the paper's CVE")
	}
	if db.Vulnerable(CVE201818955, "v5.10.0") {
		t.Fatal("patched kernel reported vulnerable")
	}
	if db.Vulnerable("CVE-0000-0000", VulnerableKernel) {
		t.Fatal("unknown CVE reported vulnerable")
	}
}

func TestAddVulnerability(t *testing.T) {
	db := VulnDB{}
	db.AddVulnerability("CVE-X", "v1")
	if !db.Vulnerable("CVE-X", "v1") {
		t.Fatal("added vulnerability not found")
	}
}

func TestSharedVulnerabilities(t *testing.T) {
	db := VulnDB{}
	db.AddVulnerability("CVE-A", "v1")
	db.AddVulnerability("CVE-A", "v2")
	db.AddVulnerability("CVE-B", "v1")
	if got := db.SharedVulnerabilities("v1", "v2"); got != 1 {
		t.Fatalf("shared = %d, want 1", got)
	}
	if got := db.SharedVulnerabilities("v1", "v3"); got != 0 {
		t.Fatalf("shared with unknown = %d, want 0", got)
	}
}

func TestExploitSucceedsOnVulnerableKernel(t *testing.T) {
	a := NewAttacker(DefaultVulnDB(), CVE201818955, "c11", "c41")
	tgt := &fakeTarget{name: "c41", kernel: VulnerableKernel}
	r := a.Exploit(tgt, MaliciousOriginOffsetNS)
	if !r.Success {
		t.Fatal("exploit failed on a vulnerable kernel with credentials")
	}
	if tgt.installed != MaliciousOriginOffsetNS || tgt.calls != 1 {
		t.Fatalf("malicious ptp4l not installed: %+v", tgt)
	}
	if !strings.Contains(r.String(), "root obtained") {
		t.Fatalf("result string: %s", r)
	}
}

func TestExploitFailsOnDiversifiedKernel(t *testing.T) {
	// The Fig. 3b scenario: same attacker, but the target runs a kernel
	// the exploit does not affect.
	a := NewAttacker(DefaultVulnDB(), CVE201818955, "c11")
	tgt := &fakeTarget{name: "c11", kernel: "v5.4.0"}
	r := a.Exploit(tgt, MaliciousOriginOffsetNS)
	if r.Success {
		t.Fatal("exploit succeeded on a patched kernel")
	}
	if tgt.calls != 0 {
		t.Fatal("malicious ptp4l installed despite failed exploit")
	}
	if !strings.Contains(r.String(), "failed") {
		t.Fatalf("result string: %s", r)
	}
}

func TestExploitFailsWithoutCredentials(t *testing.T) {
	a := NewAttacker(DefaultVulnDB(), CVE201818955, "c11")
	tgt := &fakeTarget{name: "c21", kernel: VulnerableKernel}
	if r := a.Exploit(tgt, -24000); r.Success {
		t.Fatal("exploit succeeded without credentials")
	}
	if a.HasCredentials("c21") {
		t.Fatal("HasCredentials wrong")
	}
	if !a.HasCredentials("c11") {
		t.Fatal("HasCredentials wrong for held credential")
	}
}

func TestResultsAndCompromised(t *testing.T) {
	a := NewAttacker(DefaultVulnDB(), CVE201818955, "c11", "c41")
	a.Exploit(&fakeTarget{name: "c41", kernel: VulnerableKernel}, -24000)
	a.Exploit(&fakeTarget{name: "c11", kernel: "v5.4.0"}, -24000)
	if got := len(a.Results()); got != 2 {
		t.Fatalf("results = %d, want 2", got)
	}
	comp := a.Compromised()
	if len(comp) != 1 || comp[0] != "c41" {
		t.Fatalf("compromised = %v, want [c41]", comp)
	}
}
