package attack

import (
	"reflect"
	"testing"

	"gptpfta/internal/gptp"
	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

func TestCVEAliasMatchesRenamedConstant(t *testing.T) {
	// The deprecated alias must keep compiling and naming the same CVE.
	if CVE20181895 != CVE201818955 || CVE201818955 != "CVE-2018-18955" {
		t.Fatalf("CVE constants diverged: %q vs %q", CVE20181895, CVE201818955)
	}
}

func TestSharedVulnerabilitiesTable(t *testing.T) {
	shared := VulnDB{}
	shared.AddVulnerability("CVE-A", "v1")
	shared.AddVulnerability("CVE-A", "v2")
	shared.AddVulnerability("CVE-B", "v1")
	shared.AddVulnerability("CVE-B", "v2")
	shared.AddVulnerability("CVE-C", "v2")
	for _, tc := range []struct {
		name           string
		db             VulnDB
		kernelA, kernB string
		want           int
	}{
		{"empty db", VulnDB{}, "v1", "v2", 0},
		{"nil db", nil, "v1", "v2", 0},
		{"same kernel counts own CVEs", shared, "v1", "v1", 2},
		{"two shared", shared, "v1", "v2", 2},
		{"one side unknown", shared, "v1", "v9", 0},
		{"both unknown", shared, "v8", "v9", 0},
		{"default db identical kernels", DefaultVulnDB(), VulnerableKernel, VulnerableKernel, 1},
		{"default db diverse pair", DefaultVulnDB(), VulnerableKernel, "v5.10.46", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.db.SharedVulnerabilities(tc.kernelA, tc.kernB); got != tc.want {
				t.Fatalf("SharedVulnerabilities(%q, %q) = %d, want %d",
					tc.kernelA, tc.kernB, got, tc.want)
			}
		})
	}
}

func TestExploitAgainstEmptyDB(t *testing.T) {
	// An attacker with credentials and a vulnerable target still fails when
	// the vulnerability database is empty: no exploit, no compromise.
	a := NewAttacker(VulnDB{}, CVE201818955, "c41")
	if r := a.Exploit(&fakeTarget{name: "c41", kernel: VulnerableKernel}, -24000); r.Success {
		t.Fatal("exploit succeeded against an empty vulnerability database")
	}
}

func TestCampaignAllVulnerable(t *testing.T) {
	// The all-vulnerable edge: every grandmaster runs the exploitable
	// kernel, so a campaign across the full target order compromises all.
	targets := CampaignTargets(DefaultTargetOrder(), len(DefaultTargetOrder()))
	a := NewAttacker(DefaultVulnDB(), CVE201818955, targets...)
	for _, name := range targets {
		a.Exploit(&fakeTarget{name: name, kernel: VulnerableKernel}, -24000)
	}
	if got := len(a.Compromised()); got != len(targets) {
		t.Fatalf("compromised %d of %d all-vulnerable targets", got, len(targets))
	}
}

func TestCampaignTargetsClamp(t *testing.T) {
	order := DefaultTargetOrder()
	for _, tc := range []struct {
		name string
		n    int
		want []string
	}{
		{"zero", 0, nil},
		{"negative", -3, nil},
		{"one", 1, []string{"c41"}},
		{"two are the paper targets", 2, []string{"c41", "c11"}},
		{"exact", 4, []string{"c41", "c11", "c21", "c31"}},
		{"more adversaries than grandmasters", 9, []string{"c41", "c11", "c21", "c31"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := CampaignTargets(order, tc.n); !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("CampaignTargets(%d) = %v, want %v", tc.n, got, tc.want)
			}
		})
	}
	// The helper must copy, never alias, the canonical order.
	got := CampaignTargets(order, 4)
	got[0] = "mutated"
	if order[0] != "c41" {
		t.Fatal("CampaignTargets aliases its input slice")
	}
}

func TestParseBehaviorKind(t *testing.T) {
	for in, want := range map[string]BehaviorKind{
		"": BehaviorConstant, "constant": BehaviorConstant,
		"ramp": BehaviorRamp, "wander": BehaviorWander,
	} {
		got, err := ParseBehaviorKind(in)
		if err != nil || got != want {
			t.Fatalf("ParseBehaviorKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseBehaviorKind("teleport"); err == nil {
		t.Fatal("unknown behavior accepted")
	}
}

func TestAdversaryBehaviors(t *testing.T) {
	con := NewAdversary(Behavior{Kind: BehaviorConstant, OffsetNS: -24000}, nil)
	if got := con.Offset(100); got != -24000 {
		t.Fatalf("constant offset = %v", got)
	}
	ramp := NewAdversary(Behavior{Kind: BehaviorRamp, OffsetNS: -1000, SlewNSPerSec: -500}, nil)
	if got := ramp.Offset(10); got != -6000 {
		t.Fatalf("ramp offset = %v, want -6000", got)
	}

	// Wander draws from its stream: two adversaries on identical streams
	// walk identically; a nil stream degrades to the base offset.
	a := NewAdversary(Behavior{Kind: BehaviorWander, OffsetNS: -24000, WanderNSPerStep: 100},
		sim.NewStreams(7).Stream("attack/c41"))
	b := NewAdversary(Behavior{Kind: BehaviorWander, OffsetNS: -24000, WanderNSPerStep: 100},
		sim.NewStreams(7).Stream("attack/c41"))
	moved := false
	for i := 0; i < 8; i++ {
		va, vb := a.Offset(float64(i)), b.Offset(float64(i))
		if va != vb {
			t.Fatalf("same-stream wander diverged at step %d: %v vs %v", i, va, vb)
		}
		if va != -24000 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("wander never moved off the base offset")
	}
	silent := NewAdversary(Behavior{Kind: BehaviorWander, OffsetNS: -24000, WanderNSPerStep: 100}, nil)
	if got := silent.Offset(1); got != -24000 {
		t.Fatalf("nil-stream wander = %v, want base offset", got)
	}
}

func TestBehaviorStatic(t *testing.T) {
	for _, tc := range []struct {
		b    Behavior
		want bool
	}{
		{Behavior{Kind: BehaviorConstant, OffsetNS: -24000}, true},
		{Behavior{Kind: BehaviorRamp}, true},
		{Behavior{Kind: BehaviorRamp, SlewNSPerSec: 1}, false},
		{Behavior{Kind: BehaviorWander}, true},
		{Behavior{Kind: BehaviorWander, WanderNSPerStep: 1}, false},
	} {
		if got := tc.b.Static(); got != tc.want {
			t.Fatalf("Static(%+v) = %v, want %v", tc.b, got, tc.want)
		}
	}
}

func TestSyncDelayAttackSelectivity(t *testing.T) {
	atk := SyncDelayAttack{DelayNS: 24000, Dir: 0, Domain: -1}
	sync := &netsim.Frame{Priority: netsim.PriorityPTP, Payload: &gptp.Sync{Domain: 2}}
	if got := atk.ExtraDelayNS(sync, 0); got != 24000 {
		t.Fatalf("Sync dir 0 delay = %v, want 24000", got)
	}
	if got := atk.ExtraDelayNS(sync, 1); got != 0 {
		t.Fatalf("wrong-direction frame delayed by %v", got)
	}
	fu := &netsim.Frame{Priority: netsim.PriorityPTP, Payload: &gptp.FollowUp{Domain: 2}}
	if got := atk.ExtraDelayNS(fu, 0); got != 0 {
		t.Fatalf("FollowUp delayed by %v — pdelay/non-Sync frames must pass unharmed", got)
	}
	meas := &netsim.Frame{Priority: netsim.PriorityMeasure, Payload: &gptp.Sync{Domain: 2}}
	if got := atk.ExtraDelayNS(meas, 0); got != 0 {
		t.Fatalf("non-PTP-priority frame delayed by %v", got)
	}

	scoped := SyncDelayAttack{DelayNS: 24000, Dir: 0, Domain: 3}
	if got := scoped.ExtraDelayNS(sync, 0); got != 0 {
		t.Fatalf("foreign-domain Sync delayed by %v", got)
	}
	if got := scoped.ExtraDelayNS(&netsim.Frame{Priority: netsim.PriorityPTP,
		Payload: &gptp.Sync{Domain: 3}}, 0); got != 24000 {
		t.Fatalf("scoped-domain Sync delay = %v, want 24000", got)
	}

	off := SyncDelayAttack{DelayNS: 0, Dir: 0, Domain: -1}
	if got := off.ExtraDelayNS(sync, 0); got != 0 {
		t.Fatalf("zero-delay attack returned %v", got)
	}
}
