package attack

import (
	"fmt"

	"gptpfta/internal/gptp"
	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// BehaviorKind selects how a compromised grandmaster falsifies its
// preciseOriginTimestamps over time.
type BehaviorKind string

const (
	// BehaviorConstant is the paper's attack: a fixed origin shift
	// (−24 µs) from the moment of compromise.
	BehaviorConstant BehaviorKind = "constant"
	// BehaviorRamp slews the falsification linearly, modelling an
	// attacker that tries to drag the quorum instead of stepping it.
	BehaviorRamp BehaviorKind = "ramp"
	// BehaviorWander adds a random walk on top of the base shift,
	// modelling a noisy covert attacker. The walk draws from a dedicated
	// per-adversary stream so its consumption is independent of the
	// simulation's shard layout.
	BehaviorWander BehaviorKind = "wander"
)

// ParseBehaviorKind validates a wire-format behavior name; the empty string
// means BehaviorConstant.
func ParseBehaviorKind(s string) (BehaviorKind, error) {
	switch BehaviorKind(s) {
	case "":
		return BehaviorConstant, nil
	case BehaviorConstant, BehaviorRamp, BehaviorWander:
		return BehaviorKind(s), nil
	default:
		return "", fmt.Errorf("attack: unknown behavior %q (want constant, ramp or wander)", s)
	}
}

// Behavior parameterises an active adversary's falsification over time.
type Behavior struct {
	Kind BehaviorKind
	// OffsetNS is the base origin-timestamp shift (the paper's constant
	// attack uses MaliciousOriginOffsetNS).
	OffsetNS float64
	// SlewNSPerSec is the ramp rate for BehaviorRamp.
	SlewNSPerSec float64
	// WanderNSPerStep is the 1-sigma random-walk increment per update for
	// BehaviorWander.
	WanderNSPerStep float64
}

// Static reports whether the behavior never changes after installation, in
// which case the campaign needs no update ticker (and no RNG stream).
func (b Behavior) Static() bool {
	switch b.Kind {
	case BehaviorRamp:
		return b.SlewNSPerSec == 0
	case BehaviorWander:
		return b.WanderNSPerStep == 0
	default:
		return true
	}
}

// Adversary evolves one compromised grandmaster's falsification. It is
// driven from control-scheduler events, which fire at identical instants at
// every shard count, so a wander stream's consumption is shard-invariant.
type Adversary struct {
	b    Behavior
	rng  sim.RNG
	walk float64
}

// NewAdversary creates an adversary; rng may be nil for static behaviors.
func NewAdversary(b Behavior, rng sim.RNG) *Adversary {
	return &Adversary{b: b, rng: rng}
}

// Offset returns the falsification to install elapsedSec after compromise,
// advancing any internal state (the wander walk) by one step.
func (a *Adversary) Offset(elapsedSec float64) float64 {
	v := a.b.OffsetNS
	switch a.b.Kind {
	case BehaviorRamp:
		v += a.b.SlewNSPerSec * elapsedSec
	case BehaviorWander:
		if a.rng != nil && a.b.WanderNSPerStep != 0 {
			a.walk += a.b.WanderNSPerStep * a.rng.NormFloat64()
		}
		v += a.walk
	}
	return v
}

// DefaultTargetOrder is the canonical order a coordinated multi-GM campaign
// compromises grandmasters in: the paper's two Fig. 3 targets first (c41
// then c11), then the remaining grandmasters by device number.
func DefaultTargetOrder() []string {
	return []string{"c41", "c11", "c21", "c31"}
}

// CampaignTargets returns the first n names of order — the GMs an
// n-adversary coordinated campaign holds credentials on. n is clamped to
// [0, len(order)], so asking for more adversaries than grandmasters attacks
// every grandmaster.
func CampaignTargets(order []string, n int) []string {
	if n <= 0 {
		return nil
	}
	if n > len(order) {
		n = len(order)
	}
	return append([]string(nil), order[:n]...)
}

// SyncDelayAttack is an on-path adversary holding a grandmaster's Sync
// frames on the wire: it implements netsim.DelayAttack by adding a fixed
// one-way delay to Sync messages travelling in one link direction
// (canonically dir 0, the VM→network side of a grandmaster's uplink).
// Receivers then observe the attacked domain's offset shifted by the full
// extra delay — the classic gPTP delay attack, invisible to pdelay because
// pdelay frames pass unharmed.
//
// The attack only ever adds latency (an on-path attacker can hold frames,
// not accelerate them), so netsim's MinDelay lookahead bound stays valid.
type SyncDelayAttack struct {
	// DelayNS is the extra one-way delay in nanoseconds; non-positive
	// values disable the attack.
	DelayNS float64
	// Dir is the attacked link direction (0 = ends[0]→ends[1]).
	Dir int
	// Domain restricts the attack to one gPTP domain; -1 attacks every
	// Sync on the link.
	Domain int
}

// ExtraDelayNS implements netsim.DelayAttack.
func (a SyncDelayAttack) ExtraDelayNS(f *netsim.Frame, dir int) float64 {
	if a.DelayNS <= 0 || dir != a.Dir || f.Priority != netsim.PriorityPTP {
		return 0
	}
	s, ok := f.Payload.(*gptp.Sync)
	if !ok {
		return 0
	}
	if a.Domain >= 0 && s.Domain != a.Domain {
		return 0
	}
	return a.DelayNS
}
