package bounds

import "testing"

func TestTolerable(t *testing.T) {
	for _, tc := range []struct {
		name string
		m, f int
		want int
	}{
		{"paper point: 4 domains f=1", 4, 1, 1},
		{"majority cap binds before f", 4, 2, 1},
		{"three domains mask one", 3, 1, 1},
		{"two domains mask none", 2, 1, 0},
		{"one domain masks none", 1, 3, 0},
		{"zero domains", 0, 1, 0},
		{"negative domains", -4, 1, 0},
		{"f zero", 4, 0, 0},
		{"f negative", 4, -1, 0},
		{"large fabric capped by f", 99, 2, 2},
		{"large f capped by domains", 9, 9, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := Tolerable(tc.m, tc.f); got != tc.want {
				t.Fatalf("Tolerable(%d, %d) = %d, want %d", tc.m, tc.f, got, tc.want)
			}
		})
	}
}

func TestSurvives(t *testing.T) {
	for _, tc := range []struct {
		name        string
		m, f, advrs int
		want        bool
	}{
		{"no adversaries always survive", 4, 1, 0, true},
		{"at the bound", 4, 1, 1, true},
		{"one past the bound", 4, 1, 2, false},
		{"diverse campaign caps at one", 4, 1, 1, true},
		{"f=2 masks two", 5, 2, 2, true},
		{"f=2 overrun", 5, 2, 3, false},
		{"degenerate single domain", 1, 1, 1, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := Survives(tc.m, tc.f, tc.advrs); got != tc.want {
				t.Fatalf("Survives(%d, %d, %d) = %v, want %v",
					tc.m, tc.f, tc.advrs, got, tc.want)
			}
		})
	}
}

func TestDelayFaulty(t *testing.T) {
	for _, tc := range []struct {
		name                 string
		delayNS, thresholdNS float64
		want                 bool
	}{
		{"no delay", 0, 10000, false},
		{"below validity threshold", 9000, 10000, false},
		{"at the threshold is benign", 10000, 10000, false},
		{"paper delay exceeds threshold", 24000, 10000, true},
		{"negative delay never faulty", -5000, 10000, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := DelayFaulty(tc.delayNS, tc.thresholdNS); got != tc.want {
				t.Fatalf("DelayFaulty(%v, %v) = %v, want %v",
					tc.delayNS, tc.thresholdNS, got, tc.want)
			}
		})
	}
}

func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		name                string
		predicted, measured bool
		want                Verdict
	}{
		{"inside bound and survived", true, true, VerdictInsideSurvived},
		{"predicted survive but failed is the anomaly", true, false, VerdictAnomaly},
		{"outside bound and failed", false, false, VerdictOutsideFailed},
		{"outside bound yet survived is informational", false, true, VerdictOutsideSurvived},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.predicted, tc.measured); got != tc.want {
				t.Fatalf("Classify(%v, %v) = %q, want %q",
					tc.predicted, tc.measured, got, tc.want)
			}
		})
	}
	// Only the anomaly verdict gates CI; the string values are part of the
	// row schema the attack-matrix job greps, so pin them.
	for v, s := range map[Verdict]string{
		VerdictInsideSurvived:  "inside-bound-survived",
		VerdictOutsideFailed:   "outside-bound-failed",
		VerdictOutsideSurvived: "outside-bound-survived",
		VerdictAnomaly:         "anomaly",
	} {
		if string(v) != s {
			t.Fatalf("verdict %q drifted from pinned wire value %q", v, s)
		}
	}
}
