// Package bounds computes the analytic resilience bound the adversarial
// campaign checks its measurements against: a fault-tolerant average over m
// clock readings with trim parameter f masks up to f arbitrary (Byzantine)
// readings provided m ≥ 2f+1 — the classic 2f+1 quorum condition, also the
// closed-form resilience bound of "Resilience Bounds of Network Clock
// Synchronization with Fault Correction" (arXiv 2006.15832) for
// correction-based synchronization. The bound is sufficient, not necessary:
// an adversary set the FTA happens to trim (e.g. attackers pushing in
// opposite directions) can be masked beyond it, so a measured survival
// outside the bound is unremarkable, while a measured failure inside the
// bound contradicts the theory and is flagged as an anomaly.
package bounds

// Tolerable returns the largest number of Byzantine grandmasters an FTA
// over m domains with trim parameter f provably masks: f itself when the
// 2f+1 quorum holds, otherwise the largest f' with m ≥ 2f'+1. A
// non-positive m tolerates nothing.
func Tolerable(m, f int) int {
	if m <= 0 || f <= 0 {
		return 0
	}
	if max := (m - 1) / 2; f > max {
		return max
	}
	return f
}

// Survives reports the analytic prediction: adversaries compromised domains
// out of m are masked iff the count is within Tolerable(m, f).
func Survives(m, f, adversaries int) bool {
	return adversaries <= Tolerable(m, f)
}

// DelayFaulty reports whether an on-path Sync delay attack of delayNS makes
// the attacked domain count as adversarial. The full one-way extra delay
// lands on every receiver's offset reading for that domain (the origin
// timestamp is honest but arrival is late, and pdelay cannot see the shift),
// so the domain behaves Byzantine once the induced error exceeds the
// FTSHMEM validity threshold; below it, the shift stays inside the
// disagreement window the precision bound already budgets for.
func DelayFaulty(delayNS, thresholdNS float64) bool {
	return delayNS > thresholdNS
}

// Verdict classifies one sweep point's measured outcome against the
// analytic prediction.
type Verdict string

const (
	// VerdictInsideSurvived: within the 2f+1 bound and the measured run
	// survived — the masking guarantee held.
	VerdictInsideSurvived Verdict = "inside-bound-survived"
	// VerdictOutsideFailed: beyond the bound and the measured run failed —
	// the analytic failure boundary was crossed where predicted.
	VerdictOutsideFailed Verdict = "outside-bound-failed"
	// VerdictOutsideSurvived: beyond the bound but the measured run
	// survived. The bound is sufficient, not necessary (the FTA may trim
	// exactly the adversarial extremes), so this is informational.
	VerdictOutsideSurvived Verdict = "outside-bound-survived"
	// VerdictAnomaly: within the bound but the measured run failed —
	// measured behavior contradicts the masking guarantee. This is the
	// only verdict the CI attack matrix gates on.
	VerdictAnomaly Verdict = "anomaly"
)

// Classify maps the analytic prediction and the measured outcome of one
// sweep point to its verdict.
func Classify(predictedSurvive, measuredSurvive bool) Verdict {
	switch {
	case predictedSurvive && measuredSurvive:
		return VerdictInsideSurvived
	case predictedSurvive:
		return VerdictAnomaly
	case measuredSurvive:
		return VerdictOutsideSurvived
	default:
		return VerdictOutsideFailed
	}
}
