package netsim

import (
	"testing"
	"time"

	"gptpfta/internal/sim"
)

// jitterlessLink builds a deterministic link (no jitter, no RNG) so delay()
// is an exact additive function of the configured axes.
func jitterlessLink(t *testing.T, prop time.Duration) *Link {
	t.Helper()
	sched := sim.NewScheduler()
	a := &Port{Name: "a"}
	b := &Port{Name: "b"}
	l, err := Connect(sched, nil, LinkConfig{Propagation: prop}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestLinkDelayAxesCompose pins the combined additive contract of the three
// dynamic delay axes: chaos override (SetDelayOverride), WAN drift
// (SetWanDelay) and on-path attack (SetDelayAttack) stack by pure addition
// on top of the propagation base, with the attack clamped non-negative.
func TestLinkDelayAxesCompose(t *testing.T) {
	const prop = 100 * time.Microsecond
	l := jitterlessLink(t, prop)
	l.SetDelayOverride(10*time.Microsecond, -4*time.Microsecond)
	l.SetWanDelay(7*time.Microsecond, 3*time.Microsecond)
	l.SetDelayAttack(fuzzDelayAttack{delayNS: 5_000}) // PTP frames, dir 0 only

	ptp := &Frame{Priority: PriorityPTP}
	be := &Frame{Priority: PriorityBestEffort}

	// dir 0 carries both asymmetries plus the attack on PTP frames.
	want0 := prop + 10*time.Microsecond - 4*time.Microsecond + 7*time.Microsecond + 3*time.Microsecond
	if got := l.delay(0, ptp); got != want0+5*time.Microsecond {
		t.Fatalf("delay(0, ptp) = %v, want %v", got, want0+5*time.Microsecond)
	}
	if got := l.delay(0, be); got != want0 {
		t.Fatalf("delay(0, be) = %v, want %v", got, want0)
	}
	// dir 1 carries neither asymmetry nor the attack.
	want1 := prop + 10*time.Microsecond + 7*time.Microsecond
	if got := l.delay(1, ptp); got != want1 {
		t.Fatalf("delay(1, ptp) = %v, want %v", got, want1)
	}

	// DirectionalDelay is the attack- and jitter-free view of the same sums.
	if got := l.DirectionalDelay(0); got != want0 {
		t.Fatalf("DirectionalDelay(0) = %v, want %v", got, want0)
	}
	if got := l.DirectionalDelay(1); got != want1 {
		t.Fatalf("DirectionalDelay(1) = %v, want %v", got, want1)
	}

	// A negative attack return is clamped: identical to no attack at all.
	l.SetDelayAttack(fuzzDelayAttack{delayNS: -50_000})
	if got := l.delay(0, ptp); got != want0 {
		t.Fatalf("negative attack not clamped: delay(0, ptp) = %v, want %v", got, want0)
	}
}

// TestLinkMinDelayTracksWanAxis checks MinDelay mirrors the WAN axis the
// same way it mirrors the chaos override: the full extra shift and only the
// negative part of the asymmetry (it applies to one direction, so a
// positive value cannot lower the all-direction floor).
func TestLinkMinDelayTracksWanAxis(t *testing.T) {
	const prop = 50 * time.Microsecond
	l := jitterlessLink(t, prop)

	l.SetWanDelay(9*time.Microsecond, 2*time.Microsecond)
	if got, want := l.MinDelay(), prop+9*time.Microsecond; got != want {
		t.Fatalf("MinDelay with positive wan asym = %v, want %v", got, want)
	}
	l.SetWanDelay(9*time.Microsecond, -2*time.Microsecond)
	if got, want := l.MinDelay(), prop+9*time.Microsecond-2*time.Microsecond; got != want {
		t.Fatalf("MinDelay with negative wan asym = %v, want %v", got, want)
	}
	// All three static axes at once.
	l.SetDelayOverride(4*time.Microsecond, -1*time.Microsecond)
	if got, want := l.MinDelay(), prop+9*time.Microsecond-2*time.Microsecond+4*time.Microsecond-1*time.Microsecond; got != want {
		t.Fatalf("MinDelay with all axes = %v, want %v", got, want)
	}

	// A negative wan extra is clamped to zero at the setter.
	l.SetDelayOverride(0, 0)
	l.SetWanDelay(-3*time.Microsecond, 0)
	if e, a := l.WanDelay(); e != 0 || a != 0 {
		t.Fatalf("SetWanDelay(-3µs, 0) stored (%v, %v), want (0, 0)", e, a)
	}
	if got := l.MinDelay(); got != prop {
		t.Fatalf("MinDelay after clamped negative extra = %v, want %v", got, prop)
	}
}

// TestLinkSnapshotRoundTripsWanAxis pins that warm-start forks restore the
// WAN drift axis bit-identically alongside the chaos override.
func TestLinkSnapshotRoundTripsWanAxis(t *testing.T) {
	l := jitterlessLink(t, 20*time.Microsecond)
	l.SetDelayOverride(1*time.Microsecond, -2*time.Microsecond)
	l.SetWanDelay(3*time.Microsecond, -4*time.Microsecond)
	snap := l.Snapshot()

	l.SetDelayOverride(0, 0)
	l.SetWanDelay(0, 0)
	l.Restore(snap)

	if e, a := l.WanDelay(); e != 3*time.Microsecond || a != -4*time.Microsecond {
		t.Fatalf("restored wan axis = (%v, %v), want (3µs, -4µs)", e, a)
	}
	if l.extraDelay != 1*time.Microsecond || l.asymDelay != -2*time.Microsecond {
		t.Fatalf("restored override = (%v, %v), want (1µs, -2µs)", l.extraDelay, l.asymDelay)
	}
}
