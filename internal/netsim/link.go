package netsim

import (
	"fmt"
	"time"

	"gptpfta/internal/sim"
)

// LinkConfig describes a full-duplex point-to-point link.
type LinkConfig struct {
	// Propagation is the nominal one-way latency (cable + PHY + MAC).
	Propagation time.Duration
	// JitterNS is the 1-sigma Gaussian per-frame latency variation,
	// truncated so latency never drops below half the nominal value.
	JitterNS float64
	// LossProb is the per-frame probability of silent loss (CRC errors,
	// receive-queue overruns). Protocol layers must tolerate it: a lost
	// Sync or FollowUp skips one measurement interval, a lost pdelay
	// exchange skips one link-delay sample.
	LossProb float64
}

// Link connects two ports. Frames sent into one end are delivered to the
// device at the other end after the propagation delay plus jitter. The two
// directions share the same nominal delay (symmetric medium); asymmetry in
// observed path latency arises from bridge residence times.
type Link struct {
	sched *sim.Scheduler
	rng   sim.RNG
	cfg   LinkConfig
	ends  [2]*Port
	// deliver holds one prebound delivery callback per direction so Send
	// can schedule through AtArg without allocating a closure per frame.
	deliver [2]func(any)
	// lastDelivery enforces per-direction FIFO ordering: a wire cannot
	// reorder frames, whatever the jitter draw says.
	lastDelivery [2]sim.Time
	sent         uint64
	lost         uint64
}

// Lost reports how many frames the link dropped.
func (l *Link) Lost() uint64 { return l.lost }

// Sent reports how many frames were handed to the link for transmission,
// including those subsequently dropped; delivered frames are Sent - Lost.
func (l *Link) Sent() uint64 { return l.sent }

// Connect attaches two ports with a link. It returns an error if either
// port is already attached.
func Connect(sched *sim.Scheduler, rng sim.RNG, cfg LinkConfig, a, b *Port) (*Link, error) {
	if a.link != nil || b.link != nil {
		return nil, fmt.Errorf("netsim: port already connected (%s, %s)", a.Name, b.Name)
	}
	l := &Link{sched: sched, rng: rng, cfg: cfg, ends: [2]*Port{a, b}}
	l.deliver[0] = func(x any) { b.Owner.Receive(b, x.(*Frame)) } // a -> b
	l.deliver[1] = func(x any) { a.Owner.Receive(a, x.(*Frame)) } // b -> a
	a.link = l
	b.link = l
	return l, nil
}

// Peer returns the port at the other end of the link from p.
func (l *Link) Peer(p *Port) *Port {
	if l.ends[0] == p {
		return l.ends[1]
	}
	return l.ends[0]
}

// Nominal reports the configured one-way propagation delay.
func (l *Link) Nominal() time.Duration { return l.cfg.Propagation }

// Send transmits a frame from port "from" toward the peer. Delivery is
// scheduled after propagation plus jitter; deliveries in one direction
// never reorder.
func (l *Link) Send(from *Port, f *Frame) {
	l.sent++
	if l.cfg.LossProb > 0 && l.rng != nil && l.rng.Float64() < l.cfg.LossProb {
		l.lost++
		f.release()
		return
	}
	dir := 0
	if l.ends[1] == from {
		dir = 1
	}
	at := l.sched.Now().Add(l.delay())
	if at <= l.lastDelivery[dir] {
		at = l.lastDelivery[dir] + 1
	}
	l.lastDelivery[dir] = at
	l.sched.AtArg(at, l.deliver[dir], f)
}

func (l *Link) delay() time.Duration {
	d := float64(l.cfg.Propagation)
	if l.rng != nil && l.cfg.JitterNS > 0 {
		d += l.rng.NormFloat64() * l.cfg.JitterNS
	}
	min := float64(l.cfg.Propagation) / 2
	if d < min {
		d = min
	}
	return time.Duration(d)
}
