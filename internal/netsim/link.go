package netsim

import (
	"fmt"
	"time"

	"gptpfta/internal/sim"
)

// LinkConfig describes a full-duplex point-to-point link.
type LinkConfig struct {
	// Propagation is the nominal one-way latency (cable + PHY + MAC).
	Propagation time.Duration
	// JitterNS is the 1-sigma Gaussian per-frame latency variation,
	// truncated so latency never drops below half the nominal value.
	JitterNS float64
	// LossProb is the per-frame probability of silent loss (CRC errors,
	// receive-queue overruns). Protocol layers must tolerate it: a lost
	// Sync or FollowUp skips one measurement interval, a lost pdelay
	// exchange skips one link-delay sample.
	LossProb float64
	// LossRNG, when set, is a dedicated random stream for loss decisions.
	//
	// Determinism contract: with LossRNG set, Send draws exactly one
	// uniform from it per frame — independent of LossProb, of any
	// installed loss model, and of the draw's outcome — so enabling a
	// zero-rate loss model (or flipping LossProb between zero and
	// non-zero) never perturbs the link's main stream or any downstream
	// seed stream. Without LossRNG the legacy draw order applies: the loss
	// uniform comes from the link's main stream and only when
	// LossProb > 0, which is what the committed golden digests pin.
	LossRNG sim.RNG
}

// LossModel decides per-frame loss for a link direction-agnostically. The
// chaos engine installs models dynamically (burst loss); implementations
// must draw a fixed number of values from rng per call regardless of their
// parameters so that a zero-rate model is behaviourally invisible.
type LossModel interface {
	// Drop reports whether the frame is lost. u is the per-frame uniform
	// the link already drew from its loss stream; rng is that same stream
	// for any additional draws (state transitions).
	Drop(u float64, rng sim.RNG) bool
}

// DelayAttack is an attacker-controlled per-frame delay hook: an on-path
// adversary that holds selected frames on the wire. ExtraDelayNS returns
// the additional one-way latency for frame f travelling in direction dir
// (0 = ends[0]→ends[1]).
//
// Contract: the returned delay must be non-negative — an on-path attacker
// can hold frames back but never accelerate them — so MinDelay's lookahead
// bound stays valid without consulting the attack. Negative returns are
// clamped to zero. Implementations must not draw from the link's RNG
// streams (an installed attack must not perturb jitter or loss draws).
type DelayAttack interface {
	ExtraDelayNS(f *Frame, dir int) float64
}

// Link connects two ports. Frames sent into one end are delivered to the
// device at the other end after the propagation delay plus jitter. The two
// directions share the same nominal delay (symmetric medium); asymmetry in
// observed path latency arises from bridge residence times — or from a
// chaos-injected asymmetric delay shift (SetDelayOverride).
type Link struct {
	// scheds holds the scheduler owning each endpoint's device: both entries
	// are the same scheduler for an ordinary link, and differ for a
	// cross-shard boundary link (ConnectBoundary). Direction dir sends from
	// ends[dir] (scheds[dir]) to ends[1-dir] (scheds[1-dir]).
	scheds [2]*sim.Scheduler
	rng    sim.RNG
	cfg    LinkConfig
	ends   [2]*Port
	// deferred marks a boundary link: Send only records the frame in the
	// per-direction outbox, and the fabric commits it at the next barrier
	// (sim.Boundary). The commit replays the exact legacy Send tail —
	// counters, loss draw, jitter draw, FIFO clamp — in globally sorted
	// send order, so per-link RNG consumption matches a single-scheduler
	// run.
	deferred bool
	outbox   [2][]sim.Deferred
	// Fabric hooks (sim.BoundaryBinder), set only on boundary links inside
	// a sharded system. markDirty registers the link for the next barrier
	// flush on the first deferred send per direction; invalidateLA marks
	// the fabric's lookahead cache stale after any MinDelay-affecting
	// mutation. Both are nil on ordinary links and unsharded runs.
	markDirty    func()
	invalidateLA func()
	// deliver holds one prebound delivery callback per direction so Send
	// can schedule through AtArg without allocating a closure per frame.
	deliver [2]func(any)
	// lastDelivery enforces per-direction FIFO ordering: a wire cannot
	// reorder frames, whatever the jitter draw says.
	lastDelivery [2]sim.Time
	sent         uint64
	lost         uint64

	// Dynamic fault state (chaos engine). All zero when no plan is active,
	// in which case none of it draws randomness or alters scheduling.
	down      bool
	lossModel LossModel
	// extraDelay adds latency to both directions; asymDelay additionally
	// to the a->b direction only, breaking the symmetric-medium assumption
	// gPTP's pdelay mechanism relies on.
	extraDelay time.Duration
	asymDelay  time.Duration
	// wanExtra/wanAsym are the WAN drift-process axis (SetWanDelay): a
	// slowly wandering baseline for wide-area links, additive on top of the
	// chaos override so the two controllers never clobber each other.
	// wanExtra is kept non-negative by SetWanDelay; wanAsym applies to the
	// a->b direction only and may have either sign.
	wanExtra time.Duration
	wanAsym  time.Duration
	// delayAttack, when set, is an on-path adversary adding per-frame
	// delay (SetDelayAttack); it only ever adds latency, so MinDelay
	// ignores it.
	delayAttack DelayAttack
	// dropBefore marks, per direction, the last delivery instant that was
	// scheduled before the link last came back up: those frames were on
	// the wire during the outage and die at their delivery instant.
	dropBefore  [2]sim.Time
	faultedDrop uint64
}

// Lost reports how many frames the link dropped by stochastic loss.
func (l *Link) Lost() uint64 { return l.lost }

// BindFabric implements sim.BoundaryBinder: the fabric installs its
// dirty-list and lookahead-invalidation hooks when the link is registered
// as a cross-shard boundary.
func (l *Link) BindFabric(markDirty, invalidateLookahead func()) {
	l.markDirty = markDirty
	l.invalidateLA = invalidateLookahead
}

// minDelayChanged reports a (possible) MinDelay change to the fabric so
// the cached lookahead is rescanned before the next window. Every mutator
// that touches a delay axis calls it — including SetDelayAttack, whose
// axis never enters MinDelay: one spurious O(boundaries) rescan per attack
// install is cheaper than coupling this call-site rule to the MinDelay
// formula. All such mutations happen in control/driver context (chaos and
// WAN drift tick on the control scheduler, attack installs and snapshot
// restores at driver time), which is exactly when the hook is allowed.
func (l *Link) minDelayChanged() {
	if l.invalidateLA != nil {
		l.invalidateLA()
	}
}

// FaultDropped reports frames discarded by injected faults (link down,
// frames caught in flight during an outage).
func (l *Link) FaultDropped() uint64 { return l.faultedDrop }

// Sent reports how many frames were handed to the link for transmission,
// including those subsequently dropped; delivered frames are
// Sent - Lost - FaultDropped.
func (l *Link) Sent() uint64 { return l.sent }

// Connect attaches two ports with a link. It returns an error if either
// port is already attached.
func Connect(sched *sim.Scheduler, rng sim.RNG, cfg LinkConfig, a, b *Port) (*Link, error) {
	return ConnectBoundary(sched, sched, rng, cfg, a, b)
}

// ConnectBoundary attaches two ports whose devices may live on different
// shard schedulers (schedA owns a's device, schedB owns b's). When the
// schedulers differ the link operates in deferred mode: sends queue in
// per-direction outboxes and the owning sim.Fabric commits them at
// barriers. With schedA == schedB this is exactly Connect.
func ConnectBoundary(schedA, schedB *sim.Scheduler, rng sim.RNG, cfg LinkConfig, a, b *Port) (*Link, error) {
	if a.link != nil || b.link != nil {
		return nil, fmt.Errorf("netsim: port already connected (%s, %s)", a.Name, b.Name)
	}
	l := &Link{scheds: [2]*sim.Scheduler{schedA, schedB}, rng: rng, cfg: cfg,
		ends: [2]*Port{a, b}, deferred: schedA != schedB}
	l.deliver[0] = func(x any) { l.finishDelivery(0, x.(*Frame)) } // a -> b
	l.deliver[1] = func(x any) { l.finishDelivery(1, x.(*Frame)) } // b -> a
	a.link = l
	b.link = l
	return l, nil
}

// Boundary reports whether the link crosses shards (deferred sends).
func (l *Link) Boundary() bool { return l.deferred }

// Peer returns the port at the other end of the link from p.
func (l *Link) Peer(p *Port) *Port {
	if l.ends[0] == p {
		return l.ends[1]
	}
	return l.ends[0]
}

// End returns endpoint i (0 or 1) for topology inspection (the chaos
// engine's partition actions match links by their endpoint device names).
func (l *Link) End(i int) *Port { return l.ends[i] }

// Nominal reports the configured one-way propagation delay.
func (l *Link) Nominal() time.Duration { return l.cfg.Propagation }

// SetDown marks the link physically severed (true) or restored (false). A
// down link drops frames at Send; frames already in flight die at their
// delivery instant, including those whose delivery would land after the
// restoration (they were on the wire during the outage).
func (l *Link) SetDown(down bool) {
	if l.down == down {
		return
	}
	l.down = down
	if !down {
		// Everything scheduled up to now was sent before the restoration
		// and therefore crossed the outage; kill it at delivery.
		l.dropBefore = l.lastDelivery
	}
}

// Down reports whether the link is currently severed.
func (l *Link) Down() bool { return l.down }

// SetLossModel installs (or, with nil, removes) a dynamic loss model that
// replaces the static LossProb. Models draw from the link's dedicated loss
// stream when one is configured, keeping the main jitter stream untouched;
// see the LinkConfig.LossRNG determinism contract.
func (l *Link) SetLossModel(m LossModel) { l.lossModel = m }

// Combined delay contract — three additive axes on top of the configured
// propagation + jitter base:
//
//	delay(dir, f) = base(jitter, floored at Propagation/2)
//	              + extraDelay + [dir==0] asymDelay     (SetDelayOverride)
//	              + wanExtra   + [dir==0] wanAsym       (SetWanDelay)
//	              + max(0, attack(f, dir))              (SetDelayAttack)
//
// The axes are independent controllers (chaos engine, WAN drift process,
// on-path adversary) and compose by pure addition; none of them draws from
// the link's RNG streams. MinDelay mirrors every term that can lower the
// bound: the full extraDelay and wanExtra shifts, and the negative parts of
// asymDelay and wanAsym (each applies to one direction only, so only a
// negative value lowers the all-direction floor). The attack term is
// clamped non-negative per frame and therefore never enters MinDelay.
// FuzzLinkMinDelay pins this contract across all three axes at once.

// SetDelayOverride injects extra one-way latency: extra applies to both
// directions, asym additionally to the a->b direction only (an asymmetry
// invisible to pdelay's round-trip measurement). Zero values clear the
// override.
func (l *Link) SetDelayOverride(extra, asym time.Duration) {
	l.extraDelay = extra
	l.asymDelay = asym
	l.minDelayChanged()
}

// SetWanDelay sets the WAN drift axis: extra latency on both directions
// plus a signed asymmetry on the a->b direction only, additive with any
// chaos-installed SetDelayOverride. A negative extra is clamped to zero
// (the drift process models added wide-area queueing, never a faster-than-
// nominal path). Zero values clear the axis.
func (l *Link) SetWanDelay(extra, asym time.Duration) {
	if extra < 0 {
		extra = 0
	}
	l.wanExtra = extra
	l.wanAsym = asym
	l.minDelayChanged()
}

// WanDelay reports the current WAN drift axis (extra, asym).
func (l *Link) WanDelay() (extra, asym time.Duration) { return l.wanExtra, l.wanAsym }

// DirectionalDelay reports the deterministic one-way delay in direction
// dir (0 = ends[0]->ends[1]) with jitter and per-frame attacks excluded:
// the expected latency a time-transfer exchange over this link observes.
// The WAN tier's two-way-exchange error model uses the directional
// difference to compute the asymmetry error a site-level reading inherits.
func (l *Link) DirectionalDelay(dir int) time.Duration {
	d := l.cfg.Propagation + l.extraDelay + l.wanExtra
	if dir == 0 {
		d += l.asymDelay + l.wanAsym
	}
	return d
}

// SetDelayAttack installs (or, with nil, removes) an on-path per-frame
// delay adversary. Unlike SetDelayOverride — which shifts every frame in a
// direction — an attack selects its victims frame by frame (e.g. only Sync
// messages of one domain), modelling a selective gPTP delay attacker.
func (l *Link) SetDelayAttack(a DelayAttack) {
	l.delayAttack = a
	l.minDelayChanged()
}

// Send transmits a frame from port "from" toward the peer. Delivery is
// scheduled after propagation plus jitter; deliveries in one direction
// never reorder. On a boundary link the send is deferred to the next
// fabric barrier instead of committed inline.
func (l *Link) Send(from *Port, f *Frame) {
	dir := 0
	if l.ends[1] == from {
		dir = 1
	}
	key1, key2, key3 := l.scheds[dir].SchedKeys()
	if l.deferred {
		// First capture in this direction since the last barrier: register
		// with the fabric's dirty list. Each direction has a single writer
		// (the shard owning ends[dir]), so the emptiness check races with
		// nothing; the fabric dedups the two directions' registrations.
		if len(l.outbox[dir]) == 0 && l.markDirty != nil {
			l.markDirty()
		}
		l.outbox[dir] = append(l.outbox[dir], sim.Deferred{
			Key1: key1, Key2: key2, Key3: key3, Dir: dir,
			Ord:     l.scheds[dir].NextDeferOrd(),
			Payload: f, By: l,
		})
		return
	}
	l.CommitDeferred(dir, f, key1, key2)
}

// CommitDeferred implements sim.Committer: the legacy Send tail. key1 is
// the send instant (delay is computed from it, not from the commit
// instant) and both keys are stamped onto the delivery event so it sorts
// against the destination shard's local events exactly as an inline
// schedule at send time would have.
func (l *Link) CommitDeferred(dir int, payload any, key1, key2 sim.Time) {
	f := payload.(*Frame)
	l.sent++
	if l.down {
		l.faultedDrop++
		f.release()
		return
	}
	if l.dropFrame() {
		l.lost++
		f.release()
		return
	}
	at := key1.Add(l.delay(dir, f))
	if at <= l.lastDelivery[dir] {
		at = l.lastDelivery[dir] + 1
	}
	l.lastDelivery[dir] = at
	l.scheds[1-dir].ScheduleKeyedArg(at, key1, key2, l.deliver[dir], f)
}

// AppendDeferred implements sim.Boundary: drain both outboxes into buf.
func (l *Link) AppendDeferred(buf []sim.Deferred) []sim.Deferred {
	for dir := range l.outbox {
		ob := l.outbox[dir]
		buf = append(buf, ob...)
		for i := range ob {
			ob[i].Payload, ob[i].By = nil, nil
		}
		l.outbox[dir] = ob[:0]
	}
	return buf
}

// MinDelay implements sim.Boundary: a lower bound on the delay any send
// committed from now on can experience. The jitter draw is truncated at
// half the nominal propagation, so with jitter enabled the floor is
// Propagation/2; delay overrides shift the bound (a negative asymmetry
// applies to direction 0 only, so only its negative part lowers the
// bound). The result can be non-positive under pathological overrides;
// the fabric clamps its lookahead to at least 1 ns.
func (l *Link) MinDelay() time.Duration {
	d := l.cfg.Propagation
	if l.rng != nil && l.cfg.JitterNS > 0 {
		d = l.cfg.Propagation / 2
	}
	d += l.extraDelay + l.wanExtra
	if l.asymDelay < 0 {
		d += l.asymDelay
	}
	if l.wanAsym < 0 {
		d += l.wanAsym
	}
	return d
}

// dropFrame decides stochastic loss. Draw-order contract: with a dedicated
// loss stream, exactly one uniform is consumed from it per frame whatever
// the configured rates, so zero-rate configurations are stream-invisible;
// an installed loss model may consume additional draws from the loss
// stream only (its burst state machine), never from the main stream. The
// legacy path (no LossRNG) preserves the historical order on the shared
// stream: no draw at all when LossProb == 0, which the golden digests pin.
func (l *Link) dropFrame() bool {
	if l.cfg.LossRNG != nil {
		u := l.cfg.LossRNG.Float64()
		if l.lossModel != nil {
			return l.lossModel.Drop(u, l.cfg.LossRNG)
		}
		return u < l.cfg.LossProb
	}
	if l.lossModel != nil && l.rng != nil {
		return l.lossModel.Drop(l.rng.Float64(), l.rng)
	}
	return l.cfg.LossProb > 0 && l.rng != nil && l.rng.Float64() < l.cfg.LossProb
}

// finishDelivery hands the frame to the receiving device unless an injected
// fault killed it in flight: the link is down at the delivery instant, or
// the delivery was scheduled before the link last came back up.
func (l *Link) finishDelivery(dir int, f *Frame) {
	if l.down || l.scheds[1-dir].Now() <= l.dropBefore[dir] {
		l.faultedDrop++
		f.release()
		return
	}
	p := l.ends[1-dir]
	p.Owner.Receive(p, f)
}

// linkSnapshot captures a link's mutable state for warm-start forks,
// including the installed loss model and its internal state (a chaos plan
// may have installed one before the fork boundary).
type linkSnapshot struct {
	lastDelivery [2]sim.Time
	sent         uint64
	lost         uint64
	down         bool
	lossModel    LossModel
	lossState    any // nested snapshot when the model is stateful
	delayAttack  DelayAttack
	attackState  any // nested snapshot when the attack is stateful
	extraDelay   time.Duration
	asymDelay    time.Duration
	wanExtra     time.Duration
	wanAsym      time.Duration
	dropBefore   [2]sim.Time
	faultedDrop  uint64
}

// Snapshot implements sim.Snapshotter. The RNG stream positions are
// restored separately by sim.Streams; in-flight frames live in the
// scheduler's snapshot as AtArg descriptors.
func (l *Link) Snapshot() any {
	sn := &linkSnapshot{
		lastDelivery: l.lastDelivery,
		sent:         l.sent,
		lost:         l.lost,
		down:         l.down,
		lossModel:    l.lossModel,
		delayAttack:  l.delayAttack,
		extraDelay:   l.extraDelay,
		asymDelay:    l.asymDelay,
		wanExtra:     l.wanExtra,
		wanAsym:      l.wanAsym,
		dropBefore:   l.dropBefore,
		faultedDrop:  l.faultedDrop,
	}
	if s, ok := l.lossModel.(sim.Snapshotter); ok {
		sn.lossState = s.Snapshot()
	}
	if s, ok := l.delayAttack.(sim.Snapshotter); ok {
		sn.attackState = s.Snapshot()
	}
	return sn
}

// Restore implements sim.Snapshotter.
func (l *Link) Restore(snap any) {
	sn := snap.(*linkSnapshot)
	l.lastDelivery = sn.lastDelivery
	l.sent = sn.sent
	l.lost = sn.lost
	l.down = sn.down
	l.lossModel = sn.lossModel
	if s, ok := l.lossModel.(sim.Snapshotter); ok && sn.lossState != nil {
		s.Restore(sn.lossState)
	}
	l.delayAttack = sn.delayAttack
	if s, ok := l.delayAttack.(sim.Snapshotter); ok && sn.attackState != nil {
		s.Restore(sn.attackState)
	}
	l.extraDelay = sn.extraDelay
	l.asymDelay = sn.asymDelay
	l.wanExtra = sn.wanExtra
	l.wanAsym = sn.wanAsym
	l.dropBefore = sn.dropBefore
	l.faultedDrop = sn.faultedDrop
	l.minDelayChanged()
}

func (l *Link) delay(dir int, f *Frame) time.Duration {
	d := float64(l.cfg.Propagation)
	if l.rng != nil && l.cfg.JitterNS > 0 {
		d += l.rng.NormFloat64() * l.cfg.JitterNS
	}
	min := float64(l.cfg.Propagation) / 2
	if d < min {
		d = min
	}
	d += float64(l.extraDelay) + float64(l.wanExtra)
	if dir == 0 {
		d += float64(l.asymDelay) + float64(l.wanAsym)
	}
	if l.delayAttack != nil && f != nil {
		if e := l.delayAttack.ExtraDelayNS(f, dir); e > 0 {
			d += e
		}
	}
	return time.Duration(d)
}
