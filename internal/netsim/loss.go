package netsim

import "gptpfta/internal/sim"

// GilbertElliott is the classic two-state burst-loss model: the channel
// alternates between a Good state (loss probability GoodLoss, typically
// near zero) and a Bad state (loss probability BadLoss, typically high),
// with geometric sojourn times set by the per-frame transition
// probabilities GoodToBad and BadToGood. Mean burst length in frames is
// 1/BadToGood.
//
// Determinism: Drop consumes exactly one extra uniform from rng per frame
// (the state-transition draw) regardless of parameter values, honouring
// the LossModel fixed-draw-count contract — a GilbertElliott with all-zero
// rates drops nothing and perturbs no other stream.
type GilbertElliott struct {
	GoodLoss  float64 // loss probability while in the Good state
	BadLoss   float64 // loss probability while in the Bad state
	GoodToBad float64 // per-frame probability of Good -> Bad transition
	BadToGood float64 // per-frame probability of Bad -> Good transition

	bad bool
}

// Drop implements LossModel: decide loss with the frame uniform u at the
// current state's rate, then advance the state machine with one draw.
func (g *GilbertElliott) Drop(u float64, rng sim.RNG) bool {
	p := g.GoodLoss
	if g.bad {
		p = g.BadLoss
	}
	lost := u < p
	t := rng.Float64()
	if g.bad {
		if t < g.BadToGood {
			g.bad = false
		}
	} else if t < g.GoodToBad {
		g.bad = true
	}
	return lost
}

// InBadState reports whether the channel is currently in the Bad state
// (test introspection).
func (g *GilbertElliott) InBadState() bool { return g.bad }

// Snapshot implements sim.Snapshotter: the channel state is the single
// Good/Bad bit (sojourn randomness lives in the link's loss stream, which
// sim.Streams rewinds).
func (g *GilbertElliott) Snapshot() any { return g.bad }

// Restore implements sim.Snapshotter.
func (g *GilbertElliott) Restore(snap any) { g.bad = snap.(bool) }
