package netsim

import (
	"testing"
	"time"

	"gptpfta/internal/sim"
)

// collectLatencies runs n sends spaced 1 µs apart and returns the delivery
// instants observed at b.
func sendSchedule(t *testing.T, fx *fixture, a *NIC, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		fx.sched.After(time.Duration(i)*time.Microsecond, func() {
			_, _ = a.Send(&Frame{Src: "nic/a", Dst: "nic/b"})
		})
	}
}

func TestLinkDownDropsInFlightAndFutureFrames(t *testing.T) {
	fx := newFixture()
	a, b := fx.nic("a"), fx.nic("b")
	l := mustConnect(t, fx, LinkConfig{Propagation: 10 * time.Microsecond}, a.Port(), b.Port())
	received := 0
	b.SetHandler(func(*Frame, float64) { received++ })

	// Frame 1 sent at t=0, in flight when the link goes down at t=5µs: it
	// must die even though the link is back up at its delivery instant.
	if _, err := a.Send(&Frame{Dst: "nic/b"}); err != nil {
		t.Fatal(err)
	}
	fx.sched.After(5*time.Microsecond, func() { l.SetDown(true) })
	// Frame 2 sent during the outage: dropped at Send.
	fx.sched.After(6*time.Microsecond, func() { _, _ = a.Send(&Frame{Dst: "nic/b"}) })
	fx.sched.After(7*time.Microsecond, func() { l.SetDown(false) })
	// Frame 3 sent after restoration: delivered.
	fx.sched.After(8*time.Microsecond, func() { _, _ = a.Send(&Frame{Dst: "nic/b"}) })
	if err := fx.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 1 {
		t.Fatalf("received %d frames, want only the post-restore one", received)
	}
	if l.FaultDropped() != 2 {
		t.Fatalf("fault-dropped = %d, want 2", l.FaultDropped())
	}
	if l.Sent() != 3 {
		t.Fatalf("sent = %d, want 3", l.Sent())
	}
}

func TestLinkDownSymmetricBothDirections(t *testing.T) {
	fx := newFixture()
	a, b := fx.nic("a"), fx.nic("b")
	l := mustConnect(t, fx, LinkConfig{Propagation: time.Microsecond}, a.Port(), b.Port())
	got := 0
	a.SetHandler(func(*Frame, float64) { got++ })
	b.SetHandler(func(*Frame, float64) { got++ })
	l.SetDown(true)
	_, _ = a.Send(&Frame{Dst: "nic/b"})
	_, _ = b.Send(&Frame{Dst: "nic/a"})
	if err := fx.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("down link delivered %d frames", got)
	}
}

// deliveryTimes runs a jittered 200-frame schedule and returns each frame's
// delivery instant — the bit-level fingerprint of the link's RNG draws.
func deliveryTimes(t *testing.T, mutate func(l *Link, fx *fixture)) []sim.Time {
	t.Helper()
	fx := newFixture()
	a, b := fx.nic("a"), fx.nic("b")
	cfg := LinkConfig{
		Propagation: 500 * time.Nanosecond,
		JitterNS:    50,
		LossRNG:     fx.streams.Stream("loss/a-b"),
	}
	l := mustConnect(t, fx, cfg, a.Port(), b.Port())
	if mutate != nil {
		mutate(l, fx)
	}
	var times []sim.Time
	b.SetHandler(func(*Frame, float64) { times = append(times, fx.sched.Now()) })
	sendSchedule(t, fx, a, 200)
	if err := fx.sched.Run(); err != nil {
		t.Fatal(err)
	}
	return times
}

// TestZeroRateLossModelIsStreamInvisible pins the determinism contract: a
// dedicated loss stream means enabling a zero-rate loss model (or leaving
// LossProb at zero) yields bit-identical delivery times, because the main
// jitter stream never sees a different draw sequence.
func TestZeroRateLossModelIsStreamInvisible(t *testing.T) {
	base := deliveryTimes(t, nil)
	withModel := deliveryTimes(t, func(l *Link, _ *fixture) {
		l.SetLossModel(&GilbertElliott{}) // all-zero rates: drops nothing
	})
	if len(base) != 200 || len(withModel) != 200 {
		t.Fatalf("deliveries %d / %d, want 200 each", len(base), len(withModel))
	}
	for i := range base {
		if base[i] != withModel[i] {
			t.Fatalf("delivery %d diverged: %v vs %v (zero-rate model perturbed the stream)",
				i, base[i], withModel[i])
		}
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	fx := newFixture()
	a, b := fx.nic("a"), fx.nic("b")
	cfg := LinkConfig{Propagation: 500 * time.Nanosecond, LossRNG: fx.streams.Stream("loss")}
	l := mustConnect(t, fx, cfg, a.Port(), b.Port())
	// Heavy burst regime: long bad sojourns losing 90% of frames.
	l.SetLossModel(&GilbertElliott{BadLoss: 0.9, GoodToBad: 0.05, BadToGood: 0.1})
	got := 0
	b.SetHandler(func(*Frame, float64) { got++ })
	sendSchedule(t, fx, a, 2000)
	if err := fx.sched.Run(); err != nil {
		t.Fatal(err)
	}
	// Stationary bad-state share 0.05/(0.05+0.1) = 1/3, so expected loss is
	// about 30%; accept a broad band to stay seed-robust.
	if lost := 2000 - got; lost < 300 || lost > 1200 {
		t.Fatalf("lost %d of 2000, outside burst-loss band", lost)
	}
	if l.Lost() != uint64(2000-got) {
		t.Fatalf("Lost() = %d, delivered %d", l.Lost(), got)
	}
}

func TestDelayOverrideAsymmetry(t *testing.T) {
	fx := newFixture()
	a, b := fx.nic("a"), fx.nic("b")
	l := mustConnect(t, fx, LinkConfig{Propagation: time.Microsecond}, a.Port(), b.Port())
	l.SetDelayOverride(2*time.Microsecond, 3*time.Microsecond)

	var abAt, baAt sim.Time
	b.SetHandler(func(*Frame, float64) { abAt = fx.sched.Now() })
	a.SetHandler(func(*Frame, float64) { baAt = fx.sched.Now() })
	_, _ = a.Send(&Frame{Dst: "nic/b"})
	_, _ = b.Send(&Frame{Dst: "nic/a"})
	if err := fx.sched.Run(); err != nil {
		t.Fatal(err)
	}
	// a->b: 1µs prop + 2µs extra + 3µs asym; b->a: 1µs + 2µs.
	if abAt != sim.Time(6*time.Microsecond) {
		t.Fatalf("a->b delivered at %v, want 6µs", abAt)
	}
	if baAt != sim.Time(3*time.Microsecond) {
		t.Fatalf("b->a delivered at %v, want 3µs", baAt)
	}
	l.SetDelayOverride(0, 0)
	abAt = 0
	_, _ = a.Send(&Frame{Dst: "nic/b"})
	if err := fx.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got := abAt - sim.Time(6*time.Microsecond); got != sim.Time(time.Microsecond) {
		t.Fatalf("post-clear a->b latency %v, want 1µs", got)
	}
}

func TestBridgeFailRestore(t *testing.T) {
	fx := newFixture()
	br := fx.bridge("sw1", 2)
	a, b := fx.nic("a"), fx.nic("b")
	lc := LinkConfig{Propagation: 200 * time.Nanosecond}
	mustConnect(t, fx, lc, a.Port(), br.Port(0))
	mustConnect(t, fx, lc, b.Port(), br.Port(1))
	br.AddRoute("nic/b", 1)
	got := 0
	b.SetHandler(func(*Frame, float64) { got++ })

	br.Fail()
	if !br.Failed() {
		t.Fatal("Failed() false after Fail()")
	}
	_, _ = a.Send(&Frame{Dst: "nic/b"})
	if err := fx.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("failed bridge forwarded a frame")
	}
	if br.FaultDropped() != 1 {
		t.Fatalf("fault-dropped = %d, want 1", br.FaultDropped())
	}

	br.Restore()
	_, _ = a.Send(&Frame{Dst: "nic/b"})
	if err := fx.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("restored bridge delivered %d, want 1", got)
	}
}

// TestBridgeFailDropsResidenceFrames covers the egress-side drop point: a
// frame already inside the residence pipeline when the bridge fails must
// die at its departure instant.
func TestBridgeFailDropsResidenceFrames(t *testing.T) {
	fx := newFixture()
	br := fx.bridge("sw1", 2)
	a, b := fx.nic("a"), fx.nic("b")
	lc := LinkConfig{Propagation: 200 * time.Nanosecond}
	mustConnect(t, fx, lc, a.Port(), br.Port(0))
	mustConnect(t, fx, lc, b.Port(), br.Port(1))
	br.AddRoute("nic/b", 1)
	got := 0
	b.SetHandler(func(*Frame, float64) { got++ })
	_, _ = a.Send(&Frame{Dst: "nic/b"})
	// Residence is ~1.5µs; fail right after ingress (200ns link + ε).
	fx.sched.After(300*time.Nanosecond, func() { br.Fail() })
	if err := fx.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("frame escaped a bridge that failed mid-residence")
	}
	if br.FaultDropped() != 1 {
		t.Fatalf("fault-dropped = %d, want 1", br.FaultDropped())
	}
}

// TestLegacySharedStreamOrderPreserved guards the golden digests: without a
// dedicated loss stream and with LossProb == 0, the link must not consume
// any loss draw from the shared stream (the historical behavior the
// committed digests pin).
func TestLegacySharedStreamOrderPreserved(t *testing.T) {
	run := func(lossProb float64) []sim.Time {
		fx := newFixture()
		a, b := fx.nic("a"), fx.nic("b")
		cfg := LinkConfig{Propagation: 500 * time.Nanosecond, JitterNS: 50, LossProb: lossProb}
		mustConnect(t, fx, cfg, a.Port(), b.Port())
		var times []sim.Time
		b.SetHandler(func(*Frame, float64) { times = append(times, fx.sched.Now()) })
		sendSchedule(t, fx, a, 100)
		if err := fx.sched.Run(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	// Sanity: the shared-stream path with zero loss still delivers all
	// frames with the same jitter sequence across two identical runs.
	t1, t2 := run(0), run(0)
	if len(t1) != 100 || len(t2) != 100 {
		t.Fatalf("deliveries %d / %d, want 100", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("identical runs diverged at %d", i)
		}
	}
}

// TestLinkBindFabric pins the sim.BoundaryBinder contract on boundary
// links: the first deferred send per direction (and only the first, until
// the outbox drains) registers the link dirty, and every MinDelay-axis
// mutator — SetDelayOverride, SetWanDelay, SetDelayAttack, Restore —
// reports through the lookahead-invalidation hook.
func TestLinkBindFabric(t *testing.T) {
	fx := newFixture()
	schedB := sim.NewScheduler()
	a, b := fx.nic("a"), fx.nic("b")
	l, err := ConnectBoundary(fx.sched, schedB, fx.streams.Stream("link/a"),
		LinkConfig{Propagation: 500 * time.Nanosecond}, a.Port(), b.Port())
	if err != nil {
		t.Fatal(err)
	}
	if !l.Boundary() {
		t.Fatal("cross-scheduler link not marked as boundary")
	}
	var dirty, invalidated int
	var binder sim.BoundaryBinder = l
	binder.BindFabric(func() { dirty++ }, func() { invalidated++ })

	send := func() {
		if _, err := a.Send(&Frame{Src: "nic/a", Dst: "nic/b"}); err != nil {
			t.Fatal(err)
		}
	}
	send()
	send()
	if dirty != 1 {
		t.Fatalf("markDirty calls after two same-direction sends: %d, want 1", dirty)
	}
	var buf []sim.Deferred
	if buf = l.AppendDeferred(buf); len(buf) != 2 {
		t.Fatalf("drained %d deferred sends, want 2", len(buf))
	}
	send()
	if dirty != 2 {
		t.Fatalf("markDirty calls after drain + resend: %d, want 2", dirty)
	}

	snap := l.Snapshot()
	l.SetDelayOverride(time.Microsecond, 0)
	l.SetWanDelay(time.Microsecond, -200*time.Nanosecond)
	l.SetDelayAttack(nil)
	l.Restore(snap)
	if invalidated != 4 {
		t.Fatalf("invalidation calls after 4 delay mutations: %d, want 4", invalidated)
	}
}
