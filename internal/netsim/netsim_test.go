package netsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/sim"
)

type fixture struct {
	sched   *sim.Scheduler
	streams *sim.Streams
}

func newFixture() *fixture {
	return &fixture{sched: sim.NewScheduler(), streams: sim.NewStreams(7)}
}

func (fx *fixture) phc(name string, staticPPB float64, jitterNS float64) *clock.PHC {
	osc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: staticPPB},
		fx.streams.Stream("osc/"+name), fx.sched.Now())
	return clock.NewPHC(fx.sched, osc, fx.streams.Stream("ts/"+name),
		clock.PHCConfig{TimestampJitterNS: jitterNS})
}

func (fx *fixture) nic(name string) *NIC {
	return NewNIC(name, fx.sched, fx.phc(name, 0, 0))
}

func mustConnect(t *testing.T, fx *fixture, cfg LinkConfig, a, b *Port) *Link {
	t.Helper()
	l, err := Connect(fx.sched, fx.streams.Stream("link/"+a.Name), cfg, a, b)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	return l
}

func TestLinkDelivery(t *testing.T) {
	fx := newFixture()
	a, b := fx.nic("a"), fx.nic("b")
	mustConnect(t, fx, LinkConfig{Propagation: 500 * time.Nanosecond}, a.Port(), b.Port())

	var gotAt sim.Time
	var gotFrame *Frame
	b.SetHandler(func(f *Frame, rxTS float64) {
		gotAt = fx.sched.Now()
		gotFrame = f
	})
	if _, err := a.Send(&Frame{Src: "nic/a", Dst: "nic/b", Payload: "hi"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := fx.sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if gotFrame == nil {
		t.Fatal("frame not delivered")
	}
	if gotAt != sim.Time(500) {
		t.Fatalf("delivered at %v, want 500ns", gotAt)
	}
	if got := gotFrame.PathLatency(gotAt); got != 500*time.Nanosecond {
		t.Fatalf("path latency %v, want 500ns", got)
	}
}

func TestLinkJitterBounds(t *testing.T) {
	fx := newFixture()
	a, b := fx.nic("a"), fx.nic("b")
	mustConnect(t, fx, LinkConfig{Propagation: 500 * time.Nanosecond, JitterNS: 50},
		a.Port(), b.Port())
	var latencies []time.Duration
	b.SetHandler(func(f *Frame, _ float64) {
		latencies = append(latencies, f.PathLatency(fx.sched.Now()))
	})
	for i := 0; i < 500; i++ {
		fx.sched.After(time.Duration(i)*time.Microsecond, func() {
			_, _ = a.Send(&Frame{Src: "nic/a", Dst: "nic/b"})
		})
	}
	if err := fx.sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(latencies) != 500 {
		t.Fatalf("delivered %d, want 500", len(latencies))
	}
	var varies bool
	for _, l := range latencies {
		if l < 250*time.Nanosecond {
			t.Fatalf("latency %v below floor", l)
		}
		if l != latencies[0] {
			varies = true
		}
	}
	if !varies {
		t.Fatal("jitter had no effect")
	}
}

func TestNICDownIsSilent(t *testing.T) {
	fx := newFixture()
	a, b := fx.nic("a"), fx.nic("b")
	mustConnect(t, fx, LinkConfig{Propagation: time.Microsecond}, a.Port(), b.Port())
	received := 0
	b.SetHandler(func(*Frame, float64) { received++ })

	b.SetDown(true)
	if _, err := a.Send(&Frame{Dst: "nic/b"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := fx.sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if received != 0 {
		t.Fatal("down NIC received a frame")
	}

	a.SetDown(true)
	if _, err := a.Send(&Frame{Dst: "nic/b"}); !errors.Is(err, ErrNICDown) {
		t.Fatalf("send on down NIC: err = %v, want ErrNICDown", err)
	}
}

func TestSendAtPHCLaunchTime(t *testing.T) {
	fx := newFixture()
	a, b := fx.nic("a"), fx.nic("b")
	// Give the sender a fast clock so the PHC→true conversion is exercised.
	a.phc.AdjFreq(10000) // +10 ppm
	mustConnect(t, fx, LinkConfig{Propagation: 100 * time.Nanosecond}, a.Port(), b.Port())
	b.SetHandler(func(*Frame, float64) {})

	var txTS float64
	launch := 1e6 // 1 ms on a's PHC
	if err := a.SendAtPHC(launch, &Frame{Dst: "nic/b"}, func(_ any, ts float64) { txTS = ts }); err != nil {
		t.Fatalf("send at: %v", err)
	}
	if err := fx.sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if math.Abs(txTS-launch) > 2 {
		t.Fatalf("tx timestamp %v, want launch time %v (gate accuracy)", txTS, launch)
	}
}

func TestSendAtPHCDeadlineMiss(t *testing.T) {
	fx := newFixture()
	a, b := fx.nic("a"), fx.nic("b")
	mustConnect(t, fx, LinkConfig{Propagation: 100 * time.Nanosecond}, a.Port(), b.Port())
	if err := fx.sched.RunUntil(sim.Time(time.Millisecond)); err != nil {
		t.Fatalf("run: %v", err)
	}
	err := a.SendAtPHC(1e3, &Frame{Dst: "nic/b"}, nil) // 1 µs: already past
	if !errors.Is(err, ErrLaunchDeadlineMissed) {
		t.Fatalf("err = %v, want ErrLaunchDeadlineMissed", err)
	}
}

func (fx *fixture) bridge(name string, ports int) *Bridge {
	cfg := BridgeConfig{
		Ports: ports,
		Residence: map[int]ResidenceModel{
			PriorityBestEffort: {Base: 1500 * time.Nanosecond, JitterNS: 150},
		},
	}
	return NewBridge(name, fx.sched, fx.streams.Stream("br/"+name),
		fx.phc(name, 3000, 8), cfg)
}

func TestBridgeUnicastRoute(t *testing.T) {
	fx := newFixture()
	br := fx.bridge("sw1", 3)
	a, b, c := fx.nic("a"), fx.nic("b"), fx.nic("c")
	lc := LinkConfig{Propagation: 200 * time.Nanosecond}
	mustConnect(t, fx, lc, a.Port(), br.Port(0))
	mustConnect(t, fx, lc, b.Port(), br.Port(1))
	mustConnect(t, fx, lc, c.Port(), br.Port(2))
	br.AddRoute("nic/b", 1)

	var bGot, cGot int
	b.SetHandler(func(*Frame, float64) { bGot++ })
	c.SetHandler(func(*Frame, float64) { cGot++ })

	if _, err := a.Send(&Frame{Src: "nic/a", Dst: "nic/b"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := fx.sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if bGot != 1 || cGot != 0 {
		t.Fatalf("b got %d, c got %d; want 1, 0", bGot, cGot)
	}
}

func TestBridgeMulticastFloodExcludesIngress(t *testing.T) {
	fx := newFixture()
	br := fx.bridge("sw1", 3)
	a, b, c := fx.nic("a"), fx.nic("b"), fx.nic("c")
	lc := LinkConfig{Propagation: 200 * time.Nanosecond}
	mustConnect(t, fx, lc, a.Port(), br.Port(0))
	mustConnect(t, fx, lc, b.Port(), br.Port(1))
	mustConnect(t, fx, lc, c.Port(), br.Port(2))
	for i := 0; i < 3; i++ {
		br.AddGroupMember("mc/measure", i)
	}
	var aGot, bGot, cGot int
	a.SetHandler(func(*Frame, float64) { aGot++ })
	b.SetHandler(func(*Frame, float64) { bGot++ })
	c.SetHandler(func(*Frame, float64) { cGot++ })
	if _, err := a.Send(&Frame{Src: "nic/a", Dst: "mc/measure", Priority: PriorityMeasure}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := fx.sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if aGot != 0 || bGot != 1 || cGot != 1 {
		t.Fatalf("got a=%d b=%d c=%d, want 0,1,1", aGot, bGot, cGot)
	}
}

func TestBridgeResidenceDelaysFrame(t *testing.T) {
	fx := newFixture()
	br := fx.bridge("sw1", 2)
	a, b := fx.nic("a"), fx.nic("b")
	lc := LinkConfig{Propagation: 200 * time.Nanosecond}
	mustConnect(t, fx, lc, a.Port(), br.Port(0))
	mustConnect(t, fx, lc, b.Port(), br.Port(1))
	br.AddRoute("nic/b", 1)
	var latency time.Duration
	b.SetHandler(func(f *Frame, _ float64) { latency = f.PathLatency(fx.sched.Now()) })
	if _, err := a.Send(&Frame{Dst: "nic/b"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := fx.sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	// 2 links à 200 ns + ~1.5 µs residence.
	if latency < 1800*time.Nanosecond || latency > 4*time.Microsecond {
		t.Fatalf("latency %v outside expected residence band", latency)
	}
}

func TestBridgeHookConsumesFrame(t *testing.T) {
	fx := newFixture()
	br := fx.bridge("sw1", 2)
	a, b := fx.nic("a"), fx.nic("b")
	lc := LinkConfig{Propagation: 200 * time.Nanosecond}
	mustConnect(t, fx, lc, a.Port(), br.Port(0))
	mustConnect(t, fx, lc, b.Port(), br.Port(1))
	br.AddRoute("nic/b", 1)
	hook := &captureHook{}
	br.SetHook(hook)
	delivered := 0
	b.SetHandler(func(*Frame, float64) { delivered++ })
	if _, err := a.Send(&Frame{Dst: "nic/b", Priority: PriorityPTP}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := fx.sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if hook.calls != 1 {
		t.Fatalf("hook calls = %d, want 1", hook.calls)
	}
	if delivered != 0 {
		t.Fatal("hook-consumed frame was also forwarded")
	}
}

type captureHook struct{ calls int }

func (h *captureHook) Handle(b *Bridge, ingress int, f *Frame, rxTS float64) bool {
	if f.Priority == PriorityPTP {
		h.calls++
		return true
	}
	return false
}

func TestResidenceModelDrawProperty(t *testing.T) {
	rng := sim.NewStreams(3).Stream("res")
	f := func(baseUS uint8, jitter uint8, tailPermille uint8) bool {
		m := ResidenceModel{
			Base:     time.Duration(baseUS) * time.Microsecond,
			JitterNS: float64(jitter),
			TailProb: float64(tailPermille%10) / 1000,
			TailMin:  time.Microsecond,
			TailMax:  4 * time.Microsecond,
		}
		for i := 0; i < 50; i++ {
			d := m.Draw(rng)
			if d < m.Base {
				return false // jitter is half-normal: never below base
			}
			maxExpected := m.Base + time.Duration(8*m.JitterNS) + m.TailMax
			if d > maxExpected {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectRejectsDoubleAttach(t *testing.T) {
	fx := newFixture()
	a, b, c := fx.nic("a"), fx.nic("b"), fx.nic("c")
	mustConnect(t, fx, LinkConfig{Propagation: time.Microsecond}, a.Port(), b.Port())
	if _, err := Connect(fx.sched, nil, LinkConfig{}, a.Port(), c.Port()); err == nil {
		t.Fatal("Connect allowed double attachment")
	}
}

func TestAddressMulticast(t *testing.T) {
	if !Address("mc/measure").IsMulticast() {
		t.Fatal("mc/measure should be multicast")
	}
	if Address("nic/dev1/1").IsMulticast() {
		t.Fatal("nic address misclassified as multicast")
	}
}

// fixedEgress is a stub scheduler departing every frame a fixed delay
// after arrival, or rejecting everything.
type fixedEgress struct {
	delay  time.Duration
	reject bool
	calls  int
}

func (e *fixedEgress) Enqueue(now sim.Time, priority, bytes int) (sim.Time, error) {
	e.calls++
	if e.reject {
		return 0, errors.New("no window")
	}
	return now.Add(e.delay), nil
}

func TestBridgeEgressScheduler(t *testing.T) {
	fx := newFixture()
	br := fx.bridge("sw1", 2)
	a, b := fx.nic("a"), fx.nic("b")
	lc := LinkConfig{Propagation: 200 * time.Nanosecond}
	mustConnect(t, fx, lc, a.Port(), br.Port(0))
	mustConnect(t, fx, lc, b.Port(), br.Port(1))
	br.AddRoute("nic/b", 1)
	es := &fixedEgress{delay: 5 * time.Microsecond}
	br.SetEgressScheduler(1, es)

	var deliveredAt sim.Time
	b.SetHandler(func(f *Frame, _ float64) { deliveredAt = fx.sched.Now() })
	if _, err := a.Send(&Frame{Dst: "nic/b", Bytes: 500}); err != nil {
		t.Fatal(err)
	}
	if err := fx.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if es.calls != 1 {
		t.Fatalf("scheduler calls = %d", es.calls)
	}
	// 200ns link + 600ns processing + 5µs shaper + 200ns link.
	want := sim.Time(200 + 600 + 5000 + 200)
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestBridgeEgressSchedulerDrops(t *testing.T) {
	fx := newFixture()
	br := fx.bridge("sw1", 2)
	a, b := fx.nic("a"), fx.nic("b")
	lc := LinkConfig{Propagation: 200 * time.Nanosecond}
	mustConnect(t, fx, lc, a.Port(), br.Port(0))
	mustConnect(t, fx, lc, b.Port(), br.Port(1))
	br.AddRoute("nic/b", 1)
	br.SetEgressScheduler(1, &fixedEgress{reject: true})
	got := 0
	b.SetHandler(func(*Frame, float64) { got++ })
	if _, err := a.Send(&Frame{Dst: "nic/b"}); err != nil {
		t.Fatal(err)
	}
	if err := fx.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("rejected frame delivered")
	}
	if br.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", br.Dropped())
	}
}

func TestTrafficSource(t *testing.T) {
	fx := newFixture()
	a, b := fx.nic("a"), fx.nic("b")
	mustConnect(t, fx, LinkConfig{Propagation: time.Microsecond}, a.Port(), b.Port())
	var got int
	var bytes int
	b.SetHandler(func(f *Frame, _ float64) {
		got++
		bytes = f.Bytes
	})
	src, err := NewTrafficSource(a, fx.sched, fx.streams.Stream("t"), TrafficConfig{
		Dst:      "nic/b",
		Bytes:    1500,
		Burst:    3,
		Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Start(); err != nil {
		t.Fatal(err)
	}
	if err := src.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	if err := fx.sched.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	src.Stop()
	// ~100 bursts of 3 (interval jittered ±50%).
	if got < 150 || got > 650 {
		t.Fatalf("delivered %d frames", got)
	}
	if bytes != 1500 {
		t.Fatalf("frame size %d", bytes)
	}
	if src.Sent() != uint64(got) {
		t.Fatalf("sent %d vs delivered %d", src.Sent(), got)
	}
	after := src.Sent()
	if err := fx.sched.RunUntil(sim.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if src.Sent() != after {
		t.Fatal("source kept sending after Stop")
	}
	if _, err := NewTrafficSource(nil, fx.sched, nil, TrafficConfig{}); err == nil {
		t.Fatal("nil NIC accepted")
	}
}
