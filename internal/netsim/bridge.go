package netsim

import (
	"fmt"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/sim"
)

// ResidenceModel describes the queueing + store-and-forward delay a frame
// experiences inside a bridge, per priority class. The distribution is a
// base latency plus half-normal jitter plus a rare heavy tail (bursty
// best-effort interference), which is what produces the multi-microsecond
// spread between minimum and maximum path latencies (the paper's reading
// error E ≈ 5 µs) while typical latencies remain tightly grouped.
type ResidenceModel struct {
	Base     time.Duration
	JitterNS float64 // half-normal sigma
	TailProb float64
	TailMin  time.Duration
	TailMax  time.Duration
}

// Draw samples a residence time.
func (m ResidenceModel) Draw(rng sim.RNG) time.Duration {
	d := float64(m.Base)
	if rng != nil {
		if m.JitterNS > 0 {
			j := rng.NormFloat64() * m.JitterNS
			if j < 0 {
				j = -j
			}
			d += j
		}
		if m.TailProb > 0 && rng.Float64() < m.TailProb {
			d += float64(m.TailMin) + rng.Float64()*float64(m.TailMax-m.TailMin)
		}
	}
	return time.Duration(d)
}

// RelayHook lets a protocol layer (the gPTP time-aware bridge logic) claim
// frames before generic forwarding. Handle returns true if the frame was
// consumed. Handle must not retain f after it returns — the bridge recycles
// pool-owned frames once a hook consumes them; payloads may be retained,
// they are never pooled.
type RelayHook interface {
	Handle(b *Bridge, ingress int, f *Frame, rxTS float64) bool
}

// BridgeConfig configures a TSN bridge.
type BridgeConfig struct {
	Ports int
	// Residence maps priority class to residence model. Missing classes
	// fall back to PriorityBestEffort's model.
	Residence map[int]ResidenceModel
}

// Bridge is an integrated TSN switch: static unicast routes, static
// multicast membership (the measurement VLAN), a free-running local clock
// used for residence-time measurement, and a relay hook for gPTP.
type Bridge struct {
	name  string
	sched *sim.Scheduler
	rng   sim.RNG
	cfg   BridgeConfig
	clk   *clock.PHC
	ports []Port

	unicast map[Address]int
	groups  map[Address][]int
	hook    RelayHook
	egress  map[int]EgressScheduler
	// txFns holds one prebound transmit callback per port so the generic
	// forwarding path schedules through AtArg/AfterArg without allocating
	// a closure per frame. txAtFn is the equivalent runner for TransmitAt
	// jobs (egress-timestamped transmissions carrying an onTx callback).
	txFns  []func(any)
	txAtFn func(any)

	forwarded uint64
	dropped   uint64

	// failed marks the bridge dead (chaos engine): it drops everything at
	// ingress and egress until restored.
	failed      bool
	faultedDrop uint64
}

// EgressScheduler computes frame departure instants for a shaped egress
// port — the hook for an 802.1Qbv time-aware shaper. Enqueue returns when
// the frame's transmission completes; an error drops the frame.
type EgressScheduler interface {
	Enqueue(now sim.Time, priority, bytes int) (sim.Time, error)
}

// NewBridge creates a bridge with cfg.Ports ports. clk is the bridge's own
// free-running PHC used for ingress/egress timestamping.
func NewBridge(name string, sched *sim.Scheduler, rng sim.RNG, clk *clock.PHC, cfg BridgeConfig) *Bridge {
	b := &Bridge{
		name:    name,
		sched:   sched,
		rng:     rng,
		cfg:     cfg,
		clk:     clk,
		unicast: make(map[Address]int),
		groups:  make(map[Address][]int),
	}
	b.ports = make([]Port, cfg.Ports)
	b.txFns = make([]func(any), cfg.Ports)
	for i := range b.ports {
		b.ports[i] = Port{Name: fmt.Sprintf("%s/p%d", name, i), Owner: b, Index: i}
		i := i
		b.txFns[i] = func(x any) { b.Transmit(i, x.(*Frame)) }
	}
	b.txAtFn = func(x any) { b.fireTxAt(x.(*txAtJob)) }
	return b
}

// DeviceName implements Device.
func (b *Bridge) DeviceName() string { return b.name }

// Port returns port i for wiring.
func (b *Bridge) Port(i int) *Port { return &b.ports[i] }

// NumPorts reports the number of ports.
func (b *Bridge) NumPorts() int { return len(b.ports) }

// Clock returns the bridge's free-running PHC.
func (b *Bridge) Clock() *clock.PHC { return b.clk }

// SetHook installs the gPTP relay hook.
func (b *Bridge) SetHook(h RelayHook) { b.hook = h }

// SetEgressScheduler installs a time-aware shaper on one egress port;
// frames leaving that port are scheduled by it instead of the stochastic
// residence model.
func (b *Bridge) SetEgressScheduler(port int, es EgressScheduler) {
	if b.egress == nil {
		b.egress = make(map[int]EgressScheduler)
	}
	b.egress[port] = es
}

// Dropped reports frames discarded by egress schedulers (no gate window).
func (b *Bridge) Dropped() uint64 { return b.dropped }

// FaultDropped reports frames discarded because the bridge was failed.
func (b *Bridge) FaultDropped() uint64 { return b.faultedDrop }

// Fail kills the bridge: every frame arriving at ingress or reaching
// egress while failed is dropped (and recycled to the frame pool).
func (b *Bridge) Fail() { b.failed = true }

// Restore brings a failed bridge back. Frames that entered the residence
// pipeline before the failure and whose departure lands after the
// restoration are transmitted normally — an approximation that is
// harmless because residence times are microseconds while injected
// outages are seconds; everything that arrived or departed during the
// outage itself was dropped.
func (b *Bridge) Restore() { b.failed = false }

// Failed reports whether the bridge is currently failed.
func (b *Bridge) Failed() bool { return b.failed }

// AddRoute installs a static unicast route: frames for dst egress on port.
func (b *Bridge) AddRoute(dst Address, port int) { b.unicast[dst] = port }

// AddGroupMember adds a port to a multicast group's membership.
func (b *Bridge) AddGroupMember(group Address, port int) {
	b.groups[group] = append(b.groups[group], port)
}

// Forwarded reports how many frames the bridge has forwarded.
func (b *Bridge) Forwarded() uint64 { return b.forwarded }

// Receive implements Device: the relay hook gets first claim; otherwise the
// frame is forwarded per static routes after a residence delay.
func (b *Bridge) Receive(p *Port, f *Frame) {
	if b.failed {
		b.faultedDrop++
		f.release()
		return
	}
	rxTS := b.clk.Timestamp()
	if b.hook != nil && b.hook.Handle(b, p.Index, f, rxTS) {
		f.release()
		return
	}
	b.forward(p.Index, f)
}

// forward applies static unicast/multicast forwarding with residence delay.
func (b *Bridge) forward(ingress int, f *Frame) {
	if f.Dst.IsMulticast() {
		for _, egress := range b.groups[f.Dst] {
			if egress == ingress {
				continue
			}
			b.TransmitAfterResidence(egress, f.Clone())
		}
		// The original frame dies here; only its clones travel on.
		f.release()
		return
	}
	egress, ok := b.unicast[f.Dst]
	if !ok || egress == ingress {
		f.release()
		return // no route: drop (static config covers all legitimate traffic)
	}
	b.TransmitAfterResidence(egress, f)
}

// ResidenceFor samples a residence time for the frame's priority class.
func (b *Bridge) ResidenceFor(f *Frame) time.Duration {
	m, ok := b.cfg.Residence[f.Priority]
	if !ok {
		m = b.cfg.Residence[PriorityBestEffort]
	}
	return m.Draw(b.rng)
}

// TransmitAfterResidence schedules the frame on egress after a sampled
// residence delay, or through the port's time-aware shaper when one is
// installed (a fixed store-and-forward processing delay plus the shaper's
// gate/queue schedule).
func (b *Bridge) TransmitAfterResidence(egress int, f *Frame) {
	if es, ok := b.egress[egress]; ok {
		const processing = 600 * time.Nanosecond // lookup + store-and-forward
		departAt, err := es.Enqueue(b.sched.Now().Add(processing), f.Priority, f.Bytes)
		if err != nil {
			b.dropped++
			f.release()
			return
		}
		b.sched.AtArg(departAt, b.txFns[egress], f)
		return
	}
	d := b.ResidenceFor(f)
	b.sched.AfterArg(d, b.txFns[egress], f)
}

// Transmit sends the frame out of the given port immediately, returning the
// bridge-clock egress timestamp. Frames on unconnected ports are dropped.
func (b *Bridge) Transmit(egress int, f *Frame) (txTS float64) {
	txTS = b.clk.Timestamp()
	if b.failed {
		b.faultedDrop++
		f.release()
		return txTS
	}
	p := &b.ports[egress]
	if !p.Connected() {
		f.release()
		return txTS
	}
	f.Hops++
	b.forwarded++
	p.link.Send(p, f)
	return txTS
}

// txAtJob is a queued TransmitAt transmission. Like the NIC's etfJob, it is
// an arg descriptor so the snapshot engine can deep-copy the frame; onTx
// closures must capture only snapshot-restored components or values never
// mutated after scheduling.
type txAtJob struct {
	egress int
	f      *Frame
	onTx   func(payload any, txTS float64)
}

// CloneForSnapshot implements sim.Cloner.
func (j *txAtJob) CloneForSnapshot() any {
	c := *j
	c.f = j.f.CloneForSnapshot().(*Frame)
	return &c
}

// fireTxAt transmits a queued TransmitAt job. The payload is captured
// before Transmit because a drop recycles (zeroes) the frame; payloads are
// never pooled, so the reference stays valid for onTx.
func (b *Bridge) fireTxAt(j *txAtJob) {
	payload := j.f.Payload
	ts := b.Transmit(j.egress, j.f)
	if j.onTx != nil {
		j.onTx(payload, ts)
	}
}

// TransmitAt schedules the frame on egress at true-time delay d and invokes
// onTx with the frame's payload and the egress timestamp when it leaves —
// used by the gPTP relay to measure residence time on the egress side. On a
// shaped port the shaper's schedule replaces d (the relay's residence
// draw): the measured egress timestamp still captures the true departure,
// so the correction field remains exact either way.
func (b *Bridge) TransmitAt(egress int, d time.Duration, f *Frame, onTx func(payload any, txTS float64)) {
	if es, ok := b.egress[egress]; ok {
		const processing = 600 * time.Nanosecond
		departAt, err := es.Enqueue(b.sched.Now().Add(processing), f.Priority, f.Bytes)
		if err != nil {
			b.dropped++
			f.release()
			return
		}
		b.sched.AtArg(departAt, b.txAtFn, &txAtJob{egress: egress, f: f, onTx: onTx})
		return
	}
	b.sched.AfterArg(d, b.txAtFn, &txAtJob{egress: egress, f: f, onTx: onTx})
}

// bridgeSnapshot captures a bridge's mutable state for warm-start forks.
// Routing tables, group membership, the relay hook and egress shapers are
// build-time configuration and are not captured.
type bridgeSnapshot struct {
	forwarded   uint64
	dropped     uint64
	failed      bool
	faultedDrop uint64
	phc         any
}

// Snapshot captures the bridge's state for RestoreSnapshot.
func (b *Bridge) Snapshot() any {
	return &bridgeSnapshot{
		forwarded:   b.forwarded,
		dropped:     b.dropped,
		failed:      b.failed,
		faultedDrop: b.faultedDrop,
		phc:         b.clk.Snapshot(),
	}
}

// RestoreSnapshot rewinds the bridge to a Snapshot. (The name avoids the
// chaos engine's Restore(), which un-fails a failed bridge.)
func (b *Bridge) RestoreSnapshot(snap any) {
	sn := snap.(*bridgeSnapshot)
	b.forwarded = sn.forwarded
	b.dropped = sn.dropped
	b.failed = sn.failed
	b.faultedDrop = sn.faultedDrop
	b.clk.Restore(sn.phc)
}
