package netsim

import (
	"errors"
	"fmt"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/sim"
)

// ErrLaunchDeadlineMissed is returned by SendAtPHC when the requested launch
// time already lies in the past of the NIC's PHC — the ETF queuing
// discipline drops such frames, one of the transient software faults the
// paper observes (§III-C: "invalid Sync packet transmission deadlines
// passed to the kernel").
var ErrLaunchDeadlineMissed = errors.New("netsim: ETF launch deadline missed")

// ErrNICDown is returned when transmitting on a NIC whose owning VM is
// fail-silent.
var ErrNICDown = errors.New("netsim: nic down")

// RxHandler consumes received frames together with the PHC hardware receive
// timestamp (nanoseconds on the NIC's PHC timescale).
type RxHandler func(f *Frame, rxTS float64)

// NIC is a network interface with a PHC and hardware timestamping, modelled
// on the Intel i210 (launch-time capable). Each clock-synchronization VM
// owns exactly one passthrough NIC.
type NIC struct {
	name    string
	sched   *sim.Scheduler
	phc     *clock.PHC
	port    Port
	handler RxHandler
	down    bool
	// etfFn is the prebound ETF launch runner; SendAtPHC schedules it with
	// an *etfJob arg so queued launches survive a warm-start snapshot.
	etfFn func(any)

	txCount, rxCount uint64
}

// NewNIC creates a NIC with the given PHC.
func NewNIC(name string, sched *sim.Scheduler, phc *clock.PHC) *NIC {
	n := &NIC{name: name, sched: sched, phc: phc}
	n.port = Port{Name: name + "/p0", Owner: n, Index: 0}
	n.etfFn = func(x any) { n.fireETF(x.(*etfJob)) }
	return n
}

// DeviceName implements Device.
func (n *NIC) DeviceName() string { return n.name }

// Port returns the NIC's single port for wiring.
func (n *NIC) Port() *Port { return &n.port }

// PHC returns the NIC's hardware clock.
func (n *NIC) PHC() *clock.PHC { return n.phc }

// SetHandler installs the receive path into the owning VM's network stack.
func (n *NIC) SetHandler(h RxHandler) { n.handler = h }

// SetDown marks the NIC (and its VM) fail-silent: all transmission and
// reception stops without any error indication to peers.
func (n *NIC) SetDown(down bool) { n.down = down }

// Down reports whether the NIC is fail-silent.
func (n *NIC) Down() bool { return n.down }

// Counters reports frames transmitted and received, for diagnostics.
func (n *NIC) Counters() (tx, rx uint64) { return n.txCount, n.rxCount }

// Receive implements Device: it timestamps the frame with the PHC and hands
// it to the VM's stack. A down NIC drops silently. A NIC is a frame's final
// destination, so pool-owned frames are recycled once the handler returns —
// handlers receive the frame synchronously and may keep its payload, but
// must not retain the *Frame itself.
func (n *NIC) Receive(_ *Port, f *Frame) {
	if n.down || n.handler == nil {
		f.release()
		return
	}
	n.rxCount++
	n.handler(f, n.phc.Timestamp())
	f.release()
}

// Send transmits a frame immediately and returns the hardware transmit
// timestamp.
func (n *NIC) Send(f *Frame) (txTS float64, err error) {
	if n.down {
		return 0, ErrNICDown
	}
	if !n.port.Connected() {
		return 0, fmt.Errorf("netsim: nic %s not connected", n.name)
	}
	f.SentAt = n.sched.Now()
	txTS = n.phc.Timestamp()
	n.txCount++
	n.port.link.Send(&n.port, f)
	return txTS, nil
}

// etfJob is a queued ETF launch. It rides the scheduler as an arg
// descriptor rather than a closure so the snapshot engine can deep-copy
// the frame; onTx closures must capture only snapshot-restored components
// or values never mutated after scheduling (see sim.Cloner).
type etfJob struct {
	f    *Frame
	onTx func(payload any, txTS float64)
}

// CloneForSnapshot implements sim.Cloner.
func (j *etfJob) CloneForSnapshot() any {
	c := *j
	c.f = j.f.CloneForSnapshot().(*Frame)
	return &c
}

// fireETF launches a queued ETF frame. The payload is captured before Send
// because the link may drop the frame and recycle it (zeroing the struct);
// payloads are never pooled, so the reference stays valid for onTx.
func (n *NIC) fireETF(j *etfJob) {
	if n.down {
		return
	}
	payload := j.f.Payload
	ts, err := n.Send(j.f)
	if err != nil {
		return
	}
	if j.onTx != nil {
		j.onTx(payload, ts)
	}
}

// SendAtPHC enqueues a frame into the ETF launch-time queue: it is
// transmitted when the NIC's PHC reaches launchPHC. onTx, if non-nil, is
// invoked at transmission with the frame's payload and the hardware
// transmit timestamp (the launch-time gate makes it essentially equal to
// launchPHC plus timestamp jitter); onTx runs even if the link then drops
// the frame — the sender cannot observe in-flight loss. A launch time in
// the past returns ErrLaunchDeadlineMissed and the frame is dropped, as
// the ETF qdisc does.
func (n *NIC) SendAtPHC(launchPHC float64, f *Frame, onTx func(payload any, txTS float64)) error {
	if n.down {
		return ErrNICDown
	}
	nowPHC := n.phc.Now()
	if launchPHC < nowPHC {
		return ErrLaunchDeadlineMissed
	}
	wait := n.trueDelayUntilPHC(launchPHC)
	n.sched.AfterArg(wait, n.etfFn, &etfJob{f: f, onTx: onTx})
	return nil
}

// nicSnapshot captures a NIC's mutable state for warm-start forks.
type nicSnapshot struct {
	down             bool
	txCount, rxCount uint64
	phc              any
}

// Snapshot implements sim.Snapshotter.
func (n *NIC) Snapshot() any {
	return &nicSnapshot{down: n.down, txCount: n.txCount, rxCount: n.rxCount, phc: n.phc.Snapshot()}
}

// Restore implements sim.Snapshotter.
func (n *NIC) Restore(snap any) {
	sn := snap.(*nicSnapshot)
	n.down = sn.down
	n.txCount = sn.txCount
	n.rxCount = sn.rxCount
	n.phc.Restore(sn.phc)
}

// trueDelayUntilPHC converts a PHC-timescale deadline into a true-time wait
// using the PHC's current rate. Clock reads are lazy and must stay monotone,
// so the conversion is analytic rather than probing future reads; frequency
// wander over the (sub-second) wait contributes sub-nanosecond error.
func (n *NIC) trueDelayUntilPHC(targetPHC float64) time.Duration {
	deltaPHC := targetPHC - n.phc.Now()
	if deltaPHC <= 0 {
		return 0
	}
	rate := 1 + n.phc.RatePPBVsTrue()*1e-9
	return time.Duration(deltaPHC / rate)
}
