package netsim

import (
	"errors"
	"fmt"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/sim"
)

// ErrLaunchDeadlineMissed is returned by SendAtPHC when the requested launch
// time already lies in the past of the NIC's PHC — the ETF queuing
// discipline drops such frames, one of the transient software faults the
// paper observes (§III-C: "invalid Sync packet transmission deadlines
// passed to the kernel").
var ErrLaunchDeadlineMissed = errors.New("netsim: ETF launch deadline missed")

// ErrNICDown is returned when transmitting on a NIC whose owning VM is
// fail-silent.
var ErrNICDown = errors.New("netsim: nic down")

// RxHandler consumes received frames together with the PHC hardware receive
// timestamp (nanoseconds on the NIC's PHC timescale).
type RxHandler func(f *Frame, rxTS float64)

// NIC is a network interface with a PHC and hardware timestamping, modelled
// on the Intel i210 (launch-time capable). Each clock-synchronization VM
// owns exactly one passthrough NIC.
type NIC struct {
	name    string
	sched   *sim.Scheduler
	phc     *clock.PHC
	port    Port
	handler RxHandler
	down    bool

	txCount, rxCount uint64
}

// NewNIC creates a NIC with the given PHC.
func NewNIC(name string, sched *sim.Scheduler, phc *clock.PHC) *NIC {
	n := &NIC{name: name, sched: sched, phc: phc}
	n.port = Port{Name: name + "/p0", Owner: n, Index: 0}
	return n
}

// DeviceName implements Device.
func (n *NIC) DeviceName() string { return n.name }

// Port returns the NIC's single port for wiring.
func (n *NIC) Port() *Port { return &n.port }

// PHC returns the NIC's hardware clock.
func (n *NIC) PHC() *clock.PHC { return n.phc }

// SetHandler installs the receive path into the owning VM's network stack.
func (n *NIC) SetHandler(h RxHandler) { n.handler = h }

// SetDown marks the NIC (and its VM) fail-silent: all transmission and
// reception stops without any error indication to peers.
func (n *NIC) SetDown(down bool) { n.down = down }

// Down reports whether the NIC is fail-silent.
func (n *NIC) Down() bool { return n.down }

// Counters reports frames transmitted and received, for diagnostics.
func (n *NIC) Counters() (tx, rx uint64) { return n.txCount, n.rxCount }

// Receive implements Device: it timestamps the frame with the PHC and hands
// it to the VM's stack. A down NIC drops silently. A NIC is a frame's final
// destination, so pool-owned frames are recycled once the handler returns —
// handlers receive the frame synchronously and may keep its payload, but
// must not retain the *Frame itself.
func (n *NIC) Receive(_ *Port, f *Frame) {
	if n.down || n.handler == nil {
		f.release()
		return
	}
	n.rxCount++
	n.handler(f, n.phc.Timestamp())
	f.release()
}

// Send transmits a frame immediately and returns the hardware transmit
// timestamp.
func (n *NIC) Send(f *Frame) (txTS float64, err error) {
	if n.down {
		return 0, ErrNICDown
	}
	if !n.port.Connected() {
		return 0, fmt.Errorf("netsim: nic %s not connected", n.name)
	}
	f.SentAt = n.sched.Now()
	txTS = n.phc.Timestamp()
	n.txCount++
	n.port.link.Send(&n.port, f)
	return txTS, nil
}

// SendAtPHC enqueues a frame into the ETF launch-time queue: it is
// transmitted when the NIC's PHC reaches launchPHC. onTx, if non-nil, is
// invoked at transmission with the hardware transmit timestamp (the
// launch-time gate makes it essentially equal to launchPHC plus timestamp
// jitter). A launch time in the past returns ErrLaunchDeadlineMissed and
// the frame is dropped, as the ETF qdisc does.
func (n *NIC) SendAtPHC(launchPHC float64, f *Frame, onTx func(txTS float64)) error {
	if n.down {
		return ErrNICDown
	}
	nowPHC := n.phc.Now()
	if launchPHC < nowPHC {
		return ErrLaunchDeadlineMissed
	}
	wait := n.trueDelayUntilPHC(launchPHC)
	n.sched.After(wait, func() {
		if n.down {
			return
		}
		ts, err := n.Send(f)
		if err != nil {
			return
		}
		if onTx != nil {
			onTx(ts)
		}
	})
	return nil
}

// trueDelayUntilPHC converts a PHC-timescale deadline into a true-time wait
// using the PHC's current rate. Clock reads are lazy and must stay monotone,
// so the conversion is analytic rather than probing future reads; frequency
// wander over the (sub-second) wait contributes sub-nanosecond error.
func (n *NIC) trueDelayUntilPHC(targetPHC float64) time.Duration {
	deltaPHC := targetPHC - n.phc.Now()
	if deltaPHC <= 0 {
		return 0
	}
	rate := 1 + n.phc.RatePPBVsTrue()*1e-9
	return time.Duration(deltaPHC / rate)
}
