package netsim

import (
	"testing"
	"time"

	"gptpfta/internal/sim"
)

// fuzzDelayAttack is an adversarial DelayAttack implementation for the
// fuzzer: it targets PTP-priority frames in direction 0 and may return a
// negative value, which the link must clamp (the DelayAttack contract says
// attackers only ever add latency).
type fuzzDelayAttack struct{ delayNS float64 }

func (a fuzzDelayAttack) ExtraDelayNS(f *Frame, dir int) float64 {
	if dir != 0 || f == nil || f.Priority != PriorityPTP {
		return 0
	}
	return a.delayNS
}

// FuzzLinkMinDelay pins the PDES lookahead soundness invariant: MinDelay —
// the bound the sharded fabric derives its conservative lookahead from —
// must never exceed the delay any actual frame can experience, in either
// direction, under arbitrary jitter, chaos delay overrides (including
// negative asymmetric shifts), WAN drift-process offsets (SetWanDelay),
// and installed delay attacks (which may only add latency; negative attack
// delays are clamped). The three delay axes are additive by contract, so
// the fuzzer drives all of them at once. A violation would let a shard run
// past a neighbour's next cross-shard delivery and silently break
// determinism.
func FuzzLinkMinDelay(f *testing.F) {
	f.Add(int64(1_000), 0.0, int64(0), int64(0), int64(1), int64(0), int64(0), int64(0))
	f.Add(int64(50_000), 25.0, int64(0), int64(0), int64(7), int64(24_000), int64(0), int64(0))
	f.Add(int64(1_000_000), 400.0, int64(30_000), int64(-20_000), int64(42), int64(-5_000), int64(12_000), int64(-8_000))
	f.Add(int64(500), 1000.0, int64(-100), int64(100), int64(3), int64(1), int64(-50), int64(200))
	f.Add(int64(50_000_000), 0.0, int64(0), int64(0), int64(9), int64(0), int64(400_000), int64(-300_000))

	f.Fuzz(func(t *testing.T, propNS int64, jitterNS float64, extraNS, asymNS, seed, attackNS, wanExtraNS, wanAsymNS int64) {
		// Keep the config inside the domain the simulator uses: positive
		// nominal propagation, non-negative jitter, overrides within ±1 ms.
		if propNS < 1 {
			propNS = 1 - propNS
		}
		propNS = propNS%1_000_000_000 + 1
		if jitterNS < 0 {
			jitterNS = -jitterNS
		}
		if jitterNS > 1e6 {
			jitterNS = 1e6
		}
		extraNS %= 1_000_000
		asymNS %= 1_000_000
		wanExtraNS %= 1_000_000
		wanAsymNS %= 1_000_000

		sched := sim.NewScheduler()
		rng := sim.NewStreams(seed).Stream("fuzz/link")
		a := &Port{Name: "a"}
		b := &Port{Name: "b"}
		l, err := Connect(sched, rng, LinkConfig{
			Propagation: time.Duration(propNS),
			JitterNS:    jitterNS,
		}, a, b)
		if err != nil {
			t.Fatal(err)
		}
		l.SetDelayOverride(time.Duration(extraNS), time.Duration(asymNS))
		l.SetWanDelay(time.Duration(wanExtraNS), time.Duration(wanAsymNS))
		attackNS %= 1_000_000
		l.SetDelayAttack(fuzzDelayAttack{delayNS: float64(attackNS)})

		min := l.MinDelay()
		frames := []*Frame{nil, {Priority: PriorityPTP}, {Priority: PriorityBestEffort}}
		for i := 0; i < 64; i++ {
			for dir := 0; dir < 2; dir++ {
				fr := frames[i%len(frames)]
				if d := l.delay(dir, fr); d < min {
					t.Fatalf("MinDelay %v exceeds sampled delay %v (dir %d, prop %dns, jitter %.1fns, extra %dns, asym %dns, attack %dns, wanExtra %dns, wanAsym %dns)",
						min, d, dir, propNS, jitterNS, extraNS, asymNS, attackNS, wanExtraNS, wanAsymNS)
				}
			}
		}
	})
}
