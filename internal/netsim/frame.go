// Package netsim models the experiment's physical network: NICs with
// hardware timestamping and Earliest-TxTime-First (ETF) launch-time queues,
// links with propagation jitter, and integrated TSN bridges with static
// forwarding, priority-dependent residence times, and a relay hook through
// which the gPTP layer implements IEEE 802.1AS bridge behaviour.
package netsim

import (
	"sync"
	"sync/atomic"
	"time"

	"gptpfta/internal/sim"
)

// Address identifies a frame endpoint: a NIC ("nic/dev1/1") or a multicast
// group ("mc/measure"). Addressing is static — the testbed uses external
// port configuration and a dedicated measurement VLAN, so there is no
// learning or spanning-tree protocol.
type Address string

// IsMulticast reports whether the address names a multicast group.
func (a Address) IsMulticast() bool {
	return len(a) > 3 && a[:3] == "mc/"
}

// Traffic priorities, mirroring the testbed's TSN configuration: gPTP event
// messages ride the highest priority, the measurement VLAN uses an express
// queue, everything else is best effort.
const (
	PriorityBestEffort = 0
	PriorityMeasure    = 6
	PriorityPTP        = 7
)

// Frame is a network frame. Payload carries a protocol message (gPTP or
// measurement probe). SentAt records the true transmission instant of the
// original sender and survives forwarding; the measurement subsystem uses
// it to derive observed path latencies (standing in for the latency data
// the paper extracted from ptp4l).
type Frame struct {
	Src      Address
	Dst      Address
	VLAN     uint16
	Priority int
	// Bytes is the frame size for serialization-time computation in
	// shaped egress ports; zero means a protocol-typical default.
	Bytes   int
	Payload any

	SentAt sim.Time // true instant of original transmission
	Hops   int      // bridges traversed

	// pooled marks frames owned by the frame pool. Only such frames are
	// recycled at their netsim-internal death points (endpoint delivery,
	// drops); frames built with a plain &Frame{} literal are left to the
	// garbage collector, so external code needs no lifetime discipline.
	pooled bool
}

// framePool recycles Frame structs — the second-hottest allocation site
// after scheduler events. It is shared across simulations (the parallel
// runner executes several in one process), which is safe because a frame
// is fully overwritten at Get and object identity is never observable to
// the simulation, so pooling cannot perturb determinism.
var framePool = sync.Pool{New: func() any {
	poolNews.Add(1)
	return new(Frame)
}}

// Pool traffic counters. Process-global like the pool itself; the hit rate
// (gets-news)/gets is an aggregate across all concurrently running
// simulations, which is what the profiling harness wants to watch.
var (
	poolGets atomic.Uint64 // GetFrame + Clone calls
	poolNews atomic.Uint64 // pool misses that allocated a fresh Frame
	poolPuts atomic.Uint64 // frames recycled via release
)

// PoolStats reports cumulative frame-pool traffic: total acquisitions,
// pool misses (fresh allocations), and recycled frames. The hit rate is
// (gets-news)/gets. Values are process-wide and monotone.
func PoolStats() (gets, news, puts uint64) {
	return poolGets.Load(), poolNews.Load(), poolPuts.Load()
}

// GetFrame returns a zeroed pool-owned frame. The caller fills in the
// fields and transmits it; netsim recycles it automatically when it is
// delivered to a NIC endpoint or dropped in flight. Callers must not
// retain the frame after handing it to Send/Transmit.
func GetFrame() *Frame {
	poolGets.Add(1)
	f := framePool.Get().(*Frame)
	f.pooled = true
	return f
}

// release returns a pool-owned frame; no-op for GC-owned frames. The frame
// is cleared so stale payload references do not outlive it.
func (f *Frame) release() {
	if !f.pooled {
		return
	}
	*f = Frame{}
	poolPuts.Add(1)
	framePool.Put(f)
}

// Clone returns a pool-owned shallow copy for fan-out across egress ports.
// Payloads are treated as immutable once transmitted and are shared
// between clones.
func (f *Frame) Clone() *Frame {
	poolGets.Add(1)
	c := framePool.Get().(*Frame)
	*c = *f
	c.pooled = true
	return c
}

// PayloadCloner is implemented by the rare payload types that are mutated
// after the frame has been scheduled (a Sync whose origin/correction is
// written at the transmit instant). The snapshot engine deep-copies such
// payloads so a fork cannot observe mutations made by another run; all
// other payloads are immutable once scheduled and are safely shared.
type PayloadCloner interface {
	ClonePayload() any
}

// CloneForSnapshot implements sim.Cloner: a GC-owned value copy for the
// warm-start snapshot engine. The copy is marked non-pooled so release() is
// a no-op on it — the pool must never receive a frame the live run did not
// acquire — and the payload is deep-copied iff it declares itself mutable
// via PayloadCloner.
func (f *Frame) CloneForSnapshot() any {
	c := *f
	c.pooled = false
	if pc, ok := c.Payload.(PayloadCloner); ok {
		c.Payload = pc.ClonePayload()
	}
	return &c
}

// PathLatency reports the frame's true end-to-end latency if delivered at
// instant now.
func (f *Frame) PathLatency(now sim.Time) time.Duration {
	return now.Sub(f.SentAt)
}

// Device is anything with ports: a NIC or a bridge.
type Device interface {
	// DeviceName identifies the device in logs and diagnostics.
	DeviceName() string
	// Receive is invoked by a link when a frame arrives at one of the
	// device's ports, at the current simulation instant.
	Receive(p *Port, f *Frame)
}

// Port is one attachment point of a device.
type Port struct {
	Name  string
	Owner Device
	Index int // index within the owner (bridge port number; 0 for NICs)
	link  *Link
}

// Link reports the attached link, or nil.
func (p *Port) Link() *Link { return p.link }

// Connected reports whether the port is attached to a link.
func (p *Port) Connected() bool { return p.link != nil }
