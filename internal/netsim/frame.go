// Package netsim models the experiment's physical network: NICs with
// hardware timestamping and Earliest-TxTime-First (ETF) launch-time queues,
// links with propagation jitter, and integrated TSN bridges with static
// forwarding, priority-dependent residence times, and a relay hook through
// which the gPTP layer implements IEEE 802.1AS bridge behaviour.
package netsim

import (
	"time"

	"gptpfta/internal/sim"
)

// Address identifies a frame endpoint: a NIC ("nic/dev1/1") or a multicast
// group ("mc/measure"). Addressing is static — the testbed uses external
// port configuration and a dedicated measurement VLAN, so there is no
// learning or spanning-tree protocol.
type Address string

// IsMulticast reports whether the address names a multicast group.
func (a Address) IsMulticast() bool {
	return len(a) > 3 && a[:3] == "mc/"
}

// Traffic priorities, mirroring the testbed's TSN configuration: gPTP event
// messages ride the highest priority, the measurement VLAN uses an express
// queue, everything else is best effort.
const (
	PriorityBestEffort = 0
	PriorityMeasure    = 6
	PriorityPTP        = 7
)

// Frame is a network frame. Payload carries a protocol message (gPTP or
// measurement probe). SentAt records the true transmission instant of the
// original sender and survives forwarding; the measurement subsystem uses
// it to derive observed path latencies (standing in for the latency data
// the paper extracted from ptp4l).
type Frame struct {
	Src      Address
	Dst      Address
	VLAN     uint16
	Priority int
	// Bytes is the frame size for serialization-time computation in
	// shaped egress ports; zero means a protocol-typical default.
	Bytes   int
	Payload any

	SentAt sim.Time // true instant of original transmission
	Hops   int      // bridges traversed
}

// Clone returns a shallow copy for fan-out across egress ports. Payloads
// are treated as immutable once transmitted.
func (f *Frame) Clone() *Frame {
	c := *f
	return &c
}

// PathLatency reports the frame's true end-to-end latency if delivered at
// instant now.
func (f *Frame) PathLatency(now sim.Time) time.Duration {
	return now.Sub(f.SentAt)
}

// Device is anything with ports: a NIC or a bridge.
type Device interface {
	// DeviceName identifies the device in logs and diagnostics.
	DeviceName() string
	// Receive is invoked by a link when a frame arrives at one of the
	// device's ports, at the current simulation instant.
	Receive(p *Port, f *Frame)
}

// Port is one attachment point of a device.
type Port struct {
	Name  string
	Owner Device
	Index int // index within the owner (bridge port number; 0 for NICs)
	link  *Link
}

// Link reports the attached link, or nil.
func (p *Port) Link() *Link { return p.link }

// Connected reports whether the port is attached to a link.
func (p *Port) Connected() bool { return p.link != nil }
