package netsim

import (
	"errors"
	"time"

	"gptpfta/internal/sim"
)

// TrafficConfig describes a synthetic best-effort load: bursts of frames
// injected periodically toward a destination, crossing the switch fabric
// and competing with protocol traffic for egress capacity.
type TrafficConfig struct {
	Dst      Address
	Priority int
	Bytes    int
	// Interval between bursts; jittered uniformly by ±50%.
	Interval time.Duration
	// Burst is the number of frames per burst. Default 1.
	Burst int
}

func (c TrafficConfig) withDefaults() TrafficConfig {
	if c.Bytes <= 0 {
		c.Bytes = 1500
	}
	if c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	if c.Burst <= 0 {
		c.Burst = 1
	}
	return c
}

// TrafficSource injects background traffic from a NIC.
type TrafficSource struct {
	cfg   TrafficConfig
	nic   *NIC
	sched *sim.Scheduler
	rng   sim.RNG

	running bool
	sent    uint64
}

// NewTrafficSource creates a generator on nic.
func NewTrafficSource(nic *NIC, sched *sim.Scheduler, rng sim.RNG, cfg TrafficConfig) (*TrafficSource, error) {
	if nic == nil {
		return nil, errors.New("netsim: nil NIC")
	}
	return &TrafficSource{cfg: cfg.withDefaults(), nic: nic, sched: sched, rng: rng}, nil
}

// Sent reports frames injected so far.
func (t *TrafficSource) Sent() uint64 { return t.sent }

// Start begins injection.
func (t *TrafficSource) Start() error {
	if t.running {
		return errors.New("netsim: traffic source already running")
	}
	t.running = true
	t.next()
	return nil
}

// Stop halts injection.
func (t *TrafficSource) Stop() { t.running = false }

func (t *TrafficSource) next() {
	if !t.running {
		return
	}
	for i := 0; i < t.cfg.Burst; i++ {
		f := &Frame{
			Src:      Address("nic/" + t.nic.DeviceName()),
			Dst:      t.cfg.Dst,
			Priority: t.cfg.Priority,
			Bytes:    t.cfg.Bytes,
			Payload:  "background",
		}
		if _, err := t.nic.Send(f); err == nil {
			t.sent++
		}
	}
	d := t.cfg.Interval
	if t.rng != nil {
		half := int64(d) / 2
		d = time.Duration(half + t.rng.Int63n(int64(d)))
	}
	t.sched.After(d, t.next)
}
