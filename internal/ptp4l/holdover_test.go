package ptp4l

import (
	"math"
	"testing"
	"time"

	"gptpfta/internal/servo"
)

// holdoverRig builds a 4-VM rig with holdover enabled on every stack.
func holdoverRig(t *testing.T, seed int64, window time.Duration) *rig {
	t.Helper()
	return newRig(t, seed, 4, func(i int, c *Config) {
		c.HoldoverWindow = window
	})
}

// severAll cuts every VM link (a total partition: no stack can see any
// foreign domain) or restores them.
func (r *rig) severAll(down bool) {
	for _, l := range r.links {
		l.SetDown(down)
	}
}

func (r *rig) countEvents(kind, detail string) int {
	n := 0
	for _, e := range r.events {
		if e.Kind == kind && e.Detail == detail {
			n++
		}
	}
	return n
}

func TestHoldoverEnterAndReacquire(t *testing.T) {
	r := holdoverRig(t, 11, 2*time.Second)
	r.start(t)
	r.run(t, 90*time.Second) // converge into FT operation
	for _, s := range r.stacks {
		if s.Mode() != ModeFTOperation {
			t.Fatalf("%s not in FT operation before outage", s.Name())
		}
		if s.Holdover() {
			t.Fatalf("%s in holdover before outage", s.Name())
		}
	}

	r.severAll(true)
	r.run(t, 10*time.Second)
	for _, s := range r.stacks {
		if !s.Holdover() {
			t.Fatalf("%s not in holdover after 10 s total partition (window 2 s)", s.Name())
		}
		if st := s.FTSHMEM().Servo().State(); st != servo.StateHoldover {
			t.Fatalf("%s servo state %v during holdover", s.Name(), st)
		}
	}
	if n := r.countEvents(EventHoldover, "enter"); n != 4 {
		t.Fatalf("holdover enter events = %d, want 4", n)
	}

	r.severAll(false)
	r.run(t, 30*time.Second)
	for _, s := range r.stacks {
		if s.Holdover() {
			t.Fatalf("%s still in holdover 30 s after heal", s.Name())
		}
	}
	if n := r.countEvents(EventHoldover, "exit"); n != 4 {
		t.Fatalf("holdover exit events = %d, want 4", n)
	}

	// Precision must recover after re-acquisition.
	r.run(t, 30*time.Second)
	if spread := r.phcSpread(); spread > 2000 {
		t.Fatalf("post-reacquire PHC spread %v ns, want < 2 µs", spread)
	}
}

// TestHoldoverBoundsExcursion compares a partition ridden out in holdover
// against the free-run baseline's unlimited drift: with the servo frozen on
// its last good frequency, the offset excursion during the outage stays
// bounded (no step on re-entry, no runaway).
func TestHoldoverBoundsExcursion(t *testing.T) {
	r := holdoverRig(t, 12, 2*time.Second)
	r.start(t)
	r.run(t, 90*time.Second)

	r.severAll(true)
	// Track the worst spread during a 20 s outage: holdover freezes each
	// PHC at its last corrected frequency, so mutual drift stays in the
	// low-ppb residual range (≤ 1 µs over 20 s), not the raw ±5 ppm
	// oscillator spread (which would exceed 100 µs).
	var worst float64
	for i := 0; i < 20; i++ {
		r.run(t, time.Second)
		if s := r.phcSpread(); s > worst {
			worst = s
		}
	}
	r.severAll(false)
	if worst > 50000 {
		t.Fatalf("holdover excursion %v ns over 20 s outage, want bounded (< 50 µs)", worst)
	}

	// No servo step may occur during re-acquisition: the slew limit turns
	// the accumulated offset into a ramp.
	stepsBefore := 0
	for _, e := range r.events {
		if e.Kind == EventServoStep {
			stepsBefore++
		}
	}
	r.run(t, 30*time.Second)
	stepsAfter := 0
	for _, e := range r.events {
		if e.Kind == EventServoStep {
			stepsAfter++
		}
	}
	if stepsAfter != stepsBefore {
		t.Fatalf("servo stepped %d times during re-acquisition, want 0", stepsAfter-stepsBefore)
	}
}

// TestHoldoverDisabledByDefault pins the digest-safety property: without
// HoldoverWindow the watchdog is never scheduled and a starved stack
// free-runs exactly as before.
func TestHoldoverDisabledByDefault(t *testing.T) {
	r := newRig(t, 13, 4, nil)
	r.start(t)
	r.run(t, 90*time.Second)
	r.severAll(true)
	r.run(t, 10*time.Second)
	for _, s := range r.stacks {
		if s.Holdover() {
			t.Fatalf("%s entered holdover with HoldoverWindow unset", s.Name())
		}
		if s.FTSHMEM().Servo().Frozen() {
			t.Fatalf("%s servo frozen with HoldoverWindow unset", s.Name())
		}
	}
	if n := r.countEvents(EventHoldover, "enter"); n != 0 {
		t.Fatalf("holdover events with feature disabled: %d", n)
	}
}

// TestHoldoverFailClearsState: a VM failing mid-holdover must come back
// through the normal startup protocol with a clean servo.
func TestHoldoverFailClearsState(t *testing.T) {
	r := holdoverRig(t, 14, 2*time.Second)
	r.start(t)
	r.run(t, 90*time.Second)
	r.severAll(true)
	r.run(t, 10*time.Second)
	s0 := r.stacks[0]
	if !s0.Holdover() {
		t.Fatal("stack not in holdover before Fail")
	}
	s0.Fail()
	if s0.Holdover() {
		t.Fatal("holdover flag survived Fail")
	}
	r.severAll(false)
	if err := s0.Reboot(); err != nil {
		t.Fatalf("reboot: %v", err)
	}
	if s0.FTSHMEM().Servo().Frozen() {
		t.Fatal("servo still frozen after reboot")
	}
	r.run(t, 120*time.Second)
	if s0.Mode() != ModeFTOperation {
		t.Fatalf("rebooted stack stuck in %v", s0.Mode())
	}
	if s0.Holdover() {
		t.Fatal("rebooted stack re-entered holdover on a healed network")
	}
	if math.IsNaN(s0.NIC().PHC().Now()) {
		t.Fatal("PHC corrupted")
	}
}
