package ptp4l

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestOffsetStatsStreaming(t *testing.T) {
	var s OffsetStats
	for _, v := range []float64{3, -4, 0} {
		s.Add(v)
	}
	if s.Count != 3 || s.LastNS != 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.MaxAbs != 4 {
		t.Fatalf("MaxAbs = %v, want 4", s.MaxAbs)
	}
	wantRMS := math.Sqrt((9.0 + 16 + 0) / 3)
	if math.Abs(s.RMSNS()-wantRMS) > 1e-12 {
		t.Fatalf("RMS = %v, want %v", s.RMSNS(), wantRMS)
	}
	if math.Abs(s.MeanNS()-(-1.0/3)) > 1e-12 {
		t.Fatalf("Mean = %v", s.MeanNS())
	}
	if (OffsetStats{}).RMSNS() != 0 || (OffsetStats{}).MeanNS() != 0 {
		t.Fatal("empty stats should be zero")
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

func TestStackStatisticsPopulated(t *testing.T) {
	r := newRig(t, 31, 4, nil)
	r.start(t)
	r.run(t, 60*time.Second)
	st := r.stacks[1].Statistics()
	// Stack b slaves to domains 0, 2, 3 (it masters domain 1).
	for _, d := range []int{0, 2, 3} {
		if st.Domain(d).Count == 0 {
			t.Fatalf("domain %d has no offset statistics", d)
		}
	}
	if st.Domain(1).Count != 0 {
		t.Fatal("own domain should have no slave offsets")
	}
	if st.Aggregate().Count == 0 {
		t.Fatal("no FTA aggregation statistics")
	}
	if st.FreqPPB().Count == 0 {
		t.Fatal("no servo frequency statistics")
	}
	// Converged: per-domain RMS well below a µs; servo within drift range.
	if rms := st.Aggregate().RMSNS(); rms > 5000 {
		t.Fatalf("aggregate RMS = %v ns over the run (includes startup), implausible", rms)
	}
	if f := st.FreqPPB().MaxAbs; f > 200000 {
		t.Fatalf("servo frequency |max| = %v ppb, implausible", f)
	}
	sum := st.Summary()
	for _, want := range []string{"dom1", "dom3", "FTA", "servo freq"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
	st.Reset()
	if st.Aggregate().Count != 0 || st.Domain(0).Count != 0 {
		t.Fatal("reset did not clear statistics")
	}
}
