package ptp4l

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// OffsetStats are streaming statistics over a window of offset samples,
// mirroring the per-summary-interval statistics real ptp4l logs
// ("rms … max … freq …").
type OffsetStats struct {
	Count  int
	LastNS float64
	sumNS  float64
	sumSq  float64
	MaxAbs float64
}

// Add folds one sample into the window.
func (s *OffsetStats) Add(offsetNS float64) {
	s.Count++
	s.LastNS = offsetNS
	s.sumNS += offsetNS
	s.sumSq += offsetNS * offsetNS
	if a := math.Abs(offsetNS); a > s.MaxAbs {
		s.MaxAbs = a
	}
}

// MeanNS reports the window mean.
func (s OffsetStats) MeanNS() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.sumNS / float64(s.Count)
}

// RMSNS reports the window root-mean-square.
func (s OffsetStats) RMSNS() float64 {
	if s.Count == 0 {
		return 0
	}
	return math.Sqrt(s.sumSq / float64(s.Count))
}

// String formats like a ptp4l summary line.
func (s OffsetStats) String() string {
	return fmt.Sprintf("rms %7.1f max %7.1f (n=%d)", s.RMSNS(), s.MaxAbs, s.Count)
}

// Statistics aggregates a stack's run-time counters: per-domain grandmaster
// offsets, the aggregated FTA offsets fed to the shared servo, and the
// servo frequency trajectory.
type Statistics struct {
	perDomain map[int]*OffsetStats
	aggregate OffsetStats
	freqPPB   OffsetStats
}

func newStatistics() *Statistics {
	return &Statistics{perDomain: make(map[int]*OffsetStats)}
}

func (st *Statistics) addDomain(domain int, offsetNS float64) {
	s, ok := st.perDomain[domain]
	if !ok {
		s = &OffsetStats{}
		st.perDomain[domain] = s
	}
	s.Add(offsetNS)
}

// Domain reports the statistics of one domain's grandmaster offsets.
func (st *Statistics) Domain(domain int) OffsetStats {
	if s, ok := st.perDomain[domain]; ok {
		return *s
	}
	return OffsetStats{}
}

// Aggregate reports the statistics of the FTA outputs.
func (st *Statistics) Aggregate() OffsetStats { return st.aggregate }

// FreqPPB reports the statistics of applied servo frequency corrections.
func (st *Statistics) FreqPPB() OffsetStats { return st.freqPPB }

// Summary renders a multi-line report, one line per domain plus the
// aggregation and frequency lines.
func (st *Statistics) Summary() string {
	var b strings.Builder
	domains := make([]int, 0, len(st.perDomain))
	for d := range st.perDomain {
		domains = append(domains, d)
	}
	sort.Ints(domains)
	for _, d := range domains {
		fmt.Fprintf(&b, "dom%d offset %s\n", d+1, st.perDomain[d])
	}
	fmt.Fprintf(&b, "FTA  offset %s\n", st.aggregate)
	fmt.Fprintf(&b, "servo freq  %s ppb\n", st.freqPPB)
	return b.String()
}

// Reset clears every window (a new summary interval begins).
func (st *Statistics) Reset() {
	st.perDomain = make(map[int]*OffsetStats)
	st.aggregate = OffsetStats{}
	st.freqPPB = OffsetStats{}
}
