// Package ptp4l implements the paper's extended ptp4l: inside each
// clock-synchronization VM, M per-domain protocol instances share an
// FTSHMEM region; each instance stores its domain's grandmaster offset
// there, and once per synchronization interval the first instance through
// the aggregation gate applies the fault-tolerant average of the M offsets
// to the shared PI controller and disciplines the VM's NIC PHC.
//
// The Stack also implements the paper's start-up protocol (§II-B): the
// nodes of the M−1 non-initial domains first synchronize to the initial
// domain's grandmaster; each node switches to fault-tolerant operation once
// its offset to the initial domain stays below a configurable threshold.
// Grandmasters of non-initial domains begin emitting Sync immediately, so
// the initial domain's grandmaster can observe when the system has
// converged.
package ptp4l

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"

	"gptpfta/internal/fta"
	"gptpfta/internal/gptp"
	"gptpfta/internal/netsim"
	"gptpfta/internal/obs"
	"gptpfta/internal/servo"
	"gptpfta/internal/shmem"
	"gptpfta/internal/sim"
)

// Mode is the stack's synchronization state.
type Mode int

const (
	// ModeStartup: tracking the initial domain's grandmaster.
	ModeStartup Mode = iota + 1
	// ModeFTOperation: aggregating all domains with the FTA.
	ModeFTOperation
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeStartup:
		return "startup"
	case ModeFTOperation:
		return "ft_operation"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Event kinds emitted through the stack's event callback.
const (
	EventModeChange = "mode_change"
	EventServoStep  = "servo_step"
	EventFlagChange = "flag_change"
	EventFault      = "ptp4l_fault"
	EventHoldover   = "holdover"
)

// Event is a notable stack occurrence for the experiment event log.
type Event struct {
	Kind   string
	Detail string
}

// Config parameterises a clock-synchronization VM's ptp4l stack.
type Config struct {
	// Name identifies the VM (e.g. "c11") in events and diagnostics.
	Name string
	// Domains lists all M gPTP domains to aggregate.
	Domains []int
	// GMDomain is the domain this VM is grandmaster of, or -1.
	GMDomain int
	// InitialDomain is the start-up reference domain.
	InitialDomain int
	// F is the number of tolerated Byzantine grandmaster faults.
	F int
	// SyncInterval is the gPTP synchronization interval S (125 ms).
	SyncInterval time.Duration
	// StartupThresholdNS: a node enters fault-tolerant operation when its
	// offset to the initial domain stays below this threshold.
	StartupThresholdNS float64
	// StartupStableCount is how many consecutive below-threshold samples
	// the switch requires. Default 8 (one second at S = 125 ms).
	StartupStableCount int
	// ValidityThresholdNS is the FTSHMEM validity-flag threshold.
	ValidityThresholdNS float64
	// FlagPolicy selects how flags influence aggregation.
	FlagPolicy fta.FlagPolicy
	// StaleIntervals: a stored offset no longer counts as fresh after this
	// many sync intervals without an update. Default 3.
	StaleIntervals int

	// HoldoverWindow, when positive, enables graceful degradation: if FTA
	// quorum starvation persists longer than this window during
	// fault-tolerant operation, the shared servo enters holdover (integral
	// frozen, PHC coasting on its last good frequency correction) instead
	// of free-running on garbage or jumping on the first post-outage
	// sample. Zero (the default) disables the watchdog entirely, keeping
	// the legacy free-run behavior and the golden digests bit-identical.
	HoldoverWindow time.Duration
	// ReacquireThresholdNS: while in holdover, an aggregate below this
	// magnitude counts toward re-acquisition. Default 20 µs.
	ReacquireThresholdNS float64
	// ReacquireStableCount is how many consecutive below-threshold
	// aggregates holdover exit requires (hysteresis, so one lucky sample
	// during a flapping partition cannot thaw the servo). Default 8.
	ReacquireStableCount int
	// HoldoverMaxSlewPPB bounds how fast the servo output may move per
	// sample right after holdover exit. Default 50000 (50 ppm).
	HoldoverMaxSlewPPB float64

	// Transient software fault probabilities for the grandmaster role.
	TxTimestampTimeoutProb float64
	DeadlineMissProb       float64

	// SkipStartup starts the stack directly in fault-tolerant operation,
	// bypassing the paper's start-up protocol. This reproduces the
	// Kyriakakis-style baseline the paper criticises (no initial
	// grandmaster synchronization) in the ablation benchmarks.
	SkipStartup bool
	// DisableDiscipline stores offsets into FTSHMEM but never adjusts the
	// local clock — the "clients only" limitation of the baseline, where
	// grandmaster nodes cannot participate in aggregation and free-run.
	DisableDiscipline bool
}

func (c Config) withDefaults() Config {
	if c.SyncInterval <= 0 {
		c.SyncInterval = 125 * time.Millisecond
	}
	if c.StartupStableCount <= 0 {
		// Three seconds at S = 125 ms: long enough for the PI servo's
		// initial drift-estimation transient to settle, so a node cannot
		// declare convergence on boot-time coincidence.
		c.StartupStableCount = 24
	}
	if c.StartupThresholdNS <= 0 {
		c.StartupThresholdNS = 1000
	}
	if c.ValidityThresholdNS <= 0 {
		c.ValidityThresholdNS = 10000
	}
	if c.FlagPolicy == 0 {
		c.FlagPolicy = fta.FlagMonitor
	}
	if c.StaleIntervals <= 0 {
		c.StaleIntervals = 3
	}
	if c.ReacquireThresholdNS <= 0 {
		c.ReacquireThresholdNS = 20000
	}
	if c.ReacquireStableCount <= 0 {
		c.ReacquireStableCount = 8
	}
	if c.HoldoverMaxSlewPPB <= 0 {
		c.HoldoverMaxSlewPPB = 50000
	}
	return c
}

// Stack is one clock-synchronization VM's extended ptp4l: M per-domain
// instances, the FTSHMEM region, the shared PI servo, and (optionally) the
// grandmaster role for one domain.
type Stack struct {
	cfg   Config
	sched *sim.Scheduler
	rng   sim.RNG
	nic   *netsim.NIC

	ld     *gptp.LinkDelay
	slaves map[int]*gptp.Slave
	master *gptp.Master
	shm    *shmem.FTSHMEM

	mode         Mode
	stable       int
	running      bool
	stats        *Statistics
	lastFlags    []bool
	aux          netsim.RxHandler
	tap          netsim.RxHandler
	onEvent      func(Event)
	syncObserver func(domain int, latency time.Duration)
	aggregations uint64

	// Holdover state machine (active only when cfg.HoldoverWindow > 0).
	holdover     bool
	lastGoodAgg  sim.Time
	reacquire    int // consecutive below-threshold aggregates
	reacquireAny int // successful aggregates since holdover entry
	watchdog     *sim.Ticker

	// Observability handles, resolved once by Instrument. All remain nil
	// (inert no-ops) when the stack is not instrumented.
	obsOffset     map[int]*obs.Histogram
	obsAggs       *obs.Counter
	obsDiscarded  *obs.Counter
	obsDiscardMal *obs.Counter
	obsStarved    *obs.Counter
	obsFlagFlips  *obs.Counter
	obsServoSteps *obs.Counter
	obsHoldEnter  *obs.Counter
	obsHoldExit   *obs.Counter
}

// offsetBuckets covers the offsets seen across the experiments: sub-100 ns
// steady state out to millisecond-scale start-up transients, symmetric
// around zero because offsets are signed.
var offsetBuckets = []float64{-1e6, -1e5, -1e4, -1e3, -100, 0, 100, 1e3, 1e4, 1e5, 1e6}

// Instrument registers the stack's metrics with reg: per-domain offset
// histograms, FTA aggregation counters, flag flips, servo steps, and
// gauge funcs sampling the shared PI controller. Handles are resolved once
// here, never per-update; a nil registry leaves every handle nil, and nil
// handles are no-ops, so the hot path needs no conditionals.
func (s *Stack) Instrument(reg *obs.Registry) {
	vm := obs.L("vm", s.cfg.Name)
	s.obsOffset = make(map[int]*obs.Histogram, len(s.cfg.Domains))
	for _, d := range s.cfg.Domains {
		s.obsOffset[d] = reg.Histogram("ptp4l_offset_ns", offsetBuckets, vm, obs.L("domain", strconv.Itoa(d)))
	}
	s.obsAggs = reg.Counter("ptp4l_fta_aggregations", vm)
	s.obsDiscarded = reg.Counter("ptp4l_fta_discarded", vm)
	s.obsDiscardMal = reg.Counter("ptp4l_fta_discarded_malicious", vm)
	s.obsStarved = reg.Counter("ptp4l_fta_starved", vm)
	s.obsFlagFlips = reg.Counter("ptp4l_flag_flips", vm)
	s.obsServoSteps = reg.Counter("ptp4l_servo_steps", vm)
	s.obsHoldEnter = reg.Counter("ptp4l_holdover_entered", vm)
	s.obsHoldExit = reg.Counter("ptp4l_holdover_exited", vm)
	reg.GaugeFunc("ptp4l_holdover", func() float64 {
		if s.holdover {
			return 1
		}
		return 0
	}, vm)
	reg.GaugeFunc("ptp4l_servo_state", func() float64 { return float64(s.shm.Servo().State()) }, vm)
	reg.GaugeFunc("ptp4l_servo_drift_ppb", func() float64 { return s.shm.Servo().DriftPPB() }, vm)
	reg.GaugeFunc("ptp4l_mode", func() float64 { return float64(s.mode) }, vm)
}

// New creates a stack on nic. onEvent, if non-nil, receives stack events.
func New(nic *netsim.NIC, sched *sim.Scheduler, rng sim.RNG, cfg Config, onEvent func(Event)) (*Stack, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Domains) == 0 {
		return nil, errors.New("ptp4l: no domains configured")
	}
	staleNS := float64(cfg.StaleIntervals) * float64(cfg.SyncInterval)
	pi := servo.NewPI(servo.Config{SyncInterval: cfg.SyncInterval})
	s := &Stack{
		cfg:     cfg,
		sched:   sched,
		rng:     rng,
		nic:     nic,
		slaves:  make(map[int]*gptp.Slave, len(cfg.Domains)),
		shm:     shmem.NewFTSHMEM(cfg.Domains, staleNS, pi),
		mode:    ModeStartup,
		stats:   newStatistics(),
		onEvent: onEvent,
	}
	if cfg.SkipStartup {
		s.mode = ModeFTOperation
	}
	s.ld = gptp.NewLinkDelay(cfg.Name, sched, rng, func(f *netsim.Frame) (float64, bool) {
		ts, err := nic.Send(f)
		return ts, err == nil
	}, gptp.LinkDelayConfig{})
	for _, d := range cfg.Domains {
		if d == cfg.GMDomain {
			continue // the GM does not slave to its own domain
		}
		d := d
		s.slaves[d] = gptp.NewSlave(d, s.ld, s.onOffset)
	}
	if cfg.GMDomain >= 0 {
		s.master = gptp.NewMaster(nic, sched, rng, gptp.MasterConfig{
			Domain:                 cfg.GMDomain,
			GMIdentity:             cfg.Name,
			SyncInterval:           cfg.SyncInterval,
			TxTimestampTimeoutProb: cfg.TxTimestampTimeoutProb,
			DeadlineMissProb:       cfg.DeadlineMissProb,
		}, func(kind string) { s.emit(EventFault, kind) })
	}
	nic.SetHandler(s.receive)
	return s, nil
}

// Name reports the VM name.
func (s *Stack) Name() string { return s.cfg.Name }

// Mode reports the current synchronization mode.
func (s *Stack) Mode() Mode { return s.mode }

// Running reports whether the stack is live (not fail-silent).
func (s *Stack) Running() bool { return s.running }

// NIC returns the VM's passthrough NIC.
func (s *Stack) NIC() *netsim.NIC { return s.nic }

// FTSHMEM exposes the shared region for diagnostics and tests.
func (s *Stack) FTSHMEM() *shmem.FTSHMEM { return s.shm }

// Master exposes the grandmaster role, or nil.
func (s *Stack) Master() *gptp.Master { return s.master }

// LinkDelay exposes the NIC port's pdelay endpoint.
func (s *Stack) LinkDelay() *gptp.LinkDelay { return s.ld }

// Aggregations reports how many FTA aggregations this stack performed.
func (s *Stack) Aggregations() uint64 { return s.aggregations }

// IsGM reports whether this VM masters a domain.
func (s *Stack) IsGM() bool { return s.cfg.GMDomain >= 0 }

// IsInitialGM reports whether this VM masters the start-up reference domain.
func (s *Stack) IsInitialGM() bool { return s.cfg.GMDomain == s.cfg.InitialDomain }

// SetAuxHandler installs a handler for non-gPTP frames (the measurement
// agent). It runs for every frame the demultiplexer does not consume.
func (s *Stack) SetAuxHandler(h netsim.RxHandler) { s.aux = h }

// SetSyncObserver installs a callback invoked with the observed network
// latency of every received Sync — the per-path latency data the paper
// extracts from ptp4l to instantiate the precision bound.
func (s *Stack) SetSyncObserver(fn func(domain int, latency time.Duration)) {
	s.syncObserver = fn
}

// Compromise models the paper's attacker replacing the benign ptp4l with a
// malicious instance after a successful root exploit: every distributed
// preciseOriginTimestamp is shifted by offsetNS (the paper uses −24 µs).
// The VM's own discipline keeps running — the attack targets the *other*
// nodes' aggregation, not the attacker's own clock.
func (s *Stack) Compromise(offsetNS float64) {
	if s.master != nil {
		s.master.SetMaliciousOffset(offsetNS)
	}
}

// Compromised reports whether the grandmaster distributes falsified
// timestamps.
func (s *Stack) Compromised() bool {
	return s.master != nil && s.master.Config().MaliciousOriginOffsetNS != 0
}

// Start boots the stack: pdelay begins, and grandmasters of the initial
// domain begin emitting immediately (they are the start-up reference);
// other grandmasters emit from boot as well so the initial grandmaster can
// observe system convergence.
func (s *Stack) Start() error {
	if s.running {
		return errors.New("ptp4l: already running")
	}
	s.running = true
	if err := s.ld.Start(); err != nil {
		return err
	}
	if s.cfg.HoldoverWindow > 0 && s.watchdog == nil {
		s.lastGoodAgg = s.sched.Now()
		tick, err := s.sched.Every(s.sched.Now().Add(s.cfg.SyncInterval),
			s.cfg.SyncInterval, s.holdoverWatch)
		if err != nil {
			return err
		}
		s.watchdog = tick
	}
	if s.master != nil && !s.master.Running() {
		if err := s.master.Start(); err != nil {
			return err
		}
	}
	if s.IsInitialGM() {
		// The reference free-runs through start-up.
		return nil
	}
	return nil
}

// Fail makes the VM fail-silent: the NIC goes down and every periodic
// activity stops. The PHC (hardware) keeps running.
func (s *Stack) Fail() {
	s.running = false
	s.nic.SetDown(true)
	s.ld.Stop()
	if s.master != nil {
		s.master.Stop()
	}
	if s.watchdog != nil {
		s.watchdog.Stop()
		s.watchdog = nil
	}
	s.holdover = false
	s.reacquire = 0
	s.reacquireAny = 0
}

// Reboot restarts a failed VM: shared state is re-established, the servo
// resets, and the stack re-enters the start-up protocol.
func (s *Stack) Reboot() error {
	if s.running {
		return errors.New("ptp4l: reboot while running")
	}
	s.nic.SetDown(false)
	s.shm.Reset()
	s.mode = ModeStartup
	if s.cfg.SkipStartup {
		s.mode = ModeFTOperation
	}
	s.stable = 0
	s.lastFlags = nil
	return s.Start()
}

// SetTap installs a passive observer of every received frame (the trace
// recorder); it runs before demultiplexing and cannot consume frames.
func (s *Stack) SetTap(h netsim.RxHandler) { s.tap = h }

// receive demultiplexes NIC frames to the pdelay endpoint, the per-domain
// instances, or the auxiliary handler.
func (s *Stack) receive(f *netsim.Frame, rxTS float64) {
	if s.tap != nil {
		s.tap(f, rxTS)
	}
	switch m := f.Payload.(type) {
	case *gptp.PdelayReq, *gptp.PdelayResp, *gptp.PdelayRespFollowUp:
		s.ld.HandleFrame(f.Payload, rxTS)
	case *gptp.Sync:
		if s.syncObserver != nil {
			s.syncObserver(m.Domain, f.PathLatency(s.sched.Now()))
		}
		if sl, ok := s.slaves[m.Domain]; ok {
			sl.HandleSync(m, rxTS)
		}
	case *gptp.FollowUp:
		if sl, ok := s.slaves[m.Domain]; ok {
			sl.HandleFollowUp(m)
		}
	default:
		if s.aux != nil {
			s.aux(f, rxTS)
		}
	}
}

// onOffset is the per-domain instance callback: store to FTSHMEM, then run
// the start-up protocol or the aggregation gate.
func (s *Stack) onOffset(sample gptp.OffsetSample) {
	if !s.running {
		return
	}
	nowPHC := s.nic.PHC().Now()
	s.shm.StoreOffset(sample, nowPHC)
	s.stats.addDomain(sample.Domain, sample.OffsetNS)
	s.obsOffset[sample.Domain].Observe(sample.OffsetNS)
	switch s.mode {
	case ModeStartup:
		s.startupStep(sample, nowPHC)
	case ModeFTOperation:
		s.aggregate(nowPHC)
	}
}

// startupReferenceDomain picks the domain tracked during start-up: the
// configured initial domain while it is fresh, otherwise the lowest fresh
// foreign domain (so a node rebooting while the initial grandmaster is
// fail-silent can still rejoin).
func (s *Stack) startupReferenceDomain(nowPHC float64) (int, bool) {
	readings := s.shm.Readings(nowPHC)
	best := -1
	for _, r := range readings {
		if !r.Fresh || r.Domain == s.cfg.GMDomain {
			continue
		}
		if r.Domain == s.cfg.InitialDomain {
			return r.Domain, true
		}
		if best == -1 || r.Domain < best {
			best = r.Domain
		}
	}
	if best >= 0 {
		return best, true
	}
	return 0, false
}

func (s *Stack) startupStep(sample gptp.OffsetSample, nowPHC float64) {
	if s.IsInitialGM() {
		// The reference grandmaster free-runs and enters fault-tolerant
		// operation once every fresh foreign domain agrees with it within
		// the start-up threshold.
		s.initialGMConvergence(nowPHC)
		return
	}
	ref, ok := s.startupReferenceDomain(nowPHC)
	if !ok || sample.Domain != ref {
		return
	}
	adj, state := s.shm.Servo().Sample(sample.OffsetNS, nowPHC)
	s.applyServo(sample.OffsetNS, adj, state)
	if state == servo.StateLocked && math.Abs(sample.OffsetNS) < s.cfg.StartupThresholdNS {
		s.stable++
		if s.stable >= s.cfg.StartupStableCount {
			s.enterFTOperation()
		}
	} else {
		s.stable = 0
	}
}

// initialGMConvergence checks whether the M−1 other grandmasters have
// synchronized to this reference within the start-up threshold.
func (s *Stack) initialGMConvergence(nowPHC float64) {
	readings := s.shm.Readings(nowPHC)
	freshForeign := 0
	for _, r := range readings {
		if r.Domain == s.cfg.GMDomain || !r.Fresh {
			continue
		}
		if math.Abs(r.OffsetNS) >= s.cfg.StartupThresholdNS {
			s.stable = 0
			return
		}
		freshForeign++
	}
	if freshForeign < 1 {
		return // nothing observed yet; a fully silent network cannot converge
	}
	// The check runs on every foreign sample (≈ (M−1)·8 Hz), so scale the
	// required streak to cover the same wall-clock window as the tracking
	// nodes' per-domain streak.
	required := s.cfg.StartupStableCount * maxInt(1, len(s.cfg.Domains)-1)
	s.stable++
	if s.stable >= required {
		s.enterFTOperation()
	}
}

func (s *Stack) enterFTOperation() {
	s.mode = ModeFTOperation
	s.stable = 0
	// The starvation clock starts now: start-up time must not count toward
	// the holdover window.
	s.lastGoodAgg = s.sched.Now()
	s.emit(EventModeChange, ModeFTOperation.String())
}

// Holdover reports whether the shared servo is currently in holdover.
func (s *Stack) Holdover() bool { return s.holdover }

// holdoverWatch is the starvation watchdog (one tick per sync interval,
// only scheduled when HoldoverWindow > 0): if no full-quorum (2f+1 fresh
// readings) aggregation happened within the window while in fault-tolerant
// operation, freeze the servo.
func (s *Stack) holdoverWatch() {
	if !s.running || s.mode != ModeFTOperation || s.holdover {
		return
	}
	if s.sched.Now()-s.lastGoodAgg > sim.Time(s.cfg.HoldoverWindow) {
		s.enterHoldover()
	}
}

func (s *Stack) enterHoldover() {
	s.holdover = true
	s.reacquire = 0
	s.reacquireAny = 0
	s.shm.Servo().Freeze()
	s.obsHoldEnter.Inc()
	s.emit(EventHoldover, "enter")
}

func (s *Stack) exitHoldover() {
	s.holdover = false
	s.reacquire = 0
	s.reacquireAny = 0
	s.shm.Servo().Thaw(s.cfg.HoldoverMaxSlewPPB)
	s.obsHoldExit.Inc()
	s.emit(EventHoldover, "exit")
}

// aggregate implements the paper's Fig. 1 data path: the first instance per
// synchronization interval wins the FTSHMEM gate, refreshes its own-domain
// slot if it is a grandmaster, computes the FTA over the fresh readings,
// updates the validity flags, and feeds the shared PI controller.
func (s *Stack) aggregate(nowPHC float64) {
	if !s.shm.TryAcquireAdjust(nowPHC, float64(s.cfg.SyncInterval)) {
		return
	}
	if s.master != nil && s.master.Running() {
		s.shm.StoreOwnDomain(s.cfg.GMDomain, nowPHC)
	}
	readings := s.shm.Readings(nowPHC)
	cs, flags, info, err := fta.AggregateWithInfo(readings, s.cfg.F, s.cfg.ValidityThresholdNS, s.cfg.FlagPolicy)
	s.updateFlags(readings, flags)
	if info.Starved {
		s.obsStarved.Inc()
	}
	if err != nil {
		return // too few fresh domains: free-run (or hold over) this interval
	}
	s.aggregations++
	s.obsAggs.Inc()
	s.obsDiscarded.Add(uint64(info.Discarded))
	s.obsDiscardMal.Add(uint64(info.MaliciousDiscarded))
	s.stats.aggregate.Add(cs)
	// The aggregation succeeded, but only a full 2f+1 quorum counts toward
	// the holdover watchdog: the FTA degrades f when domains go stale (a
	// partition leaves this side with too few fresh readings to mask even
	// one Byzantine fault), and running on that reduced evidence for longer
	// than the window is exactly the starvation holdover guards against.
	fullQuorum := info.Used+info.Discarded >= 2*s.cfg.F+1
	if fullQuorum {
		s.lastGoodAgg = s.sched.Now()
		if s.holdover {
			// Re-acquire with hysteresis: only a sustained run of sane
			// full-quorum aggregates thaws the servo, so a flapping
			// partition cannot make it chase transients. A frozen servo
			// never shrinks the offset, though, so a stable quorum whose
			// offsets stay above the threshold must still exit eventually
			// (escape hatch at 4× the streak) — the slew limit then ramps
			// the correction in.
			s.reacquireAny++
			if math.Abs(cs) < s.cfg.ReacquireThresholdNS {
				s.reacquire++
			} else {
				s.reacquire = 0
			}
			if s.reacquire >= s.cfg.ReacquireStableCount ||
				s.reacquireAny >= 4*s.cfg.ReacquireStableCount {
				s.exitHoldover()
			}
		}
	}
	adj, state := s.shm.Servo().Sample(cs, nowPHC)
	s.applyServo(cs, adj, state)
}

func (s *Stack) applyServo(offset, adjPPB float64, state servo.State) {
	if s.cfg.DisableDiscipline {
		return
	}
	switch state {
	case servo.StateJump:
		s.nic.PHC().Step(-offset)
		s.nic.PHC().AdjFreq(adjPPB)
		s.stats.freqPPB.Add(adjPPB)
		s.obsServoSteps.Inc()
		s.emit(EventServoStep, fmt.Sprintf("%.0fns", -offset))
	case servo.StateLocked:
		s.nic.PHC().AdjFreq(adjPPB)
		s.stats.freqPPB.Add(adjPPB)
	}
}

// Statistics exposes the stack's running summary statistics.
func (s *Stack) Statistics() *Statistics { return s.stats }

func (s *Stack) updateFlags(readings []fta.Reading, flags []bool) {
	s.shm.SetFlags(flags)
	changed := len(s.lastFlags) != len(flags)
	if !changed {
		for i := range flags {
			if flags[i] != s.lastFlags[i] {
				changed = true
				break
			}
		}
	}
	if changed {
		s.obsFlagFlips.Inc()
		if s.onEvent != nil {
			detail := ""
			for i, fl := range flags {
				if !fl && readings[i].Fresh {
					detail += fmt.Sprintf("domain %d invalid (offset %.0fns); ", readings[i].Domain, readings[i].OffsetNS)
				}
			}
			s.emit(EventFlagChange, detail)
		}
	}
	s.lastFlags = append(s.lastFlags[:0], flags...)
}

func (s *Stack) emit(kind, detail string) {
	if s.onEvent != nil {
		s.onEvent(Event{Kind: kind, Detail: detail})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
