package ptp4l

import "gptpfta/internal/sim"

// Warm-start snapshot support (sim.Snapshotter). The stack composes the
// snapshots of everything it owns — per-domain slaves, the pdelay endpoint,
// the grandmaster role, the FTSHMEM region and its shared PI servo, and the
// running summary statistics — so a node-level restore needs one call per
// VM. Observability counters live in the experiment's obs.Registry and are
// restored by its own snapshot.

// statisticsSnapshot deep-copies the running summary windows.
type statisticsSnapshot struct {
	perDomain map[int]OffsetStats
	aggregate OffsetStats
	freqPPB   OffsetStats
}

func (st *Statistics) snapshot() *statisticsSnapshot {
	sn := &statisticsSnapshot{
		perDomain: make(map[int]OffsetStats, len(st.perDomain)),
		aggregate: st.aggregate,
		freqPPB:   st.freqPPB,
	}
	for d, s := range st.perDomain {
		sn.perDomain[d] = *s
	}
	return sn
}

func (st *Statistics) restore(sn *statisticsSnapshot) {
	st.perDomain = make(map[int]*OffsetStats, len(sn.perDomain))
	for d, s := range sn.perDomain {
		s := s
		st.perDomain[d] = &s
	}
	st.aggregate = sn.aggregate
	st.freqPPB = sn.freqPPB
}

// stackSnapshot captures one extended-ptp4l stack.
type stackSnapshot struct {
	mode         Mode
	stable       int
	running      bool
	lastFlags    []bool
	aggregations uint64

	holdover     bool
	lastGoodAgg  sim.Time
	reacquire    int
	reacquireAny int
	watchdog     *sim.Ticker

	nic    any
	ld     any
	slaves map[int]any
	master any
	shm    any
	pi     any
	stats  *statisticsSnapshot
}

// Snapshot implements sim.Snapshotter.
func (s *Stack) Snapshot() any {
	sn := &stackSnapshot{
		mode:         s.mode,
		stable:       s.stable,
		running:      s.running,
		lastFlags:    append([]bool(nil), s.lastFlags...),
		aggregations: s.aggregations,
		holdover:     s.holdover,
		lastGoodAgg:  s.lastGoodAgg,
		reacquire:    s.reacquire,
		reacquireAny: s.reacquireAny,
		watchdog:     s.watchdog,
		nic:          s.nic.Snapshot(),
		ld:           s.ld.Snapshot(),
		slaves:       make(map[int]any, len(s.slaves)),
		shm:          s.shm.Snapshot(),
		pi:           s.shm.Servo().Snapshot(),
		stats:        s.stats.snapshot(),
	}
	for d, sl := range s.slaves {
		sn.slaves[d] = sl.Snapshot()
	}
	if s.master != nil {
		sn.master = s.master.Snapshot()
	}
	return sn
}

// Restore implements sim.Snapshotter.
func (s *Stack) Restore(snap any) {
	sn := snap.(*stackSnapshot)
	s.mode = sn.mode
	s.stable = sn.stable
	s.running = sn.running
	s.lastFlags = append(s.lastFlags[:0], sn.lastFlags...)
	s.aggregations = sn.aggregations
	s.holdover = sn.holdover
	s.lastGoodAgg = sn.lastGoodAgg
	s.reacquire = sn.reacquire
	s.reacquireAny = sn.reacquireAny
	s.watchdog = sn.watchdog
	s.nic.Restore(sn.nic)
	s.ld.Restore(sn.ld)
	for d, sl := range s.slaves {
		sl.Restore(sn.slaves[d])
	}
	if s.master != nil {
		s.master.Restore(sn.master)
	}
	s.shm.Restore(sn.shm)
	s.shm.Servo().Restore(sn.pi)
	s.stats.restore(sn.stats)
}
