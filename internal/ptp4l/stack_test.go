package ptp4l

import (
	"math"
	"testing"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/gptp"
	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// rig is a single-bridge testbed: M clock-synchronization VMs, VM i acting
// as grandmaster of domain i, all attached to one time-aware bridge.
type rig struct {
	sched   *sim.Scheduler
	streams *sim.Streams
	bridge  *netsim.Bridge
	relay   *gptp.Relay
	stacks  []*Stack
	links   []*netsim.Link
	events  []Event
}

func newRig(t *testing.T, seed int64, m int, cfgMod func(i int, c *Config)) *rig {
	t.Helper()
	r := &rig{sched: sim.NewScheduler(), streams: sim.NewStreams(seed)}

	mkPHC := func(name string, ppb, off float64) *clock.PHC {
		osc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: ppb, WanderPPBPerSqrtSec: 1},
			r.streams.Stream("osc/"+name), r.sched.Now())
		return clock.NewPHC(r.sched, osc, r.streams.Stream("ts/"+name),
			clock.PHCConfig{TimestampJitterNS: 8, InitialOffsetNS: off})
	}

	r.bridge = netsim.NewBridge("sw", r.sched, r.streams.Stream("br"), mkPHC("sw", 6000, 8),
		netsim.BridgeConfig{
			Ports: m,
			Residence: map[int]netsim.ResidenceModel{
				netsim.PriorityBestEffort: {Base: 1500 * time.Nanosecond, JitterNS: 150},
				netsim.PriorityPTP:        {Base: 1200 * time.Nanosecond, JitterNS: 100},
			},
		})

	domains := make([]int, m)
	for i := range domains {
		domains[i] = i
	}
	relayDomains := make(map[int]gptp.DomainPorts, m)
	for d := 0; d < m; d++ {
		masters := make([]int, 0, m-1)
		for p := 0; p < m; p++ {
			if p != d {
				masters = append(masters, p)
			}
		}
		relayDomains[d] = gptp.DomainPorts{SlavePort: d, MasterPorts: masters}
	}

	for i := 0; i < m; i++ {
		name := string(rune('a' + i))
		ppb := clock.UniformPPB(r.streams.Stream("static/"+name), 5000)
		offset := float64(i) * 200 // boot-time disagreement, ns
		nic := netsim.NewNIC(name, r.sched, mkPHC(name, ppb, offset))
		link, err := netsim.Connect(r.sched, r.streams.Stream("link/"+name),
			netsim.LinkConfig{Propagation: 500 * time.Nanosecond, JitterNS: 20},
			nic.Port(), r.bridge.Port(i))
		if err != nil {
			t.Fatalf("connect: %v", err)
		}
		r.links = append(r.links, link)
		cfg := Config{
			Name:          name,
			Domains:       domains,
			GMDomain:      i,
			InitialDomain: 0,
			F:             1,
			SyncInterval:  125 * time.Millisecond,
		}
		if cfgMod != nil {
			cfgMod(i, &cfg)
		}
		st, err := New(nic, r.sched, r.streams.Stream("stack/"+name), cfg,
			func(e Event) { r.events = append(r.events, e) })
		if err != nil {
			t.Fatalf("stack: %v", err)
		}
		r.stacks = append(r.stacks, st)
	}

	relay, err := gptp.NewRelay(r.bridge, r.sched, r.streams.Stream("relay"),
		gptp.RelayConfig{Domains: relayDomains})
	if err != nil {
		t.Fatalf("relay: %v", err)
	}
	if err := relay.Start(); err != nil {
		t.Fatalf("relay start: %v", err)
	}
	r.relay = relay
	return r
}

func (r *rig) start(t *testing.T) {
	t.Helper()
	for _, s := range r.stacks {
		if err := s.Start(); err != nil {
			t.Fatalf("start %s: %v", s.Name(), err)
		}
	}
}

func (r *rig) run(t *testing.T, d time.Duration) {
	t.Helper()
	if err := r.sched.RunUntil(r.sched.Now().Add(d)); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// phcSpread is the max pairwise PHC disagreement among running stacks.
func (r *rig) phcSpread() float64 {
	var vals []float64
	for _, s := range r.stacks {
		if s.Running() {
			vals = append(vals, s.NIC().PHC().Now())
		}
	}
	var worst float64
	for i := range vals {
		for j := i + 1; j < len(vals); j++ {
			if d := math.Abs(vals[i] - vals[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestStartupConvergesToFTOperation(t *testing.T) {
	r := newRig(t, 1, 4, nil)
	r.start(t)
	r.run(t, 60*time.Second)
	for _, s := range r.stacks {
		if s.Mode() != ModeFTOperation {
			t.Fatalf("%s still in %v after 60 s", s.Name(), s.Mode())
		}
		if s.Aggregations() == 0 {
			t.Fatalf("%s performed no aggregations", s.Name())
		}
	}
	if spread := r.phcSpread(); spread > 1000 {
		t.Fatalf("PHC spread %v ns after convergence, want < 1 µs", spread)
	}
}

func TestSteadyStatePrecision(t *testing.T) {
	r := newRig(t, 2, 4, nil)
	r.start(t)
	r.run(t, 120*time.Second)
	// Sample the spread over 30 s of steady state.
	var worst float64
	for i := 0; i < 30; i++ {
		r.run(t, time.Second)
		if s := r.phcSpread(); s > worst {
			worst = s
		}
	}
	if worst > 800 {
		t.Fatalf("steady-state PHC spread %v ns, want sub-µs", worst)
	}
}

func TestFTAMasksSingleMaliciousGM(t *testing.T) {
	r := newRig(t, 3, 4, nil)
	r.start(t)
	r.run(t, 90*time.Second)
	r.stacks[3].Compromise(-24000) // the paper's attack on one GM
	if !r.stacks[3].Compromised() {
		t.Fatal("Compromised() false after Compromise")
	}
	r.run(t, 120*time.Second)
	// Benign stacks must stay mutually synchronized.
	var vals []float64
	for _, s := range r.stacks[:3] {
		vals = append(vals, s.NIC().PHC().Now())
	}
	var worst float64
	for i := range vals {
		for j := i + 1; j < len(vals); j++ {
			if d := math.Abs(vals[i] - vals[j]); d > worst {
				worst = d
			}
		}
	}
	if worst > 2000 {
		t.Fatalf("benign spread %v ns under one Byzantine GM, want masked (< 2 µs)", worst)
	}
	// The malicious domain must be flagged invalid somewhere.
	flagged := false
	for _, s := range r.stacks[:3] {
		fl := s.FTSHMEM().Flags()
		if len(fl) == 4 && !fl[3] {
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("malicious domain never flagged invalid")
	}
}

func TestTwoMaliciousGMsBreakSynchronization(t *testing.T) {
	r := newRig(t, 4, 4, nil)
	r.start(t)
	r.run(t, 90*time.Second)
	base := r.phcSpread()
	r.stacks[0].Compromise(-24000)
	r.stacks[3].Compromise(-24000)
	r.run(t, 300*time.Second)
	after := r.phcSpread()
	if after < 10*base || after < 5000 {
		t.Fatalf("two colluding Byzantine GMs should break sync: spread %v ns -> %v ns", base, after)
	}
}

func TestFailSilentGMToleratedAndRejoins(t *testing.T) {
	r := newRig(t, 5, 4, nil)
	r.start(t)
	r.run(t, 90*time.Second)

	r.stacks[2].Fail()
	r.run(t, 60*time.Second)
	var vals []float64
	for _, s := range r.stacks {
		if s.Running() {
			vals = append(vals, s.NIC().PHC().Now())
		}
	}
	if len(vals) != 3 {
		t.Fatalf("running stacks = %d, want 3", len(vals))
	}
	var worst float64
	for i := range vals {
		for j := i + 1; j < len(vals); j++ {
			if d := math.Abs(vals[i] - vals[j]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1500 {
		t.Fatalf("survivors' spread %v ns with a fail-silent GM, want bounded", worst)
	}

	if err := r.stacks[2].Reboot(); err != nil {
		t.Fatalf("reboot: %v", err)
	}
	r.run(t, 120*time.Second)
	if r.stacks[2].Mode() != ModeFTOperation {
		t.Fatalf("rebooted GM still in %v", r.stacks[2].Mode())
	}
	if spread := r.phcSpread(); spread > 1500 {
		t.Fatalf("spread %v ns after rejoin, want bounded", spread)
	}
}

func TestRebootWhileInitialGMDown(t *testing.T) {
	// A node rebooting while the initial domain's GM is fail-silent must
	// still rejoin via the fallback start-up reference.
	r := newRig(t, 6, 4, nil)
	r.start(t)
	r.run(t, 90*time.Second)
	r.stacks[0].Fail() // initial domain's GM
	r.run(t, 10*time.Second)
	r.stacks[2].Fail()
	r.run(t, 10*time.Second)
	if err := r.stacks[2].Reboot(); err != nil {
		t.Fatalf("reboot: %v", err)
	}
	r.run(t, 180*time.Second)
	if r.stacks[2].Mode() != ModeFTOperation {
		t.Fatalf("stack c rejoining without the initial GM: mode %v", r.stacks[2].Mode())
	}
}

func TestGateLimitsAggregationRate(t *testing.T) {
	r := newRig(t, 7, 4, nil)
	r.start(t)
	r.run(t, 30*time.Second)
	aggBefore := r.stacks[1].Aggregations()
	r.run(t, 10*time.Second)
	aggAfter := r.stacks[1].Aggregations()
	got := aggAfter - aggBefore
	// At S = 125 ms the gate admits at most one aggregation per interval:
	// ≤ 80 in 10 s (plus scheduling slack).
	if got > 85 {
		t.Fatalf("%d aggregations in 10 s, gate must cap at ~80", got)
	}
	if got < 40 {
		t.Fatalf("only %d aggregations in 10 s, expected ~80", got)
	}
}

func TestEventsEmitted(t *testing.T) {
	r := newRig(t, 8, 4, func(i int, c *Config) {
		c.TxTimestampTimeoutProb = 0.05
	})
	r.start(t)
	r.run(t, 120*time.Second)
	var modeChanges, faults int
	for _, e := range r.events {
		switch e.Kind {
		case EventModeChange:
			modeChanges++
		case EventFault:
			faults++
		}
	}
	if modeChanges < 4 {
		t.Fatalf("mode changes = %d, want >= 4 (every stack enters FT)", modeChanges)
	}
	if faults == 0 {
		t.Fatal("no transient faults at p=0.05 over 120 s")
	}
}

func TestConfigValidation(t *testing.T) {
	sched := sim.NewScheduler()
	streams := sim.NewStreams(1)
	osc := clock.NewOscillator(clock.OscillatorConfig{}, nil, 0)
	phc := clock.NewPHC(sched, osc, nil, clock.PHCConfig{})
	nic := netsim.NewNIC("x", sched, phc)
	if _, err := New(nic, sched, streams.Stream("x"), Config{Name: "x"}, nil); err == nil {
		t.Fatal("empty domain list accepted")
	}
}

func TestDoubleStartAndBadReboot(t *testing.T) {
	r := newRig(t, 9, 2, func(i int, c *Config) { c.F = 0 })
	r.start(t)
	if err := r.stacks[0].Start(); err == nil {
		t.Fatal("double start accepted")
	}
	if err := r.stacks[0].Reboot(); err == nil {
		t.Fatal("reboot while running accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeStartup.String() != "startup" || ModeFTOperation.String() != "ft_operation" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Fatal("unknown mode string wrong")
	}
}
