package fta

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestAverageBasic(t *testing.T) {
	tests := []struct {
		name     string
		readings []float64
		f        int
		want     float64
	}{
		{"paper config N=4 f=1", []float64{-100, 0, 50, 2000}, 1, 25},
		{"all equal", []float64{7, 7, 7}, 1, 7},
		{"f=0 plain mean", []float64{1, 2, 3, 4}, 0, 2.5},
		{"N=3 f=1 median", []float64{-1e9, 10, 1e9}, 1, 10},
		{"N=5 f=2 median", []float64{-1e9, -5, 10, 99, 1e9}, 2, 10},
		{"unsorted input", []float64{2000, -100, 50, 0}, 1, 25},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Average(tc.readings, tc.f)
			if err != nil {
				t.Fatalf("Average: %v", err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("Average = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestAverageErrors(t *testing.T) {
	if _, err := Average([]float64{1, 2}, 1); !errors.Is(err, ErrInsufficientClocks) {
		t.Fatalf("err = %v, want ErrInsufficientClocks", err)
	}
	if _, err := Average(nil, 0); !errors.Is(err, ErrInsufficientClocks) {
		t.Fatalf("err = %v, want ErrInsufficientClocks for empty input", err)
	}
	if _, err := Average([]float64{1, 2, 3}, -1); err == nil {
		t.Fatal("negative f accepted")
	}
}

func TestAverageDoesNotMutateInput(t *testing.T) {
	in := []float64{5, 1, 4, 2}
	if _, err := Average(in, 1); err != nil {
		t.Fatalf("Average: %v", err)
	}
	want := []float64{5, 1, 4, 2}
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("input mutated: %v", in)
		}
	}
}

// TestAverageMaskingProperty is the paper's central claim: with n >= 2f+1
// readings of which at most f are arbitrary and the rest lie inside a
// window, the FTA result lies inside that window.
func TestAverageMaskingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)        // 3..8
		faults := r.Intn(n/2 + 1) // f <= floor(n/2)
		if n < 2*faults+1 {
			faults = (n - 1) / 2
		}
		lo := -1000 + r.Float64()*500
		hi := lo + 100 + r.Float64()*500
		readings := make([]float64, 0, n)
		for i := 0; i < n-faults; i++ {
			readings = append(readings, lo+r.Float64()*(hi-lo))
		}
		for i := 0; i < faults; i++ {
			readings = append(readings, (r.Float64()-0.5)*1e12) // Byzantine
		}
		r.Shuffle(len(readings), func(i, j int) {
			readings[i], readings[j] = readings[j], readings[i]
		})
		got, err := Average(readings, faults)
		if err != nil {
			return false
		}
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	for i := 0; i < 500; i++ {
		if !f(rng.Int63()) {
			t.Fatalf("masking property violated (iteration %d)", i)
		}
	}
}

// TestAverageWithinInputRange property: the FTA always lies within
// [min, max] of the kept readings, hence of all readings.
func TestAverageWithinInputRange(t *testing.T) {
	prop := func(raw []int16, fRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		f := int(fRaw) % (len(raw)/2 + 1)
		if len(raw) < 2*f+1 {
			return true
		}
		readings := make([]float64, len(raw))
		for i, v := range raw {
			readings[i] = float64(v)
		}
		got, err := Average(readings, f)
		if err != nil {
			return false
		}
		s := append([]float64(nil), readings...)
		sort.Float64s(s)
		return got >= s[0]-1e-9 && got <= s[len(s)-1]+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestAveragePermutationInvariant property: input order never matters.
func TestAveragePermutationInvariant(t *testing.T) {
	prop := func(raw []int16, seed int64) bool {
		if len(raw) < 3 {
			return true
		}
		f := 1
		readings := make([]float64, len(raw))
		for i, v := range raw {
			readings[i] = float64(v)
		}
		a, err := Average(readings, f)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(readings), func(i, j int) {
			readings[i], readings[j] = readings[j], readings[i]
		})
		b, err := Average(readings, f)
		if err != nil {
			return false
		}
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestU(t *testing.T) {
	tests := []struct {
		n, f int
		want float64
	}{
		{4, 1, 2}, // the paper's configuration
		{4, 0, 1},
		{7, 2, 3},
		{5, 1, 1.5},
		{10, 3, 4},
	}
	for _, tc := range tests {
		if got := U(tc.n, tc.f); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("U(%d,%d) = %v, want %v", tc.n, tc.f, got, tc.want)
		}
	}
	if !math.IsInf(U(3, 1), 1) {
		t.Error("U(3,1) should be +Inf (N <= 3f)")
	}
	if !math.IsInf(U(6, 2), 1) {
		t.Error("U(6,2) should be +Inf (N <= 3f)")
	}
}

func TestBoundPaperValues(t *testing.T) {
	// §III-B: E = 5068 ns, Γ = 1.25 µs → Π = 2(E+Γ) = 12.636 µs.
	got := Bound(4, 1, 5068*time.Nanosecond, 1250*time.Nanosecond)
	if got != 12636*time.Nanosecond {
		t.Fatalf("Bound = %v, want 12.636µs", got)
	}
	// §III-C: Π = 11.42 µs with E = 4460 ns.
	got = Bound(4, 1, 4460*time.Nanosecond, 1250*time.Nanosecond)
	if got != 11420*time.Nanosecond {
		t.Fatalf("Bound = %v, want 11.42µs", got)
	}
}

func TestBoundNonConverging(t *testing.T) {
	if got := Bound(3, 1, time.Microsecond, time.Microsecond); got != time.Duration(math.MaxInt64) {
		t.Fatalf("Bound for N<=3f = %v, want MaxInt64 sentinel", got)
	}
}

func fresh(domain int, off float64) Reading {
	return Reading{Domain: domain, OffsetNS: off, Fresh: true}
}

func TestValidityFlags(t *testing.T) {
	readings := []Reading{
		fresh(0, 10), fresh(1, -20), fresh(2, 5), fresh(3, -24000),
	}
	flags := ValidityFlags(readings, 1000)
	want := []bool{true, true, true, false}
	for i := range want {
		if flags[i] != want[i] {
			t.Fatalf("flags = %v, want %v", flags, want)
		}
	}
}

func TestValidityFlagsStale(t *testing.T) {
	readings := []Reading{
		fresh(0, 10), {Domain: 1, OffsetNS: 0, Fresh: false}, fresh(2, 12),
	}
	flags := ValidityFlags(readings, 100)
	if flags[1] {
		t.Fatal("stale reading flagged valid")
	}
	if !flags[0] || !flags[2] {
		t.Fatalf("fresh close readings flagged invalid: %v", flags)
	}
}

func TestValidityFlagsSingleFresh(t *testing.T) {
	readings := []Reading{fresh(0, 99)}
	flags := ValidityFlags(readings, 1)
	if !flags[0] {
		t.Fatal("lone fresh reading must be considered valid")
	}
}

func TestAggregateMonitorPolicyMasksOneByzantine(t *testing.T) {
	readings := []Reading{
		fresh(0, -24000), fresh(1, 15), fresh(2, -10), fresh(3, 20),
	}
	got, flags, err := Aggregate(readings, 1, 1000, FlagMonitor)
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	if flags[0] {
		t.Fatal("Byzantine offset not flagged")
	}
	if got < -10 || got > 20 {
		t.Fatalf("aggregate = %v, escaped the honest window [-10, 20]", got)
	}
}

func TestAggregateTwoByzantinePullResult(t *testing.T) {
	// Two colluding faulty GMs exceed f=1: the FTA result is pulled —
	// exactly the Fig. 3a failure mode.
	readings := []Reading{
		fresh(0, -24000), fresh(1, 10), fresh(2, -5), fresh(3, -24000),
	}
	got, _, err := Aggregate(readings, 1, 1000, FlagMonitor)
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	if got > -1000 {
		t.Fatalf("aggregate = %v, expected the colluding fault to pull the result", got)
	}
}

func TestAggregateStaleDegradesF(t *testing.T) {
	// A fail-silent GM leaves 3 fresh readings; FTA degrades to the median.
	readings := []Reading{
		{Domain: 0, Fresh: false}, fresh(1, 100), fresh(2, 10), fresh(3, -80),
	}
	got, _, err := Aggregate(readings, 1, 1e6, FlagMonitor)
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	if got != 10 {
		t.Fatalf("aggregate = %v, want median 10", got)
	}
}

func TestAggregateExcludePolicy(t *testing.T) {
	readings := []Reading{
		fresh(0, -24000), fresh(1, 15), fresh(2, -10), fresh(3, 20),
	}
	got, _, err := Aggregate(readings, 1, 1000, FlagExclude)
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	// With the outlier excluded the remaining three are all honest; result
	// is their median (f degraded to 1 over 3).
	if got != 15 {
		t.Fatalf("aggregate = %v, want 15", got)
	}
}

func TestAggregateExcludeFallsBackWhenStarved(t *testing.T) {
	// Everything disagrees with everything: exclusion would leave nothing,
	// so aggregation falls back to all fresh readings.
	readings := []Reading{
		fresh(0, -50000), fresh(1, 50000), fresh(2, 150000),
	}
	got, _, err := Aggregate(readings, 1, 10, FlagExclude)
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	if got != 50000 {
		t.Fatalf("aggregate = %v, want median 50000", got)
	}
}

func TestAggregateAllStale(t *testing.T) {
	readings := []Reading{{Domain: 0}, {Domain: 1}}
	if _, _, err := Aggregate(readings, 1, 100, FlagMonitor); !errors.Is(err, ErrInsufficientClocks) {
		t.Fatalf("err = %v, want ErrInsufficientClocks", err)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd = %v, want 2", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median even = %v, want 2.5", m)
	}
}
