package fta_test

import (
	"fmt"
	"time"

	"gptpfta/internal/fta"
)

// The paper's configuration: four gPTP domains, one Byzantine grandmaster
// distributing timestamps falsified by −24 µs. The fault-tolerant average
// drops the extremes and the result stays inside the honest window.
func ExampleAverage() {
	offsets := []float64{120, -80, 40, -24000} // ns; the last one lies
	masked, err := fta.Average(offsets, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("FTA offset: %.0f ns\n", masked)
	// Output:
	// FTA offset: -20 ns
}

// Instantiating the precision bound of §III-B: E = 5068 ns, Γ = 1.25 µs,
// N = 4 domains, f = 1 → Π = 2(E+Γ) = 12.636 µs.
func ExampleBound() {
	pi := fta.Bound(4, 1, 5068*time.Nanosecond, 1250*time.Nanosecond)
	fmt.Println("Pi =", pi)
	// Output:
	// Pi = 12.636µs
}

// The amortisation factor u(N, f) = (N−2f)/(N−3f) of the convergence
// function.
func ExampleU() {
	fmt.Println(fta.U(4, 1))
	fmt.Println(fta.U(7, 2))
	// Output:
	// 2
	// 3
}

// A full FTSHMEM aggregation step: freshness, validity flags, FTA.
func ExampleAggregate() {
	readings := []fta.Reading{
		{Domain: 0, OffsetNS: 15, Fresh: true},
		{Domain: 1, OffsetNS: -10, Fresh: true},
		{Domain: 2, OffsetNS: 20, Fresh: true},
		{Domain: 3, OffsetNS: -24000, Fresh: true}, // Byzantine
	}
	offset, flags, err := fta.Aggregate(readings, 1, 1000, fta.FlagMonitor)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("aggregated: %.1f ns, flags: %v\n", offset, flags)
	// Output:
	// aggregated: 2.5 ns, flags: [true true true false]
}
