// Package fta implements the fault-tolerant average (FTA) convergence
// function of Kopetz and Ochsenreiter ("Clock Synchronization in Distributed
// Real-Time Systems", IEEE ToC 1987) that the paper's extended ptp4l uses to
// aggregate the master offsets of M gPTP domains, together with the
// convergence-function precision bound Π(N, f, E, Γ) = u(N, f)·(E + Γ) used
// in §III-A3 of the paper.
package fta

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// ErrInsufficientClocks is returned when fewer than 2f+1 readings are
// available: the FTA cannot mask f Byzantine faults below that count.
var ErrInsufficientClocks = errors.New("fta: fewer than 2f+1 clock readings")

// Average sorts the readings, discards the f smallest and f largest, and
// returns the arithmetic mean of the remainder. It does not modify the
// input slice. With at least 2f+1 readings of which at most f are arbitrary
// (Byzantine) and the rest lie within a window Π, the result is guaranteed
// to lie within that window — the masking property the paper relies on for
// Byzantine grandmaster tolerance.
func Average(readings []float64, f int) (float64, error) {
	if f < 0 {
		return 0, fmt.Errorf("fta: negative fault count %d", f)
	}
	n := len(readings)
	if n < 2*f+1 {
		return 0, fmt.Errorf("%w: n=%d f=%d", ErrInsufficientClocks, n, f)
	}
	sorted := make([]float64, n)
	copy(sorted, readings)
	sort.Float64s(sorted)
	kept := sorted[f : n-f]
	var sum float64
	for _, v := range kept {
		sum += v
	}
	return sum / float64(len(kept)), nil
}

// U computes the amortisation factor u(N, f) = (N − 2f) / (N − 3f) of the
// FTA convergence function. For the paper's configuration N = 4, f = 1 it
// evaluates to 2, yielding the bound Π = 2(E + Γ). It returns +Inf when
// N ≤ 3f (the algorithm does not converge).
func U(n, f int) float64 {
	if n <= 3*f {
		return math.Inf(1)
	}
	return float64(n-2*f) / float64(n-3*f)
}

// Bound instantiates the convergence-function precision bound
// Π(N, f, E, Γ) = u(N, f)·(E + Γ), where E is the reading error (max minus
// min network latency between any two nodes) and Γ = 2·r_max·S is the drift
// offset for maximum drift rate r_max over resynchronisation interval S.
func Bound(n, f int, readingError, driftOffset time.Duration) time.Duration {
	u := U(n, f)
	if math.IsInf(u, 1) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(u * float64(readingError+driftOffset))
}

// Reading is one domain's grandmaster offset sample as stored in FTSHMEM.
type Reading struct {
	// Domain is the gPTP domain number the offset was derived from.
	Domain int
	// OffsetNS is the grandmaster offset in nanoseconds (local minus GM).
	OffsetNS float64
	// At is the local PHC time the offset was computed at; stale readings
	// (no Sync received, fail-silent GM) are excluded from aggregation.
	At float64
	// Fresh reports whether the reading is recent enough to use.
	Fresh bool
}

// ValidityFlags computes, for each fresh reading, whether its offset lies
// within threshold of the median of the other fresh readings — the array of
// M booleans the paper keeps in FTSHMEM to expose which grandmaster clocks
// disagree with the rest. Stale readings are flagged false.
func ValidityFlags(readings []Reading, threshold float64) []bool {
	flags := make([]bool, len(readings))
	for i, r := range readings {
		if !r.Fresh {
			continue
		}
		others := make([]float64, 0, len(readings)-1)
		for j, o := range readings {
			if j == i || !o.Fresh {
				continue
			}
			others = append(others, o.OffsetNS)
		}
		if len(others) == 0 {
			flags[i] = true // nothing to compare against
			continue
		}
		flags[i] = math.Abs(r.OffsetNS-median(others)) <= threshold
	}
	return flags
}

func median(v []float64) float64 {
	s := make([]float64, len(v))
	copy(s, v)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// FlagPolicy selects how validity flags influence aggregation.
type FlagPolicy int

const (
	// FlagMonitor computes the flags for monitoring only; the FTA runs
	// over all fresh readings (the masking property handles up to f
	// faults). This is the paper's configuration.
	FlagMonitor FlagPolicy = iota + 1
	// FlagExclude removes flagged-invalid readings before the FTA when
	// enough readings remain; an ablation studied in the benchmarks.
	FlagExclude
)

// AggregateInfo reports what one aggregation step actually did, for
// observability: how many readings the FTA averaged, how many extreme
// readings it discarded (2·f_effective), and whether FlagExclude starved
// the quorum and fell back to all fresh readings.
type AggregateInfo struct {
	Used      int  // readings averaged after filtering and discards
	Discarded int  // extreme readings trimmed by the FTA (2·f_eff)
	Starved   bool // FlagExclude left < 2f+1 readings and fell back
	// MaliciousDiscarded counts trimmed extremes that the validity flags
	// had also marked invalid — readings the FTA discarded *as malicious*
	// (a falsified or delay-attacked domain), as opposed to the benign
	// extremes trimming always removes. Under FlagExclude only the
	// starvation fallback can produce them (flagged readings are removed
	// before the FTA otherwise).
	MaliciousDiscarded int
}

// Aggregate runs the full FTSHMEM aggregation step: freshness filtering,
// validity flags, optional exclusion, and the FTA. It returns the
// aggregated master offset, the flags (indexed like readings), and an error
// if fewer than 2f+1 usable readings remain.
func Aggregate(readings []Reading, f int, threshold float64, policy FlagPolicy) (float64, []bool, error) {
	avg, flags, _, err := AggregateWithInfo(readings, f, threshold, policy)
	return avg, flags, err
}

// AggregateWithInfo is Aggregate plus an AggregateInfo describing the step.
func AggregateWithInfo(readings []Reading, f int, threshold float64, policy FlagPolicy) (float64, []bool, AggregateInfo, error) {
	flags := ValidityFlags(readings, threshold)
	usable := make([]float64, 0, len(readings))
	invalid := make([]bool, 0, len(readings)) // parallel to usable
	for i, r := range readings {
		if !r.Fresh {
			continue
		}
		if policy == FlagExclude && !flags[i] {
			continue
		}
		usable = append(usable, r.OffsetNS)
		invalid = append(invalid, !flags[i])
	}
	var starved bool
	if policy == FlagExclude && len(usable) < 2*f+1 {
		// Exclusion starved the quorum; fall back to all fresh readings
		// so that a burst of disagreement cannot halt synchronisation.
		starved = true
		usable = usable[:0]
		invalid = invalid[:0]
		for i, r := range readings {
			if r.Fresh {
				usable = append(usable, r.OffsetNS)
				invalid = append(invalid, !flags[i])
			}
		}
	}
	// Degrade f when too few domains remain (e.g. a fail-silent GM during
	// reboot): with n fresh readings the largest maskable fault count is
	// floor((n-1)/2).
	eff := f
	if maxF := (len(usable) - 1) / 2; eff > maxF {
		eff = maxF
	}
	if eff < 0 {
		eff = 0
	}
	info := AggregateInfo{Used: len(usable) - 2*eff, Discarded: 2 * eff, Starved: starved,
		MaliciousDiscarded: maliciousDiscarded(usable, invalid, eff)}
	avg, err := Average(usable, eff)
	if err != nil {
		return 0, flags, AggregateInfo{Starved: starved}, err
	}
	return avg, flags, info, nil
}

// maliciousDiscarded counts the eff smallest and eff largest of the usable
// readings that were also flagged invalid. Ties at the trim boundary are
// broken by input order, matching the stable sort; any tie-break is sound
// for counting since tied readings are interchangeable in the trim.
func maliciousDiscarded(usable []float64, invalid []bool, eff int) int {
	if eff <= 0 || len(usable) < 2*eff {
		return 0
	}
	idx := make([]int, len(usable))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return usable[idx[a]] < usable[idx[b]] })
	n := 0
	for k := 0; k < eff; k++ {
		if invalid[idx[k]] {
			n++
		}
		if invalid[idx[len(idx)-1-k]] {
			n++
		}
	}
	return n
}
