package gptp

import (
	"errors"
	"fmt"
	"time"

	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// The paper's testbed disables the best master clock algorithm entirely
// ("external port configuration enabled, meaning that there is no BMCA
// picking GM clocks") because spatially separated, statically assigned
// grandmasters are what the FTA aggregates. A complete 802.1AS
// implementation nevertheless ships the BMCA; this file provides it, and
// the ablation benchmarks contrast BMCA re-election gaps with the FTA's
// continuous masking.

// PortRole is a gPTP port state as computed by the BMCA.
type PortRole int

const (
	// RoleDisabled: the port does not participate.
	RoleDisabled PortRole = iota + 1
	// RoleMaster: the port transmits time (Announce + Sync).
	RoleMaster
	// RoleSlave: the port receives time from the current grandmaster.
	RoleSlave
	// RolePassive: the port neither sends nor receives time (loop
	// prevention toward a better master).
	RolePassive
)

// String implements fmt.Stringer.
func (r PortRole) String() string {
	switch r {
	case RoleDisabled:
		return "disabled"
	case RoleMaster:
		return "master"
	case RoleSlave:
		return "slave"
	case RolePassive:
		return "passive"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// SystemIdentity is the clock-quality tuple a time-aware system advertises
// (IEEE 1588 defaultDS subset, ordered per the dataset comparison).
type SystemIdentity struct {
	Priority1  uint8
	ClockClass uint8
	Accuracy   uint8
	Variance   uint16
	Priority2  uint8
	ClockID    string
}

// PriorityVector is the comparable BMCA tuple.
type PriorityVector struct {
	GM           SystemIdentity
	StepsRemoved int
	SourceID     string // transmitting port identity (tiebreak)
}

// Compare orders two priority vectors: negative if v is better than o.
func (v PriorityVector) Compare(o PriorityVector) int {
	if c := compareU8(v.GM.Priority1, o.GM.Priority1); c != 0 {
		return c
	}
	if c := compareU8(v.GM.ClockClass, o.GM.ClockClass); c != 0 {
		return c
	}
	if c := compareU8(v.GM.Accuracy, o.GM.Accuracy); c != 0 {
		return c
	}
	if v.GM.Variance != o.GM.Variance {
		if v.GM.Variance < o.GM.Variance {
			return -1
		}
		return 1
	}
	if c := compareU8(v.GM.Priority2, o.GM.Priority2); c != 0 {
		return c
	}
	if v.GM.ClockID != o.GM.ClockID {
		if v.GM.ClockID < o.GM.ClockID {
			return -1
		}
		return 1
	}
	if v.StepsRemoved != o.StepsRemoved {
		if v.StepsRemoved < o.StepsRemoved {
			return -1
		}
		return 1
	}
	if v.SourceID != o.SourceID {
		if v.SourceID < o.SourceID {
			return -1
		}
		return 1
	}
	return 0
}

func compareU8(a, b uint8) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Announce is the BMCA's advertisement message. Path is the IEEE 802.1AS
// path trace (clause 10.5.3.2.8): the clock identities the announce has
// traversed. A system discards announces whose path contains itself —
// without this, redundant meshes reflect a dead grandmaster's vectors
// between bridges forever (count-to-infinity).
type Announce struct {
	Domain       int
	GM           SystemIdentity
	StepsRemoved int
	SourceID     string
	Seq          uint16
	Path         []string
}

// BMCAConfig parameterises a per-domain BMCA engine.
type BMCAConfig struct {
	Domain int
	Self   SystemIdentity
	// AnnounceInterval between Announce transmissions. Default 1 s.
	AnnounceInterval time.Duration
	// ReceiptTimeoutCount: a port's best master ages out after this many
	// missed announce intervals. Default 3 (802.1AS).
	ReceiptTimeoutCount int
}

func (c BMCAConfig) withDefaults() BMCAConfig {
	if c.AnnounceInterval <= 0 {
		c.AnnounceInterval = time.Second
	}
	if c.ReceiptTimeoutCount <= 0 {
		c.ReceiptTimeoutCount = 3
	}
	return c
}

// RoleChange notifies the owner that the BMCA recomputed port roles.
type RoleChange struct {
	Domain    int
	Roles     []PortRole
	SlavePort int // -1 when this system is the grandmaster
	IsGM      bool
	GM        SystemIdentity
}

// BMCA runs the best master clock algorithm for one domain on one
// time-aware system with N ports.
type BMCA struct {
	cfg   BMCAConfig
	sched *sim.Scheduler
	tx    []TxFunc
	onChg func(RoleChange)

	ticker *sim.Ticker
	seq    uint16

	best     []*PriorityVector // best announce per port
	bestPath [][]string        // path trace of each port's best announce
	bestAt   []sim.Time
	roles    []PortRole
	slave    int
	isGM     bool
	gmVector PriorityVector
}

// NewBMCA creates an engine with one TxFunc per port.
func NewBMCA(sched *sim.Scheduler, tx []TxFunc, cfg BMCAConfig, onChange func(RoleChange)) (*BMCA, error) {
	if len(tx) == 0 {
		return nil, errors.New("gptp: BMCA needs at least one port")
	}
	cfg = cfg.withDefaults()
	b := &BMCA{
		cfg:      cfg,
		sched:    sched,
		tx:       append([]TxFunc(nil), tx...),
		onChg:    onChange,
		best:     make([]*PriorityVector, len(tx)),
		bestPath: make([][]string, len(tx)),
		bestAt:   make([]sim.Time, len(tx)),
		roles:    make([]PortRole, len(tx)),
		slave:    -1,
		isGM:     true,
	}
	b.gmVector = b.ownVector()
	for i := range b.roles {
		b.roles[i] = RoleMaster
	}
	return b, nil
}

func (b *BMCA) ownVector() PriorityVector {
	return PriorityVector{GM: b.cfg.Self, StepsRemoved: 0, SourceID: b.cfg.Self.ClockID}
}

// Start begins periodic Announce emission and role recomputation. The
// initial state (grandmaster until a better clock is heard) is reported
// through the role-change callback so owners can arm their Master role.
func (b *BMCA) Start() error {
	if b.ticker != nil {
		return errors.New("gptp: BMCA already started")
	}
	t, err := b.sched.Every(b.sched.Now(), b.cfg.AnnounceInterval, b.tick)
	if err != nil {
		return err
	}
	b.ticker = t
	if b.onChg != nil {
		b.onChg(RoleChange{
			Domain:    b.cfg.Domain,
			Roles:     append([]PortRole(nil), b.roles...),
			SlavePort: b.slave,
			IsGM:      b.isGM,
			GM:        b.gmVector.GM,
		})
	}
	return nil
}

// Stop halts the engine (fail-silent system).
func (b *BMCA) Stop() {
	if b.ticker != nil {
		b.ticker.Stop()
		b.ticker = nil
	}
}

// Roles snapshots the current port roles.
func (b *BMCA) Roles() []PortRole { return append([]PortRole(nil), b.roles...) }

// IsGM reports whether this system currently believes it is grandmaster.
func (b *BMCA) IsGM() bool { return b.isGM }

// SlavePort reports the current slave port, or -1 when grandmaster.
func (b *BMCA) SlavePort() int { return b.slave }

// GM reports the identity of the elected grandmaster.
func (b *BMCA) GM() SystemIdentity { return b.gmVector.GM }

// HandleAnnounce processes an Announce received on a port.
func (b *BMCA) HandleAnnounce(port int, a *Announce) {
	if a.Domain != b.cfg.Domain || port < 0 || port >= len(b.best) {
		return
	}
	if a.GM.ClockID == b.cfg.Self.ClockID {
		return // our own advertisement looped back
	}
	for _, hop := range a.Path {
		if hop == b.cfg.Self.ClockID {
			return // path trace: the announce already traversed us
		}
	}
	v := &PriorityVector{GM: a.GM, StepsRemoved: a.StepsRemoved, SourceID: a.SourceID}
	b.best[port] = v
	b.bestPath[port] = append([]string(nil), a.Path...)
	b.bestAt[port] = b.sched.Now()
	b.recompute()
}

// tick ages out stale port masters, recomputes roles, and transmits
// Announce on master ports.
func (b *BMCA) tick() {
	timeout := time.Duration(b.cfg.ReceiptTimeoutCount) * b.cfg.AnnounceInterval
	now := b.sched.Now()
	for i, v := range b.best {
		if v != nil && now.Sub(b.bestAt[i]) > timeout {
			b.best[i] = nil
			b.bestPath[i] = nil
		}
	}
	b.recompute()
	b.seq++
	// Path trace: the path of the vector we advertise, extended by us.
	path := []string{b.cfg.Self.ClockID}
	if !b.isGM && b.slave >= 0 {
		path = append(append([]string(nil), b.bestPath[b.slave]...), b.cfg.Self.ClockID)
	}
	for i, role := range b.roles {
		if role != RoleMaster {
			continue
		}
		a := &Announce{
			Domain:       b.cfg.Domain,
			GM:           b.gmVector.GM,
			StepsRemoved: b.gmVector.StepsRemoved + boolInt(!b.isGM),
			SourceID:     fmt.Sprintf("%s/p%d", b.cfg.Self.ClockID, i),
			Seq:          b.seq,
			Path:         path,
		}
		b.tx[i](newFrame(netsim.Address("nic/"+b.cfg.Self.ClockID), a))
	}
}

func boolInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// recompute runs the dataset comparison and updates port roles.
func (b *BMCA) recompute() {
	own := b.ownVector()
	bestVec := own
	bestPort := -1
	for i, v := range b.best {
		if v == nil {
			continue
		}
		if v.Compare(bestVec) < 0 {
			bestVec = *v
			bestPort = i
		}
	}
	newIsGM := bestPort == -1
	newRoles := make([]PortRole, len(b.roles))
	for i := range newRoles {
		if i == bestPort {
			newRoles[i] = RoleSlave
			continue
		}
		// Master-path comparison: the port stays master only if what we
		// would advertise there beats what the neighbor advertises;
		// otherwise it goes passive to prevent a timing loop.
		myAdvert := PriorityVector{
			GM:           bestVec.GM,
			StepsRemoved: bestVec.StepsRemoved + boolInt(!newIsGM),
			SourceID:     fmt.Sprintf("%s/p%d", b.cfg.Self.ClockID, i),
		}
		if b.best[i] != nil && b.best[i].Compare(myAdvert) < 0 {
			newRoles[i] = RolePassive
			continue
		}
		newRoles[i] = RoleMaster
	}

	changed := newIsGM != b.isGM || bestPort != b.slave || bestVec.Compare(b.gmVector) != 0
	if !changed {
		for i := range newRoles {
			if newRoles[i] != b.roles[i] {
				changed = true
				break
			}
		}
	}
	b.isGM = newIsGM
	b.slave = bestPort
	b.gmVector = bestVec
	b.roles = newRoles
	if changed && b.onChg != nil {
		b.onChg(RoleChange{
			Domain:    b.cfg.Domain,
			Roles:     append([]PortRole(nil), newRoles...),
			SlavePort: bestPort,
			IsGM:      newIsGM,
			GM:        bestVec.GM,
		})
	}
}
