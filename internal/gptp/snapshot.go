package gptp

import "gptpfta/internal/sim"

// Warm-start snapshot support (sim.Snapshotter) for the gPTP layer. All
// components are rewound in place, which keeps the egress-timestamp and
// FollowUp callbacks already queued in the scheduler valid across a fork:
// they capture the relay and its *relayDomain records, never the mutable
// per-Sync state (that is looked up by sequence number at fire time).

// linkDelaySnapshot captures one peer-delay endpoint.
type linkDelaySnapshot struct {
	ticker         *sim.Ticker // revalidated by the scheduler's restore
	seq            uint16
	reqT1          float64
	respT2, respT4 float64
	havePair       bool
	meanDelayNS    float64
	haveDelay      bool
	samples        uint64
	prevT3, prevT4 float64
	havePrev       bool
	rateRatio      float64
}

// Snapshot implements sim.Snapshotter.
func (ld *LinkDelay) Snapshot() any {
	return &linkDelaySnapshot{
		ticker:      ld.ticker,
		seq:         ld.seq,
		reqT1:       ld.reqT1,
		respT2:      ld.respT2,
		respT4:      ld.respT4,
		havePair:    ld.havePair,
		meanDelayNS: ld.meanDelayNS,
		haveDelay:   ld.haveDelay,
		samples:     ld.samples,
		prevT3:      ld.prevT3,
		prevT4:      ld.prevT4,
		havePrev:    ld.havePrev,
		rateRatio:   ld.rateRatio,
	}
}

// Restore implements sim.Snapshotter.
func (ld *LinkDelay) Restore(snap any) {
	sn := snap.(*linkDelaySnapshot)
	ld.ticker = sn.ticker
	ld.seq = sn.seq
	ld.reqT1 = sn.reqT1
	ld.respT2 = sn.respT2
	ld.respT4 = sn.respT4
	ld.havePair = sn.havePair
	ld.meanDelayNS = sn.meanDelayNS
	ld.haveDelay = sn.haveDelay
	ld.samples = sn.samples
	ld.prevT3 = sn.prevT3
	ld.prevT4 = sn.prevT4
	ld.havePrev = sn.havePrev
	ld.rateRatio = sn.rateRatio
}

// slaveSnapshot captures one end-station slave.
type slaveSnapshot struct {
	pending map[uint16]float64
	lastSeq uint16
	matched uint64
}

// Snapshot implements sim.Snapshotter.
func (s *Slave) Snapshot() any {
	sn := &slaveSnapshot{
		pending: make(map[uint16]float64, len(s.pending)),
		lastSeq: s.lastSeq,
		matched: s.matched,
	}
	for k, v := range s.pending {
		sn.pending[k] = v
	}
	return sn
}

// Restore implements sim.Snapshotter.
func (s *Slave) Restore(snap any) {
	sn := snap.(*slaveSnapshot)
	s.pending = make(map[uint16]float64, len(sn.pending))
	for k, v := range sn.pending {
		s.pending[k] = v
	}
	s.lastSeq = sn.lastSeq
	s.matched = sn.matched
}

// clone deep-copies a relaySync for the snapshot engine. The FollowUp is
// shared: it is immutable once received.
func (st *relaySync) clone() *relaySync {
	return &relaySync{
		rxTS:      st.rxTS,
		txTS:      append([]float64(nil), st.txTS...),
		haveTx:    append([]bool(nil), st.haveTx...),
		fu:        st.fu,
		done:      append([]bool(nil), st.done...),
		doneCount: st.doneCount,
	}
}

// relayDomainState is one domain's captured state. The *relayDomain
// instance itself is captured by pointer — queued egress callbacks hold it —
// and its pending records as pristine deep copies, re-cloned on every
// restore so each fork consumes private copies.
type relayDomainState struct {
	d       *relayDomain
	pending map[uint16]*relaySync
	lastSeq uint16
}

// relaySnapshot captures a relay: the domain set (SetDomainPorts and
// RemoveDomain mutate it at runtime) and every per-port pdelay endpoint.
type relaySnapshot struct {
	domains    map[int]*relayDomainState
	linkDelays []any
}

// Snapshot implements sim.Snapshotter.
func (r *Relay) Snapshot() any {
	sn := &relaySnapshot{
		domains:    make(map[int]*relayDomainState, len(r.domains)),
		linkDelays: make([]any, len(r.linkDelays)),
	}
	for k, d := range r.domains {
		ds := &relayDomainState{
			d:       d,
			pending: make(map[uint16]*relaySync, len(d.pending)),
			lastSeq: d.lastSeq,
		}
		for seq, st := range d.pending {
			ds.pending[seq] = st.clone()
		}
		sn.domains[k] = ds
	}
	for i, ld := range r.linkDelays {
		sn.linkDelays[i] = ld.Snapshot()
	}
	return sn
}

// Restore implements sim.Snapshotter. Domains added after the snapshot are
// dropped; replaced ones revert to their snapshot-time instances, which is
// what queued callbacks captured. Free lists start empty — record identity
// is not observable to the simulation.
func (r *Relay) Restore(snap any) {
	sn := snap.(*relaySnapshot)
	r.domains = make(map[int]*relayDomain, len(sn.domains))
	for k, ds := range sn.domains {
		d := ds.d
		d.pending = make(map[uint16]*relaySync, len(ds.pending))
		for seq, st := range ds.pending {
			d.pending[seq] = st.clone()
		}
		d.lastSeq = ds.lastSeq
		d.free = nil
		r.domains[k] = d
	}
	for i, ld := range r.linkDelays {
		ld.Restore(sn.linkDelays[i])
	}
}
