package gptp

import (
	"hash/fnv"
	"strings"
)

// ClockIDFromName derives a stable EUI-64-style clock identity from a
// simulator entity name ("c11", "sw3"), for encoding simulated traffic
// into wire format.
func ClockIDFromName(name string) [8]byte {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	v := h.Sum64()
	var id [8]byte
	for i := 0; i < 8; i++ {
		id[i] = byte(v >> uint(56-8*i))
	}
	// Mark as locally administered, like MAC-derived EUI-64s.
	id[0] |= 0x02
	return id
}

// sourceName strips the "nic/" prefix from a frame source address.
func sourceName(addr string) string {
	return strings.TrimPrefix(addr, "nic/")
}

// EncodeWire encodes a simulated gPTP payload into IEEE 1588/802.1AS wire
// bytes. src is the frame's source address ("nic/c11"). It reports false
// for payloads that have no wire form (non-gPTP traffic) or whose values
// cannot be represented (e.g. negative timestamps during early start-up).
func EncodeWire(src string, payload any) ([]byte, bool) {
	identity := PortIdentity{ClockID: ClockIDFromName(sourceName(src)), Port: 1}
	switch m := payload.(type) {
	case *Sync:
		b, err := MarshalSync(uint8(m.Domain), m.Seq, identity)
		return b, err == nil
	case *FollowUp:
		origin, err := WireTimestampFromNS(m.PreciseOrigin)
		if err != nil {
			return nil, false
		}
		b, err := MarshalFollowUp(WireFollowUp{
			Domain:                     uint8(m.Domain),
			SequenceID:                 m.Seq,
			Source:                     identity,
			PreciseOrigin:              origin,
			CorrectionNS:               m.Correction,
			CumulativeScaledRateOffset: ScaledRateOffset(m.RateRatio),
		})
		return b, err == nil
	case *PdelayReq:
		b, err := MarshalPdelayReq(0, m.Seq, identity)
		return b, err == nil
	case *PdelayResp:
		t2, err := WireTimestampFromNS(m.T2)
		if err != nil {
			return nil, false
		}
		b, err := MarshalPdelayResp(WirePdelayResp{
			SequenceID: m.Seq,
			Source:     identity,
			Timestamp:  t2,
			Requesting: PortIdentity{ClockID: ClockIDFromName(m.Requester), Port: 1},
		})
		return b, err == nil
	case *PdelayRespFollowUp:
		t3, err := WireTimestampFromNS(m.T3)
		if err != nil {
			return nil, false
		}
		b, err := MarshalPdelayResp(WirePdelayResp{
			SequenceID: m.Seq,
			Source:     identity,
			Timestamp:  t3,
			Requesting: PortIdentity{ClockID: ClockIDFromName(m.Requester), Port: 1},
			FollowUp:   true,
		})
		return b, err == nil
	case *Announce:
		path := make([][8]byte, 0, len(m.Path))
		for _, hop := range m.Path {
			path = append(path, ClockIDFromName(hop))
		}
		b, err := MarshalAnnounce(WireAnnounce{
			Domain:       uint8(m.Domain),
			SequenceID:   m.Seq,
			Source:       identity,
			Priority1:    m.GM.Priority1,
			ClockClass:   m.GM.ClockClass,
			Accuracy:     m.GM.Accuracy,
			Variance:     m.GM.Variance,
			Priority2:    m.GM.Priority2,
			GMIdentity:   ClockIDFromName(m.GM.ClockID),
			StepsRemoved: uint16(m.StepsRemoved),
			Path:         path,
		})
		return b, err == nil
	default:
		return nil, false
	}
}

// ScaledRateOffset converts a cumulative rate ratio into the 802.1AS
// cumulativeScaledRateOffset: (ratio − 1)·2^41.
func ScaledRateOffset(ratio float64) int32 {
	v := (ratio - 1) * (1 << 41)
	switch {
	case v > 2147483647:
		return 2147483647
	case v < -2147483648:
		return -2147483648
	default:
		return int32(v)
	}
}
