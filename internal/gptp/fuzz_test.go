package gptp

import "testing"

// FuzzWireDecode hammers every unmarshal path with arbitrary bytes: the
// decoder must never panic and must reject or parse cleanly. Seeds cover
// each valid message type so `go test` exercises the corpus even without
// -fuzz.
func FuzzWireDecode(f *testing.F) {
	id := PortIdentity{ClockID: [8]byte{1, 2, 3, 4, 5, 6, 7, 8}, Port: 1}
	if b, err := MarshalSync(0, 1, id); err == nil {
		f.Add(b)
	}
	if b, err := MarshalFollowUp(WireFollowUp{Source: id, PreciseOrigin: WireTimestamp{Seconds: 1}}); err == nil {
		f.Add(b)
	}
	if b, err := MarshalAnnounce(WireAnnounce{Source: id, Priority1: 50}); err == nil {
		f.Add(b)
	}
	if b, err := MarshalPdelayReq(0, 2, id); err == nil {
		f.Add(b)
	}
	if b, err := MarshalPdelayResp(WirePdelayResp{Source: id}); err == nil {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0x10, 0x02, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		// None of these may panic; errors are fine.
		_, _, _, _ = UnmarshalSync(data)
		_, _ = UnmarshalFollowUp(data)
		_, _ = UnmarshalAnnounce(data)
		_, _ = UnmarshalPdelayResp(data)
		_, _ = MessageTypeOf(data)
	})
}

// FuzzWireSyncRoundTrip: any mutation of a valid Sync either fails to
// decode or decodes to values that re-encode consistently.
func FuzzWireSyncRoundTrip(f *testing.F) {
	id := PortIdentity{ClockID: [8]byte{9, 8, 7, 6, 5, 4, 3, 2}, Port: 3}
	if b, err := MarshalSync(2, 99, id); err == nil {
		f.Add(b, uint8(0))
	}
	f.Fuzz(func(t *testing.T, data []byte, flip uint8) {
		mutated := append([]byte(nil), data...)
		if len(mutated) > 0 {
			mutated[int(flip)%len(mutated)] ^= 1 << (flip % 8)
		}
		domain, seq, src, err := UnmarshalSync(mutated)
		if err != nil {
			return
		}
		re, err := MarshalSync(domain, seq, src)
		if err != nil {
			t.Fatalf("decoded Sync does not re-encode: %v", err)
		}
		d2, s2, src2, err := UnmarshalSync(re)
		if err != nil || d2 != domain || s2 != seq || src2 != src {
			t.Fatalf("re-encode not stable: %v %v %v %v", d2, s2, src2, err)
		}
	})
}
