package gptp

import (
	"fmt"

	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// DomainPorts is the static per-domain port-role configuration of one
// time-aware bridge (IEEE 802.1AS external port configuration — the paper
// disables the BMCA entirely).
type DomainPorts struct {
	// SlavePort faces the domain's grandmaster.
	SlavePort int
	// MasterPorts are the downstream ports Sync is relayed to.
	MasterPorts []int
}

// RelayConfig configures the per-domain spanning tree on a bridge.
type RelayConfig struct {
	Domains map[int]DomainPorts
	// DefaultLinkDelayNS is used for correction-field accumulation before
	// the first pdelay measurement completes on the slave port.
	DefaultLinkDelayNS float64
}

// Relay implements IEEE 802.1AS time-aware bridge behaviour as a
// netsim.RelayHook: peer delay on every port, Sync relaying along the
// static per-domain trees, and residence-time + link-delay accumulation in
// the FollowUp correction field, measured with the bridge's own
// free-running clock.
type Relay struct {
	bridge *netsim.Bridge
	sched  *sim.Scheduler
	cfg    RelayConfig

	linkDelays []*LinkDelay
	domains    map[int]*relayDomain
	// onAnnounce receives Announce messages per ingress port (the BMCA
	// engine in dynamic operation); Announce is link-local and always
	// consumed.
	onAnnounce func(ingress int, a *Announce)
}

type relayDomain struct {
	cfg     DomainPorts
	pending map[uint16]*relaySync
	lastSeq uint16
	// free recycles completed relaySync records; one Sync per interval per
	// domain makes this a single-element list in steady state.
	free []*relaySync
}

type relaySync struct {
	rxTS float64
	// txTS/haveTx hold the measured egress timestamp per bridge port.
	txTS   []float64
	haveTx []bool
	// fu holds the upstream FollowUp until all egress timestamps exist.
	fu *FollowUp
	// done marks master ports whose FollowUp has been forwarded.
	done      []bool
	doneCount int
}

// newSync returns a reset relaySync sized for nports bridge ports, reusing
// a completed record when one is available.
func (d *relayDomain) newSync(rxTS float64, nports int) *relaySync {
	var st *relaySync
	if n := len(d.free); n > 0 {
		st = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		st = &relaySync{}
	}
	if cap(st.txTS) < nports {
		st.txTS = make([]float64, nports)
		st.haveTx = make([]bool, nports)
		st.done = make([]bool, nports)
	} else {
		st.txTS = st.txTS[:nports]
		st.haveTx = st.haveTx[:nports]
		st.done = st.done[:nports]
		for i := range st.haveTx {
			st.haveTx[i] = false
			st.done[i] = false
		}
	}
	st.rxTS = rxTS
	st.fu = nil
	st.doneCount = 0
	return st
}

// recycle returns a fully-forwarded relaySync to the free list. Records
// that age out instead (a FollowUp that never arrived) go to the garbage
// collector: an in-flight egress-timestamp callback may still reference
// them.
func (d *relayDomain) recycle(st *relaySync) {
	st.fu = nil
	d.free = append(d.free, st)
}

// NewRelay installs 802.1AS relaying on a bridge and returns the relay. rng
// seeds the per-port pdelay phase.
func NewRelay(bridge *netsim.Bridge, sched *sim.Scheduler, rng sim.RNG, cfg RelayConfig) (*Relay, error) {
	r := &Relay{
		bridge:  bridge,
		sched:   sched,
		cfg:     cfg,
		domains: make(map[int]*relayDomain, len(cfg.Domains)),
	}
	for d, ports := range cfg.Domains {
		if ports.SlavePort < 0 || ports.SlavePort >= bridge.NumPorts() {
			return nil, fmt.Errorf("gptp: relay %s domain %d: bad slave port %d", bridge.DeviceName(), d, ports.SlavePort)
		}
		r.domains[d] = &relayDomain{cfg: ports, pending: make(map[uint16]*relaySync)}
	}
	r.linkDelays = make([]*LinkDelay, bridge.NumPorts())
	for i := range r.linkDelays {
		port := i
		name := fmt.Sprintf("%s/p%d", bridge.DeviceName(), i)
		r.linkDelays[i] = NewLinkDelay(name, sched, rng, func(f *netsim.Frame) (float64, bool) {
			return bridge.Transmit(port, f), true
		}, LinkDelayConfig{})
	}
	bridge.SetHook(r)
	return r, nil
}

// Start begins pdelay measurement on all connected ports.
func (r *Relay) Start() error {
	for i, ld := range r.linkDelays {
		if !r.bridge.Port(i).Connected() {
			continue
		}
		if err := ld.Start(); err != nil {
			return err
		}
	}
	return nil
}

// Stop halts pdelay measurement.
func (r *Relay) Stop() {
	for _, ld := range r.linkDelays {
		ld.Stop()
	}
}

// LinkDelay exposes the pdelay endpoint of a port (tests, diagnostics).
func (r *Relay) LinkDelay(port int) *LinkDelay { return r.linkDelays[port] }

// SetDomainPorts installs or replaces a domain's port-role configuration at
// runtime — how a BMCA engine's role decisions are applied to the relay
// when dynamic operation is wanted instead of the paper's static external
// port configuration. In-flight Sync state for the domain is dropped.
func (r *Relay) SetDomainPorts(domain int, ports DomainPorts) error {
	if ports.SlavePort < 0 || ports.SlavePort >= r.bridge.NumPorts() {
		return fmt.Errorf("gptp: relay %s domain %d: bad slave port %d",
			r.bridge.DeviceName(), domain, ports.SlavePort)
	}
	for _, m := range ports.MasterPorts {
		if m < 0 || m >= r.bridge.NumPorts() {
			return fmt.Errorf("gptp: relay %s domain %d: bad master port %d",
				r.bridge.DeviceName(), domain, m)
		}
	}
	r.domains[domain] = &relayDomain{cfg: ports, pending: make(map[uint16]*relaySync)}
	return nil
}

// RemoveDomain stops relaying a domain (its grandmaster disappeared and no
// successor exists on this side of the network).
func (r *Relay) RemoveDomain(domain int) {
	delete(r.domains, domain)
}

// DomainPortsFor reports a domain's current configuration.
func (r *Relay) DomainPortsFor(domain int) (DomainPorts, bool) {
	d, ok := r.domains[domain]
	if !ok {
		return DomainPorts{}, false
	}
	return DomainPorts{
		SlavePort:   d.cfg.SlavePort,
		MasterPorts: append([]int(nil), d.cfg.MasterPorts...),
	}, true
}

// Handle implements netsim.RelayHook. All gPTP frames are consumed (they
// are link-local); everything else falls through to generic forwarding.
func (r *Relay) Handle(_ *netsim.Bridge, ingress int, f *netsim.Frame, rxTS float64) bool {
	switch m := f.Payload.(type) {
	case *PdelayReq, *PdelayResp, *PdelayRespFollowUp:
		r.linkDelays[ingress].HandleFrame(f.Payload, rxTS)
		return true
	case *Sync:
		r.handleSync(ingress, f, m, rxTS)
		return true
	case *FollowUp:
		r.handleFollowUp(ingress, m)
		return true
	case *Announce:
		if r.onAnnounce != nil {
			r.onAnnounce(ingress, m)
		}
		return true
	default:
		return false
	}
}

// SetAnnounceHandler routes received Announce messages to a BMCA engine.
func (r *Relay) SetAnnounceHandler(h func(ingress int, a *Announce)) {
	r.onAnnounce = h
}

func (r *Relay) handleSync(ingress int, f *netsim.Frame, m *Sync, rxTS float64) {
	d, ok := r.domains[m.Domain]
	if !ok || ingress != d.cfg.SlavePort {
		return // not part of this domain's tree here: drop
	}
	if m.OneStep {
		r.relayOneStep(d, f, m, rxTS)
		return
	}
	st := d.newSync(rxTS, r.bridge.NumPorts())
	d.pending[m.Seq] = st
	d.lastSeq = m.Seq
	// Garbage-collect stale entries (a FollowUp that never arrived).
	for seq := range d.pending {
		if seqDelta(d.lastSeq, seq) > 4 {
			delete(d.pending, seq)
		}
	}
	for _, egress := range d.cfg.MasterPorts {
		egress := egress
		out := f.Clone()
		residence := r.bridge.ResidenceFor(f)
		seq := m.Seq
		// The callback looks the record up by sequence number at fire time
		// instead of capturing *relaySync: records are freelist-recycled,
		// and the lookup keeps the closure snapshot-safe (it captures only
		// the relay, the domain — both restored in place — and scalars).
		// Residence times are microseconds while ageing takes seqDelta > 4
		// intervals, so a pending egress callback never misses its record.
		r.bridge.TransmitAt(egress, residence, out, func(_ any, txTS float64) {
			st, ok := d.pending[seq]
			if !ok {
				return
			}
			st.txTS[egress] = txTS
			st.haveTx[egress] = true
			if st.fu != nil {
				r.forwardFollowUp(d, seq, st, egress)
			}
		})
	}
}

// relayOneStep forwards a one-step Sync: each egress copy gets its own
// payload whose correction field is updated at the moment of transmission
// (residence + upstream link delay, in the grandmaster timebase) — the
// on-the-fly field rewrite a one-step transparent clock performs in
// hardware.
func (r *Relay) relayOneStep(d *relayDomain, f *netsim.Frame, m *Sync, rxTS float64) {
	slaveLD := r.linkDelays[d.cfg.SlavePort]
	nrr := slaveLD.NeighborRateRatio()
	cumRatio := m.RateRatio * nrr
	linkDelay := slaveLD.DelayOrDefault(r.cfg.DefaultLinkDelayNS)
	for _, egress := range d.cfg.MasterPorts {
		out := f.Clone()
		copySync := *m
		copySync.RateRatio = cumRatio
		out.Payload = &copySync
		residence := r.bridge.ResidenceFor(f)
		corr := m.Correction
		// The callback writes into the payload the scheduler hands it (a
		// fork receives its own deep copy) and captures only scalars, which
		// keeps the one-step rewrite snapshot-safe.
		r.bridge.TransmitAt(egress, residence, out, func(payload any, txTS float64) {
			payload.(*Sync).Correction = corr + (txTS-rxTS+linkDelay)*cumRatio
		})
	}
}

func (r *Relay) handleFollowUp(ingress int, m *FollowUp) {
	d, ok := r.domains[m.Domain]
	if !ok || ingress != d.cfg.SlavePort {
		return
	}
	st, ok := d.pending[m.Seq]
	if !ok {
		return // Sync was lost or aged out
	}
	st.fu = m
	for _, egress := range d.cfg.MasterPorts {
		if st.haveTx[egress] {
			r.forwardFollowUp(d, m.Seq, st, egress)
		}
	}
}

// forwardFollowUp emits the FollowUp on one master port with the correction
// field increased by this bridge's residence time and the upstream link
// delay, both expressed in the grandmaster timebase via the cumulative rate
// ratio (802.1AS clause 11.1.3).
func (r *Relay) forwardFollowUp(d *relayDomain, seq uint16, st *relaySync, egress int) {
	if st.done[egress] {
		return
	}
	st.done[egress] = true
	st.doneCount++

	slaveLD := r.linkDelays[d.cfg.SlavePort]
	nrr := slaveLD.NeighborRateRatio()
	cumRatio := st.fu.RateRatio * nrr
	residence := st.txTS[egress] - st.rxTS
	linkDelay := slaveLD.DelayOrDefault(r.cfg.DefaultLinkDelayNS)

	out := &FollowUp{
		Domain:        st.fu.Domain,
		Seq:           seq,
		PreciseOrigin: st.fu.PreciseOrigin,
		Correction:    st.fu.Correction + (residence+linkDelay)*cumRatio,
		RateRatio:     cumRatio,
		GMIdentity:    st.fu.GMIdentity,
	}
	frame := newFrame(netsim.Address("nic/"+r.bridge.DeviceName()), out)
	r.bridge.TransmitAfterResidence(egress, frame)

	if st.doneCount == len(d.cfg.MasterPorts) {
		delete(d.pending, seq)
		d.recycle(st)
	}
}

// seqDelta computes the forward distance between two uint16 sequence
// numbers with wraparound.
func seqDelta(newer, older uint16) uint16 { return newer - older }
