package gptp

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func testIdentity() PortIdentity {
	return PortIdentity{ClockID: [8]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77}, Port: 1}
}

func TestWireTimestampRoundTrip(t *testing.T) {
	// float64 nanoseconds are exact to <1 ns up to ~2^52 ns ≈ 52 days; the
	// simulation timescale stays far below that, so the property is
	// checked in that regime (NS() documents the limitation).
	prop := func(secRaw uint32, ns uint32) bool {
		sec := uint64(secRaw % (1 << 22))
		w := WireTimestamp{Seconds: sec, Nanoseconds: ns % 1000000000}
		got, err := WireTimestampFromNS(w.NS())
		if err != nil {
			return false
		}
		return got.Seconds == w.Seconds && absDiffU32(got.Nanoseconds, w.Nanoseconds) <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func absDiffU32(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestWireTimestampRange(t *testing.T) {
	if _, err := WireTimestampFromNS(-1); !errors.Is(err, ErrTimestampRange) {
		t.Fatal("negative timestamp accepted")
	}
	if _, err := WireTimestampFromNS(float64(uint64(1)<<48) * 1e9); !errors.Is(err, ErrTimestampRange) {
		t.Fatal("48-bit overflow accepted")
	}
}

func TestSyncWireFormat(t *testing.T) {
	b, err := MarshalSync(3, 0xBEEF, testIdentity())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if len(b) != 44 { // 34 header + 10 origin timestamp
		t.Fatalf("sync length = %d, want 44", len(b))
	}
	// Golden header bytes: majorSdoId 1 | type 0, version 2, length 44,
	// domain 3, flags 0x0208 (two-step | PTP timescale).
	if b[0] != 0x10 {
		t.Fatalf("byte0 = %#x, want 0x10 (gPTP Sync)", b[0])
	}
	if b[1] != 0x02 {
		t.Fatalf("versionPTP = %#x", b[1])
	}
	if b[2] != 0x00 || b[3] != 44 {
		t.Fatalf("messageLength bytes = %#x %#x", b[2], b[3])
	}
	if b[4] != 3 {
		t.Fatalf("domain = %d", b[4])
	}
	if b[6] != 0x02 || b[7] != 0x08 {
		t.Fatalf("flags = %#x%02x, want 0x0208", b[6], b[7])
	}
	id := testIdentity()
	if !bytes.Equal(b[20:28], id.ClockID[:]) {
		t.Fatal("source clock identity wrong")
	}

	domain, seq, src, err := UnmarshalSync(b)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if domain != 3 || seq != 0xBEEF || src != testIdentity() {
		t.Fatalf("round trip: %d %x %v", domain, seq, src)
	}
}

func TestFollowUpWireRoundTrip(t *testing.T) {
	in := WireFollowUp{
		Domain:                     2,
		SequenceID:                 77,
		Source:                     testIdentity(),
		PreciseOrigin:              WireTimestamp{Seconds: 1234, Nanoseconds: 567890123},
		CorrectionNS:               3141.5926, // sub-ns resolution survives
		CumulativeScaledRateOffset: -4096,
	}
	b, err := MarshalFollowUp(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	out, err := UnmarshalFollowUp(b)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Domain != in.Domain || out.SequenceID != in.SequenceID || out.Source != in.Source {
		t.Fatalf("header fields: %+v", out)
	}
	if out.PreciseOrigin != in.PreciseOrigin {
		t.Fatalf("origin: %+v vs %+v", out.PreciseOrigin, in.PreciseOrigin)
	}
	if math.Abs(out.CorrectionNS-in.CorrectionNS) > 1.0/65536 {
		t.Fatalf("correction: %v vs %v", out.CorrectionNS, in.CorrectionNS)
	}
	if out.CumulativeScaledRateOffset != in.CumulativeScaledRateOffset {
		t.Fatalf("csro: %d", out.CumulativeScaledRateOffset)
	}
	// Rate ratio reconstruction: csro = (r−1)·2^41.
	wantRatio := 1 + float64(-4096)/math.Exp2(41)
	if out.RateRatio() != wantRatio {
		t.Fatalf("rate ratio %v, want %v", out.RateRatio(), wantRatio)
	}
}

func TestFollowUpTLVPresent(t *testing.T) {
	b, err := MarshalFollowUp(WireFollowUp{Domain: 0, Source: testIdentity()})
	if err != nil {
		t.Fatal(err)
	}
	// The 802.1AS information TLV begins after header+timestamp with
	// ORGANIZATION_EXTENSION (0x0003) and the IEEE 802.1 OUI.
	tlv := b[44:]
	if tlv[0] != 0x00 || tlv[1] != 0x03 {
		t.Fatalf("TLV type = %#x%02x", tlv[0], tlv[1])
	}
	if tlv[4] != 0x00 || tlv[5] != 0x80 || tlv[6] != 0xC2 {
		t.Fatalf("OUI = %x %x %x", tlv[4], tlv[5], tlv[6])
	}
}

func TestAnnounceWireRoundTrip(t *testing.T) {
	in := WireAnnounce{
		Domain:       1,
		SequenceID:   9,
		Source:       testIdentity(),
		Priority1:    50,
		ClockClass:   248,
		Accuracy:     0x22,
		Variance:     0x4100,
		Priority2:    128,
		GMIdentity:   [8]byte{1, 2, 3, 4, 5, 6, 7, 8},
		StepsRemoved: 2,
		TimeSource:   0xA0, // internal oscillator
		Path:         [][8]byte{{1, 1, 1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2, 2, 2}},
	}
	b, err := MarshalAnnounce(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalAnnounce(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
	// The path trace TLV (0x0008) sits after the announce body.
	tlv := b[34+30:]
	if tlv[0] != 0x00 || tlv[1] != 0x08 {
		t.Fatalf("path trace TLV type %#x%02x", tlv[0], tlv[1])
	}
}

func TestPdelayRespWireRoundTrip(t *testing.T) {
	for _, fu := range []bool{false, true} {
		in := WirePdelayResp{
			Domain:     0,
			SequenceID: 4242,
			Source:     testIdentity(),
			Timestamp:  WireTimestamp{Seconds: 55, Nanoseconds: 123456789},
			Requesting: PortIdentity{ClockID: [8]byte{9, 9, 9, 9, 9, 9, 9, 9}, Port: 2},
			FollowUp:   fu,
		}
		b, err := MarshalPdelayResp(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := UnmarshalPdelayResp(b)
		if err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("round trip (fu=%v): %+v vs %+v", fu, out, in)
		}
		mt, err := MessageTypeOf(b)
		if err != nil {
			t.Fatal(err)
		}
		want := uint8(WireTypePdelayResp)
		if fu {
			want = WireTypePdelayRespFollowUp
		}
		if mt != want {
			t.Fatalf("message type %d, want %d", mt, want)
		}
	}
}

func TestPdelayReqWire(t *testing.T) {
	b, err := MarshalPdelayReq(0, 7, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 54 { // 34 + 10 reserved timestamp + 10 reserved
		t.Fatalf("pdelay_req length = %d, want 54", len(b))
	}
	mt, _ := MessageTypeOf(b)
	if mt != WireTypePdelayReq {
		t.Fatalf("type = %d", mt)
	}
}

func TestWireErrors(t *testing.T) {
	if _, _, _, err := UnmarshalSync([]byte{1, 2, 3}); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("short: %v", err)
	}
	good, err := MarshalSync(0, 1, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[1] = 0x01 // PTPv1
	if _, _, _, err := UnmarshalSync(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[3] = 200 // messageLength beyond buffer
	if _, _, _, err := UnmarshalSync(bad); !errors.Is(err, ErrBadLengthField) {
		t.Fatalf("length: %v", err)
	}
	if _, err := UnmarshalFollowUp(good); !errors.Is(err, ErrBadMessageType) {
		t.Fatalf("type confusion: %v", err)
	}
	if _, err := UnmarshalAnnounce(good); !errors.Is(err, ErrBadMessageType) {
		t.Fatalf("announce type confusion: %v", err)
	}
	if _, err := UnmarshalPdelayResp(good); !errors.Is(err, ErrBadMessageType) {
		t.Fatalf("pdelay type confusion: %v", err)
	}
	if _, err := MessageTypeOf(nil); !errors.Is(err, ErrShortMessage) {
		t.Fatal("empty MessageTypeOf accepted")
	}
}

func TestCorrectionFieldSubNanosecond(t *testing.T) {
	// The correction field carries 2^-16 ns resolution: values separated
	// by one LSB must round-trip distinctly.
	a := WireFollowUp{Source: testIdentity(), CorrectionNS: 100}
	b := WireFollowUp{Source: testIdentity(), CorrectionNS: 100 + 1.0/65536}
	ba, err := MarshalFollowUp(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := MarshalFollowUp(b)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ba, bb) {
		t.Fatal("sub-ns correction lost on the wire")
	}
	oa, err := UnmarshalFollowUp(ba)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := UnmarshalFollowUp(bb)
	if err != nil {
		t.Fatal(err)
	}
	if oa.CorrectionNS >= ob.CorrectionNS {
		t.Fatalf("ordering lost: %v vs %v", oa.CorrectionNS, ob.CorrectionNS)
	}
}

// TestFollowUpWireProperty: arbitrary field values survive the wire.
func TestFollowUpWireProperty(t *testing.T) {
	prop := func(domain uint8, seq uint16, sec uint32, ns uint32, corr int32, csro int32) bool {
		in := WireFollowUp{
			Domain:                     domain,
			SequenceID:                 seq,
			Source:                     testIdentity(),
			PreciseOrigin:              WireTimestamp{Seconds: uint64(sec), Nanoseconds: ns % 1000000000},
			CorrectionNS:               float64(corr) / 7,
			CumulativeScaledRateOffset: csro,
		}
		b, err := MarshalFollowUp(in)
		if err != nil {
			return false
		}
		out, err := UnmarshalFollowUp(b)
		if err != nil {
			return false
		}
		return out.Domain == in.Domain && out.SequenceID == in.SequenceID &&
			out.PreciseOrigin == in.PreciseOrigin &&
			math.Abs(out.CorrectionNS-in.CorrectionNS) <= 1.0/65536 &&
			out.CumulativeScaledRateOffset == in.CumulativeScaledRateOffset
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPortIdentityString(t *testing.T) {
	s := testIdentity().String()
	if !strings.HasPrefix(s, "0011223344556677-") {
		t.Fatalf("identity string: %s", s)
	}
}
