package gptp

import (
	"errors"
	"time"

	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// Fault kinds reported by the master's fault callback — the transient
// software faults the paper observes in §III-C.
const (
	// FaultTxTimestampTimeout: the Sync left the wire but ptp4l timed out
	// retrieving the transmit hardware timestamp from the kernel (the igb
	// driver issue the paper reports 2992 occurrences of); no FollowUp is
	// sent and receivers skip the interval.
	FaultTxTimestampTimeout = "tx_timestamp_timeout"
	// FaultDeadlineMiss: the Sync was handed to the ETF qdisc after its
	// launch time had already passed; the kernel drops it (347 occurrences
	// in the paper's 24 h run).
	FaultDeadlineMiss = "deadline_miss"
)

// MasterConfig configures a grandmaster port for one gPTP domain.
type MasterConfig struct {
	Domain       int
	GMIdentity   string
	SyncInterval time.Duration // default 125 ms, the paper's S
	// LaunchGuard is the minimum PHC headroom when choosing the next
	// launch-time boundary. Default 2 ms.
	LaunchGuard time.Duration
	// FollowUpDelay is the mean software delay before the FollowUp is
	// transmitted (timestamp retrieval + processing). Default 500 µs.
	FollowUpDelay time.Duration

	// TxTimestampTimeoutProb is the per-Sync probability that retrieving
	// the transmit timestamp times out (FollowUp suppressed).
	TxTimestampTimeoutProb float64
	// DeadlineMissProb is the per-Sync probability that the launch time is
	// handed to the qdisc too late (Sync dropped).
	DeadlineMissProb float64

	// MaliciousOriginOffsetNS is added to every preciseOriginTimestamp a
	// compromised grandmaster distributes. The paper's attacker uses
	// −24 µs. Zero for a benign grandmaster.
	MaliciousOriginOffsetNS float64

	// OneStep selects one-step operation (IEEE 802.1AS-2020 option): the
	// origin timestamp rides in the Sync itself and no FollowUp is sent.
	// The paper's i210 testbed uses two-step (the default).
	OneStep bool
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.SyncInterval <= 0 {
		c.SyncInterval = 125 * time.Millisecond
	}
	if c.LaunchGuard <= 0 {
		c.LaunchGuard = 2 * time.Millisecond
	}
	if c.FollowUpDelay <= 0 {
		c.FollowUpDelay = 500 * time.Microsecond
	}
	return c
}

// Master emits two-step Sync/FollowUp for one domain from a grandmaster
// NIC. Sync transmissions are gated on PHC launch times aligned to
// multiples of the sync interval, implementing the paper's synchronous
// transmission of Sync messages across domains (Linux ETF qdisc + i210
// launch-time): once the grandmasters are synchronized, all domains launch
// at the same global boundaries within the synchronization precision.
type Master struct {
	nic   *netsim.NIC
	sched *sim.Scheduler
	rng   sim.RNG
	cfg   MasterConfig

	seq      uint16
	lastSlot int64
	ticker   *sim.Ticker
	onFault  func(kind string)
	// txFn is the prebound ETF completion callback (snapshot-safe: it
	// reaches all per-Sync state through the payload argument).
	txFn func(payload any, txTS float64)

	syncsSent, followUpsSent uint64
}

// NewMaster creates a grandmaster port on nic. onFault, if non-nil,
// receives transient-fault notifications.
func NewMaster(nic *netsim.NIC, sched *sim.Scheduler, rng sim.RNG, cfg MasterConfig, onFault func(kind string)) *Master {
	m := &Master{nic: nic, sched: sched, rng: rng, cfg: cfg.withDefaults(), onFault: onFault, lastSlot: -1}
	m.txFn = m.onSyncTx
	return m
}

// Config returns the effective configuration.
func (m *Master) Config() MasterConfig { return m.cfg }

// SetMaliciousOffset changes the origin-timestamp falsification at runtime —
// used when the attacker replaces the benign ptp4l with a malicious one.
func (m *Master) SetMaliciousOffset(ns float64) { m.cfg.MaliciousOriginOffsetNS = ns }

// Counters reports Syncs and FollowUps transmitted.
func (m *Master) Counters() (syncs, followUps uint64) { return m.syncsSent, m.followUpsSent }

// Start begins Sync emission. Each tick targets the next sync-interval
// boundary on the grandmaster's PHC.
func (m *Master) Start() error {
	if m.ticker != nil {
		return errors.New("gptp: master already started")
	}
	t, err := m.sched.Every(m.sched.Now(), m.cfg.SyncInterval, m.tick)
	if err != nil {
		return err
	}
	m.ticker = t
	return nil
}

// Stop halts Sync emission (fail-silent shutdown or attacker replacement).
func (m *Master) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
		m.ticker = nil
	}
}

// Running reports whether the master is emitting.
func (m *Master) Running() bool { return m.ticker != nil }

func (m *Master) tick() {
	if m.nic.Down() {
		return
	}
	interval := float64(m.cfg.SyncInterval)
	nowPHC := m.nic.PHC().Now()
	slot := int64((nowPHC + float64(m.cfg.LaunchGuard)) / interval)
	launchSlot := slot + 1
	if launchSlot <= m.lastSlot {
		return // drift caused two ticks inside one boundary; skip
	}
	m.lastSlot = launchSlot
	launch := float64(launchSlot) * interval

	m.seq++
	sync := &Sync{Domain: m.cfg.Domain, Seq: m.seq}
	if m.cfg.OneStep {
		sync.OneStep = true
		sync.RateRatio = 1
		sync.GMIdentity = m.cfg.GMIdentity
	}
	syncFrame := newFrame(netsim.Address("nic/"+m.nic.DeviceName()), sync)

	if m.rng != nil && m.cfg.DeadlineMissProb > 0 && m.rng.Float64() < m.cfg.DeadlineMissProb {
		// Model a late hand-off: the launch time passed to the qdisc is
		// already stale, so ETF rejects the frame.
		if err := m.nic.SendAtPHC(nowPHC-1, syncFrame, nil); errors.Is(err, netsim.ErrLaunchDeadlineMissed) {
			m.fault(FaultDeadlineMiss)
		}
		return
	}

	err := m.nic.SendAtPHC(launch, syncFrame, m.txFn)
	if errors.Is(err, netsim.ErrLaunchDeadlineMissed) {
		m.fault(FaultDeadlineMiss)
	}
}

// onSyncTx completes a Sync transmission at the ETF launch instant. The
// per-Sync state arrives through the payload (the scheduler hands each
// fork its own deep copy), so the callback itself is snapshot-safe.
func (m *Master) onSyncTx(payload any, txTS float64) {
	sync := payload.(*Sync)
	m.syncsSent++
	if m.cfg.OneStep {
		// The timestamping unit writes the origin into the departing
		// frame; delivery is scheduled after this callback, so the
		// mutation is visible to every receiver.
		sync.Origin = txTS + m.cfg.MaliciousOriginOffsetNS
		return
	}
	m.completeFollowUp(sync.Seq, txTS)
}

func (m *Master) completeFollowUp(seq uint16, txTS float64) {
	if m.rng != nil && m.cfg.TxTimestampTimeoutProb > 0 && m.rng.Float64() < m.cfg.TxTimestampTimeoutProb {
		m.fault(FaultTxTimestampTimeout)
		return
	}
	delay := m.cfg.FollowUpDelay
	if m.rng != nil {
		delay += time.Duration(m.rng.Int63n(int64(m.cfg.FollowUpDelay)))
	}
	m.sched.After(delay, func() {
		if m.nic.Down() {
			return
		}
		fu := &FollowUp{
			Domain:        m.cfg.Domain,
			Seq:           seq,
			PreciseOrigin: txTS + m.cfg.MaliciousOriginOffsetNS,
			Correction:    0,
			RateRatio:     1,
			GMIdentity:    m.cfg.GMIdentity,
		}
		if _, err := m.nic.Send(newFrame(netsim.Address("nic/"+m.nic.DeviceName()), fu)); err == nil {
			m.followUpsSent++
		}
	})
}

func (m *Master) fault(kind string) {
	if m.onFault != nil {
		m.onFault(kind)
	}
}

// masterSnapshot captures the master's mutable state for warm-start forks.
type masterSnapshot struct {
	seq                      uint16
	lastSlot                 int64
	ticker                   *sim.Ticker
	maliciousNS              float64
	syncsSent, followUpsSent uint64
}

// Snapshot implements sim.Snapshotter. The ticker handle is captured by
// pointer: its scheduler slot and generation are restored verbatim by the
// scheduler's own snapshot, so the handle revalidates on restore.
func (m *Master) Snapshot() any {
	return &masterSnapshot{
		seq:           m.seq,
		lastSlot:      m.lastSlot,
		ticker:        m.ticker,
		maliciousNS:   m.cfg.MaliciousOriginOffsetNS,
		syncsSent:     m.syncsSent,
		followUpsSent: m.followUpsSent,
	}
}

// Restore implements sim.Snapshotter.
func (m *Master) Restore(snap any) {
	sn := snap.(*masterSnapshot)
	m.seq = sn.seq
	m.lastSlot = sn.lastSlot
	m.ticker = sn.ticker
	m.cfg.MaliciousOriginOffsetNS = sn.maliciousNS
	m.syncsSent = sn.syncsSent
	m.followUpsSent = sn.followUpsSent
}
