package gptp

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

func TestPriorityVectorCompareOrdering(t *testing.T) {
	base := PriorityVector{GM: SystemIdentity{
		Priority1: 128, ClockClass: 248, Accuracy: 0x22, Variance: 100,
		Priority2: 128, ClockID: "m",
	}, StepsRemoved: 1, SourceID: "m/p0"}

	better := func(mod func(*PriorityVector)) PriorityVector {
		v := base
		mod(&v)
		return v
	}
	tests := []struct {
		name string
		v    PriorityVector
	}{
		{"priority1", better(func(v *PriorityVector) { v.GM.Priority1 = 100 })},
		{"clockClass", better(func(v *PriorityVector) { v.GM.ClockClass = 6 })},
		{"accuracy", better(func(v *PriorityVector) { v.GM.Accuracy = 0x20 })},
		{"variance", better(func(v *PriorityVector) { v.GM.Variance = 50 })},
		{"priority2", better(func(v *PriorityVector) { v.GM.Priority2 = 1 })},
		{"clockID", better(func(v *PriorityVector) { v.GM.ClockID = "a" })},
		{"stepsRemoved", better(func(v *PriorityVector) { v.StepsRemoved = 0 })},
		{"sourceID", better(func(v *PriorityVector) { v.SourceID = "a/p0" })},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.v.Compare(base) >= 0 {
				t.Fatalf("%+v should beat %+v", tc.v, base)
			}
			if base.Compare(tc.v) <= 0 {
				t.Fatal("comparison not antisymmetric")
			}
		})
	}
	if base.Compare(base) != 0 {
		t.Fatal("self-comparison not zero")
	}
}

// TestPriorityVectorCompareTotalOrder property: antisymmetry and totality.
func TestPriorityVectorCompareTotalOrder(t *testing.T) {
	gen := func(p1, class uint8, id byte, steps uint8) PriorityVector {
		return PriorityVector{
			GM:           SystemIdentity{Priority1: p1, ClockClass: class, ClockID: string(rune('a' + id%26))},
			StepsRemoved: int(steps % 8),
			SourceID:     "s",
		}
	}
	prop := func(a1, c1, i1, s1, a2, c2, i2, s2 uint8) bool {
		v1 := gen(a1, c1, i1, s1)
		v2 := gen(a2, c2, i2, s2)
		c12, c21 := v1.Compare(v2), v2.Compare(v1)
		if c12 == 0 {
			return c21 == 0
		}
		return c12 == -c21
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// bmcaNet wires N time-aware systems in a chain (sys0 - sys1 - ... - sysN)
// using bridges as multi-port systems; Announce frames travel over links
// and are consumed by the per-system engines via bridge hooks.
type bmcaNet struct {
	sched   *sim.Scheduler
	streams *sim.Streams
	engines []*BMCA
	bridges []*netsim.Bridge
	changes []RoleChange
}

type bmcaHook struct{ engine *BMCA }

func (h *bmcaHook) Handle(_ *netsim.Bridge, ingress int, f *netsim.Frame, _ float64) bool {
	if a, ok := f.Payload.(*Announce); ok {
		h.engine.HandleAnnounce(ingress, a)
		return true
	}
	return true // consume all gPTP traffic in this fixture
}

func newBMCAChain(t *testing.T, n int, priority func(i int) uint8) *bmcaNet {
	t.Helper()
	net := &bmcaNet{sched: sim.NewScheduler(), streams: sim.NewStreams(61)}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("sys%d", i)
		osc := clock.NewOscillator(clock.OscillatorConfig{}, nil, 0)
		phc := clock.NewPHC(net.sched, osc, nil, clock.PHCConfig{})
		br := netsim.NewBridge(name, net.sched, net.streams.Stream("br/"+name), phc,
			netsim.BridgeConfig{Ports: 2, Residence: map[int]netsim.ResidenceModel{
				netsim.PriorityBestEffort: {Base: time.Microsecond},
			}})
		net.bridges = append(net.bridges, br)

		tx := make([]TxFunc, 2)
		for p := 0; p < 2; p++ {
			p := p
			brCopy := br
			tx[p] = func(f *netsim.Frame) (float64, bool) {
				return brCopy.Transmit(p, f), true
			}
		}
		engine, err := NewBMCA(net.sched, tx, BMCAConfig{
			Domain: 0,
			Self: SystemIdentity{
				Priority1:  priority(i),
				ClockClass: 248,
				Priority2:  128,
				ClockID:    name,
			},
		}, func(c RoleChange) { net.changes = append(net.changes, c) })
		if err != nil {
			t.Fatalf("bmca: %v", err)
		}
		br.SetHook(&bmcaHook{engine: engine})
		net.engines = append(net.engines, engine)
	}
	for i := 0; i+1 < n; i++ {
		if _, err := netsim.Connect(net.sched, net.streams.Stream(fmt.Sprintf("l%d", i)),
			netsim.LinkConfig{Propagation: 500 * time.Nanosecond},
			net.bridges[i].Port(1), net.bridges[i+1].Port(0)); err != nil {
			t.Fatalf("connect: %v", err)
		}
	}
	for _, e := range net.engines {
		if err := e.Start(); err != nil {
			t.Fatalf("start: %v", err)
		}
	}
	return net
}

func (net *bmcaNet) run(t *testing.T, d time.Duration) {
	t.Helper()
	if err := net.sched.RunUntil(net.sched.Now().Add(d)); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestBMCAElectsBestClock(t *testing.T) {
	// sys2 has the lowest priority1 → must become grandmaster of the
	// chain sys0 - sys1 - sys2 - sys3.
	net := newBMCAChain(t, 4, func(i int) uint8 {
		if i == 2 {
			return 50
		}
		return 128
	})
	net.run(t, 10*time.Second)
	for i, e := range net.engines {
		if i == 2 {
			if !e.IsGM() {
				t.Fatalf("sys2 should be grandmaster, roles %v", e.Roles())
			}
			continue
		}
		if e.IsGM() {
			t.Fatalf("sys%d believes it is grandmaster", i)
		}
		if e.GM().ClockID != "sys2" {
			t.Fatalf("sys%d elected %s, want sys2", i, e.GM().ClockID)
		}
	}
	// Chain topology: sys0's slave port faces sys1 (port 1); sys3's faces
	// sys2 (port 0).
	if net.engines[0].SlavePort() != 1 {
		t.Fatalf("sys0 slave port = %d, want 1", net.engines[0].SlavePort())
	}
	if net.engines[3].SlavePort() != 0 {
		t.Fatalf("sys3 slave port = %d, want 0", net.engines[3].SlavePort())
	}
	// The grandmaster has no slave port.
	if net.engines[2].SlavePort() != -1 {
		t.Fatal("grandmaster has a slave port")
	}
}

func TestBMCATiebreakByClockID(t *testing.T) {
	// Equal priorities: lowest ClockID ("sys0") wins.
	net := newBMCAChain(t, 3, func(int) uint8 { return 128 })
	net.run(t, 10*time.Second)
	for i, e := range net.engines {
		want := i == 0
		if e.IsGM() != want {
			t.Fatalf("sys%d IsGM = %v", i, e.IsGM())
		}
	}
}

func TestBMCAReelectsAfterGMFailure(t *testing.T) {
	net := newBMCAChain(t, 4, func(i int) uint8 {
		switch i {
		case 3:
			return 50 // initial GM at the end of the chain
		case 1:
			return 60 // successor
		default:
			return 128
		}
	})
	net.run(t, 10*time.Second)
	if !net.engines[3].IsGM() {
		t.Fatal("sys3 not elected initially")
	}
	// Fail sys3 silently: its engine stops announcing.
	net.engines[3].Stop()
	// Re-election takes up to receiptTimeout (3 s) plus propagation of the
	// new advertisement along the chain.
	net.run(t, 10*time.Second)
	if !net.engines[1].IsGM() {
		t.Fatalf("sys1 not re-elected; its GM is %s", net.engines[1].GM().ClockID)
	}
	for _, i := range []int{0, 2} {
		if net.engines[i].GM().ClockID != "sys1" {
			t.Fatalf("sys%d follows %s after failover, want sys1", i, net.engines[i].GM().ClockID)
		}
	}
}

func TestBMCAFailedMiddleNodePartitions(t *testing.T) {
	// Killing a middle time-aware system partitions the chain: each side
	// elects its own grandmaster — exactly why the paper pairs static
	// external port configuration with redundant network paths.
	net := newBMCAChain(t, 4, func(i int) uint8 {
		if i == 2 {
			return 50
		}
		return 128
	})
	net.run(t, 10*time.Second)
	if !net.engines[2].IsGM() {
		t.Fatal("sys2 not elected initially")
	}
	net.engines[2].Stop()
	net.run(t, 10*time.Second)
	if net.engines[0].GM().ClockID != "sys0" || net.engines[1].GM().ClockID != "sys0" {
		t.Fatalf("left partition follows %s/%s, want sys0",
			net.engines[0].GM().ClockID, net.engines[1].GM().ClockID)
	}
	if !net.engines[3].IsGM() {
		t.Fatal("isolated sys3 must elect itself")
	}
}

func TestBMCANoTimingLoop(t *testing.T) {
	// Ring topology: sys0-sys1-sys2-sys0. Exactly one system is GM and at
	// least one port must be passive to break the loop.
	net := &bmcaNet{sched: sim.NewScheduler(), streams: sim.NewStreams(62)}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("sys%d", i)
		osc := clock.NewOscillator(clock.OscillatorConfig{}, nil, 0)
		phc := clock.NewPHC(net.sched, osc, nil, clock.PHCConfig{})
		br := netsim.NewBridge(name, net.sched, net.streams.Stream("br/"+name), phc,
			netsim.BridgeConfig{Ports: 2, Residence: map[int]netsim.ResidenceModel{
				netsim.PriorityBestEffort: {Base: time.Microsecond},
			}})
		net.bridges = append(net.bridges, br)
		tx := make([]TxFunc, 2)
		for p := 0; p < 2; p++ {
			p := p
			brCopy := br
			tx[p] = func(f *netsim.Frame) (float64, bool) { return brCopy.Transmit(p, f), true }
		}
		engine, err := NewBMCA(net.sched, tx, BMCAConfig{
			Domain: 0,
			Self:   SystemIdentity{Priority1: 128, ClockClass: 248, ClockID: name},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		br.SetHook(&bmcaHook{engine: engine})
		net.engines = append(net.engines, engine)
	}
	for i := 0; i < 3; i++ {
		j := (i + 1) % 3
		if _, err := netsim.Connect(net.sched, net.streams.Stream(fmt.Sprintf("l%d", i)),
			netsim.LinkConfig{Propagation: 500 * time.Nanosecond},
			net.bridges[i].Port(1), net.bridges[j].Port(0)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range net.engines {
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
	}
	net.run(t, 10*time.Second)

	gms := 0
	passives := 0
	for _, e := range net.engines {
		if e.IsGM() {
			gms++
		}
		for _, r := range e.Roles() {
			if r == RolePassive {
				passives++
			}
		}
	}
	if gms != 1 {
		t.Fatalf("%d grandmasters in the ring, want 1", gms)
	}
	if passives == 0 {
		t.Fatal("no passive port in a ring: timing loop not broken")
	}
}

func TestBMCAIgnoresOwnLoopedAnnounce(t *testing.T) {
	sched := sim.NewScheduler()
	engine, err := NewBMCA(sched, []TxFunc{func(*netsim.Frame) (float64, bool) { return 0, true }},
		BMCAConfig{Domain: 0, Self: SystemIdentity{ClockID: "me"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine.HandleAnnounce(0, &Announce{Domain: 0, GM: SystemIdentity{ClockID: "me"}})
	if !engine.IsGM() {
		t.Fatal("looped-back own announce dethroned the grandmaster")
	}
}

func TestBMCAValidation(t *testing.T) {
	if _, err := NewBMCA(sim.NewScheduler(), nil, BMCAConfig{}, nil); err == nil {
		t.Fatal("BMCA without ports accepted")
	}
	sched := sim.NewScheduler()
	e, err := NewBMCA(sched, []TxFunc{func(*netsim.Frame) (float64, bool) { return 0, true }},
		BMCAConfig{Self: SystemIdentity{ClockID: "x"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	e.Stop()
}

func TestPortRoleString(t *testing.T) {
	if RoleMaster.String() != "master" || RoleSlave.String() != "slave" ||
		RolePassive.String() != "passive" || RoleDisabled.String() != "disabled" {
		t.Fatal("role strings wrong")
	}
	if PortRole(99).String() != "role(99)" {
		t.Fatal("unknown role string wrong")
	}
}

// TestRelayReconfiguredByBMCA ties a BMCA role change to a relay's
// per-domain port configuration at runtime: after the grandmaster moves to
// the other side of a bridge, the relay's slave port follows.
func TestRelayReconfiguredByBMCA(t *testing.T) {
	h := newHarness(63)
	brClk := h.phc("sw", 2000, 8)
	br := netsim.NewBridge("sw", h.sched, h.streams.Stream("br"), brClk, netsim.BridgeConfig{
		Ports: 2,
		Residence: map[int]netsim.ResidenceModel{
			netsim.PriorityBestEffort: {Base: time.Microsecond, JitterNS: 100},
			netsim.PriorityPTP:        {Base: time.Microsecond, JitterNS: 100},
		},
	})
	gmA := h.nic("gmA", 1000, 0)
	gmB := h.nic("gmB", -1000, 5000)
	h.connect(t, gmA.Port(), br.Port(0), 500*time.Nanosecond, 10)
	h.connect(t, gmB.Port(), br.Port(1), 500*time.Nanosecond, 10)

	relay, err := NewRelay(br, h.sched, h.streams.Stream("relay"), RelayConfig{
		Domains: map[int]DomainPorts{0: {SlavePort: 0, MasterPorts: []int{1}}},
	})
	if err != nil {
		t.Fatalf("relay: %v", err)
	}
	if err := relay.Start(); err != nil {
		t.Fatalf("relay start: %v", err)
	}
	newStation(h, gmA)
	stB := newStation(h, gmB)
	var gotA, gotB int
	stB.addSlave(0, func(OffsetSample) { gotB++ })
	mA := NewMaster(gmA, h.sched, h.streams.Stream("mA"), MasterConfig{Domain: 0, GMIdentity: "gmA"}, nil)
	if err := mA.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.sched.RunUntil(h.sched.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if gotB == 0 {
		t.Fatal("initial configuration relays nothing to gmB")
	}

	// The BMCA decides gmB is now the better grandmaster: reconfigure.
	if err := relay.SetDomainPorts(0, DomainPorts{SlavePort: 1, MasterPorts: []int{0}}); err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	cfg, ok := relay.DomainPortsFor(0)
	if !ok || cfg.SlavePort != 1 {
		t.Fatalf("configuration not applied: %+v/%v", cfg, ok)
	}
	mA.Stop()
	stA := newStation(h, gmA)
	stA.addSlave(0, func(OffsetSample) { gotA++ })
	mB := NewMaster(gmB, h.sched, h.streams.Stream("mB"), MasterConfig{Domain: 0, GMIdentity: "gmB"}, nil)
	if err := mB.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.sched.RunUntil(h.sched.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if gotA == 0 {
		t.Fatal("reconfigured relay does not deliver the new grandmaster's Sync")
	}

	if err := relay.SetDomainPorts(0, DomainPorts{SlavePort: 9}); err == nil {
		t.Fatal("out-of-range slave port accepted")
	}
	if err := relay.SetDomainPorts(0, DomainPorts{SlavePort: 0, MasterPorts: []int{9}}); err == nil {
		t.Fatal("out-of-range master port accepted")
	}
	relay.RemoveDomain(0)
	if _, ok := relay.DomainPortsFor(0); ok {
		t.Fatal("domain still configured after RemoveDomain")
	}
}

// TestSyncSurvivesFrameLoss: lost Sync or FollowUp frames skip intervals
// but do not wedge the slave's matching state.
func TestSyncSurvivesFrameLoss(t *testing.T) {
	h := newHarness(64)
	gm := h.nic("gm", 1000, 0)
	cl := h.nic("cl", -1000, 7777)
	// 10% loss on the link.
	if _, err := netsim.Connect(h.sched, h.streams.Stream("lossy"),
		netsim.LinkConfig{Propagation: 500 * time.Nanosecond, JitterNS: 20, LossProb: 0.1},
		gm.Port(), cl.Port()); err != nil {
		t.Fatal(err)
	}
	stGM, stCL := newStation(h, gm), newStation(h, cl)
	if err := stGM.ld.Start(); err != nil {
		t.Fatal(err)
	}
	if err := stCL.ld.Start(); err != nil {
		t.Fatal(err)
	}
	var samples int
	var lastOffset float64
	var lastTrue float64
	stCL.addSlave(0, func(s OffsetSample) {
		samples++
		lastOffset = s.OffsetNS
		lastTrue = cl.PHC().Now() - gm.PHC().Now()
	})
	m := NewMaster(gm, h.sched, h.streams.Stream("gm"), MasterConfig{Domain: 0}, nil)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.sched.RunUntil(h.sched.Now().Add(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// 8 Hz × 60 s = 480 intervals; with ~19% pair loss expect roughly 390.
	if samples < 250 || samples > 470 {
		t.Fatalf("samples = %d under 10%% frame loss, want lossy but flowing", samples)
	}
	if lastOffset == 0 || absF(lastOffset-lastTrue) > 200 {
		t.Fatalf("offsets corrupted by loss: got %v, true %v", lastOffset, lastTrue)
	}
	if cl.Port().Link().Lost() == 0 {
		t.Fatal("link reported no losses at p=0.1")
	}
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestBMCAPathTraceRejection(t *testing.T) {
	sched := sim.NewScheduler()
	engine, err := NewBMCA(sched, []TxFunc{func(*netsim.Frame) (float64, bool) { return 0, true }},
		BMCAConfig{Domain: 0, Self: SystemIdentity{Priority1: 100, ClockID: "me"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A better vector whose path already contains us must be discarded —
	// it is our own stale information reflected by the mesh.
	engine.HandleAnnounce(0, &Announce{
		Domain: 0,
		GM:     SystemIdentity{Priority1: 1, ClockID: "ghost"},
		Path:   []string{"ghost", "sw2", "me", "sw3"},
	})
	if !engine.IsGM() {
		t.Fatal("reflected announce accepted despite path trace")
	}
	// The same vector with a clean path is accepted.
	engine.HandleAnnounce(0, &Announce{
		Domain: 0,
		GM:     SystemIdentity{Priority1: 1, ClockID: "ghost"},
		Path:   []string{"ghost", "sw2"},
	})
	if engine.IsGM() {
		t.Fatal("clean announce rejected")
	}
}

// TestDynamicStationMasterGating: the station's Master role follows its
// BMCA verdict — announcing while it believes it is grandmaster, silent
// once a better clock appears.
func TestDynamicStationMasterGating(t *testing.T) {
	h := newHarness(91)
	a := h.nic("a", 1000, 0)
	b := h.nic("b", -1000, 4000)
	h.connect(t, a.Port(), b.Port(), 500*time.Nanosecond, 10)

	var gotOffsets int
	stA, err := NewDynamicStation("a", a, h.sched, h.streams.Stream("da"),
		SystemIdentity{Priority1: 50, ClockClass: 248, ClockID: "a"}, 0, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := NewDynamicStation("b", b, h.sched, h.streams.Stream("db"),
		SystemIdentity{Priority1: 100, ClockClass: 248, ClockID: "b"}, 0, time.Second,
		func(OffsetSample) { gotOffsets++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := stA.Start(); err != nil {
		t.Fatal(err)
	}
	if err := stB.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.sched.RunUntil(sim.Time(15 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !stA.Engine().IsGM() || stB.Engine().IsGM() {
		t.Fatalf("election wrong: a=%v b=%v", stA.Engine().IsGM(), stB.Engine().IsGM())
	}
	if !stA.Master().Running() {
		t.Fatal("elected grandmaster's Master role not running")
	}
	if stB.Master().Running() {
		t.Fatal("slave station still mastering")
	}
	if gotOffsets < 50 {
		t.Fatalf("slave computed only %d offsets", gotOffsets)
	}
	if stA.String() == "" || stB.String() == "" {
		t.Fatal("empty station strings")
	}
}

// TestDynamicModeNoByzantineDefense: in single-grandmaster dynamic
// operation every station follows the elected clock unconditionally — a
// compromised grandmaster shifts the whole network by its falsification.
// This is the gap the paper's multi-domain FTA closes.
func TestDynamicModeNoByzantineDefense(t *testing.T) {
	h := newHarness(92)
	gmNIC := h.nic("a", 500, 0)
	clNIC := h.nic("b", -500, 3000)
	h.connect(t, gmNIC.Port(), clNIC.Port(), 500*time.Nanosecond, 10)

	var last OffsetSample
	gmSt, err := NewDynamicStation("a", gmNIC, h.sched, h.streams.Stream("da"),
		SystemIdentity{Priority1: 50, ClockClass: 248, ClockID: "a"}, 0, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	clSt, err := NewDynamicStation("b", clNIC, h.sched, h.streams.Stream("db"),
		SystemIdentity{Priority1: 100, ClockClass: 248, ClockID: "b"}, 0, time.Second,
		func(s OffsetSample) { last = s })
	if err != nil {
		t.Fatal(err)
	}
	if err := gmSt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := clSt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.sched.RunUntil(sim.Time(15 * time.Second)); err != nil {
		t.Fatal(err)
	}
	honest := last.OffsetNS

	// The attacker compromises the elected grandmaster. The station clocks
	// free-run in this fixture (no servo), so allow for the ~1 µs/s
	// relative drift over the short observation window.
	gmSt.Master().SetMaliciousOffset(-24000)
	if err := h.sched.RunUntil(sim.Time(17 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if math.Abs((last.OffsetNS-honest)-24000) > 3500 {
		t.Fatalf("falsification not swallowed whole: honest %v, attacked %v — a dynamic single-GM network has no Byzantine defense",
			honest, last.OffsetNS)
	}
}
