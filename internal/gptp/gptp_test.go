package gptp

import (
	"math"
	"testing"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

type harness struct {
	sched   *sim.Scheduler
	streams *sim.Streams
}

func newHarness(seed int64) *harness {
	return &harness{sched: sim.NewScheduler(), streams: sim.NewStreams(seed)}
}

func (h *harness) phc(name string, staticPPB, offsetNS float64) *clock.PHC {
	osc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: staticPPB, WanderPPBPerSqrtSec: 1},
		h.streams.Stream("osc/"+name), h.sched.Now())
	return clock.NewPHC(h.sched, osc, h.streams.Stream("ts/"+name),
		clock.PHCConfig{TimestampJitterNS: 8, InitialOffsetNS: offsetNS})
}

func (h *harness) nic(name string, staticPPB, offsetNS float64) *netsim.NIC {
	return netsim.NewNIC(name, h.sched, h.phc(name, staticPPB, offsetNS))
}

func (h *harness) connect(t *testing.T, a, b *netsim.Port, prop time.Duration, jitterNS float64) {
	t.Helper()
	_, err := netsim.Connect(h.sched, h.streams.Stream("link/"+a.Name),
		netsim.LinkConfig{Propagation: prop, JitterNS: jitterNS}, a, b)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
}

// station is a minimal end-station network stack: pdelay on the NIC port
// plus per-domain slaves.
type station struct {
	nic    *netsim.NIC
	ld     *LinkDelay
	slaves map[int]*Slave
}

func newStation(h *harness, nic *netsim.NIC) *station {
	st := &station{nic: nic, slaves: make(map[int]*Slave)}
	st.ld = NewLinkDelay(nic.DeviceName(), h.sched, h.streams.Stream("pd/"+nic.DeviceName()),
		func(f *netsim.Frame) (float64, bool) {
			ts, err := nic.Send(f)
			return ts, err == nil
		}, LinkDelayConfig{})
	nic.SetHandler(func(f *netsim.Frame, rxTS float64) {
		switch m := f.Payload.(type) {
		case *PdelayReq, *PdelayResp, *PdelayRespFollowUp:
			st.ld.HandleFrame(f.Payload, rxTS)
		case *Sync:
			if s, ok := st.slaves[m.Domain]; ok {
				s.HandleSync(m, rxTS)
			}
		case *FollowUp:
			if s, ok := st.slaves[m.Domain]; ok {
				s.HandleFollowUp(m)
			}
		}
	})
	return st
}

func (st *station) addSlave(domain int, onOffset func(OffsetSample)) *Slave {
	s := NewSlave(domain, st.ld, onOffset)
	st.slaves[domain] = s
	return s
}

func TestPdelayMeasuresLinkDelay(t *testing.T) {
	h := newHarness(1)
	a := h.nic("a", 2000, 0)
	b := h.nic("b", -3000, 5e6)
	h.connect(t, a.Port(), b.Port(), 500*time.Nanosecond, 20)
	sa, sb := newStation(h, a), newStation(h, b)
	if err := sa.ld.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := sb.ld.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := h.sched.RunUntil(sim.Time(30 * time.Second)); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, st := range []*station{sa, sb} {
		d, ok := st.ld.MeanDelayNS()
		if !ok {
			t.Fatalf("%s: no pdelay measurement", st.nic.DeviceName())
		}
		if math.Abs(d-500) > 60 {
			t.Fatalf("%s: mean link delay %v ns, want ≈500", st.nic.DeviceName(), d)
		}
		if st.ld.Samples() < 25 {
			t.Fatalf("%s: only %d samples in 30 s", st.nic.DeviceName(), st.ld.Samples())
		}
		if rr := st.ld.NeighborRateRatio(); math.Abs(rr-1) > 100e-6 {
			t.Fatalf("%s: neighbor rate ratio %v implausible", st.nic.DeviceName(), rr)
		}
	}
}

func TestMasterSyncDirectLink(t *testing.T) {
	h := newHarness(2)
	gm := h.nic("gm", 1000, 0)
	cl := h.nic("cl", -2000, 12345) // client clock 12.345 µs ahead
	h.connect(t, gm.Port(), cl.Port(), 500*time.Nanosecond, 20)

	stGM, stCL := newStation(h, gm), newStation(h, cl)
	if err := stGM.ld.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := stCL.ld.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}

	var samples []OffsetSample
	var trueDiffs []float64
	stCL.addSlave(0, func(s OffsetSample) {
		samples = append(samples, s)
		trueDiffs = append(trueDiffs, cl.PHC().Now()-gm.PHC().Now())
	})

	m := NewMaster(gm, h.sched, h.streams.Stream("gm"), MasterConfig{Domain: 0, GMIdentity: "gm"}, nil)
	if err := m.Start(); err != nil {
		t.Fatalf("master start: %v", err)
	}
	if err := h.sched.RunUntil(sim.Time(10 * time.Second)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(samples) < 60 {
		t.Fatalf("only %d offset samples in 10 s at 8 Hz", len(samples))
	}
	// After pdelay settles, the measured offset must track the true clock
	// difference (~12.3 µs plus drift) within ~100 ns. (The callback runs
	// ~1 ms after the Sync receipt; drift over that is a few ns.)
	last := samples[len(samples)-1]
	trueDiff := trueDiffs[len(trueDiffs)-1]
	if math.Abs(last.OffsetNS-trueDiff) > 120 {
		t.Fatalf("offset %v ns vs true clock difference %v ns", last.OffsetNS, trueDiff)
	}
	syncs, fus := m.Counters()
	if syncs == 0 || fus == 0 || fus > syncs {
		t.Fatalf("counters implausible: syncs=%d followups=%d", syncs, fus)
	}
}

func TestMasterLaunchTimesAligned(t *testing.T) {
	// Two masters with synchronized PHCs must launch Syncs at nearly the
	// same instants (the paper's synchronous transmission requirement).
	h := newHarness(3)
	gm1 := h.nic("gm1", 500, 0)
	gm2 := h.nic("gm2", -500, 0)
	cl1 := h.nic("cl1", 0, 0)
	cl2 := h.nic("cl2", 0, 0)
	h.connect(t, gm1.Port(), cl1.Port(), 500*time.Nanosecond, 10)
	h.connect(t, gm2.Port(), cl2.Port(), 500*time.Nanosecond, 10)

	var t1s, t2s []sim.Time
	cl1.SetHandler(func(f *netsim.Frame, _ float64) {
		if _, ok := f.Payload.(*Sync); ok {
			t1s = append(t1s, h.sched.Now())
		}
	})
	cl2.SetHandler(func(f *netsim.Frame, _ float64) {
		if _, ok := f.Payload.(*Sync); ok {
			t2s = append(t2s, h.sched.Now())
		}
	})
	m1 := NewMaster(gm1, h.sched, nil, MasterConfig{Domain: 0}, nil)
	m2 := NewMaster(gm2, h.sched, nil, MasterConfig{Domain: 1}, nil)
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.sched.RunUntil(sim.Time(5 * time.Second)); err != nil {
		t.Fatalf("run: %v", err)
	}
	n := len(t1s)
	if len(t2s) < n {
		n = len(t2s)
	}
	if n < 30 {
		t.Fatalf("too few syncs: %d/%d", len(t1s), len(t2s))
	}
	for i := 0; i < n; i++ {
		if d := t1s[i].Sub(t2s[i]); d > 10*time.Microsecond || d < -10*time.Microsecond {
			t.Fatalf("sync %d launch skew %v, want within ~drift bounds", i, d)
		}
	}
}

func TestMasterTransientFaults(t *testing.T) {
	h := newHarness(4)
	gm := h.nic("gm", 0, 0)
	cl := h.nic("cl", 0, 0)
	h.connect(t, gm.Port(), cl.Port(), 500*time.Nanosecond, 10)
	newStation(h, cl)

	faults := map[string]int{}
	m := NewMaster(gm, h.sched, h.streams.Stream("flt"), MasterConfig{
		Domain:                 0,
		TxTimestampTimeoutProb: 0.2,
		DeadlineMissProb:       0.1,
	}, func(kind string) { faults[kind]++ })
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.sched.RunUntil(sim.Time(60 * time.Second)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if faults[FaultTxTimestampTimeout] == 0 {
		t.Fatal("no tx timestamp timeout faults at p=0.2")
	}
	if faults[FaultDeadlineMiss] == 0 {
		t.Fatal("no deadline miss faults at p=0.1")
	}
	syncs, fus := m.Counters()
	if fus >= syncs {
		t.Fatalf("timeout faults must suppress FollowUps: syncs=%d fus=%d", syncs, fus)
	}
}

func TestMasterStopStart(t *testing.T) {
	h := newHarness(5)
	gm := h.nic("gm", 0, 0)
	cl := h.nic("cl", 0, 0)
	h.connect(t, gm.Port(), cl.Port(), 500*time.Nanosecond, 0)
	newStation(h, cl)
	m := NewMaster(gm, h.sched, nil, MasterConfig{Domain: 0}, nil)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	if err := h.sched.RunUntil(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	syncsBefore, _ := m.Counters()
	if err := h.sched.RunUntil(sim.Time(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	syncsAfter, _ := m.Counters()
	// At most one Sync can still be in flight in the ETF queue at Stop.
	if syncsAfter > syncsBefore+1 {
		t.Fatalf("master kept sending after Stop: %d -> %d", syncsBefore, syncsAfter)
	}
	if m.Running() {
		t.Fatal("Running() true after Stop")
	}
}

// buildRelayTopology wires GM → bridge → client and returns the pieces.
func buildRelayTopology(t *testing.T, h *harness) (*netsim.NIC, *netsim.NIC, *Relay) {
	t.Helper()
	gm := h.nic("gm", 4000, 0)
	cl := h.nic("cl", -4000, 50000)
	brClk := h.phc("sw", 7000, 8)
	br := netsim.NewBridge("sw", h.sched, h.streams.Stream("br/sw"), brClk, netsim.BridgeConfig{
		Ports: 2,
		Residence: map[int]netsim.ResidenceModel{
			netsim.PriorityBestEffort: {Base: 1500 * time.Nanosecond, JitterNS: 150},
			netsim.PriorityPTP:        {Base: 1200 * time.Nanosecond, JitterNS: 100},
		},
	})
	h.connect(t, gm.Port(), br.Port(0), 500*time.Nanosecond, 20)
	h.connect(t, cl.Port(), br.Port(1), 500*time.Nanosecond, 20)
	relay, err := NewRelay(br, h.sched, h.streams.Stream("relay"), RelayConfig{
		Domains: map[int]DomainPorts{0: {SlavePort: 0, MasterPorts: []int{1}}},
	})
	if err != nil {
		t.Fatalf("relay: %v", err)
	}
	if err := relay.Start(); err != nil {
		t.Fatalf("relay start: %v", err)
	}
	return gm, cl, relay
}

func TestRelayCorrectionCompensatesResidence(t *testing.T) {
	h := newHarness(6)
	gm, cl, _ := buildRelayTopology(t, h)

	stGM, stCL := newStation(h, gm), newStation(h, cl)
	if err := stGM.ld.Start(); err != nil {
		t.Fatal(err)
	}
	if err := stCL.ld.Start(); err != nil {
		t.Fatal(err)
	}
	var samples []OffsetSample
	var trueDiffs []float64
	stCL.addSlave(0, func(s OffsetSample) {
		samples = append(samples, s)
		trueDiffs = append(trueDiffs, cl.PHC().Now()-gm.PHC().Now())
	})
	m := NewMaster(gm, h.sched, h.streams.Stream("gm"), MasterConfig{Domain: 0, GMIdentity: "gm"}, nil)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.sched.RunUntil(sim.Time(20 * time.Second)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(samples) < 100 {
		t.Fatalf("only %d samples", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Correction < 1000 {
		t.Fatalf("correction %v ns does not include bridge residence", last.Correction)
	}
	trueDiff := trueDiffs[len(trueDiffs)-1]
	if math.Abs(last.OffsetNS-trueDiff) > 200 {
		t.Fatalf("offset %v vs true %v: residence not compensated", last.OffsetNS, trueDiff)
	}
	// The offset error must be far below the raw residence time.
	if math.Abs(last.OffsetNS-trueDiff) > 0.2*last.Correction {
		t.Fatalf("offset error %v ns is a large fraction of correction %v ns",
			math.Abs(last.OffsetNS-trueDiff), last.Correction)
	}
}

func TestMaliciousMasterShiftsOffsets(t *testing.T) {
	h := newHarness(7)
	gm := h.nic("gm", 0, 0)
	cl := h.nic("cl", 0, 0)
	h.connect(t, gm.Port(), cl.Port(), 500*time.Nanosecond, 10)
	stGM, stCL := newStation(h, gm), newStation(h, cl)
	if err := stGM.ld.Start(); err != nil {
		t.Fatal(err)
	}
	if err := stCL.ld.Start(); err != nil {
		t.Fatal(err)
	}
	var samples []OffsetSample
	stCL.addSlave(0, func(s OffsetSample) { samples = append(samples, s) })
	m := NewMaster(gm, h.sched, nil, MasterConfig{Domain: 0}, nil)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.sched.RunUntil(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	honest := samples[len(samples)-1].OffsetNS
	m.SetMaliciousOffset(-24000) // the paper's attack
	if err := h.sched.RunUntil(sim.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	attacked := samples[len(samples)-1].OffsetNS
	if math.Abs((attacked-honest)-24000) > 200 {
		t.Fatalf("malicious origin offset not reflected: honest=%v attacked=%v", honest, attacked)
	}
}

func TestRelayIgnoresSyncOnWrongPort(t *testing.T) {
	h := newHarness(8)
	_, cl, _ := buildRelayTopology(t, h)
	// Inject a Sync from the client side (port 1), which is not the
	// domain's slave port: the relay must drop it.
	stCL := newStation(h, cl)
	received := 0
	stCL.addSlave(0, func(OffsetSample) { received++ })
	_, err := cl.Send(newFrame("nic/cl", &Sync{Domain: 0, Seq: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.sched.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if received != 0 {
		t.Fatal("Sync injected on a master port was relayed")
	}
}

func TestSlaveSkipsLostSync(t *testing.T) {
	ld := NewLinkDelay("x", sim.NewScheduler(), nil, func(*netsim.Frame) (float64, bool) { return 0, true }, LinkDelayConfig{})
	var got []OffsetSample
	s := NewSlave(0, ld, func(o OffsetSample) { got = append(got, o) })
	s.HandleFollowUp(&FollowUp{Domain: 0, Seq: 9, PreciseOrigin: 100})
	if len(got) != 0 {
		t.Fatal("FollowUp without Sync produced a sample")
	}
	s.HandleSync(&Sync{Domain: 0, Seq: 10}, 1000)
	s.HandleFollowUp(&FollowUp{Domain: 0, Seq: 10, PreciseOrigin: 400, Correction: 100})
	if len(got) != 1 {
		t.Fatalf("expected 1 sample, got %d", len(got))
	}
	if got[0].OffsetNS != 500 {
		t.Fatalf("offset = %v, want 1000-400-100-0 = 500", got[0].OffsetNS)
	}
	// Duplicate FollowUp must not produce another sample.
	s.HandleFollowUp(&FollowUp{Domain: 0, Seq: 10, PreciseOrigin: 400, Correction: 100})
	if len(got) != 1 {
		t.Fatal("duplicate FollowUp produced a sample")
	}
}

func TestSlaveIgnoresOtherDomains(t *testing.T) {
	ld := NewLinkDelay("x", sim.NewScheduler(), nil, func(*netsim.Frame) (float64, bool) { return 0, true }, LinkDelayConfig{})
	var got int
	s := NewSlave(2, ld, func(OffsetSample) { got++ })
	s.HandleSync(&Sync{Domain: 1, Seq: 1}, 0)
	s.HandleFollowUp(&FollowUp{Domain: 1, Seq: 1})
	if got != 0 {
		t.Fatal("slave processed a foreign domain")
	}
}

func TestIsGPTP(t *testing.T) {
	if !IsGPTP(&netsim.Frame{Payload: &Sync{}}) {
		t.Fatal("Sync not recognised")
	}
	if IsGPTP(&netsim.Frame{Payload: "probe"}) {
		t.Fatal("non-gPTP payload recognised")
	}
}

func TestRelayRejectsBadSlavePort(t *testing.T) {
	h := newHarness(9)
	br := netsim.NewBridge("sw", h.sched, nil, h.phc("sw", 0, 0), netsim.BridgeConfig{Ports: 2,
		Residence: map[int]netsim.ResidenceModel{netsim.PriorityBestEffort: {Base: time.Microsecond}}})
	_, err := NewRelay(br, h.sched, nil, RelayConfig{Domains: map[int]DomainPorts{0: {SlavePort: 5}}})
	if err == nil {
		t.Fatal("relay accepted out-of-range slave port")
	}
}

func TestOneStepSyncDirectLink(t *testing.T) {
	h := newHarness(81)
	gm := h.nic("gm", 2000, 0)
	cl := h.nic("cl", -2000, 9999)
	h.connect(t, gm.Port(), cl.Port(), 500*time.Nanosecond, 20)
	stGM, stCL := newStation(h, gm), newStation(h, cl)
	if err := stGM.ld.Start(); err != nil {
		t.Fatal(err)
	}
	if err := stCL.ld.Start(); err != nil {
		t.Fatal(err)
	}
	var samples []OffsetSample
	var trueDiffs []float64
	stCL.addSlave(0, func(s OffsetSample) {
		samples = append(samples, s)
		trueDiffs = append(trueDiffs, cl.PHC().Now()-gm.PHC().Now())
	})
	m := NewMaster(gm, h.sched, h.streams.Stream("gm"),
		MasterConfig{Domain: 0, GMIdentity: "gm", OneStep: true}, nil)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.sched.RunUntil(sim.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(samples) < 60 {
		t.Fatalf("samples = %d", len(samples))
	}
	// No FollowUps in one-step operation.
	syncs, fus := m.Counters()
	if syncs == 0 || fus != 0 {
		t.Fatalf("counters: syncs=%d followups=%d, want followups=0", syncs, fus)
	}
	last := samples[len(samples)-1]
	if math.Abs(last.OffsetNS-trueDiffs[len(trueDiffs)-1]) > 120 {
		t.Fatalf("one-step offset %v vs true %v", last.OffsetNS, trueDiffs[len(trueDiffs)-1])
	}
	if last.GMIdentity != "gm" {
		t.Fatalf("GM identity %q", last.GMIdentity)
	}
}

func TestOneStepSyncThroughRelay(t *testing.T) {
	h := newHarness(82)
	gm, cl, _ := buildRelayTopology(t, h)
	stGM, stCL := newStation(h, gm), newStation(h, cl)
	if err := stGM.ld.Start(); err != nil {
		t.Fatal(err)
	}
	if err := stCL.ld.Start(); err != nil {
		t.Fatal(err)
	}
	var samples []OffsetSample
	var trueDiffs []float64
	stCL.addSlave(0, func(s OffsetSample) {
		samples = append(samples, s)
		trueDiffs = append(trueDiffs, cl.PHC().Now()-gm.PHC().Now())
	})
	m := NewMaster(gm, h.sched, h.streams.Stream("gm"),
		MasterConfig{Domain: 0, GMIdentity: "gm", OneStep: true}, nil)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.sched.RunUntil(sim.Time(20 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(samples) < 100 {
		t.Fatalf("samples = %d", len(samples))
	}
	last := samples[len(samples)-1]
	// The relay must have rewritten the correction on the fly.
	if last.Correction < 1000 {
		t.Fatalf("correction %v ns missing relay residence", last.Correction)
	}
	if math.Abs(last.OffsetNS-trueDiffs[len(trueDiffs)-1]) > 200 {
		t.Fatalf("one-step offset %v vs true %v through relay",
			last.OffsetNS, trueDiffs[len(trueDiffs)-1])
	}
}

func TestOneStepMaliciousMaster(t *testing.T) {
	h := newHarness(83)
	gm := h.nic("gm", 0, 0)
	cl := h.nic("cl", 0, 0)
	h.connect(t, gm.Port(), cl.Port(), 500*time.Nanosecond, 10)
	stGM, stCL := newStation(h, gm), newStation(h, cl)
	if err := stGM.ld.Start(); err != nil {
		t.Fatal(err)
	}
	if err := stCL.ld.Start(); err != nil {
		t.Fatal(err)
	}
	var last float64
	stCL.addSlave(0, func(s OffsetSample) { last = s.OffsetNS })
	m := NewMaster(gm, h.sched, nil, MasterConfig{Domain: 0, OneStep: true}, nil)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.sched.RunUntil(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	honest := last
	m.SetMaliciousOffset(-24000)
	if err := h.sched.RunUntil(sim.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if math.Abs((last-honest)-24000) > 200 {
		t.Fatalf("one-step attack not reflected: honest %v, attacked %v", honest, last)
	}
}
