package gptp

import (
	"fmt"
	"time"

	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// Dynamic 802.1AS operation: instead of the paper's static external port
// configuration, every time-aware system runs the BMCA and the relay's
// per-domain spanning tree follows the elected roles. The paper
// deliberately avoids this mode (re-election gaps, single elected
// grandmaster); the library ships it so the trade-off can be measured —
// see experiments.DynamicMeshStudy.

// DynamicBridge couples a time-aware bridge's relay with a BMCA engine:
// Announce messages feed the engine, and every role change rewrites the
// relay's port configuration for the domain.
type DynamicBridge struct {
	relay  *Relay
	engine *BMCA
	domain int
}

// NewDynamicBridge wires BMCA-managed relaying for one domain on a bridge
// that already has a Relay installed.
func NewDynamicBridge(bridge *netsim.Bridge, relay *Relay, sched *sim.Scheduler,
	self SystemIdentity, domain int, announceInterval time.Duration) (*DynamicBridge, error) {
	tx := make([]TxFunc, bridge.NumPorts())
	for p := 0; p < bridge.NumPorts(); p++ {
		p := p
		tx[p] = func(f *netsim.Frame) (float64, bool) {
			return bridge.Transmit(p, f), true
		}
	}
	db := &DynamicBridge{relay: relay, domain: domain}
	engine, err := NewBMCA(sched, tx, BMCAConfig{
		Domain:           domain,
		Self:             self,
		AnnounceInterval: announceInterval,
	}, db.applyRoles)
	if err != nil {
		return nil, err
	}
	db.engine = engine
	relay.SetAnnounceHandler(engine.HandleAnnounce)
	// Until the first election completes, do not relay the domain at all.
	relay.RemoveDomain(domain)
	return db, nil
}

// Engine exposes the BMCA engine.
func (db *DynamicBridge) Engine() *BMCA { return db.engine }

// Start begins BMCA participation.
func (db *DynamicBridge) Start() error { return db.engine.Start() }

// Stop halts BMCA participation (fail-silent bridge).
func (db *DynamicBridge) Stop() { db.engine.Stop() }

// applyRoles maps the engine's port roles onto the relay's spanning tree.
func (db *DynamicBridge) applyRoles(c RoleChange) {
	if c.SlavePort < 0 {
		// This bridge believes it is grandmaster — with bridges that are
		// pure relays (no local clock source advertised better than the
		// stations) this only happens transiently before the first
		// Announce arrives.
		db.relay.RemoveDomain(db.domain)
		return
	}
	masters := make([]int, 0, len(c.Roles))
	for p, role := range c.Roles {
		if role == RoleMaster {
			masters = append(masters, p)
		}
	}
	_ = db.relay.SetDomainPorts(db.domain, DomainPorts{SlavePort: c.SlavePort, MasterPorts: masters})
}

// DynamicStation is an end station under BMCA control: it announces its
// own clock quality, slaves to the elected grandmaster, and activates its
// Master role exactly while it is the elected grandmaster itself.
type DynamicStation struct {
	name   string
	nic    *netsim.NIC
	engine *BMCA
	master *Master
	slave  *Slave
	ld     *LinkDelay
}

// NewDynamicStation builds a station on nic. onOffset receives grandmaster
// offsets while the station is a slave.
func NewDynamicStation(name string, nic *netsim.NIC, sched *sim.Scheduler, rng sim.RNG,
	self SystemIdentity, domain int, announceInterval time.Duration,
	onOffset func(OffsetSample)) (*DynamicStation, error) {
	st := &DynamicStation{name: name, nic: nic}
	st.ld = NewLinkDelay(name, sched, rng, func(f *netsim.Frame) (float64, bool) {
		ts, err := nic.Send(f)
		return ts, err == nil
	}, LinkDelayConfig{})
	st.slave = NewSlave(domain, st.ld, onOffset)
	st.master = NewMaster(nic, sched, rng, MasterConfig{
		Domain:     domain,
		GMIdentity: name,
	}, nil)

	tx := []TxFunc{func(f *netsim.Frame) (float64, bool) {
		ts, err := nic.Send(f)
		return ts, err == nil
	}}
	engine, err := NewBMCA(sched, tx, BMCAConfig{
		Domain:           domain,
		Self:             self,
		AnnounceInterval: announceInterval,
	}, func(c RoleChange) {
		if c.IsGM && !st.master.Running() {
			_ = st.master.Start()
		}
		if !c.IsGM && st.master.Running() {
			st.master.Stop()
		}
	})
	if err != nil {
		return nil, err
	}
	st.engine = engine

	nic.SetHandler(func(f *netsim.Frame, rxTS float64) {
		switch m := f.Payload.(type) {
		case *PdelayReq, *PdelayResp, *PdelayRespFollowUp:
			st.ld.HandleFrame(f.Payload, rxTS)
		case *Sync:
			if !engine.IsGM() {
				st.slave.HandleSync(m, rxTS)
			}
		case *FollowUp:
			if !engine.IsGM() {
				st.slave.HandleFollowUp(m)
			}
		case *Announce:
			engine.HandleAnnounce(0, m)
		}
	})
	return st, nil
}

// Engine exposes the BMCA engine.
func (st *DynamicStation) Engine() *BMCA { return st.engine }

// Master exposes the station's (BMCA-gated) grandmaster role.
func (st *DynamicStation) Master() *Master { return st.master }

// Slave exposes the station's slave role.
func (st *DynamicStation) Slave() *Slave { return st.slave }

// Start boots pdelay and BMCA participation.
func (st *DynamicStation) Start() error {
	if err := st.ld.Start(); err != nil {
		return err
	}
	return st.engine.Start()
}

// Fail makes the station fail-silent.
func (st *DynamicStation) Fail() {
	st.nic.SetDown(true)
	st.engine.Stop()
	st.master.Stop()
	st.ld.Stop()
}

// String describes the station.
func (st *DynamicStation) String() string {
	return fmt.Sprintf("station(%s gm=%v follows=%s)", st.name, st.engine.IsGM(), st.engine.GM().ClockID)
}
