package gptp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file implements the binary wire format of the gPTP messages per
// IEEE 1588-2019 clause 13 and IEEE 802.1AS-2020 clause 11, so that the
// protocol engine's messages can be captured, replayed or exchanged with
// real implementations. The simulator proper exchanges typed structs; the
// codec is the interoperability boundary.

// Wire message types (IEEE 1588-2019 Table 36).
const (
	WireTypeSync               = 0x0
	WireTypePdelayReq          = 0x2
	WireTypePdelayResp         = 0x3
	WireTypeFollowUp           = 0x8
	WireTypePdelayRespFollowUp = 0xA
	WireTypeAnnounce           = 0xB
)

// majorSdoId for gPTP (802.1AS) is 0x1 (transportSpecific nibble).
const gptpMajorSdoID = 0x1

// Header lengths (IEEE 1588-2019 clause 13.3).
const (
	headerLen            = 34
	timestampLen         = 10
	portIdentityLen      = 10
	syncBodyLen          = timestampLen
	followUpBodyLen      = timestampLen
	pdelayReqBodyLen     = timestampLen + portIdentityLen // reserved + reserved
	pdelayRespBodyLen    = timestampLen + portIdentityLen
	announceBodyLen      = timestampLen + 2 + 1 + 1 + 4 + 1 + 8 + 2 + 1
	twoStepFlag          = 0x0200
	ptpTimescaleFlag     = 0x0008
	currentPTPVersion    = 0x02 // versionPTP 2, minorVersionPTP handled separately
	logMessageIntervalNA = 0x7F
	controlFieldOther    = 0x05
	controlFieldSync     = 0x00
	controlFieldFollowUp = 0x02
)

// Wire-format errors.
var (
	ErrShortMessage    = errors.New("gptp: message too short")
	ErrBadMessageType  = errors.New("gptp: unexpected message type")
	ErrBadVersion      = errors.New("gptp: unsupported PTP version")
	ErrBadLengthField  = errors.New("gptp: messageLength mismatch")
	ErrTimestampRange  = errors.New("gptp: timestamp out of 48-bit seconds range")
	ErrCorrectionRange = errors.New("gptp: correction field out of range")
)

// PortIdentity is the 10-byte source port identity.
type PortIdentity struct {
	ClockID [8]byte
	Port    uint16
}

// String formats like "0011223344556677-1".
func (p PortIdentity) String() string {
	return fmt.Sprintf("%02x%02x%02x%02x%02x%02x%02x%02x-%d",
		p.ClockID[0], p.ClockID[1], p.ClockID[2], p.ClockID[3],
		p.ClockID[4], p.ClockID[5], p.ClockID[6], p.ClockID[7], p.Port)
}

// WireTimestamp is the PTP 10-byte timestamp: 48-bit seconds + 32-bit ns.
type WireTimestamp struct {
	Seconds     uint64 // 48 bits
	Nanoseconds uint32
}

// NS converts to nanoseconds on the simulation timescale. float64 carries
// nanosecond resolution exactly up to ~2^52 ns (≈52 days); beyond that the
// conversion rounds — irrelevant for the simulator's epochs but callers
// bridging to wall-clock PTP epochs should work on WireTimestamp directly.
func (t WireTimestamp) NS() float64 {
	return float64(t.Seconds)*1e9 + float64(t.Nanoseconds)
}

// WireTimestampFromNS converts nanoseconds into the wire representation,
// truncating sub-nanosecond fractions (they belong in the correction
// field).
func WireTimestampFromNS(ns float64) (WireTimestamp, error) {
	if ns < 0 || ns >= float64(uint64(1)<<48)*1e9 {
		return WireTimestamp{}, ErrTimestampRange
	}
	sec := uint64(ns / 1e9)
	rem := ns - float64(sec)*1e9
	n := uint32(rem)
	if n >= 1e9 { // float rounding at the boundary
		sec++
		n = 0
	}
	return WireTimestamp{Seconds: sec, Nanoseconds: n}, nil
}

// WireHeader is the 34-byte PTP common header.
type WireHeader struct {
	MessageType    uint8
	Domain         uint8
	Flags          uint16
	CorrectionNS   float64 // carries sub-ns resolution (scaled by 2^16)
	SourceIdentity PortIdentity
	SequenceID     uint16
	Control        uint8
	LogInterval    int8
}

func putTimestamp(b []byte, t WireTimestamp) {
	b[0] = byte(t.Seconds >> 40)
	b[1] = byte(t.Seconds >> 32)
	binary.BigEndian.PutUint32(b[2:6], uint32(t.Seconds))
	binary.BigEndian.PutUint32(b[6:10], t.Nanoseconds)
}

func getTimestamp(b []byte) WireTimestamp {
	return WireTimestamp{
		Seconds:     uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(binary.BigEndian.Uint32(b[2:6])),
		Nanoseconds: binary.BigEndian.Uint32(b[6:10]),
	}
}

func putPortIdentity(b []byte, p PortIdentity) {
	copy(b[:8], p.ClockID[:])
	binary.BigEndian.PutUint16(b[8:10], p.Port)
}

func getPortIdentity(b []byte) PortIdentity {
	var p PortIdentity
	copy(p.ClockID[:], b[:8])
	p.Port = binary.BigEndian.Uint16(b[8:10])
	return p
}

// marshalHeader writes the common header for a message with the given body
// length.
func marshalHeader(h WireHeader, bodyLen int) ([]byte, error) {
	corr := h.CorrectionNS * 65536
	if math.Abs(corr) >= math.MaxInt64 {
		return nil, ErrCorrectionRange
	}
	buf := make([]byte, headerLen+bodyLen)
	buf[0] = gptpMajorSdoID<<4 | (h.MessageType & 0x0F)
	buf[1] = currentPTPVersion
	binary.BigEndian.PutUint16(buf[2:4], uint16(headerLen+bodyLen))
	buf[4] = h.Domain
	// buf[5]: minorSdoId, zero for gPTP.
	binary.BigEndian.PutUint16(buf[6:8], h.Flags)
	binary.BigEndian.PutUint64(buf[8:16], uint64(int64(corr)))
	// buf[16:20]: messageTypeSpecific, zero.
	putPortIdentity(buf[20:30], h.SourceIdentity)
	binary.BigEndian.PutUint16(buf[30:32], h.SequenceID)
	buf[32] = h.Control
	buf[33] = byte(h.LogInterval)
	return buf, nil
}

// unmarshalHeader parses and validates the common header.
func unmarshalHeader(b []byte) (WireHeader, int, error) {
	if len(b) < headerLen {
		return WireHeader{}, 0, ErrShortMessage
	}
	if b[1]&0x0F != currentPTPVersion {
		return WireHeader{}, 0, fmt.Errorf("%w: versionPTP %d", ErrBadVersion, b[1]&0x0F)
	}
	msgLen := int(binary.BigEndian.Uint16(b[2:4]))
	if msgLen < headerLen || msgLen > len(b) {
		return WireHeader{}, 0, fmt.Errorf("%w: field %d, buffer %d", ErrBadLengthField, msgLen, len(b))
	}
	h := WireHeader{
		MessageType:    b[0] & 0x0F,
		Domain:         b[4],
		Flags:          binary.BigEndian.Uint16(b[6:8]),
		CorrectionNS:   float64(int64(binary.BigEndian.Uint64(b[8:16]))) / 65536,
		SourceIdentity: getPortIdentity(b[20:30]),
		SequenceID:     binary.BigEndian.Uint16(b[30:32]),
		Control:        b[32],
		LogInterval:    int8(b[33]),
	}
	return h, msgLen, nil
}

// MarshalSync encodes a two-step Sync event message.
func MarshalSync(domain uint8, seq uint16, source PortIdentity) ([]byte, error) {
	buf, err := marshalHeader(WireHeader{
		MessageType:    WireTypeSync,
		Domain:         domain,
		Flags:          twoStepFlag | ptpTimescaleFlag,
		SourceIdentity: source,
		SequenceID:     seq,
		Control:        controlFieldSync,
		LogInterval:    -3, // 125 ms
	}, syncBodyLen)
	if err != nil {
		return nil, err
	}
	// originTimestamp is zero in two-step operation.
	return buf, nil
}

// UnmarshalSync decodes a Sync message.
func UnmarshalSync(b []byte) (domain uint8, seq uint16, source PortIdentity, err error) {
	h, msgLen, err := unmarshalHeader(b)
	if err != nil {
		return 0, 0, PortIdentity{}, err
	}
	if h.MessageType != WireTypeSync {
		return 0, 0, PortIdentity{}, ErrBadMessageType
	}
	if msgLen < headerLen+syncBodyLen {
		return 0, 0, PortIdentity{}, ErrShortMessage
	}
	return h.Domain, h.SequenceID, h.SourceIdentity, nil
}

// WireFollowUp is the decoded form of a Follow_Up message.
type WireFollowUp struct {
	Domain        uint8
	SequenceID    uint16
	Source        PortIdentity
	PreciseOrigin WireTimestamp
	CorrectionNS  float64
	// CumulativeScaledRateOffset is (rateRatio − 1)·2^41, from the
	// 802.1AS Follow_Up information TLV.
	CumulativeScaledRateOffset int32
}

// RateRatio reconstructs the cumulative rate ratio.
func (f WireFollowUp) RateRatio() float64 {
	return 1 + float64(f.CumulativeScaledRateOffset)/math.Exp2(41)
}

// followUpTLVLen is the 802.1AS Follow_Up information TLV (organization
// extension): type(2) + length(2) + orgId(3) + orgSubType(3) +
// csro(4) + gmTimeBaseIndicator(2) + lastGmPhaseChange(12) +
// scaledLastGmFreqChange(4).
const followUpTLVLen = 2 + 2 + 3 + 3 + 4 + 2 + 12 + 4

// MarshalFollowUp encodes a Follow_Up with the 802.1AS information TLV.
func MarshalFollowUp(f WireFollowUp) ([]byte, error) {
	buf, err := marshalHeader(WireHeader{
		MessageType:    WireTypeFollowUp,
		Domain:         f.Domain,
		Flags:          ptpTimescaleFlag,
		CorrectionNS:   f.CorrectionNS,
		SourceIdentity: f.Source,
		SequenceID:     f.SequenceID,
		Control:        controlFieldFollowUp,
		LogInterval:    -3,
	}, followUpBodyLen+followUpTLVLen)
	if err != nil {
		return nil, err
	}
	putTimestamp(buf[headerLen:], f.PreciseOrigin)
	tlv := buf[headerLen+followUpBodyLen:]
	binary.BigEndian.PutUint16(tlv[0:2], 0x0003) // ORGANIZATION_EXTENSION
	binary.BigEndian.PutUint16(tlv[2:4], followUpTLVLen-4)
	copy(tlv[4:7], []byte{0x00, 0x80, 0xC2}) // IEEE 802.1 OUI
	copy(tlv[7:10], []byte{0x00, 0x00, 0x01})
	binary.BigEndian.PutUint32(tlv[10:14], uint32(f.CumulativeScaledRateOffset))
	// gmTimeBaseIndicator, lastGmPhaseChange, scaledLastGmFreqChange: zero.
	return buf, nil
}

// UnmarshalFollowUp decodes a Follow_Up message, including the 802.1AS
// information TLV when present.
func UnmarshalFollowUp(b []byte) (WireFollowUp, error) {
	h, msgLen, err := unmarshalHeader(b)
	if err != nil {
		return WireFollowUp{}, err
	}
	if h.MessageType != WireTypeFollowUp {
		return WireFollowUp{}, ErrBadMessageType
	}
	if msgLen < headerLen+followUpBodyLen {
		return WireFollowUp{}, ErrShortMessage
	}
	f := WireFollowUp{
		Domain:        h.Domain,
		SequenceID:    h.SequenceID,
		Source:        h.SourceIdentity,
		PreciseOrigin: getTimestamp(b[headerLen : headerLen+timestampLen]),
		CorrectionNS:  h.CorrectionNS,
	}
	rest := b[headerLen+followUpBodyLen : msgLen]
	for len(rest) >= 4 {
		tlvType := binary.BigEndian.Uint16(rest[0:2])
		tlvLen := int(binary.BigEndian.Uint16(rest[2:4]))
		if len(rest) < 4+tlvLen {
			break
		}
		if tlvType == 0x0003 && tlvLen >= 10 &&
			rest[4] == 0x00 && rest[5] == 0x80 && rest[6] == 0xC2 {
			f.CumulativeScaledRateOffset = int32(binary.BigEndian.Uint32(rest[10:14]))
		}
		rest = rest[4+tlvLen:]
	}
	return f, nil
}

// WireAnnounce is the decoded form of an Announce message.
type WireAnnounce struct {
	Domain       uint8
	SequenceID   uint16
	Source       PortIdentity
	Priority1    uint8
	ClockClass   uint8
	Accuracy     uint8
	Variance     uint16
	Priority2    uint8
	GMIdentity   [8]byte
	StepsRemoved uint16
	TimeSource   uint8
	// Path is the 802.1AS path trace TLV (type 0x0008): the clock
	// identities the announce traversed.
	Path [][8]byte
}

// MarshalAnnounce encodes an Announce message with the 802.1AS path trace
// TLV when a path is present.
func MarshalAnnounce(a WireAnnounce) ([]byte, error) {
	tlvLen := 0
	if len(a.Path) > 0 {
		tlvLen = 4 + 8*len(a.Path)
	}
	buf, err := marshalHeader(WireHeader{
		MessageType:    WireTypeAnnounce,
		Domain:         a.Domain,
		Flags:          ptpTimescaleFlag,
		SourceIdentity: a.Source,
		SequenceID:     a.SequenceID,
		Control:        controlFieldOther,
		LogInterval:    0, // 1 s
	}, announceBodyLen+tlvLen)
	if err != nil {
		return nil, err
	}
	if tlvLen > 0 {
		tlv := buf[headerLen+announceBodyLen:]
		binary.BigEndian.PutUint16(tlv[0:2], 0x0008) // PATH_TRACE
		binary.BigEndian.PutUint16(tlv[2:4], uint16(8*len(a.Path)))
		for i, id := range a.Path {
			copy(tlv[4+8*i:4+8*i+8], id[:])
		}
	}
	body := buf[headerLen:]
	// originTimestamp (10B, zero) + currentUtcOffset (2B, zero) + reserved.
	body[13] = a.Priority1
	body[14] = a.ClockClass
	body[15] = a.Accuracy
	binary.BigEndian.PutUint16(body[16:18], a.Variance)
	body[18] = a.Priority2
	copy(body[19:27], a.GMIdentity[:])
	binary.BigEndian.PutUint16(body[27:29], a.StepsRemoved)
	body[29] = a.TimeSource
	return buf, nil
}

// UnmarshalAnnounce decodes an Announce message.
func UnmarshalAnnounce(b []byte) (WireAnnounce, error) {
	h, msgLen, err := unmarshalHeader(b)
	if err != nil {
		return WireAnnounce{}, err
	}
	if h.MessageType != WireTypeAnnounce {
		return WireAnnounce{}, ErrBadMessageType
	}
	if msgLen < headerLen+announceBodyLen {
		return WireAnnounce{}, ErrShortMessage
	}
	body := b[headerLen:]
	a := WireAnnounce{
		Domain:       h.Domain,
		SequenceID:   h.SequenceID,
		Source:       h.SourceIdentity,
		Priority1:    body[13],
		ClockClass:   body[14],
		Accuracy:     body[15],
		Variance:     binary.BigEndian.Uint16(body[16:18]),
		Priority2:    body[18],
		StepsRemoved: binary.BigEndian.Uint16(body[27:29]),
		TimeSource:   body[29],
	}
	copy(a.GMIdentity[:], body[19:27])
	rest := b[headerLen+announceBodyLen : msgLen]
	for len(rest) >= 4 {
		tlvType := binary.BigEndian.Uint16(rest[0:2])
		tlvLen := int(binary.BigEndian.Uint16(rest[2:4]))
		if len(rest) < 4+tlvLen {
			break
		}
		if tlvType == 0x0008 {
			for off := 0; off+8 <= tlvLen; off += 8 {
				var id [8]byte
				copy(id[:], rest[4+off:4+off+8])
				a.Path = append(a.Path, id)
			}
		}
		rest = rest[4+tlvLen:]
	}
	return a, nil
}

// MarshalPdelayReq encodes a Pdelay_Req event message.
func MarshalPdelayReq(domain uint8, seq uint16, source PortIdentity) ([]byte, error) {
	return marshalHeader(WireHeader{
		MessageType:    WireTypePdelayReq,
		Domain:         domain,
		Flags:          ptpTimescaleFlag,
		SourceIdentity: source,
		SequenceID:     seq,
		Control:        controlFieldOther,
		LogInterval:    0,
	}, pdelayReqBodyLen)
}

// WirePdelayResp is the decoded form of Pdelay_Resp /
// Pdelay_Resp_Follow_Up (they share a layout: a timestamp plus the
// requesting port identity).
type WirePdelayResp struct {
	Domain     uint8
	SequenceID uint16
	Source     PortIdentity
	Timestamp  WireTimestamp // requestReceipt (resp) or responseOrigin (fu)
	Requesting PortIdentity
	FollowUp   bool
}

// MarshalPdelayResp encodes Pdelay_Resp or Pdelay_Resp_Follow_Up.
func MarshalPdelayResp(r WirePdelayResp) ([]byte, error) {
	msgType := uint8(WireTypePdelayResp)
	flags := uint16(twoStepFlag | ptpTimescaleFlag)
	if r.FollowUp {
		msgType = WireTypePdelayRespFollowUp
		flags = ptpTimescaleFlag
	}
	buf, err := marshalHeader(WireHeader{
		MessageType:    msgType,
		Domain:         r.Domain,
		Flags:          flags,
		SourceIdentity: r.Source,
		SequenceID:     r.SequenceID,
		Control:        controlFieldOther,
		LogInterval:    logMessageIntervalNA,
	}, pdelayRespBodyLen)
	if err != nil {
		return nil, err
	}
	putTimestamp(buf[headerLen:], r.Timestamp)
	putPortIdentity(buf[headerLen+timestampLen:], r.Requesting)
	return buf, nil
}

// UnmarshalPdelayResp decodes Pdelay_Resp or Pdelay_Resp_Follow_Up.
func UnmarshalPdelayResp(b []byte) (WirePdelayResp, error) {
	h, msgLen, err := unmarshalHeader(b)
	if err != nil {
		return WirePdelayResp{}, err
	}
	if h.MessageType != WireTypePdelayResp && h.MessageType != WireTypePdelayRespFollowUp {
		return WirePdelayResp{}, ErrBadMessageType
	}
	if msgLen < headerLen+pdelayRespBodyLen {
		return WirePdelayResp{}, ErrShortMessage
	}
	return WirePdelayResp{
		Domain:     h.Domain,
		SequenceID: h.SequenceID,
		Source:     h.SourceIdentity,
		Timestamp:  getTimestamp(b[headerLen : headerLen+timestampLen]),
		Requesting: getPortIdentity(b[headerLen+timestampLen : headerLen+timestampLen+portIdentityLen]),
		FollowUp:   h.MessageType == WireTypePdelayRespFollowUp,
	}, nil
}

// MessageTypeOf peeks the wire message type without full decoding.
func MessageTypeOf(b []byte) (uint8, error) {
	if len(b) < 1 {
		return 0, ErrShortMessage
	}
	return b[0] & 0x0F, nil
}
