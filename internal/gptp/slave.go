package gptp

import "fmt"

// OffsetSample is one grandmaster-offset measurement delivered to the
// extended ptp4l instance, which stores it into FTSHMEM.
type OffsetSample struct {
	Domain int
	// OffsetNS = local receive timestamp − (preciseOrigin + correction +
	// meanLinkDelay): positive means the local PHC is ahead of the GM.
	OffsetNS float64
	// PreciseOrigin is the GM transmit timestamp from the FollowUp.
	PreciseOrigin float64
	// Correction is the accumulated path correction.
	Correction float64
	// RxTS is the local hardware receive timestamp of the Sync.
	RxTS float64
	// RateRatio is the cumulative GM-to-local rate ratio.
	RateRatio  float64
	GMIdentity string
	Seq        uint16
}

// Slave computes grandmaster offsets for one domain on an end-station NIC.
// It matches two-step Sync/FollowUp pairs and subtracts the NIC port's
// measured mean link delay.
type Slave struct {
	domain    int
	linkDelay *LinkDelay
	onOffset  func(OffsetSample)

	pending map[uint16]float64 // seq → rxTS
	lastSeq uint16
	matched uint64
}

// NewSlave creates a slave for the given domain. linkDelay is the NIC
// port's pdelay endpoint; onOffset receives each completed measurement.
func NewSlave(domain int, linkDelay *LinkDelay, onOffset func(OffsetSample)) *Slave {
	return &Slave{
		domain:    domain,
		linkDelay: linkDelay,
		onOffset:  onOffset,
		pending:   make(map[uint16]float64),
	}
}

// Domain reports the slave's gPTP domain.
func (s *Slave) Domain() int { return s.domain }

// Matched reports how many Sync/FollowUp pairs completed.
func (s *Slave) Matched() uint64 { return s.matched }

// HandleSync records the receive timestamp of a Sync for this domain. In
// one-step operation the measurement completes immediately.
func (s *Slave) HandleSync(m *Sync, rxTS float64) {
	if m.Domain != s.domain {
		return
	}
	if m.OneStep {
		delay := s.linkDelay.DelayOrDefault(0)
		s.matched++
		if s.onOffset != nil {
			s.onOffset(OffsetSample{
				Domain:        s.domain,
				OffsetNS:      rxTS - m.Origin - m.Correction - delay,
				PreciseOrigin: m.Origin,
				Correction:    m.Correction,
				RxTS:          rxTS,
				RateRatio:     m.RateRatio,
				GMIdentity:    m.GMIdentity,
				Seq:           m.Seq,
			})
		}
		return
	}
	s.pending[m.Seq] = rxTS
	s.lastSeq = m.Seq
	for seq := range s.pending {
		if seqDelta(s.lastSeq, seq) > 4 {
			delete(s.pending, seq)
		}
	}
}

// HandleFollowUp completes a measurement if the matching Sync was seen.
func (s *Slave) HandleFollowUp(m *FollowUp) {
	if m.Domain != s.domain {
		return
	}
	rxTS, ok := s.pending[m.Seq]
	if !ok {
		return // Sync lost (deadline miss upstream) or arrived out of order
	}
	delete(s.pending, m.Seq)
	delay := s.linkDelay.DelayOrDefault(0)
	offset := rxTS - m.PreciseOrigin - m.Correction - delay
	s.matched++
	if s.onOffset != nil {
		s.onOffset(OffsetSample{
			Domain:        s.domain,
			OffsetNS:      offset,
			PreciseOrigin: m.PreciseOrigin,
			Correction:    m.Correction,
			RxTS:          rxTS,
			RateRatio:     m.RateRatio,
			GMIdentity:    m.GMIdentity,
			Seq:           m.Seq,
		})
	}
}

// String describes the slave for diagnostics.
func (s *Slave) String() string {
	return fmt.Sprintf("slave(domain=%d matched=%d)", s.domain, s.matched)
}
