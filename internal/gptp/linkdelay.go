package gptp

import (
	"math"
	"time"

	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// TxFunc transmits a frame out of one specific port and returns the local
// hardware transmit timestamp.
type TxFunc func(f *netsim.Frame) (txTS float64, ok bool)

// LinkDelayConfig configures a peer-delay endpoint.
type LinkDelayConfig struct {
	// Interval between PdelayReq transmissions. 802.1AS default: 1 s.
	Interval time.Duration
	// Alpha is the EWMA smoothing factor for the mean link delay
	// (weight of the newest sample). Default 0.1.
	Alpha float64
}

func (c LinkDelayConfig) withDefaults() LinkDelayConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Alpha == 0 {
		c.Alpha = 0.1
	}
	return c
}

// LinkDelay runs the 802.1AS peer-delay mechanism on one end of a link:
// it is both initiator (measuring the mean link delay and neighbor rate
// ratio toward its peer) and responder (answering the peer's requests).
// Time-aware bridges run one per port; end stations run one on their NIC.
type LinkDelay struct {
	name  string
	sched *sim.Scheduler
	cfg   LinkDelayConfig
	tx    TxFunc
	rng   sim.RNG

	ticker *sim.Ticker

	// Initiator state.
	seq      uint16
	reqT1    float64
	respT2   float64
	respT4   float64
	havePair bool

	meanDelayNS float64
	haveDelay   bool
	samples     uint64

	// Neighbor rate ratio from consecutive (t3, t4) pairs.
	prevT3, prevT4 float64
	havePrev       bool
	rateRatio      float64
}

// NewLinkDelay creates a peer-delay endpoint. name identifies the endpoint
// in Requester fields so responses can be matched on multi-endpoint tests.
func NewLinkDelay(name string, sched *sim.Scheduler, rng sim.RNG, tx TxFunc, cfg LinkDelayConfig) *LinkDelay {
	return &LinkDelay{
		name:      name,
		sched:     sched,
		cfg:       cfg.withDefaults(),
		tx:        tx,
		rng:       rng,
		rateRatio: 1,
	}
}

// Start begins periodic measurement, with a random phase so endpoints do not
// burst in lockstep.
func (ld *LinkDelay) Start() error {
	phase := time.Duration(0)
	if ld.rng != nil {
		phase = time.Duration(ld.rng.Int63n(int64(ld.cfg.Interval)))
	}
	t, err := ld.sched.Every(ld.sched.Now().Add(phase), ld.cfg.Interval, ld.sendReq)
	if err != nil {
		return err
	}
	ld.ticker = t
	return nil
}

// Stop halts periodic measurement.
func (ld *LinkDelay) Stop() {
	if ld.ticker != nil {
		ld.ticker.Stop()
		ld.ticker = nil
	}
}

func (ld *LinkDelay) sendReq() {
	ld.seq++
	f := newFrame(netsim.Address("nic/"+ld.name), &PdelayReq{Seq: ld.seq, Requester: ld.name})
	ts, ok := ld.tx(f)
	if !ok {
		return
	}
	ld.reqT1 = ts
	ld.havePair = false
}

// HandleFrame processes a received gPTP pdelay message (with its local
// receive timestamp) and reports whether it consumed the payload.
func (ld *LinkDelay) HandleFrame(payload any, rxTS float64) bool {
	switch m := payload.(type) {
	case *PdelayReq:
		ld.respond(m, rxTS)
		return true
	case *PdelayResp:
		if m.Requester != ld.name || m.Seq != ld.seq {
			return true // stale or foreign; consumed but ignored
		}
		ld.respT2 = m.T2
		ld.respT4 = rxTS
		ld.havePair = true
		return true
	case *PdelayRespFollowUp:
		if m.Requester != ld.name || m.Seq != ld.seq || !ld.havePair {
			return true
		}
		ld.complete(m.T3)
		return true
	default:
		return false
	}
}

// respond implements the responder side: send PdelayResp carrying t2, then
// PdelayRespFollowUp carrying t3 (the response transmit timestamp).
func (ld *LinkDelay) respond(req *PdelayReq, t2 float64) {
	resp := newFrame(netsim.Address("nic/"+ld.name), &PdelayResp{Seq: req.Seq, Requester: req.Requester, T2: t2})
	t3, ok := ld.tx(resp)
	if !ok {
		return
	}
	fu := newFrame(netsim.Address("nic/"+ld.name), &PdelayRespFollowUp{Seq: req.Seq, Requester: req.Requester, T3: t3})
	ld.tx(fu)
}

// complete computes one link-delay sample from (t1, t2, t3, t4):
// D = ((t4−t1) − (t3−t2)·r) / 2, with r the neighbor rate ratio.
func (ld *LinkDelay) complete(t3 float64) {
	t1, t2, t4 := ld.reqT1, ld.respT2, ld.respT4
	ld.havePair = false

	if ld.havePrev {
		dt3 := t3 - ld.prevT3
		dt4 := t4 - ld.prevT4
		if dt4 > 0 {
			r := dt3 / dt4
			// Clamp to a sane ±200 ppm window against timestamp noise.
			if r > 0.9998 && r < 1.0002 {
				ld.rateRatio = 0.9*ld.rateRatio + 0.1*r
			}
		}
	}
	ld.prevT3, ld.prevT4 = t3, t4
	ld.havePrev = true

	d := ((t4 - t1) - (t3-t2)*ld.rateRatio) / 2
	if d < 0 {
		d = 0
	}
	ld.samples++
	if !ld.haveDelay {
		ld.meanDelayNS = d
		ld.haveDelay = true
		return
	}
	a := ld.cfg.Alpha
	ld.meanDelayNS = (1-a)*ld.meanDelayNS + a*d
}

// MeanDelayNS reports the smoothed mean link delay and whether at least one
// measurement completed.
func (ld *LinkDelay) MeanDelayNS() (float64, bool) { return ld.meanDelayNS, ld.haveDelay }

// NeighborRateRatio reports the smoothed peer-to-local rate ratio.
func (ld *LinkDelay) NeighborRateRatio() float64 { return ld.rateRatio }

// Samples reports how many delay measurements completed.
func (ld *LinkDelay) Samples() uint64 { return ld.samples }

// DelayOrDefault returns the measured delay, or def when no measurement has
// completed yet (start-up).
func (ld *LinkDelay) DelayOrDefault(def float64) float64 {
	if ld.haveDelay && !math.IsNaN(ld.meanDelayNS) {
		return ld.meanDelayNS
	}
	return def
}
