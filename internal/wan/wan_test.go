package wan

import (
	"math"
	"testing"
	"time"

	"gptpfta/internal/sim"
)

// fakeFabric models N sites as linear clocks raw(t) = t·rate + offset,
// with per-site liveness and per-pair path state under test control.
type fakeFabric struct {
	sched   *sim.Scheduler
	rates   []float64
	offsets []float64
	alive   []bool
	cut     map[[2]int]bool
	asym    map[[2]int]float64
}

func newFakeFabric(sched *sim.Scheduler, n int) *fakeFabric {
	f := &fakeFabric{
		sched: sched,
		rates: make([]float64, n), offsets: make([]float64, n),
		alive: make([]bool, n),
		cut:   map[[2]int]bool{}, asym: map[[2]int]float64{},
	}
	for i := range f.rates {
		f.rates[i] = 1.0
		f.alive[i] = true
	}
	return f
}

func (f *fakeFabric) NumSites() int { return len(f.rates) }

func (f *fakeFabric) SiteTime(site int) (float64, bool) {
	if !f.alive[site] {
		return 0, false
	}
	return float64(f.sched.Now())*f.rates[site] + f.offsets[site], true
}

func pairKey(i, j int) [2]int {
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

func (f *fakeFabric) PathUp(i, j int) bool { return !f.cut[pairKey(i, j)] }

func (f *fakeFabric) PathAsymNS(i, j int) float64 {
	if v, ok := f.asym[[2]int{i, j}]; ok {
		return v
	}
	return -f.asym[[2]int{j, i}]
}

func testConfig() Config {
	return Config{
		Enabled:  true,
		F:        1,
		Interval: 500 * time.Millisecond,
		NoiseNS:  10, // near-noiseless for tight convergence checks
	}
}

func runCoordinator(t *testing.T, cfg Config, n int, seed int64) (*Coordinator, *fakeFabric, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler()
	fab := newFakeFabric(sched, n)
	c := NewCoordinator(cfg, fab, sim.NewStreams(seed), nil)
	if err := c.Start(sched); err != nil {
		t.Fatal(err)
	}
	return c, fab, sched
}

func lastSpread(t *testing.T, c *Coordinator) float64 {
	t.Helper()
	s := c.Samples()
	if len(s) == 0 {
		t.Fatal("no samples recorded")
	}
	last := s[len(s)-1]
	lo, hi, ok := aliveSpread(last.AdjNS, last.Alive)
	if !ok {
		t.Fatal("no alive site in last sample")
	}
	return hi - lo
}

// TestTolerable pins the site-failure budget formula min(f, ⌊(N−1)/2⌋).
func TestTolerable(t *testing.T) {
	cases := []struct{ n, f, want int }{
		{4, 1, 1}, {5, 1, 1}, {5, 2, 2}, {4, 2, 1}, {3, 1, 1},
		{2, 1, 0}, {7, 3, 3}, {6, 3, 2}, {4, 0, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := Tolerable(c.n, c.f); got != c.want {
			t.Errorf("Tolerable(%d, %d) = %d, want %d", c.n, c.f, got, c.want)
		}
	}
}

// TestCoordinatorConverges checks that sites starting with offsets far
// apart pull together onto a common timescale within a few ticks (the
// initial disagreement exceeds the servo's first-step threshold, so the
// very first locked sample steps the virtual clocks together).
func TestCoordinatorConverges(t *testing.T) {
	c, fab, sched := runCoordinator(t, testConfig(), 4, 1)
	fab.offsets = []float64{0, 400_000, -250_000, 120_000}
	if err := sched.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := lastSpread(t, c); got > 5_000 {
		t.Fatalf("site spread after 20s = %.0fns, want ≤ 5µs", got)
	}
	for i, s := range c.Samples()[len(c.Samples())-1].Holdover {
		if s {
			t.Fatalf("site %d in holdover with all sites healthy", i)
		}
	}
}

// TestCoordinatorMasksAsymmetricPeer checks the FTA trims a peer whose WAN
// path carries a large asymmetry: the honest sites must stay converged.
func TestCoordinatorMasksAsymmetricPeer(t *testing.T) {
	c, fab, sched := runCoordinator(t, testConfig(), 4, 2)
	// Every observer sees site 3 shifted by 200µs (and site 3 sees all its
	// peers shifted the other way) — a classic asymmetric-delay adversary.
	for i := 0; i < 3; i++ {
		fab.asym[[2]int{i, 3}] = 200_000
	}
	if err := sched.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	last := c.Samples()[len(c.Samples())-1]
	honest := []float64{last.AdjNS[0], last.AdjNS[1], last.AdjNS[2]}
	lo, hi := honest[0], honest[0]
	for _, v := range honest[1:] {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi-lo > 5_000 {
		t.Fatalf("honest-site spread under asym adversary = %.0fns, want ≤ 5µs", hi-lo)
	}
}

// TestCoordinatorHoldoverLadder drives the full degradation ladder: quorum
// loss beyond the budget → freeze after HoldoverWindow; heal → thaw after
// the hysteresis, with the tier converged again afterwards.
func TestCoordinatorHoldoverLadder(t *testing.T) {
	cfg := testConfig()
	cfg.HoldoverWindow = 2 * time.Second
	c, fab, sched := runCoordinator(t, cfg, 4, 3)
	if err := sched.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Two failed sites exceed Tolerable(4, 1) = 1: quorum is lost.
	fab.alive[2], fab.alive[3] = false, false
	if err := sched.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	last := c.Samples()[len(c.Samples())-1]
	for i := 0; i < 2; i++ {
		if last.Quorum[i] {
			t.Fatalf("site %d still reports quorum with 2/4 sites failed", i)
		}
		if !last.Holdover[i] {
			t.Fatalf("site %d not in holdover %v after quorum loss", i, cfg.HoldoverWindow)
		}
	}

	// Heal; survivors must thaw and the ensemble must re-converge.
	fab.alive[2], fab.alive[3] = true, true
	if err := sched.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	last = c.Samples()[len(c.Samples())-1]
	for i := range last.Holdover {
		if last.Holdover[i] {
			t.Fatalf("site %d still frozen 30s after heal", i)
		}
	}
	if got := lastSpread(t, c); got > 10_000 {
		t.Fatalf("site spread 30s after heal = %.0fns, want ≤ 10µs", got)
	}
}

// TestCoordinatorRidesThroughTolerableFailure: one failed site of four is
// within the budget — no holdover, survivors stay converged.
func TestCoordinatorRidesThroughTolerableFailure(t *testing.T) {
	c, fab, sched := runCoordinator(t, testConfig(), 4, 4)
	if err := sched.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	fab.alive[3] = false
	if err := sched.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	last := c.Samples()[len(c.Samples())-1]
	for i := 0; i < 3; i++ {
		if !last.Quorum[i] {
			t.Fatalf("site %d lost quorum on a tolerable single-site failure", i)
		}
		if last.Holdover[i] {
			t.Fatalf("site %d entered holdover on a tolerable single-site failure", i)
		}
	}
	if got := lastSpread(t, c); got > 5_000 {
		t.Fatalf("survivor spread = %.0fns, want ≤ 5µs", got)
	}
}

// TestCoordinatorSnapshotRoundTrip pins that a snapshot/restore cycle
// rewinds the coordinator bit-identically (servo state, corrections,
// cached readings, recorded samples).
func TestCoordinatorSnapshotRoundTrip(t *testing.T) {
	cfg := testConfig()
	sched := sim.NewScheduler()
	fab := newFakeFabric(sched, 4)
	fab.offsets = []float64{0, 50_000, -30_000, 10_000}
	streams := sim.NewStreams(7)
	c := NewCoordinator(cfg, fab, streams, nil)
	if err := c.Start(sched); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	wantSamples := len(c.Samples())
	wantCorr := append([]float64(nil), c.corrNS...)

	if err := sched.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Restore(snap)
	if got := len(c.Samples()); got != wantSamples {
		t.Fatalf("restored sample count = %d, want %d", got, wantSamples)
	}
	for i := range wantCorr {
		if c.corrNS[i] != wantCorr[i] {
			t.Fatalf("restored corrNS[%d] = %v, want %v", i, c.corrNS[i], wantCorr[i])
		}
	}
}

// driftRecorder captures SetWanDelay calls.
type driftRecorder struct {
	extra, asym time.Duration
	calls       int
}

func (r *driftRecorder) SetWanDelay(e, a time.Duration) { r.extra, r.asym, r.calls = e, a, r.calls+1 }

// TestDriftBoundedAndDeterministic: the walk stays inside its reflective
// bounds, honours the non-negative extra contract, and replays identically
// for the same seed.
func TestDriftBoundedAndDeterministic(t *testing.T) {
	run := func(seed int64) []time.Duration {
		sched := sim.NewScheduler()
		rec := &driftRecorder{}
		d := NewDrift(DriftConfig{Enabled: true, Interval: time.Second, StepNS: 5_000,
			MaxExtraNS: 10_000, MaxAsymNS: 8_000},
			[]NamedLink{{Name: "sw1-sw5", Link: rec}}, sim.NewStreams(seed))
		if err := d.Start(sched); err != nil {
			t.Fatal(err)
		}
		var trace []time.Duration
		for i := 0; i < 200; i++ {
			if err := sched.RunFor(time.Second); err != nil {
				t.Fatal(err)
			}
			if rec.extra < 0 || rec.extra > 10_000 {
				t.Fatalf("drift extra %v outside [0, 10µs]", rec.extra)
			}
			if rec.asym < -8_000 || rec.asym > 8_000 {
				t.Fatalf("drift asym %v outside ±8µs", rec.asym)
			}
			trace = append(trace, rec.extra, rec.asym)
		}
		return trace
	}
	a, b := run(11), run(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drift walk diverged at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}
