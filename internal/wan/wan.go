// Package wan implements the wide-area tier of the paper's architecture:
// a second, site-level fault-tolerant-average layer in the spirit of
// G-SINC (arXiv 2207.06116) joining N full LAN topologies over WAN links
// with asymmetric, slowly drifting delay.
//
// Each site exposes one aggregate clock (the site's FTA-disciplined sync
// time, read at its gateway node). A site-level coordinator ticks on the
// control scheduler: every Interval each site takes pairwise offset
// readings against every reachable peer site — corrupted by the WAN path's
// two-way-exchange asymmetry error and measurement noise — and runs the
// same trimmed FTA over them (fta.AggregateWithInfo) that the LAN tier
// runs over domain offsets. The result disciplines a per-site virtual
// correction through a PI servo (servo.PI), so all sites converge onto a
// common wide-area timescale without any site acting as a master.
//
// Graceful degradation ladder (holdover escalation):
//
//  1. A failed or partitioned peer's last reading stays usable for
//     StaleAfter, masking one-tick blips.
//  2. When fewer than NumSites − min(F, ⌊(N−1)/2⌋) readings remain fresh
//     (quorum loss: the surviving set can no longer both out-vote the
//     Byzantine budget and form a strict majority), the site stops feeding
//     its servo — coasting on the last good frequency.
//  3. Quorum loss persisting for HoldoverWindow freezes the servo
//     (servo.Freeze): explicit cross-site holdover, counted in obs.
//  4. After the fault heals, quorum returns; the servo stays frozen until
//     the aggregate offset has been below ReacquireThresholdNS for
//     ReacquireStableCount consecutive ticks (hysteresis), then thaws with
//     a MaxSlewPPB slew bound (servo.Thaw) — re-stabilization is a bounded
//     ramp, never a step storm.
//
// Determinism: the coordinator runs on the control scheduler, so at every
// shard count its ticks fire at barrier instants in the same order; its
// noise draws come from dedicated per-site streams and are consumed every
// tick for every peer slot regardless of reachability, so fault injection
// never shifts the random sequence. Disabled (Config.Enabled == false) the
// tier consumes nothing and the committed golden digests are unaffected.
package wan

import (
	"fmt"
	"math"
	"time"

	"gptpfta/internal/fta"
	"gptpfta/internal/obs"
	"gptpfta/internal/servo"
	"gptpfta/internal/sim"
)

// Fabric is the coordinator's view of the multi-site system, implemented
// by internal/core over the gateway chain.
type Fabric interface {
	// NumSites reports the number of sites.
	NumSites() int
	// SiteTime reads site i's aggregate sync time in nanoseconds at the
	// current control instant; ok is false while the site is failed.
	SiteTime(site int) (ns float64, ok bool)
	// PathUp reports whether the WAN path between sites i and j is intact
	// (no severed chain link, no failed intermediate gateway).
	PathUp(i, j int) bool
	// PathAsymNS is the signed asymmetry error a two-way exchange from
	// observer site i to peer site j inherits, in nanoseconds: half the
	// difference of the directional path delays.
	PathAsymNS(i, j int) float64
}

// Config parameterises the site-level tier. All fields are value types so
// it can live inside core.Config without breaking prefix hashing.
type Config struct {
	// Enabled switches the tier on. Disabled, nothing is scheduled and no
	// randomness is consumed.
	Enabled bool
	// F is the site-level Byzantine fault budget (sites that may lie).
	F int
	// Interval is the site-level resynchronisation period.
	Interval time.Duration
	// ValidityThresholdNS is the site-level validity-flag threshold passed
	// to the FTA (readings further than this from the peer median are
	// flagged; FlagMonitor policy, as in the LAN tier).
	ValidityThresholdNS float64
	// NoiseNS is the 1-sigma measurement noise per pairwise reading.
	NoiseNS float64
	// StaleAfter keeps a peer's last reading usable after contact is lost.
	StaleAfter time.Duration
	// HoldoverWindow is how long quorum loss must persist before the servo
	// freezes.
	HoldoverWindow time.Duration
	// ReacquireThresholdNS and ReacquireStableCount are the thaw
	// hysteresis: the aggregate must stay below the threshold for that
	// many consecutive ticks before holdover ends.
	ReacquireThresholdNS float64
	ReacquireStableCount int
	// MaxSlewPPB bounds the post-thaw frequency slew.
	MaxSlewPPB float64
	// Drift parameterises the WAN delay drift process (see DriftConfig).
	Drift DriftConfig
}

// WithDefaults fills zero fields with the paper-scale defaults.
func (c Config) WithDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.ValidityThresholdNS == 0 {
		c.ValidityThresholdNS = 50_000
	}
	if c.NoiseNS == 0 {
		c.NoiseNS = 2_000
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 3 * c.Interval
	}
	if c.HoldoverWindow <= 0 {
		c.HoldoverWindow = 3 * time.Second
	}
	if c.ReacquireThresholdNS == 0 {
		c.ReacquireThresholdNS = 10_000
	}
	if c.ReacquireStableCount == 0 {
		c.ReacquireStableCount = 4
	}
	if c.MaxSlewPPB == 0 {
		c.MaxSlewPPB = 2_000
	}
	c.Drift = c.Drift.withDefaults()
	return c
}

// Tolerable is the site-failure budget min(f, ⌊(N−1)/2⌋): the largest
// number of simultaneously failed sites the tier rides through without
// quorum loss (mirrors bounds.Tolerable at the site level).
func Tolerable(numSites, f int) int {
	t := f
	if m := (numSites - 1) / 2; t > m {
		t = m
	}
	if t < 0 {
		t = 0
	}
	return t
}

// SiteSample is one coordinator tick's observable state, recorded for the
// wansites experiment's verdict computation.
type SiteSample struct {
	// AtSec is the control-scheduler instant in seconds.
	AtSec float64
	// AdjNS is each site's adjusted (raw + correction) time; NaN while the
	// site is failed.
	AdjNS []float64
	// Alive reports which sites answered SiteTime this tick.
	Alive []bool
	// Quorum reports which sites saw a full site-level quorum.
	Quorum []bool
	// Holdover reports which sites were in frozen holdover.
	Holdover []bool
}

// lastReading caches the most recent pairwise offset so short outages are
// bridged by the staleness window.
type lastReading struct {
	offsetNS float64
	atNS     float64
	valid    bool
}

// Coordinator runs the site-level FTA. It is armed on the control
// scheduler by Start and snapshot/restored for warm-start forks.
type Coordinator struct {
	cfg    Config
	fab    Fabric
	nSites int
	// tolerable is min(F, ⌊(N−1)/2⌋); quorum needs nSites−tolerable fresh.
	tolerable int

	rngs   []sim.RNG
	servos []*servo.PI

	corrNS  []float64 // per-site virtual correction applied on top of SiteTime
	freqPPB []float64 // per-site applied frequency adjustment
	last    [][]lastReading
	// tickNoise is the current tick's pre-drawn noise matrix
	// [observer][peer]; drawing it up-front for every slot keeps the
	// streams position-stable under failures.
	tickNoise  [][]float64
	noQuorumAt []float64 // control instant quorum was lost, or NaN
	stable     []int     // consecutive in-threshold ticks while frozen
	lastTickNS float64
	samples    []SiteSample

	sched  *sim.Scheduler
	ticker *sim.Ticker

	obsTicks      *obs.Counter
	obsQuorumLost *obs.Counter
	obsHoldEnter  *obs.Counter
	obsHoldExit   *obs.Counter
	obsSteps      *obs.Counter
	obsSpread     *obs.Gauge
}

// NewCoordinator builds the site tier over fab. streams provides the
// per-site noise streams ("wansync/site<i>"); reg, when non-nil, receives
// the tier's counters.
func NewCoordinator(cfg Config, fab Fabric, streams *sim.Streams, reg *obs.Registry) *Coordinator {
	cfg = cfg.WithDefaults()
	n := fab.NumSites()
	c := &Coordinator{
		cfg:        cfg,
		fab:        fab,
		nSites:     n,
		tolerable:  Tolerable(n, cfg.F),
		corrNS:     make([]float64, n),
		freqPPB:    make([]float64, n),
		last:       make([][]lastReading, n),
		noQuorumAt: make([]float64, n),
		stable:     make([]int, n),
	}
	for i := 0; i < n; i++ {
		c.rngs = append(c.rngs, streams.Stream(fmt.Sprintf("wansync/site%d", i)))
		c.servos = append(c.servos, servo.NewPI(servo.Config{SyncInterval: cfg.Interval}))
		c.last[i] = make([]lastReading, n)
		c.noQuorumAt[i] = math.NaN()
	}
	if reg != nil {
		c.obsTicks = reg.Counter("wan_ticks")
		c.obsQuorumLost = reg.Counter("wan_quorum_lost_ticks")
		c.obsHoldEnter = reg.Counter("wan_holdover_entered")
		c.obsHoldExit = reg.Counter("wan_holdover_exited")
		c.obsSteps = reg.Counter("wan_servo_steps")
		c.obsSpread = reg.Gauge("wan_site_spread_ns")
	}
	return c
}

// Tolerable reports the coordinator's site-failure budget.
func (c *Coordinator) Tolerable() int { return c.tolerable }

// Samples returns the recorded per-tick site states (aliased, not copied).
func (c *Coordinator) Samples() []SiteSample { return c.samples }

// Start arms the coordinator's ticker on the control scheduler. Ticks run
// at barrier instants, so every shard count observes the same sequence.
func (c *Coordinator) Start(sched *sim.Scheduler) error {
	c.sched = sched
	c.lastTickNS = float64(sched.Now())
	t, err := sched.Every(sched.Now().Add(c.cfg.Interval), c.cfg.Interval, c.tick)
	if err != nil {
		return err
	}
	c.ticker = t
	return nil
}

// Stop cancels the ticker.
func (c *Coordinator) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
}

func (c *Coordinator) tick() {
	now := float64(c.sched.Now())
	dtSec := (now - c.lastTickNS) / 1e9
	c.lastTickNS = now
	if c.obsTicks != nil {
		c.obsTicks.Inc()
	}

	// Integrate the applied frequency corrections (ppb ≙ ns/s).
	for i := range c.corrNS {
		c.corrNS[i] += c.freqPPB[i] * dtSec
	}

	adj := make([]float64, c.nSites)
	alive := make([]bool, c.nSites)
	for i := 0; i < c.nSites; i++ {
		raw, ok := c.fab.SiteTime(i)
		alive[i] = ok
		if ok {
			adj[i] = raw + c.corrNS[i]
		} else {
			adj[i] = math.NaN()
		}
	}

	// Noise draws are position-stable: one normal per observer per peer
	// slot every tick, used or not, so failures never shift the streams.
	noise := make([][]float64, c.nSites)
	for i := 0; i < c.nSites; i++ {
		noise[i] = make([]float64, c.nSites)
		for j := 0; j < c.nSites; j++ {
			if j == i {
				continue
			}
			noise[i][j] = c.rngs[i].NormFloat64() * c.cfg.NoiseNS
		}
	}
	c.tickNoise = noise

	sample := SiteSample{
		AtSec:    now / 1e9,
		AdjNS:    adj,
		Alive:    alive,
		Quorum:   make([]bool, c.nSites),
		Holdover: make([]bool, c.nSites),
	}

	for i := 0; i < c.nSites; i++ {
		if !alive[i] {
			// A failed site neither measures nor adjusts; its cached peer
			// readings age out naturally.
			sample.Holdover[i] = c.servos[i].Frozen()
			continue
		}
		readings := c.siteReadings(i, now, adj, alive)
		fresh := 0
		for _, r := range readings {
			if r.Fresh {
				fresh++
			}
		}
		quorum := fresh >= c.nSites-c.tolerable
		sample.Quorum[i] = quorum

		agg, _, _, err := fta.AggregateWithInfo(readings, c.cfg.F, c.cfg.ValidityThresholdNS, fta.FlagMonitor)
		c.step(i, now, agg, err == nil, quorum)
		sample.Holdover[i] = c.servos[i].Frozen()
	}

	c.samples = append(c.samples, sample)
	if c.obsSpread != nil {
		if lo, hi, ok := aliveSpread(adj, alive); ok {
			c.obsSpread.Set(hi - lo)
		}
	}
}

// siteReadings builds observer i's site-offset vector: its own clock as
// reference (offset 0) plus one reading per reachable peer, corrupted by
// the path asymmetry error and measurement noise; unreachable peers fall
// back to their cached reading inside the staleness window.
func (c *Coordinator) siteReadings(i int, now float64, adj []float64, alive []bool) []fta.Reading {
	readings := make([]fta.Reading, 0, c.nSites)
	readings = append(readings, fta.Reading{Domain: i, OffsetNS: 0, At: now, Fresh: true})
	for j := 0; j < c.nSites; j++ {
		if j == i {
			continue
		}
		if alive[j] && c.fab.PathUp(i, j) {
			off := adj[i] - adj[j] + c.fab.PathAsymNS(i, j) + c.noiseAt(i, j)
			c.last[i][j] = lastReading{offsetNS: off, atNS: now, valid: true}
			readings = append(readings, fta.Reading{Domain: j, OffsetNS: off, At: now, Fresh: true})
			continue
		}
		lr := c.last[i][j]
		fresh := lr.valid && now-lr.atNS <= float64(c.cfg.StaleAfter)
		readings = append(readings, fta.Reading{Domain: j, OffsetNS: lr.offsetNS, At: lr.atNS, Fresh: fresh})
	}
	return readings
}

// noiseAt replays the tick's pre-drawn noise value for (observer, peer).
func (c *Coordinator) noiseAt(i, j int) float64 {
	if c.tickNoise == nil {
		return 0
	}
	return c.tickNoise[i][j]
}

// step runs site i's servo ladder for one tick.
func (c *Coordinator) step(i int, now, agg float64, aggOK, quorum bool) {
	s := c.servos[i]
	switch {
	case quorum && aggOK:
		c.noQuorumAt[i] = math.NaN()
		if s.Frozen() {
			// Hysteresis: thaw only after the offset has settled.
			if math.Abs(agg) < c.cfg.ReacquireThresholdNS {
				c.stable[i]++
			} else {
				c.stable[i] = 0
			}
			if c.stable[i] >= c.cfg.ReacquireStableCount {
				s.Thaw(c.cfg.MaxSlewPPB)
				c.stable[i] = 0
				if c.obsHoldExit != nil {
					c.obsHoldExit.Inc()
				}
			} else {
				return // still frozen: coast
			}
		}
		adjPPB, state := s.Sample(agg, now)
		switch state {
		case servo.StateJump:
			// Step the virtual clock by −offset, then apply the frequency.
			c.corrNS[i] -= agg
			c.freqPPB[i] = adjPPB
			if c.obsSteps != nil {
				c.obsSteps.Inc()
			}
		case servo.StateLocked:
			c.freqPPB[i] = adjPPB
		case servo.StateHoldover:
			// Unreachable: thaw above precedes sampling.
		default: // StateUnlocked: keep free-running
		}
	default:
		// Quorum lost (or the FTA starved entirely): coast on the last
		// frequency; freeze explicitly once the loss outlives the window.
		if c.obsQuorumLost != nil {
			c.obsQuorumLost.Inc()
		}
		if math.IsNaN(c.noQuorumAt[i]) {
			c.noQuorumAt[i] = now
		}
		if !s.Frozen() && now-c.noQuorumAt[i] >= float64(c.cfg.HoldoverWindow) {
			s.Freeze()
			c.stable[i] = 0
			if c.obsHoldEnter != nil {
				c.obsHoldEnter.Inc()
			}
		}
	}
}

func aliveSpread(adj []float64, alive []bool) (lo, hi float64, ok bool) {
	for i, a := range alive {
		if !a || math.IsNaN(adj[i]) {
			continue
		}
		if !ok {
			lo, hi, ok = adj[i], adj[i], true
			continue
		}
		if adj[i] < lo {
			lo = adj[i]
		}
		if adj[i] > hi {
			hi = adj[i]
		}
	}
	return lo, hi, ok
}
