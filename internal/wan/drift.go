package wan

import (
	"time"

	"gptpfta/internal/sim"
)

// DriftConfig parameterises the WAN delay drift process: a slow,
// reflected random walk on each wide-area link's (extra, asym) delay pair,
// modelling path migrations and queueing-level changes on a metro link.
// All fields are value types (prefix-hash safe).
type DriftConfig struct {
	// Enabled switches the process on.
	Enabled bool
	// Interval is the walk's step period.
	Interval time.Duration
	// StepNS is the 1-sigma per-step increment for both axes.
	StepNS float64
	// MaxExtraNS bounds the symmetric extra delay in [0, MaxExtraNS] by
	// reflection; the lower bound matches SetWanDelay's non-negative
	// contract, keeping PDES lookahead shifts one-sided.
	MaxExtraNS float64
	// MaxAsymNS bounds the directional asymmetry in [−MaxAsymNS,
	// +MaxAsymNS] by reflection.
	MaxAsymNS float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.StepNS == 0 {
		c.StepNS = 200
	}
	if c.MaxExtraNS == 0 {
		c.MaxExtraNS = 20_000
	}
	if c.MaxAsymNS == 0 {
		c.MaxAsymNS = 10_000
	}
	return c
}

// DriftLink is the slice of netsim.Link the drift process drives.
type DriftLink interface {
	SetWanDelay(extra, asym time.Duration)
}

// NamedLink pairs a WAN link with its topology name (the stream label).
type NamedLink struct {
	Name string
	Link DriftLink
}

// Drift runs the reflected random walk over a set of WAN links. Like the
// coordinator it ticks on the control scheduler, so delay updates land at
// PDES barrier instants — exactly when the fabric recomputes its lookahead
// from Link.MinDelay — and every shard count sees identical walks.
type Drift struct {
	cfg   DriftConfig
	links []NamedLink
	rngs  []sim.RNG

	extraNS []float64
	asymNS  []float64

	sched  *sim.Scheduler
	ticker *sim.Ticker
}

// NewDrift builds the process; streams provides one dedicated walk stream
// per link ("wandrift/<name>").
func NewDrift(cfg DriftConfig, links []NamedLink, streams *sim.Streams) *Drift {
	cfg = cfg.withDefaults()
	d := &Drift{
		cfg:     cfg,
		links:   links,
		extraNS: make([]float64, len(links)),
		asymNS:  make([]float64, len(links)),
	}
	for _, l := range links {
		d.rngs = append(d.rngs, streams.Stream("wandrift/"+l.Name))
	}
	return d
}

// Start arms the walk on the control scheduler.
func (d *Drift) Start(sched *sim.Scheduler) error {
	d.sched = sched
	t, err := sched.Every(sched.Now().Add(d.cfg.Interval), d.cfg.Interval, d.tick)
	if err != nil {
		return err
	}
	d.ticker = t
	return nil
}

// Stop cancels the ticker.
func (d *Drift) Stop() {
	if d.ticker != nil {
		d.ticker.Stop()
		d.ticker = nil
	}
}

func (d *Drift) tick() {
	for i := range d.links {
		rng := d.rngs[i]
		d.extraNS[i] = reflect1(d.extraNS[i]+rng.NormFloat64()*d.cfg.StepNS, 0, d.cfg.MaxExtraNS)
		d.asymNS[i] = reflect1(d.asymNS[i]+rng.NormFloat64()*d.cfg.StepNS, -d.cfg.MaxAsymNS, d.cfg.MaxAsymNS)
		d.links[i].Link.SetWanDelay(time.Duration(d.extraNS[i]), time.Duration(d.asymNS[i]))
	}
}

// reflect1 folds v back into [lo, hi] by reflection at the bounds.
func reflect1(v, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	for v < lo || v > hi {
		if v < lo {
			v = 2*lo - v
		}
		if v > hi {
			v = 2*hi - v
		}
	}
	return v
}

// driftSnapshot captures the walk state for warm-start forks; the RNG
// stream positions and the links' own wan fields are restored separately.
type driftSnapshot struct {
	extraNS []float64
	asymNS  []float64
}

// Snapshot implements sim.Snapshotter.
func (d *Drift) Snapshot() any {
	sn := &driftSnapshot{
		extraNS: append([]float64(nil), d.extraNS...),
		asymNS:  append([]float64(nil), d.asymNS...),
	}
	return sn
}

// Restore implements sim.Snapshotter.
func (d *Drift) Restore(snap any) {
	sn := snap.(*driftSnapshot)
	copy(d.extraNS, sn.extraNS)
	copy(d.asymNS, sn.asymNS)
}
