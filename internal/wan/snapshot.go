package wan

// coordinatorSnapshot captures the coordinator's mutable state for
// warm-start forks. Servo states nest; the per-site RNG streams are
// restored by sim.Streams.
type coordinatorSnapshot struct {
	corrNS     []float64
	freqPPB    []float64
	last       [][]lastReading
	noQuorumAt []float64
	stable     []int
	lastTickNS float64
	samples    []SiteSample
	servos     []any
}

// Snapshot implements sim.Snapshotter.
func (c *Coordinator) Snapshot() any {
	sn := &coordinatorSnapshot{
		corrNS:     append([]float64(nil), c.corrNS...),
		freqPPB:    append([]float64(nil), c.freqPPB...),
		noQuorumAt: append([]float64(nil), c.noQuorumAt...),
		stable:     append([]int(nil), c.stable...),
		lastTickNS: c.lastTickNS,
		samples:    append([]SiteSample(nil), c.samples...),
	}
	for i := range c.last {
		sn.last = append(sn.last, append([]lastReading(nil), c.last[i]...))
	}
	for _, s := range c.servos {
		sn.servos = append(sn.servos, s.Snapshot())
	}
	return sn
}

// Restore implements sim.Snapshotter.
func (c *Coordinator) Restore(snap any) {
	sn := snap.(*coordinatorSnapshot)
	copy(c.corrNS, sn.corrNS)
	copy(c.freqPPB, sn.freqPPB)
	copy(c.noQuorumAt, sn.noQuorumAt)
	copy(c.stable, sn.stable)
	c.lastTickNS = sn.lastTickNS
	c.samples = append(c.samples[:0], sn.samples...)
	for i := range sn.last {
		copy(c.last[i], sn.last[i])
	}
	for i, s := range sn.servos {
		c.servos[i].Restore(s)
	}
}
