package hypervisor

import (
	"math"
	"testing"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/netsim"
	"gptpfta/internal/phc2sys"
	"gptpfta/internal/ptp4l"
	"gptpfta/internal/sim"
)

// nodeFixture builds a single node with two clock-synchronization VMs whose
// NICs are wired back-to-back (enough substrate for the dependent-clock
// logic; full-network behaviour is covered in the core package tests).
type nodeFixture struct {
	sched   *sim.Scheduler
	streams *sim.Streams
	node    *Node
	events  []Event
}

func newNodeFixture(t *testing.T) *nodeFixture {
	t.Helper()
	fx := &nodeFixture{sched: sim.NewScheduler(), streams: sim.NewStreams(33)}
	tscOsc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: 2500, WanderPPBPerSqrtSec: 1},
		fx.streams.Stream("tscosc"), fx.sched.Now())
	tsc := clock.NewTSC(fx.sched, tscOsc, fx.streams.Stream("tscrd"), 30)
	fx.node = NewNode("dev1", fx.sched, tsc, 2, MonitorConfig{}, func(e Event) {
		fx.events = append(fx.events, e)
	})

	var peers []*netsim.NIC
	for i := 0; i < 2; i++ {
		name := []string{"c11", "c12"}[i]
		osc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: float64(1000 * (i + 1)), WanderPPBPerSqrtSec: 1},
			fx.streams.Stream("osc/"+name), fx.sched.Now())
		phc := clock.NewPHC(fx.sched, osc, fx.streams.Stream("ts/"+name),
			clock.PHCConfig{TimestampJitterNS: 8, InitialOffsetNS: float64(100 * i)})
		nic := netsim.NewNIC(name, fx.sched, phc)
		peers = append(peers, nic)
		stack, err := ptp4l.New(nic, fx.sched, fx.streams.Stream("stack/"+name), ptp4l.Config{
			Name:    name,
			Domains: []int{0},
			GMDomain: func() int {
				if i == 0 {
					return 0
				}
				return -1
			}(),
		}, nil)
		if err != nil {
			t.Fatalf("stack: %v", err)
		}
		p2s := phc2sys.New(fx.sched, phc, tsc, fx.node.STSHMEM(), nil, phc2sys.Config{Slot: i})
		if err := fx.node.AddVM(&CSVM{Name: name, Slot: i, Kernel: "v4.19.1", Stack: stack, Phc2sys: p2s}); err != nil {
			t.Fatalf("add vm: %v", err)
		}
	}
	// Wire the two NICs together so transmissions have somewhere to go.
	if _, err := netsim.Connect(fx.sched, fx.streams.Stream("link"),
		netsim.LinkConfig{Propagation: 500 * time.Nanosecond, JitterNS: 10},
		peers[0].Port(), peers[1].Port()); err != nil {
		t.Fatalf("connect: %v", err)
	}
	return fx
}

func (fx *nodeFixture) run(t *testing.T, d time.Duration) {
	t.Helper()
	if err := fx.sched.RunUntil(fx.sched.Now().Add(d)); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func (fx *nodeFixture) countEvents(kind string) int {
	n := 0
	for _, e := range fx.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

func TestNodeServesSyncTime(t *testing.T) {
	fx := newNodeFixture(t)
	if err := fx.node.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	fx.run(t, 5*time.Second)
	v, ok := fx.node.SyncTimeNow()
	if !ok {
		t.Fatal("no CLOCK_SYNCTIME after 5 s")
	}
	// The active slot is VM0's, so CLOCK_SYNCTIME must track VM0's PHC.
	diff := math.Abs(v - fx.node.VM(0).Stack.NIC().PHC().Now())
	if diff > 1000 {
		t.Fatalf("CLOCK_SYNCTIME deviates %v ns from the active VM's PHC", diff)
	}
	if fx.node.HealthyVMs() != 2 {
		t.Fatalf("healthy VMs = %d, want 2", fx.node.HealthyVMs())
	}
}

func TestMonitorFailsOverOnFailSilentVM(t *testing.T) {
	fx := newNodeFixture(t)
	if err := fx.node.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	fx.run(t, 5*time.Second)
	if err := fx.node.FailVM(0); err != nil {
		t.Fatalf("fail: %v", err)
	}
	// Detection within monitor period + staleness window (≤ ~250 ms); give
	// one extra period of slack.
	fx.run(t, 500*time.Millisecond)
	if fx.node.STSHMEM().Active() != 1 {
		t.Fatalf("active slot = %d after failure, want takeover to slot 1", fx.node.STSHMEM().Active())
	}
	if fx.node.Takeovers() != 1 {
		t.Fatalf("takeovers = %d, want 1", fx.node.Takeovers())
	}
	if fx.countEvents(EventTakeover) != 1 || fx.countEvents(EventVMFailed) != 1 {
		t.Fatalf("events: %+v", fx.events)
	}
	// CLOCK_SYNCTIME now tracks VM1's PHC.
	v, ok := fx.node.SyncTimeNow()
	if !ok {
		t.Fatal("no CLOCK_SYNCTIME after takeover")
	}
	if diff := math.Abs(v - fx.node.VM(1).Stack.NIC().PHC().Now()); diff > 1000 {
		t.Fatalf("CLOCK_SYNCTIME deviates %v ns from the redundant VM's PHC", diff)
	}
	if fx.node.HealthyVMs() != 1 {
		t.Fatalf("healthy VMs = %d, want 1", fx.node.HealthyVMs())
	}
}

func TestRebootRestoresRedundancy(t *testing.T) {
	fx := newNodeFixture(t)
	if err := fx.node.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	fx.run(t, 5*time.Second)
	if err := fx.node.FailVM(0); err != nil {
		t.Fatalf("fail: %v", err)
	}
	fx.run(t, 2*time.Second)
	if err := fx.node.RebootVM(0); err != nil {
		t.Fatalf("reboot: %v", err)
	}
	fx.run(t, 2*time.Second)
	if fx.node.HealthyVMs() != 2 {
		t.Fatalf("healthy VMs = %d after reboot, want 2", fx.node.HealthyVMs())
	}
	if fx.countEvents(EventVMRebooted) != 1 {
		t.Fatal("missing reboot event")
	}
	// The monitor does not fail back automatically; slot 1 stays active.
	if fx.node.STSHMEM().Active() != 1 {
		t.Fatalf("active slot = %d, want 1 (no automatic failback)", fx.node.STSHMEM().Active())
	}
}

func TestFailBothVMsKeepsLastActive(t *testing.T) {
	fx := newNodeFixture(t)
	if err := fx.node.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	fx.run(t, 5*time.Second)
	if err := fx.node.FailVM(0); err != nil {
		t.Fatal(err)
	}
	fx.run(t, time.Second)
	if err := fx.node.FailVM(1); err != nil {
		t.Fatal(err)
	}
	fx.run(t, time.Second)
	if fx.node.HealthyVMs() != 0 {
		t.Fatalf("healthy VMs = %d, want 0", fx.node.HealthyVMs())
	}
	// No healthy candidate: the stale slot keeps serving (degraded).
	if _, ok := fx.node.SyncTimeNow(); !ok {
		t.Fatal("CLOCK_SYNCTIME unreadable; stale parameters should still serve")
	}
}

func TestFailVMValidation(t *testing.T) {
	fx := newNodeFixture(t)
	if err := fx.node.FailVM(7); err == nil {
		t.Fatal("out-of-range VM accepted")
	}
	if err := fx.node.RebootVM(0); err == nil {
		t.Fatal("reboot of a running VM accepted")
	}
	if err := fx.node.FailVM(0); err != nil {
		t.Fatal(err)
	}
	if err := fx.node.FailVM(0); err == nil {
		t.Fatal("double failure accepted")
	}
}

func TestAddVMValidation(t *testing.T) {
	fx := newNodeFixture(t)
	if err := fx.node.AddVM(&CSVM{Name: "x", Slot: 5}); err == nil {
		t.Fatal("out-of-order slot accepted")
	}
}

// TestMonitorVoting exercises the 2f+1 fail-consistent variant: with three
// slots, a slot whose published parameters diverge is voted out.
func TestMonitorVoting(t *testing.T) {
	sched := sim.NewScheduler()
	streams := sim.NewStreams(44)
	tscOsc := clock.NewOscillator(clock.OscillatorConfig{}, streams.Stream("t"), 0)
	tsc := clock.NewTSC(sched, tscOsc, streams.Stream("tr"), 10)
	node := NewNode("dev1", sched, tsc, 3, MonitorConfig{VoteThresholdNS: 5000}, nil)

	var services []*phc2sys.Service
	for i := 0; i < 3; i++ {
		name := []string{"c11", "c12", "c13"}[i]
		osc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: 100}, streams.Stream("o"+name), 0)
		phc := clock.NewPHC(sched, osc, streams.Stream("p"+name), clock.PHCConfig{})
		nic := netsim.NewNIC(name, sched, phc)
		stack, err := ptp4l.New(nic, sched, streams.Stream("s"+name), ptp4l.Config{Name: name, Domains: []int{0}, GMDomain: -1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		svc := phc2sys.New(sched, phc, tsc, node.STSHMEM(), nil, phc2sys.Config{Slot: i})
		services = append(services, svc)
		if err := node.AddVM(&CSVM{Name: name, Slot: i, Stack: stack, Phc2sys: svc}); err != nil {
			t.Fatal(err)
		}
	}
	_ = services
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// Corrupt VM0's clock (fail-consistent fault: wrong but fresh params).
	node.VM(0).Stack.NIC().PHC().Step(1e6)
	if err := sched.RunUntil(sched.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if node.STSHMEM().Active() == 0 {
		t.Fatal("monitor kept a voted-out slot active")
	}
}

// TestMonitorNoFlapping: a healthy active slot must never be demoted; the
// monitor only fails over on genuine staleness.
func TestMonitorNoFlapping(t *testing.T) {
	fx := newNodeFixture(t)
	if err := fx.node.Start(); err != nil {
		t.Fatal(err)
	}
	fx.run(t, 60*time.Second)
	if fx.node.Takeovers() != 0 {
		t.Fatalf("takeovers = %d on a healthy node (monitor flapping)", fx.node.Takeovers())
	}
	if fx.node.STSHMEM().Active() != 0 {
		t.Fatal("active slot moved without a failure")
	}
}

// TestFailoverChain: active fails → takeover to redundant; redundant fails
// after the first reboots → takeover back.
func TestFailoverChain(t *testing.T) {
	fx := newNodeFixture(t)
	if err := fx.node.Start(); err != nil {
		t.Fatal(err)
	}
	fx.run(t, 5*time.Second)
	if err := fx.node.FailVM(0); err != nil {
		t.Fatal(err)
	}
	fx.run(t, time.Second)
	if fx.node.STSHMEM().Active() != 1 {
		t.Fatal("first takeover missing")
	}
	if err := fx.node.RebootVM(0); err != nil {
		t.Fatal(err)
	}
	fx.run(t, 5*time.Second)
	if err := fx.node.FailVM(1); err != nil {
		t.Fatal(err)
	}
	fx.run(t, time.Second)
	if fx.node.STSHMEM().Active() != 0 {
		t.Fatal("failback takeover missing after the redundant VM failed")
	}
	if fx.node.Takeovers() != 2 {
		t.Fatalf("takeovers = %d, want 2", fx.node.Takeovers())
	}
}

// TestMonitorVotingRequiresQuorum: with only two healthy slots the vote is
// skipped (no median majority), so a divergent clock is NOT voted out —
// the fail-consistent hypothesis genuinely needs 2f+1.
func TestMonitorVotingRequiresQuorum(t *testing.T) {
	sched := sim.NewScheduler()
	streams := sim.NewStreams(45)
	tscOsc := clock.NewOscillator(clock.OscillatorConfig{}, streams.Stream("t"), 0)
	tsc := clock.NewTSC(sched, tscOsc, streams.Stream("tr"), 10)
	node := NewNode("dev1", sched, tsc, 2, MonitorConfig{VoteThresholdNS: 5000}, nil)
	for i := 0; i < 2; i++ {
		name := []string{"c11", "c12"}[i]
		osc := clock.NewOscillator(clock.OscillatorConfig{}, streams.Stream("o"+name), 0)
		phc := clock.NewPHC(sched, osc, streams.Stream("p"+name), clock.PHCConfig{})
		nic := netsim.NewNIC(name, sched, phc)
		stack, err := ptp4l.New(nic, sched, streams.Stream("s"+name),
			ptp4l.Config{Name: name, Domains: []int{0}, GMDomain: -1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		svc := phc2sys.New(sched, phc, tsc, node.STSHMEM(), nil, phc2sys.Config{Slot: i})
		if err := node.AddVM(&CSVM{Name: name, Slot: i, Stack: stack, Phc2sys: svc}); err != nil {
			t.Fatal(err)
		}
	}
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	node.VM(0).Stack.NIC().PHC().Step(1e6) // wrong but fresh
	if err := sched.RunUntil(sched.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if node.STSHMEM().Active() != 0 {
		t.Fatal("vote fired without a 3-slot quorum")
	}
}
