// Package hypervisor models the ACRN-based node of the paper's testbed: a
// hypervisor hosting n = f+1 redundant clock-synchronization VMs, the
// STSHMEM virtual PCI device shared with co-located VMs, and the
// hypervisor-native monitor task (period 125 ms) that detects a failed
// active clock-synchronization VM and injects an interrupt into a redundant
// VM to take over maintaining CLOCK_SYNCTIME.
package hypervisor

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/obs"
	"gptpfta/internal/phc2sys"
	"gptpfta/internal/ptp4l"
	"gptpfta/internal/shmem"
	"gptpfta/internal/sim"
)

// Event kinds emitted by the node.
const (
	EventVMFailed   = "vm_failed"
	EventVMRebooted = "vm_rebooted"
	EventTakeover   = "takeover"
	EventVoteFlag   = "monitor_vote_flag"
)

// Event is a node-level occurrence for the experiment log.
type Event struct {
	Node   string
	VM     string
	Kind   string
	Detail string
}

// CSVM is one clock-synchronization VM: its extended ptp4l stack, its
// phc2sys service, and its kernel version (the OS-diversity dimension of
// the paper's cyber-resilience experiment).
type CSVM struct {
	Name    string
	Slot    int
	Kernel  string
	Stack   *ptp4l.Stack
	Phc2sys *phc2sys.Service
	failed  bool
}

// Failed reports whether the VM is currently fail-silent.
func (vm *CSVM) Failed() bool { return vm.failed }

// TargetName implements the attack package's Target interface.
func (vm *CSVM) TargetName() string { return vm.Name }

// KernelVersion implements the attack package's Target interface.
func (vm *CSVM) KernelVersion() string { return vm.Kernel }

// InstallMaliciousPTP4L implements the attack package's Target interface:
// the compromised VM's grandmaster starts distributing falsified
// preciseOriginTimestamps.
func (vm *CSVM) InstallMaliciousPTP4L(offsetNS float64) { vm.Stack.Compromise(offsetNS) }

// MonitorConfig parameterises the hypervisor monitor task.
type MonitorConfig struct {
	// Period of the monitor task. The paper uses 125 ms.
	Period time.Duration
	// StaleAfter is the STSHMEM parameter age that marks a writer
	// fail-silent. Default 4 phc2sys intervals (125 ms).
	StaleAfter time.Duration
	// VoteThresholdNS enables consistency voting when at least three valid
	// slots exist (the 2f+1 fail-consistent variant of §II-A): a slot
	// whose CLOCK_SYNCTIME deviates more than this from the median of all
	// valid slots is treated as faulty. Zero disables voting.
	VoteThresholdNS float64
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Period <= 0 {
		c.Period = 125 * time.Millisecond
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 125 * time.Millisecond
	}
	return c
}

// Node is one edge computing device: platform counter, STSHMEM, the
// monitor, and the clock-synchronization VMs.
type Node struct {
	name  string
	sched *sim.Scheduler
	tsc   *clock.TSC
	st    *shmem.STSHMEM
	vms   []*CSVM
	mcfg  MonitorConfig

	monitor   *sim.Ticker
	onEvent   func(Event)
	takeovers uint64

	// failedAt records when each VM went fail-silent, so a subsequent
	// takeover can report the detection-to-failover latency.
	failedAt map[int]sim.Time

	// Observability handles (nil and inert unless Instrument was called).
	obsDetections *obs.Counter
	obsVoteFlags  *obs.Counter
	obsFailover   *obs.Histogram
}

// failoverBuckets spans the monitor's 125 ms period: from sub-period
// detections up to several periods when no healthy candidate exists.
var failoverBuckets = []float64{1e6, 1e7, 5e7, 1e8, 1.25e8, 2.5e8, 5e8, 1e9}

// Instrument registers the node's metrics with reg: monitor detections,
// consistency-vote flags, failover latency, and gauges over takeovers and
// healthy-VM count. Handles resolve once; nil registries stay inert.
func (n *Node) Instrument(reg *obs.Registry) {
	node := obs.L("node", n.name)
	n.obsDetections = reg.Counter("hypervisor_monitor_detections", node)
	n.obsVoteFlags = reg.Counter("hypervisor_vote_flags", node)
	n.obsFailover = reg.Histogram("hypervisor_failover_latency_ns", failoverBuckets, node)
	reg.GaugeFunc("hypervisor_takeovers", func() float64 { return float64(n.takeovers) }, node)
	reg.GaugeFunc("hypervisor_healthy_vms", func() float64 { return float64(n.HealthyVMs()) }, node)
}

// NewNode creates a node. The STSHMEM gets one slot per VM added later.
func NewNode(name string, sched *sim.Scheduler, tsc *clock.TSC, slots int, mcfg MonitorConfig, onEvent func(Event)) *Node {
	return &Node{
		name:    name,
		sched:   sched,
		tsc:     tsc,
		st:      shmem.NewSTSHMEM(slots),
		mcfg:    mcfg.withDefaults(),
		onEvent: onEvent,
	}
}

// Name reports the node name (e.g. "dev1").
func (n *Node) Name() string { return n.name }

// TSC returns the node's platform counter.
func (n *Node) TSC() *clock.TSC { return n.tsc }

// STSHMEM returns the node's synchronized-time shared memory.
func (n *Node) STSHMEM() *shmem.STSHMEM { return n.st }

// VMs returns the node's clock-synchronization VMs.
func (n *Node) VMs() []*CSVM { return n.vms }

// VM returns VM i.
func (n *Node) VM(i int) *CSVM { return n.vms[i] }

// Takeovers reports how many failovers the monitor performed.
func (n *Node) Takeovers() uint64 { return n.takeovers }

// AddVM registers a clock-synchronization VM with the node.
func (n *Node) AddVM(vm *CSVM) error {
	if vm.Slot != len(n.vms) {
		return fmt.Errorf("hypervisor: VM %s slot %d out of order", vm.Name, vm.Slot)
	}
	if vm.Slot >= n.st.NumSlots() {
		return fmt.Errorf("hypervisor: VM %s slot %d exceeds STSHMEM slots", vm.Name, vm.Slot)
	}
	n.vms = append(n.vms, vm)
	return nil
}

// Start boots the VMs and the monitor task.
func (n *Node) Start() error {
	for _, vm := range n.vms {
		if err := vm.Stack.Start(); err != nil {
			return fmt.Errorf("start %s stack: %w", vm.Name, err)
		}
		if err := vm.Phc2sys.Start(); err != nil {
			return fmt.Errorf("start %s phc2sys: %w", vm.Name, err)
		}
	}
	t, err := n.sched.Every(n.sched.Now().Add(n.mcfg.Period), n.mcfg.Period, n.monitorStep)
	if err != nil {
		return err
	}
	n.monitor = t
	return nil
}

// Stop halts the monitor (end of experiment).
func (n *Node) Stop() {
	if n.monitor != nil {
		n.monitor.Stop()
		n.monitor = nil
	}
}

// SyncTimeNow evaluates CLOCK_SYNCTIME from the active STSHMEM slot.
func (n *Node) SyncTimeNow() (float64, bool) {
	return n.st.SyncTimeAt(n.tsc.Now())
}

// FailVM makes VM i fail-silent: the stack and phc2sys stop without any
// cleanup, exactly like a shutdown -h now in the guest.
func (n *Node) FailVM(i int) error {
	if i < 0 || i >= len(n.vms) {
		return fmt.Errorf("hypervisor: no VM %d on %s", i, n.name)
	}
	vm := n.vms[i]
	if vm.failed {
		return fmt.Errorf("hypervisor: VM %s already failed", vm.Name)
	}
	vm.failed = true
	if n.failedAt == nil {
		n.failedAt = make(map[int]sim.Time)
	}
	n.failedAt[i] = n.sched.Now()
	vm.Stack.Fail()
	vm.Phc2sys.Stop()
	n.emit(vm.Name, EventVMFailed, "")
	return nil
}

// RebootVM restarts a failed VM.
func (n *Node) RebootVM(i int) error {
	if i < 0 || i >= len(n.vms) {
		return fmt.Errorf("hypervisor: no VM %d on %s", i, n.name)
	}
	vm := n.vms[i]
	if !vm.failed {
		return fmt.Errorf("hypervisor: VM %s not failed", vm.Name)
	}
	vm.failed = false
	delete(n.failedAt, i)
	if err := vm.Stack.Reboot(); err != nil {
		return err
	}
	vm.Phc2sys.Reset()
	if err := vm.Phc2sys.Start(); err != nil {
		return err
	}
	n.emit(vm.Name, EventVMRebooted, "")
	return nil
}

// monitorStep is the hypervisor-native monitor task: freshness detection
// of the active writer (fail-silent hypothesis, n = f+1) plus, when at
// least three valid slots exist and voting is enabled, a consistency vote
// (fail-consistent hypothesis, n = 2f+1).
func (n *Node) monitorStep() {
	active := n.st.Active()
	if n.slotHealthy(active) && !n.votedFaulty(active) {
		return
	}
	n.obsDetections.Inc()
	// Failover: promote the first healthy, non-outvoted candidate.
	for i := range n.vms {
		if i == active {
			continue
		}
		if n.slotHealthy(i) && !n.votedFaulty(i) {
			n.st.SetActive(i)
			n.takeovers++
			if t, ok := n.failedAt[active]; ok {
				n.obsFailover.Observe(float64(n.sched.Now().Sub(t)))
				delete(n.failedAt, active)
			}
			// Inject the takeover interrupt into the promoted VM.
			n.vms[i].Phc2sys.OnTakeover()
			n.emit(n.vms[i].Name, EventTakeover,
				fmt.Sprintf("replacing %s", n.vms[active].Name))
			return
		}
	}
	// No healthy candidate: keep the current slot (nothing better exists).
}

// slotHealthy reports whether a slot's parameters are valid and fresh.
func (n *Node) slotHealthy(i int) bool {
	p := n.st.Slot(i)
	if !p.Valid {
		return false
	}
	age := n.tsc.Now() - p.UpdatedTSC
	return age <= float64(n.mcfg.StaleAfter)
}

// votedFaulty runs the 2f+1 consistency vote when enabled: with at least
// three healthy slots, a slot deviating more than the threshold from the
// median CLOCK_SYNCTIME is faulty.
func (n *Node) votedFaulty(i int) bool {
	if n.mcfg.VoteThresholdNS <= 0 {
		return false
	}
	tsc := n.tsc.Now()
	times := make([]float64, 0, len(n.vms))
	var mine float64
	found := false
	for j := range n.vms {
		if !n.slotHealthy(j) {
			continue
		}
		v := n.st.Slot(j).SyncTimeAt(tsc)
		times = append(times, v)
		if j == i {
			mine = v
			found = true
		}
	}
	if !found || len(times) < 3 {
		return false
	}
	sort.Float64s(times)
	med := times[len(times)/2]
	if len(times)%2 == 0 {
		med = (times[len(times)/2-1] + times[len(times)/2]) / 2
	}
	if math.Abs(mine-med) > n.mcfg.VoteThresholdNS {
		n.obsVoteFlags.Inc()
		n.emit(n.vms[i].Name, EventVoteFlag, fmt.Sprintf("deviation %.0fns", mine-med))
		return true
	}
	return false
}

func (n *Node) emit(vm, kind, detail string) {
	if n.onEvent != nil {
		n.onEvent(Event{Node: n.name, VM: vm, Kind: kind, Detail: detail})
	}
}

// ErrNoHealthyVM is reported by health checks when every slot is stale.
var ErrNoHealthyVM = errors.New("hypervisor: no healthy clock-synchronization VM")

// HealthyVMs reports how many slots are currently healthy.
func (n *Node) HealthyVMs() int {
	count := 0
	for i := range n.vms {
		if n.slotHealthy(i) {
			count++
		}
	}
	return count
}

// nodeSnapshot captures a node for warm-start forks: the STSHMEM region,
// the monitor state, and every clock-synchronization VM (stack + phc2sys +
// failure flag).
type nodeSnapshot struct {
	st        any
	tsc       any
	monitor   *sim.Ticker
	takeovers uint64
	failedAt  map[int]sim.Time
	vmFailed  []bool
	stacks    []any
	phc2sys   []any
}

// Snapshot implements sim.Snapshotter.
func (n *Node) Snapshot() any {
	sn := &nodeSnapshot{
		st:        n.st.Snapshot(),
		tsc:       n.tsc.Snapshot(),
		monitor:   n.monitor,
		takeovers: n.takeovers,
		vmFailed:  make([]bool, len(n.vms)),
		stacks:    make([]any, len(n.vms)),
		phc2sys:   make([]any, len(n.vms)),
	}
	if n.failedAt != nil {
		sn.failedAt = make(map[int]sim.Time, len(n.failedAt))
		for k, v := range n.failedAt {
			sn.failedAt[k] = v
		}
	}
	for i, vm := range n.vms {
		sn.vmFailed[i] = vm.failed
		sn.stacks[i] = vm.Stack.Snapshot()
		sn.phc2sys[i] = vm.Phc2sys.Snapshot()
	}
	return sn
}

// Restore implements sim.Snapshotter.
func (n *Node) Restore(snap any) {
	sn := snap.(*nodeSnapshot)
	n.st.Restore(sn.st)
	n.tsc.Restore(sn.tsc)
	n.monitor = sn.monitor
	n.takeovers = sn.takeovers
	n.failedAt = nil
	if sn.failedAt != nil {
		n.failedAt = make(map[int]sim.Time, len(sn.failedAt))
		for k, v := range sn.failedAt {
			n.failedAt[k] = v
		}
	}
	for i, vm := range n.vms {
		vm.failed = sn.vmFailed[i]
		vm.Stack.Restore(sn.stacks[i])
		vm.Phc2sys.Restore(sn.phc2sys[i])
	}
}
