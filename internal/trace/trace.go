// Package trace records simulated gPTP traffic in wire format — the
// simulator's tcpdump. A Recorder taps one or more clock-synchronization
// VMs' receive paths and appends length-prefixed records (capture instant,
// capturing VM, IEEE 1588/802.1AS wire bytes) to a writer; a Reader walks
// a recorded file and a Dump renders it human-readably.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"gptpfta/internal/gptp"
	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// magic identifies trace files; the trailing digit versions the format.
var magic = []byte("GPTPTRC1")

// Record is one captured frame.
type Record struct {
	At   sim.Time // capture instant (true simulation time)
	VM   string   // capturing VM
	Wire []byte   // IEEE 1588/802.1AS wire bytes
}

// Recorder writes records. Create with NewRecorder; attach via Tap.
type Recorder struct {
	w       io.Writer
	started bool
	records uint64
	err     error
}

// NewRecorder creates a recorder on w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: w}
}

// Records reports how many frames were captured.
func (r *Recorder) Records() uint64 { return r.records }

// Err reports the first write error, if any; once set, capturing stops.
func (r *Recorder) Err() error { return r.err }

// Capture encodes and appends one frame received by vm at instant at.
// Non-gPTP frames are ignored.
func (r *Recorder) Capture(at sim.Time, vm string, f *netsim.Frame) {
	if r.err != nil {
		return
	}
	wire, ok := gptp.EncodeWire(string(f.Src), f.Payload)
	if !ok {
		return
	}
	if !r.started {
		if _, err := r.w.Write(magic); err != nil {
			r.err = err
			return
		}
		r.started = true
	}
	var hdr [14]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(at))
	binary.BigEndian.PutUint16(hdr[8:10], uint16(len(vm)))
	binary.BigEndian.PutUint32(hdr[10:14], uint32(len(wire)))
	if _, err := r.w.Write(hdr[:]); err != nil {
		r.err = err
		return
	}
	if _, err := io.WriteString(r.w, vm); err != nil {
		r.err = err
		return
	}
	if _, err := r.w.Write(wire); err != nil {
		r.err = err
		return
	}
	r.records++
}

// Tap returns a receive-path tap for one VM, suitable for
// ptp4l.Stack.SetTap.
func (r *Recorder) Tap(sched *sim.Scheduler, vm string) func(f *netsim.Frame, rxTS float64) {
	return func(f *netsim.Frame, _ float64) {
		r.Capture(sched.Now(), vm, f)
	}
}

// ErrBadMagic marks a file that is not a gPTP trace.
var ErrBadMagic = errors.New("trace: bad magic")

// ReadAll parses a trace stream.
func ReadAll(rd io.Reader) ([]Record, error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(rd, head); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, nil // empty capture
		}
		return nil, err
	}
	if string(head) != string(magic) {
		return nil, ErrBadMagic
	}
	var out []Record
	for {
		var hdr [14]byte
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("trace: record header: %w", err)
		}
		at := sim.Time(binary.BigEndian.Uint64(hdr[0:8]))
		nameLen := int(binary.BigEndian.Uint16(hdr[8:10]))
		wireLen := int(binary.BigEndian.Uint32(hdr[10:14]))
		if nameLen > 256 || wireLen > 1<<16 {
			return nil, fmt.Errorf("trace: implausible record (name %d, wire %d)", nameLen, wireLen)
		}
		buf := make([]byte, nameLen+wireLen)
		if _, err := io.ReadFull(rd, buf); err != nil {
			return nil, fmt.Errorf("trace: record body: %w", err)
		}
		out = append(out, Record{At: at, VM: string(buf[:nameLen]), Wire: buf[nameLen:]})
	}
}

// Dump renders records like a protocol analyzer, one line per frame.
func Dump(w io.Writer, records []Record) error {
	for _, rec := range records {
		line, err := describe(rec)
		if err != nil {
			line = fmt.Sprintf("[%12v] %-4s undecodable: %v", rec.At, rec.VM, err)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

func describe(rec Record) (string, error) {
	mt, err := gptp.MessageTypeOf(rec.Wire)
	if err != nil {
		return "", err
	}
	prefix := fmt.Sprintf("[%12v] %-4s", rec.At, rec.VM)
	switch mt {
	case gptp.WireTypeSync:
		domain, seq, src, err := gptp.UnmarshalSync(rec.Wire)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s Sync            dom%d seq %5d from %s", prefix, domain+1, seq, src), nil
	case gptp.WireTypeFollowUp:
		fu, err := gptp.UnmarshalFollowUp(rec.Wire)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s Follow_Up       dom%d seq %5d origin %d.%09ds corr %.1fns ratio %.9f",
			prefix, fu.Domain+1, fu.SequenceID, fu.PreciseOrigin.Seconds,
			fu.PreciseOrigin.Nanoseconds, fu.CorrectionNS, fu.RateRatio()), nil
	case gptp.WireTypePdelayReq:
		return fmt.Sprintf("%s Pdelay_Req", prefix), nil
	case gptp.WireTypePdelayResp, gptp.WireTypePdelayRespFollowUp:
		pr, err := gptp.UnmarshalPdelayResp(rec.Wire)
		if err != nil {
			return "", err
		}
		kind := "Pdelay_Resp     "
		if pr.FollowUp {
			kind = "Pdelay_Resp_FU  "
		}
		return fmt.Sprintf("%s %s seq %5d t %d.%09ds for %s",
			prefix, kind, pr.SequenceID, pr.Timestamp.Seconds, pr.Timestamp.Nanoseconds, pr.Requesting), nil
	case gptp.WireTypeAnnounce:
		a, err := gptp.UnmarshalAnnounce(rec.Wire)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s Announce        dom%d seq %5d gm prio1 %d steps %d",
			prefix, a.Domain+1, a.SequenceID, a.Priority1, a.StepsRemoved), nil
	default:
		return fmt.Sprintf("%s type %#x (%d bytes)", prefix, mt, len(rec.Wire)), nil
	}
}

// Summary tallies a capture by message type.
func Summary(records []Record) string {
	counts := map[string]int{}
	for _, rec := range records {
		mt, err := gptp.MessageTypeOf(rec.Wire)
		if err != nil {
			counts["undecodable"]++
			continue
		}
		switch mt {
		case gptp.WireTypeSync:
			counts["Sync"]++
		case gptp.WireTypeFollowUp:
			counts["Follow_Up"]++
		case gptp.WireTypePdelayReq:
			counts["Pdelay_Req"]++
		case gptp.WireTypePdelayResp:
			counts["Pdelay_Resp"]++
		case gptp.WireTypePdelayRespFollowUp:
			counts["Pdelay_Resp_FU"]++
		case gptp.WireTypeAnnounce:
			counts["Announce"]++
		default:
			counts["other"]++
		}
	}
	parts := make([]string, 0, len(counts))
	for _, k := range []string{"Sync", "Follow_Up", "Pdelay_Req", "Pdelay_Resp", "Pdelay_Resp_FU", "Announce", "other", "undecodable"} {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s %d", k, counts[k]))
		}
	}
	return fmt.Sprintf("%d frames (%s)", len(records), strings.Join(parts, ", "))
}
