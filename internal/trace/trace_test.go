package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"time"

	"gptpfta/internal/core"
	"gptpfta/internal/gptp"
	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

func TestRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	frames := []*netsim.Frame{
		{Src: "nic/c11", Payload: &gptp.Sync{Domain: 0, Seq: 1}},
		{Src: "nic/c11", Payload: &gptp.FollowUp{Domain: 0, Seq: 1, PreciseOrigin: 125e6, Correction: 3600.5, RateRatio: 1.0000001}},
		{Src: "nic/c22", Payload: &gptp.PdelayReq{Seq: 9, Requester: "c22"}},
		{Src: "nic/sw1", Payload: &gptp.PdelayResp{Seq: 9, Requester: "c22", T2: 1e9}},
		{Src: "nic/sw1", Payload: &gptp.PdelayRespFollowUp{Seq: 9, Requester: "c22", T3: 1.0000001e9}},
		{Src: "nic/c11", Payload: &gptp.Announce{Domain: 0, Seq: 3, GM: gptp.SystemIdentity{Priority1: 50, ClockID: "c11"}, StepsRemoved: 1}},
		{Src: "nic/c22", Payload: "not gptp"}, // skipped
	}
	for i, f := range frames {
		rec.Capture(sim.Time(i)*sim.Time(time.Millisecond), "c22", f)
	}
	if rec.Err() != nil {
		t.Fatalf("recorder error: %v", rec.Err())
	}
	if rec.Records() != 6 {
		t.Fatalf("records = %d, want 6 (non-gPTP skipped)", rec.Records())
	}

	records, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(records) != 6 {
		t.Fatalf("read %d records", len(records))
	}
	if records[0].VM != "c22" || records[0].At != 0 {
		t.Fatalf("record 0: %+v", records[0])
	}
	if records[3].At != sim.Time(3*time.Millisecond) {
		t.Fatalf("record 3 at %v", records[3].At)
	}

	var out strings.Builder
	if err := Dump(&out, records); err != nil {
		t.Fatalf("dump: %v", err)
	}
	for _, want := range []string{"Sync", "Follow_Up", "Pdelay_Req", "Pdelay_Resp", "Pdelay_Resp_FU", "Announce", "prio1 50"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("dump missing %q:\n%s", want, out.String())
		}
	}
	sum := Summary(records)
	if !strings.Contains(sum, "6 frames") || !strings.Contains(sum, "Sync 1") {
		t.Fatalf("summary: %s", sum)
	}
}

func TestReadAllErrors(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("NOTATRACE")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	records, err := ReadAll(strings.NewReader(""))
	if err != nil || records != nil {
		t.Fatalf("empty stream: %v/%v", records, err)
	}
	// Truncated record body.
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Capture(0, "c22", &netsim.Frame{Src: "nic/c11", Payload: &gptp.Sync{}})
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadAll(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated record accepted")
	}
}

// corrupt builds a byte stream from the trace magic plus raw tail bytes.
func corrupt(tail ...byte) *bytes.Reader {
	return bytes.NewReader(append(append([]byte{}, magic...), tail...))
}

func TestReadAllCorruptFiles(t *testing.T) {
	// A short file that is a strict prefix of the magic is not a valid
	// capture: ReadFull fails with ErrUnexpectedEOF, not a silent success.
	if _, err := ReadAll(strings.NewReader(string(magic[:4]))); err == nil {
		t.Fatal("partial magic accepted")
	}
	// Magic followed by a short record header (header is 14 bytes).
	if _, err := ReadAll(corrupt(1, 2, 3, 4, 5)); err == nil || !strings.Contains(err.Error(), "record header") {
		t.Fatalf("short header: %v", err)
	}
	// Implausible name length (> 256) must be rejected before allocating.
	hdr := make([]byte, 14)
	binary.BigEndian.PutUint16(hdr[8:10], 300)
	if _, err := ReadAll(corrupt(hdr...)); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("implausible name length: %v", err)
	}
	// Implausible wire length (> 64 KiB) likewise.
	binary.BigEndian.PutUint16(hdr[8:10], 3)
	binary.BigEndian.PutUint32(hdr[10:14], 1<<20)
	if _, err := ReadAll(corrupt(hdr...)); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("implausible wire length: %v", err)
	}
	// A record claiming more body bytes than the file holds.
	binary.BigEndian.PutUint32(hdr[10:14], 100)
	if _, err := ReadAll(corrupt(append(hdr, 'c', '2', '2')...)); err == nil || !strings.Contains(err.Error(), "record body") {
		t.Fatalf("truncated body: %v", err)
	}
}

func TestReadAllTruncatedKeepsNothing(t *testing.T) {
	// Two valid records, then cut the stream mid-second-record: ReadAll
	// reports the corruption rather than returning the valid prefix, so
	// callers cannot mistake a truncated capture for a complete one.
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Capture(0, "c22", &netsim.Frame{Src: "nic/c11", Payload: &gptp.Sync{Seq: 1}})
	rec.Capture(1, "c22", &netsim.Frame{Src: "nic/c11", Payload: &gptp.Sync{Seq: 2}})
	full := buf.Len()
	for cut := full - 1; cut > full-10; cut-- {
		if _, err := ReadAll(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", cut, full)
		}
	}
}

func TestEncodeWireSkipsUnrepresentable(t *testing.T) {
	if _, ok := gptp.EncodeWire("nic/c11", &gptp.FollowUp{PreciseOrigin: -5}); ok {
		t.Fatal("negative origin encoded")
	}
	if _, ok := gptp.EncodeWire("nic/c11", 42); ok {
		t.Fatal("non-gPTP payload encoded")
	}
}

func TestClockIDStable(t *testing.T) {
	a := gptp.ClockIDFromName("c11")
	b := gptp.ClockIDFromName("c11")
	c := gptp.ClockIDFromName("c12")
	if a != b {
		t.Fatal("identity not stable")
	}
	if a == c {
		t.Fatal("distinct names collide")
	}
	if a[0]&0x02 == 0 {
		t.Fatal("locally-administered bit not set")
	}
}

func TestCaptureFromLiveSystem(t *testing.T) {
	sys, err := core.NewSystem(core.NewConfig(71))
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := sys.VM("c32")
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	vm.Stack.SetTap(rec.Tap(sys.Scheduler(), "c32"))
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rec.Err() != nil {
		t.Fatalf("recorder error: %v", rec.Err())
	}
	// 4 domains × 8 Hz × 10 s × (Sync + FollowUp) ≈ 640 frames plus pdelay.
	if rec.Records() < 500 {
		t.Fatalf("records = %d, want hundreds", rec.Records())
	}
	records, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != int(rec.Records()) {
		t.Fatalf("read %d of %d records", len(records), rec.Records())
	}
	sum := Summary(records)
	if !strings.Contains(sum, "Sync") || !strings.Contains(sum, "Follow_Up") {
		t.Fatalf("summary: %s", sum)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 20 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestRecorderStopsOnWriteError(t *testing.T) {
	rec := NewRecorder(&failWriter{})
	f := &netsim.Frame{Src: "nic/c11", Payload: &gptp.Sync{}}
	for i := 0; i < 5; i++ {
		rec.Capture(sim.Time(i), "c22", f)
	}
	if rec.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if rec.Records() > 1 {
		t.Fatalf("records kept counting after error: %d", rec.Records())
	}
}
