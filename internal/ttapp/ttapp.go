// Package ttapp models the workload the paper's introduction motivates: a
// distributed time-triggered application. Application VMs co-located with
// the clock-synchronization VMs derive CLOCK_SYNCTIME from STSHMEM and
// release their tasks at global period boundaries; the quality of the
// fault-tolerant clock synchronization translates directly into the
// cross-node release jitter of simultaneous task instances — the paradigm
// from Kopetz's time-triggered architecture the paper builds for.
package ttapp

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"gptpfta/internal/sim"
)

// SyncTimeReader reads a node's CLOCK_SYNCTIME (ns) — hypervisor.Node
// satisfies it.
type SyncTimeReader interface {
	SyncTimeNow() (float64, bool)
}

// TaskConfig describes one time-triggered task: instance k is released
// when CLOCK_SYNCTIME reaches k·Period + Offset.
type TaskConfig struct {
	Name   string
	Period time.Duration
	Offset time.Duration
	// Tolerance is the maximum acceptable early wake before re-sleeping.
	// Default 5 µs.
	Tolerance time.Duration
}

func (c TaskConfig) withDefaults() TaskConfig {
	if c.Tolerance <= 0 {
		c.Tolerance = 5 * time.Microsecond
	}
	return c
}

// Release records one task instance release.
type Release struct {
	Cycle int64
	// SyncTimeNS is CLOCK_SYNCTIME at the release.
	SyncTimeNS float64
	// TrueAt is the simulation ground-truth instant — what an external
	// observer (or the physical plant) experiences.
	TrueAt sim.Time
}

// Task is a periodic time-triggered task on one node.
type Task struct {
	cfg      TaskConfig
	node     string
	sched    *sim.Scheduler
	clock    SyncTimeReader
	releases []Release
	running  bool
	skips    uint64
	// lastCycle enforces monotone cycle numbers: when the dependent clock
	// is adjusted backwards (takeover, attack), the task must not release
	// the same instance twice — clock_nanosleep semantics on a stepped
	// clock.
	lastCycle int64
}

// NewTask creates a task bound to a node's dependent clock.
func NewTask(node string, sched *sim.Scheduler, clock SyncTimeReader, cfg TaskConfig) (*Task, error) {
	if cfg.Period <= 0 {
		return nil, errors.New("ttapp: non-positive period")
	}
	return &Task{cfg: cfg.withDefaults(), node: node, sched: sched, clock: clock}, nil
}

// Start begins releasing instances.
func (t *Task) Start() error {
	if t.running {
		return fmt.Errorf("ttapp: task %s already running", t.cfg.Name)
	}
	t.running = true
	t.scheduleNext()
	return nil
}

// Stop halts the task.
func (t *Task) Stop() { t.running = false }

// Node reports the hosting node.
func (t *Task) Node() string { return t.node }

// Releases snapshots the release log.
func (t *Task) Releases() []Release {
	return append([]Release(nil), t.releases...)
}

// Skips reports how many wake-ups found CLOCK_SYNCTIME unavailable.
func (t *Task) Skips() uint64 { return t.skips }

// scheduleNext arms a wake-up for the next period boundary. The guest only
// has CLOCK_SYNCTIME, so the sleep duration is computed on that timescale
// (its rate is within ppm of true time); an early wake re-sleeps, like a
// clock_nanosleep(TIMER_ABSTIME) loop on the dependent clock.
func (t *Task) scheduleNext() {
	if !t.running {
		return
	}
	now, ok := t.clock.SyncTimeNow()
	if !ok {
		t.skips++
		t.sched.After(t.cfg.Period, t.scheduleNext)
		return
	}
	period := float64(t.cfg.Period)
	offset := float64(t.cfg.Offset)
	cycle := int64(math.Floor((now-offset)/period)) + 1
	if cycle <= t.lastCycle {
		cycle = t.lastCycle + 1
	}
	target := float64(cycle)*period + offset
	sleep := time.Duration(target - now)
	if sleep < 0 {
		sleep = 0
	}
	t.sched.After(sleep, func() { t.wake(cycle, target) })
}

func (t *Task) wake(cycle int64, target float64) {
	if !t.running {
		return
	}
	now, ok := t.clock.SyncTimeNow()
	if !ok {
		t.skips++
		t.sched.After(t.cfg.Period, t.scheduleNext)
		return
	}
	if now < target-float64(t.cfg.Tolerance) {
		// Woke early (the dependent clock was adjusted): re-sleep.
		t.sched.After(time.Duration(target-now), func() { t.wake(cycle, target) })
		return
	}
	t.lastCycle = cycle
	t.releases = append(t.releases, Release{Cycle: cycle, SyncTimeNS: now, TrueAt: t.sched.Now()})
	t.scheduleNext()
}

// CycleJitter is the cross-node release spread of one cycle: the true-time
// difference between the first and the last node releasing instance k.
type CycleJitter struct {
	Cycle    int64
	SpreadNS float64
	Nodes    int
}

// CrossNodeJitter correlates the release logs of the same task on several
// nodes and reports the per-cycle release spread — the application-level
// consequence of clock-synchronization precision.
func CrossNodeJitter(tasks []*Task) []CycleJitter {
	type window struct {
		min, max sim.Time
		count    int
	}
	byCycle := make(map[int64]*window)
	for _, t := range tasks {
		for _, r := range t.releases {
			w, ok := byCycle[r.Cycle]
			if !ok {
				byCycle[r.Cycle] = &window{min: r.TrueAt, max: r.TrueAt, count: 1}
				continue
			}
			if r.TrueAt < w.min {
				w.min = r.TrueAt
			}
			if r.TrueAt > w.max {
				w.max = r.TrueAt
			}
			w.count++
		}
	}
	cycles := make([]int64, 0, len(byCycle))
	for c, w := range byCycle {
		if w.count == len(tasks) { // only fully observed cycles
			cycles = append(cycles, c)
		}
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
	out := make([]CycleJitter, 0, len(cycles))
	for _, c := range cycles {
		w := byCycle[c]
		out = append(out, CycleJitter{Cycle: c, SpreadNS: float64(w.max - w.min), Nodes: w.count})
	}
	return out
}

// JitterStats summarises a jitter series.
type JitterStats struct {
	Cycles int
	MeanNS float64
	MaxNS  float64
}

// String renders the summary.
func (s JitterStats) String() string {
	return fmt.Sprintf("release jitter over %d cycles: mean %.0f ns, max %.0f ns",
		s.Cycles, s.MeanNS, s.MaxNS)
}

// SummarizeJitter computes release-jitter statistics.
func SummarizeJitter(jitter []CycleJitter) JitterStats {
	if len(jitter) == 0 {
		return JitterStats{}
	}
	var sum, max float64
	for _, j := range jitter {
		sum += j.SpreadNS
		if j.SpreadNS > max {
			max = j.SpreadNS
		}
	}
	return JitterStats{Cycles: len(jitter), MeanNS: sum / float64(len(jitter)), MaxNS: max}
}
