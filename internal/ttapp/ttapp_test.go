package ttapp

import (
	"testing"
	"time"

	"gptpfta/internal/attack"
	"gptpfta/internal/core"
	"gptpfta/internal/sim"
)

// fakeClock is a SyncTimeReader with a fixed offset from true time.
type fakeClock struct {
	sched  *sim.Scheduler
	offset float64
	valid  bool
}

func (c *fakeClock) SyncTimeNow() (float64, bool) {
	return float64(c.sched.Now()) + c.offset, c.valid
}

func TestTaskReleasesAtBoundaries(t *testing.T) {
	sched := sim.NewScheduler()
	clk := &fakeClock{sched: sched, offset: 1234, valid: true}
	task, err := NewTask("dev1", sched, clk, TaskConfig{Name: "ctrl", Period: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := task.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := sched.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("run: %v", err)
	}
	task.Stop()
	rel := task.Releases()
	if len(rel) < 95 || len(rel) > 101 {
		t.Fatalf("releases = %d in 1 s at 10 ms period", len(rel))
	}
	for i, r := range rel {
		boundary := float64(r.Cycle) * 10e6
		if r.SyncTimeNS < boundary || r.SyncTimeNS > boundary+10000 {
			t.Fatalf("release %d at synctime %v, want within 10 µs after boundary %v", i, r.SyncTimeNS, boundary)
		}
		if i > 0 && r.Cycle != rel[i-1].Cycle+1 {
			t.Fatalf("cycle skipped: %d -> %d", rel[i-1].Cycle, r.Cycle)
		}
	}
}

func TestTaskOffsetSchedule(t *testing.T) {
	sched := sim.NewScheduler()
	clk := &fakeClock{sched: sched, valid: true}
	task, err := NewTask("dev1", sched, clk, TaskConfig{
		Name: "io", Period: 10 * time.Millisecond, Offset: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(sim.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	for _, r := range task.Releases() {
		phase := r.SyncTimeNS - float64(r.Cycle)*10e6 - 3e6
		if phase < 0 || phase > 10000 {
			t.Fatalf("release phase %v ns relative to offset boundary", phase)
		}
	}
}

func TestTaskHandlesInvalidClock(t *testing.T) {
	sched := sim.NewScheduler()
	clk := &fakeClock{sched: sched, valid: false}
	task, err := NewTask("dev1", sched, clk, TaskConfig{Name: "x", Period: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(task.Releases()) != 0 {
		t.Fatal("released without a valid clock")
	}
	if task.Skips() == 0 {
		t.Fatal("no skips recorded")
	}
	// The clock becomes valid: releases resume.
	clk.valid = true
	if err := sched.RunUntil(sim.Time(300 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(task.Releases()) == 0 {
		t.Fatal("did not recover after the clock became valid")
	}
}

func TestTaskValidation(t *testing.T) {
	sched := sim.NewScheduler()
	if _, err := NewTask("dev1", sched, &fakeClock{sched: sched}, TaskConfig{}); err == nil {
		t.Fatal("zero period accepted")
	}
	task, err := NewTask("dev1", sched, &fakeClock{sched: sched, valid: true},
		TaskConfig{Period: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := task.Start(); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestCrossNodeJitterSynthetic(t *testing.T) {
	sched := sim.NewScheduler()
	mk := func(offset float64) *Task {
		task, err := NewTask("n", sched, &fakeClock{sched: sched, offset: offset, valid: true},
			TaskConfig{Period: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Start(); err != nil {
			t.Fatal(err)
		}
		return task
	}
	// Clock offsets translate into release-time spread: a clock 400 ns
	// ahead releases 400 ns earlier in true time.
	tasks := []*Task{mk(0), mk(200), mk(400)}
	if err := sched.RunUntil(sim.Time(500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	jitter := CrossNodeJitter(tasks)
	if len(jitter) < 40 {
		t.Fatalf("jitter cycles = %d", len(jitter))
	}
	stats := SummarizeJitter(jitter)
	if stats.MeanNS < 300 || stats.MeanNS > 500 {
		t.Fatalf("mean spread %.0f ns, want ≈400 (the synthetic clock spread)", stats.MeanNS)
	}
	if SummarizeJitter(nil).Cycles != 0 {
		t.Fatal("empty summary should be zero")
	}
	if stats.String() == "" {
		t.Fatal("empty string")
	}
}

// TestTimeTriggeredOverFullSystem is the end-to-end CPS story: tasks on
// all four nodes release within the clock-synchronization precision; after
// the attacker compromises two grandmasters, the release jitter explodes.
func TestTimeTriggeredOverFullSystem(t *testing.T) {
	sys, err := core.NewSystem(core.NewConfig(51))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}

	var tasks []*Task
	for i, node := range sys.Nodes() {
		task, err := NewTask(core.NodeName(i), sys.Scheduler(), node,
			TaskConfig{Name: "ctrl", Period: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Start(); err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	if err := sys.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	healthy := SummarizeJitter(CrossNodeJitter(tasks))
	if healthy.Cycles < 1000 {
		t.Fatalf("cycles = %d, want ~6000", healthy.Cycles)
	}
	if healthy.MeanNS > 2000 {
		t.Fatalf("healthy release jitter %.0f ns, want within the sync precision", healthy.MeanNS)
	}

	// Compromise two grandmasters (the Fig. 3a attack): the application
	// jitter must degrade by orders of magnitude.
	for _, name := range []string{"c11", "c41"} {
		vm, _ := sys.VM(name)
		vm.Stack.Compromise(attack.MaliciousOriginOffsetNS)
	}
	for _, task := range tasks {
		task.Stop()
	}
	var attacked []*Task
	for i, node := range sys.Nodes() {
		task, err := NewTask(core.NodeName(i), sys.Scheduler(), node,
			TaskConfig{Name: "ctrl2", Period: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Start(); err != nil {
			t.Fatal(err)
		}
		attacked = append(attacked, task)
	}
	if err := sys.RunFor(4 * time.Minute); err != nil {
		t.Fatal(err)
	}
	broken := SummarizeJitter(CrossNodeJitter(attacked))
	if broken.MaxNS < 10*healthy.MaxNS {
		t.Fatalf("attack did not degrade application jitter: healthy %s vs attacked %s",
			healthy, broken)
	}
}
