package servo

import (
	"math"
	"testing"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/sim"
)

func TestDefaults(t *testing.T) {
	p := NewPI(Config{SyncInterval: 125 * time.Millisecond})
	cfg := p.Config()
	if cfg.Kp <= 0 || cfg.Ki <= 0 {
		t.Fatalf("gains not derived: kp=%v ki=%v", cfg.Kp, cfg.Ki)
	}
	// LinuxPTP: kp = 0.7·0.125^-0.3 ≈ 1.306, ki = 0.3·0.125^0.4 ≈ 0.131.
	if math.Abs(cfg.Kp-1.306) > 0.01 {
		t.Fatalf("kp = %v, want ≈1.306", cfg.Kp)
	}
	if math.Abs(cfg.Ki-0.1306) > 0.001 {
		t.Fatalf("ki = %v, want ≈0.1306", cfg.Ki)
	}
	if cfg.FirstStepThreshold != 20*time.Microsecond {
		t.Fatalf("first step threshold = %v, want 20µs", cfg.FirstStepThreshold)
	}
}

func TestFirstSampleUnlocked(t *testing.T) {
	p := NewPI(Config{})
	adj, st := p.Sample(1000, 0)
	if st != StateUnlocked || adj != 0 {
		t.Fatalf("first sample: adj=%v state=%v, want 0/unlocked", adj, st)
	}
}

func TestSecondSampleEstimatesDrift(t *testing.T) {
	p := NewPI(Config{})
	// Offset grows by 625 ns per 125 ms → +5 ppm local frequency error.
	p.Sample(0, 0)
	adj, st := p.Sample(625, 125e6)
	if st != StateLocked {
		t.Fatalf("state = %v, want locked (offset below first-step threshold)", st)
	}
	if math.Abs(p.DriftPPB()-5000) > 1 {
		t.Fatalf("drift estimate = %v ppb, want 5000", p.DriftPPB())
	}
	if math.Abs(adj+5000) > 1 {
		t.Fatalf("adjustment = %v ppb, want -5000", adj)
	}
}

func TestLargeFirstOffsetRequestsJump(t *testing.T) {
	p := NewPI(Config{})
	p.Sample(5e6, 0)
	_, st := p.Sample(5e6, 125e6)
	if st != StateJump {
		t.Fatalf("state = %v, want jump for 5 ms offset", st)
	}
}

func TestStepThresholdWhenLocked(t *testing.T) {
	p := NewPI(Config{StepThreshold: time.Millisecond})
	p.Sample(0, 0)
	p.Sample(10, 125e6)
	_, st := p.Sample(5e6, 250e6) // 5 ms
	if st != StateJump {
		t.Fatalf("state = %v, want jump above step threshold", st)
	}
}

func TestNoStepWhenThresholdZero(t *testing.T) {
	p := NewPI(Config{})
	p.Sample(0, 0)
	p.Sample(10, 125e6)
	_, st := p.Sample(5e9, 250e6)
	if st != StateLocked {
		t.Fatalf("state = %v, want locked (step threshold disabled)", st)
	}
}

func TestReset(t *testing.T) {
	p := NewPI(Config{})
	p.Sample(0, 0)
	p.Sample(625, 125e6)
	p.Reset()
	if p.State() != StateUnlocked || p.DriftPPB() != 0 {
		t.Fatalf("reset did not clear state: %v drift=%v", p.State(), p.DriftPPB())
	}
	adj, st := p.Sample(100, 0)
	if st != StateUnlocked || adj != 0 {
		t.Fatal("servo after reset should behave like a fresh servo")
	}
}

func TestOutputClamped(t *testing.T) {
	p := NewPI(Config{MaxFreqPPB: 1000})
	p.Sample(0, 0)
	p.Sample(10, 125e6)
	adj, _ := p.Sample(1e9, 250e6)
	if adj != -1000 {
		t.Fatalf("adjustment = %v, want clamp at -1000", adj)
	}
}

func TestDegenerateSecondSample(t *testing.T) {
	p := NewPI(Config{})
	p.Sample(100, 1000)
	adj, st := p.Sample(200, 1000) // same local timestamp
	if st != StateUnlocked || adj != 0 {
		t.Fatalf("degenerate dt: adj=%v state=%v, want 0/unlocked", adj, st)
	}
}

// TestClosedLoopConvergence runs the servo against a simulated PHC with a
// +5 ppm oscillator and a perfect reference, sampling every 125 ms. After a
// few seconds the residual offset must be within tens of nanoseconds.
func TestClosedLoopConvergence(t *testing.T) {
	sched := sim.NewScheduler()
	streams := sim.NewStreams(5)
	osc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: 5000, WanderPPBPerSqrtSec: 1},
		streams.Stream("osc"), sched.Now())
	phc := clock.NewPHC(sched, osc, nil, clock.PHCConfig{InitialOffsetNS: 3000})
	p := NewPI(Config{SyncInterval: 125 * time.Millisecond})

	var lastOffsets []float64
	tick, err := sched.Every(0, 125*time.Millisecond, func() {
		ref := float64(sched.Now()) // perfect master
		offset := phc.Now() - ref
		adj, st := p.Sample(offset, phc.Now())
		switch st {
		case StateJump:
			phc.Step(-offset)
			phc.AdjFreq(adj)
		case StateLocked:
			phc.AdjFreq(adj)
		}
		lastOffsets = append(lastOffsets, offset)
	})
	if err != nil {
		t.Fatalf("every: %v", err)
	}
	defer tick.Stop()
	if err := sched.RunUntil(sim.Time(20 * time.Second)); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Examine the last 20 samples.
	tail := lastOffsets[len(lastOffsets)-20:]
	for _, o := range tail {
		if math.Abs(o) > 100 {
			t.Fatalf("servo failed to converge: tail offsets %v", tail)
		}
	}
}

// TestClosedLoopTracksWander verifies the integral term follows a slowly
// changing frequency error.
func TestClosedLoopTracksWander(t *testing.T) {
	sched := sim.NewScheduler()
	streams := sim.NewStreams(9)
	osc := clock.NewOscillator(clock.OscillatorConfig{StaticPPB: -3000, WanderPPBPerSqrtSec: 5},
		streams.Stream("osc"), sched.Now())
	phc := clock.NewPHC(sched, osc, nil, clock.PHCConfig{})
	p := NewPI(Config{SyncInterval: 125 * time.Millisecond})
	var worst float64
	tick, err := sched.Every(0, 125*time.Millisecond, func() {
		offset := phc.Now() - float64(sched.Now())
		adj, st := p.Sample(offset, phc.Now())
		switch st {
		case StateJump:
			phc.Step(-offset)
			phc.AdjFreq(adj)
		case StateLocked:
			phc.AdjFreq(adj)
		}
		if sched.Now() > sim.Time(10*time.Second) && math.Abs(offset) > worst {
			worst = math.Abs(offset)
		}
	})
	if err != nil {
		t.Fatalf("every: %v", err)
	}
	defer tick.Stop()
	if err := sched.RunUntil(sim.Time(60 * time.Second)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if worst > 500 {
		t.Fatalf("steady-state worst offset %v ns under wander, want < 500 ns", worst)
	}
}

func TestStateString(t *testing.T) {
	if StateUnlocked.String() != "unlocked" || StateJump.String() != "jump" ||
		StateLocked.String() != "locked" {
		t.Fatal("state strings wrong")
	}
	if State(99).String() != "state(99)" {
		t.Fatal("unknown state string wrong")
	}
}
