// Package servo implements the proportional-integral clock servo that
// LinuxPTP's ptp4l and phc2sys use to discipline a clock from a stream of
// offset measurements. In the paper's architecture a single PI servo per
// clock-synchronization VM is shared between the M ptp4l instances through
// FTSHMEM; the instance that wins the aggregation gate feeds it the FTA
// master offset.
package servo

import (
	"fmt"
	"math"
	"time"
)

// State is the servo state machine, mirroring LinuxPTP.
type State int

const (
	// StateUnlocked: not enough samples yet; no adjustment.
	StateUnlocked State = iota + 1
	// StateJump: the caller must step the clock by -offset and not adjust
	// the frequency this sample.
	StateJump
	// StateLocked: the returned frequency adjustment must be applied.
	StateLocked
	// StateHoldover: the servo is frozen (quorum starvation); the caller
	// keeps the last applied frequency and ignores adjPPB.
	StateHoldover
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateUnlocked:
		return "unlocked"
	case StateJump:
		return "jump"
	case StateLocked:
		return "locked"
	case StateHoldover:
		return "holdover"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config parameterises a PI servo. The zero value is completed by
// NewPI with LinuxPTP's defaults for the given sync interval.
type Config struct {
	// Kp, Ki are the proportional and integral gains (ppb per ns of
	// offset). If zero they are derived from SyncInterval with LinuxPTP's
	// scale/exponent defaults (kp = 0.7·S^-0.3, ki = 0.3·S^0.4).
	Kp, Ki float64
	// SyncInterval is the expected sample period.
	SyncInterval time.Duration
	// FirstStepThreshold: if the first measured offset exceeds this, the
	// servo requests a clock step. Defaults to 20 µs (LinuxPTP).
	FirstStepThreshold time.Duration
	// StepThreshold: if non-zero and a later offset exceeds it, the servo
	// requests another step (LinuxPTP default 0: never step when locked).
	StepThreshold time.Duration
	// MaxFreqPPB clamps the output. Defaults to 900 ppm.
	MaxFreqPPB float64
}

func (c Config) withDefaults() Config {
	if c.SyncInterval <= 0 {
		c.SyncInterval = 125 * time.Millisecond
	}
	s := c.SyncInterval.Seconds()
	if c.Kp == 0 {
		c.Kp = 0.7 * math.Pow(s, -0.3)
	}
	if c.Ki == 0 {
		c.Ki = 0.3 * math.Pow(s, 0.4)
	}
	if c.FirstStepThreshold == 0 {
		c.FirstStepThreshold = 20 * time.Microsecond
	}
	if c.MaxFreqPPB == 0 {
		c.MaxFreqPPB = 900000
	}
	return c
}

// PI is a proportional-integral servo. Offsets follow the PTP convention
// offset = local − master: a positive offset means the local clock is
// ahead. Sample returns the frequency adjustment to apply to the local
// clock (already negated, ready for PHC.AdjFreq).
type PI struct {
	cfg   Config
	state State
	count int

	firstOffset float64
	firstLocal  float64
	driftPPB    float64 // integral term: estimated local frequency error

	// Holdover support: while frozen the integral term is immutable and
	// Sample returns the last output unchanged; after Thaw the output is
	// slew-limited until it converges back onto the PI trajectory.
	frozen     bool
	slewing    bool
	maxSlewPPB float64
	lastOut    float64 // last frequency adjustment returned to the caller
}

// NewPI creates a PI servo.
func NewPI(cfg Config) *PI {
	return &PI{cfg: cfg.withDefaults(), state: StateUnlocked}
}

// Config returns the effective configuration after defaulting.
func (p *PI) Config() Config { return p.cfg }

// State reports the current servo state.
func (p *PI) State() State { return p.state }

// DriftPPB reports the integral term (estimated oscillator frequency error).
func (p *PI) DriftPPB() float64 { return p.driftPPB }

// Reset returns the servo to the unlocked state, keeping configuration.
// Used when a clock-synchronization VM reboots after fault injection.
func (p *PI) Reset() {
	p.state = StateUnlocked
	p.count = 0
	p.driftPPB = 0
	p.firstOffset = 0
	p.firstLocal = 0
	p.frozen = false
	p.slewing = false
	p.lastOut = 0
}

// Freeze puts the servo into holdover: the integral term stops updating
// and Sample returns the last output with StateHoldover, so the
// disciplined clock coasts on its last good frequency correction instead
// of chasing starved (or absent) measurements.
func (p *PI) Freeze() {
	if p.frozen {
		return
	}
	p.frozen = true
	p.state = StateHoldover
}

// Thaw leaves holdover and re-enters closed-loop control. maxSlewPPB, when
// positive, bounds how fast the output frequency may move per sample until
// it converges back onto the PI trajectory — the bounded slew that turns a
// post-outage offset into a ramp instead of a jump. The acquisition
// prologue is skipped: the pre-freeze drift estimate is retained, so the
// first post-thaw sample cannot request a clock step.
func (p *PI) Thaw(maxSlewPPB float64) {
	if !p.frozen {
		return
	}
	p.frozen = false
	p.maxSlewPPB = maxSlewPPB
	p.slewing = maxSlewPPB > 0
	if p.count < 2 {
		p.count = 2
	}
	p.state = StateLocked
}

// Frozen reports whether the servo is in holdover.
func (p *PI) Frozen() bool { return p.frozen }

// Sample feeds one offset measurement (offsetNS = local − master, localTS =
// local clock time of the measurement in ns) and returns the frequency
// adjustment to apply and the resulting state:
//
//   - StateUnlocked: ignore adjPPB, keep the clock free-running.
//   - StateJump: step the clock by −offsetNS, then apply adjPPB.
//   - StateLocked: apply adjPPB.
//   - StateHoldover: servo frozen; adjPPB repeats the last output.
func (p *PI) Sample(offsetNS, localTS float64) (adjPPB float64, state State) {
	if p.frozen {
		return p.lastOut, StateHoldover
	}
	adj, st := p.sampleRaw(offsetNS, localTS)
	if p.slewing && st == StateLocked {
		delta := adj - p.lastOut
		switch {
		case delta > p.maxSlewPPB:
			adj = p.lastOut + p.maxSlewPPB
		case delta < -p.maxSlewPPB:
			adj = p.lastOut - p.maxSlewPPB
		default:
			p.slewing = false // back on the PI trajectory
		}
	}
	p.lastOut = adj
	return adj, st
}

func (p *PI) sampleRaw(offsetNS, localTS float64) (adjPPB float64, state State) {
	switch p.count {
	case 0:
		p.firstOffset = offsetNS
		p.firstLocal = localTS
		p.count = 1
		p.state = StateUnlocked
		return 0, p.state
	case 1:
		dt := localTS - p.firstLocal
		if dt <= 0 {
			// Degenerate sampling; wait for a usable second sample.
			p.firstOffset = offsetNS
			p.firstLocal = localTS
			return 0, StateUnlocked
		}
		// Initial drift estimate from the first two samples.
		p.driftPPB = clamp((offsetNS-p.firstOffset)/dt*1e9, p.cfg.MaxFreqPPB)
		p.count = 2
		if math.Abs(offsetNS) > float64(p.cfg.FirstStepThreshold) {
			p.state = StateJump
		} else {
			p.state = StateLocked
		}
		return clamp(-p.driftPPB, p.cfg.MaxFreqPPB), p.state
	default:
		if p.cfg.StepThreshold > 0 && math.Abs(offsetNS) > float64(p.cfg.StepThreshold) {
			// A step while locked means the disciplined clock jumped under
			// us (e.g. ptp4l stepped the PHC between our samples). The
			// integral term is now meaningless — restart acquisition, or
			// a wound-up drift estimate keeps the servo oscillating
			// between the frequency clamps.
			p.state = StateJump
			p.count = 0
			p.driftPPB = 0
			return 0, p.state
		}
		kiTerm := p.cfg.Ki * offsetNS
		est := p.driftPPB + p.cfg.Kp*offsetNS + kiTerm
		p.driftPPB = clamp(p.driftPPB+kiTerm, p.cfg.MaxFreqPPB)
		p.state = StateLocked
		return clamp(-est, p.cfg.MaxFreqPPB), p.state
	}
}

func clamp(v, limit float64) float64 {
	if v > limit {
		return limit
	}
	if v < -limit {
		return -limit
	}
	return v
}
