package servo

import (
	"math"
	"testing"
	"time"
)

// lockServo drives a servo to StateLocked with small offsets and returns
// its last output.
func lockServo(t *testing.T, p *PI) float64 {
	t.Helper()
	var adj float64
	var st State
	local := 0.0
	for i := 0; i < 10; i++ {
		local += 125e6
		adj, st = p.Sample(100, local)
	}
	if st != StateLocked {
		t.Fatalf("servo state %v after warm-up, want locked", st)
	}
	return adj
}

func TestFreezeHoldsOutputAndIntegral(t *testing.T) {
	p := NewPI(Config{SyncInterval: 125 * time.Millisecond})
	last := lockServo(t, p)
	drift := p.DriftPPB()

	p.Freeze()
	if !p.Frozen() || p.State() != StateHoldover {
		t.Fatalf("frozen=%v state=%v after Freeze", p.Frozen(), p.State())
	}
	// Garbage offsets during the outage must not move anything.
	for i := 0; i < 5; i++ {
		adj, st := p.Sample(1e9, 1e18)
		if st != StateHoldover {
			t.Fatalf("state %v while frozen, want holdover", st)
		}
		if adj != last {
			t.Fatalf("frozen output %v, want last output %v", adj, last)
		}
	}
	if p.DriftPPB() != drift {
		t.Fatalf("integral moved while frozen: %v -> %v", drift, p.DriftPPB())
	}
}

func TestThawSlewLimitsReacquisition(t *testing.T) {
	p := NewPI(Config{SyncInterval: 125 * time.Millisecond})
	last := lockServo(t, p)
	p.Freeze()
	const maxSlew = 50.0
	p.Thaw(maxSlew)
	if p.Frozen() {
		t.Fatal("still frozen after Thaw")
	}

	// A large post-outage offset transient must never step (acquisition
	// prologue is skipped) and must move the output by at most maxSlew per
	// sample until the loop closes again.
	local := 10 * 125e6
	prev := last
	converged := false
	for i := 0; i < 2000; i++ {
		local += 125e6
		offset := 0.0
		if i < 5 {
			offset = 50000 // 50 µs accumulated error, corrected over 5 samples
		}
		adj, st := p.Sample(offset, local)
		if st == StateJump {
			t.Fatal("post-thaw sample requested a clock step")
		}
		if d := math.Abs(adj - prev); d > maxSlew+1e-9 {
			t.Fatalf("sample %d: output moved %v ppb, slew limit %v", i, d, maxSlew)
		}
		prev = adj
		if !p.slewing {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatal("slew never converged onto the PI trajectory")
	}
}

func TestThawWithoutSlewLimit(t *testing.T) {
	p := NewPI(Config{SyncInterval: 125 * time.Millisecond})
	lockServo(t, p)
	p.Freeze()
	p.Thaw(0)
	adj, st := p.Sample(200, 11*125e6)
	if st != StateLocked {
		t.Fatalf("state %v after unbounded thaw, want locked", st)
	}
	if adj == 0 {
		t.Fatal("unbounded thaw returned no adjustment")
	}
}

func TestResetClearsHoldover(t *testing.T) {
	p := NewPI(Config{SyncInterval: 125 * time.Millisecond})
	lockServo(t, p)
	p.Freeze()
	p.Reset()
	if p.Frozen() || p.State() != StateUnlocked {
		t.Fatalf("frozen=%v state=%v after Reset", p.Frozen(), p.State())
	}
	if _, st := p.Sample(100, 1); st != StateUnlocked {
		t.Fatalf("first post-reset sample state %v, want unlocked", st)
	}
}

func TestHoldoverStateString(t *testing.T) {
	if StateHoldover.String() != "holdover" {
		t.Fatalf("StateHoldover.String() = %q", StateHoldover.String())
	}
}
