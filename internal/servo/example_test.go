package servo_test

import (
	"fmt"
	"time"

	"gptpfta/internal/servo"
)

// A PI servo locking onto a clock with a constant +5 ppm frequency error:
// the first sample arms it, the second estimates the drift, and from then
// on it returns the frequency correction to apply.
func ExamplePI() {
	pi := servo.NewPI(servo.Config{SyncInterval: 125 * time.Millisecond})

	_, state := pi.Sample(0, 0)
	fmt.Println("first sample:", state)

	// 125 ms later the offset grew by 625 ns → +5 ppm local error.
	adj, state := pi.Sample(625, 125e6)
	fmt.Printf("second sample: %v, apply %.0f ppb\n", state, adj)
	fmt.Printf("drift estimate: %.0f ppb\n", pi.DriftPPB())
	// Output:
	// first sample: unlocked
	// second sample: locked, apply -5000 ppb
	// drift estimate: 5000 ppb
}
