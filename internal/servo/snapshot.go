package servo

// piSnapshot captures a PI servo's mutable state for warm-start forks
// (sim.Snapshotter; the servo package does not import sim, the interface is
// structural).
type piSnapshot struct {
	state       State
	count       int
	firstOffset float64
	firstLocal  float64
	driftPPB    float64
	frozen      bool
	slewing     bool
	maxSlewPPB  float64
	lastOut     float64
}

// Snapshot captures the servo state.
func (p *PI) Snapshot() any {
	return &piSnapshot{
		state:       p.state,
		count:       p.count,
		firstOffset: p.firstOffset,
		firstLocal:  p.firstLocal,
		driftPPB:    p.driftPPB,
		frozen:      p.frozen,
		slewing:     p.slewing,
		maxSlewPPB:  p.maxSlewPPB,
		lastOut:     p.lastOut,
	}
}

// Restore rewinds the servo to a Snapshot.
func (p *PI) Restore(snap any) {
	sn := snap.(*piSnapshot)
	p.state = sn.state
	p.count = sn.count
	p.firstOffset = sn.firstOffset
	p.firstLocal = sn.firstLocal
	p.driftPPB = sn.driftPPB
	p.frozen = sn.frozen
	p.slewing = sn.slewing
	p.maxSlewPPB = sn.maxSlewPPB
	p.lastOut = sn.lastOut
}
