package measure

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Stats summarises a precision series the way Fig. 4b's caption does.
type Stats struct {
	Count  int
	MeanNS float64
	StdNS  float64
	MinNS  float64
	MaxNS  float64
	// MaxAtSec is the time of the maximum (the red-circled spike).
	MaxAtSec float64
}

// String formats like the paper: "avg = 322ns, std = 421ns, ...".
func (s Stats) String() string {
	return fmt.Sprintf("avg = %.0fns, std = %.0fns, min = %.0fns, max = %.0fns (n=%d)",
		s.MeanNS, s.StdNS, s.MinNS, s.MaxNS, s.Count)
}

// ComputeStats summarises a sample series.
func ComputeStats(samples []Sample) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	st := Stats{Count: len(samples), MinNS: math.Inf(1), MaxNS: math.Inf(-1)}
	var sum float64
	for _, s := range samples {
		sum += s.PiStarNS
		if s.PiStarNS < st.MinNS {
			st.MinNS = s.PiStarNS
		}
		if s.PiStarNS > st.MaxNS {
			st.MaxNS = s.PiStarNS
			st.MaxAtSec = s.AtSec
		}
	}
	st.MeanNS = sum / float64(len(samples))
	var sq float64
	for _, s := range samples {
		d := s.PiStarNS - st.MeanNS
		sq += d * d
	}
	st.StdNS = math.Sqrt(sq / float64(len(samples)))
	return st
}

// Window is one aggregation interval of the precision series (the paper
// plots 120 s windows with average, minimum and maximum).
type Window struct {
	StartSec float64
	MinNS    float64
	AvgNS    float64
	MaxNS    float64
	Count    int
}

// Aggregate buckets samples into fixed windows of the given width.
func Aggregate(samples []Sample, width time.Duration) []Window {
	if len(samples) == 0 || width <= 0 {
		return nil
	}
	w := width.Seconds()
	byBucket := make(map[int64][]float64)
	for _, s := range samples {
		b := int64(s.AtSec / w)
		byBucket[b] = append(byBucket[b], s.PiStarNS)
	}
	buckets := make([]int64, 0, len(byBucket))
	for b := range byBucket {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i] < buckets[j] })
	out := make([]Window, 0, len(buckets))
	for _, b := range buckets {
		vals := byBucket[b]
		win := Window{StartSec: float64(b) * w, MinNS: math.Inf(1), MaxNS: math.Inf(-1), Count: len(vals)}
		var sum float64
		for _, v := range vals {
			sum += v
			if v < win.MinNS {
				win.MinNS = v
			}
			if v > win.MaxNS {
				win.MaxNS = v
			}
		}
		win.AvgNS = sum / float64(len(vals))
		out = append(out, win)
	}
	return out
}

// Histogram is the distribution of per-second precision values (Fig. 4b).
type Histogram struct {
	BucketWidthNS float64
	// Counts[i] covers [i·width, (i+1)·width).
	Counts []int
	// Overflow counts samples beyond the last bucket.
	Overflow int
}

// ComputeHistogram builds a fixed-width histogram up to limitNS.
func ComputeHistogram(samples []Sample, bucketWidthNS, limitNS float64) Histogram {
	if bucketWidthNS <= 0 || limitNS <= 0 {
		return Histogram{}
	}
	n := int(limitNS / bucketWidthNS)
	h := Histogram{BucketWidthNS: bucketWidthNS, Counts: make([]int, n)}
	for _, s := range samples {
		i := int(s.PiStarNS / bucketWidthNS)
		if i < 0 {
			i = 0
		}
		if i >= n {
			h.Overflow++
			continue
		}
		h.Counts[i]++
	}
	return h
}

// Quantile returns the q-quantile (0..1) of the precision series.
func Quantile(samples []Sample, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = s.PiStarNS
	}
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	idx := q * float64(len(vals)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	frac := idx - float64(lo)
	return vals[lo]*(1-frac) + vals[hi]*frac
}

// ViolationCount reports how many samples exceed a bound (Π or Π+γ).
func ViolationCount(samples []Sample, boundNS float64) int {
	n := 0
	for _, s := range samples {
		if s.PiStarNS > boundNS {
			n++
		}
	}
	return n
}

// pathExtrema is one path key's observed latency range. Each preregistered
// entry has exactly one writer (the VM stack observing that path), so the
// struct needs no lock of its own.
type pathExtrema struct {
	min, max time.Duration
	seen     bool
}

func (p *pathExtrema) observe(d time.Duration) {
	if !p.seen {
		p.min, p.max, p.seen = d, d, true
		return
	}
	if d < p.min {
		p.min = d
	}
	if d > p.max {
		p.max = d
	}
}

// LatencyTracker accumulates observed latencies per path key and derives
// the reading error E = d_max − d_min over all observed paths — the
// quantity the paper extracts from ptp4l's latency data to instantiate the
// precision bound (§III-A3).
//
// Concurrency: with a sharded kernel, paths on different shards are
// observed in parallel. Preregister installs each expected key into a map
// that is read-only afterwards, so concurrent Observe calls on distinct
// preregistered keys are race-free (one writer per entry). Unknown keys
// (malformed or adversarial domains) fall back to a mutex-guarded overflow
// map. Readers (Extrema, Paths) run from the driver, never concurrently
// with shard execution.
type LatencyTracker struct {
	paths map[string]*pathExtrema

	mu       sync.Mutex
	overflow map[string]*pathExtrema
}

// NewLatencyTracker creates an empty tracker.
func NewLatencyTracker() *LatencyTracker {
	return &LatencyTracker{
		paths:    make(map[string]*pathExtrema),
		overflow: make(map[string]*pathExtrema),
	}
}

// Preregister installs path keys before the simulation starts. It must not
// be called once observations may be arriving concurrently.
func (lt *LatencyTracker) Preregister(keys ...string) {
	for _, k := range keys {
		if _, ok := lt.paths[k]; !ok {
			lt.paths[k] = &pathExtrema{}
		}
	}
}

// Observe records one latency for a path key.
func (lt *LatencyTracker) Observe(key string, d time.Duration) {
	if p, ok := lt.paths[key]; ok {
		p.observe(d)
		return
	}
	lt.mu.Lock()
	p, ok := lt.overflow[key]
	if !ok {
		p = &pathExtrema{}
		lt.overflow[key] = p
	}
	p.observe(d)
	lt.mu.Unlock()
}

// each visits every observed path's extrema.
func (lt *LatencyTracker) each(fn func(p *pathExtrema)) {
	for _, p := range lt.paths {
		if p.seen {
			fn(p)
		}
	}
	for _, p := range lt.overflow {
		if p.seen {
			fn(p)
		}
	}
}

// Extrema reports the global minimum and maximum observed latency.
func (lt *LatencyTracker) Extrema() (min, max time.Duration, ok bool) {
	first := true
	lt.each(func(p *pathExtrema) {
		if first {
			min, max = p.min, p.max
			first = false
			return
		}
		if p.min < min {
			min = p.min
		}
		if p.max > max {
			max = p.max
		}
	})
	return min, max, !first
}

// ReadingError reports E = d_max − d_min over all observed paths.
func (lt *LatencyTracker) ReadingError() (time.Duration, bool) {
	min, max, ok := lt.Extrema()
	if !ok {
		return 0, false
	}
	return max - min, true
}

// Paths reports how many distinct path keys have been observed.
func (lt *LatencyTracker) Paths() int {
	n := 0
	lt.each(func(*pathExtrema) { n++ })
	return n
}
