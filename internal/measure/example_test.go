package measure_test

import (
	"fmt"
	"time"

	"gptpfta/internal/measure"
)

// Summarising a measured precision series the way Fig. 4b's caption does.
func ExampleComputeStats() {
	samples := []measure.Sample{
		{AtSec: 1, PiStarNS: 300},
		{AtSec: 2, PiStarNS: 350},
		{AtSec: 3, PiStarNS: 250},
	}
	fmt.Println(measure.ComputeStats(samples))
	// Output:
	// avg = 300ns, std = 41ns, min = 250ns, max = 350ns (n=3)
}

// Aggregating the per-second series into the 120 s windows Fig. 4a plots.
func ExampleAggregate() {
	var samples []measure.Sample
	for i := 0; i < 240; i++ {
		samples = append(samples, measure.Sample{AtSec: float64(i), PiStarNS: float64(200 + i%7)})
	}
	wins := measure.Aggregate(samples, 120*time.Second)
	for _, w := range wins {
		fmt.Printf("t=%.0fs avg %.1f ns (n=%d)\n", w.StartSec, w.AvgNS, w.Count)
	}
	// Output:
	// t=0s avg 203.0 ns (n=120)
	// t=120s avg 203.0 ns (n=120)
}

// Deriving the reading error E = d_max − d_min of §III-A3 from observed
// path latencies.
func ExampleLatencyTracker() {
	lt := measure.NewLatencyTracker()
	lt.Observe("dom1->c22", 4120*time.Nanosecond)
	lt.Observe("dom2->c31", 9188*time.Nanosecond)
	e, _ := lt.ReadingError()
	fmt.Println("E =", e)
	// Output:
	// E = 5.068µs
}
