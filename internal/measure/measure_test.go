package measure

import (
	"math"
	"testing"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// testNet wires a collector VM and three agent VMs through one switch with
// a measurement VLAN.
type testNet struct {
	sched     *sim.Scheduler
	streams   *sim.Streams
	collector *Collector
	agents    []*Agent
	times     map[string]float64 // synctime offsets per VM
}

func newTestNet(t *testing.T) *testNet {
	t.Helper()
	tn := &testNet{
		sched:   sim.NewScheduler(),
		streams: sim.NewStreams(55),
		times:   map[string]float64{"c12": 0, "c31": 120, "c32": -80, "c41": 40},
	}
	mkNIC := func(name string) *netsim.NIC {
		osc := clock.NewOscillator(clock.OscillatorConfig{}, nil, 0)
		phc := clock.NewPHC(tn.sched, osc, nil, clock.PHCConfig{})
		return netsim.NewNIC(name, tn.sched, phc)
	}
	oscB := clock.NewOscillator(clock.OscillatorConfig{}, nil, 0)
	br := netsim.NewBridge("sw", tn.sched, tn.streams.Stream("br"),
		clock.NewPHC(tn.sched, oscB, nil, clock.PHCConfig{}),
		netsim.BridgeConfig{
			Ports: 5,
			Residence: map[int]netsim.ResidenceModel{
				netsim.PriorityBestEffort: {Base: 1500 * time.Nanosecond, JitterNS: 200},
				netsim.PriorityMeasure:    {Base: 1000 * time.Nanosecond, JitterNS: 100},
			},
		})

	names := []string{"c22", "c12", "c31", "c32", "c41"}
	for i, name := range names {
		nic := mkNIC(name)
		if _, err := netsim.Connect(tn.sched, tn.streams.Stream("l/"+name),
			netsim.LinkConfig{Propagation: 500 * time.Nanosecond, JitterNS: 20},
			nic.Port(), br.Port(i)); err != nil {
			t.Fatalf("connect: %v", err)
		}
		br.AddRoute(netsim.Address("nic/"+name), i)
		br.AddGroupMember(MulticastAddr, i)
		if i == 0 {
			tn.collector = NewCollector(name, tn.sched, nic, CollectorConfig{
				Exclude: []string{"c12"}, // the co-located VM, like the paper's c_m1
			})
			nic.SetHandler(tn.collector.Handle)
			continue
		}
		name := name
		ag := NewAgent(name, tn.sched, nic, func() (float64, bool) {
			// Synthetic CLOCK_SYNCTIME: true time plus a per-VM offset.
			return float64(tn.sched.Now()) + tn.times[name], true
		})
		nic.SetHandler(ag.Handle)
		tn.agents = append(tn.agents, ag)
	}
	return tn
}

func (tn *testNet) run(t *testing.T, d time.Duration) {
	t.Helper()
	if err := tn.sched.RunUntil(tn.sched.Now().Add(d)); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestCollectorComputesPiStar(t *testing.T) {
	tn := newTestNet(t)
	if err := tn.collector.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	tn.run(t, 30*time.Second)
	samples := tn.collector.Samples()
	if len(samples) < 25 {
		t.Fatalf("samples = %d, want ~29", len(samples))
	}
	// Receivers: c31 (+120), c32 (−80), c41 (+40); c12 excluded. True
	// spread = 200 ns; probes add per-path latency differences of a few
	// hundred ns.
	st := ComputeStats(samples)
	if st.MeanNS < 150 || st.MeanNS > 800 {
		t.Fatalf("mean Π* = %.0f ns, want ≈200 ns + path jitter", st.MeanNS)
	}
	for _, s := range samples {
		if s.Replies != 3 {
			t.Fatalf("replies = %d, want 3 (c12 excluded, sender excluded)", s.Replies)
		}
	}
}

func TestCollectorExcludesConfiguredVM(t *testing.T) {
	tn := newTestNet(t)
	// Give the excluded VM an enormous offset; Π* must not see it.
	tn.times["c12"] = 1e9
	if err := tn.collector.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	tn.run(t, 10*time.Second)
	st := ComputeStats(tn.collector.Samples())
	if st.MaxNS > 1e6 {
		t.Fatalf("excluded VM leaked into Π*: max = %.0f ns", st.MaxNS)
	}
}

func TestCollectorGamma(t *testing.T) {
	tn := newTestNet(t)
	if err := tn.collector.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	tn.run(t, 60*time.Second)
	gamma := tn.collector.Gamma()
	if gamma <= 0 {
		t.Fatal("gamma not measured")
	}
	if gamma > 5*time.Microsecond {
		t.Fatalf("gamma = %v, implausibly large for the configured jitter", gamma)
	}
	min, max := tn.collector.PathExtrema()
	if len(min) != 3 || len(max) != 3 {
		t.Fatalf("path extrema over %d/%d VMs, want 3", len(min), len(max))
	}
}

func TestCollectorToleratesSilentAgents(t *testing.T) {
	tn := newTestNet(t)
	if err := tn.collector.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	tn.run(t, 5*time.Second)
	// Take down two of the three counted receivers (c31, c32): only c41
	// remains, below MinReplies=2 → no further samples.
	tn.agents[1].nic.SetDown(true)
	tn.agents[2].nic.SetDown(true)
	before := len(tn.collector.Samples())
	tn.run(t, 5*time.Second)
	after := len(tn.collector.Samples())
	if after != before {
		t.Fatalf("samples advanced (%d -> %d) with only one live receiver", before, after)
	}
}

func TestComputeStats(t *testing.T) {
	samples := []Sample{
		{AtSec: 1, PiStarNS: 100},
		{AtSec: 2, PiStarNS: 300},
		{AtSec: 3, PiStarNS: 200},
	}
	st := ComputeStats(samples)
	if st.MeanNS != 200 || st.MinNS != 100 || st.MaxNS != 300 || st.MaxAtSec != 2 {
		t.Fatalf("stats = %+v", st)
	}
	want := math.Sqrt((100.0*100 + 100*100) / 3)
	if math.Abs(st.StdNS-want) > 1e-9 {
		t.Fatalf("std = %v, want %v", st.StdNS, want)
	}
	if ComputeStats(nil).Count != 0 {
		t.Fatal("empty stats should be zero")
	}
	if st.String() == "" {
		t.Fatal("empty string")
	}
}

func TestAggregateWindows(t *testing.T) {
	var samples []Sample
	for i := 0; i < 300; i++ {
		samples = append(samples, Sample{AtSec: float64(i), PiStarNS: float64(i % 10)})
	}
	wins := Aggregate(samples, 120*time.Second)
	if len(wins) != 3 {
		t.Fatalf("windows = %d, want 3", len(wins))
	}
	if wins[0].StartSec != 0 || wins[1].StartSec != 120 || wins[2].StartSec != 240 {
		t.Fatalf("window starts wrong: %+v", wins)
	}
	if wins[0].Count != 120 || wins[2].Count != 60 {
		t.Fatalf("window counts wrong: %+v", wins)
	}
	if wins[0].MinNS != 0 || wins[0].MaxNS != 9 {
		t.Fatalf("window extrema wrong: %+v", wins[0])
	}
	if Aggregate(nil, time.Minute) != nil {
		t.Fatal("empty aggregate should be nil")
	}
}

func TestHistogram(t *testing.T) {
	samples := []Sample{
		{PiStarNS: 5}, {PiStarNS: 15}, {PiStarNS: 15}, {PiStarNS: 95}, {PiStarNS: 1000},
	}
	h := ComputeHistogram(samples, 10, 100)
	if len(h.Counts) != 10 {
		t.Fatalf("buckets = %d, want 10", len(h.Counts))
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1", h.Overflow)
	}
}

func TestQuantile(t *testing.T) {
	var samples []Sample
	for i := 1; i <= 100; i++ {
		samples = append(samples, Sample{PiStarNS: float64(i)})
	}
	if q := Quantile(samples, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(samples, 1); q != 100 {
		t.Fatalf("q1 = %v", q)
	}
	med := Quantile(samples, 0.5)
	if med < 50 || med > 51 {
		t.Fatalf("median = %v", med)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestViolationCount(t *testing.T) {
	samples := []Sample{{PiStarNS: 5}, {PiStarNS: 15}, {PiStarNS: 25}}
	if got := ViolationCount(samples, 10); got != 2 {
		t.Fatalf("violations = %d, want 2", got)
	}
}

func TestLatencyTracker(t *testing.T) {
	lt := NewLatencyTracker()
	if _, ok := lt.ReadingError(); ok {
		t.Fatal("empty tracker reported a reading error")
	}
	lt.Observe("a->b", 4120*time.Nanosecond)
	lt.Observe("a->b", 5000*time.Nanosecond)
	lt.Observe("c->d", 9188*time.Nanosecond)
	e, ok := lt.ReadingError()
	if !ok {
		t.Fatal("no reading error")
	}
	if e != 5068*time.Nanosecond { // the paper's E
		t.Fatalf("E = %v, want 5068ns", e)
	}
	if lt.Paths() != 2 {
		t.Fatalf("paths = %d, want 2", lt.Paths())
	}
	min, max, ok := lt.Extrema()
	if !ok || min != 4120*time.Nanosecond || max != 9188*time.Nanosecond {
		t.Fatalf("extrema = %v/%v", min, max)
	}
}
