package measure

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// WriteSamplesCSV writes the per-second precision series as CSV with the
// header "seq,at_sec,pi_star_ns,replies" — the raw data behind Fig. 4a.
func WriteSamplesCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "at_sec", "pi_star_ns", "replies"}); err != nil {
		return err
	}
	for _, s := range samples {
		rec := []string{
			strconv.FormatUint(s.Seq, 10),
			strconv.FormatFloat(s.AtSec, 'f', 3, 64),
			strconv.FormatFloat(s.PiStarNS, 'f', 1, 64),
			strconv.Itoa(s.Replies),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteWindowsCSV writes aggregated windows ("start_sec,min_ns,avg_ns,
// max_ns,count") — the plotted form of Fig. 4a.
func WriteWindowsCSV(w io.Writer, windows []Window) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start_sec", "min_ns", "avg_ns", "max_ns", "count"}); err != nil {
		return err
	}
	for _, win := range windows {
		rec := []string{
			strconv.FormatFloat(win.StartSec, 'f', 1, 64),
			strconv.FormatFloat(win.MinNS, 'f', 1, 64),
			strconv.FormatFloat(win.AvgNS, 'f', 1, 64),
			strconv.FormatFloat(win.MaxNS, 'f', 1, 64),
			strconv.Itoa(win.Count),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHistogramCSV writes the Fig. 4b distribution ("bucket_lo_ns,count").
func WriteHistogramCSV(w io.Writer, h Histogram) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bucket_lo_ns", "count"}); err != nil {
		return err
	}
	for i, c := range h.Counts {
		rec := []string{
			strconv.FormatFloat(float64(i)*h.BucketWidthNS, 'f', 0, 64),
			strconv.Itoa(c),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	if h.Overflow > 0 {
		if err := cw.Write([]string{"overflow", strconv.Itoa(h.Overflow)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseSamplesCSV reads back a series written by WriteSamplesCSV — round-
// tripping experiment data between tools.
func ParseSamplesCSV(r io.Reader) ([]Sample, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, nil
	}
	out := make([]Sample, 0, len(records)-1)
	for i, rec := range records[1:] {
		if len(rec) != 4 {
			return nil, fmt.Errorf("measure: csv row %d has %d fields, want 4", i+2, len(rec))
		}
		seq, err := strconv.ParseUint(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("measure: csv row %d seq: %w", i+2, err)
		}
		at, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("measure: csv row %d at_sec: %w", i+2, err)
		}
		pi, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("measure: csv row %d pi_star_ns: %w", i+2, err)
		}
		replies, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("measure: csv row %d replies: %w", i+2, err)
		}
		out = append(out, Sample{Seq: seq, AtSec: at, PiStarNS: pi, Replies: replies})
	}
	return out, nil
}

// WritePathExtremaCSV writes the per-path latency extrema used for γ.
func WritePathExtremaCSV(w io.Writer, min, max map[string]time.Duration) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"path", "min_ns", "max_ns"}); err != nil {
		return err
	}
	keys := make([]string, 0, len(min))
	for k := range min {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rec := []string{k,
			strconv.FormatInt(min[k].Nanoseconds(), 10),
			strconv.FormatInt(max[k].Nanoseconds(), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
