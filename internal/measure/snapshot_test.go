package measure

import (
	"math"
	"testing"
	"time"

	"gptpfta/internal/clock"
	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// snapNet is the snapshot-capable variant of testNet: it retains every
// stateful component so the whole measurement network can be captured and
// rewound, the way core.System does it.
type snapNet struct {
	sched     *sim.Scheduler
	streams   *sim.Streams
	bridge    *netsim.Bridge
	links     []*netsim.Link
	nics      []*netsim.NIC
	collector *Collector
	agents    []*Agent
}

func newSnapNet(t *testing.T, cfg CollectorConfig) *snapNet {
	t.Helper()
	tn := &snapNet{
		sched:   sim.NewScheduler(),
		streams: sim.NewStreams(55),
	}
	times := map[string]float64{"c12": 0, "c31": 120, "c32": -80, "c41": 40}
	oscB := clock.NewOscillator(clock.OscillatorConfig{}, nil, 0)
	tn.bridge = netsim.NewBridge("sw", tn.sched, tn.streams.Stream("br"),
		clock.NewPHC(tn.sched, oscB, nil, clock.PHCConfig{}),
		netsim.BridgeConfig{
			Ports: 5,
			Residence: map[int]netsim.ResidenceModel{
				netsim.PriorityBestEffort: {Base: 1500 * time.Nanosecond, JitterNS: 200},
				netsim.PriorityMeasure:    {Base: 1000 * time.Nanosecond, JitterNS: 100},
			},
		})

	names := []string{"c22", "c12", "c31", "c32", "c41"}
	for i, name := range names {
		osc := clock.NewOscillator(clock.OscillatorConfig{}, nil, 0)
		phc := clock.NewPHC(tn.sched, osc, nil, clock.PHCConfig{})
		nic := netsim.NewNIC(name, tn.sched, phc)
		tn.nics = append(tn.nics, nic)
		link, err := netsim.Connect(tn.sched, tn.streams.Stream("l/"+name),
			netsim.LinkConfig{Propagation: 500 * time.Nanosecond, JitterNS: 20},
			nic.Port(), tn.bridge.Port(i))
		if err != nil {
			t.Fatalf("connect: %v", err)
		}
		tn.links = append(tn.links, link)
		tn.bridge.AddRoute(netsim.Address("nic/"+name), i)
		tn.bridge.AddGroupMember(MulticastAddr, i)
		if i == 0 {
			tn.collector = NewCollector(name, tn.sched, nic, cfg)
			nic.SetHandler(tn.collector.Handle)
			continue
		}
		name := name
		ag := NewAgent(name, tn.sched, nic, func() (float64, bool) {
			return float64(tn.sched.Now()) + times[name], true
		})
		nic.SetHandler(ag.Handle)
		tn.agents = append(tn.agents, ag)
	}
	return tn
}

// snapshot captures every stateful component, in the same shape
// core.System.Snapshot composes.
type snapNetState struct {
	sched, streams, bridge, collector any
	links, nics, agents               []any
}

func (tn *snapNet) snapshot() *snapNetState {
	st := &snapNetState{
		sched:     tn.sched.Snapshot(),
		streams:   tn.streams.Snapshot(),
		bridge:    tn.bridge.Snapshot(),
		collector: tn.collector.Snapshot(),
	}
	for _, l := range tn.links {
		st.links = append(st.links, l.Snapshot())
	}
	for _, n := range tn.nics {
		st.nics = append(st.nics, n.Snapshot())
	}
	for _, a := range tn.agents {
		st.agents = append(st.agents, a.Snapshot())
	}
	return st
}

func (tn *snapNet) restore(st *snapNetState) {
	tn.sched.Restore(st.sched)
	tn.streams.Restore(st.streams)
	tn.bridge.RestoreSnapshot(st.bridge)
	for i, l := range tn.links {
		l.Restore(st.links[i])
	}
	for i, n := range tn.nics {
		n.Restore(st.nics[i])
	}
	tn.collector.Restore(st.collector)
	for i, a := range tn.agents {
		a.Restore(st.agents[i])
	}
}

func (tn *snapNet) run(t *testing.T, d time.Duration) {
	t.Helper()
	if err := tn.sched.RunUntil(tn.sched.Now().Add(d)); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestCollectorForkMidWindow is the regression test for windowed-state
// restore: the network is snapshotted while a probe's collect window is
// still open (its finalize pending), run on, rewound, and run again. The
// fork must not inherit any sample or reply the prefix produced after the
// snapshot, and the replayed continuation must match the first bit for bit.
func TestCollectorForkMidWindow(t *testing.T) {
	tn := newSnapNet(t, CollectorConfig{Exclude: []string{"c12"}})
	if err := tn.collector.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}

	// Probe fires at 10 s, its collect window closes at 10.5 s: 10.2 s is
	// mid-window, with the finalize event still queued.
	tn.run(t, 10*time.Second+200*time.Millisecond)
	open := 0
	for _, w := range tn.collector.windows {
		if w.open {
			open++
		}
	}
	if open == 0 {
		t.Fatal("no open collect window at the snapshot instant; the test would not exercise mid-window state")
	}
	snapSamples := len(tn.collector.Samples())
	st := tn.snapshot()

	tn.run(t, 2*time.Second)
	first := append([]Sample(nil), tn.collector.Samples()...)
	if len(first) <= snapSamples {
		t.Fatalf("continuation yielded no new samples (%d before, %d after)", snapSamples, len(first))
	}

	tn.restore(st)
	if got := len(tn.collector.Samples()); got != snapSamples {
		t.Fatalf("fork inherited samples from the prefix window: %d samples after restore, want %d",
			got, snapSamples)
	}
	restoredOpen := 0
	for _, w := range tn.collector.windows {
		if w.open {
			restoredOpen++
		}
	}
	if restoredOpen != open {
		t.Fatalf("open windows after restore = %d, want %d", restoredOpen, open)
	}

	tn.run(t, 2*time.Second)
	second := tn.collector.Samples()
	if len(second) != len(first) {
		t.Fatalf("replayed continuation yielded %d samples, first yielded %d", len(second), len(first))
	}
	for i := range first {
		a, b := first[i], second[i]
		if a.Seq != b.Seq || a.Replies != b.Replies ||
			math.Float64bits(a.AtSec) != math.Float64bits(b.AtSec) ||
			math.Float64bits(a.PiStarNS) != math.Float64bits(b.PiStarNS) {
			t.Fatalf("sample %d diverged on replay: first %+v, second %+v", i, a, b)
		}
	}
}
