// Package measure implements the paper's clock-synchronization precision
// measurement methodology (§III-A2): a dedicated measurement VM multicasts
// a probe once per second on a measurement VLAN; every other
// clock-synchronization VM timestamps the probe's reception with its node's
// CLOCK_SYNCTIME and returns the timestamp. The measured precision in
// interval s is
//
//	Π*_s = max over receiver pairs |tn_c(rx_ps) − tn_c'(rx_ps)|   (eq. 3.1)
//
// and the measurement error γ is derived from the spread of observed
// measurement-path latencies (eq. 3.2).
package measure

import (
	"time"

	"gptpfta/internal/netsim"
	"gptpfta/internal/sim"
)

// MulticastAddr is the measurement VLAN multicast group.
const MulticastAddr netsim.Address = "mc/measure"

// Probe is the once-per-second multicast measurement packet.
type Probe struct {
	Seq    uint64
	Origin netsim.Address
}

// Reply carries one receiver's CLOCK_SYNCTIME reception timestamp back to
// the measurement VM. PathLatency is the probe's observed one-way latency
// (the simulator's stand-in for the per-path latency data the paper
// extracts from ptp4l).
type Reply struct {
	Seq         uint64
	VM          string
	SyncTimeNS  float64
	Valid       bool
	PathLatency time.Duration
}

// Agent answers measurement probes on one clock-synchronization VM. It is
// installed as the ptp4l stack's auxiliary frame handler.
type Agent struct {
	name     string
	sched    *sim.Scheduler
	nic      *netsim.NIC
	syncTime func() (float64, bool)
	replies  uint64
}

// NewAgent creates an agent; syncTime reads the node's CLOCK_SYNCTIME.
func NewAgent(name string, sched *sim.Scheduler, nic *netsim.NIC, syncTime func() (float64, bool)) *Agent {
	return &Agent{name: name, sched: sched, nic: nic, syncTime: syncTime}
}

// Replies reports how many probes the agent answered.
func (a *Agent) Replies() uint64 { return a.replies }

// Handle processes a received frame; it consumes measurement probes.
func (a *Agent) Handle(f *netsim.Frame, _ float64) {
	probe, ok := f.Payload.(*Probe)
	if !ok {
		return
	}
	v, valid := a.syncTime()
	reply := &Reply{
		Seq:         probe.Seq,
		VM:          a.name,
		SyncTimeNS:  v,
		Valid:       valid,
		PathLatency: f.PathLatency(a.sched.Now()),
	}
	out := netsim.GetFrame()
	out.Src = netsim.Address("nic/" + a.name)
	out.Dst = probe.Origin
	out.Priority = netsim.PriorityMeasure
	out.Payload = reply
	if _, err := a.nic.Send(out); err == nil {
		a.replies++
	}
}
